package workload_test

import (
	"fmt"

	"essdsim/internal/profiles"
	"essdsim/internal/sim"
	"essdsim/internal/workload"
)

// ExampleRunOpen drives an open-loop workload: 1000 random 256 KiB writes
// offered at 1000 req/s against a burstable gp2-class volume. The request
// count is exact (the schedule issues all of them) and the run drains
// every completion before returning.
func ExampleRunOpen() {
	eng := sim.NewEngine()
	dev, err := profiles.ByName("gp2", eng, sim.NewRNG(7, 7^0x5c))
	if err != nil {
		panic(err)
	}
	res := workload.RunOpen(dev, workload.OpenSpec{
		Pattern:    workload.RandWrite,
		BlockSize:  256 << 10,
		RatePerSec: 1000,
		Arrival:    workload.Uniform,
		Count:      1000,
		Seed:       7,
	})
	// The last request issues at 999 ms; Elapsed covers at least that
	// plus its completion.
	fmt.Printf("ops=%d bytes=%dMiB drained=%v\n",
		res.Ops, res.Bytes>>20, res.Elapsed >= 999*sim.Millisecond)
	// Output:
	// ops=1000 bytes=250MiB drained=true
}
