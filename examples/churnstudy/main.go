// churnstudy runs the fleet churn study: what the tenant-packing
// question becomes once the catalog stops holding still. Volumes are
// created, deleted, expanded, shrunk, and snapshotted over a sequence of
// control epochs, and every event re-asks the placement question with
// the fleet already live underneath it.
//
// The scenario is an expansion storm. Three bursty writers and one
// steady victim first-fit comfortably onto one backend of three; then
// every writer doubles its rate in the same epoch, and the packed
// backend is suddenly carrying nearly twice its budget. Three
// rebalancing policies face the identical timeline (same seed, same
// events, same online placement):
//
//   - never-move accepts whatever packing the events leave behind,
//   - threshold migrates volumes off overloaded backends, up to a
//     per-epoch migration budget,
//   - drain does the same one volume at a time — a trickle that trades
//     slower convergence for cheaper epochs.
//
// The output is a per-epoch time series: SLO violations, utilization,
// stranded capacity, and the migration bytes each policy paid to get
// its numbers.
package main

import (
	"context"
	"fmt"
	"os"

	"essdsim"
)

func main() {
	writer := func(name string) essdsim.FleetDemand {
		return essdsim.FleetDemand{
			Name: name, RatePerSec: 800, BlockSize: 256 << 10,
			WriteRatioPct: 100, Arrival: essdsim.ArrivalBursty,
		}
	}
	base := essdsim.ChurnSpec{
		Fleet: essdsim.FleetSpec{
			Demands: []essdsim.FleetDemand{
				writer("med0"), writer("med1"), writer("med2"),
				{Name: "ten0", RatePerSec: 300, BlockSize: 64 << 10,
					WriteRatioPct: 50, Arrival: essdsim.ArrivalUniform},
			},
			Backends:   3,
			BackendBps: 700e6,
			SLOP999:    5 * essdsim.Millisecond,
			Horizon:    essdsim.Second,
			Seed:       7,
		},
		Epochs:          4,
		MigrationBudget: 2,
		// The storm, scripted so every policy faces the identical
		// timeline: all three writers double at epoch 1, one of the
		// expanded writers retires at epoch 2.
		Script: []essdsim.ChurnEvent{
			{Epoch: 1, Kind: essdsim.ChurnExpand, Tenant: "med0"},
			{Epoch: 1, Kind: essdsim.ChurnExpand, Tenant: "med1"},
			{Epoch: 1, Kind: essdsim.ChurnExpand, Tenant: "med2"},
			{Epoch: 2, Kind: essdsim.ChurnDelete, Tenant: "med2"},
		},
	}

	// One shared cache: the three runs share every cell their timelines
	// have in common, so the comparison costs little more than one run.
	cache := essdsim.NewSweepCache(4096)
	rebalancers := []essdsim.Rebalancer{
		essdsim.NeverMove{},
		essdsim.ThresholdRebalance{},
		essdsim.DrainRebalance{},
	}
	reports := make([]*essdsim.ChurnReport, 0, len(rebalancers))
	for _, rb := range rebalancers {
		spec := base
		spec.Fleet.Cache = cache
		spec.Rebalancer = rb
		rep, err := essdsim.RunChurn(context.Background(), spec)
		if err != nil {
			panic(err)
		}
		reports = append(reports, rep)
	}

	for _, rep := range reports {
		essdsim.FormatChurnReport(os.Stdout, rep)
		fmt.Println()
	}

	fmt.Println("Same storm, same placement, different rebalancers:")
	for _, rep := range reports {
		fmt.Printf("  %-10s %3d p99.9 violations, %2d migrations (%6.0f MB moved)\n",
			rep.Rebalancer, rep.TotalP999Violations,
			rep.TotalMigrations, float64(rep.TotalMoveBytes)/1e6)
	}
	fmt.Println()
	fmt.Println("Migration is the price of keeping a churning fleet packed: never-move")
	fmt.Println("pays it in tail latency instead, and the bill arrives at the tenants.")
}
