package expgrid_test

import (
	"context"
	"fmt"

	"essdsim/internal/blockdev"
	"essdsim/internal/expgrid"
	"essdsim/internal/profiles"
	"essdsim/internal/sim"
	"essdsim/internal/workload"
)

// ExampleRunner_Run declares a 2×2 open-loop grid on a burstable tier and
// runs it on the worker pool, then re-runs it against the attached cache.
// Results stream back in enumeration order regardless of which worker
// finishes first, and the warm pass simulates nothing.
func ExampleRunner_Run() {
	cache := expgrid.NewCache(0)
	sweep := expgrid.Sweep{
		Kind: expgrid.Open,
		Devices: expgrid.Devices("gp2", func(seed uint64) blockdev.Device {
			dev, err := profiles.ByName("gp2", sim.NewEngine(), sim.NewRNG(seed, seed^0x5c))
			if err != nil {
				panic(err)
			}
			return dev
		}),
		Patterns:    []workload.Pattern{workload.RandWrite},
		BlockSizes:  []int64{256 << 10},
		Arrivals:    []workload.Arrival{workload.Uniform, workload.Bursty},
		RatesPerSec: []float64{1500, 3000},
		OpenOps:     500,
		Cache:       cache,
		Seed:        42,
	}
	for _, pass := range []string{"cold", "warm"} {
		results, err := expgrid.Runner{Workers: 4}.Run(context.Background(), sweep)
		if err != nil {
			panic(err)
		}
		for _, r := range results {
			fmt.Printf("%s: %s %s@%.0f/s ops=%d cached=%v\n",
				pass, r.DeviceName, r.Arrival, r.RatePerSec, r.Open.Ops, r.Cached)
		}
	}
	// Output:
	// cold: gp2 uniform@1500/s ops=500 cached=false
	// cold: gp2 uniform@3000/s ops=500 cached=false
	// cold: gp2 bursty@1500/s ops=500 cached=false
	// cold: gp2 bursty@3000/s ops=500 cached=false
	// warm: gp2 uniform@1500/s ops=500 cached=true
	// warm: gp2 uniform@3000/s ops=500 cached=true
	// warm: gp2 bursty@1500/s ops=500 cached=true
	// warm: gp2 bursty@3000/s ops=500 cached=true
}
