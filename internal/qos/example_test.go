package qos_test

import (
	"fmt"

	"essdsim/internal/qos"
	"essdsim/internal/sim"
)

// ExampleCreditBucket shows the burstable-tier arithmetic on exact
// numbers: a bucket earning 100 B/s with a 400 B/s burst ceiling and a
// 1000-credit bank. Each byte served at the burst rate costs
// 1 - 100/400 = 0.75 credits, so the bank covers 1333⅓ burst bytes
// (3⅓ s at 400 B/s); the remaining 666⅔ bytes of a 2000-byte spend move
// at baseline (6⅔ s) — 10 s in total. After exhaustion a backlogged
// closed loop sustains min(burst, 2×baseline) = 200 B/s.
func ExampleCreditBucket() {
	eng := sim.NewEngine()
	b := qos.NewCreditBucket(eng, 100, 400, 1000)

	fmt.Printf("floor=%v B/s\n", b.SustainedFloor())
	fmt.Printf("spend(2000)=%v\n", b.Spend(2000))
	fmt.Printf("exhausted at %v, credits left %v\n", b.ExhaustedAt(), b.Credits())
	// Output:
	// floor=200 B/s
	// spend(2000)=10.000s
	// exhausted at 0, credits left 0
}
