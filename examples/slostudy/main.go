// slostudy walks through the latency-SLO search: the operating-point
// question behind the paper's contract cliff. A burstable tier (gp2 class)
// serves its burst ceiling only while credits last, so "what rate can I
// offer and still meet my p99?" has two honest answers — one for the burst
// window, a lower one for the credit floor — and planning against the
// wrong one is exactly how Implication #4's latency collapse happens in
// production.
//
// The study searches the small gp2 tier at two targets (a tight 5 ms and a
// relaxed 50 ms p99), then re-runs the first search cache-warm to show the
// sweep-level result cache at work: zero new cells simulated, identical
// answers, and a JSON cache file that would survive a process restart.
package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"essdsim"
)

func main() {
	cache := essdsim.NewSweepCache(0)
	base := essdsim.SLOSearch{
		Device:    essdsim.ProfileDevices("gp2s")[0],
		Pattern:   essdsim.RandWrite,
		BlockSize: 256 << 10,
		Arrival:   essdsim.ArrivalUniform,
		MinRate:   200,
		MaxRate:   3000,
		Tolerance: 100,
		Horizon:   4 * essdsim.Second,
		Cache:     cache,
		Seed:      7,
	}

	fmt.Println("== tight SLO: p99 <= 5ms ==")
	tight := base
	tight.Target = essdsim.SLOTarget{P99: 5 * essdsim.Millisecond}
	rep, err := essdsim.SearchSLO(context.Background(), tight)
	if err != nil {
		panic(err)
	}
	essdsim.FormatSLOReport(os.Stdout, rep)

	fmt.Println()
	fmt.Println("== relaxed SLO: p99 <= 50ms ==")
	relaxed := base
	relaxed.Target = essdsim.SLOTarget{P99: 50 * essdsim.Millisecond}
	relRep, err := essdsim.SearchSLO(context.Background(), relaxed)
	if err != nil {
		panic(err)
	}
	essdsim.FormatSLOReport(os.Stdout, relRep)

	// The planning lesson: the burst window flatters you. Provision at the
	// pre-exhaustion rate and the cliff arrives on schedule.
	fmt.Println()
	fmt.Printf("plan at the post-cliff rate: tight SLO sustains %.0f req/s forever, "+
		"not the %.0f req/s the burst window suggests\n",
		rep.PostMaxRate, rep.PreMaxRate)

	// Cache-warm repeat: same search, zero new simulations. The two
	// targets above already shared probe cells through the cache — every
	// probe is keyed by its coordinates, not by the target that asked.
	warm := tight
	rep2, err := essdsim.SearchSLO(context.Background(), warm)
	if err != nil {
		panic(err)
	}
	fmt.Printf("cache-warm repeat: %d probes, %d simulated (all %d served from cache), same answers: %v\n",
		len(rep2.Probes), rep2.CellsRun, len(rep2.Probes),
		rep2.PreMaxRate == rep.PreMaxRate && rep2.PostMaxRate == rep.PostMaxRate)

	// Persist the cache; a future process LoadFile()s it and starts warm.
	path := filepath.Join(os.TempDir(), "slostudy-cache.json")
	if err := cache.SaveFile(path); err != nil {
		panic(err)
	}
	hits, misses := cache.Stats()
	fmt.Printf("sweep cache: %d entries saved to %s (%d hits, %d cells simulated this run)\n",
		cache.Len(), path, hits, misses)
}
