package qos

import (
	"testing"

	"essdsim/internal/sim"
)

func TestCreditBucketStartsFull(t *testing.T) {
	eng := sim.NewEngine()
	c := NewCreditBucket(eng, 100e6, 300e6, 1e9)
	if c.Credits() != 1e9 {
		t.Fatalf("credits = %v", c.Credits())
	}
	if c.RateNow() != 300e6 {
		t.Fatalf("rate = %v, want burst", c.RateNow())
	}
}

func TestCreditBucketBurstThenBaseline(t *testing.T) {
	eng := sim.NewEngine()
	// 1 GB of credits, burst 300 MB/s over a 100 MB/s baseline: bursting
	// drains 2/3 credit per byte, so 1.5 GB of burst-rate I/O empties it.
	c := NewCreditBucket(eng, 100e6, 300e6, 1e9)
	d1 := c.Spend(1500e6)
	if got := d1.Seconds(); got < 4.9 || got > 5.1 {
		t.Fatalf("burst spend took %.2fs, want ≈5s at 300MB/s", got)
	}
	if c.Credits() > 1e6 {
		t.Fatalf("credits not drained: %v", c.Credits())
	}
	if c.RateNow() != 100e6 {
		t.Fatalf("post-burst rate %v, want baseline", c.RateNow())
	}
	d2 := c.Spend(100e6)
	if got := d2.Seconds(); got < 0.99 || got > 1.01 {
		t.Fatalf("baseline spend took %.2fs, want ≈1s", got)
	}
	if c.Exhaustions() == 0 {
		t.Fatal("exhaustion not counted")
	}
}

func TestCreditBucketRefillsOverTime(t *testing.T) {
	eng := sim.NewEngine()
	c := NewCreditBucket(eng, 100e6, 300e6, 1e9)
	c.Spend(1500e6) // drain
	// Idle 5 simulated seconds: earn 500 MB of credits.
	eng.Schedule(5*sim.Second, func() {})
	eng.Run()
	if got := c.Credits(); got < 499e6 || got > 501e6 {
		t.Fatalf("refilled credits = %v, want ≈500e6", got)
	}
	if c.RateNow() != 300e6 {
		t.Fatal("burst not restored after refill")
	}
}

func TestCreditBucketCapsAtCapacity(t *testing.T) {
	eng := sim.NewEngine()
	c := NewCreditBucket(eng, 100e6, 300e6, 1e9)
	eng.Schedule(100*sim.Second, func() {})
	eng.Run()
	if got := c.Credits(); got != 1e9 {
		t.Fatalf("credits exceeded capacity: %v", got)
	}
}

func TestCreditBucketMixedSpend(t *testing.T) {
	eng := sim.NewEngine()
	// Tiny credit bank: a large spend straddles burst and baseline.
	c := NewCreditBucket(eng, 100e6, 300e6, 100e6)
	// 100 MB credits cover 150 MB at burst (2/3 credit per byte); the
	// remaining 150 MB go at baseline: 0.5s + 1.5s = 2s.
	d := c.Spend(300e6)
	if got := d.Seconds(); got < 1.95 || got > 2.05 {
		t.Fatalf("mixed spend took %.2fs, want ≈2s", got)
	}
}

func TestAcquireSerializesConcurrentSpends(t *testing.T) {
	eng := sim.NewEngine()
	// No credits: pure 100 MB/s baseline. 32 concurrent 10 MB acquires
	// must drain in ~3.2 s total, not in parallel.
	c := NewCreditBucket(eng, 100e6, 100e6, 0)
	var last sim.Time
	for i := 0; i < 32; i++ {
		c.Acquire(10e6, func() { last = eng.Now() })
	}
	eng.Run()
	got := sim.Duration(last).Seconds()
	if got < 3.1 || got > 3.3 {
		t.Fatalf("32x10MB at 100MB/s drained in %.2fs, want ≈3.2s", got)
	}
}

func TestAcquireFIFO(t *testing.T) {
	eng := sim.NewEngine()
	c := NewCreditBucket(eng, 100e6, 100e6, 0)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		c.Acquire(1e6, func() { order = append(order, i) })
	}
	eng.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("acquire order %v", order)
		}
	}
}

func TestCreditBucketExhaustedAt(t *testing.T) {
	eng := sim.NewEngine()
	c := NewCreditBucket(eng, 100e6, 300e6, 1e9)
	if c.ExhaustedAt() >= 0 {
		t.Fatalf("fresh bucket reports exhaustion at %v", c.ExhaustedAt())
	}
	c.Spend(100e6) // partial: still credited
	if c.ExhaustedAt() >= 0 {
		t.Fatal("partial spend reported exhaustion")
	}
	// Drain the rest 2 simulated seconds in.
	eng.Schedule(2*sim.Second, func() { c.Spend(5e9) })
	eng.Run()
	if c.Exhaustions() == 0 {
		t.Fatal("drain not counted as exhaustion")
	}
	if got := c.ExhaustedAt(); got != sim.Time(2*sim.Second) {
		t.Fatalf("exhausted at %v, want 2s (enqueue-time charge)", got)
	}
	// A later exhaustion must not move the first timestamp.
	eng.Schedule(3*sim.Second, func() { c.Spend(5e9) })
	eng.Run()
	if got := c.ExhaustedAt(); got != sim.Time(2*sim.Second) {
		t.Fatalf("first exhaustion timestamp moved to %v", got)
	}
}

func TestSustainedFloor(t *testing.T) {
	eng := sim.NewEngine()
	// Baseline below half the burst: floor is 2× baseline.
	if got := NewCreditBucket(eng, 100e6, 300e6, 1e9).SustainedFloor(); got != 200e6 {
		t.Fatalf("floor = %v, want 200e6", got)
	}
	// Baseline above half the burst: earned credits outpace spends, so the
	// floor is the burst ceiling itself.
	if got := NewCreditBucket(eng, 200e6, 300e6, 1e9).SustainedFloor(); got != 300e6 {
		t.Fatalf("floor = %v, want 300e6", got)
	}
	// Zero capacity banks nothing: earned credits are lost, floor is the
	// bare baseline.
	if got := NewCreditBucket(eng, 100e6, 300e6, 0).SustainedFloor(); got != 100e6 {
		t.Fatalf("capacity-0 floor = %v, want baseline", got)
	}
}

// TestSustainedFloorMatchesDrain drains a bucket, then drives it with
// just-in-time spends and checks the measured long-run rate against
// SustainedFloor.
func TestSustainedFloorMatchesDrain(t *testing.T) {
	eng := sim.NewEngine()
	c := NewCreditBucket(eng, 100e6, 400e6, 50e6)
	c.Spend(200e6) // empty the bank: post-cliff regime
	if c.Credits() != 0 || c.Exhaustions() == 0 {
		t.Fatalf("bank not drained: %v credits", c.Credits())
	}
	const chunk = 1e6
	var done int
	var start, finish sim.Time
	start = c.nextFree // the drain of the exhausting spend
	var next func()
	next = func() {
		done++
		finish = eng.Now()
		if done < 2000 {
			c.Acquire(chunk, next)
		}
	}
	c.Acquire(chunk, next)
	eng.Run()
	measured := 2000 * chunk / finish.Sub(start).Seconds()
	want := c.SustainedFloor()
	if measured < 0.95*want || measured > 1.05*want {
		t.Fatalf("backlogged drain rate %.3g, want ≈ floor %.3g", measured, want)
	}
}

func TestCreditBucketDegenerate(t *testing.T) {
	eng := sim.NewEngine()
	c := NewCreditBucket(eng, 100e6, 50e6, 0) // burst < baseline: clamped
	if c.Burst() != 100e6 {
		t.Fatalf("burst = %v", c.Burst())
	}
	if d := c.Spend(0); d != 0 {
		t.Fatalf("zero spend = %v", d)
	}
	// No credits, burst == baseline: pure baseline service.
	if got := c.Spend(100e6).Seconds(); got < 0.99 || got > 1.01 {
		t.Fatalf("baseline-only spend %.2fs", got)
	}
}
