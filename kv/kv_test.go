package kv

import (
	"testing"
	"testing/quick"

	"essdsim/internal/blockdev"
	"essdsim/internal/profiles"
	"essdsim/internal/sim"
)

// newNamedDev builds a profile device exactly the way the root package's
// essdsim.NewDevice does (same RNG derivation), so fixed-seed results here
// match runs driven through the public API. kv's tests cannot import the
// root package: expgrid (which the root package wraps) imports kv, and an
// in-package test importing essdsim would close that cycle.
func newNamedDev(name string, seed uint64) (*sim.Engine, blockdev.Device, error) {
	eng := sim.NewEngine()
	dev, err := profiles.ByName(name, eng, sim.NewRNG(seed, seed^0x4))
	return eng, dev, err
}

// preconditionForWrites half-fills the device — the same GC-free write
// window expgrid.Precondition(dev, forWrites=true) sets up.
func preconditionForWrites(dev blockdev.Device) {
	switch d := dev.(type) {
	case interface{ Precondition(float64) }:
		d.Precondition(0.5)
	case interface{ Precondition(float64, bool) }:
		d.Precondition(0.5, false)
	}
}

func newDev(t *testing.T, name string) (*sim.Engine, blockdev.Device) {
	t.Helper()
	eng, dev, err := newNamedDev(name, 77)
	if err != nil {
		t.Fatal(err)
	}
	preconditionForWrites(dev)
	return eng, dev
}

func TestRingAllocator(t *testing.T) {
	r := newRing(0, 1<<20, 4096)
	a := r.alloc(256 << 10)
	b := r.alloc(256 << 10)
	if a != 0 || b != 256<<10 {
		t.Fatalf("sequential allocs: %d %d", a, b)
	}
	r.alloc(256 << 10)
	r.alloc(128 << 10)
	// 896K used; a 256K request must wrap to 0.
	if off := r.alloc(256 << 10); off != 0 {
		t.Fatalf("wrap alloc at %d, want 0", off)
	}
}

func TestRingAllocatorOversizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized extent accepted")
		}
	}()
	newRing(0, 1<<20, 4096).alloc(2 << 20)
}

func TestAlign(t *testing.T) {
	if align(1, 4096) != 4096 || align(4096, 4096) != 4096 || align(4097, 4096) != 8192 {
		t.Fatal("align wrong")
	}
}

func TestLSMPutAcksFromMemtable(t *testing.T) {
	eng, dev := newDev(t, "essd2")
	l := NewLSM(dev, DefaultLSMConfig())
	acked := false
	l.Put(1, 1024, func() { acked = true })
	if !acked {
		t.Fatal("put below memtable threshold must ack synchronously")
	}
	eng.Run()
	if l.Stats().Puts != 1 || l.Stats().UserBytes != 1024 {
		t.Fatalf("stats %+v", l.Stats())
	}
}

func TestLSMFlushOnMemtableFull(t *testing.T) {
	eng, dev := newDev(t, "essd2")
	cfg := DefaultLSMConfig()
	cfg.MemtableBytes = 64 << 10
	l := NewLSM(dev, cfg)
	for i := 0; i < 65; i++ {
		l.Put(uint64(i), 1024, func() {})
	}
	eng.Run()
	st := l.Stats()
	if st.Flushes == 0 {
		t.Fatal("memtable never flushed")
	}
	if st.DeviceWriteBytes < 64<<10 {
		t.Fatalf("flush wrote %d bytes", st.DeviceWriteBytes)
	}
}

func TestLSMBarrierDrainsEverything(t *testing.T) {
	eng, dev := newDev(t, "essd2")
	cfg := DefaultLSMConfig()
	cfg.MemtableBytes = 32 << 10
	l := NewLSM(dev, cfg)
	for i := 0; i < 100; i++ {
		l.Put(uint64(i), 4096, func() {})
	}
	done := false
	l.Barrier(func() { done = true })
	eng.Run()
	if !done {
		t.Fatal("barrier never fired")
	}
	if l.memUsed != 0 {
		t.Fatalf("memtable not drained: %d", l.memUsed)
	}
}

func TestLSMCompactionTriggersAndAmplifies(t *testing.T) {
	eng, dev := newDev(t, "essd2")
	cfg := DefaultLSMConfig()
	cfg.MemtableBytes = 64 << 10
	cfg.L0CompactTrigger = 2
	l := NewLSM(dev, cfg)
	// Ingest 16 memtables' worth to force several compactions.
	res := Ingest(eng, l, 1024, 1024, 8, 1<<16, 3)
	st := res.Stats
	if st.Compactions == 0 {
		t.Fatal("no compactions")
	}
	if wa := st.WriteAmp(); wa <= 1.3 {
		t.Fatalf("leveled LSM write amplification %.2f, want > 1.3", wa)
	}
	if st.DeviceReadBytes == 0 {
		t.Fatal("compaction read nothing")
	}
}

func TestLSMBackpressureStalls(t *testing.T) {
	eng, dev := newDev(t, "pl1") // slow device: flush lags the client
	cfg := DefaultLSMConfig()
	cfg.MemtableBytes = 64 << 10
	l := NewLSM(dev, cfg)
	res := Ingest(eng, l, 4096, 1024, 32, 1<<16, 4)
	if res.Stats.Stalls == 0 {
		t.Fatal("fast client on slow device never stalled")
	}
	if res.Puts != 4096 {
		t.Fatalf("puts = %d", res.Puts)
	}
}

func TestLSMLevelAccounting(t *testing.T) {
	eng, dev := newDev(t, "essd2")
	cfg := DefaultLSMConfig()
	cfg.MemtableBytes = 64 << 10
	cfg.L0CompactTrigger = 2
	l := NewLSM(dev, cfg)
	Ingest(eng, l, 2048, 1024, 8, 1<<16, 5)
	levels := l.LevelBytes()
	var total int64
	for _, b := range levels {
		if b < 0 {
			t.Fatalf("negative level bytes: %v", levels)
		}
		total += b
	}
	// All ingested data (rounded up per table) lives somewhere.
	if total < 2048*1024 {
		t.Fatalf("levels hold %d bytes, ingested %d", total, 2048*1024)
	}
}

func TestPageStorePutReadsThenWrites(t *testing.T) {
	eng, dev := newDev(t, "essd2")
	cfg := DefaultPageStoreConfig(dev)
	cfg.CachePages = 0 // force misses
	p := NewPageStore(dev, cfg)
	acked := false
	p.Put(42, 512, func() { acked = true })
	if acked {
		t.Fatal("page-store put acked before device write")
	}
	eng.Run()
	if !acked {
		t.Fatal("put never acked")
	}
	st := p.Stats()
	if st.DeviceReads != 1 || st.DeviceWrites != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestPageStoreCacheSkipsRead(t *testing.T) {
	eng, dev := newDev(t, "essd2")
	cfg := DefaultPageStoreConfig(dev)
	cfg.CachePages = 16
	p := NewPageStore(dev, cfg)
	p.Put(7, 512, func() {})
	eng.Run()
	readsAfterFirst := p.Stats().DeviceReads
	p.Put(7, 512, func() {}) // same key: cached page
	eng.Run()
	if p.Stats().DeviceReads != readsAfterFirst {
		t.Fatal("cached put still read the page")
	}
	if p.Stats().DeviceWrites != 2 {
		t.Fatalf("writes = %d", p.Stats().DeviceWrites)
	}
}

func TestPageStoreCacheEviction(t *testing.T) {
	eng, dev := newDev(t, "essd2")
	cfg := DefaultPageStoreConfig(dev)
	cfg.CachePages = 2
	p := NewPageStore(dev, cfg)
	for k := uint64(0); k < 8; k++ {
		p.Put(k, 512, func() {})
	}
	eng.Run()
	if len(p.cache) > 2 {
		t.Fatalf("cache grew to %d entries", len(p.cache))
	}
}

func TestPageStoreDeterministicPlacement(t *testing.T) {
	_, dev := newDev(t, "essd2")
	p := NewPageStore(dev, DefaultPageStoreConfig(dev))
	if p.pageOf(99) != p.pageOf(99) {
		t.Fatal("placement not deterministic")
	}
	// Spread: 1000 keys should hit many distinct pages.
	pages := map[int64]bool{}
	for k := uint64(0); k < 1000; k++ {
		pages[p.pageOf(k)] = true
	}
	if len(pages) < 900 {
		t.Fatalf("only %d distinct pages for 1000 keys", len(pages))
	}
}

func TestPageStoreOversizedValuePanics(t *testing.T) {
	_, dev := newDev(t, "essd2")
	p := NewPageStore(dev, DefaultPageStoreConfig(dev))
	defer func() {
		if recover() == nil {
			t.Fatal("oversized value accepted")
		}
	}()
	p.Put(1, 64<<10, func() {})
}

func TestIngestConservation(t *testing.T) {
	eng, dev := newDev(t, "essd2")
	p := NewPageStore(dev, DefaultPageStoreConfig(dev))
	res := Ingest(eng, p, 500, 1024, 8, 1<<12, 9)
	if res.Puts != 500 || res.UserBytes != 500*1024 {
		t.Fatalf("result %+v", res)
	}
	if res.PutsPerSec() <= 0 || res.UserMBps() <= 0 {
		t.Fatal("rates not positive")
	}
}

// Property: for any put sequence, the LSM's device writes are sequential
// ring extents — always block-aligned and in range — and every put acks.
func TestLSMPutsAlwaysAckProperty(t *testing.T) {
	f := func(sizes []uint16, seed uint64) bool {
		eng, dev, err := newNamedDev("essd2", seed)
		if err != nil {
			return false
		}
		cfg := DefaultLSMConfig()
		cfg.MemtableBytes = 32 << 10
		l := NewLSM(dev, cfg)
		want := 0
		got := 0
		for _, s := range sizes {
			v := int64(s%8192) + 1
			want++
			l.Put(uint64(s), v, func() { got++ })
		}
		ok := false
		l.Barrier(func() { ok = true })
		eng.Run()
		return ok && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsWriteAmp(t *testing.T) {
	s := Stats{UserBytes: 100, DeviceWriteBytes: 300}
	if s.WriteAmp() != 3 {
		t.Fatalf("WA = %v", s.WriteAmp())
	}
	if (Stats{}).WriteAmp() != 0 {
		t.Fatal("empty WA")
	}
}
