package scenario

import (
	"io"

	"essdsim/internal/results"
	"essdsim/internal/sim"
)

// BurstCellsTable renders the suite as one row per cell: coordinates,
// credit state, throttle/stall columns, and the pre/post-cliff latency and
// throughput split. Schema documented in docs/formats.md.
func BurstCellsTable(r *BurstReport) *results.Table {
	t := results.NewTable("burst_cells",
		"device", "write_ratio_pct", "arrival", "rate_per_s", "offered_mbps",
		"block_size", "ops", "bytes", "elapsed_s",
		"lat_mean_ms", "lat_p50_ms", "lat_p99_ms", "lat_p999_ms", "lat_max_ms",
		"max_outstanding",
		"burstable", "credits_left", "exhaustions", "exhausted_at_s",
		"floor_bps", "throttled", "budget_stall_s",
		"pre_cliff_lat_ms", "post_cliff_lat_ms", "pre_cliff_mbps", "post_cliff_mbps",
	)
	for _, c := range r.Cells {
		t.AddRow(
			c.Device,
			results.Int(int64(c.WriteRatioPct)),
			c.Arrival.String(),
			results.Float(c.RatePerSec),
			results.Float(c.OfferedBps/1e6),
			results.Int(r.BlockSize),
			results.Uint(c.Ops),
			results.Int(c.Bytes),
			results.Seconds(c.Elapsed),
			results.Millis(c.Lat.Mean),
			results.Millis(c.Lat.P50),
			results.Millis(c.Lat.P99),
			results.Millis(c.Lat.P999),
			results.Millis(c.Lat.Max),
			results.Int(int64(c.MaxOutstanding)),
			results.Bool(c.Burstable),
			results.Float(c.CreditsLeft),
			results.Uint(c.Exhaustions),
			results.Seconds(c.ExhaustedAt),
			results.Float(c.Floor),
			results.Bool(c.Throttled),
			results.Seconds(c.BudgetStall),
			results.Millis(c.PreCliffLat),
			results.Millis(c.PostCliffLat),
			results.Float(c.PreCliffBps/1e6),
			results.Float(c.PostCliffBps/1e6),
		)
	}
	return t
}

// BurstTimelinesTable renders every cell's per-interval completion
// timeline: one row per (cell, sample interval), keyed by the cell
// coordinates. Plot mean_lat_ms against interval_start_s and the credit
// cliff is the knee. Schema documented in docs/formats.md.
func BurstTimelinesTable(r *BurstReport) *results.Table {
	t := results.NewTable("burst_timeline",
		"device", "write_ratio_pct", "arrival", "rate_per_s",
		"interval_start_s", "bytes", "mbps", "completions", "mean_lat_ms",
	)
	interval := r.SampleInterval
	if interval <= 0 {
		interval = 10 * sim.Millisecond
	}
	secs := interval.Seconds()
	for _, c := range r.Cells {
		for _, p := range c.Timeline {
			t.AddRow(
				c.Device,
				results.Int(int64(c.WriteRatioPct)),
				c.Arrival.String(),
				results.Float(c.RatePerSec),
				results.Seconds(p.Start),
				results.Int(p.Bytes),
				results.Float(float64(p.Bytes)/secs/1e6),
				results.Uint(p.Completions),
				results.Millis(p.MeanLat),
			)
		}
	}
	return t
}

// NeighborCellsTable renders the noisy-neighbor suite as one row per
// cell: aggressor coordinates, victim tail latency and its inflation over
// the solo-victim control, and the shared-debt throttle columns. Schema
// documented in docs/formats.md.
func NeighborCellsTable(r *NeighborReport) *results.Table {
	t := results.NewTable("neighbor_cells",
		"aggressors", "aggr_rate_per_s", "aggr_write_ratio_pct", "aggr_offered_mbps",
		"victim_ops", "victim_bytes", "victim_elapsed_s", "victim_mbps",
		"victim_lat_mean_ms", "victim_lat_p50_ms", "victim_lat_p99_ms",
		"victim_lat_p999_ms", "victim_lat_max_ms", "victim_max_outstanding",
		"p99_inflation", "p999_inflation",
		"throttled", "throttle_onset_s", "shared_debt_bytes",
		"victim_debt_bytes", "aggr_debt_bytes", "budget_stall_s",
		"aggr_ops", "aggr_bytes",
	)
	for _, c := range r.Cells {
		t.AddRow(
			results.Int(int64(c.Aggressors)),
			results.Float(c.AggrRatePerSec),
			results.Int(int64(c.AggrWriteRatioPct)),
			results.Float(c.AggrOfferedBps/1e6),
			results.Uint(c.VictimOps),
			results.Int(c.VictimBytes),
			results.Seconds(c.VictimElapsed),
			results.Float(c.VictimThroughputBps/1e6),
			results.Millis(c.VictimLat.Mean),
			results.Millis(c.VictimLat.P50),
			results.Millis(c.VictimLat.P99),
			results.Millis(c.VictimLat.P999),
			results.Millis(c.VictimLat.Max),
			results.Int(int64(c.VictimMaxOutstanding)),
			results.Float(c.P99Inflation),
			results.Float(c.P999Inflation),
			results.Bool(c.Throttled),
			results.Seconds(c.ThrottleOnset),
			results.Int(c.SharedDebt),
			results.Int(c.VictimDebt),
			results.Int(c.AggrDebt),
			results.Seconds(c.BudgetStall),
			results.Uint(c.AggrOps),
			results.Int(c.AggrBytes),
		)
	}
	return t
}

// WriteNeighborCSV dumps the per-cell neighbor table as CSV.
func WriteNeighborCSV(w io.Writer, r *NeighborReport) error {
	return NeighborCellsTable(r).WriteCSV(w)
}

// IsolationComparisonTable renders the cross-policy comparison as one row
// per (policy, cell): the policy name, the cell's aggressor coordinates,
// the victim tails, and the inflation over that policy's own solo
// control. Schema documented in docs/formats.md.
func IsolationComparisonTable(r *IsolationReport) *results.Table {
	t := results.NewTable("isolation_comparison",
		"policy", "aggressors", "aggr_rate_per_s", "aggr_write_ratio_pct",
		"victim_lat_p50_ms", "victim_lat_p99_ms", "victim_lat_p999_ms",
		"p99_inflation", "p999_inflation", "throttled", "shared_debt_bytes",
	)
	for _, v := range r.Variants {
		for _, c := range v.Report.Cells {
			t.AddRow(
				v.Policy.String(),
				results.Int(int64(c.Aggressors)),
				results.Float(c.AggrRatePerSec),
				results.Int(int64(c.AggrWriteRatioPct)),
				results.Millis(c.VictimLat.P50),
				results.Millis(c.VictimLat.P99),
				results.Millis(c.VictimLat.P999),
				results.Float(c.P99Inflation),
				results.Float(c.P999Inflation),
				results.Bool(c.Throttled),
				results.Int(c.SharedDebt),
			)
		}
	}
	return t
}

// WriteIsolationCSV dumps the per-(policy, cell) comparison table as CSV.
func WriteIsolationCSV(w io.Writer, r *IsolationReport) error {
	return IsolationComparisonTable(r).WriteCSV(w)
}

// KVCellsTable renders the KV tenant-mix suite as one row per cell:
// coordinates (tier, engine design, key skew, value size), the aggregate
// op rate and latency tail, and the engine-level amplification, cache,
// and shared-debt columns. Schema documented in docs/formats.md.
func KVCellsTable(r *KVMixReport) *results.Table {
	t := results.NewTable("kv_cells",
		"tier", "engine", "skew", "value_size", "tenants", "ops_per_tenant",
		"rate_per_s", "read_frac_pct",
		"ops", "puts", "gets", "elapsed_s", "ops_per_sec",
		"lat_mean_ms", "lat_p50_ms", "lat_p99_ms", "lat_p999_ms", "lat_max_ms",
		"max_outstanding",
		"read_amp", "write_amp", "cache_hit_pct",
		"stalls", "flushes", "compactions",
		"shared_debt_bytes", "throttled_tenants", "cached",
	)
	for _, c := range r.Cells {
		t.AddRow(
			c.Tier,
			c.Engine,
			results.Float(c.Skew),
			results.Int(c.ValueSize),
			results.Int(int64(r.Tenants)),
			results.Uint(r.OpsPerTenant),
			results.Float(r.RatePerSec),
			results.Int(int64(r.ReadFracPct)),
			results.Uint(c.Ops),
			results.Uint(c.Puts),
			results.Uint(c.Gets),
			results.Seconds(c.Elapsed),
			results.Float(c.OpsPerSec),
			results.Millis(c.Lat.Mean),
			results.Millis(c.Lat.P50),
			results.Millis(c.Lat.P99),
			results.Millis(c.Lat.P999),
			results.Millis(c.Lat.Max),
			results.Int(int64(c.MaxOutstanding)),
			results.Float(c.ReadAmp),
			results.Float(c.WriteAmp),
			results.Float(c.CacheHitPct),
			results.Uint(c.Stalls),
			results.Uint(c.Flushes),
			results.Uint(c.Compactions),
			results.Int(c.SharedDebt),
			results.Int(int64(c.Throttled)),
			results.Bool(c.Cached),
		)
	}
	return t
}

// WriteKVCSV dumps the per-cell KV tenant-mix table as CSV.
func WriteKVCSV(w io.Writer, r *KVMixReport) error {
	return KVCellsTable(r).WriteCSV(w)
}

// WriteBurstCSV dumps the per-cell table as CSV.
func WriteBurstCSV(w io.Writer, r *BurstReport) error {
	return BurstCellsTable(r).WriteCSV(w)
}

// WriteBurstTimelineCSV dumps the per-interval timeline table as CSV.
func WriteBurstTimelineCSV(w io.Writer, r *BurstReport) error {
	return BurstTimelinesTable(r).WriteCSV(w)
}
