package sim

import "testing"

// drainPipe floods a scheduled pipe with per-flow transfers and returns the
// bytes each flow completed by the time the engine drains.
func drainPipe(t *testing.T, q FlowQueue, flows, chunks int, chunk int64, weights []float64, reserved []float64) []int64 {
	t.Helper()
	e := NewEngine()
	p := NewPipe(e, "p", 1<<20) // 1 MiB/s
	p.SetQueue(q)
	done := make([]int64, flows)
	for f := 0; f < flows; f++ {
		w, r := 1.0, 0.0
		if weights != nil {
			w = weights[f]
		}
		if reserved != nil {
			r = reserved[f]
		}
		p.SetFlow(f, w, r)
	}
	// All transfers submitted at t=0: the first seizes the pipe, the rest
	// contend in the scheduler.
	for c := 0; c < chunks; c++ {
		for f := 0; f < flows; f++ {
			f := f
			p.TransferFlow(f, chunk, func() { done[f] += chunk })
		}
	}
	e.Run()
	return done
}

func TestDRRWeightedShares(t *testing.T) {
	// Two flows, weights 1 and 3, equal backlogs of equal-size chunks.
	// Run the engine for a bounded horizon and check in-progress shares.
	e := NewEngine()
	p := NewPipe(e, "p", 1<<20)
	p.SetQueue(NewDRRQueue(64 << 10))
	p.SetFlow(0, 1, 0)
	p.SetFlow(1, 3, 0)
	var got [2]int64
	chunk := int64(64 << 10)
	for c := 0; c < 64; c++ {
		for f := 0; f < 2; f++ {
			f := f
			p.TransferFlow(f, chunk, func() { got[f] += chunk })
		}
	}
	// Stop halfway through the total backlog so both flows are still
	// backlogged: shares should track weights 1:3.
	e.RunFor(2 * Second) // 2 MiB of 8 MiB total
	if got[0] == 0 || got[1] == 0 {
		t.Fatalf("a flow starved: %v", got)
	}
	ratio := float64(got[1]) / float64(got[0])
	if ratio < 2.0 || ratio > 4.0 {
		t.Fatalf("weight-3 flow got %.2fx the weight-1 flow, want ~3x (%v)", ratio, got)
	}
}

func TestDRRWorkConservingAndComplete(t *testing.T) {
	done := drainPipe(t, NewDRRQueue(64<<10), 3, 16, 32<<10, nil, nil)
	for f, d := range done {
		if d != 16*(32<<10) {
			t.Fatalf("flow %d completed %d bytes, want %d", f, d, 16*(32<<10))
		}
	}
}

func TestReservationPriority(t *testing.T) {
	// Flow 0 reserves half the pipe; flow 1 floods it. While both are
	// backlogged, flow 0 should see at least ~its reserved share even at
	// weight parity against a heavier backlog.
	e := NewEngine()
	p := NewPipe(e, "p", 1<<20)
	p.SetQueue(NewReservationQueue(e, 64<<10))
	p.SetFlow(0, 1, float64(512<<10)) // reserve 512 KiB/s of 1 MiB/s
	p.SetFlow(1, 1, 0)
	var got [2]int64
	chunk := int64(32 << 10)
	for c := 0; c < 16; c++ {
		p.TransferFlow(0, chunk, func() { got[0] += chunk })
	}
	for c := 0; c < 128; c++ {
		p.TransferFlow(1, chunk, func() { got[1] += chunk })
	}
	e.RunFor(1 * Second)
	// In 1s the reserved flow should have moved close to min(backlog,
	// 512 KiB): all 16 chunks = 512 KiB.
	if got[0] < 448<<10 {
		t.Fatalf("reserved flow moved %d bytes in 1s, want >= %d", got[0], 448<<10)
	}
	// Work conservation: the pipe never idles, so total ~1 MiB.
	if total := got[0] + got[1]; total < 960<<10 {
		t.Fatalf("pipe idled: only %d bytes total in 1s", total)
	}
}

func TestReservationWorkConservingWhenReservedIdle(t *testing.T) {
	// The reserved flow submits nothing: the unreserved flow gets the
	// whole pipe (reservation must not strand capacity).
	e := NewEngine()
	p := NewPipe(e, "p", 1<<20)
	p.SetQueue(NewReservationQueue(e, 64<<10))
	p.SetFlow(0, 1, float64(512<<10))
	p.SetFlow(1, 1, 0)
	var moved int64
	for c := 0; c < 32; c++ {
		p.TransferFlow(1, 32<<10, func() { moved += 32 << 10 })
	}
	e.Run()
	if moved != 32*(32<<10) {
		t.Fatalf("unreserved flow moved %d, want %d", moved, 32*(32<<10))
	}
	if want := Duration(float64(32*(32<<10)) / float64(1<<20) * float64(Second)); e.Now() != Time(want) {
		t.Fatalf("drain took %v, want %v (capacity stranded)", e.Now(), want)
	}
}

func TestServerSchedulerFlows(t *testing.T) {
	// A 1-slot server with a DRR queue: both flows complete all visits,
	// and the weight-heavy flow finishes its backlog first.
	e := NewEngine()
	s := NewServer(e, "s", 1)
	s.SetQueue(NewDRRQueue(int64(Millisecond)))
	s.SetFlow(0, 1, 0)
	s.SetFlow(1, 4, 0)
	var finish [2]Time
	for c := 0; c < 20; c++ {
		for f := 0; f < 2; f++ {
			f := f
			s.VisitFlow(f, Millisecond, func() { finish[f] = e.Now() })
		}
	}
	e.Run()
	if s.Served() != 40 {
		t.Fatalf("served %d visits, want 40", s.Served())
	}
	if finish[1] >= finish[0] {
		t.Fatalf("weight-4 flow finished at %v, after weight-1 flow at %v", finish[1], finish[0])
	}
}

func TestScheduledFIFOUnreachedIsIdentical(t *testing.T) {
	// Visits and transfers through the -1 flow on resources WITHOUT a
	// scheduler must behave exactly like the plain calls.
	e := NewEngine()
	s := NewServer(e, "s", 1)
	p := NewPipe(e, "p", 1<<20)
	var order []int
	s.VisitFlow(-1, Millisecond, func() { order = append(order, 1) })
	s.Visit(Millisecond, func() { order = append(order, 2) })
	p.TransferFlow(-1, 1<<20, func() { order = append(order, 3) })
	p.Transfer(1<<20, func() { order = append(order, 4) })
	e.Run()
	want := []int{1, 2, 3, 4}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if p.Backlog() != 0 || s.QueueLen() != 0 {
		t.Fatalf("resources not drained")
	}
}
