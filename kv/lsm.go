package kv

import (
	"fmt"
	"sync"

	"essdsim/internal/blockdev"
	"essdsim/internal/sim"
)

// LSMConfig parameterizes the log-structured merge engine.
type LSMConfig struct {
	// MemtableBytes is the in-memory buffer flushed as one L0 table.
	MemtableBytes int64
	// SegmentIOBytes is the I/O size used for flush/compaction streams
	// (the large sequential writes LSMs are built around).
	SegmentIOBytes int64
	// LevelFanout is the size ratio between adjacent levels.
	LevelFanout int
	// L0CompactTrigger is the number of L0 tables that triggers a
	// compaction into L1.
	L0CompactTrigger int
	// OverlapFrac is the fraction of an input table's size that must be
	// read from (and rewritten to) the next level during compaction —
	// the source of the design's write amplification.
	OverlapFrac float64
	// MaxLevels bounds the tree depth.
	MaxLevels int
	// QueueDepth limits concurrent device I/O from flush/compaction.
	QueueDepth int
}

// DefaultLSMConfig returns leveled-compaction parameters in RocksDB's
// ballpark, scaled to simulator-sized devices.
func DefaultLSMConfig() LSMConfig {
	return LSMConfig{
		MemtableBytes:    8 << 20,
		SegmentIOBytes:   256 << 10,
		LevelFanout:      10,
		L0CompactTrigger: 4,
		OverlapFrac:      1.0,
		MaxLevels:        4,
		QueueDepth:       16,
	}
}

type level struct {
	tables int
	bytes  int64
}

// waiter is one put stalled on a full memtable chain, admitted FIFO when
// the flush catches up.
type waiter struct {
	size int64
	done func()
}

// LSM is a simplified leveled LSM write path: puts buffer in a memtable,
// memtables flush to L0 as sequential segment writes, and level overflow
// triggers compactions that read and rewrite sequential streams. All
// device traffic is sequential and large — the conversion of random
// writes into sequential writes that Implication #3 re-evaluates.
//
// The hot path is allocation-free: flush/compaction streams, their device
// requests, and get probes all come from intrusive per-engine free lists,
// and completions dispatch through bound methods rather than closures.
type LSM struct {
	dev    blockdev.Device
	cfg    LSMConfig
	ring   ringAllocator
	levels []level

	memUsed   int64
	flushBusy bool
	compBusy  bool
	inflight  int
	waiters   []waiter // puts blocked on a full memtable chain
	barriers  []func()
	stats     Stats

	batchDepth  int // open BeginBatch brackets
	batchAdmits int // admissions whose flush check was deferred

	freeStreams *lsmStream
	freeReqs    *lsmReq
	freeGets    *lsmGet
}

// lsmPool recycles whole engines across sweep cells: a pooled LSM keeps
// its level slice, waiter backing array, and every free list (whose
// entries point back at this same struct, so no rebinding is needed).
var lsmPool = sync.Pool{New: func() any { return new(LSM) }}

// NewLSM builds the engine over the device, reusing a pooled engine's
// internal structures when one is available. It panics on invalid
// configuration (programming error).
func NewLSM(dev blockdev.Device, cfg LSMConfig) *LSM {
	bs := int64(dev.BlockSize())
	if cfg.MemtableBytes <= 0 || cfg.SegmentIOBytes <= 0 ||
		cfg.SegmentIOBytes%bs != 0 || cfg.LevelFanout < 2 ||
		cfg.L0CompactTrigger < 1 || cfg.MaxLevels < 1 || cfg.QueueDepth < 1 {
		panic(fmt.Sprintf("kv: bad LSM config %+v", cfg))
	}
	l := lsmPool.Get().(*LSM)
	l.dev = dev
	l.cfg = cfg
	l.ring = ringAllocator{base: 0, size: dev.Capacity(), bs: bs}
	if cap(l.levels) >= cfg.MaxLevels {
		l.levels = l.levels[:cfg.MaxLevels]
		for i := range l.levels {
			l.levels[i] = level{}
		}
	} else {
		l.levels = make([]level, cfg.MaxLevels)
	}
	l.memUsed = 0
	l.flushBusy = false
	l.compBusy = false
	l.inflight = 0
	l.waiters = l.waiters[:0]
	l.barriers = l.barriers[:0]
	l.stats = Stats{}
	l.batchDepth = 0
	l.batchAdmits = 0
	return l
}

// Release returns the engine (and its free-listed streams, requests, and
// probe state) to the package pool for reuse by a later cell. The engine
// must be idle and must not be used afterwards.
func (l *LSM) Release() {
	l.dev = nil
	lsmPool.Put(l)
}

// Name implements Engine.
func (l *LSM) Name() string { return "lsm" }

// Stats implements Engine.
func (l *LSM) Stats() Stats { return l.stats }

// Device implements Engine.
func (l *LSM) Device() blockdev.Device { return l.dev }

// LevelBytes returns the accumulated bytes of each level, for tests.
func (l *LSM) LevelBytes() []int64 {
	out := make([]int64, len(l.levels))
	for i, lv := range l.levels {
		out[i] = lv.bytes
	}
	return out
}

// Put implements Engine: the put acknowledges on memtable admission
// (writes are durable in the real design via a group-committed WAL that
// shares the log's sequential pattern; we fold it into the flush traffic).
func (l *LSM) Put(key uint64, valueSize int64, done func()) {
	if valueSize <= 0 {
		panic("kv: value size must be positive")
	}
	_ = key // placement is size-driven; keys are opaque
	l.stats.Puts++
	l.stats.UserBytes += valueSize
	if l.memUsed >= 2*l.cfg.MemtableBytes {
		// Memtable and its immutable predecessor are both full: stall the
		// put until flushing catches up (write stalls, as in RocksDB).
		l.stats.Stalls++
		l.waiters = append(l.waiters, waiter{size: valueSize, done: done})
		l.maybeFlush()
		return
	}
	l.admit(valueSize, done)
}

// admit accepts one put into the memtable and acknowledges it. Inside a
// batch the flush-threshold check is deferred to EndBatch: the recursive
// pump this replaces ran each admission's check only after every
// subsequently issued put, so by the time any check ran, issuing had
// stopped and at most the first could start a flush — one check against
// the final memtable size is equivalent.
func (l *LSM) admit(valueSize int64, done func()) {
	l.memUsed += valueSize
	done()
	if l.batchDepth > 0 {
		l.batchAdmits++
		return
	}
	if l.memUsed >= l.cfg.MemtableBytes {
		l.maybeFlush()
	}
}

// BeginBatch implements Engine.
func (l *LSM) BeginBatch() { l.batchDepth++ }

// EndBatch implements Engine.
func (l *LSM) EndBatch() {
	l.batchDepth--
	if l.batchDepth == 0 && l.batchAdmits > 0 {
		l.batchAdmits = 0
		if l.memUsed >= l.cfg.MemtableBytes {
			l.maybeFlush()
		}
	}
}

// Get implements Engine. The simulator models lookup cost, not contents:
// the key hashes to a residence — the memtable with probability
// proportional to its share of stored bytes (a recency proxy), otherwise
// a level chosen weighted by level size. A memtable hit answers in
// memory; a miss probes every L0 table and one fence-guided read per
// deeper non-empty level down to the resident one, as a dependent chain
// of block-sized reads — the read amplification leveled designs pay.
func (l *LSM) Get(key uint64, done func()) {
	l.stats.Gets++
	h := key * 0x9e3779b97f4a7c15
	h ^= h >> 32
	total := l.memUsed
	for _, lv := range l.levels {
		total += lv.bytes
	}
	if total == 0 || int64(h%uint64(total)) < l.memUsed {
		l.stats.CacheHits++
		done()
		return
	}
	l.stats.CacheMisses++
	// Pick the resident level, weighted by level bytes.
	h2 := (h ^ 0xd1b54a32d192ed03) * 0x9e3779b97f4a7c15
	h2 ^= h2 >> 29
	r := int64(h2 % uint64(total-l.memUsed))
	resident := len(l.levels) - 1
	acc := int64(0)
	for i := range l.levels {
		acc += l.levels[i].bytes
		if r < acc {
			resident = i
			break
		}
	}
	probes := 0
	for i := 0; i <= resident; i++ {
		if i == 0 {
			probes += l.levels[0].tables
		} else if l.levels[i].bytes > 0 {
			probes++
		}
	}
	if probes == 0 {
		probes = 1
	}
	g := l.getGet()
	g.done = done
	g.h = h2
	g.left = probes
	g.issue()
}

// Barrier implements Engine.
func (l *LSM) Barrier(done func()) {
	if l.memUsed > 0 {
		l.maybeFlush()
	}
	if l.idle() {
		done()
		return
	}
	l.barriers = append(l.barriers, done)
}

func (l *LSM) idle() bool {
	return !l.flushBusy && !l.compBusy && l.inflight == 0 && l.memUsed == 0
}

func (l *LSM) checkBarriers() {
	if !l.idle() || len(l.barriers) == 0 {
		return
	}
	bs := l.barriers
	l.barriers = nil
	for _, b := range bs {
		b()
	}
	if l.barriers == nil {
		l.barriers = bs[:0] // reuse the drained backing array
	}
}

// maybeFlush starts flushing the memtable to L0 as sequential writes.
func (l *LSM) maybeFlush() {
	if l.flushBusy || l.memUsed == 0 {
		return
	}
	l.flushBusy = true
	l.stats.Flushes++
	bytes := l.memUsed
	if bytes > l.cfg.MemtableBytes {
		bytes = l.cfg.MemtableBytes
	}
	l.memUsed -= bytes
	table := align(bytes, int64(l.dev.BlockSize()))
	l.startStream(true, table, streamFlush, 0, 0, table)
}

func (l *LSM) admitWaiters() {
	for len(l.waiters) > 0 && l.memUsed < 2*l.cfg.MemtableBytes {
		w := l.waiters[0]
		copy(l.waiters, l.waiters[1:])
		l.waiters[len(l.waiters)-1] = waiter{}
		l.waiters = l.waiters[:len(l.waiters)-1]
		l.admit(w.size, w.done)
	}
}

// targetBytes returns the capacity of level i before it overflows.
func (l *LSM) targetBytes(i int) int64 {
	t := l.cfg.MemtableBytes * int64(l.cfg.L0CompactTrigger)
	for j := 0; j < i; j++ {
		t *= int64(l.cfg.LevelFanout)
	}
	return t
}

// maybeCompact merges one overflowing level into the next: read the input
// table plus the overlapping fraction of the next level, write the merged
// run — all as sequential streams.
func (l *LSM) maybeCompact() {
	if l.compBusy {
		return
	}
	src := -1
	for i := 0; i < len(l.levels)-1; i++ {
		if (i == 0 && l.levels[0].tables >= l.cfg.L0CompactTrigger) ||
			(i > 0 && l.levels[i].bytes > l.targetBytes(i)) {
			src = i
			break
		}
	}
	if src < 0 {
		return
	}
	l.compBusy = true
	l.stats.Compactions++
	moved := l.levels[src].bytes
	if src == 0 {
		// Compact all L0 tables together (they overlap each other).
		l.levels[0].tables = 0
	} else {
		moved = l.levels[src].bytes / 2 // move roughly half the level
		if moved <= 0 {
			moved = l.levels[src].bytes
		}
	}
	bs := int64(l.dev.BlockSize())
	moved = align(moved, bs)
	overlap := align(int64(l.cfg.OverlapFrac*float64(moved)), bs)
	l.levels[src].bytes -= moved
	l.startStream(false, moved+overlap, streamCompactRead, src, moved, 0)
}

// Stream purposes: what to do when the last segment of a stream lands.
const (
	streamFlush uint8 = iota
	streamCompactRead
	streamCompactWrite
)

// lsmStream is one sequential flush/compaction run of segment-sized I/Os.
// Offsets for the whole run are allocated from the ring up front — before
// any I/O issues — so concurrent flush and compaction streams claim
// disjoint extents in a deterministic order. The offs/sizes backing
// arrays and the stream struct itself are reused via the engine's free
// list.
type lsmStream struct {
	l        *LSM
	write    bool
	purpose  uint8
	offs     []int64
	sizes    []int64
	next     int
	inflight int
	finished bool

	src        int   // compaction source level
	moved      int64 // compaction bytes moved to src+1
	table      int64 // flush table size
	writeBytes int64 // compaction write-back size (read stream only)

	nextFree *lsmStream
}

func (l *LSM) getStream() *lsmStream {
	s := l.freeStreams
	if s != nil {
		l.freeStreams = s.nextFree
		s.nextFree = nil
		return s
	}
	return &lsmStream{l: l}
}

func (l *LSM) releaseStream(s *lsmStream) {
	s.offs = s.offs[:0]
	s.sizes = s.sizes[:0]
	s.next = 0
	s.inflight = 0
	s.finished = false
	s.src = 0
	s.moved = 0
	s.table = 0
	s.writeBytes = 0
	s.nextFree = l.freeStreams
	l.freeStreams = s
}

// startStream carves total bytes into segment extents (all allocated
// before the first submit) and pumps them at the engine's queue depth.
func (l *LSM) startStream(write bool, total int64, purpose uint8, src int, moved, table int64) {
	s := l.getStream()
	s.write = write
	s.purpose = purpose
	s.src = src
	s.moved = moved
	s.table = table
	if purpose == streamCompactRead {
		s.writeBytes = total // the merged run writes back what it read
	}
	if total > 0 {
		seg := l.cfg.SegmentIOBytes
		bs := int64(l.dev.BlockSize())
		for total > 0 {
			n := seg
			if n > total {
				n = align(total, bs)
			}
			s.offs = append(s.offs, l.ring.alloc(n))
			s.sizes = append(s.sizes, n)
			total -= n
		}
	}
	if len(s.offs) == 0 {
		s.finished = true
		s.complete()
		return
	}
	s.pump()
}

// pump keeps QueueDepth segments in flight.
func (s *lsmStream) pump() {
	l := s.l
	for s.inflight < l.cfg.QueueDepth && s.next < len(s.offs) {
		i := s.next
		s.next++
		s.inflight++
		op := blockdev.Write
		if s.write {
			l.stats.DeviceWrites++
			l.stats.DeviceWriteBytes += s.sizes[i]
		} else {
			op = blockdev.Read
			l.stats.DeviceReads++
			l.stats.DeviceReadBytes += s.sizes[i]
		}
		l.inflight++
		r := l.getReq()
		r.s = s
		r.req.Op = op
		r.req.Offset = s.offs[i]
		r.req.Size = s.sizes[i]
		l.dev.Submit(&r.req)
	}
}

// complete runs the stream's continuation once every segment has landed.
func (s *lsmStream) complete() {
	l := s.l
	switch s.purpose {
	case streamFlush:
		table := s.table
		l.releaseStream(s)
		l.flushBusy = false
		l.levels[0].tables++
		l.levels[0].bytes += table
		l.admitWaiters()
		l.maybeCompact()
		if l.memUsed >= l.cfg.MemtableBytes || (l.memUsed > 0 && len(l.barriers) > 0) {
			l.maybeFlush()
		}
		l.checkBarriers()
	case streamCompactRead:
		src, moved, wb := s.src, s.moved, s.writeBytes
		l.releaseStream(s)
		l.startStream(true, wb, streamCompactWrite, src, moved, 0)
	case streamCompactWrite:
		src, moved := s.src, s.moved
		l.releaseStream(s)
		l.compBusy = false
		dst := src + 1
		l.levels[dst].bytes += moved
		l.levels[dst].tables++
		l.maybeCompact()
		l.checkBarriers()
	}
}

// lsmReq is a pooled device request whose OnComplete is bound once, at
// construction — the per-I/O path allocates nothing.
type lsmReq struct {
	req      blockdev.Request
	s        *lsmStream
	nextFree *lsmReq
}

func (l *LSM) getReq() *lsmReq {
	r := l.freeReqs
	if r != nil {
		l.freeReqs = r.nextFree
		r.nextFree = nil
		return r
	}
	r = &lsmReq{}
	r.req.OnComplete = r.onComplete
	return r
}

func (r *lsmReq) onComplete(_ *blockdev.Request, _ sim.Time) {
	s := r.s
	l := s.l
	r.s = nil
	r.nextFree = l.freeReqs
	l.freeReqs = r
	s.inflight--
	l.inflight--
	if s.next < len(s.offs) {
		s.pump()
		return
	}
	if s.inflight == 0 && !s.finished {
		s.finished = true
		s.complete()
	}
}

// lsmGet is a pooled lookup probing levels as a dependent read chain.
type lsmGet struct {
	l        *LSM
	done     func()
	h        uint64
	left     int
	req      blockdev.Request
	nextFree *lsmGet
}

func (l *LSM) getGet() *lsmGet {
	g := l.freeGets
	if g != nil {
		l.freeGets = g.nextFree
		g.nextFree = nil
		return g
	}
	g = &lsmGet{l: l}
	g.req.OnComplete = g.onComplete
	return g
}

// issue submits the next level probe: one block-sized read at a
// hash-derived offset (the simulator tracks cost, not placement).
func (g *lsmGet) issue() {
	l := g.l
	g.left--
	g.h = g.h*6364136223846793005 + 1442695040888963407
	bs := int64(l.dev.BlockSize())
	blocks := l.dev.Capacity() / bs
	l.stats.DeviceReads++
	l.stats.DeviceReadBytes += bs
	l.stats.GetReads++
	l.inflight++
	g.req.Op = blockdev.Read
	g.req.Offset = int64(g.h%uint64(blocks)) * bs
	g.req.Size = bs
	l.dev.Submit(&g.req)
}

func (g *lsmGet) onComplete(_ *blockdev.Request, _ sim.Time) {
	l := g.l
	l.inflight--
	if g.left > 0 {
		g.issue()
		return
	}
	done := g.done
	g.done = nil
	g.nextFree = l.freeGets
	l.freeGets = g
	done()
	l.checkBarriers()
}

var _ Engine = (*LSM)(nil)
