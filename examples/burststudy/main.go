// burststudy runs the burst-credit scenario suite on the burstable volume
// tiers: open-loop mixed I/O swept across write ratio × arrival shape ×
// offered rate, reporting when each tier's burst credits run out and how
// hard the latency cliff hits afterward (Observation #4 / Implication #4).
//
// The study then reads its own results back: for each (device, rate) it
// contrasts the uniform and bursty timelines — same offered load, very
// different pre-cliff latency — which is exactly the paper's advice to
// smooth arrival timelines on budget-bound volumes.
package main

import (
	"context"
	"fmt"
	"os"

	"essdsim"
)

func main() {
	sweep := essdsim.BurstSweep{
		// Defaults: gp2 + gp2s tiers, write ratios 0/50/100, uniform and
		// bursty arrivals. Trimmed here so the example runs in seconds.
		WriteRatiosPct: []int{50},
		RatesPerSec:    []float64{1500, 3000},
		Ops:            9000,
		Seed:           7,
	}
	rep, err := essdsim.RunBurstScenario(context.Background(), sweep)
	if err != nil {
		panic(err)
	}
	essdsim.FormatBurstReport(os.Stdout, rep)

	fmt.Println()
	fmt.Println("Smoothing the timeline (Implication #4):")
	type key struct {
		dev  string
		rate float64
	}
	cells := map[key]map[string]essdsim.BurstCell{}
	for _, c := range rep.Cells {
		k := key{c.Device, c.RatePerSec}
		if cells[k] == nil {
			cells[k] = map[string]essdsim.BurstCell{}
		}
		cells[k][c.Arrival.String()] = c
	}
	for _, c := range rep.Cells {
		if c.Arrival != essdsim.ArrivalUniform {
			continue
		}
		b, ok := cells[key{c.Device, c.RatePerSec}]["bursty"]
		if !ok {
			continue
		}
		fmt.Printf("  %-5s @ %5.0fM offered: uniform pre-cliff p-lat %8v vs bursty %8v",
			c.Device, c.OfferedBps/1e6, c.PreCliffLat, b.PreCliffLat)
		switch {
		case c.ExhaustedAt < 0 && b.ExhaustedAt < 0:
			fmt.Printf("  (credits last the whole run either way)\n")
		case c.ExhaustedAt >= 0:
			fmt.Printf("  (credits die at %.2fs; post-cliff lat %v)\n",
				c.ExhaustedAt.Seconds(), c.PostCliffLat)
		default:
			fmt.Printf("  (only the bursty timeline exhausts, at %.2fs)\n",
				b.ExhaustedAt.Seconds())
		}
	}
}
