// Package kv implements two key-value write-path designs over simulated
// block devices — a leveled log-structured merge engine (the RocksDB-style
// design the paper's future work targets) and an update-in-place page
// store (B-tree style). The paper's Implication #3 asks whether converting
// random writes into sequential writes is still worth it on an ESSD; these
// engines let users answer that question for their own volume and
// workload, with honest device-level I/O and write-amplification
// accounting.
package kv

import (
	"fmt"

	"essdsim/internal/blockdev"
)

// Stats tallies an engine's user-level and device-level activity.
type Stats struct {
	Puts      uint64
	UserBytes int64
	Gets      uint64

	DeviceWrites     uint64
	DeviceWriteBytes int64
	DeviceReads      uint64
	DeviceReadBytes  int64

	// GetReads counts the device reads issued on behalf of Gets (level
	// probes for the LSM, cache-miss page fetches for the page store).
	// They are included in DeviceReads/DeviceReadBytes too.
	GetReads uint64

	Flushes     uint64 // memtable flushes (LSM)
	Compactions uint64 // compaction rounds (LSM)
	Stalls      uint64 // puts that waited on backpressure

	CacheHits   uint64 // page-cache (or memtable) hits on the read path
	CacheMisses uint64 // read-path lookups that went to the device
}

// ReadAmp returns device reads per get — the read amplification of the
// engine's lookup path. Zero when no gets ran.
func (s Stats) ReadAmp() float64 {
	if s.Gets == 0 {
		return 0
	}
	return float64(s.GetReads) / float64(s.Gets)
}

// WriteAmp returns device write bytes per user byte.
func (s Stats) WriteAmp() float64 {
	if s.UserBytes == 0 {
		return 0
	}
	return float64(s.DeviceWriteBytes) / float64(s.UserBytes)
}

// Engine is an asynchronous key-value write engine bound to one device.
// Put acknowledges according to the engine's durability design (memtable
// admission for the LSM, page write completion for the page store).
type Engine interface {
	// Name identifies the design.
	Name() string
	// Put ingests one key/value of the given value size. done fires when
	// the engine acknowledges the put. Keys are opaque identifiers; the
	// simulation tracks sizes and placement, not contents.
	Put(key uint64, valueSize int64, done func())
	// Get reads one key. done fires when the lookup completes: from
	// memory (memtable or page cache) synchronously, or after the
	// engine's device reads (level probes for the LSM, one page read for
	// the page store) finish.
	Get(key uint64, done func())
	// BeginBatch/EndBatch bracket a run of back-to-back Puts issued by a
	// closed-loop pump. Inside a batch the engine defers its post-admission
	// housekeeping (the LSM's flush-threshold check) to EndBatch — the
	// iterative equivalent of the historical recursive pump, which ran
	// those checks LIFO after the issue cascade. Engines with no
	// admission housekeeping treat both as no-ops.
	BeginBatch()
	EndBatch()
	// Barrier fires done once all previously accepted work (including
	// background flushes and compactions) has reached the device.
	Barrier(done func())
	// Stats returns an activity snapshot.
	Stats() Stats
	// Device exposes the block device the engine runs on.
	Device() blockdev.Device
}

// align rounds n up to a multiple of bs.
func align(n, bs int64) int64 {
	if r := n % bs; r != 0 {
		n += bs - r
	}
	return n
}

// ringAllocator hands out sequential, block-aligned extents from a device
// region, wrapping at the end — the address-space behaviour of a
// log-structured store that recycles its oldest segments.
type ringAllocator struct {
	base, size int64
	head       int64
	bs         int64
}

func newRing(base, size, blockSize int64) *ringAllocator {
	return &ringAllocator{base: base, size: size, bs: blockSize}
}

// alloc returns a device offset for n bytes (n must be block-aligned and
// fit in the ring). Extents never straddle the wrap point.
func (r *ringAllocator) alloc(n int64) int64 {
	if n > r.size {
		panic(fmt.Sprintf("kv: extent %d exceeds ring %d", n, r.size))
	}
	if r.head+n > r.size {
		r.head = 0 // wrap: recycle the oldest segments
	}
	off := r.base + r.head
	r.head += n
	return off
}
