package profiles

import (
	"fmt"
	"testing"

	"essdsim/internal/blockdev"
	"essdsim/internal/sim"
	"essdsim/internal/workload"
)

// TestCalibrationProbe prints representative Figure 2 cells for eyeballing
// calibration against the paper's annotations. Run with -v to see values.
func TestCalibrationProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe skipped in -short")
	}
	type cell struct {
		pattern workload.Pattern
		bs      int64
		qd      int
	}
	cells := []cell{
		{workload.RandWrite, 4 << 10, 1},
		{workload.RandWrite, 4 << 10, 16},
		{workload.RandWrite, 256 << 10, 1},
		{workload.RandWrite, 256 << 10, 16},
		{workload.SeqWrite, 4 << 10, 1},
		{workload.RandRead, 4 << 10, 1},
		{workload.RandRead, 4 << 10, 16},
		{workload.RandRead, 256 << 10, 1},
		{workload.SeqRead, 4 << 10, 1},
		{workload.SeqRead, 256 << 10, 16},
	}
	mk := func(name string, forWrites bool) blockdev.Device {
		eng := sim.NewEngine()
		d, err := ByName(name, eng, sim.NewRNG(7, 7))
		if err != nil {
			t.Fatal(err)
		}
		switch dd := d.(type) {
		case interface{ Precondition(float64) }:
			dd.Precondition(1.0)
		case interface{ Precondition(float64, bool) }:
			if forWrites {
				dd.Precondition(0.5, false) // GC-free write window
			} else {
				dd.Precondition(1.0, false) // sequential layout, as after fio fill
			}
		}
		return d
	}
	for _, c := range cells {
		line := fmt.Sprintf("%-10s bs=%-4d qd=%-3d", c.pattern, c.bs>>10, c.qd)
		isWrite := c.pattern == workload.RandWrite || c.pattern == workload.SeqWrite
		for _, name := range []string{"essd1", "essd2", "ssd"} {
			d := mk(name, isWrite)
			res := workload.Run(d, workload.Spec{
				Pattern:    c.pattern,
				BlockSize:  c.bs,
				QueueDepth: c.qd,
				Duration:   400 * sim.Millisecond,
				Warmup:     50 * sim.Millisecond,
				Seed:       99,
			})
			s := res.Lat.Summarize()
			line += fmt.Sprintf(" | %s avg=%v p999=%v", name, s.Mean, s.P999)
		}
		t.Log(line)
	}
}
