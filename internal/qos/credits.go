package qos

import (
	"math"

	"essdsim/internal/sim"
)

// CreditBucket models burstable cloud volume tiers (AWS gp2-style burst
// credits): the volume earns credits at a baseline rate and may spend them
// above baseline up to a burst ceiling; when the credit balance empties,
// throughput falls to the sustained floor (see SustainedFloor) as spends
// queue behind the ongoing baseline earn. This is the general form of the
// budget machinery behind Observation #4 for the cheaper volume classes.
type CreditBucket struct {
	eng *sim.Engine

	baseline float64 // bytes/s earned continuously
	burst    float64 // bytes/s ceiling while credits remain
	capacity float64 // maximum banked credit, in bytes

	credits  float64
	lastFill sim.Time
	nextFree sim.Time // serialization point for Acquire

	spentAboveBase float64
	exhaustions    uint64
	firstEmpty     sim.Time // virtual time of the first exhaustion; -1 until then
}

// NewCreditBucket returns a bucket with a full credit balance.
func NewCreditBucket(eng *sim.Engine, baseline, burst, capacity float64) *CreditBucket {
	if baseline <= 0 {
		baseline = 1
	}
	if burst < baseline {
		burst = baseline
	}
	if capacity < 0 {
		capacity = 0
	}
	return &CreditBucket{
		eng:        eng,
		baseline:   baseline,
		burst:      burst,
		capacity:   capacity,
		credits:    capacity,
		firstEmpty: -1,
	}
}

// Baseline returns the sustained rate in bytes/s.
func (c *CreditBucket) Baseline() float64 { return c.baseline }

// Burst returns the credit-backed ceiling in bytes/s.
func (c *CreditBucket) Burst() float64 { return c.burst }

// Credits returns the current banked credit in bytes.
func (c *CreditBucket) Credits() float64 {
	c.settle(0)
	return c.credits
}

// PeekCredits returns the balance Credits would report now WITHOUT
// settling the accrual state. Credits() folds the elapsed earn into the
// stored balance, and the extra float additions from out-of-band callers
// (observability probes sampling mid-run) would change the rounding of
// later settles — so probes read through this instead, leaving the real
// arithmetic untouched.
func (c *CreditBucket) PeekCredits() float64 {
	credits := c.credits
	if dt := c.eng.Now().Sub(c.lastFill).Seconds(); dt > 0 {
		credits += dt * c.baseline
		if credits > c.capacity {
			credits = c.capacity
		}
	}
	return credits
}

// Exhaustions counts the times the balance hit zero.
func (c *CreditBucket) Exhaustions() uint64 { return c.exhaustions }

// ExhaustedAt returns the virtual time the balance first hit zero, or -1
// when it never has. Spends are charged at enqueue time, so the timestamp
// marks when the exhausting spend was accepted, not when its bytes drained.
func (c *CreditBucket) ExhaustedAt() sim.Time { return c.firstEmpty }

// SustainedFloor returns the long-run rate (bytes/s) a continuously
// backlogged workload sustains after exhaustion when spends are charged
// just in time (a closed feedback loop). Credits earned while draining let
// a slice of each spend ride the burst rate (each burst byte costs
// 1-baseline/burst credits), so the floor is min(burst, 2×baseline) rather
// than the bare baseline. Open-loop schedules that charge their whole
// backlog at enqueue time earn less between spends and land between
// baseline and this floor.
func (c *CreditBucket) SustainedFloor() float64 {
	if c.capacity <= 0 {
		// Nothing can bank, so earned credits are lost and the floor is
		// the bare baseline.
		return c.baseline
	}
	if f := 2 * c.baseline; f < c.burst {
		return f
	}
	return c.burst
}

// DrainRate returns the net credit consumption in bytes/s at a sustained
// offered rate: bytes above baseline cost (1 - baseline/burst) credits
// each while the bucket earns baseline continuously — the closed-form of
// the Spend/settle arithmetic. Non-positive means the balance never
// shrinks at that rate.
func (c *CreditBucket) DrainRate(offered float64) float64 {
	if c.capacity <= 0 || c.burst <= c.baseline {
		return 0
	}
	if offered > c.burst {
		offered = c.burst
	}
	return offered*(1-c.baseline/c.burst) - c.baseline
}

// TimeToExhaustion returns the seconds a full credit balance survives a
// sustained offered rate, or +Inf when it never empties. This is the
// analytic bound the fleet screen scores credit pressure with, kept next
// to the bucket arithmetic it mirrors so the two cannot drift apart.
func (c *CreditBucket) TimeToExhaustion(offered float64) float64 {
	drain := c.DrainRate(offered)
	if drain <= 0 {
		return math.Inf(1)
	}
	return c.capacity / drain
}

// settle accrues earned credits up to now and debits spend bytes consumed
// above baseline.
func (c *CreditBucket) settle(spendAboveBase float64) {
	now := c.eng.Now()
	dt := now.Sub(c.lastFill).Seconds()
	c.lastFill = now
	if dt > 0 {
		c.credits += dt * c.baseline
		if c.credits > c.capacity {
			c.credits = c.capacity
		}
	}
	if spendAboveBase > 0 {
		c.credits -= spendAboveBase
		c.spentAboveBase += spendAboveBase
		if c.credits <= 0 {
			c.credits = 0
			c.exhaustions++
			if c.firstEmpty < 0 {
				c.firstEmpty = now
			}
		}
	}
}

// RateNow returns the rate (bytes/s) the volume currently sustains: the
// burst ceiling while credits remain, baseline otherwise.
func (c *CreditBucket) RateNow() float64 {
	c.settle(0)
	if c.credits > 0 {
		return c.burst
	}
	return c.baseline
}

// Acquire serializes n bytes through the credit-limited rate: the bytes
// queue behind all previously acquired bytes, move at the burst rate while
// credits last and at baseline after, and done fires when the last byte
// drains. This is the volume-level throttle point of a burstable tier.
// The spend is sized against the credit state at enqueue time, which
// slightly under-counts credits earned while queued — conservative, and
// negligible at simulation timescales.
func (c *CreditBucket) Acquire(n int64, done func()) {
	now := c.eng.Now()
	start := c.nextFree
	if start < now {
		start = now
	}
	finish := start.Add(c.Spend(n))
	c.nextFree = finish
	c.eng.At(finish, done)
}

// Spend records n bytes of I/O and returns the service time those bytes
// take under the current credit state: bytes covered by credits move at
// the burst rate, the remainder at baseline. Callers schedule their I/O
// completion after the returned duration (plus per-request latency).
func (c *CreditBucket) Spend(n int64) sim.Duration {
	if n <= 0 {
		return 0
	}
	c.settle(0)
	bytes := float64(n)
	var secs float64
	// Portion of the spend that can ride the burst rate: each burst-rate
	// byte consumes (1 - baseline/burst) credits.
	if c.credits > 0 && c.burst > c.baseline {
		creditPerByte := 1 - c.baseline/c.burst
		burstBytes := bytes
		if need := burstBytes * creditPerByte; need > c.credits {
			burstBytes = c.credits / creditPerByte
		}
		secs += burstBytes / c.burst
		c.settle(burstBytes * creditPerByte)
		bytes -= burstBytes
	}
	if bytes > 0 {
		secs += bytes / c.baseline
	}
	return sim.Duration(secs * float64(sim.Second))
}
