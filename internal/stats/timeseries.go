package stats

import (
	"essdsim/internal/sim"
)

// ThroughputSeries accumulates completed bytes into fixed-width time buckets
// and reports a GB/s (or arbitrary-unit) timeline — the measurement behind
// the paper's Figure 3 runtime-throughput plot.
type ThroughputSeries struct {
	interval sim.Duration
	buckets  []int64
	total    int64
}

// NewThroughputSeries returns a series with the given bucket width.
func NewThroughputSeries(interval sim.Duration) *ThroughputSeries {
	if interval <= 0 {
		interval = sim.Second
	}
	return &ThroughputSeries{interval: interval}
}

// Interval returns the bucket width.
func (t *ThroughputSeries) Interval() sim.Duration { return t.interval }

// Add records n bytes completed at time at.
func (t *ThroughputSeries) Add(at sim.Time, n int64) {
	idx := int(int64(at) / int64(t.interval))
	for len(t.buckets) <= idx {
		t.buckets = append(t.buckets, 0)
	}
	t.buckets[idx] += n
	t.total += n
}

// Total returns the total bytes recorded.
func (t *ThroughputSeries) Total() int64 { return t.total }

// Len returns the number of buckets.
func (t *ThroughputSeries) Len() int { return len(t.buckets) }

// Bytes returns the bytes recorded in bucket i.
func (t *ThroughputSeries) Bytes(i int) int64 {
	if i < 0 || i >= len(t.buckets) {
		return 0
	}
	return t.buckets[i]
}

// Rate returns the throughput of bucket i in bytes per second.
func (t *ThroughputSeries) Rate(i int) float64 {
	return float64(t.Bytes(i)) / t.interval.Seconds()
}

// Rates returns the whole timeline in bytes per second.
func (t *ThroughputSeries) Rates() []float64 {
	out := make([]float64, len(t.buckets))
	for i := range t.buckets {
		out[i] = t.Rate(i)
	}
	return out
}

// MeanRate returns the average throughput over buckets [from, to).
func (t *ThroughputSeries) MeanRate(from, to int) float64 {
	if from < 0 {
		from = 0
	}
	if to > len(t.buckets) {
		to = len(t.buckets)
	}
	if to <= from {
		return 0
	}
	var sum int64
	for i := from; i < to; i++ {
		sum += t.buckets[i]
	}
	return float64(sum) / (float64(to-from) * t.interval.Seconds())
}

// KneeIndex locates the first sustained throughput drop: the first bucket
// whose trailing window mean falls below frac times the peak of the
// preceding prefix. It returns -1 if no such drop exists. window smooths
// out single-bucket noise.
func (t *ThroughputSeries) KneeIndex(frac float64, window int) int {
	if window < 1 {
		window = 1
	}
	if len(t.buckets) < 2*window {
		return -1
	}
	// Peak of the smoothed series so far.
	peak := 0.0
	for i := 0; i+window <= len(t.buckets); i++ {
		m := t.MeanRate(i, i+window)
		if m > peak {
			peak = m
			continue
		}
		if peak > 0 && m < frac*peak {
			return i
		}
	}
	return -1
}

// LatencySeries accumulates completion latencies into fixed-width time
// buckets keyed by completion time, reporting a mean-latency timeline. It is
// the measurement behind pre/post-cliff latency comparisons: split the
// buckets at an event time (credit exhaustion, throttle engagement) and
// compare the two halves.
type LatencySeries struct {
	interval  sim.Duration
	sums      []sim.Duration
	counts    []uint64
	hists     []*Histogram // per-bucket distributions; nil unless trackHist
	trackHist bool
}

// NewLatencySeries returns a series with the given bucket width.
func NewLatencySeries(interval sim.Duration) *LatencySeries {
	if interval <= 0 {
		interval = sim.Second
	}
	return &LatencySeries{interval: interval}
}

// NewLatencySeriesHist returns a series that additionally keeps a full
// latency histogram per bucket, enabling PercentileRange over arbitrary
// windows. Each non-empty bucket costs a few KiB, so use it for bounded
// runs (SLO probes) rather than unbounded timelines.
func NewLatencySeriesHist(interval sim.Duration) *LatencySeries {
	l := NewLatencySeries(interval)
	l.trackHist = true
	return l
}

// HasHistograms reports whether the series tracks per-bucket histograms
// (and hence supports PercentileRange).
func (l *LatencySeries) HasHistograms() bool { return l.trackHist }

// Interval returns the bucket width.
func (l *LatencySeries) Interval() sim.Duration { return l.interval }

// Len returns the number of buckets.
func (l *LatencySeries) Len() int { return len(l.sums) }

// Add records one completion with the given latency at time at.
func (l *LatencySeries) Add(at sim.Time, lat sim.Duration) {
	idx := int(int64(at) / int64(l.interval))
	for len(l.sums) <= idx {
		l.sums = append(l.sums, 0)
		l.counts = append(l.counts, 0)
		if l.trackHist {
			l.hists = append(l.hists, nil)
		}
	}
	l.sums[idx] += lat
	l.counts[idx]++
	if l.trackHist {
		if l.hists[idx] == nil {
			l.hists[idx] = NewHistogram()
		}
		l.hists[idx].Record(lat)
	}
}

// Count returns the completions recorded in bucket i.
func (l *LatencySeries) Count(i int) uint64 {
	if i < 0 || i >= len(l.counts) {
		return 0
	}
	return l.counts[i]
}

// Mean returns the mean latency of bucket i (0 when empty).
func (l *LatencySeries) Mean(i int) sim.Duration {
	if i < 0 || i >= len(l.sums) || l.counts[i] == 0 {
		return 0
	}
	return l.sums[i] / sim.Duration(l.counts[i])
}

// MeanRange returns the completion-weighted mean latency over buckets
// [from, to), or 0 when the range holds no completions.
func (l *LatencySeries) MeanRange(from, to int) sim.Duration {
	if from < 0 {
		from = 0
	}
	if to > len(l.sums) {
		to = len(l.sums)
	}
	var sum sim.Duration
	var n uint64
	for i := from; i < to; i++ {
		sum += l.sums[i]
		n += l.counts[i]
	}
	if n == 0 {
		return 0
	}
	return sum / sim.Duration(n)
}

// CountRange returns the completions recorded over buckets [from, to).
func (l *LatencySeries) CountRange(from, to int) uint64 {
	if from < 0 {
		from = 0
	}
	if to > len(l.counts) {
		to = len(l.counts)
	}
	var n uint64
	for i := from; i < to; i++ {
		n += l.counts[i]
	}
	return n
}

// PercentileRange returns the latency at quantile p over buckets [from,
// to). It requires a series built with NewLatencySeriesHist and returns 0
// when histograms are not tracked or the window holds no completions.
// The quantile is computed by a rank scan across the per-bucket histograms
// in place — no merged histogram is materialized, so sweeps that query many
// windows (SLO probes, windowed-percentile reports) allocate nothing here.
func (l *LatencySeries) PercentileRange(from, to int, p float64) sim.Duration {
	if !l.trackHist {
		return 0
	}
	if from < 0 {
		from = 0
	}
	if to > len(l.hists) {
		to = len(l.hists)
	}
	return percentileAcross(l.hists[from:to], p)
}

// Counter is a simple monotonically increasing tally of operations and bytes.
type Counter struct {
	Ops   uint64
	Bytes int64
}

// Add records one operation of n bytes.
func (c *Counter) Add(n int64) {
	c.Ops++
	c.Bytes += n
}

// Welford tracks online mean and variance.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
}

// Add records one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the observation count.
func (w *Welford) N() uint64 { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the running sample variance.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}
