// Package ftl implements the flash translation layer of the simulated local
// SSD (paper §II-A): page-level address mapping, superblock write frontiers,
// a DRAM write buffer with coalescing and backpressure, greedy garbage
// collection with valid-page relocation, TRIM, and wear accounting.
//
// All state mutations happen synchronously inside the simulation engine's
// event callbacks; the flash array (package flash) models only time. The
// performance phenomena the paper attributes to the local SSD — the fast
// buffered small writes, the GC throughput cliff near 90% of capacity
// written, and GC-induced tail latencies — emerge from these mechanisms
// rather than from fitted curves.
package ftl

import (
	"fmt"

	"essdsim/internal/flash"
	"essdsim/internal/sim"
)

// Config parameterizes the FTL.
type Config struct {
	LogicalPageSize int64   // host-visible block size, typically 4096
	UserCapacity    int64   // advertised capacity in bytes
	Overprovision   float64 // extra physical space fraction, e.g. 0.05

	WriteBufferBytes int64 // DRAM write buffer capacity

	GCLowWaterFrac  float64 // GC starts when free superblocks fall below this fraction
	GCHighWaterFrac float64 // GC stops when free superblocks reach this fraction
	ReserveSBs      int     // superblocks reserved for the GC frontier
	GCStreams       int     // concurrent relocation pipelines during GC
}

// DefaultConfig returns the scaled-970Pro FTL parameters used by the SSD
// profile.
func DefaultConfig(userCapacity int64) Config {
	return Config{
		LogicalPageSize:  4096,
		UserCapacity:     userCapacity,
		Overprovision:    0.05,
		WriteBufferBytes: 64 << 20,
		GCLowWaterFrac:   0.06,
		GCHighWaterFrac:  0.08,
		ReserveSBs:       2,
		GCStreams:        16,
	}
}

// Superblock states.
const (
	sbFree uint8 = iota
	sbOpen
	sbClosed
	sbVictim
)

// Buffer state flags per LPN: low bit marks a pending (not yet drained)
// entry, the upper bits count in-flight program copies.
const (
	bufPending  uint8 = 1
	bufInflight uint8 = 2 // increment per in-flight copy
)

const unmapped int32 = -1

type frontier struct {
	sb   int32 // open superblock, or -1
	next int32 // next slot index within sb
}

// Counters exposes FTL activity for write-amplification and wear analysis.
type Counters struct {
	HostSlots         uint64 // slots written on behalf of the host
	GCSlots           uint64 // slots written by GC relocation
	PreconditionSlots uint64
	Erases            uint64 // superblock erases
	GCVictims         uint64
	InvalidatedBytes  int64
	BufferCoalesced   uint64 // overwrites absorbed in the write buffer
	BufferStallNanos  sim.Duration
}

// WriteAmplification returns (host+gc)/host slot writes, or 1 if no host
// writes have occurred.
func (c Counters) WriteAmplification() float64 {
	if c.HostSlots == 0 {
		return 1
	}
	return float64(c.HostSlots+c.GCSlots) / float64(c.HostSlots)
}

// FTL is the flash translation layer state machine.
type FTL struct {
	eng *sim.Engine
	arr *flash.Array
	cfg Config

	// Geometry, derived once.
	dies         int
	slotsPerPage int
	slotsPerUnit int
	slotsPerSB   int
	numSBs       int
	userLPNs     int64

	// Address state.
	mapping  []int32 // LPN -> packed PPN (sb*slotsPerSB + slot)
	rmap     []int32 // PPN -> LPN
	sbValid  []int32
	sbErases []int32
	sbState  []uint8
	freeSBs  []int32

	host frontier
	gc   frontier

	// Write buffer.
	bufState    []uint8 // per-LPN buffer flags
	bufUsed     int64
	pendingFIFO []int64
	waiters     []waiter
	drainBusy   []int8 // in-flight program units per die
	forceFlush  int    // outstanding flush requests
	flushDone   []func()

	gcActive bool

	counters Counters
}

type waiter struct {
	lpn   int64
	count int64
	since sim.Time
	done  func()
}

// New builds an FTL over the given flash array. It panics on inconsistent
// configuration (a construction-time programming error).
func New(eng *sim.Engine, arr *flash.Array, cfg Config) *FTL {
	fc := arr.Config()
	if cfg.LogicalPageSize <= 0 || fc.PageSize%cfg.LogicalPageSize != 0 {
		panic(fmt.Sprintf("ftl: flash page %d not a multiple of logical page %d",
			fc.PageSize, cfg.LogicalPageSize))
	}
	f := &FTL{eng: eng, arr: arr, cfg: cfg}
	f.dies = fc.Dies()
	f.slotsPerPage = int(fc.PageSize / cfg.LogicalPageSize)
	f.slotsPerUnit = f.slotsPerPage * fc.PlanesPerDie
	f.slotsPerSB = f.slotsPerUnit * f.dies * fc.PagesPerBlock
	f.userLPNs = cfg.UserCapacity / cfg.LogicalPageSize
	physSlots := int64(float64(f.userLPNs) * (1 + cfg.Overprovision))
	f.numSBs = int((physSlots + int64(f.slotsPerSB) - 1) / int64(f.slotsPerSB))
	// The pool must be large enough that the GC high-water mark stays
	// reachable at full logical utilization (user data fully packed, both
	// frontiers open, one superblock of slack); otherwise GC would churn
	// forever against an unreachable target. Iterate because the water
	// marks scale with the pool size.
	userSBs := int((f.userLPNs + int64(f.slotsPerSB) - 1) / int64(f.slotsPerSB))
	for {
		need := userSBs + 2 + f.highWaterSBs() + 1
		if f.numSBs >= need {
			break
		}
		f.numSBs = need
	}
	if int64(f.numSBs)*int64(f.slotsPerSB) > int64(1)<<31 {
		panic("ftl: physical slot space exceeds int32 packing")
	}
	f.mapping = make([]int32, f.userLPNs)
	for i := range f.mapping {
		f.mapping[i] = unmapped
	}
	f.rmap = make([]int32, f.numSBs*f.slotsPerSB)
	for i := range f.rmap {
		f.rmap[i] = unmapped
	}
	f.sbValid = make([]int32, f.numSBs)
	f.sbErases = make([]int32, f.numSBs)
	f.sbState = make([]uint8, f.numSBs)
	f.freeSBs = make([]int32, 0, f.numSBs)
	for i := f.numSBs - 1; i >= 0; i-- {
		f.freeSBs = append(f.freeSBs, int32(i))
	}
	f.host = frontier{sb: -1}
	f.gc = frontier{sb: -1}
	f.bufState = make([]uint8, f.userLPNs)
	f.drainBusy = make([]int8, f.dies)
	return f
}

// Counters returns a snapshot of activity counters.
func (f *FTL) Counters() Counters { return f.counters }

// UserLPNs returns the number of host-visible logical pages.
func (f *FTL) UserLPNs() int64 { return f.userLPNs }

// FreeSuperblocks returns the current number of free superblocks.
func (f *FTL) FreeSuperblocks() int { return len(f.freeSBs) }

// NumSuperblocks returns the total number of superblocks.
func (f *FTL) NumSuperblocks() int { return f.numSBs }

// SlotsPerUnit returns logical pages per program unit.
func (f *FTL) SlotsPerUnit() int { return f.slotsPerUnit }

// GCActive reports whether garbage collection is currently running.
func (f *FTL) GCActive() bool { return f.gcActive }

// BufferBytes returns the bytes currently held in the write buffer.
func (f *FTL) BufferBytes() int64 { return f.bufUsed }

// InBuffer reports whether the LPN is currently buffered in DRAM (pending or
// in flight), i.e. a read of it is a DRAM hit.
func (f *FTL) InBuffer(lpn int64) bool { return f.bufState[lpn] != 0 }

// Mapped reports whether the LPN has flash-resident data.
func (f *FTL) Mapped(lpn int64) bool { return f.mapping[lpn] != unmapped }

func (f *FTL) lowWaterSBs() int {
	n := int(f.cfg.GCLowWaterFrac * float64(f.numSBs))
	if n < f.cfg.ReserveSBs+1 {
		n = f.cfg.ReserveSBs + 1
	}
	return n
}

func (f *FTL) highWaterSBs() int {
	n := int(f.cfg.GCHighWaterFrac * float64(f.numSBs))
	if n <= f.lowWaterSBs() {
		n = f.lowWaterSBs() + 1
	}
	return n
}

func (f *FTL) dieOfSlot(slot int32) int {
	return int(slot) / f.slotsPerUnit % f.dies
}

func (f *FTL) pageOfPPN(ppn int32) int32 {
	return ppn / int32(f.slotsPerPage)
}

// invalidate drops the current mapping of lpn, if any.
func (f *FTL) invalidate(lpn int64) {
	old := f.mapping[lpn]
	if old == unmapped {
		return
	}
	f.mapping[lpn] = unmapped
	f.rmap[old] = unmapped
	f.sbValid[old/int32(f.slotsPerSB)]--
	f.counters.InvalidatedBytes += f.cfg.LogicalPageSize
}

// ensureOpen makes sure the frontier has an open superblock with room for at
// least one unit. reserve is the number of free superblocks that must remain
// after opening. Returns false if no superblock can be opened.
func (f *FTL) ensureOpen(fr *frontier, reserve int) bool {
	if fr.sb >= 0 && int(fr.next)+f.slotsPerUnit <= f.slotsPerSB {
		return true
	}
	if fr.sb >= 0 {
		f.sbState[fr.sb] = sbClosed
		fr.sb = -1
	}
	if len(f.freeSBs) <= reserve {
		return false
	}
	sb := f.freeSBs[len(f.freeSBs)-1]
	f.freeSBs = f.freeSBs[:len(f.freeSBs)-1]
	f.sbState[sb] = sbOpen
	fr.sb = sb
	fr.next = 0
	return true
}

// allocUnit reserves the next program unit on the frontier and binds the
// given LPNs to its slots, updating the mapping synchronously. It returns
// the die the unit lands on.
func (f *FTL) allocUnit(fr *frontier, lpns []int64) (die int) {
	base := fr.next
	die = f.dieOfSlot(base)
	fr.next += int32(f.slotsPerUnit)
	sbBase := fr.sb * int32(f.slotsPerSB)
	for i, lpn := range lpns {
		ppn := sbBase + base + int32(i)
		f.invalidate(lpn)
		f.mapping[lpn] = ppn
		f.rmap[ppn] = int32(lpn)
		f.sbValid[fr.sb]++
	}
	return die
}

// HostWrite buffers count logical pages starting at lpn and acknowledges
// (calls done) once all of them are admitted to the write buffer. Admission
// is immediate when the buffer has room and queues behind drain progress
// otherwise — the mechanism behind the local SSD's fast small writes and its
// GC-era stalls.
func (f *FTL) HostWrite(lpn, count int64, done func()) {
	if done == nil {
		done = func() {}
	}
	f.waiters = append(f.waiters, waiter{lpn: lpn, count: count, since: f.eng.Now(), done: done})
	f.admitWaiters()
	f.kickDrain()
}

// admitWaiters admits queued writes page by page, in FIFO order, as buffer
// space allows. Partial admission lets a single request larger than the
// whole buffer stream through it; the request acks when its last page is
// admitted.
func (f *FTL) admitWaiters() {
	for len(f.waiters) > 0 {
		w := &f.waiters[0]
		for w.count > 0 {
			p := w.lpn
			if f.bufState[p]&bufPending != 0 {
				f.counters.BufferCoalesced++
				w.lpn++
				w.count--
				continue
			}
			if f.bufUsed+f.cfg.LogicalPageSize > f.cfg.WriteBufferBytes {
				return // head waiter blocked: preserve FIFO order
			}
			f.bufState[p] |= bufPending
			f.pendingFIFO = append(f.pendingFIFO, p)
			f.bufUsed += f.cfg.LogicalPageSize
			w.lpn++
			w.count--
		}
		f.counters.BufferStallNanos += f.eng.Now().Sub(w.since)
		done := w.done
		copy(f.waiters, f.waiters[1:])
		f.waiters = f.waiters[:len(f.waiters)-1]
		done()
	}
}

// Flush forces the write buffer to drain completely, then calls done.
func (f *FTL) Flush(done func()) {
	if f.bufUsed == 0 && len(f.waiters) == 0 {
		done()
		return
	}
	f.forceFlush++
	f.flushDone = append(f.flushDone, done)
	f.kickDrain()
}

func (f *FTL) checkFlushDone() {
	if f.forceFlush == 0 || f.bufUsed != 0 || len(f.waiters) != 0 {
		return
	}
	dones := f.flushDone
	f.forceFlush = 0
	f.flushDone = nil
	for _, d := range dones {
		d()
	}
}

// kickDrain starts as many program units as die scheduling and space allow.
func (f *FTL) kickDrain() {
	for len(f.pendingFIFO) > 0 {
		if len(f.pendingFIFO) < f.slotsPerUnit && f.forceFlush == 0 {
			return // wait for a full unit
		}
		if !f.ensureOpen(&f.host, f.cfg.ReserveSBs) {
			f.maybeGC() // out of space: GC will re-kick on frees
			return
		}
		die := f.dieOfSlot(f.host.next)
		if f.drainBusy[die] >= 4 {
			// Head-of-line: the frontier's next die is saturated. A deeper
			// per-die window tolerates the TLC program-time spread without
			// idling other dies behind one slow MSB program.
			return
		}
		n := f.slotsPerUnit
		if n > len(f.pendingFIFO) {
			n = len(f.pendingFIFO)
		}
		batch := make([]int64, n)
		copy(batch, f.pendingFIFO[:n])
		copy(f.pendingFIFO, f.pendingFIFO[n:])
		f.pendingFIFO = f.pendingFIFO[:len(f.pendingFIFO)-n]
		for _, p := range batch {
			f.bufState[p] &^= bufPending
			f.bufState[p] += bufInflight
		}
		f.allocUnit(&f.host, batch)
		f.counters.HostSlots += uint64(n)
		f.drainBusy[die]++
		released := int64(n) * f.cfg.LogicalPageSize
		f.arr.ProgramUnit(die, func() {
			f.drainBusy[die]--
			f.bufUsed -= released
			for _, p := range batch {
				f.bufState[p] -= bufInflight
			}
			f.admitWaiters()
			f.maybeGC()
			f.kickDrain()
			f.checkFlushDone()
		})
		f.maybeGC()
	}
}

// ReadLPNs reads count logical pages starting at lpn, calling done when all
// media reads complete. Buffered and unmapped pages cost no media time.
// It returns the number of flash page reads issued (useful for tests).
func (f *FTL) ReadLPNs(lpn, count int64, done func()) int {
	lpns := make([]int64, count)
	for i := range lpns {
		lpns[i] = lpn + int64(i)
	}
	return f.ReadList(lpns, done)
}

// ReadList reads an arbitrary set of logical pages, calling done when all
// media reads complete. Adjacent LPNs that share a flash page share one
// media read.
func (f *FTL) ReadList(lpns []int64, done func()) int {
	seen := make(map[int32]int) // flash page -> die
	for _, p := range lpns {
		if f.bufState[p] != 0 {
			continue // DRAM hit
		}
		ppn := f.mapping[p]
		if ppn == unmapped {
			continue // never written: served from the zero map
		}
		pg := f.pageOfPPN(ppn)
		if _, ok := seen[pg]; !ok {
			seen[pg] = f.dieOfSlot(ppn % int32(f.slotsPerSB))
		}
	}
	if len(seen) == 0 {
		f.eng.Schedule(0, done)
		return 0
	}
	remaining := len(seen)
	for _, die := range seen {
		f.arr.ReadPage(die, func() {
			remaining--
			if remaining == 0 {
				done()
			}
		})
	}
	return len(seen)
}

// Trim invalidates count logical pages starting at lpn. Buffered copies are
// left to drain (they will be garbage immediately), matching real devices'
// simplest deallocate behaviour.
func (f *FTL) Trim(lpn, count int64) {
	for i := int64(0); i < count; i++ {
		f.invalidate(lpn + i)
	}
}

// maybeGC starts the GC worker if the free pool fell below the low water
// mark.
func (f *FTL) maybeGC() {
	if f.gcActive || len(f.freeSBs) >= f.lowWaterSBs() {
		return
	}
	f.gcActive = true
	f.gcStep()
}

func (f *FTL) gcStep() {
	if len(f.freeSBs) >= f.highWaterSBs() {
		f.gcActive = false
		return
	}
	v := f.pickVictim()
	if v < 0 {
		f.gcActive = false
		return
	}
	if f.sbValid[v] >= int32(f.slotsPerSB) {
		// Even the best victim is fully valid: relocation would free
		// nothing. Stop rather than churn write amplification forever;
		// the next invalidation re-arms GC.
		f.gcActive = false
		return
	}
	f.sbState[v] = sbVictim
	f.counters.GCVictims++
	f.relocate(v, func() {
		f.eraseSB(v, f.gcStep)
	})
}

// pickVictim returns the closed superblock with the fewest valid slots,
// breaking ties toward the least-worn block — greedy selection with a
// wear-leveling nudge. Returns -1 if no victim exists.
func (f *FTL) pickVictim() int32 {
	best := int32(-1)
	for i := 0; i < f.numSBs; i++ {
		if f.sbState[i] != sbClosed {
			continue
		}
		if best < 0 ||
			f.sbValid[i] < f.sbValid[best] ||
			(f.sbValid[i] == f.sbValid[best] && f.sbErases[i] < f.sbErases[best]) {
			best = int32(i)
		}
	}
	return best
}

// relocate moves all still-valid slots of victim v to the GC frontier using
// up to GCStreams concurrent read+program pipelines, then calls done.
func (f *FTL) relocate(v int32, done func()) {
	base := int32(f.slotsPerSB) * v
	var live []int32
	for s := int32(0); s < int32(f.slotsPerSB); s++ {
		if f.rmap[base+s] != unmapped {
			live = append(live, s)
		}
	}
	idx, active := 0, 0
	finished := false
	var pump func()
	finish := func() {
		if !finished && idx >= len(live) && active == 0 {
			finished = true
			done()
		}
	}
	pump = func() {
		for active < f.cfg.GCStreams && idx < len(live) {
			n := f.slotsPerUnit
			if n > len(live)-idx {
				n = len(live) - idx
			}
			batch := live[idx : idx+n]
			idx += n
			active++
			f.gcMoveBatch(v, batch, func() {
				active--
				pump()
				finish()
			})
		}
		finish()
	}
	pump()
}

// gcMoveBatch reads the flash pages backing a batch of victim slots and
// programs the still-live ones to the GC frontier.
func (f *FTL) gcMoveBatch(v int32, slots []int32, done func()) {
	base := int32(f.slotsPerSB) * v
	pages := make(map[int32]int) // page -> die
	for _, s := range slots {
		if f.rmap[base+s] == unmapped {
			continue // overwritten since selection
		}
		pages[(base+s)/int32(f.slotsPerPage)] = f.dieOfSlot(s)
	}
	if len(pages) == 0 {
		f.eng.Schedule(0, done)
		return
	}
	remaining := len(pages)
	for _, die := range pages {
		f.arr.ReadPage(die, func() {
			remaining--
			if remaining > 0 {
				return
			}
			f.gcProgramBatch(v, slots, done)
		})
	}
}

func (f *FTL) gcProgramBatch(v int32, slots []int32, done func()) {
	base := int32(f.slotsPerSB) * v
	var lpns []int64
	for _, s := range slots {
		lpn := f.rmap[base+s]
		if lpn != unmapped {
			lpns = append(lpns, int64(lpn))
		}
	}
	if len(lpns) == 0 {
		f.eng.Schedule(0, done)
		return
	}
	// The GC frontier may dip into the reserve; progress is guaranteed
	// because erasing the victim frees more than relocation consumes.
	if !f.ensureOpen(&f.gc, 0) {
		panic("ftl: GC frontier could not open a superblock (reserve misconfigured)")
	}
	die := f.allocUnit(&f.gc, lpns)
	f.counters.GCSlots += uint64(len(lpns))
	f.arr.ProgramUnit(die, done)
}

// eraseSB erases all block columns of the victim in parallel, returns it to
// the free pool, and restarts stalled host drains.
func (f *FTL) eraseSB(v int32, done func()) {
	remaining := f.dies
	for d := 0; d < f.dies; d++ {
		f.arr.EraseBlockColumn(d, func() {
			remaining--
			if remaining > 0 {
				return
			}
			base := int32(f.slotsPerSB) * v
			for s := int32(0); s < int32(f.slotsPerSB); s++ {
				f.rmap[base+s] = unmapped
			}
			f.sbValid[v] = 0
			f.sbErases[v]++
			f.sbState[v] = sbFree
			f.freeSBs = append(f.freeSBs, v)
			f.counters.Erases++
			f.kickDrain()
			done()
		})
	}
}

// Precondition fills fillFrac of the logical space instantly (no simulated
// time), as if it had been written once. With randomized=false pages are
// laid out sequentially (physically striped in LPN order, the layout after a
// sequential fill); with randomized=true LPN order is permuted, emulating a
// randomly written device. rng is only used when randomized.
func (f *FTL) Precondition(fillFrac float64, randomized bool, rng *sim.RNG) {
	if fillFrac <= 0 {
		return
	}
	if fillFrac > 1 {
		fillFrac = 1
	}
	n := int64(fillFrac * float64(f.userLPNs))
	order := make([]int64, n)
	for i := range order {
		order[i] = int64(i)
	}
	if randomized {
		for i := int64(n - 1); i > 0; i-- {
			j := rng.Int64N(i + 1)
			order[i], order[j] = order[j], order[i]
		}
	}
	for i := int64(0); i < n; i += int64(f.slotsPerUnit) {
		end := i + int64(f.slotsPerUnit)
		if end > n {
			end = n
		}
		if !f.ensureOpen(&f.host, f.cfg.ReserveSBs) {
			panic("ftl: precondition ran out of space")
		}
		f.allocUnit(&f.host, order[i:end])
		f.counters.PreconditionSlots += uint64(end - i)
	}
}

// Utilization returns the fraction of user LPNs currently mapped.
func (f *FTL) Utilization() float64 {
	var mappedCount int64
	for _, sb := range f.sbValid {
		mappedCount += int64(sb)
	}
	return float64(mappedCount) / float64(f.userLPNs)
}
