package fleet

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"essdsim/internal/qos"
	"essdsim/internal/sim"
)

// ScreenSpec configures the two-fidelity screening study: thousands of
// candidate placements are scored with the closed-form credit analytics
// (no simulation), and only the Pareto frontier — the placements where
// fewer backends cannot be had without more predicted violation pressure —
// is materialized as full shared-backend simulations. The screen trades
// exactness for volume: it explores orders of magnitude more placements
// than simulation alone could at the same wall-clock cost, and the final
// frontier numbers are still real simulated measurements.
type ScreenSpec struct {
	Spec

	// Candidates is the analytic budget: how many distinct placements to
	// score (default 1024). The built-in policies at every packing density
	// seed the pool; seeded single-move perturbations of those bases fill
	// the rest.
	Candidates int

	// MaxSims caps how many frontier placements are simulated (default 8).
	MaxSims int
}

func (ss ScreenSpec) withDefaults() ScreenSpec {
	ss.Spec = ss.Spec.withDefaults()
	if ss.Candidates <= 0 {
		ss.Candidates = 1024
	}
	if ss.MaxSims <= 0 {
		ss.MaxSims = 8
	}
	return ss
}

// Candidate is one analytically scored placement.
type Candidate struct {
	// Origin records provenance: "first-fit@b2" for a policy base at
	// density 2, "perturb#17" for the 17th accepted perturbation.
	Origin string
	// Assignment is the backend index per demand, in catalog order.
	Assignment []int
	// BackendsUsed counts non-empty backends (the density objective).
	BackendsUsed int
	// Score is the predicted violation pressure (the quality objective;
	// lower is better). See screenModel.score for its composition.
	Score float64
}

// ScreenReport is the outcome of a two-fidelity screening run.
type ScreenReport struct {
	Generated  int         // placements generated, duplicates included
	Candidates int         // distinct placements scored
	Frontier   []Candidate // Pareto frontier by (backends used, score)
	// Simulated holds the full simulations of the frontier (at most
	// MaxSims), one fixed-assignment "policy" per frontier candidate, in
	// frontier order.
	Simulated *Report
}

// screenModel holds the per-spec constants of the analytic score: the
// packing budgets plus the volume class's qos.CreditBucket analytics
// (baseline, burst, banked capacity, sustained floor). A non-burstable
// class has zero capacity and a floor equal to its throughput budget.
type screenModel struct {
	backendBps float64
	writeBps   float64
	horizon    float64 // seconds

	cb    *qos.CreditBucket // scratch bucket; nil for non-burstable classes
	floor float64           // credit-capped sustainable bytes/s per volume

	// coupling is the analytic fraction of a neighbour's excess churn that
	// can surface in a co-tenant's observed debt under the template's
	// isolation policy (1 under fifo) — qos.Isolation.DebtCouplingFactor.
	// It discounts the cross-tenant penalties so the screen predicts what
	// the isolated simulation actually delivers, no more.
	coupling float64
}

// newScreenModel derives the model from the (defaulted) spec templates.
// The scratch CreditBucket mirrors Spec.constraints: the analytics are
// pure functions of the tier parameters.
func (s Spec) newScreenModel() screenModel {
	m := screenModel{
		backendBps: s.BackendBps,
		writeBps:   s.WriteBps,
		horizon:    s.Horizon.Seconds(),
		floor:      s.Volume.ThroughputBudget,
		coupling:   s.Backend.Isolation.DebtCouplingFactor(s.Backend.Cluster.CleanerRate),
	}
	if s.Volume.BurstBaseline > 0 {
		m.cb = qos.NewCreditBucket(sim.NewEngine(), s.Volume.BurstBaseline,
			s.Volume.ThroughputBudget, s.Volume.BurstCreditBytes)
		m.floor = m.cb.SustainedFloor()
	}
	return m
}

// effOffered caps a demand's offered rate at the volume class's sustainable
// floor — the same cap Constraints.effOffered applies during placement.
func (m screenModel) effOffered(d Demand) float64 {
	bps := d.OfferedBps()
	if m.floor > 0 && bps > m.floor {
		bps = m.floor
	}
	return bps
}

// exhaustionSecs predicts when a demand alone exhausts the volume's burst
// credits: qos.CreditBucket.TimeToExhaustion of the demand's offered rate.
// The bound lives next to the bucket's Spend/settle arithmetic so the two
// cannot drift apart. Returns +Inf when the balance never empties (no
// burst tier, or the demand sits at or under the earn rate).
func (m screenModel) exhaustionSecs(d Demand) float64 {
	if m.cb == nil {
		return math.Inf(1)
	}
	return m.cb.TimeToExhaustion(d.OfferedBps())
}

// score predicts a placement's violation pressure: per backend, the
// fractional overload of the nominal byte budget and the write-absorption
// budget, a superlinear penalty for co-locating heavy writers (each pair
// of aggressors on one backend drains the shared cleaner pool into both),
// and the credit pressure of members predicted to exhaust their burst
// credits inside the horizon. Lower is better; 0 means every backend fits
// every budget with no aggressor pairs and no credit exhaustion.
func (m screenModel) score(demands []Demand, assign []int, backends int) (float64, int) {
	offered := make([]float64, backends)
	writes := make([]float64, backends)
	heavy := make([]int, backends)
	credit := make([]float64, backends)
	used := 0
	for di, b := range assign {
		d := demands[di]
		if offered[b] == 0 && writes[b] == 0 && heavy[b] == 0 && credit[b] == 0 {
			used++
		}
		offered[b] += m.effOffered(d)
		writes[b] += m.effOffered(d) * d.writeFrac()
		if d.WriteRatioPct >= heavyWriterPct {
			heavy[b]++
		}
		if m.horizon > 0 {
			if t := m.exhaustionSecs(d); t < m.horizon {
				credit[b] += 1 - t/m.horizon
			}
		}
	}
	var score float64
	for b := 0; b < backends; b++ {
		if over := offered[b]/m.backendBps - 1; over > 0 {
			score += over
		}
		if over := writes[b]/m.writeBps - 1; over > 0 {
			score += over
		}
		// h·(h−1)/2 aggressor pairs: stacking write floods is superlinearly
		// bad (the Obs#2 coupling the neighbor suite measures). Both
		// cross-tenant penalties scale with the isolation policy's debt
		// coupling — shaped admission bounds how much of a neighbour's
		// churn a co-tenant can observe, so an isolated backend tolerates
		// denser packing before the screen predicts violations.
		score += m.coupling * 0.5 * float64(heavy[b]*(heavy[b]-1)/2)
		score += m.coupling * 0.25 * credit[b]
	}
	return score, used
}

// canonicalKey renders a placement up to backend relabeling: the sorted
// multiset of backend populations. Two assignments with the same key build
// physically identical cells, so only one needs scoring (or simulating).
func canonicalKey(demands []Demand, assign []int, backends int) string {
	groups := make([][]string, backends)
	for di, b := range assign {
		groups[b] = append(groups[b], demands[di].Name)
	}
	parts := make([]string, 0, backends)
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		sort.Strings(g)
		parts = append(parts, strings.Join(g, "+"))
	}
	sort.Strings(parts)
	return strings.Join(parts, "|")
}

// fixedPolicy replays a screened assignment through the simulation path as
// a PlacementPolicy, so frontier candidates reuse the whole fleet.Run
// machinery (cell dedup, solo controls, caching) unchanged.
type fixedPolicy struct {
	name   string
	assign []int
}

// Name implements PlacementPolicy.
func (p fixedPolicy) Name() string { return p.name }

// Place implements PlacementPolicy.
func (p fixedPolicy) Place(Constraints, []Demand) []int {
	return append([]int(nil), p.assign...)
}

// splitmix64 advances the screen's perturbation stream; it matches the
// finalizer used by the expgrid seed derivations.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Screen runs the two-fidelity study: policy bases at every packing
// density plus seeded perturbations are scored analytically, the Pareto
// frontier on (backends used, predicted violation score) is extracted, and
// at most MaxSims frontier placements are materialized as full
// simulations. Deterministic for a fixed spec and seed.
func Screen(ctx context.Context, ss ScreenSpec) (*ScreenReport, error) {
	ss = ss.withDefaults()
	if err := ss.Validate(); err != nil {
		return nil, err
	}
	s := ss.Spec
	model := s.newScreenModel()
	rep := &ScreenReport{}

	type scored struct {
		Candidate
		key string
	}
	var pool []scored
	seen := make(map[string]bool)
	add := func(origin string, assign []int) {
		rep.Generated++
		key := canonicalKey(s.Demands, assign, s.Backends)
		if seen[key] {
			return
		}
		seen[key] = true
		score, used := model.score(s.Demands, assign, s.Backends)
		pool = append(pool, scored{
			Candidate: Candidate{
				Origin:       origin,
				Assignment:   append([]int(nil), assign...),
				BackendsUsed: used,
				Score:        score,
			},
			key: key,
		})
	}

	// Policy bases at every density: each built-in (or caller-supplied)
	// policy placed against 1..Backends available backends.
	for b := 1; b <= s.Backends; b++ {
		cons := s.constraints()
		cons.Backends = b
		for _, p := range s.Policies {
			add(fmt.Sprintf("%s@b%d", p.Name(), b), p.Place(cons, s.Demands))
		}
	}

	// Seeded perturbations: move one tenant of a base placement to another
	// backend. The stream is a pure function of the spec seed, so the
	// screen is deterministic; duplicates (by canonical key) don't count
	// against the candidate budget but bound the attempt loop.
	bases := len(pool)
	rng := splitmix64(s.Seed ^ 0x5c0e5c0e)
	attempts := 0
	for len(pool) < ss.Candidates && attempts < 64*ss.Candidates && bases > 0 {
		attempts++
		rng = splitmix64(rng)
		base := pool[rng%uint64(bases)].Assignment
		rng = splitmix64(rng)
		di := int(rng % uint64(len(base)))
		rng = splitmix64(rng)
		nb := int(rng % uint64(s.Backends))
		if base[di] == nb {
			continue
		}
		mut := append([]int(nil), base...)
		mut[di] = nb
		add(fmt.Sprintf("perturb#%d", attempts), mut)
	}
	rep.Candidates = len(pool)

	// Pareto frontier, minimizing (backends used, score): sort by density
	// then score, and keep each density's best candidate when it strictly
	// improves on every sparser frontier point.
	sort.SliceStable(pool, func(a, b int) bool {
		if pool[a].BackendsUsed != pool[b].BackendsUsed {
			return pool[a].BackendsUsed < pool[b].BackendsUsed
		}
		return pool[a].Score < pool[b].Score
	})
	best := math.Inf(1)
	lastUsed := -1
	for _, c := range pool {
		if c.BackendsUsed == lastUsed || c.Score >= best {
			continue
		}
		rep.Frontier = append(rep.Frontier, c.Candidate)
		best = c.Score
		lastUsed = c.BackendsUsed
	}

	// Materialize the frontier: one fixed-assignment policy per candidate,
	// through the ordinary simulation path.
	sims := rep.Frontier
	if len(sims) > ss.MaxSims {
		sims = sims[:ss.MaxSims]
	}
	if len(sims) > 0 {
		spec := s
		spec.Policies = make([]PlacementPolicy, len(sims))
		for i, c := range sims {
			spec.Policies[i] = fixedPolicy{
				name:   fmt.Sprintf("screen%02d[b%d]", i, c.BackendsUsed),
				assign: c.Assignment,
			}
		}
		r, err := Run(ctx, spec)
		if err != nil {
			return nil, err
		}
		rep.Simulated = r
	}
	return rep, nil
}

// FormatScreen writes the screening outcome: the scoring volume, the
// frontier with predicted scores, and the simulated truth for each
// materialized frontier placement.
func FormatScreen(w io.Writer, r *ScreenReport) {
	fmt.Fprintf(w, "fleet screen: %d candidates scored, %d on frontier, %d simulated\n",
		r.Candidates, len(r.Frontier), simCount(r))
	fmt.Fprintf(w, "%-10s %-16s %8s %10s\n", "frontier", "origin", "backends", "score")
	for i, c := range r.Frontier {
		fmt.Fprintf(w, "%-10s %-16s %8d %10.3f\n",
			fmt.Sprintf("screen%02d", i), c.Origin, c.BackendsUsed, c.Score)
	}
	if r.Simulated != nil {
		fmt.Fprintln(w)
		Format(w, r.Simulated)
	}
}

// simCount returns how many frontier placements were simulated.
func simCount(r *ScreenReport) int {
	if r.Simulated == nil {
		return 0
	}
	return len(r.Simulated.Policies)
}
