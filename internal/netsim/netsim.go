// Package netsim models the datacenter network between the compute cluster
// and the storage cluster (paper Fig 1): per-direction bandwidth pipes plus
// a jittered per-hop propagation/processing delay. This network is the
// dominant term in the ESSD latency gap of Observation #1.
package netsim

import (
	"essdsim/internal/sim"
)

// Config parameterizes a network path between two endpoints.
type Config struct {
	// HopLatency is the one-way propagation plus switching/processing
	// latency distribution for one traversal of the fabric.
	HopLatency sim.Dist
	// UplinkBW is the client-to-cluster bandwidth in bytes/s.
	UplinkBW float64
	// DownlinkBW is the cluster-to-client bandwidth in bytes/s.
	DownlinkBW float64
}

// Network is a full-duplex path: an uplink pipe, a downlink pipe, and a
// sampled hop latency applied to each traversal.
type Network struct {
	eng  *sim.Engine
	cfg  Config
	rng  *sim.RNG
	up   *sim.Pipe
	down *sim.Pipe
}

// New builds a network path on the engine.
func New(eng *sim.Engine, cfg Config, rng *sim.RNG) *Network {
	if rng == nil {
		rng = sim.NewRNG(0x0e7, 0x51b)
	}
	return &Network{
		eng:  eng,
		cfg:  cfg,
		rng:  rng,
		up:   sim.NewPipe(eng, "net-up", cfg.UplinkBW),
		down: sim.NewPipe(eng, "net-down", cfg.DownlinkBW),
	}
}

// SendUp transfers n payload bytes toward the storage cluster and invokes
// done when the last byte (plus one hop latency) arrives.
func (n *Network) SendUp(bytes int64, done func()) {
	lat := n.cfg.HopLatency.Sample(n.rng)
	n.up.Transfer(bytes, func() {
		n.eng.Schedule(lat, done)
	})
}

// SendDown transfers n payload bytes toward the client.
func (n *Network) SendDown(bytes int64, done func()) {
	lat := n.cfg.HopLatency.Sample(n.rng)
	n.down.Transfer(bytes, func() {
		n.eng.Schedule(lat, done)
	})
}

// HopSample draws one hop latency without moving payload — used for
// intra-cluster control messages (e.g. replication acks).
func (n *Network) HopSample() sim.Duration {
	return n.cfg.HopLatency.Sample(n.rng)
}

// Hop schedules done after one sampled hop latency with no payload.
func (n *Network) Hop(done func()) {
	n.eng.Schedule(n.HopSample(), done)
}

// UplinkBacklog returns the current queueing delay on the uplink.
func (n *Network) UplinkBacklog() sim.Duration { return n.up.Backlog() }

// DownlinkBacklog returns the current queueing delay on the downlink.
func (n *Network) DownlinkBacklog() sim.Duration { return n.down.Backlog() }

// MovedUp returns total bytes sent toward the cluster.
func (n *Network) MovedUp() int64 { return n.up.Moved() }

// MovedDown returns total bytes sent toward the client.
func (n *Network) MovedDown() int64 { return n.down.Moved() }
