// Package essd assembles the simulated elastic solid-state drive: the
// virtualized block device the paper characterizes (§II-C). It stitches
// together the compute-side frontend, the datacenter network (package
// netsim), the provisioned QoS budgets (package qos) and the storage
// cluster (package cluster) into a blockdev.Device.
//
// The unwritten contract's observations map onto this assembly as follows:
//
//   - Obs#1: every I/O pays frontend + network + cluster service time, so
//     small/low-QD I/Os see tens-of-times local-SSD latency while large
//     batched I/Os amortize it.
//   - Obs#2: writes acknowledge from replicated node journals; cleaning
//     debt only surfaces when the flow limiter engages, far beyond the
//     local SSD's ~90%-of-capacity GC cliff.
//   - Obs#3: sequential windows serialize on few placement groups while
//     random writes fan out — random-write throughput wins.
//   - Obs#4: a combined bytes/s token bucket at the provisioned budget
//     makes peak bandwidth deterministic regardless of access pattern.
package essd

import (
	"fmt"

	"essdsim/internal/blockdev"
	"essdsim/internal/cluster"
	"essdsim/internal/netsim"
	"essdsim/internal/qos"
	"essdsim/internal/sim"
)

// Config parameterizes an ESSD volume.
type Config struct {
	Name      string
	Provider  string
	Model     string
	Capacity  int64
	BlockSize int64

	// Provisioned budgets (paper Table I).
	ThroughputBudget float64 // bytes/s, reads+writes combined
	BudgetBurst      float64 // token bucket burst, bytes
	IOPSBudget       float64 // I/O operations per second
	IOPSBurst        float64 // IOPS bucket burst
	IOPSChunkBytes   int64   // bytes covered by one IOPS token (e.g. 256 KiB on io2)

	// Frontend (virtio + EBS client) processing.
	FrontendSlots   int
	FrontendLatency sim.Dist

	Net     netsim.Config
	Cluster cluster.Config

	// Flow limiter (Observation #2): when cleaning debt exceeds
	// SpareFrac×Capacity, the write path is clamped to ThrottleRate.
	// SpareFrac <= 0 disables throttling (ESSD-2 behaviour within the
	// paper's 3× experiment).
	SpareFrac    float64
	ThrottleRate float64

	// Burst credits (optional): burstable volume classes (AWS gp2-style)
	// sustain BurstBaseline bytes/s, may spend banked credits up to the
	// ThroughputBudget ceiling, and bank at most BurstCreditBytes. When
	// BurstBaseline > 0 the throughput budget behaves like the burst
	// ceiling of such a tier.
	BurstBaseline    float64
	BurstCreditBytes float64
}

// Validate reports a descriptive error for inconsistent configuration.
func (c Config) Validate() error {
	switch {
	case c.Capacity <= 0 || c.BlockSize <= 0 || c.Capacity%c.BlockSize != 0:
		return fmt.Errorf("essd: bad capacity/block size %d/%d", c.Capacity, c.BlockSize)
	case c.ThroughputBudget <= 0:
		return fmt.Errorf("essd: throughput budget must be positive")
	case c.IOPSBudget <= 0 || c.IOPSChunkBytes <= 0:
		return fmt.Errorf("essd: IOPS budget/chunk must be positive")
	case c.FrontendSlots < 1 || c.FrontendLatency == nil:
		return fmt.Errorf("essd: frontend misconfigured")
	case c.Cluster.ChunkBytes%c.BlockSize != 0:
		return fmt.Errorf("essd: cluster chunk not a multiple of block size")
	}
	return c.Cluster.Validate()
}

// Counters tallies host-visible ESSD activity.
type Counters struct {
	Reads, Writes, Trims, Flushes uint64
	ReadBytes, WriteBytes         int64
	SubWrites, SubReads           uint64 // chunk-level operations after splitting
	UnwrittenReads                uint64 // reads served from the zero map
}

// ESSD is the assembled elastic SSD volume. It implements blockdev.Device.
type ESSD struct {
	eng *sim.Engine
	cfg Config
	rng *sim.RNG

	fe      *sim.Server
	net     *netsim.Network
	cl      *cluster.Cluster
	bytesTb *qos.TokenBucket
	iopsTb  *qos.TokenBucket
	limiter *qos.FlowLimiter
	wClamp  *qos.TokenBucket  // engaged write clamp; nil until throttled
	credits *qos.CreditBucket // burstable tiers only; nil otherwise

	written []uint64 // bitmap: block ever written (for debt + zero reads)

	counters Counters
}

// New builds the ESSD. It panics on invalid configuration.
func New(eng *sim.Engine, cfg Config, rng *sim.RNG) *ESSD {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if rng == nil {
		rng = sim.NewRNG(0xe55d, 0x10)
	}
	rng = rng.Derive("essd:" + cfg.Name)
	e := &ESSD{eng: eng, cfg: cfg, rng: rng}
	e.fe = sim.NewServer(eng, "frontend", cfg.FrontendSlots)
	e.net = netsim.New(eng, cfg.Net, rng.Derive("net"))
	e.cl = cluster.New(eng, cfg.Cluster, rng.Derive("cluster"))
	burst := cfg.BudgetBurst
	if burst <= 0 {
		burst = cfg.ThroughputBudget / 100 // 10 ms of budget by default
	}
	e.bytesTb = qos.NewTokenBucket(eng, cfg.ThroughputBudget, burst)
	iopsBurst := cfg.IOPSBurst
	if iopsBurst <= 0 {
		iopsBurst = cfg.IOPSBudget / 100
	}
	e.iopsTb = qos.NewTokenBucket(eng, cfg.IOPSBudget, iopsBurst)
	e.limiter = &qos.FlowLimiter{
		DebtThreshold: int64(cfg.SpareFrac * float64(cfg.Capacity)),
		ThrottledRate: cfg.ThrottleRate,
	}
	if cfg.BurstBaseline > 0 {
		e.credits = qos.NewCreditBucket(eng, cfg.BurstBaseline,
			cfg.ThroughputBudget, cfg.BurstCreditBytes)
	}
	nblocks := cfg.Capacity / cfg.BlockSize
	e.written = make([]uint64, (nblocks+63)/64)
	return e
}

// Credits returns the banked burst credits in bytes, or -1 when the
// volume is not a burstable tier.
func (e *ESSD) Credits() float64 {
	if e.credits == nil {
		return -1
	}
	return e.credits.Credits()
}

// Burstable reports whether the volume is a credit-backed burstable tier.
func (e *ESSD) Burstable() bool { return e.credits != nil }

// CreditExhaustions counts the times the burst-credit balance hit zero
// (always 0 on non-burstable tiers).
func (e *ESSD) CreditExhaustions() uint64 {
	if e.credits == nil {
		return 0
	}
	return e.credits.Exhaustions()
}

// CreditExhaustedAt returns the virtual time the burst-credit balance first
// hit zero, or -1 when it never has (or the tier is not burstable).
func (e *ESSD) CreditExhaustedAt() sim.Time {
	if e.credits == nil {
		return -1
	}
	return e.credits.ExhaustedAt()
}

// CreditFloor returns the post-exhaustion sustained rate in bytes/s, or -1
// when the tier is not burstable.
func (e *ESSD) CreditFloor() float64 {
	if e.credits == nil {
		return -1
	}
	return e.credits.SustainedFloor()
}

// CreditBaseline returns the continuous credit-earn rate in bytes/s, or -1
// when the tier is not burstable. Together with CreditBurst it lets SLO
// searches bound the sustainable offered rate analytically.
func (e *ESSD) CreditBaseline() float64 {
	if e.credits == nil {
		return -1
	}
	return e.credits.Baseline()
}

// CreditBurst returns the credit-backed burst ceiling in bytes/s, or -1
// when the tier is not burstable.
func (e *ESSD) CreditBurst() float64 {
	if e.credits == nil {
		return -1
	}
	return e.credits.Burst()
}

// spendCredits serializes n bytes through the burst-credit rate before
// done, when the volume is a burstable tier.
func (e *ESSD) spendCredits(n int64, done func()) {
	if e.credits == nil {
		done()
		return
	}
	e.credits.Acquire(n, done)
}

// Name implements blockdev.Device.
func (e *ESSD) Name() string { return e.cfg.Name }

// Capacity implements blockdev.Device.
func (e *ESSD) Capacity() int64 { return e.cfg.Capacity }

// BlockSize implements blockdev.Device.
func (e *ESSD) BlockSize() int { return int(e.cfg.BlockSize) }

// Engine implements blockdev.Device.
func (e *ESSD) Engine() *sim.Engine { return e.eng }

// Counters returns host-visible activity counters.
func (e *ESSD) Counters() Counters { return e.counters }

// Cluster exposes the backend for harness inspection (debt, node balance).
func (e *ESSD) Cluster() *cluster.Cluster { return e.cl }

// Throttled reports whether the provider flow limiter has engaged.
func (e *ESSD) Throttled() bool { return e.limiter.Engaged() }

// ThrottledAt returns the virtual time the flow limiter engaged.
func (e *ESSD) ThrottledAt() sim.Time { return e.limiter.EngagedAt() }

// BudgetStall returns cumulative time spent waiting on the throughput budget.
func (e *ESSD) BudgetStall() sim.Duration { return e.bytesTb.StallTime() }

// Precondition marks the first fillFrac of the volume as written, as if it
// had been filled once (no simulated time, no cleaning debt).
func (e *ESSD) Precondition(fillFrac float64) {
	if fillFrac <= 0 {
		return
	}
	if fillFrac > 1 {
		fillFrac = 1
	}
	nblocks := e.cfg.Capacity / e.cfg.BlockSize
	limit := int64(fillFrac * float64(nblocks))
	for b := int64(0); b < limit; b++ {
		e.written[b>>6] |= 1 << uint(b&63)
	}
}

func (e *ESSD) isWritten(block int64) bool {
	return e.written[block>>6]&(1<<uint(block&63)) != 0
}

// markWritten sets the written bits for the request range and returns the
// number of bytes that were overwrites (i.e. new cleaning debt).
func (e *ESSD) markWritten(off, size int64) int64 {
	var debt int64
	for b := off / e.cfg.BlockSize; b < (off+size)/e.cfg.BlockSize; b++ {
		if e.isWritten(b) {
			debt += e.cfg.BlockSize
		} else {
			e.written[b>>6] |= 1 << uint(b&63)
		}
	}
	return debt
}

// allWritten reports whether every block in the range has been written.
func (e *ESSD) allWritten(off, size int64) bool {
	for b := off / e.cfg.BlockSize; b < (off+size)/e.cfg.BlockSize; b++ {
		if !e.isWritten(b) {
			return false
		}
	}
	return true
}

// iopsCost returns the IOPS tokens one request consumes.
func (e *ESSD) iopsCost(size int64) float64 {
	n := (size + e.cfg.IOPSChunkBytes - 1) / e.cfg.IOPSChunkBytes
	if n < 1 {
		n = 1
	}
	return float64(n)
}

// subRanges splits [off, off+size) at chunk boundaries.
func (e *ESSD) subRanges(off, size int64) []int64 {
	chunk := e.cfg.Cluster.ChunkBytes
	var sizes []int64
	for size > 0 {
		room := chunk - off%chunk
		if room > size {
			room = size
		}
		sizes = append(sizes, room)
		off += room
		size -= room
	}
	return sizes
}

// Submit implements blockdev.Device.
func (e *ESSD) Submit(r *blockdev.Request) {
	blockdev.Validate(e, r)
	r.Issued = e.eng.Now()
	switch r.Op {
	case blockdev.Write:
		e.submitWrite(r)
	case blockdev.Read:
		e.submitRead(r)
	case blockdev.Trim:
		e.submitTrim(r)
	case blockdev.Flush:
		e.submitFlush(r)
	default:
		panic(fmt.Sprintf("essd: unknown op %v", r.Op))
	}
}

func (e *ESSD) complete(r *blockdev.Request) {
	if r.OnComplete != nil {
		r.OnComplete(r, e.eng.Now())
	}
}

func (e *ESSD) submitWrite(r *blockdev.Request) {
	e.counters.Writes++
	e.counters.WriteBytes += r.Size
	debt := e.markWritten(r.Offset, r.Size)
	if debt > 0 {
		e.cl.AddDebt(debt)
	}
	e.limiter.Observe(e.eng.Now(), e.cl.Debt(), e.writeClamp())
	e.fe.Visit(e.cfg.FrontendLatency.Sample(e.rng), func() {
		e.iopsTb.Take(e.iopsCost(r.Size), func() {
			e.takeWriteTokens(float64(r.Size), func() {
				e.spendCredits(r.Size, func() {
					e.dispatchWrite(r)
				})
			})
		})
	})
}

// writeClamp lazily creates the throttle bucket so the limiter has
// something to clamp; before engagement writes bypass it entirely.
func (e *ESSD) writeClamp() *qos.TokenBucket {
	if e.wClamp == nil {
		e.wClamp = qos.NewTokenBucket(e.eng, e.cfg.ThroughputBudget, e.cfg.ThroughputBudget/50)
	}
	return e.wClamp
}

// takeWriteTokens charges the combined budget and, when the flow limiter
// has engaged, the write clamp as well.
func (e *ESSD) takeWriteTokens(n float64, done func()) {
	e.bytesTb.Take(n, func() {
		if !e.limiter.Engaged() {
			done()
			return
		}
		e.writeClamp().Take(n, done)
	})
}

func (e *ESSD) dispatchWrite(r *blockdev.Request) {
	sizes := e.subRanges(r.Offset, r.Size)
	rem := len(sizes)
	off := r.Offset
	for _, sz := range sizes {
		chunk := off / e.cfg.Cluster.ChunkBytes
		e.counters.SubWrites++
		sz := sz
		// Payload crosses the network once per subrequest, then the
		// cluster replicates it; the final ack is one hop back.
		e.net.SendUp(sz, func() {
			e.cl.Write(chunk, sz, func() {
				e.net.Hop(func() {
					rem--
					if rem == 0 {
						e.complete(r)
					}
				})
			})
		})
		off += sz
	}
}

func (e *ESSD) submitRead(r *blockdev.Request) {
	e.counters.Reads++
	e.counters.ReadBytes += r.Size
	e.fe.Visit(e.cfg.FrontendLatency.Sample(e.rng), func() {
		// Reads of never-written ranges are served from volume metadata
		// without touching the cluster data path.
		if e.allWritten(r.Offset, r.Size) {
			e.iopsTb.Take(e.iopsCost(r.Size), func() {
				e.bytesTb.Take(float64(r.Size), func() {
					e.spendCredits(r.Size, func() {
						e.dispatchRead(r)
					})
				})
			})
			return
		}
		e.counters.UnwrittenReads++
		e.net.Hop(func() { e.net.Hop(func() { e.complete(r) }) })
	})
}

func (e *ESSD) dispatchRead(r *blockdev.Request) {
	sizes := e.subRanges(r.Offset, r.Size)
	rem := len(sizes)
	off := r.Offset
	for _, sz := range sizes {
		chunk := off / e.cfg.Cluster.ChunkBytes
		e.counters.SubReads++
		sz := sz
		// Command hop up, cluster read, payload down.
		e.net.Hop(func() {
			e.cl.Read(chunk, sz, func() {
				e.net.SendDown(sz, func() {
					rem--
					if rem == 0 {
						e.complete(r)
					}
				})
			})
		})
		off += sz
	}
}

func (e *ESSD) submitTrim(r *blockdev.Request) {
	e.counters.Trims++
	e.fe.Visit(e.cfg.FrontendLatency.Sample(e.rng), func() {
		for b := r.Offset / e.cfg.BlockSize; b < (r.Offset+r.Size)/e.cfg.BlockSize; b++ {
			e.written[b>>6] &^= 1 << uint(b&63)
		}
		e.net.Hop(func() { e.net.Hop(func() { e.complete(r) }) })
	})
}

func (e *ESSD) submitFlush(r *blockdev.Request) {
	e.counters.Flushes++
	// Journal-acknowledged writes are already durable; a flush is one
	// round trip.
	e.fe.Visit(e.cfg.FrontendLatency.Sample(e.rng), func() {
		e.net.Hop(func() { e.net.Hop(func() { e.complete(r) }) })
	})
}

var _ blockdev.Device = (*ESSD)(nil)
