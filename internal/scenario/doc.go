// Package scenario builds opinionated experiment suites on top of the
// internal/expgrid worker pool. Where internal/harness reproduces the
// paper's figures, scenario answers the operational questions the figures
// imply.
//
// The burst-credit suite (BurstSweep, RunBurst) targets Observation #4 /
// Implication #4 on burstable volume tiers: mixed random I/O swept across
// write ratio × arrival shape × offered rate, run open-loop so the offered
// timeline — not device back-pressure — drives credit consumption. Each
// cell reports when the tier's burst credits ran out, the post-run credit
// and throttle state (captured by InspectCredits while the cell's device
// is still alive), and the latency cliff: completion-weighted latency and
// throughput before and after the first exhaustion, from the open-loop
// result's per-interval timelines.
//
// The noisy-neighbor suite (NeighborSweep, RunNeighbor) targets the
// cross-tenant face of the contract: one steady open-loop victim shares a
// storage backend (essd.Backend — one cluster, one fabric, one pooled
// cleaner) with a swept number of bursty aggressor volumes, through the
// expgrid tenant-mix kind. Each cell reports the victim's tail latency,
// its inflation over the solo-victim control cell (aggressors = 0), and
// the shared-debt throttle onset — when the victim's flow limiter engaged
// because the pooled cleaner backlog, mostly someone else's churn, crossed
// the victim's spare-capacity threshold (InspectNeighbors attributes the
// debt per tenant).
//
// # Model assumptions
//
// Every cell runs on fresh, fully written devices (reads must hit data)
// whose engine starts at virtual time zero; preconditioning consumes no
// virtual time, so credit-exhaustion and throttle-onset timestamps are
// directly comparable across cells. Results are deterministic and
// identical for any worker count. Attaching an expgrid.Cache
// (BurstSweep.Cache, NeighborSweep.Cache) makes warm re-runs skip
// simulation entirely while producing byte-identical reports; CreditInfo
// and NeighborInfo are JSON-round-trippable (DecodeCreditInfo,
// DecodeNeighborInfo) so cached cells survive persistence.
//
// The isolation comparison (IsolationComparison, RunIsolationComparison)
// reruns the neighbor grid once per backend QoS scheduling policy (fifo,
// wfq, reservation — qos.Isolation) on identical arrival streams: the
// isolation configuration feeds each cell's cache variant, never its
// seeds, so the per-policy victim-tail differences are pure scheduling
// effects. NeighborSweep.Isolation/VictimWeight/VictimReservedRate run a
// single policy inside the plain neighbor suite.
//
// Reports render as aligned tables (FormatBurst, FormatNeighbor,
// FormatIsolation) or as CSV for plotting (WriteBurstCSV and
// WriteBurstTimelineCSV for the burst suite, WriteNeighborCSV for the
// neighbor suite, WriteIsolationCSV for the isolation comparison); the
// CSV schemas are documented in docs/formats.md.
package scenario
