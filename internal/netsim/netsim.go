// Package netsim models the datacenter network between the compute cluster
// and the storage cluster (paper Fig 1): per-direction bandwidth pipes plus
// a jittered per-hop propagation/processing delay. This network is the
// dominant term in the ESSD latency gap of Observation #1.
//
// A Network may be shared by several clients (the multi-tenant fabric of a
// disaggregated backend): each client tags its traffic with a Flow, which
// accounts bytes per direction while every flow contends on the same two
// pipes — the fabric-contention half of cross-tenant interference.
// SetIsolation installs a qos.Isolation scheduling policy on both pipes;
// flows created with NewFlowQoS then share each direction by weight (or
// reserved rate) instead of arrival order, while the default keeps the
// FIFO fabric byte-identical.
package netsim

import (
	"essdsim/internal/obs"
	"essdsim/internal/qos"
	"essdsim/internal/sim"
)

// Config parameterizes a network path between two endpoints.
type Config struct {
	// HopLatency is the one-way propagation plus switching/processing
	// latency distribution for one traversal of the fabric.
	HopLatency sim.Dist
	// UplinkBW is the client-to-cluster bandwidth in bytes/s.
	UplinkBW float64
	// DownlinkBW is the cluster-to-client bandwidth in bytes/s.
	DownlinkBW float64
}

// Network is a full-duplex path: an uplink pipe, a downlink pipe, and a
// sampled hop latency applied to each traversal.
type Network struct {
	eng   *sim.Engine
	cfg   Config
	rng   *sim.RNG
	up    *sim.Pipe
	down  *sim.Pipe
	flows int

	freeXfers *xfer // intrusive free list of pooled transfer jobs
}

// xfer is one payload transfer in flight: the hop latency sampled at
// submission plus the caller's completion, carried through the pipe by a
// continuation bound once at construction — the steady-state send path
// allocates nothing.
type xfer struct {
	n        *Network
	lat      sim.Duration
	done     func()
	onDrain  func()
	nextFree *xfer
}

func (n *Network) getXfer(lat sim.Duration, done func()) *xfer {
	x := n.freeXfers
	if x != nil {
		n.freeXfers = x.nextFree
		x.nextFree = nil
	} else {
		x = &xfer{n: n}
		x.onDrain = x.drain
	}
	x.lat = lat
	x.done = done
	return x
}

// drain runs when the last byte leaves the pipe: the payload then pays the
// sampled hop latency before the caller's completion fires.
func (x *xfer) drain() {
	n, lat, done := x.n, x.lat, x.done
	x.done = nil
	x.nextFree = n.freeXfers
	n.freeXfers = x
	n.eng.Schedule(lat, done)
}

// New builds a network path on the engine.
func New(eng *sim.Engine, cfg Config, rng *sim.RNG) *Network {
	if rng == nil {
		rng = sim.NewRNG(0x0e7, 0x51b)
	}
	return &Network{
		eng:  eng,
		cfg:  cfg,
		rng:  rng,
		up:   sim.NewPipe(eng, "net-up", cfg.UplinkBW),
		down: sim.NewPipe(eng, "net-down", cfg.DownlinkBW),
	}
}

// SetIsolation installs the isolation policy's flow scheduler on the
// uplink and downlink pipes. A FIFO (zero-value) policy installs nothing,
// keeping the default path byte-identical to the unscheduled pipes.
// Install before the first transfer.
func (n *Network) SetIsolation(iso qos.Isolation) {
	if !iso.Enabled() {
		return
	}
	q := iso.QuantumOrDefault()
	n.up.SetQueue(iso.NewQueue(n.eng, q))
	n.down.SetQueue(iso.NewQueue(n.eng, q))
}

// SendUp transfers n payload bytes toward the storage cluster and invokes
// done when the last byte (plus one hop latency) arrives.
func (n *Network) SendUp(bytes int64, done func()) {
	n.sendUp(-1, bytes, done)
}

func (n *Network) sendUp(flow int, bytes int64, done func()) {
	x := n.getXfer(n.cfg.HopLatency.Sample(n.rng), done)
	n.up.TransferFlow(flow, bytes, x.onDrain)
}

// SendDown transfers n payload bytes toward the client.
func (n *Network) SendDown(bytes int64, done func()) {
	n.sendDown(-1, bytes, done)
}

func (n *Network) sendDown(flow int, bytes int64, done func()) {
	x := n.getXfer(n.cfg.HopLatency.Sample(n.rng), done)
	n.down.TransferFlow(flow, bytes, x.onDrain)
}

// HopSample draws one hop latency without moving payload — used for
// intra-cluster control messages (e.g. replication acks).
func (n *Network) HopSample() sim.Duration {
	return n.cfg.HopLatency.Sample(n.rng)
}

// Hop schedules done after one sampled hop latency with no payload.
func (n *Network) Hop(done func()) {
	n.eng.Schedule(n.HopSample(), done)
}

// UpTransferTime returns the uplink's pure service time for n bytes
// (no queueing, no hop latency) — the service half of a traced
// transfer's queue-wait/service split.
func (n *Network) UpTransferTime(bytes int64) sim.Duration { return n.up.TransferTime(bytes) }

// DownTransferTime is UpTransferTime for the downlink.
func (n *Network) DownTransferTime(bytes int64) sim.Duration { return n.down.TransferTime(bytes) }

// InstallProbes registers the fabric's state gauges: the committed
// queueing delay of each direction's pipe. Per-flow byte attribution is
// installed by each flow's owner (essd.ESSD.InstallProbes).
func (n *Network) InstallProbes(p *obs.Prober) {
	p.Add("net/up/backlog_s", func() float64 { return n.up.Backlog().Seconds() })
	p.Add("net/down/backlog_s", func() float64 { return n.down.Backlog().Seconds() })
}

// UplinkBacklog returns the current queueing delay on the uplink.
func (n *Network) UplinkBacklog() sim.Duration { return n.up.Backlog() }

// DownlinkBacklog returns the current queueing delay on the downlink.
func (n *Network) DownlinkBacklog() sim.Duration { return n.down.Backlog() }

// MovedUp returns total bytes sent toward the cluster.
func (n *Network) MovedUp() int64 { return n.up.Moved() }

// MovedDown returns total bytes sent toward the client.
func (n *Network) MovedDown() int64 { return n.down.Moved() }

// Flow tags one client's traffic on a shared network path. Transfers go
// through the network's shared pipes — flows contend with each other for
// bandwidth — while per-flow byte counters attribute the load, which is
// what lets a shared backend report which volume saturated the fabric.
type Flow struct {
	n        *Network
	name     string
	id       int
	up, down int64
}

// NewFlow registers a named traffic flow on the network. The name is
// descriptive only (volume name, tenant id); under the default FIFO
// policy flows are not rate-limited individually.
func (n *Network) NewFlow(name string) *Flow {
	return n.NewFlowQoS(name, 1, 0)
}

// NewFlowQoS registers a flow with scheduling parameters: weight is its
// share at the fabric pipes under wfq/reservation, reservedBps the
// strictly-first bandwidth under reservation. Both are inert under the
// default FIFO policy.
func (n *Network) NewFlowQoS(name string, weight, reservedBps float64) *Flow {
	f := &Flow{n: n, name: name, id: n.flows}
	n.flows++
	n.up.SetFlow(f.id, weight, reservedBps)
	n.down.SetFlow(f.id, weight, reservedBps)
	return f
}

// ReleaseFlow resets a departed flow's scheduling shares on both fabric
// pipes to the inert defaults (weight 1, no reservation), so the capacity
// a detached volume held under wfq/reservation is redistributed to the
// survivors. The flow's byte counters are kept — departed traffic remains
// attributable — but the flow must not send after release.
func (n *Network) ReleaseFlow(f *Flow) {
	n.up.SetFlow(f.id, 1, 0)
	n.down.SetFlow(f.id, 1, 0)
}

// Name returns the flow's tag.
func (f *Flow) Name() string { return f.name }

// SendUp transfers payload toward the cluster on the shared uplink,
// attributing the bytes to this flow.
func (f *Flow) SendUp(bytes int64, done func()) {
	f.up += bytes
	f.n.sendUp(f.id, bytes, done)
}

// SendDown transfers payload toward the client on the shared downlink,
// attributing the bytes to this flow.
func (f *Flow) SendDown(bytes int64, done func()) {
	f.down += bytes
	f.n.sendDown(f.id, bytes, done)
}

// Hop schedules done after one sampled hop latency with no payload.
func (f *Flow) Hop(done func()) { f.n.Hop(done) }

// MovedUp returns this flow's bytes sent toward the cluster.
func (f *Flow) MovedUp() int64 { return f.up }

// MovedDown returns this flow's bytes sent toward the client.
func (f *Flow) MovedDown() int64 { return f.down }
