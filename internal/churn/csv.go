package churn

import (
	"fmt"
	"io"

	"essdsim/internal/results"
	"essdsim/internal/sim"
)

// EpochsTable renders the time series as one row per control epoch.
// Schema documented in docs/formats.md (fleet_churn_epochs.csv).
func EpochsTable(r *Report) *results.Table {
	t := results.NewTable("fleet_churn_epochs",
		"epoch", "tenants", "backends_used",
		"offered_mbps", "utilization", "stranded_mbps",
		"creates", "deletes", "expands", "shrinks", "snapshots",
		"migrations", "move_mb",
		"p99_violations", "p999_violations", "throttled_tenants",
		"achieved_mbps", "worst_p99_ms", "worst_p999_ms", "shared_debt_bytes",
	)
	for _, e := range r.Epochs {
		t.AddRow(
			results.Int(int64(e.Epoch)),
			results.Int(int64(e.Tenants)),
			results.Int(int64(e.BackendsUsed)),
			results.Float(e.OfferedBps/1e6),
			results.Float(e.MeanUtilization),
			results.Float(e.StrandedBps/1e6),
			results.Int(int64(e.Creates)),
			results.Int(int64(e.Deletes)),
			results.Int(int64(e.Expands)),
			results.Int(int64(e.Shrinks)),
			results.Int(int64(e.Snapshots)),
			results.Int(int64(e.Migrations)),
			results.Float(float64(e.MoveBytes)/1e6),
			results.Int(int64(e.P99Violations)),
			results.Int(int64(e.P999Violations)),
			results.Int(int64(e.ThrottledTenants)),
			results.Float(e.AchievedBps/1e6),
			results.Millis(e.WorstP99),
			results.Millis(e.WorstP999),
			results.Int(e.SharedDebt),
		)
	}
	return t
}

// EventsTable renders the audit trail as one row per applied lifecycle
// event or migration. Schema documented in docs/formats.md
// (fleet_churn_events.csv).
func EventsTable(r *Report) *results.Table {
	t := results.NewTable("fleet_churn_events",
		"epoch", "kind", "tenant", "demand",
		"from_backend", "to_backend", "scale", "move_bytes",
	)
	for _, ev := range r.Events {
		t.AddRow(
			results.Int(int64(ev.Epoch)),
			ev.Kind.String(),
			ev.Tenant,
			ev.Demand,
			results.Int(int64(ev.From)),
			results.Int(int64(ev.To)),
			results.Float(ev.Scale),
			results.Int(ev.MoveBytes),
		)
	}
	return t
}

// WriteEpochsCSV dumps the per-epoch time series as CSV.
func WriteEpochsCSV(w io.Writer, r *Report) error {
	return EpochsTable(r).WriteCSV(w)
}

// WriteEventsCSV dumps the event audit trail as CSV.
func WriteEventsCSV(w io.Writer, r *Report) error {
	return EventsTable(r).WriteCSV(w)
}

// Format writes the study as an aligned per-epoch table with a totals
// line: the population, packing state, event counts, and measured SLO
// outcome of every control epoch.
func Format(w io.Writer, r *Report) {
	fmt.Fprintf(w, "Fleet churn: %d epochs of %v on %d backends (budget %.0f MB/s), placement %s, rebalance %s\n",
		len(r.Epochs), r.EpochLen, r.Backends, r.BackendBps/1e6, r.Placement, r.Rebalancer)
	fmt.Fprintf(w, "%5s %7s %8s %6s %10s %7s %7s %9s %10s %9s %10s\n",
		"epoch", "tenants", "backends", "util%", "strandedMB", "events", "moves", "p99-viol", "p999-viol", "throttle", "worst-p99")
	for _, e := range r.Epochs {
		events := e.Creates + e.Deletes + e.Expands + e.Shrinks + e.Snapshots
		fmt.Fprintf(w, "%5d %7d %8d %6.0f %10.0f %7d %7d %9d %10d %9d %10s\n",
			e.Epoch, e.Tenants, e.BackendsUsed, e.MeanUtilization*100,
			e.StrandedBps/1e6, events, e.Migrations,
			e.P99Violations, e.P999Violations, e.ThrottledTenants, fmtLat(e.WorstP99))
	}
	fmt.Fprintf(w, "total: %d migrations (%.0f MB moved), %d p99 violations, %d p99.9 violations\n",
		r.TotalMigrations, float64(r.TotalMoveBytes)/1e6,
		r.TotalP99Violations, r.TotalP999Violations)
}

// fmtLat renders a latency compactly (µs under 1 ms, ms otherwise).
func fmtLat(d sim.Duration) string {
	switch {
	case d < 0:
		return "-"
	case d < sim.Millisecond:
		return fmt.Sprintf("%dµs", int64(d)/1000)
	default:
		return fmt.Sprintf("%.1fms", d.Seconds()*1e3)
	}
}
