package sim

import "sync"

// enginePool recycles engines across experiment cells. An engine's event
// storage grows to the high-water mark of its busiest simulation; reusing
// it lets every subsequent cell run allocation-free in the event loop.
var enginePool = sync.Pool{New: func() any { return NewEngine() }}

// AcquireEngine returns a reset engine, reusing pooled event storage when
// available. It is indistinguishable from NewEngine for determinism: a
// reset engine starts with the clock at zero, no pending events, and fresh
// counters.
//
// Callers that finish a bounded simulation (an experiment cell, a bench
// iteration) should hand the engine back with ReleaseEngine once nothing
// can schedule onto it anymore.
func AcquireEngine() *Engine {
	e := enginePool.Get().(*Engine)
	e.Reset()
	return e
}

// ReleaseEngine resets e and returns it to the pool. The caller must
// guarantee no other component still schedules onto or reads from e —
// typically right after the cell's measurement and inspection complete.
// Releasing nil is a no-op.
func ReleaseEngine(e *Engine) {
	if e == nil {
		return
	}
	e.Reset()
	enginePool.Put(e)
}
