package essd

// Observability over the assembled volume stack: tracer attachment and
// state-probe installation. Both planes are off by default — a volume
// without SetTracer pays one nil branch per Submit, and probes only
// exist when a harness installs them.

import "essdsim/internal/obs"

// SetTracer attaches a request tracer to the volume: Submit then offers
// every request to the tracer's deterministic sampler, and sampled
// requests record per-stage spans through the frontend, QoS gates,
// fabric, and cluster. A nil tracer (the default) keeps the hot path
// untraced. Tracing never draws from any RNG, so traced runs produce
// byte-identical results to untraced ones.
func (e *ESSD) SetTracer(t *obs.Tracer) { e.trc = t }

// polLabel names the backend isolation policy on trace spans crossing
// the shared fabric and cluster.
func (e *ESSD) polLabel() string { return e.be.cfg.Isolation.Policy.String() }

// InstallProbes registers the volume's state gauges, prefixed with the
// volume name: frontend queue/busy, fabric bytes per direction, the
// cleaner debt this volume's limiter observes, throttle engagement, and
// (burstable tiers) the banked credit balance. All samplers are
// read-only — they never settle QoS state.
func (e *ESSD) InstallProbes(p *obs.Prober) {
	name := e.cfg.Name
	p.Add(name+"/fe/qlen", func() float64 { return float64(e.fe.QueueLen()) })
	p.Add(name+"/fe/busy", func() float64 { return float64(e.fe.Busy()) })
	p.Add(name+"/net-up-bytes", func() float64 { return float64(e.nf.MovedUp()) })
	p.Add(name+"/net-down-bytes", func() float64 { return float64(e.nf.MovedDown()) })
	p.Add(name+"/debt-observed", func() float64 { return float64(e.be.cl.PeekDebtFor(e.flow)) })
	p.Add(name+"/throttled", func() float64 {
		if e.limiter.Engaged() {
			return 1
		}
		return 0
	})
	if e.credits != nil {
		p.Add(name+"/credits", func() float64 { return e.credits.PeekCredits() })
	}
}

// InstallProbes registers the shared backend's gauges — the cluster's
// debt and node resources, the fabric's backlogs — plus every currently
// attached volume's. Attach the volumes before installing.
func (b *Backend) InstallProbes(p *obs.Prober) {
	b.cl.InstallProbes(p)
	b.net.InstallProbes(p)
	for _, v := range b.vols {
		v.InstallProbes(p)
	}
}
