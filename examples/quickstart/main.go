// Quickstart: measure the ESSD/SSD latency gap (Observation #1) and show
// how scaling I/O size and queue depth shrinks it (Implication #1).
package main

import (
	"fmt"

	"essdsim"
)

func measure(name string, bs int64, qd int) essdsim.LatencySummary {
	eng := essdsim.NewEngine()
	dev, err := essdsim.NewDevice(name, eng, 42)
	if err != nil {
		panic(err)
	}
	essdsim.Precondition(dev, true)
	res := essdsim.Run(dev, essdsim.Workload{
		Pattern:    essdsim.RandWrite,
		BlockSize:  bs,
		QueueDepth: qd,
		Duration:   400 * essdsim.Millisecond,
		Warmup:     50 * essdsim.Millisecond,
		Seed:       42,
	})
	return res.Lat.Summarize()
}

func main() {
	fmt.Println("The unwritten contract, Observation #1:")
	fmt.Println("ESSD latency is tens of times the local SSD's until I/O is scaled up.")
	fmt.Println()
	cells := []struct {
		bs int64
		qd int
	}{
		{4 << 10, 1},    // small and shallow: the worst case
		{4 << 10, 16},   // deeper queue
		{256 << 10, 1},  // bigger I/O
		{256 << 10, 16}, // both: the gap nearly closes
	}
	fmt.Printf("%-14s %-14s %-14s %-8s\n", "bs/QD", "ESSD-1 avg", "SSD avg", "gap")
	for _, c := range cells {
		e := measure("essd1", c.bs, c.qd)
		s := measure("ssd", c.bs, c.qd)
		gap := float64(e.Mean) / float64(s.Mean)
		fmt.Printf("%-14s %-14v %-14v %.1fx\n",
			fmt.Sprintf("%dK / QD%d", c.bs>>10, c.qd), e.Mean, s.Mean, gap)
	}
	fmt.Println()
	fmt.Println("Implication #1: batch and deepen your I/O before moving to the cloud —")
	fmt.Println("the 4K/QD1 path that is harmless on a local SSD costs tens of times more on an ESSD.")
}
