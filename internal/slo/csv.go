package slo

import (
	"io"

	"essdsim/internal/results"
)

// ProbesTable renders the search's probes as one row per evaluated rate.
// The Cached flag is deliberately not a column: a cache-warm search
// serializes byte-identically to the cold run that populated the cache.
// Schema documented in docs/formats.md.
func ProbesTable(r *Report) *results.Table {
	t := results.NewTable("slo_probes",
		"device", "pattern", "arrival", "block_size", "rate_per_s", "offered_mbps",
		"ops", "elapsed_s", "exhausted", "exhausted_at_s",
		"pre_p99_ms", "pre_p999_ms", "post_p99_ms", "post_p999_ms",
		"max_outstanding", "pre_pass", "post_pass",
	)
	for _, p := range r.Probes {
		t.AddRow(
			r.Device,
			r.Pattern.String(),
			r.Arrival.String(),
			results.Int(r.BlockSize),
			results.Float(p.RatePerSec),
			results.Float(p.OfferedBps/1e6),
			results.Uint(p.Ops),
			results.Seconds(p.Elapsed),
			results.Bool(p.Exhausted),
			results.Seconds(p.ExhaustedAt),
			results.Millis(p.PreP99),
			results.Millis(p.PreP999),
			results.Millis(p.PostP99),
			results.Millis(p.PostP999),
			results.Int(int64(p.MaxOutstanding)),
			results.Bool(p.PrePass),
			results.Bool(p.PostPass),
		)
	}
	return t
}

// WriteProbesCSV dumps the probe table as CSV.
func WriteProbesCSV(w io.Writer, r *Report) error {
	return ProbesTable(r).WriteCSV(w)
}
