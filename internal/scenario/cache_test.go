package scenario

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"

	"essdsim/internal/expgrid"
)

func cachedSweep(cache *expgrid.Cache) BurstSweep {
	return BurstSweep{
		WriteRatiosPct: []int{50},
		RatesPerSec:    []float64{3000},
		Ops:            2000,
		Cache:          cache,
		Seed:           7,
	}
}

func burstCSVs(t *testing.T, rep *BurstReport) (cells, timeline []byte) {
	t.Helper()
	var c, tl bytes.Buffer
	if err := WriteBurstCSV(&c, rep); err != nil {
		t.Fatal(err)
	}
	if err := WriteBurstTimelineCSV(&tl, rep); err != nil {
		t.Fatal(err)
	}
	return c.Bytes(), tl.Bytes()
}

// TestBurstWarmRunByteIdentical asserts that a cache-warm re-run of the
// burst suite executes zero new cells and dumps byte-identical CSV, both
// in-process and across a simulated restart (JSON file round trip).
func TestBurstWarmRunByteIdentical(t *testing.T) {
	cache := expgrid.NewCache(0)
	cold, err := RunBurst(context.Background(), cachedSweep(cache))
	if err != nil {
		t.Fatal(err)
	}
	coldCells, coldTimeline := burstCSVs(t, cold)
	if _, misses := cache.Stats(); misses != uint64(len(cold.Cells)) {
		t.Fatalf("cold run missed %d times, want %d", misses, len(cold.Cells))
	}

	warm, err := RunBurst(context.Background(), cachedSweep(cache))
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := cache.Stats()
	if got := hits; got != uint64(len(cold.Cells)) {
		t.Fatalf("warm run hit %d cells, want %d (misses %d)", got, len(cold.Cells), misses)
	}
	if misses != uint64(len(cold.Cells)) {
		t.Fatalf("warm run executed %d new cells, want 0", misses-uint64(len(cold.Cells)))
	}
	warmCells, warmTimeline := burstCSVs(t, warm)
	if !bytes.Equal(coldCells, warmCells) {
		t.Fatal("cell CSV differs between cold and warm run")
	}
	if !bytes.Equal(coldTimeline, warmTimeline) {
		t.Fatal("timeline CSV differs between cold and warm run")
	}

	// Restart: persist, reload into a fresh cache, re-run.
	path := filepath.Join(t.TempDir(), "burstcache.json")
	if err := cache.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	reloaded := expgrid.NewCache(0)
	if err := reloaded.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	again, err := RunBurst(context.Background(), cachedSweep(reloaded))
	if err != nil {
		t.Fatal(err)
	}
	if _, misses := reloaded.Stats(); misses != 0 {
		t.Fatalf("restart-warm run executed %d new cells, want 0", misses)
	}
	againCells, againTimeline := burstCSVs(t, again)
	if !bytes.Equal(coldCells, againCells) || !bytes.Equal(coldTimeline, againTimeline) {
		t.Fatal("CSV differs after cache persistence round trip")
	}
}
