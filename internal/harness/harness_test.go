package harness

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"essdsim/internal/blockdev"
	"essdsim/internal/expgrid"
	"essdsim/internal/profiles"
	"essdsim/internal/sim"
	"essdsim/internal/workload"
)

func essd1Factory(seed uint64) blockdev.Device {
	d, err := profiles.ByName("essd1", sim.NewEngine(), sim.NewRNG(seed, seed^0xaa))
	if err != nil {
		panic(err)
	}
	return d
}

func ssdFactory(seed uint64) blockdev.Device {
	d, err := profiles.ByName("ssd", sim.NewEngine(), sim.NewRNG(seed, seed^0xbb))
	if err != nil {
		panic(err)
	}
	return d
}

var quickOpts = Options{CellDuration: 120 * sim.Millisecond, Warmup: 20 * sim.Millisecond, Seed: 1}

func TestLatencyGridSmall(t *testing.T) {
	g := RunLatencyGridWith(essd1Factory,
		[]workload.Pattern{workload.RandWrite, workload.RandRead},
		[]int64{4 << 10}, []int{1, 8}, quickOpts)
	if len(g.Cells) != 4 {
		t.Fatalf("cells = %d", len(g.Cells))
	}
	c := g.Cell(workload.RandWrite, 4<<10, 1)
	if c == nil || c.Avg <= 0 || c.P999 < c.Avg || c.Ops == 0 {
		t.Fatalf("bad cell: %+v", c)
	}
	if g.Cell(workload.RandWrite, 8<<10, 1) != nil {
		t.Fatal("lookup of absent cell succeeded")
	}
	if g.Device == "" {
		t.Fatal("device name empty")
	}
}

func TestLatencyGridDeterministic(t *testing.T) {
	spec := []int64{4 << 10}
	a := RunLatencyGridWith(essd1Factory, []workload.Pattern{workload.RandRead}, spec, []int{4}, quickOpts)
	b := RunLatencyGridWith(essd1Factory, []workload.Pattern{workload.RandRead}, spec, []int{4}, quickOpts)
	if a.Cells[0].Avg != b.Cells[0].Avg || a.Cells[0].P999 != b.Cells[0].P999 {
		t.Fatal("same-seed grids differ")
	}
}

// TestLatencyGridSeedStability asserts the expgrid coordinate-hash seeding:
// a cell measures identical numbers whether it runs inside a larger grid or
// in a 1-cell grid, because its seed depends only on its own coordinates.
// (The old harness seeded cells from a shared counter, so any change to
// the axes silently re-seeded every later cell.)
func TestLatencyGridSeedStability(t *testing.T) {
	full := RunLatencyGridWith(essd1Factory,
		[]workload.Pattern{workload.RandWrite, workload.RandRead},
		[]int64{4 << 10, 64 << 10}, []int{1, 8}, quickOpts)
	sub := RunLatencyGridWith(essd1Factory,
		[]workload.Pattern{workload.RandRead}, []int64{64 << 10}, []int{8}, quickOpts)
	want := full.Cell(workload.RandRead, 64<<10, 8)
	got := sub.Cell(workload.RandRead, 64<<10, 8)
	if want == nil || got == nil {
		t.Fatal("cell missing")
	}
	if *want != *got {
		t.Fatalf("cell changed when axes were subset:\nfull grid: %+v\n1-cell:    %+v", want, got)
	}
}

// TestGridParallelDeterminism requires byte-identical Figure 2/4/5 results
// from 1-worker and 8-worker runs.
func TestGridParallelDeterminism(t *testing.T) {
	serial, parallel := quickOpts, quickOpts
	serial.Workers, parallel.Workers = 1, 8
	patterns := []workload.Pattern{workload.RandWrite, workload.SeqRead}
	sizes, qds := []int64{4 << 10, 64 << 10}, []int{1, 8}

	a := RunLatencyGridWith(essd1Factory, patterns, sizes, qds, serial)
	b := RunLatencyGridWith(essd1Factory, patterns, sizes, qds, parallel)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("latency grid differs between 1 and 8 workers:\n%+v\n%+v", a, b)
	}

	r4a := RunRandSeqSweepWith(essd1Factory, sizes, qds, serial)
	r4b := RunRandSeqSweepWith(essd1Factory, sizes, qds, parallel)
	if !reflect.DeepEqual(r4a, r4b) {
		t.Fatalf("rand/seq sweep differs between 1 and 8 workers:\n%+v\n%+v", r4a, r4b)
	}

	r5a := RunMixedSweepWith(ssdFactory, []int{0, 50, 100}, serial)
	r5b := RunMixedSweepWith(ssdFactory, []int{0, 50, 100}, parallel)
	if !reflect.DeepEqual(r5a, r5b) {
		t.Fatalf("mixed sweep differs between 1 and 8 workers:\n%+v\n%+v", r5a, r5b)
	}
}

// TestRunSustainedWrites checks the multi-device Figure 3 variant agrees
// with the single-device runner, device state included.
func TestRunSustainedWrites(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-device sustained write is slow")
	}
	devices := []expgrid.NamedFactory{
		{Name: "essd1", New: essd1Factory},
		{Name: "ssd", New: ssdFactory},
	}
	both := RunSustainedWrites(devices, 0.3, quickOpts)
	if len(both) != 2 {
		t.Fatalf("results = %d", len(both))
	}
	if both[0].Device == both[1].Device {
		t.Fatal("device order lost")
	}
	if both[1].WriteAmp < 1 {
		t.Fatalf("SSD write amp %v", both[1].WriteAmp)
	}
}

func TestRandSeqSweepSmall(t *testing.T) {
	r := RunRandSeqSweepWith(essd1Factory, []int64{16 << 10}, []int{1, 32}, quickOpts)
	if len(r.Cells) != 2 {
		t.Fatalf("cells = %d", len(r.Cells))
	}
	g1 := r.Cell(16<<10, 1).Gain()
	g32 := r.Cell(16<<10, 32).Gain()
	if g1 < 0.8 || g1 > 1.2 {
		t.Errorf("QD1 gain = %.2f, want ≈1", g1)
	}
	if g32 <= g1 {
		t.Errorf("gain did not grow with QD: %.2f -> %.2f", g1, g32)
	}
	max, at := r.MaxGain()
	if max != g32 || at.QueueDepth != 32 {
		t.Errorf("MaxGain = %.2f at %+v", max, at)
	}
}

func TestMixedSweepSmall(t *testing.T) {
	r := RunMixedSweepWith(essd1Factory, []int{0, 50, 100}, quickOpts)
	if len(r.Points) != 3 {
		t.Fatalf("points = %d", len(r.Points))
	}
	if r.Spread() > 0.12 {
		t.Errorf("ESSD spread = %.2f", r.Spread())
	}
	if r.Points[0].WriteBW != 0 {
		t.Errorf("pure-read point has write bandwidth %.0f", r.Points[0].WriteBW)
	}
	if r.Points[2].WriteBW < r.Points[2].TotalBW*0.95 {
		t.Errorf("pure-write point: write %.2f of total %.2f",
			r.Points[2].WriteBW/1e9, r.Points[2].TotalBW/1e9)
	}
}

func TestSustainedWriteSmallMultiple(t *testing.T) {
	// 0.3× capacity: no GC, no knee, full-speed writes on both devices.
	res := RunSustainedWrite(ssdFactory, 0.3, quickOpts)
	if res.KneeCapFrac >= 0 {
		t.Errorf("unexpected knee at %.2fx", res.KneeCapFrac)
	}
	mean := float64(res.TotalWritten) / res.Elapsed.Seconds()
	if mean < 2.0e9 {
		t.Errorf("SSD GC-free mean %.2f GB/s, want ≈2.7", mean/1e9)
	}
	want := int64(0.3 * float64(res.Capacity))
	if diff := res.TotalWritten - want; diff < -(128<<10) || diff > 128<<10 {
		t.Errorf("wrote %d, want ≈%d", res.TotalWritten, want)
	}
}

func TestPreconditionDispatch(t *testing.T) {
	// ESSD read cells get a full fill (write cells a half fill — covered
	// by the expgrid regression test).
	e := essd1Factory(1)
	Precondition(e, false)
	lat := runOne(e, blockdev.Read, 0, 4096)
	if lat <= 0 {
		t.Fatal("read failed")
	}
	// SSD write cells get a half fill.
	s := ssdFactory(1).(interface {
		blockdev.Device
		FTLWriteAmp() float64
	})
	Precondition(s, true)
}

// TestNegativeWarmupPassesThrough is the regression test for withDefaults
// clobbering an explicit "no warmup" request back to the 50 ms default:
// expgrid defines negative warmup as "no warmup at all", so the harness
// API must preserve the sign.
func TestNegativeWarmupPassesThrough(t *testing.T) {
	o := Options{Warmup: -1}.withDefaults()
	if o.Warmup != -1 {
		t.Fatalf("negative warmup became %v", o.Warmup)
	}
	if def := (Options{}).withDefaults(); def.Warmup != 50*sim.Millisecond {
		t.Fatalf("default warmup = %v", def.Warmup)
	}
	// End to end: a cell run with negative warmup must reach the workload
	// with zero warmup and record from the very first completion.
	opts := Options{CellDuration: 40 * sim.Millisecond, Warmup: -1, Seed: 3, Workers: 1}
	grid := RunLatencyGridWith(essd1Factory, []workload.Pattern{workload.RandRead},
		[]int64{4 << 10}, []int{1}, opts)
	warmed := RunLatencyGridWith(essd1Factory, []workload.Pattern{workload.RandRead},
		[]int64{4 << 10}, []int{1},
		Options{CellDuration: 40 * sim.Millisecond, Warmup: 20 * sim.Millisecond, Seed: 3, Workers: 1})
	if grid.Cells[0].Ops <= warmed.Cells[0].Ops {
		t.Fatalf("no-warmup cell recorded %d ops, warmed cell %d: warmup not disabled",
			grid.Cells[0].Ops, warmed.Cells[0].Ops)
	}
}

func runOne(d blockdev.Device, op blockdev.Op, off, size int64) sim.Duration {
	var lat sim.Duration = -1
	d.Submit(&blockdev.Request{Op: op, Offset: off, Size: size,
		OnComplete: func(r *blockdev.Request, at sim.Time) { lat = r.Latency(at) }})
	d.Engine().Run()
	return lat
}

func TestFormatTableI(t *testing.T) {
	var buf bytes.Buffer
	FormatTableI(&buf, profiles.TableI())
	out := buf.String()
	for _, want := range []string{"TABLE I", "io2", "PL3", "970 Pro", "100.0K", "Amazon AWS"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I output missing %q:\n%s", want, out)
		}
	}
}

func TestFormatFig2(t *testing.T) {
	e := RunLatencyGridWith(essd1Factory, []workload.Pattern{workload.RandWrite},
		[]int64{4 << 10}, []int{1}, quickOpts)
	s := RunLatencyGridWith(ssdFactory, []workload.Pattern{workload.RandWrite},
		[]int64{4 << 10}, []int{1}, quickOpts)
	var buf bytes.Buffer
	FormatFig2(&buf, e, s, MetricAvg)
	out := buf.String()
	if !strings.Contains(out, "Figure 2") || !strings.Contains(out, "randwrite") ||
		!strings.Contains(out, "x (") {
		t.Errorf("Fig2 output malformed:\n%s", out)
	}
	buf.Reset()
	FormatFig2(&buf, e, s, MetricP999)
	if !strings.Contains(buf.String(), "P99.9") {
		t.Error("P99.9 header missing")
	}
}

func TestFormatFig4AndFig5(t *testing.T) {
	r4 := RunRandSeqSweepWith(essd1Factory, []int64{16 << 10}, []int{32}, quickOpts)
	var buf bytes.Buffer
	FormatFig4(&buf, []*RandSeqResult{r4})
	if !strings.Contains(buf.String(), "max gain") {
		t.Errorf("Fig4 output malformed:\n%s", buf.String())
	}
	r5 := RunMixedSweepWith(essd1Factory, []int{0, 100}, quickOpts)
	buf.Reset()
	FormatFig5(&buf, []*MixedResult{r5})
	if !strings.Contains(buf.String(), "write ratio") {
		t.Errorf("Fig5 output malformed:\n%s", buf.String())
	}
}

func TestFormatFig3(t *testing.T) {
	res := RunSustainedWrite(ssdFactory, 0.2, quickOpts)
	var buf bytes.Buffer
	FormatFig3(&buf, []*SustainedResult{res})
	if !strings.Contains(buf.String(), "Figure 3") ||
		!strings.Contains(buf.String(), "timeline") {
		t.Errorf("Fig3 output malformed:\n%s", buf.String())
	}
}

func TestFormatWorkloadResult(t *testing.T) {
	d := essd1Factory(3)
	Precondition(d, false)
	res := workload.Run(d, workload.Spec{
		Pattern: workload.Mixed, WriteRatio: 0.5, BlockSize: 8 << 10,
		QueueDepth: 4, MaxOps: 200, Seed: 9,
	})
	var buf bytes.Buffer
	FormatWorkloadResult(&buf, res)
	out := buf.String()
	for _, want := range []string{"throughput", "iops", "read ", "write "} {
		if !strings.Contains(out, want) {
			t.Errorf("workload summary missing %q:\n%s", want, out)
		}
	}
}

func TestMetricString(t *testing.T) {
	if MetricAvg.String() == MetricP999.String() {
		t.Fatal("metric names collide")
	}
}

func TestSizeLabel(t *testing.T) {
	if sizeLabel(4<<10) != "4K" || sizeLabel(2<<20) != "2M" {
		t.Fatal("size labels wrong")
	}
}

func TestCompactDur(t *testing.T) {
	cases := map[sim.Duration]string{
		333 * sim.Microsecond:  "333u",
		1400 * sim.Microsecond: "1.4m",
		12 * sim.Millisecond:   "12m",
	}
	for in, want := range cases {
		if got := compactDur(in); got != want {
			t.Errorf("compactDur(%v) = %q, want %q", in, got, want)
		}
	}
}
