package kv

import (
	"fmt"

	"essdsim"
)

// PageStoreConfig parameterizes the update-in-place engine.
type PageStoreConfig struct {
	// PageBytes is the on-device page size (typically the block size).
	PageBytes int64
	// CachePages is the in-memory page cache capacity: puts that hit the
	// cache skip the read-before-write.
	CachePages int
	// Seed drives page placement.
	Seed uint64
}

// DefaultPageStoreConfig returns a B-tree-like configuration: 4 KiB pages
// with a cache covering 1/32 of the device's pages.
func DefaultPageStoreConfig(dev essdsim.Device) PageStoreConfig {
	return PageStoreConfig{
		PageBytes:  int64(dev.BlockSize()),
		CachePages: int(dev.Capacity() / int64(dev.BlockSize()) / 32),
		Seed:       1,
	}
}

// PageStore is the update-in-place design: every put reads (on a cache
// miss) and rewrites its key's page at a fixed random device location —
// the 4 KiB random-write pattern that local-SSD lore says to avoid and
// that Observation #3 rehabilitates on ESSDs.
type PageStore struct {
	dev   essdsim.Device
	cfg   PageStoreConfig
	pages int64

	cache      map[int64]struct{}
	cacheOrder []int64

	inflight int
	barriers []func()
	stats    Stats
}

// NewPageStore builds the engine over the device. It panics on invalid
// configuration (programming error).
func NewPageStore(dev essdsim.Device, cfg PageStoreConfig) *PageStore {
	bs := int64(dev.BlockSize())
	if cfg.PageBytes < bs || cfg.PageBytes%bs != 0 {
		panic(fmt.Sprintf("kv: bad page size %d", cfg.PageBytes))
	}
	if cfg.CachePages < 0 {
		panic("kv: negative cache")
	}
	return &PageStore{
		dev:   dev,
		cfg:   cfg,
		pages: dev.Capacity() / cfg.PageBytes,
		cache: make(map[int64]struct{}),
	}
}

// Name implements Engine.
func (p *PageStore) Name() string { return "pagestore" }

// Stats implements Engine.
func (p *PageStore) Stats() Stats { return p.stats }

// pageOf maps a key to its page via a multiplicative hash.
func (p *PageStore) pageOf(key uint64) int64 {
	h := (key ^ p.cfg.Seed) * 0x9e3779b97f4a7c15
	h ^= h >> 32
	return int64(h % uint64(p.pages))
}

func (p *PageStore) cacheTouch(page int64) (hit bool) {
	if _, ok := p.cache[page]; ok {
		return true
	}
	if p.cfg.CachePages == 0 {
		return false
	}
	for len(p.cacheOrder) >= p.cfg.CachePages {
		victim := p.cacheOrder[0]
		p.cacheOrder = p.cacheOrder[1:]
		delete(p.cache, victim)
	}
	p.cache[page] = struct{}{}
	p.cacheOrder = append(p.cacheOrder, page)
	return false
}

// Put implements Engine: read-modify-write of the key's page, ack on the
// page write's completion (update-in-place durability).
func (p *PageStore) Put(key uint64, valueSize int64, done func()) {
	if valueSize <= 0 {
		panic("kv: value size must be positive")
	}
	if valueSize > p.cfg.PageBytes {
		panic("kv: value larger than a page; split keys upstream")
	}
	p.stats.Puts++
	p.stats.UserBytes += valueSize
	page := p.pageOf(key)
	off := page * p.cfg.PageBytes
	write := func() {
		p.stats.DeviceWrites++
		p.stats.DeviceWriteBytes += p.cfg.PageBytes
		p.inflight++
		p.dev.Submit(&essdsim.Request{
			Op: essdsim.OpWrite, Offset: off, Size: p.cfg.PageBytes,
			OnComplete: func(r *essdsim.Request, at essdsim.Time) {
				p.inflight--
				done()
				p.checkBarriers()
			},
		})
	}
	if p.cacheTouch(page) {
		write()
		return
	}
	// Cache miss: fetch the page before modifying it.
	p.stats.DeviceReads++
	p.stats.DeviceReadBytes += p.cfg.PageBytes
	p.inflight++
	p.dev.Submit(&essdsim.Request{
		Op: essdsim.OpRead, Offset: off, Size: p.cfg.PageBytes,
		OnComplete: func(r *essdsim.Request, at essdsim.Time) {
			p.inflight--
			write()
		},
	})
}

// Barrier implements Engine.
func (p *PageStore) Barrier(done func()) {
	if p.inflight == 0 {
		done()
		return
	}
	p.barriers = append(p.barriers, done)
}

func (p *PageStore) checkBarriers() {
	if p.inflight != 0 {
		return
	}
	bs := p.barriers
	p.barriers = nil
	for _, b := range bs {
		b()
	}
}

var _ Engine = (*PageStore)(nil)
