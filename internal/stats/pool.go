package stats

import "sync"

// histPool recycles histograms for bounded-lifetime measurement: a histogram
// carries an 8 KiB bucket array, so scratch aggregations (per-window scans,
// per-cell probes) that would otherwise allocate one per use can instead
// borrow from the pool. Histograms retained in results must NOT be pooled —
// results outlive their cell and may be served from a sweep cache.
var histPool = sync.Pool{New: func() any { return NewHistogram() }}

// AcquireHistogram returns an empty histogram, reusing pooled bucket storage
// when available. Reset is the reuse hook: an acquired histogram is
// indistinguishable from a NewHistogram one.
func AcquireHistogram() *Histogram {
	h := histPool.Get().(*Histogram)
	h.Reset()
	return h
}

// ReleaseHistogram returns h to the pool. The caller must not use h (or any
// result referencing it) afterwards. Releasing nil is a no-op.
func ReleaseHistogram(h *Histogram) {
	if h == nil {
		return
	}
	histPool.Put(h)
}
