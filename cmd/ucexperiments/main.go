// Command ucexperiments regenerates the paper's evaluation artifacts
// (Table I and Figures 2-5) on the simulated devices and prints them in the
// paper's layout, plus the burst-credit scenario suite, the latency-SLO
// search behind Observation #4 on the burstable tiers, the noisy-neighbor
// suite measuring cross-tenant interference on a shared backend, the QoS
// isolation comparison running that suite under every scheduling policy
// (fifo, wfq, reservation) on identical arrival streams, and the fleet
// tenant-packing study comparing placement policies over many shared
// backends. -isolation selects one backend scheduling policy for the
// neighbor and fleet suites; -exp isolation sweeps them all. Optionally
// dumps raw CSV series for plotting (docs/formats.md describes the
// schemas).
//
// The neighbor suite's aggressors are synthetic by default; with
// -aggr-trace FILE (and -aggr-trace-format msr for MSR-Cambridge CSV) the
// aggressor rate, write ratio, and block size are instead fitted from a
// real trace (trace.Fit + trace.ProfileOf onto the neighbor volume
// geometry).
//
// The fleet study (-exp fleet) packs -fleet-tenants synthetic tenants
// (-fleet-aggressors of them bursty write floods) onto -fleet-backends
// shared backends under each -fleet-policy, and reports per-policy SLO
// violations, utilization, and worst-victim inflation vs a solo control.
//
// The KV study (-exp kv) runs fleet-style key-value tenants — each an LSM
// or page-store engine (-kv-engines) on its own elastic volume of a
// shared backend — under open-loop zipfian point reads and writes,
// sweeping engine design × key skew (-kv-skews) × value size
// (-kv-value-sizes) × backend tier (-kv-tiers). The report shows each
// design's foreground op tail next to its read/write amplification,
// cache hit rate, stalls, and the shared-debt coupling its background
// work (flushes, compactions, page-miss reads) induces.
//
// The churn study (-exp churn) runs the same catalog through the fleet
// control plane: -churn-epochs control epochs of seeded lifecycle events
// at -churn-rate events per epoch (create, delete, expand, shrink,
// snapshot-as-write-burst), online placement via the first -fleet-policy,
// and the -rebalance policy (never, threshold, or drain) migrating
// volumes between epochs. The report is a per-epoch time series of SLO
// violations, utilization, stranded capacity, and migration cost.
//
// Experiment cells run concurrently on an internal/expgrid worker pool
// (-workers, default GOMAXPROCS); results are deterministic and identical
// to a serial run regardless of worker count. With -cache FILE, burst,
// SLO, neighbor, fleet, and KV cells are memoized in a persistent sweep cache:
// a repeat run loads the file, executes zero new cells, and prints how
// many cells each suite skipped, reproducing the same measurements and
// byte-identical -out CSV dumps.
//
// Examples:
//
//	ucexperiments -exp table1
//	ucexperiments -exp fig2 -quick
//	ucexperiments -exp burst -quick
//	ucexperiments -exp neighbor -quick -out results/
//	ucexperiments -exp neighbor -isolation wfq -victim-weight 2
//	ucexperiments -exp isolation -quick -out results/
//	ucexperiments -exp fleet -isolation reservation
//	ucexperiments -exp neighbor -aggr-trace msr-rows.csv -aggr-trace-format msr
//	ucexperiments -exp fleet -quick -cache sweepcache.json
//	ucexperiments -exp fleet -fleet-tenants 16 -fleet-backends 4 -fleet-policy spread,interference
//	ucexperiments -exp churn -quick -cache sweepcache.json
//	ucexperiments -exp churn -churn-rate 3 -rebalance drain -out results/
//	ucexperiments -exp kv -quick -cache sweepcache.json
//	ucexperiments -exp kv -kv-engines lsm -kv-skews 0,0.5,0.99 -kv-tiers essd1,essd2 -out results/
//	ucexperiments -exp slo -slo-p99 20ms -out results/
//	ucexperiments -exp slo -quick -cache sweepcache.json
//	ucexperiments -exp all -out results/ -workers 8
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"essdsim/internal/blockdev"
	"essdsim/internal/churn"
	"essdsim/internal/expgrid"
	"essdsim/internal/fleet"
	"essdsim/internal/harness"
	"essdsim/internal/obs"
	"essdsim/internal/profiles"
	"essdsim/internal/profiling"
	"essdsim/internal/qos"
	"essdsim/internal/scenario"
	"essdsim/internal/sim"
	"essdsim/internal/slo"
	"essdsim/internal/trace"
	"essdsim/internal/workload"
)

// fatal prints the diagnostic to stderr and exits non-zero — every
// user-facing error path goes through it rather than a raw panic.
func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ucexperiments: %v\n", err)
	os.Exit(1)
}

func factory(name string, seed uint64) harness.Factory {
	return func(s uint64) blockdev.Device {
		d, err := profiles.ByName(name, sim.NewEngine(), sim.NewRNG(seed^s, s+0x9))
		if err != nil {
			panic(err)
		}
		return d
	}
}

func main() {
	var (
		exp         = flag.String("exp", "all", "table1, fig2, fig3, fig4, fig5, burst, slo, neighbor, isolation, fleet, churn, kv, or all")
		quick       = flag.Bool("quick", false, "reduced grids for a fast pass")
		seed        = flag.Uint64("seed", 7, "deterministic seed")
		out         = flag.String("out", "", "directory for raw CSV dumps (optional)")
		workers     = flag.Int("workers", 0, "parallel experiment cells (0 = GOMAXPROCS)")
		cacheFile   = flag.String("cache", "", "sweep-cache JSON file for burst/slo/neighbor/fleet/kv cells (loaded if present, saved on exit)")
		sloP99      = flag.Duration("slo-p99", 20*time.Millisecond, "p99 target of the -exp slo search")
		aggrArrival = flag.String("aggr-arrival", "bursty", "-exp neighbor aggressor arrival shape: bursty or poisson")
		aggrTrace   = flag.String("aggr-trace", "", "-exp neighbor: fit aggressor rate/write-ratio/size from this trace file")
		aggrTraceF  = flag.String("aggr-trace-format", "text", "trace file format for -aggr-trace: text or msr")
		fleetTen    = flag.Int("fleet-tenants", 12, "-exp fleet tenant catalog size")
		fleetAggr   = flag.Int("fleet-aggressors", 3, "-exp fleet bursty write-flood tenants within the catalog")
		fleetBack   = flag.Int("fleet-backends", 0, "-exp fleet packing density: backends available to every policy (0 = fit nominal load)")
		fleetPolicy = flag.String("fleet-policy", "all", "-exp fleet policies: all or a comma list of first-fit, spread, best-fit, interference")
		fleetP999   = flag.Duration("fleet-slo-p999", 5*time.Millisecond, "-exp fleet p99.9 target the violation columns count against")
		fleetScreen = flag.Bool("screen", false, "-exp fleet: two-fidelity mode — score placements analytically, simulate only the Pareto frontier")
		fleetCands  = flag.Int("screen-candidates", 1024, "-exp fleet -screen analytic candidate budget")
		churnRate   = flag.Float64("churn-rate", 1.5, "-exp churn mean lifecycle events per epoch (0 = static fleet)")
		churnEpochs = flag.Int("churn-epochs", 6, "-exp churn control epochs")
		rebalance   = flag.String("rebalance", "threshold", "-exp churn rebalancing policy: never, threshold, or drain")
		isolation   = flag.String("isolation", "fifo", "-exp neighbor/fleet backend QoS policy: fifo, wfq, or reservation")
		victimWt    = flag.Float64("victim-weight", 0, "-exp neighbor victim scheduling weight under wfq/reservation (0 = default 1)")
		victimResv  = flag.Float64("victim-reserved-bps", 0, "-exp neighbor victim reserved bytes/s under -isolation reservation (0 = 2x victim offered)")
		kvEngines   = flag.String("kv-engines", "lsm,pagestore", "-exp kv storage-engine designs (comma list of lsm, pagestore)")
		kvSkews     = flag.String("kv-skews", "0,0.99", "-exp kv zipfian key skews in [0,1) (comma list)")
		kvValSizes  = flag.String("kv-value-sizes", "1024", "-exp kv put value sizes in bytes (comma list)")
		kvTiers     = flag.String("kv-tiers", "essd1", "-exp kv backend tier profiles (comma list of essd1, essd2, gp3, gp2, gp2s, pl1)")
		kvTenants   = flag.Int("kv-tenants", 3, "-exp kv tenants sharing each cell's backend")
		kvRate      = flag.Float64("kv-rate", 4000, "-exp kv per-tenant offered op rate")
		kvReadFrac  = flag.Int("kv-read-frac", 50, "-exp kv percentage of ops that are point reads (-1 = pure ingest)")
		cpuProfile  = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile  = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
		traceOut    = flag.String("trace-out", "", "-exp neighbor: write sampled request traces to this file (.json = Chrome trace events, else CSV)")
		traceSample = flag.Int("trace-sample", 64, "trace every Nth request per volume when tracing is on")
		probeOut    = flag.String("probe-out", "", "-exp neighbor: write state-probe series to this file (.json or CSV); requires -probe-interval")
		probeIvl    = flag.Duration("probe-interval", 0, "simulated-time cadence of state probes (e.g. 10ms)")
		explain     = flag.Bool("explain", false, "-exp neighbor: print the per-cell cliff-attribution report")
		verbose     = flag.Bool("v", false, "print per-cell sweep progress (elapsed/ETA, cached counts) to stderr")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "ucexperiments: unexpected argument %q\n", flag.Arg(0))
		os.Exit(1)
	}
	obsWanted := *traceOut != "" || *probeOut != "" || *explain
	if *traceSample < 1 {
		fatal(fmt.Errorf("-trace-sample wants a positive count, got %d", *traceSample))
	}
	if *probeOut != "" && *probeIvl <= 0 {
		fatal(fmt.Errorf("-probe-out requires a positive -probe-interval, got %s", *probeIvl))
	}
	if obsWanted && !(*exp == "all" || *exp == "neighbor") {
		fatal(fmt.Errorf("-trace-out/-probe-out/-explain apply to -exp neighbor, not -exp %s", *exp))
	}

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	defer stopProfiles()

	isoPolicy, err := qos.ParseIsolationPolicy(*isolation)
	if err != nil {
		fatal(err)
	}
	iso := qos.Isolation{Policy: isoPolicy}

	var cache *expgrid.Cache
	if *cacheFile != "" {
		cache = expgrid.NewCache(0)
		if err := cache.LoadFile(*cacheFile); err != nil {
			fatal(err)
		}
	}

	// progress returns the -v per-cell progress callback for one suite
	// (nil when -v is off): "neighbor: 12/40 cells (3 cached) elapsed 1.2s
	// eta 2.8s" on stderr, so stdout stays machine-comparable.
	progress := func(suite string) func(expgrid.Progress) {
		if !*verbose {
			return nil
		}
		return func(p expgrid.Progress) {
			fmt.Fprintf(os.Stderr, "%s: %s\n", suite, p)
		}
	}

	opts := harness.Options{Seed: *seed, Workers: *workers}
	if *quick {
		opts.CellDuration = 150 * sim.Millisecond
		opts.Warmup = 30 * sim.Millisecond
	}
	essd1 := factory("essd1", *seed)
	essd2 := factory("essd2", *seed)
	ssd := factory("ssd", *seed)

	want := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false

	if want("table1") {
		ran = true
		harness.FormatTableI(os.Stdout, profiles.TableI())
		fmt.Println()
	}
	if want("fig2") {
		ran = true
		sizes, qds := harness.Fig2Sizes, harness.Fig2QDs
		if *quick {
			sizes, qds = []int64{4 << 10, 64 << 10, 256 << 10}, []int{1, 4, 16}
		}
		ssdGrid := harness.RunLatencyGridWith(ssd, harness.Fig2Patterns, sizes, qds, opts)
		for i, f := range []harness.Factory{essd1, essd2} {
			grid := harness.RunLatencyGridWith(f, harness.Fig2Patterns, sizes, qds, opts)
			fmt.Printf("--- Figure 2%s/%s ---\n", string(rune('a'+2*i)), string(rune('b'+2*i)))
			harness.FormatFig2(os.Stdout, grid, ssdGrid, harness.MetricAvg)
			fmt.Println()
			harness.FormatFig2(os.Stdout, grid, ssdGrid, harness.MetricP999)
			fmt.Println()
			if *out != "" {
				dumpGridCSV(*out, fmt.Sprintf("fig2_essd%d.csv", i+1), grid, ssdGrid)
			}
		}
	}
	if want("fig3") {
		ran = true
		mult := 3.0
		if *quick {
			mult = 1.5
		}
		results := harness.RunSustainedWrites([]expgrid.NamedFactory{
			{Name: "essd1", New: essd1},
			{Name: "essd2", New: essd2},
			{Name: "ssd", New: ssd},
		}, mult, opts)
		harness.FormatFig3(os.Stdout, results)
		fmt.Println()
		if *out != "" {
			dumpFig3CSV(*out, results)
		}
	}
	if want("fig4") {
		ran = true
		sizes, qds := harness.Fig4Sizes, harness.Fig4QDs
		if *quick {
			sizes, qds = []int64{4 << 10, 32 << 10, 256 << 10}, []int{1, 8, 32}
		}
		var results []*harness.RandSeqResult
		for _, f := range []harness.Factory{essd1, essd2, ssd} {
			results = append(results, harness.RunRandSeqSweepWith(f, sizes, qds, opts))
		}
		harness.FormatFig4(os.Stdout, results)
		fmt.Println()
		if *out != "" {
			dumpFig4CSV(*out, results)
		}
	}
	if want("fig5") {
		ran = true
		ratios := harness.Fig5Ratios
		if *quick {
			ratios = []int{0, 30, 50, 70, 100}
		}
		var results []*harness.MixedResult
		for _, f := range []harness.Factory{essd1, essd2, ssd} {
			results = append(results, harness.RunMixedSweepWith(f, ratios, opts))
		}
		harness.FormatFig5(os.Stdout, results)
		if *out != "" {
			dumpFig5CSV(*out, results)
		}
	}
	if want("burst") {
		ran = true
		sweep := scenario.BurstSweep{
			Devices: []expgrid.NamedFactory{
				{Name: "gp2", New: factory("gp2", *seed)},
				{Name: "gp2s", New: factory("gp2s", *seed)},
			},
			Cache:      cache,
			Seed:       *seed,
			Workers:    *workers,
			OnProgress: progress("burst"),
		}
		if *quick {
			sweep.WriteRatiosPct = []int{0, 50, 100}
			sweep.RatesPerSec = []float64{3000}
			sweep.Ops = 3000
		}
		rep, err := scenario.RunBurst(context.Background(), sweep)
		if err != nil {
			fatal(err)
		}
		fmt.Println("--- Burst-credit scenario (Observation #4, burstable tiers) ---")
		scenario.FormatBurst(os.Stdout, rep)
		if cache != nil {
			fmt.Printf("burst: %d of %d cells skipped (cache-warm)\n", rep.CachedCells, len(rep.Cells))
		}
		fmt.Println()
		if *out != "" {
			dumpBurstCSV(*out, rep)
		}
	}
	if want("neighbor") {
		ran = true
		arr, err := workload.ParseArrival(*aggrArrival)
		if err != nil || arr == workload.Uniform {
			fmt.Fprintf(os.Stderr, "ucexperiments: -aggr-arrival wants bursty or poisson, got %q\n", *aggrArrival)
			os.Exit(1)
		}
		sweep := scenario.NeighborSweep{
			AggressorArrival:   arr,
			Cache:              cache,
			Seed:               *seed,
			Workers:            *workers,
			Isolation:          iso,
			VictimWeight:       *victimWt,
			VictimReservedRate: *victimResv,
			OnProgress:         progress("neighbor"),
		}
		if obsWanted {
			sweep.Obs = &obs.Config{
				SampleEvery:   *traceSample,
				ProbeInterval: sim.Duration(probeIvl.Nanoseconds()),
			}
		}
		if *quick {
			sweep.AggressorCounts = []int{0, 2, 4}
			sweep.AggressorRatesPerSec = []float64{1600}
			sweep.VictimOps = 1200
		}
		if *aggrTrace != "" {
			// Real-trace aggressors: fit the records onto the neighbor
			// volume geometry and drive the aggressor axis from the
			// fitted demand instead of the synthetic defaults.
			recs, err := readTraceFile(*aggrTrace, *aggrTraceF)
			if err != nil {
				fatal(err)
			}
			vcfg := profiles.NeighborVolumeConfig("aggr")
			d, err := fleet.DemandFromTrace("aggr", recs, vcfg.Capacity, vcfg.BlockSize)
			if err != nil {
				fatal(fmt.Errorf("-aggr-trace %s: %w", *aggrTrace, err))
			}
			sweep.AggressorRatesPerSec = []float64{d.RatePerSec}
			sweep.AggressorWriteRatiosPct = []int{d.WriteRatioPct}
			sweep.AggressorBlockSize = d.BlockSize
			fmt.Printf("neighbor aggressors fitted from %s: %.0f req/s, %d%% writes, %d-byte requests (%d records)\n",
				*aggrTrace, d.RatePerSec, d.WriteRatioPct, d.BlockSize, len(recs))
		}
		rep, err := scenario.RunNeighbor(context.Background(), sweep)
		if err != nil {
			fatal(err)
		}
		fmt.Println("--- Noisy-neighbor scenario (shared backend, cross-tenant contract) ---")
		scenario.FormatNeighbor(os.Stdout, rep)
		if cache != nil {
			fmt.Printf("neighbor: %d of %d cells skipped (cache-warm)\n", rep.CachedCells, len(rep.Cells))
		}
		if *explain {
			obs.FormatExplanations(os.Stdout, rep.Explanations)
		}
		if *traceOut != "" {
			if err := writeTraceFile(*traceOut, rep.Captures); err != nil {
				fatal(err)
			}
		}
		if *probeOut != "" {
			if err := writeProbeFile(*probeOut, rep.Captures); err != nil {
				fatal(err)
			}
		}
		fmt.Println()
		if *out != "" {
			dumpNeighborCSV(*out, rep)
		}
	}
	if want("isolation") {
		ran = true
		cmp := scenario.IsolationComparison{Sweep: scenario.NeighborSweep{
			Cache:              cache,
			Seed:               *seed,
			Workers:            *workers,
			VictimWeight:       *victimWt,
			VictimReservedRate: *victimResv,
			OnProgress:         progress("isolation"),
		}}
		if *quick {
			cmp.Sweep.AggressorCounts = []int{0, 2, 4}
			cmp.Sweep.AggressorRatesPerSec = []float64{1600}
			cmp.Sweep.VictimOps = 1200
		}
		rep, err := scenario.RunIsolationComparison(context.Background(), cmp)
		if err != nil {
			fatal(err)
		}
		fmt.Println("--- QoS isolation comparison (per-tenant scheduling on the shared backend) ---")
		scenario.FormatIsolation(os.Stdout, rep)
		if cache != nil {
			cells := 0
			for _, v := range rep.Variants {
				cells += len(v.Report.Cells)
			}
			fmt.Printf("isolation: %d of %d cells skipped (cache-warm)\n", rep.CachedCells, cells)
		}
		fmt.Println()
		if *out != "" {
			dumpIsolationCSV(*out, rep)
		}
	}
	if want("fleet") {
		ran = true
		tenants, aggressors := *fleetTen, *fleetAggr
		if *quick {
			tenants, aggressors = 8, 2
		}
		policies, err := parseFleetPolicies(*fleetPolicy)
		if err != nil {
			fatal(err)
		}
		spec := fleet.Spec{
			Demands:  fleet.SyntheticDemands(tenants, aggressors),
			Policies: policies,
			Backends: *fleetBack,
			SLOP999:  sim.Duration(fleetP999.Nanoseconds()),
			Cache:    cache,
			Seed:     *seed,
			Workers:  *workers,
		}
		spec.Backend.Isolation = iso
		if *fleetScreen {
			srep, err := fleet.Screen(context.Background(), fleet.ScreenSpec{
				Spec:       spec,
				Candidates: *fleetCands,
			})
			if err != nil {
				fatal(err)
			}
			fmt.Println("--- Fleet tenant packing (two-fidelity analytic screen) ---")
			fleet.FormatScreen(os.Stdout, srep)
			fmt.Println()
			if *out != "" && srep.Simulated != nil {
				dumpFleetCSV(*out, srep.Simulated)
			}
		} else {
			rep, err := fleet.Run(context.Background(), spec)
			if err != nil {
				fatal(err)
			}
			fmt.Println("--- Fleet tenant packing (placement policies over shared backends) ---")
			fleet.Format(os.Stdout, rep)
			if cache != nil {
				fmt.Printf("fleet: %d of %d cells skipped (cache-warm)\n", rep.CachedCells, rep.Cells)
			}
			fmt.Println()
			if *out != "" {
				dumpFleetCSV(*out, rep)
			}
		}
	}
	if want("churn") {
		ran = true
		tenants, aggressors := *fleetTen, *fleetAggr
		epochs := *churnEpochs
		if *quick {
			tenants, aggressors = 6, 1
			if epochs > 4 {
				epochs = 4
			}
		}
		policies, err := parseFleetPolicies(*fleetPolicy)
		if err != nil {
			fatal(err)
		}
		rb, err := churn.RebalancerByName(*rebalance)
		if err != nil {
			fatal(err)
		}
		spec := churn.Spec{
			Fleet: fleet.Spec{
				Demands:  fleet.SyntheticDemands(tenants, aggressors),
				Policies: policies,
				Backends: *fleetBack,
				SLOP999:  sim.Duration(fleetP999.Nanoseconds()),
				Cache:    cache,
				Seed:     *seed,
				Workers:  *workers,
			},
			Epochs:     epochs,
			ChurnRate:  *churnRate,
			Rebalancer: rb,
		}
		spec.Fleet.Backend.Isolation = iso
		if *quick {
			spec.Fleet.Horizon = 500 * sim.Millisecond
		}
		rep, err := churn.Run(context.Background(), spec)
		if err != nil {
			fatal(err)
		}
		fmt.Println("--- Fleet churn (lifecycle events, online placement, rebalancing) ---")
		churn.Format(os.Stdout, rep)
		if cache != nil {
			fmt.Printf("churn: %d of %d cells skipped (cache-warm)\n", rep.CachedCells, rep.Cells)
		}
		fmt.Println()
		if *out != "" {
			dumpChurnCSV(*out, rep)
		}
	}
	if want("kv") {
		ran = true
		engines, err := splitList(*kvEngines)
		if err != nil {
			fatal(fmt.Errorf("-kv-engines: %w", err))
		}
		skews, err := parseFloatList(*kvSkews)
		if err != nil {
			fatal(fmt.Errorf("-kv-skews: %w", err))
		}
		valSizes, err := parseInt64List(*kvValSizes)
		if err != nil {
			fatal(fmt.Errorf("-kv-value-sizes: %w", err))
		}
		tiers, err := splitList(*kvTiers)
		if err != nil {
			fatal(fmt.Errorf("-kv-tiers: %w", err))
		}
		sweep := scenario.KVMixSweep{
			Engines:     engines,
			Skews:       skews,
			ValueSizes:  valSizes,
			Tiers:       tiers,
			Tenants:     *kvTenants,
			RatePerSec:  *kvRate,
			ReadFracPct: *kvReadFrac,
			Cache:       cache,
			Seed:        *seed,
			Workers:     *workers,
			OnProgress:  progress("kv"),
		}
		if *quick {
			sweep.Tenants = 2
			sweep.OpsPerTenant = 600
		}
		rep, err := scenario.RunKVMix(context.Background(), sweep)
		if err != nil {
			fatal(err)
		}
		fmt.Println("--- KV tenant mix (storage engines on shared elastic volumes) ---")
		scenario.FormatKVMix(os.Stdout, rep)
		if cache != nil {
			fmt.Printf("kv: %d of %d cells skipped (cache-warm)\n", rep.CachedCells, len(rep.Cells))
		}
		fmt.Println()
		if *out != "" {
			dumpKVCSV(*out, rep)
		}
	}
	if want("slo") {
		ran = true
		fmt.Println("--- Latency-SLO search (highest rate meeting the target) ---")
		for _, name := range []string{"gp2", "gp2s"} {
			search := slo.Search{
				Device:  expgrid.NamedFactory{Name: name, New: factory(name, *seed)},
				Pattern: workload.RandWrite,
				Target:  slo.Target{P99: sim.Duration(sloP99.Nanoseconds())},
				Cache:   cache,
				Seed:    *seed,
			}
			if *quick {
				search.MaxRate = 3000
				search.Tolerance = 100
				search.Horizon = 3 * sim.Second
			}
			rep, err := slo.Run(context.Background(), search)
			if err != nil {
				fatal(err)
			}
			slo.Format(os.Stdout, rep)
			fmt.Println()
			if *out != "" {
				dumpSLOCSV(*out, name, rep)
			}
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "ucexperiments: unknown -exp %q\n", *exp)
		os.Exit(1)
	}
	if cache != nil {
		if err := cache.SaveFile(*cacheFile); err != nil {
			fatal(err)
		}
		hits, misses := cache.Stats()
		fmt.Printf("sweep cache: %d entries, %d hits, %d cells simulated (%s)\n",
			cache.Len(), hits, misses, *cacheFile)
	}
}

// writeTraceFile dumps the captures' sampled request spans to path:
// Chrome trace-event JSON (Perfetto-loadable) when the path ends in
// .json, the docs/formats.md trace CSV otherwise.
func writeTraceFile(path string, caps []*obs.Capture) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = obs.WriteTraceEvents(f, caps)
	} else {
		err = obs.WriteTraceCSV(f, caps)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeProbeFile dumps the captures' state-probe series to path: JSON
// when the path ends in .json, the docs/formats.md probe CSV otherwise.
func writeProbeFile(path string, caps []*obs.Capture) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = obs.WriteProbesJSON(f, caps)
	} else {
		err = obs.WriteProbesCSV(f, caps)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// readTraceFile reads a trace file in the named format.
func readTraceFile(file, format string) ([]trace.Record, error) {
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.ReadFormat(f, format)
}

// splitList parses a comma-separated flag into trimmed non-empty items.
func splitList(s string) ([]string, error) {
	var out []string
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		out = append(out, item)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

// parseFloatList parses a comma-separated flag of floats.
func parseFloatList(s string) ([]float64, error) {
	items, err := splitList(s)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(items))
	for i, item := range items {
		v, err := strconv.ParseFloat(item, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", item)
		}
		out[i] = v
	}
	return out, nil
}

// parseInt64List parses a comma-separated flag of integers.
func parseInt64List(s string) ([]int64, error) {
	items, err := splitList(s)
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(items))
	for i, item := range items {
		v, err := strconv.ParseInt(item, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", item)
		}
		out[i] = v
	}
	return out, nil
}

// dumpKVCSV writes the KV tenant-mix per-cell table under dir.
func dumpKVCSV(dir string, rep *scenario.KVMixReport) {
	f := csvFile(dir, "kv_cells.csv")
	defer f.Close()
	if err := scenario.WriteKVCSV(f, rep); err != nil {
		panic(err)
	}
}

// parseFleetPolicies maps the -fleet-policy flag to placement policies.
func parseFleetPolicies(s string) ([]fleet.PlacementPolicy, error) {
	if s == "all" || s == "" {
		return fleet.DefaultPolicies(), nil
	}
	var out []fleet.PlacementPolicy
	for _, name := range strings.Split(s, ",") {
		p, err := fleet.PolicyByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// dumpChurnCSV writes the churn study's epoch time series and event
// audit trail under dir.
func dumpChurnCSV(dir string, rep *churn.Report) {
	f := csvFile(dir, "fleet_churn_epochs.csv")
	if err := churn.WriteEpochsCSV(f, rep); err != nil {
		panic(err)
	}
	f.Close()
	f = csvFile(dir, "fleet_churn_events.csv")
	defer f.Close()
	if err := churn.WriteEventsCSV(f, rep); err != nil {
		panic(err)
	}
}

func csvFile(dir, name string) *os.File {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		panic(err)
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		panic(err)
	}
	return f
}

func dumpGridCSV(dir, name string, essd, ssd *harness.LatencyGrid) {
	f := csvFile(dir, name)
	defer f.Close()
	if err := harness.WriteFig2CSV(f, essd, ssd); err != nil {
		panic(err)
	}
}

func dumpFig3CSV(dir string, results []*harness.SustainedResult) {
	f := csvFile(dir, "fig3.csv")
	defer f.Close()
	if err := harness.WriteFig3CSV(f, results); err != nil {
		panic(err)
	}
}

func dumpFig4CSV(dir string, results []*harness.RandSeqResult) {
	f := csvFile(dir, "fig4.csv")
	defer f.Close()
	if err := harness.WriteFig4CSV(f, results); err != nil {
		panic(err)
	}
}

func dumpFig5CSV(dir string, results []*harness.MixedResult) {
	f := csvFile(dir, "fig5.csv")
	defer f.Close()
	if err := harness.WriteFig5CSV(f, results); err != nil {
		panic(err)
	}
}

func dumpBurstCSV(dir string, rep *scenario.BurstReport) {
	f := csvFile(dir, "burst_cells.csv")
	if err := scenario.WriteBurstCSV(f, rep); err != nil {
		panic(err)
	}
	f.Close()
	f = csvFile(dir, "burst_timeline.csv")
	defer f.Close()
	if err := scenario.WriteBurstTimelineCSV(f, rep); err != nil {
		panic(err)
	}
}

func dumpNeighborCSV(dir string, rep *scenario.NeighborReport) {
	f := csvFile(dir, "neighbor_cells.csv")
	defer f.Close()
	if err := scenario.WriteNeighborCSV(f, rep); err != nil {
		panic(err)
	}
}

func dumpIsolationCSV(dir string, rep *scenario.IsolationReport) {
	f := csvFile(dir, "isolation_comparison.csv")
	defer f.Close()
	if err := scenario.WriteIsolationCSV(f, rep); err != nil {
		panic(err)
	}
}

func dumpFleetCSV(dir string, rep *fleet.Report) {
	f := csvFile(dir, "fleet_backends.csv")
	if err := fleet.WriteBackendsCSV(f, rep); err != nil {
		panic(err)
	}
	f.Close()
	f = csvFile(dir, "fleet_tenants.csv")
	defer f.Close()
	if err := fleet.WriteTenantsCSV(f, rep); err != nil {
		panic(err)
	}
}

func dumpSLOCSV(dir, device string, rep *slo.Report) {
	f := csvFile(dir, fmt.Sprintf("slo_probes_%s.csv", device))
	defer f.Close()
	if err := slo.WriteProbesCSV(f, rep); err != nil {
		panic(err)
	}
}
