package stats

import (
	"encoding/json"
	"fmt"

	"essdsim/internal/sim"
)

// JSON round-tripping for the measurement types. Persisted sweep caches
// (expgrid.Cache) store whole workload results, so every field that feeds a
// summary, percentile, or timeline must survive a marshal/unmarshal cycle
// exactly: counts are integers, and float64 values round-trip bit-exact
// through encoding/json's shortest-representation encoding.

// histogramJSON is the wire form of a Histogram. Counts are stored sparsely
// as [bucket, count] pairs in ascending bucket order, since most of the
// 2048 log-linear buckets of a typical latency distribution are empty.
type histogramJSON struct {
	Counts [][2]int64 `json:"counts,omitempty"`
	Count  uint64     `json:"count"`
	Sum    float64    `json:"sum"`
	Min    int64      `json:"min"`
	Max    int64      `json:"max"`
}

// MarshalJSON encodes the histogram with sparse bucket counts.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	out := histogramJSON{
		Count: h.count,
		Sum:   h.sum,
		Min:   int64(h.min),
		Max:   int64(h.max),
	}
	for i, c := range h.counts {
		if c != 0 {
			out.Counts = append(out.Counts, [2]int64{int64(i), int64(c)})
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes a histogram previously encoded by MarshalJSON.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var in histogramJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	*h = Histogram{
		counts: make([]uint32, histogramSlots),
		count:  in.Count,
		sum:    in.Sum,
		min:    sim.Duration(in.Min),
		max:    sim.Duration(in.Max),
	}
	for _, pair := range in.Counts {
		idx, c := pair[0], pair[1]
		if idx < 0 || idx >= histogramSlots {
			return fmt.Errorf("stats: histogram bucket %d out of range", idx)
		}
		if c < 0 || c > int64(^uint32(0)) {
			return fmt.Errorf("stats: histogram count %d out of range", c)
		}
		h.counts[idx] = uint32(c)
	}
	return nil
}

// throughputSeriesJSON is the wire form of a ThroughputSeries.
type throughputSeriesJSON struct {
	Interval sim.Duration `json:"interval"`
	Buckets  []int64      `json:"buckets"`
	Total    int64        `json:"total"`
}

// MarshalJSON encodes the series' bucket timeline.
func (t *ThroughputSeries) MarshalJSON() ([]byte, error) {
	return json.Marshal(throughputSeriesJSON{
		Interval: t.interval,
		Buckets:  t.buckets,
		Total:    t.total,
	})
}

// UnmarshalJSON decodes a series previously encoded by MarshalJSON.
func (t *ThroughputSeries) UnmarshalJSON(data []byte) error {
	var in throughputSeriesJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if in.Interval <= 0 {
		in.Interval = sim.Second
	}
	*t = ThroughputSeries{interval: in.Interval, buckets: in.Buckets, total: in.Total}
	return nil
}

// latencySeriesJSON is the wire form of a LatencySeries. Hists is present
// only for series built by NewLatencySeriesHist.
type latencySeriesJSON struct {
	Interval sim.Duration   `json:"interval"`
	Sums     []sim.Duration `json:"sums"`
	Counts   []uint64       `json:"counts"`
	Hists    []*Histogram   `json:"hists,omitempty"`
}

// MarshalJSON encodes the series, including per-bucket histograms when the
// series tracks them.
func (l *LatencySeries) MarshalJSON() ([]byte, error) {
	return json.Marshal(latencySeriesJSON{
		Interval: l.interval,
		Sums:     l.sums,
		Counts:   l.counts,
		Hists:    l.hists,
	})
}

// UnmarshalJSON decodes a series previously encoded by MarshalJSON.
func (l *LatencySeries) UnmarshalJSON(data []byte) error {
	var in latencySeriesJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if in.Interval <= 0 {
		in.Interval = sim.Second
	}
	if len(in.Sums) != len(in.Counts) {
		return fmt.Errorf("stats: latency series sums/counts length mismatch (%d vs %d)",
			len(in.Sums), len(in.Counts))
	}
	if in.Hists != nil && len(in.Hists) != len(in.Sums) {
		return fmt.Errorf("stats: latency series hists length mismatch (%d vs %d)",
			len(in.Hists), len(in.Sums))
	}
	*l = LatencySeries{
		interval:  in.Interval,
		sums:      in.Sums,
		counts:    in.Counts,
		hists:     in.Hists,
		trackHist: in.Hists != nil,
	}
	return nil
}
