// Package results renders experiment measurements as machine-readable
// tables for plotting and downstream analysis. A Table is an ordered list
// of named columns plus string rows; WriteCSV and WriteJSON emit it as
// RFC 4180 CSV (header row first) or as a JSON array of objects with keys
// in column order. All value formatting goes through the helpers in this
// package, which are locale-free and deterministic — two runs that measure
// identical numbers serialize to identical bytes, which is what lets the
// sweep cache promise byte-identical warm re-runs.
//
// The package is shared by internal/scenario (burst-suite cell and
// timeline dumps) and internal/slo (search probe dumps); docs/formats.md
// documents the concrete schemas.
package results

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"essdsim/internal/sim"
)

// Table is an ordered set of columns and rows. Rows must match the column
// count; AddRow enforces it.
type Table struct {
	Name    string
	Columns []string
	Rows    [][]string
}

// NewTable returns an empty table with the given column order.
func NewTable(name string, columns ...string) *Table {
	return &Table{Name: name, Columns: columns}
}

// AddRow appends one row. It panics when the cell count does not match the
// column count — a programming error in the table builder, not user input.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("results: table %q row has %d cells, want %d",
			t.Name, len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// WriteCSV emits the table as CSV: one header row of column names, then
// the data rows.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	if err := cw.WriteAll(t.Rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON emits the table as a JSON array of objects, one per row, with
// keys in column order. Values stay strings, exactly as they appear in the
// CSV form, so the two encodings carry identical data.
func (t *Table) WriteJSON(w io.Writer) error {
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i, row := range t.Rows {
		sep := ","
		if i == len(t.Rows)-1 {
			sep = ""
		}
		line := "  {"
		for j, col := range t.Columns {
			if j > 0 {
				line += ","
			}
			line += strconv.Quote(col) + ":" + strconv.Quote(row[j])
		}
		line += "}" + sep + "\n"
		if _, err := io.WriteString(w, line); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}

// Float formats a float64 with the shortest representation that
// round-trips, the same encoding encoding/json uses.
func Float(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Int formats a signed integer.
func Int(v int64) string { return strconv.FormatInt(v, 10) }

// Uint formats an unsigned integer.
func Uint(v uint64) string { return strconv.FormatUint(v, 10) }

// Bool formats a boolean as "true" or "false".
func Bool(b bool) string { return strconv.FormatBool(b) }

// Seconds formats a duration as fractional seconds. Negative durations
// (the "never"/"not applicable" sentinels) format as -1.
func Seconds(d sim.Duration) string {
	if d < 0 {
		return "-1"
	}
	return Float(d.Seconds())
}

// Millis formats a duration as fractional milliseconds, -1 for negative
// sentinels.
func Millis(d sim.Duration) string {
	if d < 0 {
		return "-1"
	}
	return Float(d.Seconds() * 1e3)
}
