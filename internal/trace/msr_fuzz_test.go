package trace

import (
	"bytes"
	"reflect"
	"testing"

	"essdsim/internal/blockdev"
)

// FuzzParseMSR feeds arbitrary bytes through the MSR-Cambridge CSV
// parser and checks its postconditions on every accepted input: records
// rebased to start at zero, sorted by issue time, with non-negative
// offsets, positive sizes, and a valid op — and the parse deterministic
// across repeat calls. The parser must reject or accept, never panic.
func FuzzParseMSR(f *testing.F) {
	f.Add("128166372003061629,src1,0,Write,8192,4096,100\n")
	f.Add("128166372003061629,src1,0,Read,0,512,0\n128166372003000000,src1,1,w,4096,8192,5\n")
	f.Add("# comment\n\n1,h,0,write,0,1,0\n")
	f.Add("not,enough,fields\n")
	f.Add("1,h,0,Erase,0,1,0\n")
	f.Add("-1,h,0,Read,0,1,0\n")
	f.Add("1,h,0,Read,0,0,0\n")
	f.Add("1,h,0,Read,-4096,4096,0\n")
	f.Add("0,h,0,Read,0,1,0\n9223372036854775807,h,0,Read,0,1,0\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, in string) {
		recs, err := ParseMSR(bytes.NewReader([]byte(in)))
		if err != nil {
			return
		}
		for i, r := range recs {
			if r.Op != blockdev.Read && r.Op != blockdev.Write {
				t.Fatalf("record %d: invalid op %v", i, r.Op)
			}
			if r.Offset < 0 || r.Size <= 0 {
				t.Fatalf("record %d: bad geometry offset=%d size=%d", i, r.Offset, r.Size)
			}
			if r.At < 0 {
				t.Fatalf("record %d: negative issue time %v", i, r.At)
			}
			if i > 0 && r.At < recs[i-1].At {
				t.Fatalf("record %d issued at %v before record %d at %v", i, r.At, i-1, recs[i-1].At)
			}
		}
		if len(recs) > 0 && recs[0].At != 0 {
			t.Fatalf("first record not rebased to zero: %v", recs[0].At)
		}
		again, err := ParseMSR(bytes.NewReader([]byte(in)))
		if err != nil {
			t.Fatalf("re-parse of accepted input failed: %v", err)
		}
		if !reflect.DeepEqual(recs, again) {
			t.Fatal("re-parse of accepted input produced different records")
		}
		// Fit must keep every accepted record inside any valid geometry.
		const capacity, block = 1 << 20, 4096
		for i, r := range Fit(recs, capacity, block) {
			if r.Offset < 0 || r.Size <= 0 || r.Offset+r.Size > capacity {
				t.Fatalf("fit record %d escapes device: offset=%d size=%d", i, r.Offset, r.Size)
			}
			if r.Offset%block != 0 || r.Size%block != 0 {
				t.Fatalf("fit record %d not block-aligned: offset=%d size=%d", i, r.Offset, r.Size)
			}
		}
	})
}
