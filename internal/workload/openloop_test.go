package workload

import (
	"testing"

	"essdsim/internal/blockdev"
	"essdsim/internal/sim"
)

func TestOpenSpecValidate(t *testing.T) {
	d := newFake(100)
	bad := []OpenSpec{
		{BlockSize: 0, RatePerSec: 10, Count: 1},
		{BlockSize: 1000, RatePerSec: 10, Count: 1},
		{BlockSize: 4096, RatePerSec: 0, Count: 1},
		{BlockSize: 4096, RatePerSec: 10, Count: 0},
		{BlockSize: 4096, RatePerSec: 10, Count: 1, Region: 1 << 40},
		// Zero-slot regions used to reach the offset draw and panic there.
		{BlockSize: 8192, RatePerSec: 10, Count: 1, Region: 4096},
		{BlockSize: 2 << 30, RatePerSec: 10, Count: 1}, // block > capacity
		{Pattern: Mixed, WriteRatio: 1.5, BlockSize: 4096, RatePerSec: 10, Count: 1},
		{Pattern: Mixed, WriteRatio: -0.1, BlockSize: 4096, RatePerSec: 10, Count: 1},
	}
	for i, s := range bad {
		if err := s.Validate(d); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	ok := OpenSpec{Pattern: Mixed, WriteRatio: 0.5, BlockSize: 4096, RatePerSec: 10, Count: 1}
	if err := ok.Validate(d); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

// TestOpenLoopTimelines checks the completion timelines the result carries
// for cliff analysis: bucketed bytes and mean latency.
func TestOpenLoopTimelines(t *testing.T) {
	d := newFake(100 * sim.Microsecond)
	res := RunOpen(d, OpenSpec{
		Pattern: RandRead, BlockSize: 4096,
		RatePerSec: 1000, Arrival: Uniform, Count: 100,
		SampleInterval: 10 * sim.Millisecond, Seed: 1,
	})
	if res.Series.Total() != 100*4096 {
		t.Fatalf("series total = %d", res.Series.Total())
	}
	// 100 req at 1 kHz over 10 ms buckets: 10 completions per bucket.
	if got := res.LatSeries.Count(0); got != 10 {
		t.Fatalf("bucket 0 completions = %d, want 10", got)
	}
	if got := res.LatSeries.MeanRange(0, res.LatSeries.Len()); got != 100*sim.Microsecond {
		t.Fatalf("mean latency over timeline = %v", got)
	}
	if got := res.Throughput(); got <= 0 {
		t.Fatalf("throughput = %v", got)
	}
}

func TestOpenLoopUniformPacing(t *testing.T) {
	d := newFake(100 * sim.Microsecond)
	res := RunOpen(d, OpenSpec{
		Pattern: RandRead, BlockSize: 4096,
		RatePerSec: 1000, Arrival: Uniform, Count: 100, Seed: 1,
	})
	if res.Ops != 100 {
		t.Fatalf("ops = %d", res.Ops)
	}
	// 100 requests at 1 kHz: last issues at 99 ms, completes at 99.1 ms.
	want := sim.Duration(99*sim.Millisecond + 100*sim.Microsecond)
	if res.Elapsed != want {
		t.Fatalf("elapsed = %v, want %v", res.Elapsed, want)
	}
	// Device (100µs) keeps up with 1ms gaps: no queueing.
	if res.MaxOutstanding != 1 {
		t.Fatalf("max outstanding = %d, want 1", res.MaxOutstanding)
	}
	if res.Lat.Max() != 100*sim.Microsecond {
		t.Fatalf("latency = %v", res.Lat.Max())
	}
}

func TestOpenLoopQueueingWhenOverloaded(t *testing.T) {
	// 1 kHz arrivals on a serial 5 ms device: queue builds, latency
	// includes wait.
	d := &serialFake{fakeDevice: newFake(5 * sim.Millisecond)}
	res := RunOpen(d, OpenSpec{
		Pattern: RandWrite, BlockSize: 4096,
		RatePerSec: 1000, Arrival: Uniform, Count: 50, Seed: 1,
	})
	if res.MaxOutstanding < 10 {
		t.Fatalf("max outstanding = %d, want queue buildup", res.MaxOutstanding)
	}
	if res.Lat.Max() <= 5*sim.Millisecond {
		t.Fatalf("max latency %v does not include queueing", res.Lat.Max())
	}
}

// serialFake serves one request at a time — queueing is visible in
// completion latencies.
type serialFake struct {
	*fakeDevice
	busyUntil sim.Time
}

func (s *serialFake) Submit(r *blockdev.Request) {
	blockdev.Validate(s, r)
	r.Issued = s.eng.Now()
	s.offsets = append(s.offsets, r.Offset)
	start := s.busyUntil
	if now := s.eng.Now(); start < now {
		start = now
	}
	s.busyUntil = start.Add(s.lat)
	s.eng.At(s.busyUntil, func() {
		if r.OnComplete != nil {
			r.OnComplete(r, s.eng.Now())
		}
	})
}

func TestOpenLoopBurstyArrivals(t *testing.T) {
	d := &serialFake{fakeDevice: newFake(1 * sim.Millisecond)}
	res := RunOpen(d, OpenSpec{
		Pattern: RandRead, BlockSize: 4096,
		RatePerSec: 100, Arrival: Bursty, Count: 200, Seed: 1,
	})
	// Uniform pacing of the same load on the same device.
	d2 := &serialFake{fakeDevice: newFake(1 * sim.Millisecond)}
	res2 := RunOpen(d2, OpenSpec{
		Pattern: RandRead, BlockSize: 4096,
		RatePerSec: 100, Arrival: Uniform, Count: 200, Seed: 1,
	})
	// Implication #4 in numbers: bursty p99 >> uniform p99 at equal
	// offered load (100 req/s on a 1000 req/s-capable device).
	if res.Lat.Percentile(99) < 4*res2.Lat.Percentile(99) {
		t.Fatalf("bursty p99 %v not much worse than uniform %v",
			res.Lat.Percentile(99), res2.Lat.Percentile(99))
	}
	if res2.MaxOutstanding > 2 {
		t.Fatalf("uniform max outstanding = %d", res2.MaxOutstanding)
	}
}

func TestOpenLoopPoissonJitters(t *testing.T) {
	d := newFake(10 * sim.Microsecond)
	res := RunOpen(d, OpenSpec{
		Pattern: RandRead, BlockSize: 4096,
		RatePerSec: 1000, Arrival: Poisson, Count: 500, Seed: 3,
	})
	if res.Ops != 500 {
		t.Fatalf("ops = %d", res.Ops)
	}
	// Mean rate should be near nominal: elapsed ≈ 0.5 s.
	secs := res.Elapsed.Seconds()
	if secs < 0.3 || secs > 0.8 {
		t.Fatalf("poisson elapsed = %.3fs, want ≈0.5s", secs)
	}
}

func TestOpenLoopHotspot(t *testing.T) {
	d := newFake(10 * sim.Microsecond)
	z := NewZipf(1<<20, 0.99)
	RunOpen(d, OpenSpec{
		Pattern: RandWrite, BlockSize: 4096,
		RatePerSec: 10000, Arrival: Uniform, Count: 2000,
		Region: 1 << 20, Hotspot: z, Seed: 5,
	})
	// Skewed: the top offset should repeat far more than uniform would.
	counts := map[int64]int{}
	for _, off := range d.offsets {
		counts[off]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 20 {
		t.Fatalf("hottest offset seen %d times; zipf skew missing", max)
	}
}

func TestZipfBounds(t *testing.T) {
	rng := sim.NewRNG(1, 1)
	z := NewZipf(1000, 0.99)
	for i := 0; i < 10000; i++ {
		v := z.Next(rng)
		if v < 0 || v >= 1000 {
			t.Fatalf("zipf out of range: %d", v)
		}
	}
}

func TestZipfSkewOrdering(t *testing.T) {
	rng := sim.NewRNG(2, 2)
	z := NewZipf(10000, 0.99)
	ranks := map[int64]int{}
	for i := 0; i < 50000; i++ {
		ranks[z.nextRank(rng)]++
	}
	// Rank 0 must dominate rank 100.
	if ranks[0] < 5*ranks[100] || ranks[0] == 0 {
		t.Fatalf("rank0=%d rank100=%d: skew wrong", ranks[0], ranks[100])
	}
}

func TestZipfUniformTheta(t *testing.T) {
	rng := sim.NewRNG(3, 3)
	z := NewZipf(100, 0)
	counts := make([]int, 100)
	for i := 0; i < 20000; i++ {
		counts[z.nextRank(rng)]++
	}
	for r, c := range counts {
		if c < 100 || c > 320 {
			t.Fatalf("theta=0 rank %d count %d, want ≈200", r, c)
		}
	}
}

func TestZipfDegenerateN(t *testing.T) {
	rng := sim.NewRNG(4, 4)
	z := NewZipf(0, 2.0) // clamped to n=1, theta<1
	if z.Next(rng) != 0 {
		t.Fatal("n=1 zipf must return 0")
	}
}

func TestArrivalString(t *testing.T) {
	if Uniform.String() != "uniform" || Poisson.String() != "poisson" || Bursty.String() != "bursty" {
		t.Fatal("arrival names")
	}
}
