package harness

import (
	"bytes"
	"strings"
	"testing"

	"essdsim/internal/sim"
	"essdsim/internal/workload"
)

func TestWriteFig2CSV(t *testing.T) {
	e := &LatencyGrid{Device: "e", Cells: []LatencyCell{
		{Pattern: workload.RandWrite, BlockSize: 4096, QueueDepth: 1,
			Avg: 300 * sim.Microsecond, P999: 450 * sim.Microsecond},
	}}
	s := &LatencyGrid{Device: "s", Cells: []LatencyCell{
		{Pattern: workload.RandWrite, BlockSize: 4096, QueueDepth: 1,
			Avg: 10 * sim.Microsecond, P999: 15 * sim.Microsecond},
	}}
	var buf bytes.Buffer
	if err := WriteFig2CSV(&buf, e, s); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "pattern,") {
		t.Fatalf("header: %q", lines[0])
	}
	if !strings.Contains(lines[1], "30.000") { // gap 300/10
		t.Fatalf("row: %q", lines[1])
	}
	// Unmatched cells are skipped, not zero-divided.
	s.Cells[0].QueueDepth = 2
	buf.Reset()
	if err := WriteFig2CSV(&buf, e, s); err != nil {
		t.Fatal(err)
	}
	if n := len(strings.Split(strings.TrimSpace(buf.String()), "\n")); n != 1 {
		t.Fatalf("unmatched cell emitted: %d lines", n)
	}
}

func TestWriteFig3CSV(t *testing.T) {
	r := &SustainedResult{Device: "d", Rates: []float64{1e9, 2e9}}
	var buf bytes.Buffer
	if err := WriteFig3CSV(&buf, []*SustainedResult{r}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "d,0,1000000000") || !strings.Contains(out, "d,1,2000000000") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestWriteFig4CSV(t *testing.T) {
	r := &RandSeqResult{Device: "d", Cells: []RandSeqCell{
		{BlockSize: 4096, QueueDepth: 8, RandBW: 2e9, SeqBW: 1e9},
	}}
	var buf bytes.Buffer
	if err := WriteFig4CSV(&buf, []*RandSeqResult{r}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2.000") {
		t.Fatalf("gain missing:\n%s", buf.String())
	}
}

func TestWriteFig5CSV(t *testing.T) {
	r := &MixedResult{Device: "d", Points: []MixedPoint{
		{WriteRatioPct: 30, TotalBW: 3e9, WriteBW: 1e9},
	}}
	var buf bytes.Buffer
	if err := WriteFig5CSV(&buf, []*MixedResult{r}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "d,30,3000000000,1000000000") {
		t.Fatalf("output:\n%s", buf.String())
	}
}
