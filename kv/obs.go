package kv

// Observability over the KV engines: read-only occupancy accessors and
// state-probe installation, so a harness can watch memtable pressure,
// level growth, and page-cache fill alongside the device-level probes.

import (
	"fmt"

	"essdsim/internal/obs"
)

// MemtableBytes returns the LSM's current in-memory write buffer
// occupancy (active plus immutable memtables).
func (l *LSM) MemtableBytes() int64 { return l.memUsed }

// PutWaiters returns the number of puts blocked on a full memtable
// chain — the write-stall depth.
func (l *LSM) PutWaiters() int { return len(l.waiters) }

// InstallProbes registers the LSM's state gauges: memtable occupancy,
// write-stall depth, flush/compaction busyness, and each level's bytes.
func (l *LSM) InstallProbes(p *obs.Prober) {
	p.Add("kv/lsm/memtable_bytes", func() float64 { return float64(l.memUsed) })
	p.Add("kv/lsm/put_waiters", func() float64 { return float64(len(l.waiters)) })
	p.Add("kv/lsm/flush_busy", func() float64 { return boolGauge(l.flushBusy) })
	p.Add("kv/lsm/compact_busy", func() float64 { return boolGauge(l.compBusy) })
	for i := range l.levels {
		i := i
		p.Add(fmt.Sprintf("kv/lsm/l%d_bytes", i), func() float64 {
			return float64(l.levels[i].bytes)
		})
	}
}

// CachePages returns the number of resident page-cache entries.
func (p *PageStore) CachePages() int { return len(p.cache) }

// InstallProbes registers the page store's state gauges: resident cache
// pages and in-flight read-modify-write pairs.
func (ps *PageStore) InstallProbes(p *obs.Prober) {
	p.Add("kv/pagestore/cache_pages", func() float64 { return float64(len(ps.cache)) })
	p.Add("kv/pagestore/inflight", func() float64 { return float64(ps.inflight) })
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
