// Command uctrace replays block I/O traces against simulated devices and
// generates synthetic traces from fio-style workload parameters.
//
// Replay accepts the native text format (-format text, the default) and
// MSR-Cambridge CSV rows (-format msr); MSR traces are automatically
// fitted onto the scaled simulated device (offsets wrapped and aligned,
// see the trace package's Fit).
//
// Examples:
//
//	uctrace gen -rw randwrite -bs 4k -iodepth 8 -ops 10000 -o trace.txt
//	uctrace replay -device essd1 trace.txt
//	uctrace replay -device essd2 -format msr msr-rows.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"essdsim"
	"essdsim/internal/fio"
	"essdsim/internal/trace"
	"essdsim/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		gen(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  uctrace gen -rw <pattern> -bs <size> -iodepth <n> -ops <n> [-device <name>] [-o file]
  uctrace replay -device <name> [-format text|msr] <trace-file>`)
	os.Exit(1)
}

// gen records a synthetic workload's submission times on a reference
// device into a portable trace.
func gen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	var (
		rw      = fs.String("rw", "randwrite", "pattern")
		bs      = fs.String("bs", "4k", "I/O size")
		iodepth = fs.Int("iodepth", 8, "queue depth")
		ops     = fs.Uint64("ops", 10000, "operations to generate")
		device  = fs.String("device", "essd1", "reference device setting the issue cadence")
		out     = fs.String("o", "", "output file (default stdout)")
		seed    = fs.Uint64("seed", 1, "deterministic seed")
	)
	fs.Parse(args)

	pattern, err := workload.ParsePattern(*rw)
	if err != nil {
		fatal(err)
	}
	blockSize, err := fio.ParseSize(*bs)
	if err != nil {
		fatal(err)
	}
	eng := essdsim.NewEngine()
	dev, err := essdsim.NewDevice(*device, eng, *seed)
	if err != nil {
		fatal(err)
	}
	essdsim.Precondition(dev, pattern.IsWrite())
	rec := trace.NewRecorder(dev)
	essdsim.Run(rec, essdsim.Workload{
		Pattern:    pattern,
		BlockSize:  blockSize,
		QueueDepth: *iodepth,
		MaxOps:     *ops,
		Seed:       *seed,
	})
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := trace.Write(w, rec.Recs); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "uctrace: wrote %d records\n", len(rec.Recs))
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	var (
		device  = fs.String("device", "essd1", "device to replay onto")
		seed    = fs.Uint64("seed", 1, "deterministic seed")
		precond = fs.Bool("precondition", true, "fill the device before replay")
		format  = fs.String("format", "text", "trace format: text (native) or msr (MSR-Cambridge CSV)")
	)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	recs, err := trace.ReadFormat(f, *format)
	f.Close()
	if err != nil {
		fatal(err)
	}
	eng := essdsim.NewEngine()
	dev, err := essdsim.NewDevice(*device, eng, *seed)
	if err != nil {
		fatal(err)
	}
	if *format == "msr" {
		// Foreign traces address production-size volumes; wrap them onto
		// the scaled simulated device.
		recs = trace.Fit(recs, dev.Capacity(), int64(dev.BlockSize()))
	}
	if *precond {
		essdsim.Precondition(dev, false)
	}
	res := trace.Replay(dev, recs)
	s := res.Lat.Summarize()
	stretch := "n/a (instantaneous trace)"
	if res.Nominal > 0 {
		stretch = fmt.Sprintf("%.2fx", res.Stretch)
	}
	fmt.Printf("%s: replayed %d ops, %d bytes in %v (stretch %s, lag %v, peak queue %d)\n",
		res.Device, res.Ops, res.Bytes, res.Elapsed, stretch, res.Lag, res.MaxOutstanding)
	fmt.Printf("latency avg=%v p50=%v p99=%v p99.9=%v max=%v\n",
		s.Mean, s.P50, s.P99, s.P999, s.Max)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uctrace:", err)
	os.Exit(1)
}
