package integration

import (
	"testing"

	"essdsim/internal/profiles"
	"essdsim/internal/sim"
	"essdsim/internal/workload"
)

// The golden values below were captured on the pre-shared-backend stack
// (every volume owning a private cluster.Cluster and netsim.Network, PR 3
// tree) with the exact seeds and specs used here. The shared-backend
// refactor routes the same single volume through an essd.Backend, and this
// test pins the promise that the refactor is invisible to single-tenant
// results: same RNG derivation chain, same event order, byte-identical
// measurements.
type goldenRun struct {
	profile string
	// Closed loop: Mixed 70% writes, 64 KiB, QD 8, 200 ms (20 ms warmup),
	// seed 99, device seed (42, 42^0x5c), half preconditioned.
	closedOps                        uint64
	closedBytes                      int64
	closedMean, closedP50, closedP99 int64
	closedP999, closedMax            int64
	// Open loop: Mixed 50% writes, 256 KiB, 2000 req/s bursty, 3000
	// requests, seed 7, fully preconditioned.
	openBytes          int64
	openElapsed        int64
	openMean, openP999 int64
	openMaxOutstanding int
}

var goldenRuns = []goldenRun{
	{
		profile:   "essd1",
		closedOps: 4154, closedBytes: 272236544,
		closedMean: 347256, closedP50: 331776, closedP99: 729088,
		closedP999: 892928, closedMax: 1450716,
		openBytes: 786432000, openElapsed: 1071590580,
		openMean: 58854255, openP999: 157286400, openMaxOutstanding: 2000,
	},
	{
		profile:   "essd2",
		closedOps: 3710, closedBytes: 243138560,
		closedMean: 389064, closedP50: 430080, closedP99: 614400,
		closedP999: 2048000, closedMax: 2290773,
		openBytes: 786432000, openElapsed: 1223838933,
		openMean: 184798373, openP999: 462137710, openMaxOutstanding: 2000,
	},
	{
		profile:   "gp2",
		closedOps: 3098, closedBytes: 203030528,
		closedMean: 466220, closedP50: 462848, closedP99: 909312,
		closedP999: 1024000, closedMax: 1645229,
		openBytes: 786432000, openElapsed: 1262823788,
		openMean: 219382720, openP999: 524288000, openMaxOutstanding: 2000,
	},
}

// TestSharedBackendSingleVolumeGolden asserts seed-identical single-volume
// behaviour across the shared-backend refactor, for both workload
// families, on ESSD-1, ESSD-2, and the burstable gp2 tier.
func TestSharedBackendSingleVolumeGolden(t *testing.T) {
	for _, g := range goldenRuns {
		g := g
		t.Run(g.profile, func(t *testing.T) {
			eng := sim.NewEngine()
			dev, err := profiles.ByName(g.profile, eng, sim.NewRNG(42, 42^0x5c))
			if err != nil {
				t.Fatal(err)
			}
			dev.(interface{ Precondition(float64) }).Precondition(0.5)
			res := workload.Run(dev, workload.Spec{
				Pattern: workload.Mixed, WriteRatio: 0.7, BlockSize: 64 << 10,
				QueueDepth: 8, Duration: 200 * sim.Millisecond,
				Warmup: 20 * sim.Millisecond, Seed: 99,
			})
			s := res.Lat.Summarize()
			if res.Ops != g.closedOps || res.Bytes != g.closedBytes {
				t.Errorf("closed ops/bytes = %d/%d, golden %d/%d",
					res.Ops, res.Bytes, g.closedOps, g.closedBytes)
			}
			got := [5]int64{int64(s.Mean), int64(s.P50), int64(s.P99), int64(s.P999), int64(s.Max)}
			want := [5]int64{g.closedMean, g.closedP50, g.closedP99, g.closedP999, g.closedMax}
			if got != want {
				t.Errorf("closed latency summary = %v, golden %v", got, want)
			}

			eng2 := sim.NewEngine()
			dev2, err := profiles.ByName(g.profile, eng2, sim.NewRNG(42, 42^0x5c))
			if err != nil {
				t.Fatal(err)
			}
			dev2.(interface{ Precondition(float64) }).Precondition(1)
			open := workload.RunOpen(dev2, workload.OpenSpec{
				Pattern: workload.Mixed, WriteRatio: 0.5, BlockSize: 256 << 10,
				RatePerSec: 2000, Arrival: workload.Bursty, Count: 3000, Seed: 7,
			})
			os := open.Lat.Summarize()
			if open.Bytes != g.openBytes || int64(open.Elapsed) != g.openElapsed {
				t.Errorf("open bytes/elapsed = %d/%d, golden %d/%d",
					open.Bytes, int64(open.Elapsed), g.openBytes, g.openElapsed)
			}
			if int64(os.Mean) != g.openMean || int64(os.P999) != g.openP999 {
				t.Errorf("open mean/p999 = %d/%d, golden %d/%d",
					int64(os.Mean), int64(os.P999), g.openMean, g.openP999)
			}
			if open.MaxOutstanding != g.openMaxOutstanding {
				t.Errorf("open max outstanding = %d, golden %d",
					open.MaxOutstanding, g.openMaxOutstanding)
			}
		})
	}
}
