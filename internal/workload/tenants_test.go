package workload

import (
	"reflect"
	"testing"

	"essdsim/internal/sim"
)

// newTestDevice builds a constant-latency fake on a caller-owned engine,
// so several tenants can share one engine.
func newTestDevice(eng *sim.Engine, latMicros int64) *fakeDevice {
	return &fakeDevice{eng: eng, lat: sim.Duration(latMicros) * sim.Microsecond, capacity: 1 << 30}
}

// tenantSpec is a small open-loop spec sized for -short runs.
func tenantSpec(seed uint64) OpenSpec {
	return OpenSpec{
		Pattern:    RandWrite,
		BlockSize:  4096,
		RatePerSec: 5000,
		Arrival:    Uniform,
		Count:      500,
		Seed:       seed,
	}
}

// TestRunTenantsSoloMatchesRunOpen checks the split-phase refactor is
// invisible: a single open-loop tenant measured through RunTenants is
// identical to the same spec through RunOpen.
func TestRunTenantsSoloMatchesRunOpen(t *testing.T) {
	eng1 := sim.NewEngine()
	solo := RunOpen(newTestDevice(eng1, 9), tenantSpec(3))

	eng2 := sim.NewEngine()
	spec := tenantSpec(3)
	res := RunTenants(eng2, []Tenant{{Name: "only", Dev: newTestDevice(eng2, 9), Open: &spec}})
	if len(res) != 1 || res[0].Open == nil {
		t.Fatalf("tenant results = %+v", res)
	}
	if !reflect.DeepEqual(solo, res[0].Open) {
		t.Fatalf("solo tenant result differs from RunOpen:\n  RunOpen: ops=%d bytes=%d elapsed=%v\n  tenant:  ops=%d bytes=%d elapsed=%v",
			solo.Ops, solo.Bytes, solo.Elapsed, res[0].Open.Ops, res[0].Open.Bytes, res[0].Open.Elapsed)
	}
}

// TestRunTenantsMixedFamilies runs an open-loop and a closed-loop tenant
// on one engine and checks each measures its own window.
func TestRunTenantsMixedFamilies(t *testing.T) {
	eng := sim.NewEngine()
	open := tenantSpec(4)
	closed := Spec{
		Pattern: RandRead, BlockSize: 4096, QueueDepth: 4,
		MaxOps: 400, Seed: 5,
	}
	devA := newTestDevice(eng, 1)
	devB := newTestDevice(eng, 2)
	res := RunTenants(eng, []Tenant{
		{Name: "open", Dev: devA, Open: &open},
		{Name: "closed", Dev: devB, Closed: &closed},
	})
	if res[0].Open == nil || res[1].Closed == nil {
		t.Fatalf("result families wrong: %+v", res)
	}
	if res[0].Open.Ops != open.Count {
		t.Fatalf("open tenant completed %d of %d", res[0].Open.Ops, open.Count)
	}
	if res[1].Closed.Ops != closed.MaxOps {
		t.Fatalf("closed tenant completed %d of %d", res[1].Closed.Ops, closed.MaxOps)
	}
	if res[0].Open.Elapsed <= 0 || res[1].Closed.Elapsed <= 0 {
		t.Fatalf("non-positive windows: %v / %v", res[0].Open.Elapsed, res[1].Closed.Elapsed)
	}
	if res[0].Throughput() <= 0 || res[1].Throughput() <= 0 {
		t.Fatal("non-positive tenant throughput")
	}
}

// TestRunTenantsValidation checks the panic contract for malformed
// tenants.
func TestRunTenantsValidation(t *testing.T) {
	eng := sim.NewEngine()
	spec := tenantSpec(1)
	cases := map[string][]Tenant{
		"empty":        {},
		"no device":    {{Name: "x", Open: &spec}},
		"both specs":   {{Name: "x", Dev: newTestDevice(eng, 1), Open: &spec, Closed: &Spec{}}},
		"no spec":      {{Name: "x", Dev: newTestDevice(eng, 1)}},
		"wrong engine": {{Name: "x", Dev: newTestDevice(sim.NewEngine(), 1), Open: &spec}},
	}
	for name, tenants := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: RunTenants did not panic", name)
				}
			}()
			RunTenants(eng, tenants)
		}()
	}
}

// TestParseArrival round-trips every arrival shape and rejects junk.
func TestParseArrival(t *testing.T) {
	for _, a := range []Arrival{Uniform, Poisson, Bursty} {
		got, err := ParseArrival(a.String())
		if err != nil || got != a {
			t.Fatalf("ParseArrival(%q) = %v, %v", a.String(), got, err)
		}
	}
	if _, err := ParseArrival("sawtooth"); err == nil {
		t.Fatal("ParseArrival accepted junk")
	}
}
