package fleet_test

import (
	"context"
	"fmt"

	"essdsim/internal/fleet"
	"essdsim/internal/sim"
)

// ExampleRun compares the four built-in placement policies packing eight
// tenants — two bursty all-write aggressors among steady mixed victims —
// onto two shared backends. Density-first first-fit stacks both
// aggressors (and three victims) on one backend and pays in p99.9 SLO
// violations and shared-debt throttling; the write-aware policies
// separate the aggressors and keep the victims clean.
func ExampleRun() {
	rep, err := fleet.Run(context.Background(), fleet.Spec{
		Demands:  fleet.SyntheticDemands(8, 2),
		Backends: 2,
		SLOP999:  5 * sim.Millisecond,
		Seed:     7,
	})
	if err != nil {
		panic(err)
	}
	for _, pr := range rep.Policies {
		fmt.Printf("%-13s backends=%d p99.9-violations=%d throttled=%d\n",
			pr.Policy, pr.BackendsUsed, pr.P999Violations, pr.ThrottledTenants)
	}
	// Output:
	// first-fit     backends=2 p99.9-violations=5 throttled=4
	// spread        backends=2 p99.9-violations=4 throttled=3
	// best-fit      backends=2 p99.9-violations=2 throttled=0
	// interference  backends=2 p99.9-violations=2 throttled=0
}
