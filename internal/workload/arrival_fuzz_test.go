package workload

import "testing"

// FuzzParseArrival pins the parser/String round trip over arbitrary
// input: any accepted name must survive name -> Arrival -> String ->
// Arrival unchanged; everything else must error, never panic.
func FuzzParseArrival(f *testing.F) {
	f.Add("uniform")
	f.Add("poisson")
	f.Add("bursty")
	f.Add("")
	f.Add("Uniform")
	f.Add("burst")
	f.Fuzz(func(t *testing.T, s string) {
		a, err := ParseArrival(s)
		if err != nil {
			return
		}
		if a.String() != s {
			t.Fatalf("accepted %q but String() says %q", s, a.String())
		}
		back, err := ParseArrival(a.String())
		if err != nil || back != a {
			t.Fatalf("round trip of %q: got %v, %v", s, back, err)
		}
	})
}
