// Command benchreport converts `go test -bench` output into a stable JSON
// document (one entry per benchmark: ns/op, cells/sec, allocs/op, plus
// every custom metric) and optionally gates metrics against a previously
// committed baseline document.
//
// It is the back half of scripts/bench.sh, which produces BENCH_PR8.json:
//
//	go test -bench=... -benchtime=5x -run '^$' . | benchreport -o BENCH_PR8.json
//
// Gating compares a named benchmark metric against the baseline file and
// exits non-zero when it regressed beyond the allowed fraction:
//
//	benchreport -o BENCH_PR8.json -baseline BENCH_BASELINE.json \
//	    -gate 'FleetPack:cells/sec:0.20'
//
// means "fail if FleetPack's cells/sec dropped more than 20% below the
// baseline". Higher is assumed better for gated metrics.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's collected metrics.
type Entry struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	CellsPerSec float64            `json:"cells_per_sec,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the whole document.
type Report struct {
	Benchmarks map[string]Entry `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "write the JSON report here (default stdout)")
	baseline := flag.String("baseline", "", "baseline JSON report to gate against")
	var gates gateList
	flag.Var(&gates, "gate", "metric gate as name:metric:maxRegressFraction (repeatable)")
	flag.Parse()

	rep := Report{Benchmarks: map[string]Entry{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // tee: keep the human-readable bench output visible
		if name, e, ok := parseBenchLine(line); ok {
			rep.Benchmarks[name] = e
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark result lines on stdin"))
	}

	doc, err := json.MarshalIndent(ordered(rep), "", "  ")
	if err != nil {
		fatal(err)
	}
	doc = append(doc, '\n')
	if *out == "" {
		os.Stdout.Write(doc)
	} else if err := os.WriteFile(*out, doc, 0o644); err != nil {
		fatal(err)
	}

	if *baseline != "" && len(gates) > 0 {
		base, err := loadReport(*baseline)
		if err != nil {
			fatal(err)
		}
		failed := false
		for _, g := range gates {
			if err := g.check(base, rep); err != nil {
				fmt.Fprintf(os.Stderr, "benchreport: GATE FAILED: %v\n", err)
				failed = true
			} else {
				fmt.Fprintf(os.Stderr, "benchreport: gate ok: %s %s\n", g.name, g.metric)
			}
		}
		if failed {
			os.Exit(1)
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
	os.Exit(1)
}

// parseBenchLine parses one `go test -bench` result line:
//
//	BenchmarkFleetPack-4   5   234774269 ns/op   42.66 cells/sec   900196 allocs/op
//
// The name is normalized by stripping the Benchmark prefix and the -N
// GOMAXPROCS suffix. Sub-benchmarks keep their /sub path.
func parseBenchLine(line string) (string, Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", Entry{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Entry{}, false
	}
	e := Entry{Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Entry{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			e.NsPerOp = val
		case "cells/sec":
			e.CellsPerSec = val
		case "allocs/op":
			e.AllocsPerOp = val
		case "B/op":
			e.BytesPerOp = val
		default:
			e.Metrics[unit] = val
		}
	}
	if len(e.Metrics) == 0 {
		e.Metrics = nil
	}
	return name, e, true
}

// ordered re-keys the report through a sorted map so the JSON encoding is
// deterministic (encoding/json sorts map keys, but being explicit keeps
// the ordering intent visible).
func ordered(r Report) Report {
	keys := make([]string, 0, len(r.Benchmarks))
	for k := range r.Benchmarks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := Report{Benchmarks: make(map[string]Entry, len(keys))}
	for _, k := range keys {
		out.Benchmarks[k] = r.Benchmarks[k]
	}
	return out
}

func loadReport(path string) (Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return Report{}, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// gate is one name:metric:maxRegressFraction triple.
type gate struct {
	name       string
	metric     string
	maxRegress float64
}

// metricOf pulls the gated metric out of an entry.
func (g gate) metricOf(e Entry) (float64, bool) {
	switch g.metric {
	case "cells/sec":
		return e.CellsPerSec, e.CellsPerSec != 0
	case "ns/op":
		return e.NsPerOp, e.NsPerOp != 0
	case "allocs/op":
		return e.AllocsPerOp, e.AllocsPerOp != 0
	default:
		v, ok := e.Metrics[g.metric]
		return v, ok
	}
}

// check fails when the current metric fell more than maxRegress below the
// baseline (higher is better).
func (g gate) check(base, cur Report) error {
	be, ok := base.Benchmarks[g.name]
	if !ok {
		return fmt.Errorf("%s missing from baseline", g.name)
	}
	ce, ok := cur.Benchmarks[g.name]
	if !ok {
		return fmt.Errorf("%s missing from current run", g.name)
	}
	bv, ok := g.metricOf(be)
	if !ok || bv <= 0 {
		return fmt.Errorf("%s has no baseline %s", g.name, g.metric)
	}
	cv, ok := g.metricOf(ce)
	if !ok {
		return fmt.Errorf("%s has no current %s", g.name, g.metric)
	}
	if floor := bv * (1 - g.maxRegress); cv < floor {
		return fmt.Errorf("%s %s regressed: %.4g < %.4g (baseline %.4g, allowed -%.0f%%)",
			g.name, g.metric, cv, floor, bv, 100*g.maxRegress)
	}
	return nil
}

// gateList implements flag.Value for repeated -gate flags.
type gateList []gate

func (l *gateList) String() string {
	parts := make([]string, len(*l))
	for i, g := range *l {
		parts[i] = fmt.Sprintf("%s:%s:%g", g.name, g.metric, g.maxRegress)
	}
	return strings.Join(parts, ",")
}

func (l *gateList) Set(s string) error {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return fmt.Errorf("gate %q not in name:metric:maxRegressFraction form", s)
	}
	frac, err := strconv.ParseFloat(parts[2], 64)
	if err != nil || frac < 0 || frac >= 1 {
		return fmt.Errorf("gate %q: bad regression fraction %q", s, parts[2])
	}
	*l = append(*l, gate{name: parts[0], metric: parts[1], maxRegress: frac})
	return nil
}
