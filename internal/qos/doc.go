// Package qos implements the provider-side quality-of-service machinery of
// an ESSD volume:
//
//   - TokenBucket enforces the provisioned throughput and IOPS budgets — a
//     classic token bucket in virtual time with FIFO waiters, which is what
//     makes an ESSD's maximum bandwidth deterministic across access
//     patterns (Observation #4).
//   - FlowLimiter models the throttle the paper speculates providers
//     engage when background cleaning can no longer hide GC
//     (Observation #2, #4).
//   - CreditBucket models burstable volume tiers (AWS gp2-style): credits
//     earn continuously at a baseline rate, spends above baseline drain
//     the bank, and when it empties the volume falls to a sustained floor.
//     This is the mechanism behind the contract cliff that the scenario
//     suites and the slo search package measure.
//   - Isolation selects the per-tenant scheduling policy of a shared
//     backend (fifo, wfq, reservation) and its knobs (DRR quantum,
//     debt-share rate/burst). NewQueue builds the matching sim.FlowQueue
//     for every backend contention point, and the analytic accessors
//     (GuaranteedShare, DebtCouplingFactor) give the fleet screen
//     closed-form bounds on what the policy guarantees; docs/isolation.md
//     documents the end-to-end surface.
//
// # Model assumptions
//
// All machinery runs in deterministic virtual time on a sim.Engine; there
// are no real clocks or goroutines. CreditBucket charges a spend against
// the credit state at enqueue time (slightly conservative for deeply
// queued backlogs) and serializes spends FIFO through the credit-limited
// rate. Its analytic accessors — ExhaustedAt, SustainedFloor, Baseline,
// Burst — are what SLO searches and scenario tests assert against, so
// their definitions (documented on each method) are part of the package's
// contract.
package qos
