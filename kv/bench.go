package kv

import (
	"fmt"

	"essdsim/internal/sim"
	"essdsim/internal/workload"
)

// IngestResult summarizes a bulk ingest run.
type IngestResult struct {
	Engine    string
	Device    string
	Puts      uint64
	UserBytes int64
	Elapsed   sim.Duration
	Stats     Stats
}

// PutsPerSec returns the ingest rate in operations per (virtual) second.
func (r IngestResult) PutsPerSec() float64 {
	secs := r.Elapsed.Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(r.Puts) / secs
}

// UserMBps returns the effective user-data rate in MB/s.
func (r IngestResult) UserMBps() float64 {
	secs := r.Elapsed.Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(r.UserBytes) / secs / 1e6
}

// IngestSpec parameterizes IngestRun.
type IngestSpec struct {
	// Puts is the number of fixed-size puts to drive.
	Puts uint64
	// ValueSize is the value size of every put.
	ValueSize int64
	// Concurrency is the closed-loop client count (min 1).
	Concurrency int
	// KeySpace is the number of distinct keys (default 1<<20).
	KeySpace uint64
	// Seed fixes the key sequence.
	Seed uint64
	// ZipfTheta selects the key distribution. Zero keeps the historical
	// uniform xorshift draw (golden-compatible); anything in (0, 1)
	// draws YCSB-style zipfian keys over KeySpace instead.
	ZipfTheta float64
}

// ingestState is the closed-loop pump: completions re-arm issuance
// through one pre-bound callback, and the pumping flag flattens the
// Put→ack→pump recursion that synchronous admissions (the LSM memtable
// path) would otherwise build — same issue order, constant stack.
type ingestState struct {
	e           Engine
	puts        uint64
	issued      uint64
	completed   uint64
	valueSize   int64
	concurrency int
	inflight    int
	keySpace    uint64
	state       uint64
	zipf        *workload.Zipf
	rng         *sim.RNG
	pumping     bool
	onAck       func()
}

func (st *ingestState) nextKey() uint64 {
	if st.zipf != nil {
		return uint64(st.zipf.Next(st.rng))
	}
	st.state ^= st.state << 13
	st.state ^= st.state >> 7
	st.state ^= st.state << 17
	return st.state % st.keySpace
}

func (st *ingestState) ack() {
	st.completed++
	st.inflight--
	if !st.pumping {
		st.pump()
	}
}

func (st *ingestState) pump() {
	st.pumping = true
	st.e.BeginBatch()
	for st.inflight < st.concurrency && st.issued < st.puts {
		st.issued++
		st.inflight++
		st.e.Put(st.nextKey(), st.valueSize, st.onAck)
	}
	st.e.EndBatch()
	st.pumping = false
}

// IngestRun drives spec.Puts fixed-size puts through the engine at the
// given client concurrency, waits for the engine to go idle (Barrier),
// and returns the measurements.
func IngestRun(eng *sim.Engine, e Engine, spec IngestSpec) IngestResult {
	if spec.Concurrency < 1 {
		spec.Concurrency = 1
	}
	if spec.KeySpace == 0 {
		spec.KeySpace = 1 << 20
	}
	st := ingestState{
		e:           e,
		puts:        spec.Puts,
		valueSize:   spec.ValueSize,
		concurrency: spec.Concurrency,
		keySpace:    spec.KeySpace,
		state:       spec.Seed*0x9e3779b97f4a7c15 + 0x243f6a8885a308d3,
	}
	if spec.ZipfTheta != 0 {
		if spec.ZipfTheta < 0 || spec.ZipfTheta >= 1 {
			panic(fmt.Sprintf("kv: zipf theta %v outside [0, 1)", spec.ZipfTheta))
		}
		st.zipf = workload.NewZipf(int64(spec.KeySpace), spec.ZipfTheta)
		st.rng = sim.NewRNG(spec.Seed, spec.Seed^0x7)
	}
	st.onAck = st.ack
	start := eng.Now()
	st.pump()
	eng.Run()
	// Drain background work (flushes/compactions) before reading stats.
	finished := false
	e.Barrier(func() { finished = true })
	eng.Run()
	if !finished || st.completed != spec.Puts {
		panic("kv: ingest did not drain")
	}
	return IngestResult{
		Engine:    e.Name(),
		Device:    e.Device().Name(),
		Puts:      st.completed,
		UserBytes: int64(st.completed) * spec.ValueSize,
		Elapsed:   eng.Now().Sub(start),
		Stats:     e.Stats(),
	}
}

// Ingest drives `puts` fixed-size puts through the engine at the given
// client concurrency with uniformly drawn keys — the historical
// signature, kept golden-compatible. IngestRun's spec form adds the
// zipfian key option.
func Ingest(eng *sim.Engine, e Engine, puts uint64, valueSize int64,
	concurrency int, keySpace uint64, seed uint64) IngestResult {
	return IngestRun(eng, e, IngestSpec{
		Puts:        puts,
		ValueSize:   valueSize,
		Concurrency: concurrency,
		KeySpace:    keySpace,
		Seed:        seed,
	})
}
