package contract

import (
	"bytes"
	"strings"
	"testing"

	"essdsim/internal/blockdev"
	"essdsim/internal/harness"
	"essdsim/internal/profiles"
	"essdsim/internal/sim"
	"essdsim/internal/workload"
)

// Synthetic grids modeled on the paper's Figure 2 annotations.
func paperGrids() (essd, ssd *harness.LatencyGrid) {
	mk := func(dev string, scale float64) *harness.LatencyGrid {
		g := &harness.LatencyGrid{Device: dev}
		for _, p := range harness.Fig2Patterns {
			for _, bs := range []int64{4 << 10, 256 << 10} {
				for _, qd := range []int{1, 16} {
					base := 300 * sim.Microsecond
					if dev == "ssd" {
						base = 10 * sim.Microsecond
						if p == workload.RandRead {
							base = 60 * sim.Microsecond
						}
						if bs == 256<<10 || qd == 16 {
							base *= 12
						}
					} else {
						if p == workload.RandRead {
							base = 470 * sim.Microsecond
						}
						if bs == 256<<10 || qd == 16 {
							base = sim.Duration(float64(base) * 3 * scale)
						}
					}
					g.Cells = append(g.Cells, harness.LatencyCell{
						Pattern: p, BlockSize: bs, QueueDepth: qd,
						Avg: base, P999: base * 2, Ops: 1000,
					})
				}
			}
		}
		return g
	}
	return mk("essd", 1), mk("ssd", 1)
}

func TestCheckO1PassesOnPaperShape(t *testing.T) {
	e, s := paperGrids()
	c := CheckObservation1(e, s, Thresholds{})
	if !c.Passed {
		t.Fatalf("O1 failed on paper-shaped data: %v", c.Evidence)
	}
	if len(c.Evidence) < 4 {
		t.Fatalf("missing evidence: %v", c.Evidence)
	}
}

func TestCheckO1FailsWhenGapSmall(t *testing.T) {
	e, s := paperGrids()
	// Make the ESSD as fast as the SSD: the contract clause must fail.
	for i := range e.Cells {
		e.Cells[i].Avg = s.Cells[i].Avg
		e.Cells[i].P999 = s.Cells[i].P999
	}
	c := CheckObservation1(e, s, Thresholds{})
	if c.Passed {
		t.Fatal("O1 passed with no latency gap")
	}
}

func TestCheckO2(t *testing.T) {
	essd := &harness.SustainedResult{Device: "essd", KneeCapFrac: 2.5, Throttled: true, WriteAmp: 1}
	ssd := &harness.SustainedResult{Device: "ssd", KneeCapFrac: 0.95, WriteAmp: 6, TailRate: 2e8}
	c := CheckObservation2(essd, ssd, Thresholds{})
	if !c.Passed {
		t.Fatalf("O2 failed: %v", c.Evidence)
	}
	// ESSD with no knee at all also passes ("disappears").
	essd.KneeCapFrac = -1
	if !CheckObservation2(essd, ssd, Thresholds{}).Passed {
		t.Fatal("O2 failed for knee-free ESSD")
	}
	// ESSD knee as early as the SSD's fails.
	essd.KneeCapFrac = 0.9
	if CheckObservation2(essd, ssd, Thresholds{}).Passed {
		t.Fatal("O2 passed with early ESSD knee")
	}
	// SSD baseline without a knee invalidates the comparison.
	essd.KneeCapFrac = 2.5
	ssd.KneeCapFrac = -1
	if CheckObservation2(essd, ssd, Thresholds{}).Passed {
		t.Fatal("O2 passed with knee-free SSD baseline")
	}
}

func TestCheckO3(t *testing.T) {
	essd := &harness.RandSeqResult{Device: "essd", Cells: []harness.RandSeqCell{
		{BlockSize: 16 << 10, QueueDepth: 32, RandBW: 1.0e9, SeqBW: 0.4e9},
	}}
	ssd := &harness.RandSeqResult{Device: "ssd", Cells: []harness.RandSeqCell{
		{BlockSize: 16 << 10, QueueDepth: 32, RandBW: 2.7e9, SeqBW: 2.7e9},
	}}
	if c := CheckObservation3(essd, ssd, Thresholds{}); !c.Passed {
		t.Fatalf("O3 failed: %v", c.Evidence)
	}
	// No ESSD gain: fail.
	essd.Cells[0].RandBW = essd.Cells[0].SeqBW
	if CheckObservation3(essd, ssd, Thresholds{}).Passed {
		t.Fatal("O3 passed without ESSD gain")
	}
	// SSD showing a large gain: fail (baseline should be flat).
	essd.Cells[0].RandBW = 1.0e9
	ssd.Cells[0].RandBW = 4e9
	if CheckObservation3(essd, ssd, Thresholds{}).Passed {
		t.Fatal("O3 passed with pattern-sensitive SSD")
	}
}

func TestCheckO4(t *testing.T) {
	essd := &harness.MixedResult{Device: "essd", Points: []harness.MixedPoint{
		{WriteRatioPct: 0, TotalBW: 3.0e9},
		{WriteRatioPct: 50, TotalBW: 3.02e9},
		{WriteRatioPct: 100, TotalBW: 2.98e9},
	}}
	ssd := &harness.MixedResult{Device: "ssd", Points: []harness.MixedPoint{
		{WriteRatioPct: 0, TotalBW: 3.5e9},
		{WriteRatioPct: 30, TotalBW: 4.3e9},
		{WriteRatioPct: 100, TotalBW: 2.6e9},
	}}
	if c := CheckObservation4(essd, ssd, Thresholds{}); !c.Passed {
		t.Fatalf("O4 failed: %v", c.Evidence)
	}
	// Widen the ESSD spread: fail.
	essd.Points[0].TotalBW = 1.5e9
	if CheckObservation4(essd, ssd, Thresholds{}).Passed {
		t.Fatal("O4 passed with non-deterministic ESSD")
	}
}

func TestCheckO4IOPS(t *testing.T) {
	r := &harness.IOPSResult{Device: "essd", Points: []harness.IOPSPoint{
		{BlockSize: 4 << 10, IOPS: 60000, Bytes: 0.25e9},
		{BlockSize: 256 << 10, IOPS: 12000, Bytes: 3.0e9},
	}}
	c := CheckObservation4IOPS(r, Thresholds{})
	if !c.Passed {
		t.Fatalf("size-coupled IOPS failed: %v", c.Evidence)
	}
	flat := &harness.IOPSResult{Device: "essd", Points: []harness.IOPSPoint{
		{BlockSize: 4 << 10, IOPS: 50000},
		{BlockSize: 256 << 10, IOPS: 49000},
	}}
	if CheckObservation4IOPS(flat, Thresholds{}).Passed {
		t.Fatal("flat IOPS passed the size-coupling check")
	}
}

func TestIOPSSpreadHelper(t *testing.T) {
	r := &harness.IOPSResult{Points: []harness.IOPSPoint{
		{IOPS: 100}, {IOPS: 50},
	}}
	if got := r.IOPSSpread(); got != 0.5 {
		t.Fatalf("spread = %v", got)
	}
	if (&harness.IOPSResult{}).IOPSSpread() != 0 {
		t.Fatal("empty spread")
	}
}

func TestReportFormatAndJSON(t *testing.T) {
	r := &Report{
		ESSD: "essd", SSD: "ssd",
		Checks: []Check{
			{ID: "O1", Title: "t1", Passed: true, Evidence: []string{"e1"}},
			{ID: "O2", Title: "t2", Passed: false, Evidence: []string{"e2"}},
		},
	}
	if r.Passed() {
		t.Fatal("report with failed check passed")
	}
	var buf bytes.Buffer
	Format(&buf, r)
	out := buf.String()
	for _, want := range []string{"[PASS] O1", "[FAIL] O2", "FAILED"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q:\n%s", want, out)
		}
	}
	js, err := r.MarshalIndent()
	if err != nil || !strings.Contains(string(js), "\"O1\"") {
		t.Fatalf("json: %v / %s", err, js)
	}
}

func TestAdvisor(t *testing.T) {
	r := &Report{ESSD: "essd", SSD: "ssd", Checks: []Check{
		{ID: "O1", Passed: true}, {ID: "O2", Passed: true},
		{ID: "O3", Passed: false}, {ID: "O4", Passed: true},
	}}
	var buf bytes.Buffer
	FormatAdvice(&buf, r)
	out := buf.String()
	if !strings.Contains(out, "[I1] (applies)") {
		t.Errorf("I1 should apply:\n%s", out)
	}
	if !strings.Contains(out, "[I3] (verify manually") {
		t.Errorf("I3 depends on failed O3:\n%s", out)
	}
	if len(Implications()) != 5 {
		t.Fatal("paper defines five implications")
	}
}

// TestEvaluateQuickIntegration runs the full checker end-to-end on ESSD-2
// against the local SSD with reduced grids.
func TestEvaluateQuickIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("integration checker skipped in -short")
	}
	essdF := func(seed uint64) blockdev.Device {
		d, _ := profiles.ByName("essd2", sim.NewEngine(), sim.NewRNG(seed, 1))
		return d
	}
	ssdF := func(seed uint64) blockdev.Device {
		d, _ := profiles.ByName("ssd", sim.NewEngine(), sim.NewRNG(seed, 2))
		return d
	}
	rep := Evaluate(essdF, ssdF, EvalOptions{
		Harness:     harness.Options{CellDuration: 150 * sim.Millisecond, Warmup: 30 * sim.Millisecond, Seed: 3},
		CapMultiple: 1.6, // enough to expose the SSD knee; ESSD-2 has none
		Quick:       true,
	})
	var buf bytes.Buffer
	Format(&buf, rep)
	if !rep.Passed() {
		t.Fatalf("contract checker failed on calibrated profiles:\n%s", buf.String())
	}
}
