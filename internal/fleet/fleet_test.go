package fleet

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"essdsim/internal/blockdev"
	"essdsim/internal/expgrid"
	"essdsim/internal/profiles"
	"essdsim/internal/sim"
	"essdsim/internal/trace"
	"essdsim/internal/workload"
)

// orderingSpec is the calibrated study behind TestFleetPolicyOrdering:
// eight tenants (two bursty all-write aggressors at catalog positions 0
// and 4, six steady victims) packed onto two backends. First-fit lands
// both aggressors plus three victims on backend 0; spread's round-robin
// stacks the two aggressors (positions 0 and 4) with two victims; the
// interference-aware policy separates the aggressors. At a 5 ms p99.9
// target that yields strictly ordered violation counts.
func orderingSpec() Spec {
	return Spec{
		Demands:  SyntheticDemands(8, 2),
		Backends: 2,
		SLOP999:  5 * sim.Millisecond,
		Seed:     7,
	}
}

// TestFleetPolicyOrdering is the suite's headline assertion: at equal
// backend count, spread beats first-fit on SLO violations, and the
// interference-aware policy beats spread at equal packing density — and
// the whole study is byte-identical across worker counts and simulates
// zero new cells on a cache-warm re-run.
func TestFleetPolicyOrdering(t *testing.T) {
	cache := expgrid.NewCache(0)
	spec := orderingSpec()
	spec.Cache = cache
	spec.Workers = 1
	rep, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	ff, sp, ia := rep.Policy("first-fit"), rep.Policy("spread"), rep.Policy("interference")
	if ff == nil || sp == nil || ia == nil {
		t.Fatal("missing a default policy report")
	}
	if ff.BackendsUsed > rep.Backends || sp.BackendsUsed != rep.Backends || ia.BackendsUsed != rep.Backends {
		t.Fatalf("backend counts: first-fit=%d spread=%d interference=%d of %d",
			ff.BackendsUsed, sp.BackendsUsed, ia.BackendsUsed, rep.Backends)
	}
	if sp.P999Violations > ff.P999Violations {
		t.Errorf("spread has %d p99.9 violations, first-fit %d: spread must dominate at equal backend count",
			sp.P999Violations, ff.P999Violations)
	}
	if ia.P999Violations > sp.P999Violations {
		t.Errorf("interference-aware has %d p99.9 violations, spread %d: interference must dominate at equal density",
			ia.P999Violations, sp.P999Violations)
	}
	// The calibrated catalog makes the chain strict, not merely ≤: losing
	// that means the co-location signal (or the policies) regressed.
	if !(ff.P999Violations > sp.P999Violations && sp.P999Violations > ia.P999Violations) {
		t.Errorf("violation chain not strict: first-fit=%d spread=%d interference=%d",
			ff.P999Violations, sp.P999Violations, ia.P999Violations)
	}
	if ia.WorstP999Inflation > sp.WorstP999Inflation {
		t.Errorf("interference worst p99.9 inflation %.2f exceeds spread's %.2f",
			ia.WorstP999Inflation, sp.WorstP999Inflation)
	}

	// Byte-identical across worker counts: same report, same CSV bytes.
	spec8 := orderingSpec()
	spec8.Workers = 8
	rep8, err := Run(context.Background(), spec8)
	if err != nil {
		t.Fatal(err)
	}
	rep8.CachedCells = rep.CachedCells // only bookkeeping may differ (cold vs cold here: both 0)
	if !reflect.DeepEqual(rep, rep8) {
		t.Fatal("fleet report differs between 1 and 8 workers")
	}
	var csv1, csv8 bytes.Buffer
	if err := WriteBackendsCSV(&csv1, rep); err != nil {
		t.Fatal(err)
	}
	if err := WriteBackendsCSV(&csv8, rep8); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csv1.Bytes(), csv8.Bytes()) {
		t.Fatal("fleet CSV differs between 1 and 8 workers")
	}

	// Cache-warm re-run: zero new cells, identical measurements.
	warm := orderingSpec()
	warm.Cache = cache
	warm.Workers = 8
	repW, err := Run(context.Background(), warm)
	if err != nil {
		t.Fatal(err)
	}
	if repW.CachedCells != repW.Cells {
		t.Fatalf("warm re-run simulated %d of %d cells", repW.Cells-repW.CachedCells, repW.Cells)
	}
	var csvW bytes.Buffer
	if err := WriteBackendsCSV(&csvW, repW); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csv1.Bytes(), csvW.Bytes()) {
		t.Fatal("cache-warm fleet CSV differs from cold run")
	}
}

// TestFleetCacheKeyedOnTemplates asserts that a cache built under one
// backend/volume template never serves a spec with a different one: the
// templates are Tenants-hook inputs the expgrid fingerprint cannot see,
// so they must be folded into the sweep label (a stale hit here would
// silently report the old hardware's measurements as the new one's).
func TestFleetCacheKeyedOnTemplates(t *testing.T) {
	cache := expgrid.NewCache(0)
	small := func() Spec {
		return Spec{
			Demands:  SyntheticDemands(3, 1),
			Policies: []PlacementPolicy{FirstFit{}},
			Backends: 1,
			Horizon:  500 * sim.Millisecond,
			Cache:    cache,
			Seed:     3,
		}
	}
	if _, err := Run(context.Background(), small()); err != nil {
		t.Fatal(err)
	}
	sameWarm, err := Run(context.Background(), small())
	if err != nil {
		t.Fatal(err)
	}
	if sameWarm.CachedCells != sameWarm.Cells {
		t.Fatalf("identical spec re-ran %d of %d cells", sameWarm.Cells-sameWarm.CachedCells, sameWarm.Cells)
	}
	slowCleaner := small()
	slowCleaner.Backend = profiles.NeighborBackendConfig()
	slowCleaner.Backend.Cluster.CleanerRate /= 8
	repB, err := Run(context.Background(), slowCleaner)
	if err != nil {
		t.Fatal(err)
	}
	if repB.CachedCells != 0 {
		t.Fatalf("changed backend template served %d cached cells", repB.CachedCells)
	}
	smallVolume := small()
	smallVolume.Volume = profiles.NeighborVolumeConfig("tenant")
	smallVolume.Volume.SpareFrac = 0.5
	repV, err := Run(context.Background(), smallVolume)
	if err != nil {
		t.Fatal(err)
	}
	if repV.CachedCells != 0 {
		t.Fatalf("changed volume template served %d cached cells", repV.CachedCells)
	}
}

// TestFleetPlacementPolicies pins each built-in policy's assignment on a
// hand-checked catalog, without any simulation.
func TestFleetPlacementPolicies(t *testing.T) {
	demands := SyntheticDemands(8, 2)
	if demands[0].Name != "aggr00" || demands[4].Name != "aggr01" {
		t.Fatalf("synthetic aggressors misplaced: %+v", demands)
	}
	cons := Constraints{Backends: 2, BackendBps: 0.9e9, WriteBps: 0.45e9, EffectiveBps: 1e9}

	for _, tc := range []struct {
		policy PlacementPolicy
		want   []int
	}{
		// First-fit by nominal rate: both aggressors (419 MB/s each) and
		// three victims fill backend 0 to ~897 MB/s, the rest overflow.
		{FirstFit{}, []int{0, 0, 0, 0, 0, 1, 1, 1}},
		// Spread round-robins by catalog position.
		{Spread{}, []int{0, 1, 0, 1, 0, 1, 0, 1}},
		// Interference-aware separates the heavy writers (catalog
		// positions 0 and 4) and balances the victims around them.
		{InterferenceAware{}, []int{0, 0, 1, 0, 1, 1, 0, 1}},
	} {
		got := tc.policy.Place(cons, demands)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s placement = %v, want %v", tc.policy.Name(), got, tc.want)
		}
	}

	// Best-fit packs write churn tightly: with both aggressors over the
	// write budget individually? no — each is under; the second must not
	// fit beside the first (419+419 > 450 write budget).
	bf := BestFit{}.Place(cons, demands)
	if bf[0] == bf[4] {
		t.Errorf("best-fit co-located both aggressors: %v", bf)
	}

	// Every policy is best-effort: an over-subscribed catalog still
	// places every demand in range.
	tiny := Constraints{Backends: 1, BackendBps: 1, WriteBps: 1}
	for _, p := range DefaultPolicies() {
		got := p.Place(tiny, demands)
		for i, b := range got {
			if b != 0 {
				t.Errorf("%s placed demand %d on backend %d of 1", p.Name(), i, b)
			}
		}
	}
}

// TestFleetSpecValidation covers the error paths of Spec and Demand
// validation.
func TestFleetSpecValidation(t *testing.T) {
	base := func() Spec { return Spec{Demands: SyntheticDemands(4, 1), Seed: 1} }
	for name, mutate := range map[string]func(*Spec){
		"no demands": func(s *Spec) { s.Demands = nil },
		"dup name":   func(s *Spec) { s.Demands[1].Name = s.Demands[0].Name },
		"bad char":   func(s *Spec) { s.Demands[2].Name = "a+b" },
		"no rate":    func(s *Spec) { s.Demands[1].RatePerSec = 0 },
		"no size":    func(s *Spec) { s.Demands[1].BlockSize = 0 },
		"bad ratio":  func(s *Spec) { s.Demands[1].WriteRatioPct = 101 },
		"empty name": func(s *Spec) { s.Demands[3].Name = "" },
	} {
		s := base()
		mutate(&s)
		if _, err := Run(context.Background(), s); err == nil {
			t.Errorf("%s: spec accepted", name)
		}
	}
}

// TestDemandFromTrace checks the trace→demand bridge: fitted rate, write
// mix, and block rounding, plus the no-defined-rate error path.
func TestDemandFromTrace(t *testing.T) {
	recs := []trace.Record{
		{At: 0, Op: blockdev.Write, Offset: 0, Size: 5000},
		{At: 100 * sim.Millisecond, Op: blockdev.Read, Offset: 8192, Size: 4096},
		{At: 200 * sim.Millisecond, Op: blockdev.Write, Offset: 0, Size: 4096},
	}
	d, err := DemandFromTrace("src1", recs, 1<<20, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if d.RatePerSec < 9.9 || d.RatePerSec > 10.1 {
		t.Errorf("rate = %v, want ~10/s (2 gaps over 200 ms)", d.RatePerSec)
	}
	if d.WriteRatioPct != 67 {
		t.Errorf("write ratio = %d%%, want 67%% (2 of 3)", d.WriteRatioPct)
	}
	// Mean fitted size: 5000→8192 rounded, others 4096 → mean 5461 → one
	// more rounding up to whole blocks = 8192.
	if d.BlockSize != 8192 {
		t.Errorf("block size = %d, want 8192", d.BlockSize)
	}
	if d.Arrival != workload.Poisson {
		t.Errorf("arrival = %v, want poisson", d.Arrival)
	}

	if _, err := DemandFromTrace("x", recs[:1], 1<<20, 4096); err == nil {
		t.Error("single-record trace accepted (no defined rate)")
	}
	if _, err := DemandFromTrace("x", nil, 1<<20, 4096); err == nil {
		t.Error("empty trace accepted")
	}
}

// TestSyntheticDemands pins the catalog generator's shape: aggressor
// count, spacing, and unique names.
func TestSyntheticDemands(t *testing.T) {
	d := SyntheticDemands(9, 3)
	if len(d) != 9 {
		t.Fatalf("len = %d, want 9", len(d))
	}
	var aggrs []int
	seen := map[string]bool{}
	for i, dem := range d {
		if err := dem.Validate(); err != nil {
			t.Fatalf("demand %d invalid: %v", i, err)
		}
		if seen[dem.Name] {
			t.Fatalf("duplicate name %q", dem.Name)
		}
		seen[dem.Name] = true
		if dem.WriteRatioPct == 100 {
			aggrs = append(aggrs, i)
		}
	}
	if !reflect.DeepEqual(aggrs, []int{0, 3, 6}) {
		t.Fatalf("aggressors at %v, want [0 3 6]", aggrs)
	}
	if n := len(SyntheticDemands(3, 5)); n != 3 {
		t.Fatalf("over-asked catalog has %d demands", n)
	}
}

// TestFleetCellNaming checks that cell identity is the membership alone —
// unique names per population, solo controls deduped by demand shape, and
// two policies producing the same co-location sharing one cell.
func TestFleetCellNaming(t *testing.T) {
	s := orderingSpec().withDefaults()
	cons := s.constraints()
	assignments := make([][]int, len(s.Policies))
	for i, p := range s.Policies {
		assignments[i] = p.Place(cons, s.Demands)
	}
	// Two policies with identical placements must share cells.
	assignments = append(assignments, assignments[0])
	refs0 := len(assignments) - 1
	defs, refs := s.cells(assignments)
	names := map[string]bool{}
	solos := 0
	for _, def := range defs {
		if names[def.name] {
			t.Fatalf("duplicate cell name %q", def.name)
		}
		names[def.name] = true
		if def.solo {
			solos++
			if !strings.HasPrefix(def.name, "solo[") {
				t.Fatalf("solo cell named %q", def.name)
			}
		}
	}
	// Two distinct demand shapes → two solo controls, shared by all
	// policies.
	if solos != 2 {
		t.Fatalf("%d solo cells, want 2", solos)
	}
	if !reflect.DeepEqual(refs[0], refs[refs0]) {
		t.Fatalf("identical placements did not share cells: %v vs %v", refs[0], refs[refs0])
	}
}
