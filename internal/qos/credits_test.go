package qos

import (
	"testing"

	"essdsim/internal/sim"
)

func TestCreditBucketStartsFull(t *testing.T) {
	eng := sim.NewEngine()
	c := NewCreditBucket(eng, 100e6, 300e6, 1e9)
	if c.Credits() != 1e9 {
		t.Fatalf("credits = %v", c.Credits())
	}
	if c.RateNow() != 300e6 {
		t.Fatalf("rate = %v, want burst", c.RateNow())
	}
}

func TestCreditBucketBurstThenBaseline(t *testing.T) {
	eng := sim.NewEngine()
	// 1 GB of credits, burst 300 MB/s over a 100 MB/s baseline: bursting
	// drains 2/3 credit per byte, so 1.5 GB of burst-rate I/O empties it.
	c := NewCreditBucket(eng, 100e6, 300e6, 1e9)
	d1 := c.Spend(1500e6)
	if got := d1.Seconds(); got < 4.9 || got > 5.1 {
		t.Fatalf("burst spend took %.2fs, want ≈5s at 300MB/s", got)
	}
	if c.Credits() > 1e6 {
		t.Fatalf("credits not drained: %v", c.Credits())
	}
	if c.RateNow() != 100e6 {
		t.Fatalf("post-burst rate %v, want baseline", c.RateNow())
	}
	d2 := c.Spend(100e6)
	if got := d2.Seconds(); got < 0.99 || got > 1.01 {
		t.Fatalf("baseline spend took %.2fs, want ≈1s", got)
	}
	if c.Exhaustions() == 0 {
		t.Fatal("exhaustion not counted")
	}
}

func TestCreditBucketRefillsOverTime(t *testing.T) {
	eng := sim.NewEngine()
	c := NewCreditBucket(eng, 100e6, 300e6, 1e9)
	c.Spend(1500e6) // drain
	// Idle 5 simulated seconds: earn 500 MB of credits.
	eng.Schedule(5*sim.Second, func() {})
	eng.Run()
	if got := c.Credits(); got < 499e6 || got > 501e6 {
		t.Fatalf("refilled credits = %v, want ≈500e6", got)
	}
	if c.RateNow() != 300e6 {
		t.Fatal("burst not restored after refill")
	}
}

func TestCreditBucketCapsAtCapacity(t *testing.T) {
	eng := sim.NewEngine()
	c := NewCreditBucket(eng, 100e6, 300e6, 1e9)
	eng.Schedule(100*sim.Second, func() {})
	eng.Run()
	if got := c.Credits(); got != 1e9 {
		t.Fatalf("credits exceeded capacity: %v", got)
	}
}

func TestCreditBucketMixedSpend(t *testing.T) {
	eng := sim.NewEngine()
	// Tiny credit bank: a large spend straddles burst and baseline.
	c := NewCreditBucket(eng, 100e6, 300e6, 100e6)
	// 100 MB credits cover 150 MB at burst (2/3 credit per byte); the
	// remaining 150 MB go at baseline: 0.5s + 1.5s = 2s.
	d := c.Spend(300e6)
	if got := d.Seconds(); got < 1.95 || got > 2.05 {
		t.Fatalf("mixed spend took %.2fs, want ≈2s", got)
	}
}

func TestAcquireSerializesConcurrentSpends(t *testing.T) {
	eng := sim.NewEngine()
	// No credits: pure 100 MB/s baseline. 32 concurrent 10 MB acquires
	// must drain in ~3.2 s total, not in parallel.
	c := NewCreditBucket(eng, 100e6, 100e6, 0)
	var last sim.Time
	for i := 0; i < 32; i++ {
		c.Acquire(10e6, func() { last = eng.Now() })
	}
	eng.Run()
	got := sim.Duration(last).Seconds()
	if got < 3.1 || got > 3.3 {
		t.Fatalf("32x10MB at 100MB/s drained in %.2fs, want ≈3.2s", got)
	}
}

func TestAcquireFIFO(t *testing.T) {
	eng := sim.NewEngine()
	c := NewCreditBucket(eng, 100e6, 100e6, 0)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		c.Acquire(1e6, func() { order = append(order, i) })
	}
	eng.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("acquire order %v", order)
		}
	}
}

func TestCreditBucketDegenerate(t *testing.T) {
	eng := sim.NewEngine()
	c := NewCreditBucket(eng, 100e6, 50e6, 0) // burst < baseline: clamped
	if c.Burst() != 100e6 {
		t.Fatalf("burst = %v", c.Burst())
	}
	if d := c.Spend(0); d != 0 {
		t.Fatalf("zero spend = %v", d)
	}
	// No credits, burst == baseline: pure baseline service.
	if got := c.Spend(100e6).Seconds(); got < 0.99 || got > 1.01 {
		t.Fatalf("baseline-only spend %.2fs", got)
	}
}
