// Package stats provides the measurement layer of the simulator: HDR-style
// latency histograms with accurate high percentiles, throughput time series,
// and small online-statistics helpers. All quantities are recorded in
// simulated time.
package stats

import (
	"fmt"
	"math"
	"math/bits"

	"essdsim/internal/sim"
)

// Histogram is a log-linear (HDR-style) histogram of durations. Values are
// bucketed with a relative resolution of about 1/subBuckets per power of
// two, which keeps high percentiles (p99.9) accurate to a few percent across
// nanoseconds-to-minutes ranges with a few KiB of memory.
type Histogram struct {
	counts []uint32
	count  uint64
	sum    float64
	min    sim.Duration
	max    sim.Duration
}

const (
	subBucketBits  = 5 // 32 sub-buckets per octave => ~3% resolution
	subBuckets     = 1 << subBucketBits
	histogramSlots = 64 * subBuckets
)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{
		counts: make([]uint32, histogramSlots),
		min:    math.MaxInt64,
	}
}

func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subBuckets {
		return int(v)
	}
	// exp is the position of the highest set bit; shifting by
	// exp-subBucketBits maps the value into [subBuckets, 2*subBuckets).
	exp := 63 - bits.LeadingZeros64(uint64(v))
	shift := uint(exp - subBucketBits)
	m := int(v >> shift) // in [subBuckets, 2*subBuckets)
	idx := (exp-subBucketBits+1)*subBuckets + (m - subBuckets)
	if idx >= histogramSlots {
		idx = histogramSlots - 1
	}
	return idx
}

// bucketMid returns a representative value for bucket i (the midpoint of the
// bucket's value range), bounding relative percentile error to ~1/(2*subBuckets).
func bucketMid(i int) int64 {
	if i < subBuckets {
		return int64(i)
	}
	oct := i / subBuckets // >= 1
	sub := i % subBuckets
	shift := uint(oct - 1)
	lo := (int64(subBuckets) + int64(sub)) << shift
	width := int64(1) << shift
	return lo + width/2
}

// Record adds one duration observation.
func (h *Histogram) Record(d sim.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)]++
	h.count++
	h.sum += float64(v)
	if d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the mean of recorded observations (0 if empty).
func (h *Histogram) Mean() sim.Duration {
	if h.count == 0 {
		return 0
	}
	return sim.Duration(h.sum / float64(h.count))
}

// Min returns the smallest recorded observation (0 if empty).
func (h *Histogram) Min() sim.Duration {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded observation (0 if empty).
func (h *Histogram) Max() sim.Duration {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Percentile returns the value at quantile p in [0,100]. The exact recorded
// min/max are returned at the extremes; interior quantiles are accurate to
// the bucket resolution (~3%).
func (h *Histogram) Percentile(p float64) sim.Duration {
	if h.count == 0 {
		return 0
	}
	if p <= 0 {
		return h.Min()
	}
	if p >= 100 {
		return h.Max()
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += uint64(c)
		if cum >= rank {
			v := bucketMid(i)
			if sim.Duration(v) > h.max {
				return h.max
			}
			if sim.Duration(v) < h.min {
				return h.min
			}
			return sim.Duration(v)
		}
	}
	return h.Max()
}

// percentileAcross returns the value at quantile p over the union of the
// given histograms (nil entries are skipped), exactly as if they had been
// merged into one histogram first — same bucket resolution, same min/max
// clamping — but without allocating the merged copy.
func percentileAcross(hists []*Histogram, p float64) sim.Duration {
	var total uint64
	min := sim.Duration(math.MaxInt64)
	var max sim.Duration
	for _, h := range hists {
		if h == nil || h.count == 0 {
			continue
		}
		total += h.count
		if h.min < min {
			min = h.min
		}
		if h.max > max {
			max = h.max
		}
	}
	if total == 0 {
		return 0
	}
	if p <= 0 {
		return min
	}
	if p >= 100 {
		return max
	}
	rank := uint64(math.Ceil(p / 100 * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < histogramSlots; i++ {
		for _, h := range hists {
			if h != nil {
				cum += uint64(h.counts[i])
			}
		}
		if cum >= rank {
			v := sim.Duration(bucketMid(i))
			if v > max {
				return max
			}
			if v < min {
				return min
			}
			return v
		}
	}
	return max
}

// Merge adds all observations from other into h.
func (h *Histogram) Merge(other *Histogram) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.count += other.count
	h.sum += other.sum
	if other.count > 0 {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
}

// Reset clears the histogram.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.count = 0
	h.sum = 0
	h.min = math.MaxInt64
	h.max = 0
}

// Summary is a compact snapshot of a histogram, convenient for tables.
type Summary struct {
	Count uint64
	Mean  sim.Duration
	P50   sim.Duration
	P99   sim.Duration
	P999  sim.Duration
	Max   sim.Duration
}

// Summarize returns the standard snapshot of the histogram.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.count,
		Mean:  h.Mean(),
		P50:   h.Percentile(50),
		P99:   h.Percentile(99),
		P999:  h.Percentile(99.9),
		Max:   h.Max(),
	}
}

// String formats the summary in a single fio-like line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d avg=%v p50=%v p99=%v p99.9=%v max=%v",
		s.Count, s.Mean, s.P50, s.P99, s.P999, s.Max)
}
