package cluster

import (
	"testing"
	"testing/quick"

	"essdsim/internal/sim"
)

func testConfig() Config {
	return Config{
		Nodes:        8,
		ChunkBytes:   2 << 20,
		Replicas:     3,
		WriteSlots:   2,
		WriteService: sim.Const{V: 50 * sim.Microsecond},
		StreamBW:     1e9,
		ReplBW:       2e9,
		ReplHop:      sim.Const{V: 40 * sim.Microsecond},
		ReadSlots:    4,
		ReadService:  sim.Const{V: 200 * sim.Microsecond},
		ReadBW:       1e9,
		CleanerRate:  1e6,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Nodes = 0 },
		func(c *Config) { c.ChunkBytes = 100 },
		func(c *Config) { c.Replicas = 0 },
		func(c *Config) { c.Replicas = 99 },
		func(c *Config) { c.WriteSlots = 0 },
		func(c *Config) { c.StreamBW = 0 },
		func(c *Config) { c.WriteService = nil },
		func(c *Config) { c.CleanerRate = -1 },
	}
	for i, mutate := range cases {
		c := testConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestPlacementDeterministicAndSpread(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng, testConfig(), sim.NewRNG(1, 1))
	counts := make([]int, c.NumNodes())
	for chunk := int64(0); chunk < 4096; chunk++ {
		n := c.NodeOfChunk(chunk)
		if n != c.NodeOfChunk(chunk) {
			t.Fatal("placement not deterministic")
		}
		counts[n]++
	}
	// Spread: each node should hold roughly 4096/8 = 512 chunks.
	for i, n := range counts {
		if n < 380 || n > 650 {
			t.Fatalf("node %d holds %d chunks, want ≈512", i, n)
		}
	}
	// Adjacent chunks should not all map to the same node.
	same := 0
	for chunk := int64(0); chunk < 100; chunk++ {
		if c.NodeOfChunk(chunk) == c.NodeOfChunk(chunk+1) {
			same++
		}
	}
	if same > 40 {
		t.Fatalf("adjacent chunks co-located %d/100 times", same)
	}
}

func TestWriteLatencyComponents(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng, testConfig(), sim.NewRNG(1, 1))
	var at sim.Time
	c.Write(0, 4096, func() { at = eng.Now() })
	eng.Run()
	// Replica leg dominates: repl transfer ~2µs + hop 40 + svc 50 + hop 40 ≈ 132µs.
	want := sim.Time(132 * sim.Microsecond)
	if at < want-sim.Time(5*sim.Microsecond) || at > want+sim.Time(10*sim.Microsecond) {
		t.Fatalf("replicated write at %v, want ≈%v", sim.Duration(at), sim.Duration(want))
	}
}

func TestWriteSingleReplica(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testConfig()
	cfg.Replicas = 1
	c := New(eng, cfg, sim.NewRNG(1, 1))
	var at sim.Time
	c.Write(0, 4096, func() { at = eng.Now() })
	eng.Run()
	// Primary leg only: stream ~4µs + svc 50µs.
	if at > sim.Time(60*sim.Microsecond) {
		t.Fatalf("single-replica write at %v", sim.Duration(at))
	}
}

func TestSequentialWritesSerializeOnOneNode(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng, testConfig(), sim.NewRNG(1, 1))
	// Many writes to the same chunk must be limited by the primary's
	// stream/slots; spread writes go faster.
	const n = 64
	const bytes = 256 << 10
	var doneSame sim.Time
	for i := 0; i < n; i++ {
		c.Write(7, bytes, func() { doneSame = eng.Now() })
	}
	eng.Run()
	sameElapsed := doneSame

	eng2 := sim.NewEngine()
	c2 := New(eng2, testConfig(), sim.NewRNG(1, 1))
	var doneSpread sim.Time
	for i := 0; i < n; i++ {
		c2.Write(int64(i), bytes, func() { doneSpread = eng2.Now() })
	}
	eng2.Run()
	if doneSpread*2 > sameElapsed {
		t.Fatalf("spread writes (%v) not ≥2x faster than same-chunk (%v)",
			sim.Duration(doneSpread), sim.Duration(sameElapsed))
	}
}

func TestReadPath(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng, testConfig(), sim.NewRNG(1, 1))
	var at sim.Time
	c.Read(3, 4096, func() { at = eng.Now() })
	eng.Run()
	// svc 200µs + 4µs transfer.
	if at < sim.Time(200*sim.Microsecond) || at > sim.Time(210*sim.Microsecond) {
		t.Fatalf("read at %v", sim.Duration(at))
	}
	st := c.NodeStats(c.NodeOfChunk(3))
	if st.Reads != 1 || st.ReadBytes != 4096 {
		t.Fatalf("node stats %+v", st)
	}
}

func TestDebtAccrualAndDecay(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testConfig()
	cfg.CleanerRate = 1000 // 1000 B/s
	c := New(eng, cfg, sim.NewRNG(1, 1))
	c.AddDebt(5000)
	if got := c.Debt(); got != 5000 {
		t.Fatalf("debt = %d", got)
	}
	eng.Schedule(sim.Duration(2*sim.Second), func() {})
	eng.Run()
	// After 2 s the cleaner drained 2000.
	if got := c.Debt(); got != 3000 {
		t.Fatalf("debt after decay = %d, want 3000", got)
	}
	eng.Schedule(sim.Duration(10*sim.Second), func() {})
	eng.Run()
	if got := c.Debt(); got != 0 {
		t.Fatalf("debt floor = %d, want 0", got)
	}
}

func TestDebtZeroCleaner(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testConfig()
	cfg.CleanerRate = 0
	c := New(eng, cfg, sim.NewRNG(1, 1))
	c.AddDebt(100)
	eng.Schedule(sim.Duration(10*sim.Second), func() {})
	eng.Run()
	if c.Debt() != 100 {
		t.Fatalf("debt with zero cleaner = %d", c.Debt())
	}
}

// Property: replicated writes always complete, and primary stats count
// exactly the submitted operations.
func TestWriteCompletionProperty(t *testing.T) {
	f := func(chunks []uint16) bool {
		eng := sim.NewEngine()
		c := New(eng, testConfig(), sim.NewRNG(9, 9))
		completed := 0
		for _, ch := range chunks {
			c.Write(int64(ch), 4096, func() { completed++ })
		}
		eng.Run()
		if completed != len(chunks) {
			return false
		}
		var writes uint64
		for i := 0; i < c.NumNodes(); i++ {
			writes += c.NodeStats(i).Writes
		}
		return writes == uint64(len(chunks))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
