package churn

import (
	"essdsim/internal/expgrid"
	"essdsim/internal/fleet"
	"essdsim/internal/sim"
)

// EpochReport is one control epoch's measured outcome: the population
// after that epoch's events and migrations, simulated for one horizon.
type EpochReport struct {
	Epoch   int
	Tenants int

	// Nominal (provider-visible) packing state.
	BackendsUsed int
	OfferedBps   float64
	// MeanUtilization is offered load over the budget of the backends in
	// use; StrandedBps is the budget headroom locked on those backends
	// (capacity a new tenant cannot get as one contiguous slot).
	MeanUtilization float64
	StrandedBps     float64

	// Lifecycle events applied at the start of the epoch.
	Creates, Deletes, Expands, Shrinks, Snapshots int
	Migrations                                    int
	MoveBytes                                     int64

	// Measured outcome across the epoch's backends.
	P99Violations, P999Violations int
	ThrottledTenants              int
	AchievedBps                   float64
	WorstP99, WorstP999           sim.Duration
	SharedDebt                    int64 // pooled cleaner debt summed over backends
	CachedBackends                int   // backends served from the sweep cache
}

// Report is the churn study's full outcome: the per-epoch time series
// plus the complete event audit trail and fleet-level totals.
type Report struct {
	Placement  string
	Rebalancer string

	Backends   int
	BackendBps float64
	SLOP99     sim.Duration
	SLOP999    sim.Duration
	EpochLen   sim.Duration

	Epochs []EpochReport
	Events []EventRecord // every applied event and migration, in order

	TotalMigrations                         int
	TotalMoveBytes                          int64
	TotalP99Violations, TotalP999Violations int

	// Cells and CachedCells count the distinct expgrid simulations
	// behind the whole timeline (deduplicated across epochs) and how
	// many were served from the sweep cache.
	Cells       int
	CachedCells int
}

// fold assembles the time-series report from the epoch plans and the
// deduplicated cell results.
func (s Spec) fold(plans []epochPlan, cells []fleet.MixCell, results []expgrid.CellResult) *Report {
	rep := &Report{
		Placement:  s.Placement.Name(),
		Rebalancer: s.Rebalancer.Name(),
		Backends:   s.Fleet.Backends,
		BackendBps: s.Fleet.BackendBps,
		SLOP99:     s.Fleet.SLOP99,
		SLOP999:    s.Fleet.SLOP999,
		EpochLen:   s.Fleet.Horizon,
		Cells:      len(results),
	}
	for _, r := range results {
		if r.Cached {
			rep.CachedCells++
		}
	}
	for e, plan := range plans {
		er := EpochReport{Epoch: e, Tenants: plan.tenants, OfferedBps: plan.offered}
		for _, rec := range plan.events {
			switch rec.Kind {
			case Create:
				er.Creates++
			case Delete:
				er.Deletes++
			case Expand:
				er.Expands++
			case Shrink:
				er.Shrinks++
			case Snapshot:
				er.Snapshots++
			case Migrate:
				er.Migrations++
				er.MoveBytes += rec.MoveBytes
			}
			rep.Events = append(rep.Events, rec)
		}
		var usedBudget float64
		for _, ref := range plan.refs {
			r := results[ref.cell]
			info := r.Info.(fleet.CellInfo)
			er.BackendsUsed++
			usedBudget += s.Fleet.BackendBps
			er.SharedDebt += info.SharedDebt
			if r.Cached {
				er.CachedBackends++
			}
			var offered float64
			var bytes int64
			var longest sim.Duration
			for mi := range cells[ref.cell].Members {
				offered += cells[ref.cell].Members[mi].OfferedBps()
				tr := r.Mix[mi]
				sum := tr.Open.Lat.Summarize()
				if s.Fleet.SLOP99 > 0 && sum.P99 > s.Fleet.SLOP99 {
					er.P99Violations++
				}
				if s.Fleet.SLOP999 > 0 && sum.P999 > s.Fleet.SLOP999 {
					er.P999Violations++
				}
				if info.Tenants[mi].Throttled {
					er.ThrottledTenants++
				}
				if sum.P99 > er.WorstP99 {
					er.WorstP99 = sum.P99
				}
				if sum.P999 > er.WorstP999 {
					er.WorstP999 = sum.P999
				}
				bytes += tr.Open.Bytes
				if tr.Open.Elapsed > longest {
					longest = tr.Open.Elapsed
				}
			}
			if longest > 0 {
				er.AchievedBps += float64(bytes) / longest.Seconds()
			}
			if head := s.Fleet.BackendBps - offered; head > 0 {
				er.StrandedBps += head
			}
		}
		if usedBudget > 0 {
			er.MeanUtilization = er.OfferedBps / usedBudget
		}
		rep.TotalMigrations += er.Migrations
		rep.TotalMoveBytes += er.MoveBytes
		rep.TotalP99Violations += er.P99Violations
		rep.TotalP999Violations += er.P999Violations
		rep.Epochs = append(rep.Epochs, er)
	}
	return rep
}
