// Package flash models the timing of a NAND flash array: channels, dies,
// planes, and the asymmetric latencies of read, program and erase
// operations (paper §II-A). It is purely a timing model — which pages hold
// which data is the FTL's business (package ftl).
package flash

import (
	"fmt"

	"essdsim/internal/sim"
)

// Config describes the geometry and timing of a flash array.
type Config struct {
	Channels       int   // independent buses
	DiesPerChannel int   // dies sharing one channel
	PlanesPerDie   int   // planes programmed together in multi-plane ops
	PagesPerBlock  int   // flash pages per block (per plane)
	BlocksPerPlane int   // physical blocks per plane
	PageSize       int64 // flash page size in bytes (e.g. 16 KiB)

	ReadLatency    sim.Duration // tR: media read of one page
	ProgramLatency sim.Duration // tPROG: multi-plane program of one page per plane
	EraseLatency   sim.Duration // tBERS: block erase (all planes)

	// Optional per-operation latency distributions. When nil, the constant
	// latencies above are used. Real TLC program times vary several-fold
	// page-to-page (LSB/CSB/MSB), which is what gives a saturated write
	// buffer its bursty drain and realistic tail latencies.
	ReadDist    sim.Dist
	ProgramDist sim.Dist
	EraseDist   sim.Dist

	ChannelBW float64 // bytes/s transferred on one channel
}

// Dies returns the total number of dies in the array.
func (c Config) Dies() int { return c.Channels * c.DiesPerChannel }

// ProgramUnitBytes returns the bytes written by one multi-plane program.
func (c Config) ProgramUnitBytes() int64 { return int64(c.PlanesPerDie) * c.PageSize }

// BlockBytes returns the bytes in one block (single plane).
func (c Config) BlockBytes() int64 { return int64(c.PagesPerBlock) * c.PageSize }

// Validate reports a descriptive error for nonsensical geometry.
func (c Config) Validate() error {
	switch {
	case c.Channels < 1, c.DiesPerChannel < 1, c.PlanesPerDie < 1:
		return fmt.Errorf("flash: geometry must be positive: %+v", c)
	case c.PagesPerBlock < 1, c.BlocksPerPlane < 1, c.PageSize < 512:
		return fmt.Errorf("flash: block layout invalid: %+v", c)
	case c.ReadLatency <= 0 || c.ProgramLatency <= 0 || c.EraseLatency <= 0:
		return fmt.Errorf("flash: latencies must be positive: %+v", c)
	case c.ChannelBW <= 0:
		return fmt.Errorf("flash: channel bandwidth must be positive")
	}
	return nil
}

// Counters tallies media operations for write-amplification accounting.
type Counters struct {
	PageReads    uint64
	UnitPrograms uint64
	BlockErases  uint64
}

// Array is a flash array timing model. Each die serializes its operations;
// each channel is a bandwidth pipe shared by the dies attached to it.
type Array struct {
	eng      *sim.Engine
	cfg      Config
	rng      *sim.RNG
	dies     []*sim.Server
	channels []*sim.Pipe
	counters Counters
}

// NewArray builds the array on the given engine. rng drives the optional
// per-operation latency distributions. It panics on invalid geometry (a
// construction-time programming error).
func NewArray(eng *sim.Engine, cfg Config, rng *sim.RNG) *Array {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.ReadDist == nil {
		cfg.ReadDist = sim.Const{V: cfg.ReadLatency}
	}
	if cfg.ProgramDist == nil {
		cfg.ProgramDist = sim.Const{V: cfg.ProgramLatency}
	}
	if cfg.EraseDist == nil {
		cfg.EraseDist = sim.Const{V: cfg.EraseLatency}
	}
	if rng == nil {
		rng = sim.NewRNG(0x5f1a54, 0xf1a5)
	}
	a := &Array{eng: eng, cfg: cfg, rng: rng}
	n := cfg.Dies()
	a.dies = make([]*sim.Server, n)
	for i := range a.dies {
		a.dies[i] = sim.NewServer(eng, fmt.Sprintf("die%d", i), 1)
	}
	a.channels = make([]*sim.Pipe, cfg.Channels)
	for i := range a.channels {
		a.channels[i] = sim.NewPipe(eng, fmt.Sprintf("chan%d", i), cfg.ChannelBW)
	}
	return a
}

// Config returns the array configuration.
func (a *Array) Config() Config { return a.cfg }

// Counters returns a snapshot of the media-operation counters.
func (a *Array) Counters() Counters { return a.counters }

func (a *Array) channelOf(die int) *sim.Pipe {
	return a.channels[die/a.cfg.DiesPerChannel]
}

// ReadPage performs a media read of one flash page on the given die and
// transfers it over the die's channel. done fires when the data has left the
// channel.
func (a *Array) ReadPage(die int, done func()) {
	a.counters.PageReads++
	ch := a.channelOf(die)
	a.dies[die].Visit(a.cfg.ReadDist.Sample(a.rng), func() {
		ch.Transfer(a.cfg.PageSize, done)
	})
}

// ProgramUnit transfers one multi-plane program unit over the channel and
// programs it. done fires when the program completes and the unit's pages
// are durable.
func (a *Array) ProgramUnit(die int, done func()) {
	a.counters.UnitPrograms++
	ch := a.channelOf(die)
	ch.Transfer(a.cfg.ProgramUnitBytes(), func() {
		a.dies[die].Visit(a.cfg.ProgramDist.Sample(a.rng), done)
	})
}

// EraseBlockColumn erases one block column (all planes) on the given die.
func (a *Array) EraseBlockColumn(die int, done func()) {
	a.counters.BlockErases++
	a.dies[die].Visit(a.cfg.EraseDist.Sample(a.rng), done)
}

// DieQueueLen returns the number of waiting ops on a die, useful to throttle
// background work such as prefetch.
func (a *Array) DieQueueLen(die int) int { return a.dies[die].QueueLen() }

// DieBusyTime returns the accumulated busy time of a die.
func (a *Array) DieBusyTime(die int) sim.Duration { return a.dies[die].BusyTime() }
