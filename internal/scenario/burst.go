package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"essdsim/internal/blockdev"
	"essdsim/internal/expgrid"
	"essdsim/internal/profiles"
	"essdsim/internal/sim"
	"essdsim/internal/stats"
	"essdsim/internal/workload"
)

// BurstSweep declares a burst-credit exhaustion suite: mixed random I/O
// across write-ratio × arrival-shape × offered-rate on each burstable
// device, run open-loop so the offered timeline (not device back-pressure)
// drives credit consumption. Zero-valued fields take defaults.
type BurstSweep struct {
	// Devices are the volume tiers under test (default BurstTierDevices).
	// Non-burstable devices are allowed; their credit columns read as
	// "not burstable".
	Devices []expgrid.NamedFactory

	WriteRatiosPct []int              // default 0, 50, 100
	Arrivals       []workload.Arrival // default Uniform, Bursty
	RatesPerSec    []float64          // offered req/s (default 1500, 3000)

	BlockSize int64  // bytes per request (default 256 KiB)
	Ops       uint64 // requests per cell (default 12000)

	// Cache, when non-nil, serves already-computed cells from the
	// sweep-level result cache instead of re-simulating them; a warm
	// re-run of the same suite executes zero new cells and reports
	// byte-identical results.
	Cache *expgrid.Cache

	Seed    uint64
	Workers int    // expgrid pool size (0 = GOMAXPROCS)
	Label   string // seed decorrelation label (default "burst")

	// OnProgress, when non-nil, receives one expgrid.Progress per
	// completed cell (elapsed/ETA and cached count included). Invoked
	// serially, display-only.
	OnProgress func(expgrid.Progress)
}

func (s BurstSweep) withDefaults() BurstSweep {
	if len(s.Devices) == 0 {
		s.Devices = BurstTierDevices()
	}
	if len(s.WriteRatiosPct) == 0 {
		s.WriteRatiosPct = []int{0, 50, 100}
	}
	if len(s.Arrivals) == 0 {
		s.Arrivals = []workload.Arrival{workload.Uniform, workload.Bursty}
	}
	if len(s.RatesPerSec) == 0 {
		s.RatesPerSec = []float64{1500, 3000}
	}
	if s.BlockSize <= 0 {
		s.BlockSize = 256 << 10
	}
	if s.Ops == 0 {
		s.Ops = 12000
	}
	if s.Label == "" {
		s.Label = "burst"
	}
	return s
}

// BurstTierDevices returns the default device axis: the two calibrated
// burstable tiers (gp2 class and its smaller sibling).
func BurstTierDevices() []expgrid.NamedFactory {
	return []expgrid.NamedFactory{
		{Name: "gp2", New: profileFactory("gp2")},
		{Name: "gp2s", New: profileFactory("gp2s")},
	}
}

func profileFactory(name string) expgrid.Factory {
	return func(seed uint64) blockdev.Device {
		dev, err := profiles.ByName(name, sim.AcquireEngine(), sim.NewRNG(seed, seed^0x5c))
		if err != nil {
			panic(err) // expgrid recovers this into CellResult.Err
		}
		return dev
	}
}

// BurstCell is one measured point of the suite.
type BurstCell struct {
	Device        string
	WriteRatioPct int
	Arrival       workload.Arrival
	RatePerSec    float64 // offered requests/s
	OfferedBps    float64 // offered bytes/s (rate × block size)

	Ops            uint64
	Bytes          int64
	Elapsed        sim.Duration
	Lat            stats.Summary
	MaxOutstanding int

	// Credit state captured on the still-alive device after the run.
	Burstable bool
	// CreditsLeft is the balance when the cell finished draining — spends
	// are charged at enqueue time, so it includes credits re-earned while
	// the backlog completed and can sit well above the mid-run trough.
	CreditsLeft float64
	Exhaustions uint64       // times the balance hit zero
	ExhaustedAt sim.Duration // time to first exhaustion; -1 when never
	Floor       float64      // post-exhaustion sustained bytes/s; -1 if n/a
	Throttled   bool         // provider flow limiter engaged
	BudgetStall sim.Duration // cumulative throughput-budget wait

	// The latency cliff: completion-weighted mean latency and throughput
	// before and after the first exhaustion. Zero/whole-run when the cell
	// never exhausted.
	PreCliffLat  sim.Duration
	PostCliffLat sim.Duration
	PreCliffBps  float64
	PostCliffBps float64

	// Timeline is the cell's per-interval completion record (10 ms
	// buckets): plotted, it is the latency cliff itself. WriteBurstTimelineCSV
	// dumps it across all cells.
	Timeline []TimelinePoint
}

// TimelinePoint is one sample interval of a cell's completion timeline.
type TimelinePoint struct {
	Start       sim.Duration // interval start, relative to cell start
	Bytes       int64        // bytes completed in the interval
	Completions uint64       // requests completed in the interval
	MeanLat     sim.Duration // mean latency of those completions (0 if none)
}

// BurstReport is the full suite's measurement.
type BurstReport struct {
	BlockSize int64
	Ops       uint64
	// SampleInterval is the bucket width of every cell's Timeline.
	SampleInterval sim.Duration
	Cells          []BurstCell
	// CachedCells counts cells served from the sweep cache instead of a
	// fresh simulation.
	CachedCells int
}

// CreditInfo is the post-run credit and throttle state InspectCredits
// captures on the worker, while the cell's device is still alive. It is
// the Inspect payload of every credit-aware suite (burst scenarios, SLO
// searches) and is JSON-round-trippable so cached cells survive
// persistence (see DecodeCreditInfo).
type CreditInfo struct {
	Burstable   bool         `json:"burstable"`
	Credits     float64      `json:"credits"`
	Exhaustions uint64       `json:"exhaustions"`
	ExhaustedAt sim.Time     `json:"exhausted_at"` // -1 when never exhausted
	Floor       float64      `json:"floor"`        // -1 when not burstable
	Baseline    float64      `json:"baseline"`     // credit-earn bytes/s; -1 when not burstable
	Burst       float64      `json:"burst"`        // burst-ceiling bytes/s; -1 when not burstable
	Throttled   bool         `json:"throttled"`
	Stall       sim.Duration `json:"stall"`
}

// InspectCredits is an expgrid Inspect hook capturing a CreditInfo from
// whatever credit interfaces the cell's device implements. Non-burstable
// devices report the -1 sentinels.
func InspectCredits(dev blockdev.Device, _ expgrid.Cell) any {
	info := CreditInfo{ExhaustedAt: -1, Floor: -1, Baseline: -1, Burst: -1}
	if d, ok := dev.(interface{ Burstable() bool }); ok {
		info.Burstable = d.Burstable()
	}
	if d, ok := dev.(interface{ Credits() float64 }); ok && info.Burstable {
		info.Credits = d.Credits()
	}
	if d, ok := dev.(interface{ CreditExhaustions() uint64 }); ok {
		info.Exhaustions = d.CreditExhaustions()
	}
	if d, ok := dev.(interface{ CreditExhaustedAt() sim.Time }); ok {
		info.ExhaustedAt = d.CreditExhaustedAt()
	}
	if d, ok := dev.(interface{ CreditFloor() float64 }); ok {
		info.Floor = d.CreditFloor()
	}
	if d, ok := dev.(interface{ CreditBaseline() float64 }); ok {
		info.Baseline = d.CreditBaseline()
	}
	if d, ok := dev.(interface{ CreditBurst() float64 }); ok {
		info.Burst = d.CreditBurst()
	}
	if d, ok := dev.(interface{ Throttled() bool }); ok {
		info.Throttled = d.Throttled()
	}
	if d, ok := dev.(interface{ BudgetStall() sim.Duration }); ok {
		info.Stall = d.BudgetStall()
	}
	return info
}

// DecodeCreditInfo is the expgrid DecodeInfo hook matching InspectCredits:
// it rehydrates a persisted CreditInfo from its JSON form.
func DecodeCreditInfo(raw []byte) (any, error) {
	var info CreditInfo
	if err := json.Unmarshal(raw, &info); err != nil {
		return nil, err
	}
	return info, nil
}

// RunBurst executes the suite on the expgrid worker pool and folds the
// cells into a report. Results are deterministic and identical for any
// worker count. Cancel ctx to stop early.
func RunBurst(ctx context.Context, s BurstSweep) (*BurstReport, error) {
	s = s.withDefaults()
	sw := expgrid.Sweep{
		Kind:           expgrid.Open,
		Devices:        s.Devices,
		Patterns:       []workload.Pattern{workload.Mixed},
		BlockSizes:     []int64{s.BlockSize},
		WriteRatiosPct: s.WriteRatiosPct,
		Arrivals:       s.Arrivals,
		RatesPerSec:    s.RatesPerSec,
		OpenOps:        s.Ops,
		Precondition:   expgrid.PrecondFull, // reads must hit data
		Inspect:        InspectCredits,
		Cache:          s.Cache,
		DecodeInfo:     DecodeCreditInfo,
		Seed:           s.Seed,
		Label:          s.Label,
	}
	results, err := expgrid.Runner{Workers: s.Workers, OnProgress: s.OnProgress}.Run(ctx, sw)
	if err != nil {
		return nil, err
	}
	rep := &BurstReport{BlockSize: s.BlockSize, Ops: s.Ops}
	for _, r := range results {
		if rep.SampleInterval == 0 {
			rep.SampleInterval = r.Open.Series.Interval()
		}
		rep.Cells = append(rep.Cells, foldBurstCell(r))
		if r.Cached {
			rep.CachedCells++
		}
	}
	return rep, nil
}

func foldBurstCell(r expgrid.CellResult) BurstCell {
	open := r.Open
	info := r.Info.(CreditInfo)
	// Prefer the short, stable axis name over the device's display name;
	// the axis name is what a caller sweeps and filters on.
	name := r.DeviceName
	if name == "" {
		name = r.Device
	}
	cell := BurstCell{
		Device:        name,
		WriteRatioPct: r.WriteRatioPct,
		Arrival:       r.Arrival,
		RatePerSec:    r.RatePerSec,
		OfferedBps:    r.RatePerSec * float64(r.BlockSize),

		Ops:            open.Ops,
		Bytes:          open.Bytes,
		Elapsed:        open.Elapsed,
		Lat:            open.Lat.Summarize(),
		MaxOutstanding: open.MaxOutstanding,

		Burstable:   info.Burstable,
		CreditsLeft: info.Credits,
		Exhaustions: info.Exhaustions,
		ExhaustedAt: -1,
		Floor:       info.Floor,
		Throttled:   info.Throttled,
		BudgetStall: info.Stall,
	}
	n := open.LatSeries.Len()
	if info.ExhaustedAt >= 0 {
		// The cell's device starts on a fresh engine at time zero and
		// preconditioning consumes no virtual time, so the exhaustion
		// timestamp is already relative to the cell start.
		cell.ExhaustedAt = sim.Duration(info.ExhaustedAt)
		split := int(int64(info.ExhaustedAt) / int64(open.LatSeries.Interval()))
		if split > n {
			split = n
		}
		cell.PreCliffLat = open.LatSeries.MeanRange(0, split)
		cell.PostCliffLat = open.LatSeries.MeanRange(split, n)
		cell.PreCliffBps = open.Series.MeanRate(0, split)
		cell.PostCliffBps = open.Series.MeanRate(split, open.Series.Len())
	} else {
		cell.PreCliffLat = open.LatSeries.MeanRange(0, n)
		cell.PreCliffBps = open.Series.MeanRate(0, open.Series.Len())
	}
	points := open.Series.Len()
	if n > points {
		points = n
	}
	interval := open.Series.Interval()
	cell.Timeline = make([]TimelinePoint, points)
	for i := 0; i < points; i++ {
		cell.Timeline[i] = TimelinePoint{
			Start:       sim.Duration(i) * interval,
			Bytes:       open.Series.Bytes(i),
			Completions: open.LatSeries.Count(i),
			MeanLat:     open.LatSeries.Mean(i),
		}
	}
	return cell
}

// FormatBurst writes the report as an aligned table: one row per cell with
// its credit-exhaustion time, post-run credit state, throttle and
// budget-stall columns, and the pre/post-exhaustion latency cliff.
func FormatBurst(w io.Writer, r *BurstReport) {
	fmt.Fprintf(w, "Burst-credit scenario: %d KiB mixed random I/O, %d requests per cell (open loop)\n",
		r.BlockSize>>10, r.Ops)
	fmt.Fprintf(w, "%-6s %4s %-8s %9s %9s %9s %9s %10s %10s %10s %10s\n",
		"device", "wr%", "arrival", "offered", "exhaust@", "credits", "stall",
		"pre-lat", "post-lat", "pre-MB/s", "post-MB/s")
	for _, c := range r.Cells {
		exhaust, credits := "-", "-"
		if c.Burstable {
			credits = fmt.Sprintf("%.0fMB", c.CreditsLeft/1e6)
			if c.ExhaustedAt >= 0 {
				exhaust = fmt.Sprintf("%.2fs", c.ExhaustedAt.Seconds())
			} else {
				exhaust = "never"
			}
		}
		post := "-"
		postBW := "-"
		if c.ExhaustedAt >= 0 {
			post = fmtLat(c.PostCliffLat)
			postBW = fmt.Sprintf("%.1f", c.PostCliffBps/1e6)
		}
		name := c.Device
		if len(name) > 6 {
			name = name[:6]
		}
		// BudgetStall sums every request's wait on the throughput budget,
		// so heavy queueing makes it far exceed the wall-clock span.
		fmt.Fprintf(w, "%-6s %4d %-8s %8.1fM %9s %9s %8.0fs %10s %10s %10.1f %10s",
			name, c.WriteRatioPct, c.Arrival, c.OfferedBps/1e6, exhaust, credits,
			c.BudgetStall.Seconds(), fmtLat(c.PreCliffLat), post,
			c.PreCliffBps/1e6, postBW)
		if c.Throttled {
			fmt.Fprint(w, "  THROTTLED")
		}
		fmt.Fprintln(w)
	}
}

func fmtLat(d sim.Duration) string {
	switch {
	case d <= 0:
		return "-"
	case d < sim.Millisecond:
		return fmt.Sprintf("%.0fµs", d.Seconds()*1e6)
	case d < sim.Second:
		return fmt.Sprintf("%.2fms", d.Seconds()*1e3)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}
