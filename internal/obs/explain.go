package obs

import (
	"fmt"
	"io"
	"sort"

	"essdsim/internal/sim"
)

// TailPoint is one window of a victim's latency timeline.
type TailPoint struct {
	T   sim.Time // window start
	Lat sim.Duration
}

// ExplainInput is everything Explain correlates for one cell. Series
// fields may be empty and times may be -1 ("never"); Explain reports
// whatever the available signals support.
type ExplainInput struct {
	Cell   string
	Victim string
	// Tail is the victim's per-window latency timeline (mean or p99.9).
	Tail []TailPoint
	// ThrottleOnset is when the victim's flow limiter engaged (-1 never).
	ThrottleOnset sim.Time
	// CreditExhaustedAt is when the victim's burst credits first hit
	// zero (-1 never).
	CreditExhaustedAt sim.Time
	// DebtThreshold is the limiter's pooled-debt engagement threshold in
	// bytes (0 unknown).
	DebtThreshold float64
	// Probes is the cell's probe capture (may be nil).
	Probes *Prober
	// PooledDebtSeries names the pooled-cleaner-debt gauge in Probes.
	PooledDebtSeries string
	// VictimBytesSeries names the victim's cumulative fabric-uplink
	// bytes gauge; AggrBytesSeries the aggressors'. Their final samples
	// give the traffic share attribution.
	VictimBytesSeries string
	AggrBytesSeries   []string
}

// Finding is one timestamped attribution statement.
type Finding struct {
	T    sim.Time // -1 for untimed findings (e.g. traffic shares)
	What string
}

// Explanation is the cliff-attribution report for one cell: the victim
// tail inflection (if any) and the internal-state events around it, in
// time order.
type Explanation struct {
	Cell       string
	Victim     string
	Inflection sim.Time // -1 when the timeline shows no inflection
	Findings   []Finding
}

const inflectionFactor = 3.0

// tailInflection finds the first window whose latency exceeds
// inflectionFactor times the baseline (the mean of the leading quarter
// of windows, at least one). Returns -1 when the timeline never
// inflects.
func tailInflection(tail []TailPoint) (sim.Time, sim.Duration, sim.Duration) {
	n := 0
	var sum sim.Duration
	base := len(tail) / 4
	if base < 1 {
		base = 1
	}
	for i := 0; i < base && i < len(tail); i++ {
		if tail[i].Lat > 0 {
			sum += tail[i].Lat
			n++
		}
	}
	if n == 0 {
		return -1, 0, 0
	}
	baseline := sum / sim.Duration(n)
	for _, p := range tail {
		if p.Lat > sim.Duration(float64(baseline)*inflectionFactor) {
			return p.T, p.Lat, baseline
		}
	}
	return -1, 0, baseline
}

// firstCrossing returns the first sample time at which the series
// reaches the threshold (-1 when it never does or the series is empty).
func firstCrossing(series []Point, threshold float64) (sim.Time, float64) {
	for _, p := range series {
		if p.V >= threshold {
			return p.T, p.V
		}
	}
	return -1, 0
}

// lastValue returns the final sample of a series (0 when empty).
func lastValue(series []Point) float64 {
	if len(series) == 0 {
		return 0
	}
	return series[len(series)-1].V
}

func fmtT(t sim.Time) string {
	return fmt.Sprintf("t=%.1fms", sim.Duration(t).Seconds()*1e3)
}

// Explain builds the attribution report for one cell from its latency
// timeline, limiter state, and probe series. The output is fully
// deterministic: findings are ordered by time, then text.
func Explain(in ExplainInput) *Explanation {
	e := &Explanation{Cell: in.Cell, Victim: in.Victim, Inflection: -1}
	inflT, inflLat, baseline := tailInflection(in.Tail)
	e.Inflection = inflT
	if inflT >= 0 {
		e.Findings = append(e.Findings, Finding{T: inflT, What: fmt.Sprintf(
			"victim tail inflection at %s: window latency %.2fms vs %.2fms baseline (%.1fx)",
			fmtT(inflT), inflLat.Seconds()*1e3, baseline.Seconds()*1e3,
			float64(inflLat)/float64(baseline))})
	}
	if in.PooledDebtSeries != "" && in.DebtThreshold > 0 {
		debt := in.Probes.Series(in.PooledDebtSeries)
		if crossT, crossV := firstCrossing(debt, in.DebtThreshold); crossT >= 0 {
			what := fmt.Sprintf(
				"pooled cleaner debt crossed the throttle threshold (%.1f MiB >= %.1f MiB) at %s",
				crossV/(1<<20), in.DebtThreshold/(1<<20), fmtT(crossT))
			if inflT >= 0 {
				d := inflT.Sub(crossT)
				if d >= 0 {
					what += fmt.Sprintf(", %.1fms before the tail inflection", d.Seconds()*1e3)
				} else {
					what += fmt.Sprintf(", %.1fms after the tail inflection", (-d).Seconds()*1e3)
				}
			}
			e.Findings = append(e.Findings, Finding{T: crossT, What: what})
		} else if len(debt) > 0 {
			e.Findings = append(e.Findings, Finding{T: -1, What: fmt.Sprintf(
				"pooled cleaner debt peaked below the throttle threshold (%.1f MiB)",
				in.DebtThreshold/(1<<20))})
		}
	}
	if in.CreditExhaustedAt >= 0 {
		e.Findings = append(e.Findings, Finding{T: in.CreditExhaustedAt, What: fmt.Sprintf(
			"victim burst credits exhausted at %s", fmtT(in.CreditExhaustedAt))})
	}
	if in.ThrottleOnset >= 0 {
		e.Findings = append(e.Findings, Finding{T: in.ThrottleOnset, What: fmt.Sprintf(
			"victim flow limiter engaged at %s (cleaner-debt throttle)", fmtT(in.ThrottleOnset))})
	}
	if in.VictimBytesSeries != "" && len(in.AggrBytesSeries) > 0 {
		victim := lastValue(in.Probes.Series(in.VictimBytesSeries))
		var aggr float64
		for _, name := range in.AggrBytesSeries {
			aggr += lastValue(in.Probes.Series(name))
		}
		if total := victim + aggr; total > 0 {
			e.Findings = append(e.Findings, Finding{T: -1, What: fmt.Sprintf(
				"%d aggressor flow(s) held %.0f%% of fabric uplink bytes (victim %.0f%%)",
				len(in.AggrBytesSeries), 100*aggr/total, 100*victim/total)})
		}
	}
	if len(e.Findings) == 0 {
		e.Findings = append(e.Findings, Finding{T: -1, What: "no cliff signals: tail flat, limiter idle, credits never exhausted"})
	}
	sort.SliceStable(e.Findings, func(i, j int) bool {
		a, b := e.Findings[i], e.Findings[j]
		if (a.T < 0) != (b.T < 0) {
			return b.T < 0 // untimed findings last
		}
		if a.T != b.T {
			return a.T < b.T
		}
		return a.What < b.What
	})
	return e
}

// FormatExplanations renders the attribution reports as a plain-text
// block, one cell per paragraph.
func FormatExplanations(w io.Writer, exps []*Explanation) {
	fmt.Fprintln(w, "--- Cliff attribution (obs.Explain) ---")
	for _, e := range exps {
		if e == nil {
			continue
		}
		fmt.Fprintf(w, "cell %s (victim %s):\n", e.Cell, e.Victim)
		for _, f := range e.Findings {
			fmt.Fprintf(w, "  - %s\n", f.What)
		}
	}
}
