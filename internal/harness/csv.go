package harness

import (
	"fmt"
	"io"
)

// WriteFig2CSV dumps a Figure 2 grid pair as CSV: one row per cell with
// both devices' latencies and the gaps.
func WriteFig2CSV(w io.Writer, essd, ssd *LatencyGrid) error {
	if _, err := fmt.Fprintln(w, "pattern,block_bytes,qd,essd_avg_ns,essd_p999_ns,ssd_avg_ns,ssd_p999_ns,gap_avg,gap_p999"); err != nil {
		return err
	}
	for _, c := range essd.Cells {
		s := ssd.Cell(c.Pattern, c.BlockSize, c.QueueDepth)
		if s == nil || s.Avg <= 0 || s.P999 <= 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%d,%d,%d,%d,%.3f,%.3f\n",
			c.Pattern, c.BlockSize, c.QueueDepth,
			int64(c.Avg), int64(c.P999), int64(s.Avg), int64(s.P999),
			float64(c.Avg)/float64(s.Avg), float64(c.P999)/float64(s.P999)); err != nil {
			return err
		}
	}
	return nil
}

// WriteFig3CSV dumps sustained-write timelines as CSV.
func WriteFig3CSV(w io.Writer, results []*SustainedResult) error {
	if _, err := fmt.Fprintln(w, "device,second,bytes_per_sec"); err != nil {
		return err
	}
	for _, r := range results {
		for i, rate := range r.Rates {
			if _, err := fmt.Fprintf(w, "%s,%d,%.0f\n", r.Device, i, rate); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteFig4CSV dumps random/sequential sweeps as CSV.
func WriteFig4CSV(w io.Writer, results []*RandSeqResult) error {
	if _, err := fmt.Fprintln(w, "device,block_bytes,qd,rand_bps,seq_bps,gain"); err != nil {
		return err
	}
	for _, r := range results {
		for _, c := range r.Cells {
			if _, err := fmt.Fprintf(w, "%s,%d,%d,%.0f,%.0f,%.3f\n",
				r.Device, c.BlockSize, c.QueueDepth, c.RandBW, c.SeqBW, c.Gain()); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteFig5CSV dumps mixed-ratio sweeps as CSV.
func WriteFig5CSV(w io.Writer, results []*MixedResult) error {
	if _, err := fmt.Fprintln(w, "device,write_ratio_pct,total_bps,write_bps"); err != nil {
		return err
	}
	for _, r := range results {
		for _, p := range r.Points {
			if _, err := fmt.Fprintf(w, "%s,%d,%.0f,%.0f\n",
				r.Device, p.WriteRatioPct, p.TotalBW, p.WriteBW); err != nil {
				return err
			}
		}
	}
	return nil
}
