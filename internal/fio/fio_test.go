package fio

import (
	"strings"
	"testing"

	"essdsim/internal/sim"
	"essdsim/internal/workload"
)

func TestParseSize(t *testing.T) {
	cases := map[string]int64{
		"4096": 4096,
		"4k":   4 << 10,
		"128K": 128 << 10,
		"2m":   2 << 20,
		"1g":   1 << 30,
		"1t":   1 << 40,
		"512b": 512,
		" 8k ": 8 << 10,
	}
	for in, want := range cases {
		got, err := ParseSize(in)
		if err != nil || got != want {
			t.Errorf("ParseSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "abc", "-4k", "4q"} {
		if _, err := ParseSize(bad); err == nil {
			t.Errorf("ParseSize(%q) accepted", bad)
		}
	}
}

func TestParseDuration(t *testing.T) {
	cases := map[string]sim.Duration{
		"5":     5 * sim.Second,
		"500ms": 500 * sim.Millisecond,
		"2s":    2 * sim.Second,
		"1m":    60 * sim.Second,
		"0.5s":  sim.Second / 2,
	}
	for in, want := range cases {
		got, err := ParseDuration(in)
		if err != nil || got != want {
			t.Errorf("ParseDuration(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseDuration("xyz"); err == nil {
		t.Error("bad duration accepted")
	}
}

func TestParseBasicJob(t *testing.T) {
	jobs, err := Parse(strings.NewReader(`
# paper Figure 2 cell
[cell]
rw=randwrite
bs=4k
iodepth=16
runtime=500ms
`))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].Name != "cell" {
		t.Fatalf("jobs = %+v", jobs)
	}
	s := jobs[0].Spec
	if s.Pattern != workload.RandWrite || s.BlockSize != 4096 ||
		s.QueueDepth != 16 || s.Duration != 500*sim.Millisecond {
		t.Fatalf("spec = %+v", s)
	}
}

func TestGlobalInheritance(t *testing.T) {
	jobs, err := Parse(strings.NewReader(`
[global]
bs=64k
iodepth=8
runtime=1s

[a]
rw=randread

[b]
rw=write
bs=128k
`))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("want 2 jobs, got %d", len(jobs))
	}
	if jobs[0].Spec.BlockSize != 64<<10 || jobs[0].Spec.QueueDepth != 8 {
		t.Fatalf("job a did not inherit global: %+v", jobs[0].Spec)
	}
	if jobs[1].Spec.BlockSize != 128<<10 {
		t.Fatalf("job b did not override bs: %+v", jobs[1].Spec)
	}
	if jobs[1].Spec.Pattern != workload.SeqWrite {
		t.Fatalf("job b pattern: %+v", jobs[1].Spec)
	}
}

func TestMixedJob(t *testing.T) {
	jobs, err := Parse(strings.NewReader(`
[mix]
rw=randrw
rwmixwrite=30
bs=128k
iodepth=32
size=1g
`))
	if err != nil {
		t.Fatal(err)
	}
	s := jobs[0].Spec
	if s.Pattern != workload.Mixed || s.WriteRatio != 0.3 || s.TotalBytes != 1<<30 {
		t.Fatalf("spec = %+v", s)
	}
}

func TestCommentsAndSemicolons(t *testing.T) {
	jobs, err := Parse(strings.NewReader(`
; a comment
[j]
# another
rw=read
bs=4k
number_ios=100
`))
	if err != nil {
		t.Fatal(err)
	}
	if jobs[0].Spec.MaxOps != 100 {
		t.Fatalf("spec = %+v", jobs[0].Spec)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"rw=read\n",                      // key outside section
		"[j]\nrw=read\nbs=4k\n",          // no stop condition
		"[j]\nbogus=1\nruntime=1s\n",     // unknown key
		"[j\nrw=read\n",                  // malformed section
		"[]\nrw=read\n",                  // empty section name
		"[j]\nrw read\n",                 // not key=value
		"[j]\nrw=sideways\nruntime=1s\n", // bad pattern
		"",                               // no jobs
		"[global]\nbs=4k\n",              // only global
	}
	for i, in := range cases {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: accepted %q", i, in)
		}
	}
}

func TestCompatibilityKeysIgnored(t *testing.T) {
	jobs, err := Parse(strings.NewReader(`
[global]
ioengine=libaio
direct=1
group_reporting=1
time_based=1

[j]
name=probe
filename=/dev/sim
numjobs=1
rw=randread
bs=4k
runtime=1s
`))
	if err != nil {
		t.Fatal(err)
	}
	if jobs[0].Spec.Pattern != workload.RandRead {
		t.Fatalf("spec = %+v", jobs[0].Spec)
	}
}

func TestWarmupAndSeedAndRegion(t *testing.T) {
	jobs, err := Parse(strings.NewReader(`
[j]
rw=randwrite
bs=4k
runtime=1s
warmup=100ms
seed=42
region=64m
`))
	if err != nil {
		t.Fatal(err)
	}
	s := jobs[0].Spec
	if s.Warmup != 100*sim.Millisecond || s.Seed != 42 || s.Region != 64<<20 {
		t.Fatalf("spec = %+v", s)
	}
}
