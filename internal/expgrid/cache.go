package expgrid

import (
	"container/list"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"essdsim/internal/trace"
	"essdsim/internal/workload"
	"essdsim/kv"
)

// Cache memoizes cell results across sweeps so repeated coordinates — an
// SLO search re-probing a rate, a re-run of a whole suite — skip the
// simulation entirely and return the stored measurement. Entries are keyed
// by the cell's coordinate-hash seed plus a fingerprint of every
// result-shaping sweep setting (kind, durations, preconditioning, open-loop
// knobs, trace content), so two sweeps share an entry only when the cell
// would measure byte-identical results.
//
// Two identities are deliberately outside the key and must be kept stable
// by the caller: the device factory behind a NamedFactory name, and the
// semantics of Sweep.Inspect. Change either and the sweep's Label (or the
// cache file) should change with it.
//
// The cache is an LRU bounded by a capacity in entries, safe for
// concurrent use by the worker pool, with optional JSON persistence via
// Save/Load. A zero-capacity cache defaults to DefaultCacheCapacity.
type Cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	byKey    map[string]*list.Element
	hits     uint64
	misses   uint64
}

// DefaultCacheCapacity bounds a cache built with NewCache(0).
const DefaultCacheCapacity = 4096

// cacheFileVersion tags the persisted JSON format.
const cacheFileVersion = 1

// cacheEntry is one live cache slot. rec holds the serializable
// measurement; info holds the live Inspect capture when one is usable
// in-process (stored by this process, or decoded via Sweep.DecodeInfo);
// nil means the entry carries none yet.
//
// An entry stored in-process keeps its Info live-only (rec.Info nil) until
// the first Save serializes it — store() is on the sweep hot path and must
// not pay a JSON marshal per cell. The deferred marshal snapshots the Info
// at Save time, which is equivalent because Inspect captures are value
// summaries the sweep never mutates after fold.
type cacheEntry struct {
	key      string
	rec      cacheRecord
	info     any
	volatile bool // Info could not marshal; entry is in-memory only
}

// cacheRecord is the wire form of one cached cell measurement.
type cacheRecord struct {
	Key    string                   `json:"key"`
	Device string                   `json:"device,omitempty"`
	Res    *workload.Result         `json:"closed,omitempty"`
	Open   *workload.OpenResult     `json:"open,omitempty"`
	Replay *trace.ReplayResult      `json:"replay,omitempty"`
	Mix    []*workload.TenantResult `json:"mix,omitempty"`
	KV     []*kv.MixResult          `json:"kv,omitempty"`
	Info   json.RawMessage          `json:"info,omitempty"`
}

// cacheFile is the persisted JSON document.
type cacheFile struct {
	Version int           `json:"version"`
	Entries []cacheRecord `json:"entries"`
}

// NewCache returns an empty cache holding at most capacity entries
// (DefaultCacheCapacity when capacity <= 0).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		byKey:    make(map[string]*list.Element),
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns the lookup hit and miss counts since construction.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// cellKey renders the (sweep fingerprint, cell seed) pair as the entry key.
func cellKey(fingerprint, seed uint64) string {
	return fmt.Sprintf("%016x%016x", fingerprint, seed)
}

// lookup returns the cached result for the cell, reconstructed onto the
// cell's coordinates. A disk-loaded entry whose Info has not been decoded
// yet is decoded through decode; if the sweep needs an Info (inspect true)
// that the entry cannot supply, the lookup misses so the cell re-runs.
func (c *Cache) lookup(fingerprint uint64, cell Cell, inspect bool, decode func([]byte) (any, error)) (CellResult, bool) {
	key := cellKey(fingerprint, cell.Seed)
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return CellResult{}, false
	}
	e := el.Value.(*cacheEntry)
	if inspect && e.info == nil {
		if e.rec.Info == nil || decode == nil {
			c.misses++
			return CellResult{}, false
		}
		info, err := decode(e.rec.Info)
		if err != nil || info == nil {
			c.misses++
			return CellResult{}, false
		}
		e.info = info
	}
	c.ll.MoveToFront(el)
	c.hits++
	out := CellResult{
		Cell:   cell,
		Device: e.rec.Device,
		Res:    e.rec.Res,
		Open:   e.rec.Open,
		Replay: e.rec.Replay,
		Mix:    e.rec.Mix,
		KV:     e.rec.KV,
		Cached: true,
	}
	if inspect {
		out.Info = e.info
	}
	return out, true
}

// store caches a successful cell result. The Info capture is kept live and
// serialized lazily — once, at the first Save that sees the entry — so the
// per-cell store cost is a map insert, not a JSON marshal.
func (c *Cache) store(fingerprint uint64, res CellResult) {
	if res.Err != nil {
		return
	}
	key := cellKey(fingerprint, res.Seed)
	e := &cacheEntry{
		key: key,
		rec: cacheRecord{
			Key:    key,
			Device: res.Device,
			Res:    res.Res,
			Open:   res.Open,
			Replay: res.Replay,
			Mix:    res.Mix,
			KV:     res.KV,
		},
		info: res.Info,
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value = e
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[key] = c.ll.PushFront(e)
	for c.ll.Len() > c.capacity {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.byKey, last.Value.(*cacheEntry).key)
	}
}

// Save writes the cache as JSON, entries in deterministic key order.
// Inspect captures stored live in this process are marshalled here, once
// per entry (the result is memoized on the entry, so repeated Saves and
// sweeps re-storing the same coordinates never re-serialize). Entries
// whose capture cannot marshal are skipped and marked in-memory only.
func (c *Cache) Save(w io.Writer) error {
	c.mu.Lock()
	doc := cacheFile{Version: cacheFileVersion}
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*cacheEntry)
		if e.info != nil && e.rec.Info == nil && !e.volatile {
			raw, err := json.Marshal(e.info)
			if err != nil {
				e.volatile = true
			} else {
				e.rec.Info = raw
			}
		}
		if e.volatile {
			continue
		}
		doc.Entries = append(doc.Entries, e.rec)
	}
	c.mu.Unlock()
	sort.Slice(doc.Entries, func(i, j int) bool { return doc.Entries[i].Key < doc.Entries[j].Key })
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// Load merges entries from a JSON document written by Save. Loaded Inspect
// captures stay in their raw form until a sweep with a DecodeInfo hook
// first hits them.
func (c *Cache) Load(r io.Reader) error {
	var doc cacheFile
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return fmt.Errorf("expgrid: cache load: %w", err)
	}
	if doc.Version != cacheFileVersion {
		return fmt.Errorf("expgrid: cache version %d (want %d)", doc.Version, cacheFileVersion)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, rec := range doc.Entries {
		rec := rec
		if _, ok := c.byKey[rec.Key]; ok {
			continue
		}
		e := &cacheEntry{key: rec.Key, rec: rec}
		c.byKey[rec.Key] = c.ll.PushFront(e)
		for c.ll.Len() > c.capacity {
			last := c.ll.Back()
			c.ll.Remove(last)
			delete(c.byKey, last.Value.(*cacheEntry).key)
		}
	}
	return nil
}

// SaveFile writes the cache to path (atomic rename via a sibling temp file).
func (c *Cache) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := c.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile merges entries from path. A missing file is not an error — the
// cache simply starts cold.
func (c *Cache) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	defer f.Close()
	return c.Load(f)
}
