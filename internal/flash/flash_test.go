package flash

import (
	"testing"

	"essdsim/internal/sim"
)

func testConfig() Config {
	return Config{
		Channels:       2,
		DiesPerChannel: 2,
		PlanesPerDie:   2,
		PagesPerBlock:  4,
		BlocksPerPlane: 8,
		PageSize:       16 << 10,
		ReadLatency:    40 * sim.Microsecond,
		ProgramLatency: 200 * sim.Microsecond,
		EraseLatency:   2 * sim.Millisecond,
		ChannelBW:      1e9,
	}
}

func TestConfigDerived(t *testing.T) {
	c := testConfig()
	if c.Dies() != 4 {
		t.Fatalf("dies = %d", c.Dies())
	}
	if c.ProgramUnitBytes() != 32<<10 {
		t.Fatalf("unit = %d", c.ProgramUnitBytes())
	}
	if c.BlockBytes() != 64<<10 {
		t.Fatalf("block = %d", c.BlockBytes())
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestConfigValidateRejects(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Channels = 0 },
		func(c *Config) { c.DiesPerChannel = 0 },
		func(c *Config) { c.PlanesPerDie = 0 },
		func(c *Config) { c.PagesPerBlock = 0 },
		func(c *Config) { c.PageSize = 256 },
		func(c *Config) { c.ReadLatency = 0 },
		func(c *Config) { c.ProgramLatency = -1 },
		func(c *Config) { c.EraseLatency = 0 },
		func(c *Config) { c.ChannelBW = 0 },
	}
	for i, mutate := range cases {
		c := testConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestReadPageTiming(t *testing.T) {
	eng := sim.NewEngine()
	a := NewArray(eng, testConfig(), sim.NewRNG(1, 1))
	var done sim.Time
	a.ReadPage(0, func() { done = eng.Now() })
	eng.Run()
	// tR 40µs + 16KiB over 1 GB/s = 16.384µs
	want := sim.Time(40*sim.Microsecond) + sim.Time((16<<10)*1e9/1e9)
	if done < want-sim.Time(sim.Microsecond) || done > want+sim.Time(20*sim.Microsecond) {
		t.Fatalf("read done at %v, want ≈ %v", sim.Duration(done), sim.Duration(want))
	}
	if a.Counters().PageReads != 1 {
		t.Fatal("read counter")
	}
}

func TestDieSerializesOps(t *testing.T) {
	eng := sim.NewEngine()
	a := NewArray(eng, testConfig(), sim.NewRNG(1, 1))
	var first, second sim.Time
	a.ReadPage(0, func() { first = eng.Now() })
	a.ReadPage(0, func() { second = eng.Now() })
	eng.Run()
	if second-first < sim.Time(40*sim.Microsecond)/2 {
		t.Fatalf("same-die reads not serialized: %v then %v",
			sim.Duration(first), sim.Duration(second))
	}
}

func TestDifferentDiesParallel(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testConfig()
	cfg.ChannelBW = 100e9 // make transfer negligible
	a := NewArray(eng, cfg, sim.NewRNG(1, 1))
	var times []sim.Time
	for d := 0; d < 4; d++ {
		a.ReadPage(d, func() { times = append(times, eng.Now()) })
	}
	eng.Run()
	for _, tm := range times {
		if tm > sim.Time(45*sim.Microsecond) {
			t.Fatalf("parallel die reads serialized: %v", sim.Duration(tm))
		}
	}
}

func TestChannelSharedByDies(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testConfig()
	cfg.ChannelBW = 1e8 // 16 KiB transfer = 163.8µs, dominates
	a := NewArray(eng, cfg, sim.NewRNG(1, 1))
	var last sim.Time
	// Dies 0 and 1 share channel 0.
	a.ReadPage(0, func() { last = eng.Now() })
	a.ReadPage(1, func() {
		if eng.Now() > last {
			last = eng.Now()
		}
	})
	eng.Run()
	// Two 163.8µs transfers must serialize on the shared channel:
	// finish >= 40µs (parallel tR) + 2×163.8µs.
	want := sim.Time(40*sim.Microsecond) + 2*sim.Time(163*sim.Microsecond)
	if last < want {
		t.Fatalf("shared channel not serialized: done %v, want >= %v",
			sim.Duration(last), sim.Duration(want))
	}
}

func TestProgramUnitTiming(t *testing.T) {
	eng := sim.NewEngine()
	a := NewArray(eng, testConfig(), sim.NewRNG(1, 1))
	var done sim.Time
	a.ProgramUnit(2, func() { done = eng.Now() })
	eng.Run()
	// 32 KiB transfer (32.768µs) + 200µs program.
	want := sim.Time(232 * sim.Microsecond)
	if done < want || done > want+sim.Time(5*sim.Microsecond) {
		t.Fatalf("program done at %v, want ≈ %v", sim.Duration(done), sim.Duration(want))
	}
	if a.Counters().UnitPrograms != 1 {
		t.Fatal("program counter")
	}
}

func TestEraseTiming(t *testing.T) {
	eng := sim.NewEngine()
	a := NewArray(eng, testConfig(), sim.NewRNG(1, 1))
	var done sim.Time
	a.EraseBlockColumn(3, func() { done = eng.Now() })
	eng.Run()
	if done != sim.Time(2*sim.Millisecond) {
		t.Fatalf("erase done at %v", sim.Duration(done))
	}
	if a.Counters().BlockErases != 1 {
		t.Fatal("erase counter")
	}
}

func TestProgramDistOverride(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testConfig()
	cfg.ProgramDist = sim.Const{V: 77 * sim.Microsecond}
	cfg.ChannelBW = 1e12
	a := NewArray(eng, cfg, sim.NewRNG(1, 1))
	var done sim.Time
	a.ProgramUnit(0, func() { done = eng.Now() })
	eng.Run()
	if done < sim.Time(77*sim.Microsecond) || done > sim.Time(78*sim.Microsecond) {
		t.Fatalf("program dist ignored: %v", sim.Duration(done))
	}
}

func TestInvalidGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewArray accepted invalid geometry")
		}
	}()
	cfg := testConfig()
	cfg.Channels = 0
	NewArray(sim.NewEngine(), cfg, sim.NewRNG(1, 1))
}

func TestDieBusyTimeAccumulates(t *testing.T) {
	eng := sim.NewEngine()
	a := NewArray(eng, testConfig(), sim.NewRNG(1, 1))
	a.ReadPage(1, nil)
	a.ReadPage(1, nil)
	eng.Run()
	if got := a.DieBusyTime(1); got != sim.Duration(80*sim.Microsecond) {
		t.Fatalf("die busy = %v", got)
	}
	if a.DieQueueLen(1) != 0 {
		t.Fatal("queue not drained")
	}
}
