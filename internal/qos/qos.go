package qos

import (
	"essdsim/internal/sim"
)

// TokenBucket is a classic token bucket in virtual time with FIFO waiters.
// Tokens accrue continuously at Rate up to Burst; Take either debits
// immediately or queues the caller until enough tokens accrue.
//
// A bytes/s bucket at the provisioned budget is what makes the ESSD's
// maximum bandwidth deterministic across access patterns (Observation #4).
type TokenBucket struct {
	eng   *sim.Engine
	rate  float64 // tokens per second
	burst float64 // bucket capacity

	tokens   float64
	lastFill sim.Time
	waiters  []tbWaiter // FIFO ring: live waiters are waiters[whead:]
	whead    int
	draining bool
	drainFn  func() // reusable drain event, allocated once per bucket

	granted float64
	stalled sim.Duration
}

type tbWaiter struct {
	n     float64
	since sim.Time
	done  func()
}

// noop is the shared no-op completion for nil-done Takes.
func noop() {}

// NewTokenBucket returns a bucket that starts full.
func NewTokenBucket(eng *sim.Engine, rate, burst float64) *TokenBucket {
	if rate <= 0 {
		rate = 1
	}
	if burst < 1 {
		burst = 1
	}
	b := &TokenBucket{eng: eng, rate: rate, burst: burst, tokens: burst}
	b.drainFn = b.drain
	return b
}

// Rate returns the current fill rate (tokens/s).
func (b *TokenBucket) Rate() float64 { return b.rate }

// SetRate changes the fill rate — the flow limiter's lever.
func (b *TokenBucket) SetRate(rate float64) {
	if rate <= 0 {
		rate = 1
	}
	b.refill()
	b.rate = rate
	b.kick()
}

// Granted returns the total tokens handed out.
func (b *TokenBucket) Granted() float64 { return b.granted }

// StallTime returns the cumulative time requests spent waiting for tokens.
func (b *TokenBucket) StallTime() sim.Duration { return b.stalled }

// QueueLen returns the number of requests waiting for tokens.
func (b *TokenBucket) QueueLen() int { return len(b.waiters) - b.whead }

func (b *TokenBucket) refill() {
	now := b.eng.Now()
	dt := now.Sub(b.lastFill).Seconds()
	if dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.lastFill = now
}

// Take requests n tokens and calls done when they are granted. Grants are
// strictly FIFO, so a large request blocks later small ones (matching a
// per-volume throttle point). Requests larger than the burst are allowed:
// the bucket simply goes as negative as needed once the waiter reaches the
// head, preserving the long-run rate.
func (b *TokenBucket) Take(n float64, done func()) {
	if done == nil {
		done = noop
	}
	if n <= 0 {
		done()
		return
	}
	b.refill()
	if b.whead == len(b.waiters) && b.tokens >= n {
		b.tokens -= n
		b.granted += n
		done()
		return
	}
	b.waiters = append(b.waiters, tbWaiter{n: n, since: b.eng.Now(), done: done})
	b.kick()
}

// grantThreshold returns the token level at which a request of size n is
// granted: n itself, or the full bucket for requests larger than the burst
// (which then drive the balance negative, preserving the long-run rate).
func (b *TokenBucket) grantThreshold(n float64) float64 {
	if n > b.burst {
		return b.burst
	}
	return n
}

// kick schedules the next waiter's grant time if not already scheduled.
// The drain event is the reusable drainFn closure, so a grant cycle costs
// no allocation regardless of queue depth.
func (b *TokenBucket) kick() {
	if b.draining || b.whead >= len(b.waiters) {
		return
	}
	b.refill()
	need := b.grantThreshold(b.waiters[b.whead].n) - b.tokens
	var wait sim.Duration
	if need > 0 {
		wait = sim.Duration(need / b.rate * float64(sim.Second))
		if wait < 1 {
			wait = 1
		}
	}
	b.draining = true
	b.eng.Schedule(wait, b.drainFn)
}

// drain grants every waiter the accrued tokens cover, in FIFO order. The
// ring-head pop is O(1); the drained prefix is reclaimed whenever the queue
// empties, bounding memory to the high-water mark of concurrent waiters.
func (b *TokenBucket) drain() {
	b.draining = false
	b.refill()
	for b.whead < len(b.waiters) {
		w := b.waiters[b.whead]
		if b.tokens < b.grantThreshold(w.n) {
			break
		}
		b.tokens -= w.n // may go negative for oversized requests
		b.granted += w.n
		b.stalled += b.eng.Now().Sub(w.since)
		b.waiters[b.whead] = tbWaiter{}
		b.whead++
		if b.whead == len(b.waiters) {
			b.waiters = b.waiters[:0]
			b.whead = 0
		}
		w.done()
	}
	b.kick()
}

// FlowLimiter models the provider policy that throttles a volume's write
// budget once the backend's cleaning debt exceeds its spare capacity —
// the mechanism behind ESSD-1's delayed throughput cliff in Figure 3.
// Once engaged it is sticky for the life of the volume session, matching
// the stable post-knee floor the paper measured.
type FlowLimiter struct {
	// DebtThreshold is the cleaning debt (bytes) that triggers throttling.
	DebtThreshold int64
	// ThrottledRate is the write budget (bytes/s) applied when engaged.
	ThrottledRate float64

	engaged   bool
	engagedAt sim.Time
}

// Engaged reports whether the limiter has fired.
func (l *FlowLimiter) Engaged() bool { return l.engaged }

// EngagedAt returns when the limiter fired (zero if it has not).
func (l *FlowLimiter) EngagedAt() sim.Time { return l.engagedAt }

// Observe feeds the current cleaning debt; when the debt crosses the
// threshold the limiter engages, clamps the bucket, and stays engaged.
// A zero or negative threshold disables the limiter entirely.
func (l *FlowLimiter) Observe(now sim.Time, debt int64, bucket *TokenBucket) {
	if l.engaged || l.DebtThreshold <= 0 {
		return
	}
	if debt >= l.DebtThreshold {
		l.engaged = true
		l.engagedAt = now
		bucket.SetRate(l.ThrottledRate)
	}
}
