// Package cluster models the storage backend of elastic block storage
// (paper Fig 1): a set of storage nodes holding replicated chunks of the
// virtual volume, journal-acknowledged writes, per-node stream limits, and a
// background cleaner whose debt drives the provider flow limiter.
//
// The cluster is where three of the paper's four observations originate:
//
//   - Obs#2: writes land in node journals and are cleaned in the background,
//     so device GC never sits on the critical path; only accumulated
//     cleaning debt (exposed via Debt) eventually triggers throttling.
//   - Obs#3: a volume's sequential window maps to few chunks and therefore
//     few placement groups, bottlenecking on the per-node stream, while
//     random writes fan out across all nodes.
//   - Obs#1 (in part): every access pays journal/data-store service time on
//     top of the network.
//
// A cluster may be shared by several volumes (the disaggregated backend of
// the paper's Fig 1 serves many tenants): callers register a flow per
// volume and submit I/O through WriteFor/ReadFor, which attribute per-flow
// operations, bytes, and cleaning debt while all flows contend on the same
// node servers, streams, and the one background cleaner. The pooled debt is
// what makes one tenant's overwrite churn advance every tenant's flow
// limiter (the cross-tenant face of Obs#2).
//
// SetIsolation makes both couplings schedulable (qos.Isolation): node
// streams, replication links, read bandwidth, and service slots dispatch
// per-flow by weight or reservation instead of FIFO, and each flow's
// contributions to the pooled debt pass through a per-flow admission
// token bucket — excess churn stays in a private account only that flow's
// limiter observes (DebtObservedBy), so one tenant's GC debt cannot
// throttle another. The default (no isolation) is byte-identical to the
// pre-isolation cluster.
package cluster

import (
	"fmt"

	"essdsim/internal/obs"
	"essdsim/internal/qos"
	"essdsim/internal/sim"
)

// Config parameterizes the storage cluster as seen by one volume.
type Config struct {
	Nodes      int   // storage nodes holding this volume's chunks
	ChunkBytes int64 // placement granularity (stripe unit)
	Replicas   int   // total copies, e.g. 3

	// Write path. Each node serves at most WriteSlots concurrent writes for
	// this volume, each costing a WriteService sample, with payload bytes
	// streaming through a per-node pipe of StreamBW bytes/s. These two
	// limits are the Observation #3 levers: sequential windows that fit in
	// one chunk serialize here.
	WriteSlots   int
	WriteService sim.Dist
	StreamBW     float64

	// Replication fan-out: payload leaves the primary over a pipe of
	// ReplBW bytes/s and pays ReplHop latency each way, plus the replica's
	// WriteService.
	ReplBW  float64
	ReplHop sim.Dist

	// Read path.
	ReadSlots   int
	ReadService sim.Dist
	ReadBW      float64 // per-node read bandwidth

	// Cleaner: background compaction drains invalidation debt at this
	// rate (bytes/s). Debt beyond the provider's spare capacity triggers
	// the flow limiter (package qos).
	CleanerRate float64
}

// Validate reports a descriptive error for inconsistent configuration.
func (c Config) Validate() error {
	switch {
	case c.Nodes < 1:
		return fmt.Errorf("cluster: need at least one node")
	case c.ChunkBytes < 4096:
		return fmt.Errorf("cluster: chunk bytes %d too small", c.ChunkBytes)
	case c.Replicas < 1 || c.Replicas > c.Nodes:
		return fmt.Errorf("cluster: replicas %d out of range for %d nodes", c.Replicas, c.Nodes)
	case c.WriteSlots < 1 || c.ReadSlots < 1:
		return fmt.Errorf("cluster: slots must be positive")
	case c.StreamBW <= 0 || c.ReplBW <= 0 || c.ReadBW <= 0:
		return fmt.Errorf("cluster: bandwidths must be positive")
	case c.WriteService == nil || c.ReadService == nil || c.ReplHop == nil:
		return fmt.Errorf("cluster: service distributions must be set")
	case c.CleanerRate < 0:
		return fmt.Errorf("cluster: cleaner rate must be non-negative")
	}
	return nil
}

// NodeStats counts per-node activity, used to verify placement balance.
type NodeStats struct {
	Writes, Reads         uint64 // operations served as primary
	ReplWrites            uint64 // replica copies received
	WriteBytes, ReadBytes int64
}

type node struct {
	write  *sim.Server
	read   *sim.Server
	stream *sim.Pipe
	repl   *sim.Pipe
	readBW *sim.Pipe
	stats  NodeStats
}

// FlowStats counts one registered flow's (volume's) use of the shared
// cluster: primary operations, payload bytes, and the cleaning debt the
// flow contributed to the pooled cleaner backlog.
type FlowStats struct {
	Name                  string
	Writes, Reads         uint64
	WriteBytes, ReadBytes int64
	DebtAdded             int64
}

// flowIso is one flow's isolation state: its scheduling parameters and
// its cleaner-debt admission bucket (non-FIFO policies only).
type flowIso struct {
	weight   float64
	reserved float64 // reserved bytes/s across the flow's contention points

	tokens   float64 // debt-share admission balance, bytes
	lastFill sim.Time
	private  float64 // debt kept private to this flow, bytes
}

// Cluster is the storage backend for one or more volumes.
type Cluster struct {
	eng   *sim.Engine
	cfg   Config
	rng   *sim.RNG
	nodes []*node
	flows []FlowStats

	debt       int64
	debtUpdate sim.Time
	cleaned    float64 // fractional carry of cleaner progress

	// live tracks each flow's residual contribution to the pooled debt:
	// it grows with the flow's admitted debt and drains proportionally
	// with the pool, so ReleaseFlow can credit back exactly the share of
	// the backlog that belonged to a departing volume. Pure side
	// accounting — it never feeds back into debt except at ReleaseFlow.
	live []float64

	// Isolation (SetIsolation): per-flow scheduling on every node
	// resource plus per-flow debt-share admission. isoOn false keeps the
	// original fully-pooled FIFO paths untouched.
	isoOn      bool
	iso        qos.Isolation
	shareRate  float64 // resolved DebtShareRate
	shareBurst float64 // resolved DebtShareBurst
	fiso       []flowIso

	// Intrusive free lists of pooled per-operation jobs (see writeJob):
	// the steady-state Write/Read paths allocate nothing.
	freeWrites *writeJob
	freeRepls  *replJob
	freeReads  *readJob
}

// writeJob is one replicated chunk write in flight: the leg fan-in counter
// plus the primary-leg continuations, bound once at construction so a
// steady-state write allocates nothing. Service times are still sampled at
// each stage's run time, keeping the RNG draw order of the closure-based
// path.
type writeJob struct {
	c        *Cluster
	flow     int
	rem      int // outstanding durability legs (primary + replicas)
	done     func()
	pn       *node
	onStream func() // primary stream drained → journal write service
	onLeg    func() // one leg durable
	nextFree *writeJob

	// Trace context, set only by WriteForTraced for sampled requests;
	// nil keeps every stage on the untouched hot path.
	trc  *obs.Req
	lane string
	t0   sim.Time
	tb   int64
}

func (c *Cluster) getWriteJob() *writeJob {
	j := c.freeWrites
	if j != nil {
		c.freeWrites = j.nextFree
		j.nextFree = nil
	} else {
		j = &writeJob{c: c}
		j.onStream = j.streamDone
		j.onLeg = j.leg
	}
	return j
}

func (j *writeJob) streamDone() {
	c := j.c
	svc := c.cfg.WriteService.Sample(c.rng)
	if j.trc == nil {
		j.pn.write.VisitFlow(j.flow, svc, j.onLeg)
		return
	}
	// Traced: record the stream transfer's queue/service split and wrap
	// the journal write visit so its span can be emitted at completion.
	// The service draw above happens in the same order as the untraced
	// path, so tracing never shifts the RNG stream.
	now := c.eng.Now()
	pol := c.policyLabel()
	j.trc.Span(j.lane, "stream-xfer", j.t0, now,
		now.Sub(j.t0)-j.pn.stream.TransferTime(j.tb), pol, j.pn.stream.Name())
	trc, lane, name, start := j.trc, j.lane, j.pn.write.Name(), now
	j.pn.write.VisitFlow(j.flow, svc, func() {
		end := c.eng.Now()
		trc.Span(lane, "write-svc", start, end, end.Sub(start)-svc, pol, name)
		j.onLeg()
	})
}

func (j *writeJob) leg() {
	j.rem--
	if j.rem != 0 {
		return
	}
	c, done := j.c, j.done
	j.done = nil
	j.pn = nil
	j.trc = nil
	j.lane = ""
	j.nextFree = c.freeWrites
	c.freeWrites = j
	done()
}

// replJob is one replica leg of a writeJob: repl-pipe drain, hop to the
// replica, its journal write service, and the hop back to the fan-in.
type replJob struct {
	c        *Cluster
	j        *writeJob
	rn       *node
	onRepl   func() // repl pipe drained → hop toward the replica
	onHop    func() // hop arrived → replica journal write service
	onSvc    func() // service done → hop the ack back to the fan-in
	nextFree *replJob

	// Trace context (WriteForTraced only); t0/tsvc are reused as the
	// current stage's start and sampled service time.
	trc  *obs.Req
	lane string
	t0   sim.Time
	tsvc sim.Duration
	pp   *sim.Pipe // primary's repl pipe, for the transfer-time split
	tb   int64
}

func (c *Cluster) getReplJob() *replJob {
	r := c.freeRepls
	if r != nil {
		c.freeRepls = r.nextFree
		r.nextFree = nil
	} else {
		r = &replJob{c: c}
		r.onRepl = r.replDone
		r.onHop = r.hopDone
		r.onSvc = r.svcDone
	}
	return r
}

func (r *replJob) replDone() {
	c := r.c
	hop := c.cfg.ReplHop.Sample(c.rng)
	if r.trc != nil {
		now := c.eng.Now()
		r.trc.Span(r.lane, "repl-xfer", r.t0, now,
			now.Sub(r.t0)-r.pp.TransferTime(r.tb), c.policyLabel(), r.pp.Name())
	}
	c.eng.Schedule(hop, r.onHop)
}

func (r *replJob) hopDone() {
	c := r.c
	svc := c.cfg.WriteService.Sample(c.rng)
	if r.trc != nil {
		r.t0 = c.eng.Now()
		r.tsvc = svc
	}
	r.rn.write.VisitFlow(r.j.flow, svc, r.onSvc)
}

func (r *replJob) svcDone() {
	c, j := r.c, r.j
	if r.trc != nil {
		now := c.eng.Now()
		r.trc.Span(r.lane, "repl-svc", r.t0, now,
			now.Sub(r.t0)-r.tsvc, c.policyLabel(), r.rn.write.Name())
	}
	r.j = nil
	r.rn = nil
	r.trc = nil
	r.lane = ""
	r.pp = nil
	r.nextFree = c.freeRepls
	c.freeRepls = r
	c.eng.Schedule(c.cfg.ReplHop.Sample(c.rng), j.onLeg)
}

// readJob is one chunk read in flight: read service, then the node's read
// bandwidth.
type readJob struct {
	c        *Cluster
	n        *node
	flow     int
	bytes    int64
	done     func()
	onSvc    func()
	nextFree *readJob

	// Trace context, set only by ReadForTraced for sampled requests.
	trc  *obs.Req
	lane string
	t0   sim.Time
	tsvc sim.Duration
}

func (c *Cluster) getReadJob() *readJob {
	j := c.freeReads
	if j != nil {
		c.freeReads = j.nextFree
		j.nextFree = nil
	} else {
		j = &readJob{c: c}
		j.onSvc = j.svcDone
	}
	return j
}

func (j *readJob) svcDone() {
	c, n, flow, bytes, done := j.c, j.n, j.flow, j.bytes, j.done
	trc, lane, t0, tsvc := j.trc, j.lane, j.t0, j.tsvc
	j.n = nil
	j.done = nil
	j.trc = nil
	j.lane = ""
	j.nextFree = c.freeReads
	c.freeReads = j
	if trc == nil {
		n.readBW.TransferFlow(flow, bytes, done)
		return
	}
	now := c.eng.Now()
	pol := c.policyLabel()
	trc.Span(lane, "read-svc", t0, now, now.Sub(t0)-tsvc, pol, n.read.Name())
	pipe := n.readBW
	start := now
	pipe.TransferFlow(flow, bytes, func() {
		end := c.eng.Now()
		trc.Span(lane, "read-bw", start, end, end.Sub(start)-pipe.TransferTime(bytes), pol, pipe.Name())
		done()
	})
}

// New builds the cluster. It panics on invalid configuration.
func New(eng *sim.Engine, cfg Config, rng *sim.RNG) *Cluster {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if rng == nil {
		rng = sim.NewRNG(0xc105, 0x7e12)
	}
	c := &Cluster{eng: eng, cfg: cfg, rng: rng}
	c.nodes = make([]*node, cfg.Nodes)
	for i := range c.nodes {
		c.nodes[i] = &node{
			write:  sim.NewServer(eng, fmt.Sprintf("n%d-write", i), cfg.WriteSlots),
			read:   sim.NewServer(eng, fmt.Sprintf("n%d-read", i), cfg.ReadSlots),
			stream: sim.NewPipe(eng, fmt.Sprintf("n%d-stream", i), cfg.StreamBW),
			repl:   sim.NewPipe(eng, fmt.Sprintf("n%d-repl", i), cfg.ReplBW),
			readBW: sim.NewPipe(eng, fmt.Sprintf("n%d-readbw", i), cfg.ReadBW),
		}
	}
	return c
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// NumNodes returns the node count.
func (c *Cluster) NumNodes() int { return len(c.nodes) }

// NodeOfChunk returns the primary node index of a chunk. Placement is a
// deterministic multiplicative hash so adjacent chunks land on unrelated
// nodes, as a real placement-group mapping would.
func (c *Cluster) NodeOfChunk(chunk int64) int {
	h := uint64(chunk) * 0x9e3779b97f4a7c15
	h ^= h >> 32
	return int(h % uint64(len(c.nodes)))
}

// NodeStats returns a snapshot of node i's counters.
func (c *Cluster) NodeStats(i int) NodeStats { return c.nodes[i].stats }

// RegisterFlow adds a named per-volume accounting flow and returns its id
// for WriteFor/ReadFor/AddDebtFor. Flows share every cluster resource;
// without isolation the id only attributes usage, with it the id also
// keys the per-flow schedulers and the debt-share admission bucket.
func (c *Cluster) RegisterFlow(name string) int {
	c.flows = append(c.flows, FlowStats{Name: name})
	c.live = append(c.live, 0)
	if c.isoOn {
		c.fiso = append(c.fiso, flowIso{
			weight:   1,
			tokens:   c.shareBurst,
			lastFill: c.eng.Now(),
		})
	}
	return len(c.flows) - 1
}

// SetIsolation installs a per-flow scheduler on every node resource and
// switches cleaner debt to per-flow admission. Call before registering
// flows or submitting traffic; a fifo (zero) policy is a no-op, leaving
// the original FIFO paths and the fully pooled debt untouched.
func (c *Cluster) SetIsolation(iso qos.Isolation) {
	if !iso.Enabled() {
		return
	}
	c.isoOn = true
	c.iso = iso
	c.shareRate = iso.DebtShareRate
	if c.shareRate <= 0 {
		c.shareRate = c.cfg.CleanerRate
	}
	c.shareBurst = iso.DebtShareBurst
	if c.shareBurst <= 0 {
		c.shareBurst = c.shareRate // one second of admission
	}
	for range c.flows { // backfill flows registered before isolation
		c.fiso = append(c.fiso, flowIso{weight: 1, tokens: c.shareBurst, lastFill: c.eng.Now()})
	}
	bq := iso.QuantumOrDefault()
	sq := c.serviceQuantum(bq)
	for _, n := range c.nodes {
		n.stream.SetQueue(iso.NewQueue(c.eng, bq))
		n.repl.SetQueue(iso.NewQueue(c.eng, bq))
		n.readBW.SetQueue(iso.NewQueue(c.eng, bq))
		n.write.SetQueue(iso.NewQueue(c.eng, sq))
		n.read.SetQueue(iso.NewQueue(c.eng, sq))
	}
}

// serviceQuantum converts the byte quantum into a service-time quantum
// (nanoseconds) via the node stream bandwidth — the time the stream
// would take to carry one quantum, which keeps the round granularity of
// the servers commensurate with the pipes feeding them.
func (c *Cluster) serviceQuantum(byteQuantum int64) int64 {
	q := int64(float64(byteQuantum) / c.cfg.StreamBW * float64(sim.Second))
	if q < 1 {
		q = 1
	}
	return q
}

// SetFlowQoS sets a registered flow's weight and reserved bytes/s on
// every node resource (no-op without isolation). The reservation is
// enforced per contention point: the flow is guaranteed reservedBps at
// each pipe it traverses, converted to service time at the node servers
// the same way the scheduling quantum is.
func (c *Cluster) SetFlowQoS(flow int, weight, reservedBps float64) {
	if !c.isoOn || flow < 0 {
		return
	}
	if weight <= 0 {
		weight = 1
	}
	c.fiso[flow].weight = weight
	c.fiso[flow].reserved = reservedBps
	reservedSvc := reservedBps / c.cfg.StreamBW * float64(sim.Second)
	for _, n := range c.nodes {
		n.stream.SetFlow(flow, weight, reservedBps)
		n.repl.SetFlow(flow, weight, reservedBps)
		n.readBW.SetFlow(flow, weight, reservedBps)
		n.write.SetFlow(flow, weight, reservedSvc)
		n.read.SetFlow(flow, weight, reservedSvc)
	}
}

// NumFlows returns the number of registered flows.
func (c *Cluster) NumFlows() int { return len(c.flows) }

// FlowStats returns a snapshot of flow i's counters.
func (c *Cluster) FlowStats(i int) FlowStats { return c.flows[i] }

// Write performs one replicated chunk write of the given payload: primary
// stream + journal-backed write service, then parallel fan-out to
// Replicas-1 peers, acknowledging (done) when all copies are durable.
func (c *Cluster) Write(chunk int64, bytes int64, done func()) {
	c.WriteFor(-1, chunk, bytes, done)
}

// WriteFor is Write with the primary operation and payload attributed to
// the registered flow (pass -1 for untracked).
func (c *Cluster) WriteFor(flow int, chunk int64, bytes int64, done func()) {
	if flow >= 0 {
		c.flows[flow].Writes++
		c.flows[flow].WriteBytes += bytes
	}
	p := c.NodeOfChunk(chunk)
	pn := c.nodes[p]
	pn.stats.Writes++
	pn.stats.WriteBytes += bytes
	// Cut-through replication: the primary streams the payload to its
	// peers while ingesting it, so the primary leg and the replica legs
	// proceed in parallel; the write acknowledges when every leg is
	// durable. The primary's repl pipe carries Replicas-1 copies, so its
	// bandwidth must exceed (Replicas-1)× the stream bandwidth for the
	// per-node stream to remain the sequential-write bottleneck.
	j := c.getWriteJob()
	j.flow = flow
	j.done = done
	j.pn = pn
	j.rem = 1 + (c.cfg.Replicas - 1)
	pn.stream.TransferFlow(flow, bytes, j.onStream)
	for i := 0; i < c.cfg.Replicas-1; i++ {
		r := (p + 1 + i) % len(c.nodes)
		rn := c.nodes[r]
		rn.stats.ReplWrites++
		rj := c.getReplJob()
		rj.j = j
		rj.rn = rn
		pn.repl.TransferFlow(flow, bytes, rj.onRepl)
	}
}

// Read performs one chunk read of the given payload from the chunk's
// primary: read service (index lookup + backend flash) then the node's read
// bandwidth.
func (c *Cluster) Read(chunk int64, bytes int64, done func()) {
	c.ReadFor(-1, chunk, bytes, done)
}

// ReadFor is Read with the operation and payload attributed to the
// registered flow (pass -1 for untracked).
func (c *Cluster) ReadFor(flow int, chunk int64, bytes int64, done func()) {
	if flow >= 0 {
		c.flows[flow].Reads++
		c.flows[flow].ReadBytes += bytes
	}
	p := c.NodeOfChunk(chunk)
	n := c.nodes[p]
	n.stats.Reads++
	n.stats.ReadBytes += bytes
	j := c.getReadJob()
	j.n = n
	j.flow = flow
	j.bytes = bytes
	j.done = done
	n.read.VisitFlow(flow, c.cfg.ReadService.Sample(c.rng), j.onSvc)
}

// AddDebt records freshly invalidated bytes (overwrites of previously
// written data) for the background cleaner.
func (c *Cluster) AddDebt(bytes int64) {
	c.AddDebtFor(-1, bytes)
}

// AddDebtFor is AddDebt with the contribution attributed to the registered
// flow (pass -1 for untracked). Under fifo, debt is pooled regardless of
// flow: the cleaner has one backlog, so every attached volume's flow
// limiter sees the sum of all tenants' churn. Under isolation each flow's
// contribution passes a token-bucket admission (DebtShareRate bytes/s
// into the pool); the excess stays private to the flow, observed only by
// its own limiter (DebtObservedBy) — one aggressor's churn can no longer
// throttle everyone.
func (c *Cluster) AddDebtFor(flow int, bytes int64) {
	if flow >= 0 {
		c.flows[flow].DebtAdded += bytes
	}
	c.settleDebt()
	if !c.isoOn || flow < 0 {
		c.debt += bytes
		if flow >= 0 {
			c.live[flow] += float64(bytes)
		}
		return
	}
	f := &c.fiso[flow]
	c.fillShare(f)
	admit := float64(bytes)
	if admit > f.tokens {
		admit = f.tokens
	}
	if admit < 0 {
		admit = 0
	}
	whole := int64(admit)
	f.tokens -= float64(whole)
	c.debt += whole
	c.live[flow] += float64(whole)
	f.private += float64(bytes - whole)
}

// fillShare accrues a flow's debt-share admission tokens up to now.
func (c *Cluster) fillShare(f *flowIso) {
	now := c.eng.Now()
	dt := now.Sub(f.lastFill).Seconds()
	f.lastFill = now
	if dt <= 0 {
		return
	}
	f.tokens += dt * c.shareRate
	if f.tokens > c.shareBurst {
		f.tokens = c.shareBurst
	}
}

// Debt returns the current uncleaned invalidation debt in bytes: the
// whole backlog under fifo, the shared (admitted) pool under isolation.
func (c *Cluster) Debt() int64 {
	c.settleDebt()
	return c.debt
}

// DebtObservedBy returns the cleaning debt the flow's limiter observes:
// identical to Debt under fifo, and the shared pool plus the flow's own
// private (unadmitted) debt under isolation — a flow always answers for
// its own churn in full, but for its neighbours' only up to the
// admission rate.
func (c *Cluster) DebtObservedBy(flow int) int64 {
	c.settleDebt()
	if !c.isoOn || flow < 0 {
		return c.debt
	}
	return c.debt + int64(c.fiso[flow].private)
}

// settleDebt applies the cleaner's continuous drain up to the current
// time: the shared pool first, then (under isolation) any leftover
// capacity drains the flows' private debt proportionally.
func (c *Cluster) settleDebt() {
	now := c.eng.Now()
	dt := now.Sub(c.debtUpdate).Seconds()
	c.debtUpdate = now
	if dt <= 0 || c.cfg.CleanerRate <= 0 {
		return
	}
	havePrivate := false
	if c.isoOn {
		for i := range c.fiso {
			if c.fiso[i].private > 0 {
				havePrivate = true
				break
			}
		}
	}
	if c.debt == 0 && !havePrivate {
		return
	}
	var spare float64 // whole bytes of capacity beyond the shared pool
	if c.debt > 0 {
		c.cleaned += dt * c.cfg.CleanerRate
		if whole := int64(c.cleaned); whole > 0 {
			c.cleaned -= float64(whole)
			before := c.debt
			c.debt -= whole
			if c.debt < 0 {
				spare = float64(-c.debt)
				c.debt = 0
				c.cleaned = 0
			}
			c.drainLive(before)
		}
	} else {
		spare = dt * c.cfg.CleanerRate
	}
	if spare <= 0 || !havePrivate {
		return
	}
	var total float64
	for i := range c.fiso {
		total += c.fiso[i].private
	}
	if total <= spare {
		for i := range c.fiso {
			c.fiso[i].private = 0
		}
		return
	}
	keep := 1 - spare/total
	for i := range c.fiso {
		c.fiso[i].private *= keep
	}
}

// drainLive scales every flow's residual pooled-debt share by the drain
// the cleaner just applied (before → c.debt), keeping the per-flow shares
// summing to the pool as it shrinks.
func (c *Cluster) drainLive(before int64) {
	if before <= 0 || len(c.live) == 0 {
		return
	}
	if c.debt == 0 {
		for i := range c.live {
			c.live[i] = 0
		}
		return
	}
	factor := float64(c.debt) / float64(before)
	for i := range c.live {
		c.live[i] *= factor
	}
}

// ReleaseFlow reclaims a departed flow's shared-cluster state: the flow's
// residual share of the pooled cleaner debt is credited back (a deleted
// volume's data is gone, so the cleaner no longer owes work for it), its
// private (unadmitted) debt account is cleared, and its scheduling shares
// at every node resource reset to the inert defaults. The flow's
// cumulative FlowStats counters are kept — a departed tenant's usage
// remains attributable — but the id must not be used for new traffic.
// Release only a quiescent flow (no in-flight operations).
func (c *Cluster) ReleaseFlow(flow int) {
	if flow < 0 || flow >= len(c.flows) {
		return
	}
	c.settleDebt()
	if reclaim := int64(c.live[flow]); reclaim > 0 {
		if reclaim > c.debt {
			reclaim = c.debt
		}
		c.debt -= reclaim
		if c.debt == 0 {
			c.cleaned = 0
		}
	}
	c.live[flow] = 0
	if !c.isoOn {
		return
	}
	f := &c.fiso[flow]
	f.weight, f.reserved = 1, 0
	f.tokens, f.private = 0, 0
	for _, n := range c.nodes {
		n.stream.SetFlow(flow, 1, 0)
		n.repl.SetFlow(flow, 1, 0)
		n.readBW.SetFlow(flow, 1, 0)
		n.write.SetFlow(flow, 1, 0)
		n.read.SetFlow(flow, 1, 0)
	}
}
