package workload

import (
	"fmt"

	"essdsim/internal/blockdev"
	"essdsim/internal/sim"
)

// Tenant pairs one volume with the generator that drives it inside a
// multi-tenant run. Exactly one of Open or Closed must be set: Open issues
// requests on an arrival schedule (RunOpen semantics) and Closed keeps a
// fixed queue depth outstanding (Run semantics).
type Tenant struct {
	// Name labels the tenant in results ("victim", "aggr0", ...).
	Name string
	// Dev is the tenant's volume. Every tenant's device must live on the
	// same simulation engine — attach them to one shared essd.Backend (or
	// build private backends on one engine for a no-interference control).
	Dev blockdev.Device

	Open   *OpenSpec
	Closed *Spec
}

// TenantResult holds one tenant's measurements from a RunTenants call.
// Exactly one of Open or Closed is non-nil, mirroring the tenant's spec.
type TenantResult struct {
	Name   string      `json:"name"`
	Device string      `json:"device"`
	Open   *OpenResult `json:"open,omitempty"`
	Closed *Result     `json:"closed,omitempty"`
}

// Throughput returns the tenant's mean completed bytes/s over its own
// measurement window, whichever generator family produced it.
func (r *TenantResult) Throughput() float64 {
	if r.Open != nil {
		return r.Open.Throughput()
	}
	return r.Closed.Throughput()
}

// RunTenants drives several tenants' generators concurrently inside one
// simulation engine: every generator is started, then a single engine run
// drains all of them, so the tenants' I/O interleaves event-for-event the
// way concurrent guests on a shared backend would. Results are returned in
// tenant order, each measured over that tenant's own submission-to-last-
// completion window.
//
// It panics on invalid input (a tenant without exactly one spec, a device
// on a different engine, or a spec its device rejects) — the same
// harness-programming-error contract as Run and RunOpen. Determinism: one
// engine means one event order, so a tenant mix is exactly reproducible
// from its specs and seeds regardless of host parallelism.
func RunTenants(eng *sim.Engine, tenants []Tenant) []*TenantResult {
	if len(tenants) == 0 {
		panic(fmt.Errorf("workload: no tenants"))
	}
	for i, t := range tenants {
		switch {
		case t.Dev == nil:
			panic(fmt.Errorf("workload: tenant %d (%s) has no device", i, t.Name))
		case t.Dev.Engine() != eng:
			panic(fmt.Errorf("workload: tenant %d (%s) device %q is not on the shared engine", i, t.Name, t.Dev.Name()))
		case (t.Open == nil) == (t.Closed == nil):
			panic(fmt.Errorf("workload: tenant %d (%s) must set exactly one of Open/Closed", i, t.Name))
		}
	}
	// Start every generator before running the engine: open-loop tenants
	// schedule their full arrival timetable, closed-loop tenants submit
	// their initial queue-depth window, all at the current virtual time.
	finishers := make([]func() *TenantResult, len(tenants))
	for i, t := range tenants {
		i, t := i, t
		if t.Open != nil {
			fin := startOpen(t.Dev, *t.Open)
			finishers[i] = func() *TenantResult {
				return &TenantResult{Name: t.Name, Device: t.Dev.Name(), Open: fin()}
			}
		} else {
			fin := start(t.Dev, *t.Closed)
			finishers[i] = func() *TenantResult {
				return &TenantResult{Name: t.Name, Device: t.Dev.Name(), Closed: fin()}
			}
		}
	}
	eng.Run()
	out := make([]*TenantResult, len(tenants))
	for i, fin := range finishers {
		out[i] = fin()
	}
	return out
}
