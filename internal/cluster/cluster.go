// Package cluster models the storage backend of elastic block storage
// (paper Fig 1): a set of storage nodes holding replicated chunks of the
// virtual volume, journal-acknowledged writes, per-node stream limits, and a
// background cleaner whose debt drives the provider flow limiter.
//
// The cluster is where three of the paper's four observations originate:
//
//   - Obs#2: writes land in node journals and are cleaned in the background,
//     so device GC never sits on the critical path; only accumulated
//     cleaning debt (exposed via Debt) eventually triggers throttling.
//   - Obs#3: a volume's sequential window maps to few chunks and therefore
//     few placement groups, bottlenecking on the per-node stream, while
//     random writes fan out across all nodes.
//   - Obs#1 (in part): every access pays journal/data-store service time on
//     top of the network.
//
// A cluster may be shared by several volumes (the disaggregated backend of
// the paper's Fig 1 serves many tenants): callers register a flow per
// volume and submit I/O through WriteFor/ReadFor, which attribute per-flow
// operations, bytes, and cleaning debt while all flows contend on the same
// node servers, streams, and the one background cleaner. The pooled debt is
// what makes one tenant's overwrite churn advance every tenant's flow
// limiter (the cross-tenant face of Obs#2).
package cluster

import (
	"fmt"

	"essdsim/internal/sim"
)

// Config parameterizes the storage cluster as seen by one volume.
type Config struct {
	Nodes      int   // storage nodes holding this volume's chunks
	ChunkBytes int64 // placement granularity (stripe unit)
	Replicas   int   // total copies, e.g. 3

	// Write path. Each node serves at most WriteSlots concurrent writes for
	// this volume, each costing a WriteService sample, with payload bytes
	// streaming through a per-node pipe of StreamBW bytes/s. These two
	// limits are the Observation #3 levers: sequential windows that fit in
	// one chunk serialize here.
	WriteSlots   int
	WriteService sim.Dist
	StreamBW     float64

	// Replication fan-out: payload leaves the primary over a pipe of
	// ReplBW bytes/s and pays ReplHop latency each way, plus the replica's
	// WriteService.
	ReplBW  float64
	ReplHop sim.Dist

	// Read path.
	ReadSlots   int
	ReadService sim.Dist
	ReadBW      float64 // per-node read bandwidth

	// Cleaner: background compaction drains invalidation debt at this
	// rate (bytes/s). Debt beyond the provider's spare capacity triggers
	// the flow limiter (package qos).
	CleanerRate float64
}

// Validate reports a descriptive error for inconsistent configuration.
func (c Config) Validate() error {
	switch {
	case c.Nodes < 1:
		return fmt.Errorf("cluster: need at least one node")
	case c.ChunkBytes < 4096:
		return fmt.Errorf("cluster: chunk bytes %d too small", c.ChunkBytes)
	case c.Replicas < 1 || c.Replicas > c.Nodes:
		return fmt.Errorf("cluster: replicas %d out of range for %d nodes", c.Replicas, c.Nodes)
	case c.WriteSlots < 1 || c.ReadSlots < 1:
		return fmt.Errorf("cluster: slots must be positive")
	case c.StreamBW <= 0 || c.ReplBW <= 0 || c.ReadBW <= 0:
		return fmt.Errorf("cluster: bandwidths must be positive")
	case c.WriteService == nil || c.ReadService == nil || c.ReplHop == nil:
		return fmt.Errorf("cluster: service distributions must be set")
	case c.CleanerRate < 0:
		return fmt.Errorf("cluster: cleaner rate must be non-negative")
	}
	return nil
}

// NodeStats counts per-node activity, used to verify placement balance.
type NodeStats struct {
	Writes, Reads         uint64 // operations served as primary
	ReplWrites            uint64 // replica copies received
	WriteBytes, ReadBytes int64
}

type node struct {
	write  *sim.Server
	read   *sim.Server
	stream *sim.Pipe
	repl   *sim.Pipe
	readBW *sim.Pipe
	stats  NodeStats
}

// FlowStats counts one registered flow's (volume's) use of the shared
// cluster: primary operations, payload bytes, and the cleaning debt the
// flow contributed to the pooled cleaner backlog.
type FlowStats struct {
	Name                  string
	Writes, Reads         uint64
	WriteBytes, ReadBytes int64
	DebtAdded             int64
}

// Cluster is the storage backend for one or more volumes.
type Cluster struct {
	eng   *sim.Engine
	cfg   Config
	rng   *sim.RNG
	nodes []*node
	flows []FlowStats

	debt       int64
	debtUpdate sim.Time
	cleaned    float64 // fractional carry of cleaner progress
}

// New builds the cluster. It panics on invalid configuration.
func New(eng *sim.Engine, cfg Config, rng *sim.RNG) *Cluster {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if rng == nil {
		rng = sim.NewRNG(0xc105, 0x7e12)
	}
	c := &Cluster{eng: eng, cfg: cfg, rng: rng}
	c.nodes = make([]*node, cfg.Nodes)
	for i := range c.nodes {
		c.nodes[i] = &node{
			write:  sim.NewServer(eng, fmt.Sprintf("n%d-write", i), cfg.WriteSlots),
			read:   sim.NewServer(eng, fmt.Sprintf("n%d-read", i), cfg.ReadSlots),
			stream: sim.NewPipe(eng, fmt.Sprintf("n%d-stream", i), cfg.StreamBW),
			repl:   sim.NewPipe(eng, fmt.Sprintf("n%d-repl", i), cfg.ReplBW),
			readBW: sim.NewPipe(eng, fmt.Sprintf("n%d-readbw", i), cfg.ReadBW),
		}
	}
	return c
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// NumNodes returns the node count.
func (c *Cluster) NumNodes() int { return len(c.nodes) }

// NodeOfChunk returns the primary node index of a chunk. Placement is a
// deterministic multiplicative hash so adjacent chunks land on unrelated
// nodes, as a real placement-group mapping would.
func (c *Cluster) NodeOfChunk(chunk int64) int {
	h := uint64(chunk) * 0x9e3779b97f4a7c15
	h ^= h >> 32
	return int(h % uint64(len(c.nodes)))
}

// NodeStats returns a snapshot of node i's counters.
func (c *Cluster) NodeStats(i int) NodeStats { return c.nodes[i].stats }

// RegisterFlow adds a named per-volume accounting flow and returns its id
// for WriteFor/ReadFor/AddDebtFor. Flows share every cluster resource; the
// id only attributes usage.
func (c *Cluster) RegisterFlow(name string) int {
	c.flows = append(c.flows, FlowStats{Name: name})
	return len(c.flows) - 1
}

// NumFlows returns the number of registered flows.
func (c *Cluster) NumFlows() int { return len(c.flows) }

// FlowStats returns a snapshot of flow i's counters.
func (c *Cluster) FlowStats(i int) FlowStats { return c.flows[i] }

// Write performs one replicated chunk write of the given payload: primary
// stream + journal-backed write service, then parallel fan-out to
// Replicas-1 peers, acknowledging (done) when all copies are durable.
func (c *Cluster) Write(chunk int64, bytes int64, done func()) {
	c.WriteFor(-1, chunk, bytes, done)
}

// WriteFor is Write with the primary operation and payload attributed to
// the registered flow (pass -1 for untracked).
func (c *Cluster) WriteFor(flow int, chunk int64, bytes int64, done func()) {
	if flow >= 0 {
		c.flows[flow].Writes++
		c.flows[flow].WriteBytes += bytes
	}
	p := c.NodeOfChunk(chunk)
	pn := c.nodes[p]
	pn.stats.Writes++
	pn.stats.WriteBytes += bytes
	// Cut-through replication: the primary streams the payload to its
	// peers while ingesting it, so the primary leg and the replica legs
	// proceed in parallel; the write acknowledges when every leg is
	// durable. The primary's repl pipe carries Replicas-1 copies, so its
	// bandwidth must exceed (Replicas-1)× the stream bandwidth for the
	// per-node stream to remain the sequential-write bottleneck.
	legs := 1 + (c.cfg.Replicas - 1)
	rem := legs
	leg := func() {
		rem--
		if rem == 0 {
			done()
		}
	}
	pn.stream.Transfer(bytes, func() {
		pn.write.Visit(c.cfg.WriteService.Sample(c.rng), leg)
	})
	for i := 0; i < c.cfg.Replicas-1; i++ {
		r := (p + 1 + i) % len(c.nodes)
		rn := c.nodes[r]
		rn.stats.ReplWrites++
		pn.repl.Transfer(bytes, func() {
			c.eng.Schedule(c.cfg.ReplHop.Sample(c.rng), func() {
				rn.write.Visit(c.cfg.WriteService.Sample(c.rng), func() {
					c.eng.Schedule(c.cfg.ReplHop.Sample(c.rng), leg)
				})
			})
		})
	}
}

// Read performs one chunk read of the given payload from the chunk's
// primary: read service (index lookup + backend flash) then the node's read
// bandwidth.
func (c *Cluster) Read(chunk int64, bytes int64, done func()) {
	c.ReadFor(-1, chunk, bytes, done)
}

// ReadFor is Read with the operation and payload attributed to the
// registered flow (pass -1 for untracked).
func (c *Cluster) ReadFor(flow int, chunk int64, bytes int64, done func()) {
	if flow >= 0 {
		c.flows[flow].Reads++
		c.flows[flow].ReadBytes += bytes
	}
	p := c.NodeOfChunk(chunk)
	n := c.nodes[p]
	n.stats.Reads++
	n.stats.ReadBytes += bytes
	n.read.Visit(c.cfg.ReadService.Sample(c.rng), func() {
		n.readBW.Transfer(bytes, done)
	})
}

// AddDebt records freshly invalidated bytes (overwrites of previously
// written data) for the background cleaner.
func (c *Cluster) AddDebt(bytes int64) {
	c.AddDebtFor(-1, bytes)
}

// AddDebtFor is AddDebt with the contribution attributed to the registered
// flow (pass -1 for untracked). Debt is pooled regardless of flow: the
// cleaner has one backlog, so every attached volume's flow limiter sees the
// sum of all tenants' churn.
func (c *Cluster) AddDebtFor(flow int, bytes int64) {
	if flow >= 0 {
		c.flows[flow].DebtAdded += bytes
	}
	c.settleDebt()
	c.debt += bytes
}

// Debt returns the current uncleaned invalidation debt in bytes.
func (c *Cluster) Debt() int64 {
	c.settleDebt()
	return c.debt
}

// settleDebt applies the cleaner's continuous drain up to the current time.
func (c *Cluster) settleDebt() {
	now := c.eng.Now()
	dt := now.Sub(c.debtUpdate).Seconds()
	c.debtUpdate = now
	if dt <= 0 || c.debt == 0 || c.cfg.CleanerRate <= 0 {
		return
	}
	c.cleaned += dt * c.cfg.CleanerRate
	if whole := int64(c.cleaned); whole > 0 {
		c.cleaned -= float64(whole)
		c.debt -= whole
		if c.debt < 0 {
			c.debt = 0
			c.cleaned = 0
		}
	}
}
