package sim

// Server models a service station with a fixed number of parallel service
// slots and an unbounded FIFO queue. Each visit occupies one slot for its
// service time; excess visitors queue in arrival order.
//
// Server is the building block for things like storage-node request
// processors and per-die command queues.
type Server struct {
	eng  *Engine
	name string
	cap  int

	busy     int
	queue    []serverJob // FIFO ring: live jobs are queue[qhead:]
	qhead    int
	served   uint64
	busyAcc  Duration  // accumulated slot-busy time, for utilization
	finishFn func(any) // bound finish method, allocated once per server

	sched FlowQueue // nil = FIFO on the original code path
}

type serverJob struct {
	service Duration
	done    func()
}

// NewServer returns a server with the given number of parallel slots
// (minimum 1).
func NewServer(eng *Engine, name string, slots int) *Server {
	if slots < 1 {
		slots = 1
	}
	s := &Server{eng: eng, name: name, cap: slots}
	s.finishFn = s.finish
	return s
}

// Name returns the server's diagnostic name.
func (s *Server) Name() string { return s.name }

// SetQueue installs a flow scheduler: visits that cannot start
// immediately queue there (keyed by flow id via VisitFlow) instead of
// the FIFO ring, and freed slots serve whatever the scheduler pops next.
// Install before the first visit; a nil scheduler is the default FIFO.
func (s *Server) SetQueue(q FlowQueue) { s.sched = q }

// SetFlow forwards a flow's scheduling parameters to the installed
// scheduler (no-op without one).
func (s *Server) SetFlow(flow int, weight, reservedPerSec float64) {
	if s.sched != nil {
		s.sched.SetFlow(flow, weight, reservedPerSec)
	}
}

// Scheduler returns the installed flow scheduler (nil under FIFO) so
// observability probes can snapshot per-flow deficits and tokens.
func (s *Server) Scheduler() FlowQueue { return s.sched }

// QueueLen returns the number of waiting (not yet in service) jobs.
func (s *Server) QueueLen() int {
	if s.sched != nil {
		return s.sched.Len()
	}
	return len(s.queue) - s.qhead
}

// Busy returns the number of occupied service slots.
func (s *Server) Busy() int { return s.busy }

// Served returns the number of completed visits.
func (s *Server) Served() uint64 { return s.served }

// BusyTime returns total accumulated slot-busy time across all visits.
func (s *Server) BusyTime() Duration { return s.busyAcc }

// Visit requests service of the given duration. done is invoked when service
// completes (after any queueing delay). done may be nil.
func (s *Server) Visit(service Duration, done func()) {
	if s.sched != nil {
		s.VisitFlow(-1, service, done)
		return
	}
	if service < 0 {
		service = 0
	}
	if s.busy < s.cap {
		s.start(service, done)
		return
	}
	s.queue = append(s.queue, serverJob{service: service, done: done})
}

// VisitFlow is Visit with the queueing attributed to a scheduler flow.
// Without an installed scheduler the flow id is ignored and the visit
// takes the exact FIFO path Visit always has.
func (s *Server) VisitFlow(flow int, service Duration, done func()) {
	if s.sched == nil {
		s.Visit(service, done)
		return
	}
	if service < 0 {
		service = 0
	}
	if s.busy < s.cap {
		s.start(service, done)
		return
	}
	s.sched.Push(flow, int64(service), done)
}

func (s *Server) start(service Duration, done func()) {
	s.busy++
	s.busyAcc += service
	// The completion event reuses the server's bound finish method with the
	// visit's done callback as the event argument — no closure per visit.
	s.eng.ScheduleCall(service, s.finishFn, done)
}

func (s *Server) finish(arg any) {
	s.busy--
	s.served++
	if done := arg.(func()); done != nil {
		done()
	}
	s.dispatch()
}

func (s *Server) dispatch() {
	if s.sched != nil {
		for s.busy < s.cap {
			cost, done, ok := s.sched.Pop()
			if !ok {
				return
			}
			s.start(Duration(cost), done)
		}
		return
	}
	for s.busy < s.cap && s.qhead < len(s.queue) {
		j := s.queue[s.qhead]
		// Advance a head index instead of shifting: popping is O(1), and
		// the drained prefix is reclaimed whenever the ring empties (the
		// steady state of a stable queue), bounding memory to the high-water
		// mark of outstanding jobs.
		s.queue[s.qhead] = serverJob{}
		s.qhead++
		if s.qhead == len(s.queue) {
			s.queue = s.queue[:0]
			s.qhead = 0
		}
		s.start(j.service, j.done)
	}
}

// Pipe models a bandwidth-limited, order-preserving transfer resource such
// as a network link direction or a bus. Transfers are serialized: a transfer
// of n bytes occupies the pipe for n/bandwidth seconds after all previously
// submitted transfers have drained.
type Pipe struct {
	eng  *Engine
	name string
	bps  float64 // bytes per second

	nextFree Time
	moved    int64

	// Flow-scheduled mode (SetQueue): instead of committing every
	// transfer's finish time at submission (the eager nextFree arithmetic
	// above, which fixes FIFO order at enqueue), transfers past the one
	// in flight wait in the scheduler and are picked by policy when the
	// pipe frees.
	sched       FlowQueue
	inflight    bool
	curFinish   Time
	queuedBytes int64
	finishFn    func(any) // bound finish method, allocated with the queue
}

// NewPipe returns a pipe with the given bandwidth in bytes per second.
func NewPipe(eng *Engine, name string, bytesPerSec float64) *Pipe {
	if bytesPerSec <= 0 {
		bytesPerSec = 1
	}
	return &Pipe{eng: eng, name: name, bps: bytesPerSec}
}

// Name returns the pipe's diagnostic name.
func (p *Pipe) Name() string { return p.name }

// Bandwidth returns the pipe bandwidth in bytes per second.
func (p *Pipe) Bandwidth() float64 { return p.bps }

// Moved returns the total bytes transferred.
func (p *Pipe) Moved() int64 { return p.moved }

// TransferTime returns the pure service time for n bytes, with no queueing.
func (p *Pipe) TransferTime(n int64) Duration {
	if n <= 0 {
		return 0
	}
	return Duration(float64(n) / p.bps * float64(Second))
}

// SetQueue installs a flow scheduler: transfers submitted while the pipe
// is busy queue there (keyed by flow id via TransferFlow) and are served
// in the order the policy picks, one at a time, when the pipe frees.
// Install before the first transfer; a nil scheduler keeps the original
// FIFO behaviour, in which every transfer's completion is committed at
// submission time.
func (p *Pipe) SetQueue(q FlowQueue) {
	p.sched = q
	if q != nil && p.finishFn == nil {
		p.finishFn = p.finishTransfer
	}
}

// Scheduler returns the installed flow scheduler (nil under FIFO) so
// observability probes can snapshot per-flow deficits and tokens.
func (p *Pipe) Scheduler() FlowQueue { return p.sched }

// SetFlow forwards a flow's scheduling parameters to the installed
// scheduler (no-op without one).
func (p *Pipe) SetFlow(flow int, weight, reservedPerSec float64) {
	if p.sched != nil {
		p.sched.SetFlow(flow, weight, reservedPerSec)
	}
}

// Transfer moves n bytes through the pipe and invokes done when the last
// byte has drained. done may be nil.
func (p *Pipe) Transfer(n int64, done func()) {
	if p.sched != nil {
		p.TransferFlow(-1, n, done)
		return
	}
	now := p.eng.Now()
	start := p.nextFree
	if start < now {
		start = now
	}
	finish := start.Add(p.TransferTime(n))
	p.nextFree = finish
	p.moved += n
	// done is scheduled directly (nil is a bare clock advance): no wrapper
	// closure per transfer on the hot path.
	p.eng.At(finish, done)
}

// TransferFlow is Transfer with the queueing attributed to a scheduler
// flow. Without an installed scheduler the flow id is ignored and the
// transfer takes the exact FIFO path Transfer always has.
func (p *Pipe) TransferFlow(flow int, n int64, done func()) {
	if p.sched == nil {
		p.Transfer(n, done)
		return
	}
	p.moved += n
	if !p.inflight {
		p.startTransfer(n, done)
		return
	}
	p.queuedBytes += n
	p.sched.Push(flow, n, done)
}

func (p *Pipe) startTransfer(n int64, done func()) {
	p.inflight = true
	p.curFinish = p.eng.Now().Add(p.TransferTime(n))
	// The completion event reuses the pipe's bound finish method with the
	// transfer's done callback as the event argument — no closure per
	// transfer.
	p.eng.ScheduleCall(p.TransferTime(n), p.finishFn, done)
}

func (p *Pipe) finishTransfer(arg any) {
	// Run the completion while the pipe still counts as busy, so transfers
	// it submits queue behind the already-waiting items instead of seizing
	// the pipe out of order.
	if done := arg.(func()); done != nil {
		done()
	}
	if cost, next, ok := p.sched.Pop(); ok {
		p.queuedBytes -= cost
		p.curFinish = p.eng.Now().Add(p.TransferTime(cost))
		p.eng.ScheduleCall(p.TransferTime(cost), p.finishFn, next)
		return
	}
	p.inflight = false
}

// Backlog returns how far in the future the pipe is already committed,
// i.e. the queueing delay a zero-length transfer would see now.
func (p *Pipe) Backlog() Duration {
	now := p.eng.Now()
	if p.sched != nil {
		var d Duration
		if p.inflight && p.curFinish > now {
			d = p.curFinish.Sub(now)
		}
		return d + Duration(float64(p.queuedBytes)/p.bps*float64(Second))
	}
	if p.nextFree <= now {
		return 0
	}
	return p.nextFree.Sub(now)
}
