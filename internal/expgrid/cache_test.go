package expgrid

import (
	"bytes"
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"essdsim/internal/blockdev"
	"essdsim/internal/profiles"
	"essdsim/internal/sim"
	"essdsim/internal/workload"
)

func cacheTestSweep(cache *Cache) Sweep {
	return Sweep{
		Kind:        Open,
		Devices:     Devices("gp2", func(seed uint64) blockdev.Device { return mustDevice("gp2", seed) }),
		Patterns:    []workload.Pattern{workload.RandWrite},
		BlockSizes:  []int64{256 << 10},
		Arrivals:    []workload.Arrival{workload.Uniform, workload.Bursty},
		RatesPerSec: []float64{1500, 3000},
		OpenOps:     600,
		Cache:       cache,
		Seed:        11,
		Label:       "cache-test",
	}
}

func mustDevice(name string, seed uint64) blockdev.Device {
	dev, err := profiles.ByName(name, sim.NewEngine(), sim.NewRNG(seed, seed^0x5c))
	if err != nil {
		panic(err)
	}
	return dev
}

// TestCacheWarmSweepIdentical runs the same sweep cold and warm and
// asserts the warm pass executes zero cells yet returns deeply equal
// measurements.
func TestCacheWarmSweepIdentical(t *testing.T) {
	cache := NewCache(0)
	cold, err := Runner{Workers: 4}.Run(context.Background(), cacheTestSweep(cache))
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := cache.Stats(); hits != 0 || misses != uint64(len(cold)) {
		t.Fatalf("cold run: hits=%d misses=%d, want 0/%d", hits, misses, len(cold))
	}
	warm, err := Runner{Workers: 4}.Run(context.Background(), cacheTestSweep(cache))
	if err != nil {
		t.Fatal(err)
	}
	if hits, _ := cache.Stats(); hits != uint64(len(cold)) {
		t.Fatalf("warm run hit %d entries, want %d", hits, len(cold))
	}
	for i := range warm {
		if !warm[i].Cached {
			t.Fatalf("warm cell %d not served from cache", i)
		}
		warm[i].Cached = false
		if !reflect.DeepEqual(cold[i], warm[i]) {
			t.Fatalf("cell %d differs between cold and warm run", i)
		}
	}
}

// TestCachePersistenceRoundTrip saves a populated cache to a tempdir file,
// loads it into a fresh cache (a simulated process restart), and asserts
// the warm sweep reproduces the cold measurements without simulating.
func TestCachePersistenceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	cache := NewCache(0)
	cold, err := Runner{}.Run(context.Background(), cacheTestSweep(cache))
	if err != nil {
		t.Fatal(err)
	}
	if err := cache.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	reloaded := NewCache(0)
	if err := reloaded.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	warm, err := Runner{}.Run(context.Background(), cacheTestSweep(reloaded))
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := reloaded.Stats(); hits != uint64(len(cold)) || misses != 0 {
		t.Fatalf("restart-warm run: hits=%d misses=%d, want %d/0", hits, misses, len(cold))
	}
	for i := range warm {
		if warm[i].Err != nil {
			t.Fatalf("warm cell %d errored: %v", i, warm[i].Err)
		}
		warm[i].Cached = false
		if !reflect.DeepEqual(cold[i], warm[i]) {
			t.Fatalf("cell %d differs after persistence round trip", i)
		}
	}
}

// TestCacheMissOnChangedSettings asserts that result-shaping settings
// outside the cell coordinates still change the cache key.
func TestCacheMissOnChangedSettings(t *testing.T) {
	cache := NewCache(0)
	sw := cacheTestSweep(cache)
	if _, err := (Runner{}).Run(context.Background(), sw); err != nil {
		t.Fatal(err)
	}
	more := sw
	more.OpenOps = 700 // same coordinates, different measurement length
	if _, err := (Runner{}).Run(context.Background(), more); err != nil {
		t.Fatal(err)
	}
	if hits, _ := cache.Stats(); hits != 0 {
		t.Fatalf("sweep with different OpenOps hit the cache %d times", hits)
	}
}

// TestCacheEviction bounds the cache by capacity, evicting LRU entries.
func TestCacheEviction(t *testing.T) {
	cache := NewCache(2)
	sw := cacheTestSweep(cache) // 4 cells
	if _, err := (Runner{Workers: 1}).Run(context.Background(), sw); err != nil {
		t.Fatal(err)
	}
	if n := cache.Len(); n != 2 {
		t.Fatalf("cache holds %d entries, capacity 2", n)
	}
}

// TestCacheInspectMismatch: a cell cached without an Inspect capture must
// not satisfy a sweep that needs one.
func TestCacheInspectMismatch(t *testing.T) {
	cache := NewCache(0)
	sw := cacheTestSweep(cache)
	if _, err := (Runner{}).Run(context.Background(), sw); err != nil {
		t.Fatal(err)
	}
	withInspect := sw
	withInspect.Inspect = func(dev blockdev.Device, c Cell) any {
		return map[string]int{"x": 1}
	}
	res, err := Runner{}.Run(context.Background(), withInspect)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Cached {
			t.Fatalf("cell %d served from cache despite missing Inspect capture", i)
		}
		if r.Info == nil {
			t.Fatalf("cell %d missing Info", i)
		}
	}
}

// TestCacheVersionRejected rejects unknown persisted formats.
func TestCacheVersionRejected(t *testing.T) {
	c := NewCache(0)
	if err := c.Load(bytes.NewReader([]byte(`{"version":99,"entries":[]}`))); err == nil {
		t.Fatal("want error for unknown cache file version")
	}
}

// countingInfo counts how many times it is JSON-marshalled.
type countingInfo struct{ marshals *int }

func (c countingInfo) MarshalJSON() ([]byte, error) {
	*c.marshals++
	return []byte(`{"x":1}`), nil
}

// TestCacheInfoMarshalsLazilyAndOnce pins the store-path fix: storing a
// cell's Inspect capture must not serialize it (store runs once per cell on
// the sweep hot path), and repeated Saves must serialize it exactly once —
// the first Save memoizes the bytes on the entry.
func TestCacheInfoMarshalsLazilyAndOnce(t *testing.T) {
	cache := NewCache(0)
	marshals := 0
	cache.store(1, CellResult{
		Cell: Cell{Seed: 42},
		Info: countingInfo{marshals: &marshals},
	})
	if marshals != 0 {
		t.Fatalf("store marshalled the Info %d times; must defer to Save", marshals)
	}
	// An in-process lookup is served from the live capture, no marshal.
	if res, ok := cache.lookup(1, Cell{Seed: 42}, true, nil); !ok || res.Info == nil {
		t.Fatal("in-process lookup with inspect must hit without serialization")
	}
	if marshals != 0 {
		t.Fatalf("lookup marshalled the Info %d times", marshals)
	}
	for i := 0; i < 3; i++ {
		if err := cache.Save(&bytes.Buffer{}); err != nil {
			t.Fatal(err)
		}
	}
	if marshals != 1 {
		t.Fatalf("three Saves marshalled the Info %d times, want exactly 1 (memoized)", marshals)
	}
}

// TestCacheUnmarshalableInfoStaysInMemory: an Inspect capture that cannot
// serialize keeps its entry usable in-process but out of the persisted file.
func TestCacheUnmarshalableInfoStaysInMemory(t *testing.T) {
	cache := NewCache(0)
	cache.store(1, CellResult{Cell: Cell{Seed: 7}, Info: make(chan int)})
	if res, ok := cache.lookup(1, Cell{Seed: 7}, true, nil); !ok || res.Info == nil {
		t.Fatal("in-memory entry with unmarshalable Info must still hit")
	}
	var buf bytes.Buffer
	if err := cache.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte(cellKey(1, 7))) {
		t.Fatalf("unmarshalable entry leaked into the persisted file: %s", buf.String())
	}
	// The failed marshal is memoized too: a second Save must not re-try
	// and must stay well-formed.
	if err := cache.Save(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}
