package scenario

// Observability-plane tests over the neighbor suite: worker determinism
// of the trace/probe exports, byte-identity of measured results with and
// without tracing, and stability of the sampled traces across cache-warm
// re-runs.

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"essdsim/internal/expgrid"
	"essdsim/internal/obs"
	"essdsim/internal/sim"
)

// quickObsNeighbor is quickNeighbor with both observability planes on.
func quickObsNeighbor() NeighborSweep {
	s := quickNeighbor()
	s.Obs = &obs.Config{SampleEvery: 32, ProbeInterval: 5 * sim.Millisecond}
	return s
}

func traceCSV(t *testing.T, rep *NeighborReport) string {
	t.Helper()
	var buf bytes.Buffer
	if err := obs.WriteTraceCSV(&buf, rep.Captures); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func probeCSV(t *testing.T, rep *NeighborReport) string {
	t.Helper()
	var buf bytes.Buffer
	if err := obs.WriteProbesCSV(&buf, rep.Captures); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestNeighborObsWorkerDeterminism pins the tracing plane's determinism
// promise: the sweep's trace CSV, probe CSV, and measured cells are
// byte-identical at 1 worker and at 8.
func TestNeighborObsWorkerDeterminism(t *testing.T) {
	s1 := quickObsNeighbor()
	s1.Workers = 1
	r1, err := RunNeighbor(context.Background(), s1)
	if err != nil {
		t.Fatal(err)
	}
	s8 := quickObsNeighbor()
	s8.Workers = 8
	r8, err := RunNeighbor(context.Background(), s8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Cells, r8.Cells) {
		t.Fatal("observed neighbor cells differ between 1 and 8 workers")
	}
	if tr1, tr8 := traceCSV(t, r1), traceCSV(t, r8); tr1 != tr8 {
		t.Fatal("trace CSV differs between 1 and 8 workers")
	}
	if p1, p8 := probeCSV(t, r1), probeCSV(t, r8); p1 != p8 {
		t.Fatal("probe CSV differs between 1 and 8 workers")
	}
}

// TestNeighborObsByteIdentity is the golden pin of the "tracing never
// perturbs results" contract: the same sweep with observability off and
// on must produce byte-identical FormatNeighbor and WriteNeighborCSV
// output, while the observed run additionally carries spans, probe rows,
// and one explanation per cell.
func TestNeighborObsByteIdentity(t *testing.T) {
	plain, err := RunNeighbor(context.Background(), quickNeighbor())
	if err != nil {
		t.Fatal(err)
	}
	traced, err := RunNeighbor(context.Background(), quickObsNeighbor())
	if err != nil {
		t.Fatal(err)
	}

	var plainTbl, tracedTbl bytes.Buffer
	FormatNeighbor(&plainTbl, plain)
	FormatNeighbor(&tracedTbl, traced)
	if plainTbl.String() != tracedTbl.String() {
		t.Fatal("FormatNeighbor output differs between untraced and traced runs")
	}
	var plainCSV, tracedCSV bytes.Buffer
	if err := WriteNeighborCSV(&plainCSV, plain); err != nil {
		t.Fatal(err)
	}
	if err := WriteNeighborCSV(&tracedCSV, traced); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plainCSV.Bytes(), tracedCSV.Bytes()) {
		t.Fatal("WriteNeighborCSV output differs between untraced and traced runs")
	}

	if len(traced.Captures) != len(traced.Cells) {
		t.Fatalf("got %d captures for %d cells", len(traced.Captures), len(traced.Cells))
	}
	spans := 0
	for _, cap := range traced.Captures {
		if cap == nil {
			t.Fatal("nil capture")
		}
		spans += len(cap.Tracer.Spans())
		if cap.Prober.Samples() == 0 {
			t.Fatalf("capture %s collected no probe samples", cap.Label)
		}
	}
	if spans == 0 {
		t.Fatal("traced sweep recorded no spans")
	}
	if len(traced.Explanations) != len(traced.Cells) {
		t.Fatalf("got %d explanations for %d cells", len(traced.Explanations), len(traced.Cells))
	}
	var report bytes.Buffer
	obs.FormatExplanations(&report, traced.Explanations)
	if !strings.Contains(report.String(), "Cliff attribution") {
		t.Fatalf("attribution report missing header:\n%s", report.String())
	}
	for _, e := range traced.Explanations {
		if len(e.Findings) == 0 {
			t.Fatalf("cell %s: explanation with no findings", e.Cell)
		}
	}
}

// TestNeighborObsCacheWarmStability pins two cache interactions: an
// observed run forces fresh simulations even on a warm cache (a cached
// cell would produce no capture) and still yields the same sampled
// traces, and the warm cache keeps serving unobserved runs afterwards.
func TestNeighborObsCacheWarmStability(t *testing.T) {
	cache := expgrid.NewCache(0)
	run := func() (*NeighborReport, string) {
		s := quickObsNeighbor()
		s.Cache = cache
		rep, err := RunNeighbor(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		return rep, traceCSV(t, rep)
	}
	r1, tr1 := run()
	if r1.CachedCells != 0 {
		t.Fatalf("cold observed run reported %d cached cells", r1.CachedCells)
	}
	r2, tr2 := run()
	if r2.CachedCells != 0 {
		t.Fatalf("observed re-run served %d cells from cache; ForceRun must bypass reads", r2.CachedCells)
	}
	if tr1 != tr2 {
		t.Fatal("trace CSV differs across cache-warm re-runs")
	}
	if !reflect.DeepEqual(r1.Cells, r2.Cells) {
		t.Fatal("observed cells differ across cache-warm re-runs")
	}

	plain := quickNeighbor()
	plain.Cache = cache
	r3, err := RunNeighbor(context.Background(), plain)
	if err != nil {
		t.Fatal(err)
	}
	if r3.CachedCells != len(r3.Cells) {
		t.Fatalf("unobserved run after observed ones simulated %d of %d cells; observed runs must still refresh the cache",
			len(r3.Cells)-r3.CachedCells, len(r3.Cells))
	}
}

// TestNeighborObsBadConfig rejects a non-positive trace sample rate.
func TestNeighborObsBadConfig(t *testing.T) {
	s := quickNeighbor()
	s.Obs = &obs.Config{SampleEvery: 0}
	if _, err := RunNeighbor(context.Background(), s); err == nil {
		t.Fatal("SampleEvery 0 must be rejected")
	}
}
