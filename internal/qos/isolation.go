package qos

import (
	"fmt"

	"essdsim/internal/sim"
)

// IsolationPolicy names the scheduling discipline installed at every
// contention point of a shared backend: the fabric uplink/downlink, the
// per-node stream/replication/read pipes, and the node write/read
// servers.
type IsolationPolicy uint8

const (
	// IsolationFIFO is the default: all flows contend in arrival order,
	// exactly as before isolation existed (byte-identical event order).
	IsolationFIFO IsolationPolicy = iota
	// IsolationWFQ shares each contention point among backlogged flows
	// in proportion to their weights (deficit round-robin).
	IsolationWFQ
	// IsolationReservation serves flows with a ReservedRate strictly
	// first up to that rate, spilling unused capacity into the WFQ pool
	// (work-conserving).
	IsolationReservation
)

// String returns the policy's flag name.
func (p IsolationPolicy) String() string {
	switch p {
	case IsolationFIFO:
		return "fifo"
	case IsolationWFQ:
		return "wfq"
	case IsolationReservation:
		return "reservation"
	}
	return fmt.Sprintf("IsolationPolicy(%d)", uint8(p))
}

// IsolationPolicyNames lists the valid ParseIsolationPolicy inputs.
func IsolationPolicyNames() []string { return []string{"fifo", "wfq", "reservation"} }

// ParseIsolationPolicy maps a flag name to its policy, with a
// descriptive error naming the valid set for anything else.
func ParseIsolationPolicy(name string) (IsolationPolicy, error) {
	switch name {
	case "fifo":
		return IsolationFIFO, nil
	case "wfq":
		return IsolationWFQ, nil
	case "reservation":
		return IsolationReservation, nil
	}
	return 0, fmt.Errorf("qos: unknown isolation policy %q (valid: fifo, wfq, reservation)", name)
}

// Isolation configures per-tenant QoS isolation for a shared backend: the
// scheduling policy at every contention point plus the shaping of the
// cleaner-debt pool. The zero value is plain FIFO with fully pooled debt
// — the exact pre-isolation behaviour.
type Isolation struct {
	Policy IsolationPolicy

	// Quantum is the weighted-fair scheduling quantum in bytes (default
	// 256 KiB): the per-round allocation at the fabric and stream pipes,
	// converted to service time at the node servers.
	Quantum int64

	// DebtShareRate caps how fast one flow's cleaning debt is admitted
	// into the shared pool, in bytes/s (default: the cluster's cleaner
	// rate, so a lone tenant can still use the whole cleaner). Excess
	// debt stays private to the contributing flow: only that flow's
	// limiter observes it. Ignored under fifo, where debt is fully
	// pooled.
	DebtShareRate float64
	// DebtShareBurst is the admission bucket depth in bytes (default one
	// second of DebtShareRate).
	DebtShareBurst float64
}

// Enabled reports whether the configuration departs from plain FIFO.
func (i Isolation) Enabled() bool { return i.Policy != IsolationFIFO }

// QuantumOrDefault returns the scheduling quantum in bytes.
func (i Isolation) QuantumOrDefault() int64 {
	if i.Quantum > 0 {
		return i.Quantum
	}
	return 256 << 10
}

// NewQueue builds the policy's flow scheduler with the quantum expressed
// in the target resource's cost units (bytes for a pipe, service
// nanoseconds for a server). It returns nil for fifo: not installing a
// queue is what keeps the default byte-identical.
func (i Isolation) NewQueue(eng *sim.Engine, quantum int64) sim.FlowQueue {
	switch i.Policy {
	case IsolationWFQ:
		return sim.NewDRRQueue(quantum)
	case IsolationReservation:
		return sim.NewReservationQueue(eng, quantum)
	}
	return nil
}

// Signature renders the configuration for cache labels and variants:
// two Isolation values build identical schedulers exactly when their
// signatures match.
func (i Isolation) Signature() string {
	return fmt.Sprintf("%s/q%d/sr%g/sb%g", i.Policy, i.QuantumOrDefault(), i.DebtShareRate, i.DebtShareBurst)
}

// GuaranteedShare is the analytic lower bound on the fraction of one
// contention point's capacity a flow is guaranteed when every flow is
// backlogged: zero under fifo (arrival order grants nothing), the
// weight share under wfq, and the reserved fraction (topped up by the
// weight share of the unreserved remainder) under reservation. The
// fleet screen uses it to discount cross-tenant damage honestly rather
// than assuming isolation fixes everything.
func (i Isolation) GuaranteedShare(weight, totalWeight, reservedFrac float64) float64 {
	if weight <= 0 {
		weight = 1
	}
	switch i.Policy {
	case IsolationWFQ:
		if totalWeight <= 0 {
			return 0
		}
		return weight / totalWeight
	case IsolationReservation:
		share := reservedFrac
		if share > 1 {
			share = 1
		}
		if totalWeight > 0 {
			share += (1 - share) * weight / totalWeight
		}
		return share
	}
	return 0
}

// DebtCouplingFactor is the analytic fraction of a neighbour's excess
// churn that can surface in a co-tenant's observed cleaner debt: 1 under
// fifo (one pooled backlog), and the admitted fraction of the cleaner
// under isolation — the debt-share bucket admits at most DebtShareRate
// bytes/s into the pool, so co-tenants see at most that fraction of the
// cleaner's capacity consumed by any one aggressor.
func (i Isolation) DebtCouplingFactor(cleanerRate float64) float64 {
	if !i.Enabled() || cleanerRate <= 0 {
		return 1
	}
	rate := i.DebtShareRate
	if rate <= 0 {
		rate = cleanerRate
	}
	if rate >= cleanerRate {
		return 1
	}
	return rate / cleanerRate
}
