package fleet

import (
	"fmt"
	"io"
	"strings"

	"essdsim/internal/results"
	"essdsim/internal/sim"
)

// BackendsTable renders the study as one row per (policy, materialized
// backend): membership, nominal load against the packing budgets, and the
// backend's aggregate outcome. Schema documented in docs/formats.md.
func BackendsTable(r *Report) *results.Table {
	t := results.NewTable("fleet_backends",
		"policy", "backend", "tenants", "members",
		"offered_mbps", "write_mbps", "utilization",
		"achieved_mbps", "shared_debt_bytes", "throttled_tenants",
		"worst_p99_ms", "worst_p999_ms",
	)
	for _, pr := range r.Policies {
		for _, br := range pr.Backends {
			t.AddRow(
				pr.Policy,
				results.Int(int64(br.Index)),
				results.Int(int64(len(br.Tenants))),
				strings.Join(br.Tenants, "+"),
				results.Float(br.OfferedBps/1e6),
				results.Float(br.WriteBps/1e6),
				results.Float(br.Utilization),
				results.Float(br.AchievedBps/1e6),
				results.Int(br.SharedDebt),
				results.Int(int64(br.Throttled)),
				results.Millis(br.WorstP99),
				results.Millis(br.WorstP999),
			)
		}
	}
	return t
}

// TenantsTable renders the study as one row per (policy, tenant): the
// demand, the backend it landed on, its measured tail, SLO verdicts, and
// its inflation over the solo control. Schema documented in
// docs/formats.md.
func TenantsTable(r *Report) *results.Table {
	t := results.NewTable("fleet_tenants",
		"policy", "tenant", "backend",
		"rate_per_s", "block_size", "write_ratio_pct", "arrival",
		"ops", "bytes", "elapsed_s", "mbps",
		"lat_p50_ms", "lat_p99_ms", "lat_p999_ms",
		"p99_violation", "p999_violation",
		"p99_inflation", "p999_inflation",
		"throttled", "throttle_onset_s", "budget_stall_s", "debt_added_bytes",
	)
	for _, pr := range r.Policies {
		for _, tr := range pr.Tenants {
			t.AddRow(
				pr.Policy,
				tr.Name,
				results.Int(int64(tr.Backend)),
				results.Float(tr.RatePerSec),
				results.Int(tr.BlockSize),
				results.Int(int64(tr.WriteRatioPct)),
				tr.Arrival.String(),
				results.Uint(tr.Ops),
				results.Int(tr.Bytes),
				results.Seconds(tr.Elapsed),
				results.Float(tr.ThroughputBps/1e6),
				results.Millis(tr.Lat.P50),
				results.Millis(tr.Lat.P99),
				results.Millis(tr.Lat.P999),
				results.Bool(tr.P99Violation),
				results.Bool(tr.P999Violation),
				results.Float(tr.P99Inflation),
				results.Float(tr.P999Inflation),
				results.Bool(tr.Throttled),
				results.Seconds(tr.ThrottleOnset),
				results.Seconds(tr.BudgetStall),
				results.Int(tr.DebtAdded),
			)
		}
	}
	return t
}

// WriteBackendsCSV dumps the per-backend table as CSV.
func WriteBackendsCSV(w io.Writer, r *Report) error {
	return BackendsTable(r).WriteCSV(w)
}

// WriteTenantsCSV dumps the per-tenant table as CSV.
func WriteTenantsCSV(w io.Writer, r *Report) error {
	return TenantsTable(r).WriteCSV(w)
}

// Format writes the policy-vs-policy comparison as aligned tables: one
// fleet-wide summary row per policy, then each policy's per-backend
// breakdown.
func Format(w io.Writer, r *Report) {
	fmt.Fprintf(w, "Fleet packing: %d tenants on up to %d backends, budget %.0f MB/s (write %.0f MB/s), SLO p99<%s p99.9<%s\n",
		r.Tenants, r.Backends, r.BackendBps/1e6, r.WriteBps/1e6,
		fmtLat(r.SLOP99), fmtLat(r.SLOP999))
	fmt.Fprintf(w, "%-13s %8s %6s %9s %10s %9s %10s %11s\n",
		"policy", "backends", "util%", "p99-viol", "p999-viol", "throttled", "worst-p99x", "worst-p999x")
	for _, pr := range r.Policies {
		fmt.Fprintf(w, "%-13s %8d %6.0f %9d %10d %9d %10.2f %11.2f\n",
			pr.Policy, pr.BackendsUsed, pr.MeanUtilization*100,
			pr.P99Violations, pr.P999Violations, pr.ThrottledTenants,
			pr.WorstP99Inflation, pr.WorstP999Inflation)
	}
	for _, pr := range r.Policies {
		fmt.Fprintf(w, "\n%s:\n", pr.Policy)
		fmt.Fprintf(w, "  %3s %7s %6s %9s %9s %9s %9s %8s  %s\n",
			"b", "tenants", "util%", "offeredMB", "worstp99", "worstp999", "debtMB", "throttle", "members")
		for _, br := range pr.Backends {
			fmt.Fprintf(w, "  %3d %7d %6.0f %9.0f %9s %9s %9d %8d  %s\n",
				br.Index, len(br.Tenants), br.Utilization*100, br.OfferedBps/1e6,
				fmtLat(br.WorstP99), fmtLat(br.WorstP999),
				br.SharedDebt/1e6, br.Throttled, strings.Join(br.Tenants, "+"))
		}
	}
}

// fmtLat renders a latency compactly (µs under 1 ms, ms otherwise).
func fmtLat(d sim.Duration) string {
	switch {
	case d < 0:
		return "-"
	case d < sim.Millisecond:
		return fmt.Sprintf("%dµs", int64(d)/1000)
	default:
		return fmt.Sprintf("%.1fms", d.Seconds()*1e3)
	}
}
