package churn

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"essdsim/internal/expgrid"
	"essdsim/internal/fleet"
	"essdsim/internal/sim"
)

// EventKind enumerates the volume lifecycle events the control plane
// applies between epochs, plus the Migrate records rebalancers emit.
type EventKind int

const (
	// Create provisions a new volume cloned from a catalog demand shape
	// and places it online via the placement policy.
	Create EventKind = iota
	// Delete detaches a live volume; its backend capacity is reclaimed
	// from the next epoch on.
	Delete
	// Expand doubles a live volume's demand scale (bounded by MaxScale).
	Expand
	// Shrink halves a live volume's demand scale (bounded by MinScale).
	Shrink
	// Snapshot models a snapshot/clone as a one-epoch write burst: the
	// volume's offered rate is multiplied by BurstFactor for the next
	// epoch only.
	Snapshot
	// Migrate is emitted by rebalancing policies (never drawn from the
	// churn process): the volume moves to another backend at a cost of
	// one volume copy.
	Migrate
)

// String names the kind as it appears in reports and the events CSV.
func (k EventKind) String() string {
	switch k {
	case Create:
		return "create"
	case Delete:
		return "delete"
	case Expand:
		return "expand"
	case Shrink:
		return "shrink"
	case Snapshot:
		return "snapshot"
	case Migrate:
		return "migrate"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one scripted lifecycle event. Epoch is the control epoch the
// event is applied at the start of (0-based). Tenant names the target:
// for Create, a catalog demand name (the new volume clones that shape);
// for every other kind, a live volume's instance name.
type Event struct {
	Epoch  int
	Kind   EventKind
	Tenant string
}

// EventRecord is one applied event in the report's audit trail,
// including the migrations the rebalancer decided.
type EventRecord struct {
	Epoch  int
	Kind   EventKind
	Tenant string // volume instance name
	Demand string // catalog demand the volume derives from
	From   int    // backend before the event (-1 for Create)
	To     int    // backend after the event (-1 for Delete)
	Scale  float64
	// MoveBytes is the migration cost (one volume copy) for Migrate
	// records, 0 otherwise.
	MoveBytes int64
}

// Spec declares a churn study over a fleet spec. The embedded
// fleet.Spec supplies the demand catalog (the shapes creates clone),
// the backend/volume templates, packing budgets, SLO targets, the
// epoch length (Fleet.Horizon), seed, workers, cache, and label.
// Fleet.Policies is not compared policy-by-policy here; Placement
// picks the single online policy (default: the first fleet policy).
type Spec struct {
	Fleet fleet.Spec

	// Epochs is the number of control epochs (default 6). Each epoch
	// simulates one Fleet.Horizon of tenant I/O.
	Epochs int

	// ChurnRate is the mean number of lifecycle events drawn per epoch
	// from the seeded churn process (Poisson-distributed; 0 = a static
	// fleet, negative is invalid). Ignored when Script is non-empty.
	ChurnRate float64

	// BurstFactor multiplies a snapshotted volume's offered rate for
	// one epoch (default 3).
	BurstFactor float64

	// MaxScale and MinScale bound a volume's demand scale under
	// expand/shrink (defaults 4 and 0.25).
	MaxScale, MinScale float64

	// Placement makes the online decision for every created volume: the
	// policy re-plans the live fleet through its ordinary Place call and
	// the control plane adopts only the newcomer's slot — existing
	// volumes move only via the Rebalancer. Default: the first policy of
	// the fleet spec.
	Placement fleet.PlacementPolicy

	// Rebalancer plans migrations between epochs (default NeverMove).
	Rebalancer Rebalancer

	// MigrationBudget caps the rebalancer's moves per epoch (default 2).
	MigrationBudget int

	// Script, when non-empty, replaces the random churn process with an
	// explicit timeline (events applied in slice order within an epoch).
	Script []Event
}

func (s Spec) withDefaults() Spec {
	s.Fleet = s.Fleet.Normalize()
	if s.Epochs <= 0 {
		s.Epochs = 6
	}
	if s.BurstFactor <= 0 {
		s.BurstFactor = 3
	}
	if s.MaxScale <= 0 {
		s.MaxScale = 4
	}
	if s.MinScale <= 0 {
		s.MinScale = 0.25
	}
	if s.Placement == nil {
		s.Placement = s.Fleet.Policies[0]
	}
	if s.Rebalancer == nil {
		s.Rebalancer = NeverMove{}
	}
	if s.MigrationBudget <= 0 {
		s.MigrationBudget = 2
	}
	return s
}

// Validate reports a descriptive error for a nonsensical spec. The
// embedded fleet spec is validated too.
func (s Spec) Validate() error {
	if err := s.Fleet.Validate(); err != nil {
		return err
	}
	if s.ChurnRate < 0 {
		return fmt.Errorf("churn: negative churn rate %g", s.ChurnRate)
	}
	for _, d := range s.Fleet.Demands {
		if strings.Contains(d.Name, "~") {
			return fmt.Errorf("churn: demand name %q contains the instance-token character '~'", d.Name)
		}
	}
	byName := make(map[string]bool, len(s.Fleet.Demands))
	for _, d := range s.Fleet.Demands {
		byName[d.Name] = true
	}
	for i, ev := range s.Script {
		if ev.Epoch < 0 || ev.Epoch >= s.Epochs {
			return fmt.Errorf("churn: script event %d targets epoch %d of %d", i, ev.Epoch, s.Epochs)
		}
		if ev.Kind == Migrate {
			return fmt.Errorf("churn: script event %d: migrations are decided by the rebalancer, not scripted", i)
		}
		if ev.Kind == Create && !byName[ev.Tenant] {
			return fmt.Errorf("churn: script event %d creates from unknown catalog demand %q", i, ev.Tenant)
		}
	}
	return nil
}

// volume is one live volume in the control plane's state.
type volume struct {
	name     string // instance name (catalog name, "~i<n>" for clones)
	base     int    // catalog demand index
	scale    float64
	burst    bool // snapshot burst active for the coming epoch
	backend  int
	instance int // 1 for the initial population, 2+ for creates
}

// effScale is the scale the coming epoch simulates at.
func (v *volume) effScale(burstFactor float64) float64 {
	if v.burst {
		return v.scale * burstFactor
	}
	return v.scale
}

// token renders the volume's member token for cell naming and volume
// naming: the catalog name, "~i<n>" for clone instances, and "~x<s>"
// whenever the effective scale differs from 1 — so a cell name plus the
// catalog (already folded into the sweep label) uniquely determines
// every member's demand, which is what keeps cell seeds and cache
// entries sound.
func (v *volume) token(burstFactor float64) string {
	t := v.name
	if s := v.effScale(burstFactor); s != 1 {
		t += fmt.Sprintf("~x%g", s)
	}
	return t
}

// effDemand is the concrete demand the coming epoch simulates: the
// catalog shape with the rate scaled and the instance token as name.
func (s Spec) effDemand(v *volume) fleet.Demand {
	d := s.Fleet.Demands[v.base]
	d.Name = v.token(s.BurstFactor)
	d.RatePerSec *= v.effScale(s.BurstFactor)
	return d
}

// state is the control plane's evolving view.
type state struct {
	spec Spec
	cons fleet.Constraints
	live []*volume
	next map[string]int // per-base clone instance counter
}

// find returns the live index of the named volume, or -1.
func (st *state) find(name string) int {
	for i, v := range st.live {
		if v.name == name {
			return i
		}
	}
	return -1
}

// nominalLoad sums each backend's offered bytes/s at current scales
// (bursts included): the provider-visible numbers every control
// decision — placement and rebalancing alike — is made from.
func (st *state) nominalLoad() []float64 {
	load := make([]float64, st.spec.Fleet.Backends)
	for _, v := range st.live {
		load[v.backend] += st.spec.effDemand(v).OfferedBps()
	}
	return load
}

// place runs the placement policy over the live fleet plus the
// newcomer and adopts the newcomer's slot.
func (st *state) place(newcomer fleet.Demand) int {
	demands := make([]fleet.Demand, 0, len(st.live)+1)
	for _, v := range st.live {
		demands = append(demands, st.spec.effDemand(v))
	}
	demands = append(demands, newcomer)
	assign := st.spec.Placement.Place(st.cons, demands)
	b := assign[len(assign)-1]
	if b < 0 || b >= st.spec.Fleet.Backends {
		b = 0
	}
	return b
}

// moveBytes is the migration-cost model: moving a volume copies its
// full provisioned capacity across the fabric once.
func (s Spec) moveBytes() int64 { return s.Fleet.Volume.Capacity }

// poisson draws a Poisson-distributed count with the given mean
// (Knuth's product-of-uniforms method; the mean is a per-epoch event
// rate, so it is small and the loop short).
func poisson(rng *sim.RNG, mean float64) int {
	if mean <= 0 {
		return 0
	}
	limit := math.Exp(-mean)
	n, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= limit {
			return n
		}
		n++
	}
}

// epochEvents returns the lifecycle events to apply at the start of the
// given epoch: the scripted ones, or draws from the seeded process.
// Event draws derive from the fleet seed and the epoch index only, so
// the timeline is independent of worker count and of the simulator.
func (st *state) epochEvents(epoch int, rng *sim.RNG) []Event {
	if len(st.spec.Script) > 0 {
		var evs []Event
		for _, ev := range st.spec.Script {
			if ev.Epoch == epoch {
				evs = append(evs, ev)
			}
		}
		return evs
	}
	er := rng.Derive(fmt.Sprintf("epoch%d", epoch))
	n := poisson(er, st.spec.ChurnRate)
	evs := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		var kind EventKind
		switch r := er.Float64(); {
		case r < 0.30:
			kind = Create
		case r < 0.50:
			kind = Delete
		case r < 0.70:
			kind = Expand
		case r < 0.85:
			kind = Shrink
		default:
			kind = Snapshot
		}
		var target string
		if kind == Create {
			target = st.spec.Fleet.Demands[er.IntN(len(st.spec.Fleet.Demands))].Name
		} else {
			if len(st.live) == 0 {
				continue
			}
			target = st.live[er.IntN(len(st.live))].name
		}
		evs = append(evs, Event{Epoch: epoch, Kind: kind, Tenant: target})
	}
	return evs
}

// apply mutates the live set for one event and returns its record, or
// false when the event is a no-op (unknown target, delete of the last
// volume, scale already at its bound).
func (st *state) apply(ev Event) (EventRecord, bool) {
	s := st.spec
	switch ev.Kind {
	case Create:
		base := -1
		for i, d := range s.Fleet.Demands {
			if d.Name == ev.Tenant {
				base = i
				break
			}
		}
		if base < 0 {
			return EventRecord{}, false
		}
		st.next[ev.Tenant]++
		v := &volume{
			name:     ev.Tenant,
			base:     base,
			scale:    1,
			instance: st.next[ev.Tenant],
		}
		if v.instance > 1 {
			v.name = fmt.Sprintf("%s~i%d", ev.Tenant, v.instance)
		}
		v.backend = st.place(s.effDemand(v))
		st.live = append(st.live, v)
		return EventRecord{Epoch: ev.Epoch, Kind: Create, Tenant: v.name,
			Demand: ev.Tenant, From: -1, To: v.backend, Scale: v.scale}, true
	case Delete:
		i := st.find(ev.Tenant)
		if i < 0 || len(st.live) == 1 {
			return EventRecord{}, false
		}
		v := st.live[i]
		st.live = append(st.live[:i], st.live[i+1:]...)
		return EventRecord{Epoch: ev.Epoch, Kind: Delete, Tenant: v.name,
			Demand: s.Fleet.Demands[v.base].Name, From: v.backend, To: -1, Scale: v.scale}, true
	case Expand, Shrink:
		i := st.find(ev.Tenant)
		if i < 0 {
			return EventRecord{}, false
		}
		v := st.live[i]
		scale := v.scale * 2
		if ev.Kind == Shrink {
			scale = v.scale / 2
		}
		if scale > s.MaxScale || scale < s.MinScale {
			return EventRecord{}, false
		}
		v.scale = scale
		return EventRecord{Epoch: ev.Epoch, Kind: ev.Kind, Tenant: v.name,
			Demand: s.Fleet.Demands[v.base].Name, From: v.backend, To: v.backend, Scale: v.scale}, true
	case Snapshot:
		i := st.find(ev.Tenant)
		if i < 0 {
			return EventRecord{}, false
		}
		v := st.live[i]
		v.burst = true
		return EventRecord{Epoch: ev.Epoch, Kind: Snapshot, Tenant: v.name,
			Demand: s.Fleet.Demands[v.base].Name, From: v.backend, To: v.backend,
			Scale: v.effScale(s.BurstFactor)}, true
	default:
		return EventRecord{}, false
	}
}

// rebalance runs the rebalancing policy over the nominal view and
// applies its moves under the migration budget, returning their
// records.
func (st *state) rebalance(epoch int) []EventRecord {
	s := st.spec
	view := View{
		Backends:   s.Fleet.Backends,
		BackendBps: s.Fleet.BackendBps,
		Load:       st.nominalLoad(),
		Budget:     s.MigrationBudget,
	}
	for _, v := range st.live {
		view.Tenants = append(view.Tenants, TenantView{
			Name:       v.name,
			Backend:    v.backend,
			OfferedBps: s.effDemand(v).OfferedBps(),
		})
	}
	moves := s.Rebalancer.Plan(view)
	if len(moves) > s.MigrationBudget {
		moves = moves[:s.MigrationBudget]
	}
	var recs []EventRecord
	for _, m := range moves {
		if m.Tenant < 0 || m.Tenant >= len(st.live) || m.To < 0 || m.To >= s.Fleet.Backends {
			continue
		}
		v := st.live[m.Tenant]
		if v.backend == m.To {
			continue
		}
		from := v.backend
		v.backend = m.To
		recs = append(recs, EventRecord{Epoch: epoch, Kind: Migrate, Tenant: v.name,
			Demand: s.Fleet.Demands[v.base].Name, From: from, To: m.To,
			Scale: v.scale, MoveBytes: s.moveBytes()})
	}
	return recs
}

// beRef ties one epoch's materialized backend to its simulation cell.
type beRef struct {
	backend int
	cell    int   // index into the deduplicated cell slice
	members []int // live indices snapshot, in member order (for names only)
}

// epochPlan is one epoch's placement snapshot: the cells to simulate
// and the per-member identity needed to fold results back.
type epochPlan struct {
	refs    []beRef
	events  []EventRecord
	tenants int
	offered float64
}

// snapshot appends the epoch's backend populations to the cell set
// (deduplicating by cell name — a backend unchanged across epochs, or
// identical to one from another epoch, simulates once) and returns the
// epoch's refs. Members order by (catalog index, instance) so a
// zero-churn epoch names its cells exactly as fleet.Run would.
func (st *state) snapshot(cells *[]fleet.MixCell, index map[string]int) []beRef {
	s := st.spec
	var refs []beRef
	for b := 0; b < s.Fleet.Backends; b++ {
		var members []int
		for i, v := range st.live {
			if v.backend == b {
				members = append(members, i)
			}
		}
		if len(members) == 0 {
			continue
		}
		sort.SliceStable(members, func(x, y int) bool {
			vx, vy := st.live[members[x]], st.live[members[y]]
			if vx.base != vy.base {
				return vx.base < vy.base
			}
			return vx.instance < vy.instance
		})
		tokens := make([]string, len(members))
		demands := make([]fleet.Demand, len(members))
		for i, li := range members {
			tokens[i] = st.live[li].token(s.BurstFactor)
			demands[i] = s.effDemand(st.live[li])
		}
		name := "mix[" + strings.Join(tokens, "+") + "]"
		ci, ok := index[name]
		if !ok {
			ci = len(*cells)
			index[name] = ci
			*cells = append(*cells, fleet.MixCell{Name: name, Members: demands})
		}
		refs = append(refs, beRef{backend: b, cell: ci, members: members})
	}
	return refs
}

// Run executes the churn study: the placement policy packs the initial
// catalog, then each epoch applies lifecycle events and rebalancing
// moves on the nominal (provider-visible) numbers, and every epoch's
// backend populations are simulated through one parallel expgrid sweep
// — cells deduplicated by population across epochs and shared, via the
// fleet label scheme, with static fleet studies on the same cache. The
// result is deterministic and identical for any worker count; with
// Fleet.Cache a warm re-run simulates zero new cells. Cancel ctx to
// stop early.
func Run(ctx context.Context, s Spec) (*Report, error) {
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	st := &state{spec: s, cons: s.Fleet.PackingConstraints(), next: map[string]int{}}

	// Initial population: the placement policy packs the catalog exactly
	// as a static fleet study would.
	assign := s.Placement.Place(st.cons, s.Fleet.Demands)
	if len(assign) != len(s.Fleet.Demands) {
		return nil, fmt.Errorf("churn: policy %s placed %d of %d demands",
			s.Placement.Name(), len(assign), len(s.Fleet.Demands))
	}
	for i, d := range s.Fleet.Demands {
		b := assign[i]
		if b < 0 || b >= s.Fleet.Backends {
			return nil, fmt.Errorf("churn: policy %s placed a demand on backend %d of %d",
				s.Placement.Name(), b, s.Fleet.Backends)
		}
		st.next[d.Name] = 1
		st.live = append(st.live, &volume{name: d.Name, base: i, scale: 1, backend: b, instance: 1})
	}

	// Plan every epoch up front: the control plane acts on nominal
	// demand numbers only, so the full timeline is known before any
	// simulation and all cells run in one maximally-parallel sweep.
	rng := sim.NewRNG(s.Fleet.Seed, 0xc0ffee).Derive("churn:" + s.Fleet.Label)
	var cells []fleet.MixCell
	index := map[string]int{}
	plans := make([]epochPlan, s.Epochs)
	for e := 0; e < s.Epochs; e++ {
		var recs []EventRecord
		for _, ev := range st.epochEvents(e, rng) {
			if rec, ok := st.apply(ev); ok {
				recs = append(recs, rec)
			}
		}
		recs = append(recs, st.rebalance(e)...)
		plans[e] = epochPlan{
			refs:    st.snapshot(&cells, index),
			events:  recs,
			tenants: len(st.live),
		}
		for _, l := range st.nominalLoad() {
			plans[e].offered += l
		}
		// Snapshot bursts last one epoch.
		for _, v := range st.live {
			v.burst = false
		}
	}

	results, err := expgrid.Runner{Workers: s.Fleet.Workers}.Run(ctx, s.Fleet.MixSweep(cells))
	if err != nil {
		return nil, err
	}
	return s.fold(plans, cells, results), nil
}
