package workload_test

import (
	"fmt"

	"essdsim/internal/essd"
	"essdsim/internal/profiles"
	"essdsim/internal/sim"
	"essdsim/internal/workload"
)

// ExampleRunOpen drives an open-loop workload: 1000 random 256 KiB writes
// offered at 1000 req/s against a burstable gp2-class volume. The request
// count is exact (the schedule issues all of them) and the run drains
// every completion before returning.
func ExampleRunOpen() {
	eng := sim.NewEngine()
	dev, err := profiles.ByName("gp2", eng, sim.NewRNG(7, 7^0x5c))
	if err != nil {
		panic(err)
	}
	res := workload.RunOpen(dev, workload.OpenSpec{
		Pattern:    workload.RandWrite,
		BlockSize:  256 << 10,
		RatePerSec: 1000,
		Arrival:    workload.Uniform,
		Count:      1000,
		Seed:       7,
	})
	// The last request issues at 999 ms; Elapsed covers at least that
	// plus its completion.
	fmt.Printf("ops=%d bytes=%dMiB drained=%v\n",
		res.Ops, res.Bytes>>20, res.Elapsed >= 999*sim.Millisecond)
	// Output:
	// ops=1000 bytes=250MiB drained=true
}

// ExampleRunTenants runs two tenants inside one engine: a steady reader
// and a bursty writer, each on its own volume attached to one shared
// storage backend. A single engine run drains both generators; every
// tenant is measured over its own window.
func ExampleRunTenants() {
	eng := sim.NewEngine()
	rng := sim.NewRNG(3, 9)
	be := essd.NewBackend(eng, profiles.NeighborBackendConfig(), rng.Derive("backend"))
	steady := be.Attach(profiles.NeighborVolumeConfig("steady"), rng)
	noisy := be.Attach(profiles.NeighborVolumeConfig("noisy"), rng)
	steady.Precondition(1)
	noisy.Precondition(1)
	results := workload.RunTenants(eng, []workload.Tenant{
		{Name: "steady", Dev: steady, Open: &workload.OpenSpec{
			Pattern: workload.RandRead, BlockSize: 64 << 10,
			RatePerSec: 200, Arrival: workload.Uniform, Count: 400, Seed: 1,
		}},
		{Name: "noisy", Dev: noisy, Open: &workload.OpenSpec{
			Pattern: workload.RandWrite, BlockSize: 256 << 10,
			RatePerSec: 1200, Arrival: workload.Bursty, Count: 2400, Seed: 2,
		}},
	})
	fmt.Printf("steady: ops=%d, noisy: ops=%d, shared debt is the writer's: %v\n",
		results[0].Open.Ops, results[1].Open.Ops,
		noisy.BackendUse().DebtAdded > 0 && steady.BackendUse().DebtAdded == 0)
	// Output:
	// steady: ops=400, noisy: ops=2400, shared debt is the writer's: true
}
