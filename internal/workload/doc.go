// Package workload generates the paper's FIO-style workloads against a
// simulated device, in three regimes:
//
//   - Run drives a closed loop: a fixed queue depth of outstanding I/Os,
//     each completion immediately submitting the next request. This is the
//     paper's microbenchmark shape (§III-A) — the four access patterns
//     (random/sequential × read/write), mixed read/write ratios,
//     configurable I/O size and queue depth, bounded by duration, byte
//     volume, or op count.
//
//   - RunOpen drives an open loop: requests issue on an arrival schedule
//     (uniform, Poisson, or bursty) at an offered rate, regardless of
//     completions. This is the regime where an ESSD's provisioned budget
//     and burst credits dominate (Observation/Implication #4): a device
//     that cannot keep up accumulates a queue, and the recorded latency
//     includes that queueing delay — exactly what a deadline-driven
//     service experiences.
//
//   - RunTenants drives a tenant mix: several generators (open- or
//     closed-loop), each against its own volume, started together and
//     drained by ONE engine run, so their I/O interleaves event for event
//     the way concurrent guests on a shared storage backend would. Each
//     tenant measures its own submission-to-last-completion window. This
//     is the multi-tenant regime behind the noisy-neighbor scenarios:
//     volumes attached to a shared essd.Backend interfere, volumes on
//     private backends do not.
//
// # Model assumptions
//
// Both loops run in deterministic virtual time on the device's sim.Engine;
// identical specs and seeds reproduce identical measurements on any
// machine and worker count. Offsets are drawn uniformly (or Zipf-skewed
// via Hotspot) over the device or a leading Region; sequential patterns
// wrap at the region boundary. Latency histograms are HDR-style
// (~3% relative resolution); open-loop results additionally carry
// per-interval completion timelines (OpenResult.Series, LatSeries) whose
// windows expose the before/after of a credit-exhaustion cliff, and can
// track per-window percentile histograms (OpenSpec.WindowPercentiles) for
// SLO probing.
//
// Specs are validated before running; Run and RunOpen panic on invalid
// specs (a harness programming error), while Validate returns the same
// condition as an error for front ends that want a clean diagnostic.
package workload
