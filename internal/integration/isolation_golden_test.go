package integration

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"essdsim/internal/fleet"
	"essdsim/internal/scenario"
	"essdsim/internal/sim"
)

// The CSV files under testdata/ were captured on the pre-isolation stack
// (every contention point hard-coded FIFO, the tree before the pluggable
// qos.IsolationPolicy refactor) by running these exact sweeps with
// -update. The isolation refactor threads a scheduler interface through
// sim.Server, sim.Pipe, the cluster, and the fabric; this test pins the
// promise that the default fifo policy is invisible: same RNG derivation
// chain, same event order, byte-identical CSV output.
var update = flag.Bool("update", false, "rewrite the isolation golden files from the current tree")

func goldenNeighborSweep() scenario.NeighborSweep {
	return scenario.NeighborSweep{
		AggressorCounts:      []int{0, 2, 4},
		AggressorRatesPerSec: []float64{1600},
		VictimOps:            900,
		Seed:                 7,
		Label:                "neighbor-golden",
	}
}

func goldenFleetSpec() fleet.Spec {
	return fleet.Spec{
		Demands:  fleet.SyntheticDemands(6, 2),
		Backends: 2,
		SLOP999:  5 * sim.Millisecond,
		Seed:     7,
		Label:    "fleet-golden",
	}
}

// checkGolden compares got against the named testdata file, rewriting the
// file instead when -update is set.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update on a known-good tree): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from the pre-isolation golden capture (%d vs %d bytes)", name, len(got), len(want))
	}
}

// TestNeighborDefaultIsolationGolden pins the noisy-neighbor suite's
// default-policy output byte-for-byte against the pre-refactor capture.
func TestNeighborDefaultIsolationGolden(t *testing.T) {
	rep, err := scenario.RunNeighbor(context.Background(), goldenNeighborSweep())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := scenario.WriteNeighborCSV(&buf, rep); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "neighbor_fifo_golden.csv", buf.Bytes())
}

// TestFleetDefaultIsolationGolden pins the fleet packing study's
// default-policy output (both CSV views) byte-for-byte against the
// pre-refactor capture.
func TestFleetDefaultIsolationGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-backend fleet sweep")
	}
	rep, err := fleet.Run(context.Background(), goldenFleetSpec())
	if err != nil {
		t.Fatal(err)
	}
	var backends, tenants bytes.Buffer
	if err := fleet.WriteBackendsCSV(&backends, rep); err != nil {
		t.Fatal(err)
	}
	if err := fleet.WriteTenantsCSV(&tenants, rep); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fleet_fifo_backends_golden.csv", backends.Bytes())
	checkGolden(t, "fleet_fifo_tenants_golden.csv", tenants.Bytes())
}
