package sim

// Server models a service station with a fixed number of parallel service
// slots and an unbounded FIFO queue. Each visit occupies one slot for its
// service time; excess visitors queue in arrival order.
//
// Server is the building block for things like storage-node request
// processors and per-die command queues.
type Server struct {
	eng  *Engine
	name string
	cap  int

	busy     int
	queue    []serverJob // FIFO ring: live jobs are queue[qhead:]
	qhead    int
	served   uint64
	busyAcc  Duration  // accumulated slot-busy time, for utilization
	finishFn func(any) // bound finish method, allocated once per server
}

type serverJob struct {
	service Duration
	done    func()
}

// NewServer returns a server with the given number of parallel slots
// (minimum 1).
func NewServer(eng *Engine, name string, slots int) *Server {
	if slots < 1 {
		slots = 1
	}
	s := &Server{eng: eng, name: name, cap: slots}
	s.finishFn = s.finish
	return s
}

// Name returns the server's diagnostic name.
func (s *Server) Name() string { return s.name }

// QueueLen returns the number of waiting (not yet in service) jobs.
func (s *Server) QueueLen() int { return len(s.queue) - s.qhead }

// Busy returns the number of occupied service slots.
func (s *Server) Busy() int { return s.busy }

// Served returns the number of completed visits.
func (s *Server) Served() uint64 { return s.served }

// BusyTime returns total accumulated slot-busy time across all visits.
func (s *Server) BusyTime() Duration { return s.busyAcc }

// Visit requests service of the given duration. done is invoked when service
// completes (after any queueing delay). done may be nil.
func (s *Server) Visit(service Duration, done func()) {
	if service < 0 {
		service = 0
	}
	if s.busy < s.cap {
		s.start(service, done)
		return
	}
	s.queue = append(s.queue, serverJob{service: service, done: done})
}

func (s *Server) start(service Duration, done func()) {
	s.busy++
	s.busyAcc += service
	// The completion event reuses the server's bound finish method with the
	// visit's done callback as the event argument — no closure per visit.
	s.eng.ScheduleCall(service, s.finishFn, done)
}

func (s *Server) finish(arg any) {
	s.busy--
	s.served++
	if done := arg.(func()); done != nil {
		done()
	}
	s.dispatch()
}

func (s *Server) dispatch() {
	for s.busy < s.cap && s.qhead < len(s.queue) {
		j := s.queue[s.qhead]
		// Advance a head index instead of shifting: popping is O(1), and
		// the drained prefix is reclaimed whenever the ring empties (the
		// steady state of a stable queue), bounding memory to the high-water
		// mark of outstanding jobs.
		s.queue[s.qhead] = serverJob{}
		s.qhead++
		if s.qhead == len(s.queue) {
			s.queue = s.queue[:0]
			s.qhead = 0
		}
		s.start(j.service, j.done)
	}
}

// Pipe models a bandwidth-limited, order-preserving transfer resource such
// as a network link direction or a bus. Transfers are serialized: a transfer
// of n bytes occupies the pipe for n/bandwidth seconds after all previously
// submitted transfers have drained.
type Pipe struct {
	eng  *Engine
	name string
	bps  float64 // bytes per second

	nextFree Time
	moved    int64
}

// NewPipe returns a pipe with the given bandwidth in bytes per second.
func NewPipe(eng *Engine, name string, bytesPerSec float64) *Pipe {
	if bytesPerSec <= 0 {
		bytesPerSec = 1
	}
	return &Pipe{eng: eng, name: name, bps: bytesPerSec}
}

// Name returns the pipe's diagnostic name.
func (p *Pipe) Name() string { return p.name }

// Bandwidth returns the pipe bandwidth in bytes per second.
func (p *Pipe) Bandwidth() float64 { return p.bps }

// Moved returns the total bytes transferred.
func (p *Pipe) Moved() int64 { return p.moved }

// TransferTime returns the pure service time for n bytes, with no queueing.
func (p *Pipe) TransferTime(n int64) Duration {
	if n <= 0 {
		return 0
	}
	return Duration(float64(n) / p.bps * float64(Second))
}

// Transfer moves n bytes through the pipe and invokes done when the last
// byte has drained. done may be nil.
func (p *Pipe) Transfer(n int64, done func()) {
	now := p.eng.Now()
	start := p.nextFree
	if start < now {
		start = now
	}
	finish := start.Add(p.TransferTime(n))
	p.nextFree = finish
	p.moved += n
	// done is scheduled directly (nil is a bare clock advance): no wrapper
	// closure per transfer on the hot path.
	p.eng.At(finish, done)
}

// Backlog returns how far in the future the pipe is already committed,
// i.e. the queueing delay a zero-length transfer would see now.
func (p *Pipe) Backlog() Duration {
	now := p.eng.Now()
	if p.nextFree <= now {
		return 0
	}
	return p.nextFree.Sub(now)
}
