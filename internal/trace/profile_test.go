package trace

import (
	"strings"
	"testing"

	"essdsim/internal/blockdev"
	"essdsim/internal/sim"
)

// TestProfileOf checks the offered-load summary: rate from inter-arrival
// gaps, write mix by request count, and the degenerate-trace zeros.
func TestProfileOf(t *testing.T) {
	recs := []Record{
		{At: 0, Op: blockdev.Write, Offset: 0, Size: 8192},
		{At: 250 * sim.Millisecond, Op: blockdev.Read, Offset: 8192, Size: 4096},
		{At: 500 * sim.Millisecond, Op: blockdev.Write, Offset: 16384, Size: 4096},
		{At: 750 * sim.Millisecond, Op: blockdev.Trim, Offset: 0, Size: 4096},
	}
	p := ProfileOf(recs)
	if p.Ops != 4 || p.Reads != 1 || p.Writes != 2 {
		t.Fatalf("counts = %d/%d/%d, want 4 ops, 1 read, 2 writes", p.Ops, p.Reads, p.Writes)
	}
	if p.Span != 750*sim.Millisecond {
		t.Fatalf("span = %v, want 750ms", p.Span)
	}
	if p.RatePerSec != 4 {
		t.Fatalf("rate = %v, want 4/s (3 gaps over 750 ms)", p.RatePerSec)
	}
	if p.WriteRatioPct != 67 {
		t.Fatalf("write ratio = %d%%, want 67%% (2 of 3 reads+writes)", p.WriteRatioPct)
	}
	if p.MeanSize != (8192+4096*3)/4 {
		t.Fatalf("mean size = %d", p.MeanSize)
	}

	if p := ProfileOf(nil); p.Ops != 0 || p.RatePerSec != 0 {
		t.Fatalf("empty profile = %+v", p)
	}
	single := ProfileOf(recs[:1])
	if single.RatePerSec != 0 || single.Span != 0 {
		t.Fatalf("single-record profile has a rate: %+v", single)
	}
	burst := ProfileOf([]Record{
		{At: 0, Op: blockdev.Write, Size: 4096},
		{At: 0, Op: blockdev.Write, Size: 4096},
	})
	if burst.RatePerSec != 0 {
		t.Fatalf("instantaneous burst has rate %v", burst.RatePerSec)
	}
}

// TestProfileOfMSR round-trips an MSR CSV through ParseMSR + Fit and
// checks the profile end to end — the path the -aggr-trace CLI flag uses.
func TestProfileOfMSR(t *testing.T) {
	csv := strings.Join([]string{
		"128166372003061629,src1,0,Write,8192,16384,1331",
		"128166372013061629,src1,0,Read,1048576000,4096,551",
		"128166372023061629,src1,0,Write,0,4096,100",
	}, "\n")
	recs, err := ParseMSR(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	p := ProfileOf(Fit(recs, 1<<30, 4096))
	if p.Ops != 3 || p.Writes != 2 {
		t.Fatalf("profile = %+v", p)
	}
	// 10^7 ticks (100 ns each) per gap → 1 s per gap → 1 req/s.
	if p.RatePerSec < 0.99 || p.RatePerSec > 1.01 {
		t.Fatalf("rate = %v, want ~1/s", p.RatePerSec)
	}
	if p.WriteRatioPct != 67 {
		t.Fatalf("write ratio = %d%%, want 67%%", p.WriteRatioPct)
	}
}
