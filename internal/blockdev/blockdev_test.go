package blockdev

import (
	"testing"

	"essdsim/internal/sim"
)

type stubDevice struct {
	eng *sim.Engine
}

func (s *stubDevice) Name() string        { return "stub" }
func (s *stubDevice) Capacity() int64     { return 1 << 20 }
func (s *stubDevice) BlockSize() int      { return 4096 }
func (s *stubDevice) Engine() *sim.Engine { return s.eng }
func (s *stubDevice) Submit(r *Request)   {}

func TestOpString(t *testing.T) {
	cases := map[Op]string{
		Read:  "read",
		Write: "write",
		Trim:  "trim",
		Flush: "flush",
		Op(9): "op(9)",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", op, got, want)
		}
	}
}

func TestRequestLatency(t *testing.T) {
	r := &Request{Issued: 100}
	if got := r.Latency(350); got != 250 {
		t.Fatalf("latency = %v", got)
	}
}

func TestValidateAccepts(t *testing.T) {
	d := &stubDevice{eng: sim.NewEngine()}
	ok := []Request{
		{Op: Read, Offset: 0, Size: 4096},
		{Op: Write, Offset: 4096, Size: 8192},
		{Op: Trim, Offset: 0, Size: 1 << 20},
		{Op: Flush}, // flushes skip range checks
	}
	for i := range ok {
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Errorf("valid request %d rejected: %v", i, p)
				}
			}()
			Validate(d, &ok[i])
		}()
	}
}

func TestValidateRejects(t *testing.T) {
	d := &stubDevice{eng: sim.NewEngine()}
	bad := []Request{
		{Op: Read, Offset: 0, Size: 0},           // zero size
		{Op: Read, Offset: 0, Size: 100},         // misaligned size
		{Op: Read, Offset: 123, Size: 4096},      // misaligned offset
		{Op: Read, Offset: -4096, Size: 4096},    // negative offset
		{Op: Write, Offset: 1 << 20, Size: 4096}, // beyond capacity
	}
	for i := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("invalid request %d accepted", i)
				}
			}()
			Validate(d, &bad[i])
		}()
	}
}

func TestGBps(t *testing.T) {
	if GBps(3.0e9) != 3.0 {
		t.Fatalf("GBps = %v", GBps(3.0e9))
	}
}
