// Package obs is the simulation-time observability layer: deterministic
// per-request tracing and internal-state probes over the elastic-SSD
// stack, plus the cliff-attribution report built on both.
//
// The paper's argument is that elastic-SSD performance cliffs come from
// internal state tenants cannot see — credit exhaustion, pooled cleaner
// debt, fabric contention. The simulator reproduces every cliff; this
// package explains one. Two planes:
//
//   - Request tracing (Tracer): sampled-by-request-sequence span records
//     following one op through frontend admission, the credit/limiter
//     gates, the fabric pipes, and the cluster node servers. Each Span
//     carries the volume/flow, the queue-wait vs service split, and the
//     isolation-policy decision that scheduled it. Traces export as
//     deterministic CSV (WriteTraceCSV) and Chrome trace-event JSON
//     (WriteTraceEvents) loadable in Perfetto.
//
//   - State probes (Prober): a registry of read-only samplers on a
//     simulated-time cadence — queue depths and busy slots per
//     sim.Server/Pipe, per-flow credit balance, pooled and private
//     cleaner debt, DRR deficits and reservation tokens, netsim per-flow
//     bytes, KV memtable/level/page-cache occupancy — emitted as time
//     series (WriteProbesCSV / WriteProbesJSON).
//
// Explain correlates a cell's victim tail inflection with the probe
// series and limiter state ("pooled debt crossed the throttle threshold
// at t−Δ; aggressors held 81% of fabric bytes") into a deterministic
// attribution report.
//
// Everything is disabled by default and nil-fast: a nil Tracer, Req,
// Prober, or Config is inert, so the simulator hot paths pay one nil
// check. Enabled observability must not perturb results — samplers are
// read-only (no RNG draws, no settle-style state mutation), and probe
// events only interleave with, never reorder, workload events — so a
// traced run's measurements are byte-identical to an untraced run's.
package obs
