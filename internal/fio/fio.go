// Package fio parses a practical subset of fio job files (the benchmark
// tool the paper drives its measurements with, §III-A) into workload specs.
//
// Supported syntax: INI sections, comments (# and ;), a [global] section
// inherited by every job, and the keys rw, bs, iodepth, runtime, size,
// rwmixwrite, region, warmup, and seed. Sizes accept k/m/g/t suffixes
// (binary, as fio defaults); runtimes accept ms/s/m suffixes.
package fio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"essdsim/internal/sim"
	"essdsim/internal/workload"
)

// Job is one parsed fio job.
type Job struct {
	Name string
	Spec workload.Spec
}

// ParseSize parses a fio-style size: "4k", "128K", "2g", "4096".
func ParseSize(s string) (int64, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	if s == "" {
		return 0, fmt.Errorf("fio: empty size")
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'k':
		mult = 1 << 10
		s = s[:len(s)-1]
	case 'm':
		mult = 1 << 20
		s = s[:len(s)-1]
	case 'g':
		mult = 1 << 30
		s = s[:len(s)-1]
	case 't':
		mult = 1 << 40
		s = s[:len(s)-1]
	case 'b':
		s = s[:len(s)-1]
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("fio: bad size %q", s)
	}
	if n < 0 {
		return 0, fmt.Errorf("fio: negative size %q", s)
	}
	return n * mult, nil
}

// ParseDuration parses a fio-style runtime: "5" (seconds), "500ms", "2m".
func ParseDuration(s string) (sim.Duration, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	switch {
	case strings.HasSuffix(s, "ms"):
		n, err := strconv.ParseFloat(s[:len(s)-2], 64)
		if err != nil {
			return 0, fmt.Errorf("fio: bad runtime %q", s)
		}
		return sim.Duration(n * float64(sim.Millisecond)), nil
	case strings.HasSuffix(s, "s"):
		n, err := strconv.ParseFloat(s[:len(s)-1], 64)
		if err != nil {
			return 0, fmt.Errorf("fio: bad runtime %q", s)
		}
		return sim.Duration(n * float64(sim.Second)), nil
	case strings.HasSuffix(s, "m"):
		n, err := strconv.ParseFloat(s[:len(s)-1], 64)
		if err != nil {
			return 0, fmt.Errorf("fio: bad runtime %q", s)
		}
		return sim.Duration(n * 60 * float64(sim.Second)), nil
	default:
		n, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, fmt.Errorf("fio: bad runtime %q", s)
		}
		return sim.Duration(n * float64(sim.Second)), nil
	}
}

type section struct {
	name string
	kv   map[string]string
}

// Parse reads a fio job file and returns its jobs with [global] settings
// applied. It rejects unknown keys so typos surface instead of silently
// changing the workload.
func Parse(r io.Reader) ([]Job, error) {
	scanner := bufio.NewScanner(r)
	var sections []*section
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, ";") {
			continue
		}
		if strings.HasPrefix(line, "[") {
			if !strings.HasSuffix(line, "]") {
				return nil, fmt.Errorf("fio: line %d: malformed section %q", lineNo, line)
			}
			name := strings.TrimSpace(line[1 : len(line)-1])
			if name == "" {
				return nil, fmt.Errorf("fio: line %d: empty section name", lineNo)
			}
			sections = append(sections, &section{name: name, kv: map[string]string{}})
			continue
		}
		if len(sections) == 0 {
			return nil, fmt.Errorf("fio: line %d: key outside any section", lineNo)
		}
		k, v, ok := strings.Cut(line, "=")
		if !ok {
			return nil, fmt.Errorf("fio: line %d: expected key=value, got %q", lineNo, line)
		}
		cur := sections[len(sections)-1]
		cur.kv[strings.TrimSpace(strings.ToLower(k))] = strings.TrimSpace(v)
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	global := map[string]string{}
	var jobs []Job
	for _, sec := range sections {
		if strings.EqualFold(sec.name, "global") {
			for k, v := range sec.kv {
				global[k] = v
			}
			continue
		}
		merged := map[string]string{}
		for k, v := range global {
			merged[k] = v
		}
		for k, v := range sec.kv {
			merged[k] = v
		}
		spec, err := specFrom(merged)
		if err != nil {
			return nil, fmt.Errorf("fio: job %q: %w", sec.name, err)
		}
		jobs = append(jobs, Job{Name: sec.name, Spec: spec})
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("fio: no jobs defined")
	}
	return jobs, nil
}

func specFrom(kv map[string]string) (workload.Spec, error) {
	spec := workload.Spec{
		Pattern:    workload.RandRead,
		BlockSize:  4096,
		QueueDepth: 1,
	}
	for k, v := range kv {
		var err error
		switch k {
		case "rw", "readwrite":
			spec.Pattern, err = workload.ParsePattern(v)
		case "bs", "blocksize":
			spec.BlockSize, err = ParseSize(v)
		case "iodepth", "qd":
			spec.QueueDepth, err = strconv.Atoi(v)
		case "runtime":
			spec.Duration, err = ParseDuration(v)
		case "size":
			spec.TotalBytes, err = ParseSize(v)
		case "io_limit", "number_ios":
			var n int64
			n, err = strconv.ParseInt(v, 10, 64)
			spec.MaxOps = uint64(n)
		case "rwmixwrite":
			var pct int
			pct, err = strconv.Atoi(v)
			spec.WriteRatio = float64(pct) / 100
		case "region":
			spec.Region, err = ParseSize(v)
		case "warmup", "ramp_time":
			spec.Warmup, err = ParseDuration(v)
		case "seed", "randseed":
			spec.Seed, err = strconv.ParseUint(v, 10, 64)
		case "name", "ioengine", "direct", "group_reporting", "time_based",
			"filename", "numjobs", "thread":
			// Accepted for compatibility with real fio job files; these
			// either have no simulator equivalent (ioengine, direct,
			// filename) or are implied (time_based follows from runtime).
		default:
			return spec, fmt.Errorf("unsupported key %q", k)
		}
		if err != nil {
			return spec, fmt.Errorf("key %q: %w", k, err)
		}
	}
	if spec.Duration <= 0 && spec.TotalBytes <= 0 && spec.MaxOps == 0 {
		return spec, fmt.Errorf("no stop condition (set runtime, size, or number_ios)")
	}
	return spec, nil
}
