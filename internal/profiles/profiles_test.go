package profiles

import (
	"testing"

	"essdsim/internal/blockdev"
	"essdsim/internal/essd"
	"essdsim/internal/sim"
	"essdsim/internal/workload"
)

func TestByNameAllProfiles(t *testing.T) {
	for _, name := range Names() {
		eng := sim.NewEngine()
		d, err := ByName(name, eng, sim.NewRNG(1, 1))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.Capacity() <= 0 || d.BlockSize() <= 0 || d.Name() == "" {
			t.Fatalf("%s: bad identity", name)
		}
	}
	if _, err := ByName("nope", sim.NewEngine(), sim.NewRNG(1, 1)); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestTableIRows(t *testing.T) {
	rows := TableI()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Model != "io2" || rows[1].Model != "PL3" || rows[2].Model != "970 Pro" {
		t.Fatalf("models: %v %v %v", rows[0].Model, rows[1].Model, rows[2].Model)
	}
	if rows[0].Capacity != rows[1].Capacity {
		t.Fatal("ESSD capacities must match the paper's 2 TB")
	}
	if rows[2].MaxReadBW <= rows[2].MaxWriteBW {
		t.Fatal("970 Pro reads must outpace writes")
	}
}

func TestConfigsValidate(t *testing.T) {
	for _, cfg := range []interface{ Validate() error }{
		ESSD1Config(), ESSD2Config(), GP3Config(), GP2Config(), PL1Config(),
	} {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("profile config invalid: %v", err)
		}
	}
}

func TestScaledCapacities(t *testing.T) {
	if ESSDCapacity != 32<<30 {
		t.Fatalf("ESSD scaled capacity = %d", int64(ESSDCapacity))
	}
	if SSDCapacity != 16<<30 {
		t.Fatalf("SSD scaled capacity = %d", int64(SSDCapacity))
	}
}

func TestStreamBindsUnderReplication(t *testing.T) {
	// The repl pipe must carry (Replicas-1)x the stream traffic without
	// becoming the sequential bottleneck, or Observation #3's mechanism
	// breaks silently.
	for _, cfg := range []essd.Config{ESSD1Config(), ESSD2Config()} {
		c := cfg.Cluster
		if c.ReplBW < float64(c.Replicas-1)*c.StreamBW {
			t.Fatalf("%s: repl %g < %d x stream %g",
				cfg.Name, c.ReplBW, c.Replicas-1, c.StreamBW)
		}
	}
}

// TestGP2BurstExhaustion verifies the burstable tier: full-rate while
// credits last, then baseline.
func TestGP2BurstExhaustion(t *testing.T) {
	eng := sim.NewEngine()
	dev, err := ByName("gp2", eng, sim.NewRNG(9, 9))
	if err != nil {
		t.Fatal(err)
	}
	e := dev.(*essd.ESSD)
	if e.Credits() < 0 {
		t.Fatal("gp2 volume has no credit bucket")
	}
	res := workload.Run(dev, workload.Spec{
		Pattern:    workload.RandWrite,
		BlockSize:  256 << 10,
		QueueDepth: 32,
		TotalBytes: 4 << 30,
		Seed:       9,
	})
	// Early seconds run at the 1 GB/s ceiling; after the ~1 GiB credit
	// bank drains at (1-0.25/1.0) credits per byte, throughput falls
	// toward the 0.25 GB/s baseline.
	first := res.Series.Rate(0)
	last := res.Series.MeanRate(res.Series.Len()-3, res.Series.Len())
	if first < 0.8e9 {
		t.Fatalf("burst phase rate %.2f GB/s, want ≈1.0", first/1e9)
	}
	if last > 0.45e9 {
		t.Fatalf("post-credit rate %.2f GB/s, want ≈0.25", last/1e9)
	}
	if e.Credits() > 64<<20 {
		t.Fatalf("credits not drained: %.0f", e.Credits())
	}
}

// TestDeterministicAcrossConstructions guards the reproducibility promise:
// same profile, same seed, same measurements.
func TestDeterministicAcrossConstructions(t *testing.T) {
	measure := func() workload.Spec {
		return workload.Spec{
			Pattern: workload.RandWrite, BlockSize: 8 << 10,
			QueueDepth: 4, MaxOps: 400, Seed: 5,
		}
	}
	run := func() *workload.Result {
		eng := sim.NewEngine()
		d, _ := ByName("essd1", eng, sim.NewRNG(2, 3))
		var dev blockdev.Device = d
		return workload.Run(dev, measure())
	}
	a, b := run(), run()
	if a.Lat.Summarize() != b.Lat.Summarize() {
		t.Fatal("same seed produced different measurements")
	}
}
