package fleet

import (
	"context"
	"fmt"
	"io"

	"essdsim/internal/qos"
)

// IsolationStudySpec declares an isolation × placement trade-off study:
// the base fleet spec (catalog, templates, policies, budgets) is run once
// per isolation configuration, with identical cell seeds across variants
// (the isolation axis feeds the cache variant, not the seeds). The study
// answers the provisioning question the two knobs pose together: how much
// backend isolation does each placement policy still need? A policy that
// already separates interfering tenants (interference-aware) has little
// left for the scheduler to fix; a policy that stacks them (first-fit)
// leans on isolation heavily.
type IsolationStudySpec struct {
	Spec

	// Isolations are the backend QoS configurations to compare, applied
	// to the spec's backend template in order (default: the fifo zero
	// value and plain wfq).
	Isolations []qos.Isolation
}

func (ss IsolationStudySpec) withDefaults() IsolationStudySpec {
	if len(ss.Isolations) == 0 {
		ss.Isolations = []qos.Isolation{{}, {Policy: qos.IsolationWFQ}}
	}
	return ss
}

// IsolationStudyVariant is one isolation configuration's complete fleet
// outcome.
type IsolationStudyVariant struct {
	Isolation qos.Isolation
	Report    *Report
}

// IsolationStudyReport is the cross-variant comparison.
type IsolationStudyReport struct {
	Variants    []IsolationStudyVariant
	CachedCells int // across all variants
}

// Violations returns a policy's p99.9 SLO violation count under the
// variant at index vi, or -1 when the policy is missing.
func (r *IsolationStudyReport) Violations(vi int, policy string) int {
	pr := r.Variants[vi].Report.Policy(policy)
	if pr == nil {
		return -1
	}
	return pr.P999Violations
}

// IsolationGain returns how many p99.9 violations the variant at index vi
// removes for a policy relative to the first (baseline) variant — the
// "how much does isolation buy this placement" number. Negative means the
// variant made the policy worse.
func (r *IsolationStudyReport) IsolationGain(vi int, policy string) int {
	return r.Violations(0, policy) - r.Violations(vi, policy)
}

// RunIsolationStudy executes the base fleet study once per isolation
// configuration. Deterministic for a fixed spec: every variant's cells
// measure identical arrival streams, so violation deltas are pure
// scheduling effects.
func RunIsolationStudy(ctx context.Context, ss IsolationStudySpec) (*IsolationStudyReport, error) {
	ss = ss.withDefaults()
	rep := &IsolationStudyReport{}
	for _, iso := range ss.Isolations {
		s := ss.Spec
		s.Backend.Isolation = iso
		fr, err := Run(ctx, s)
		if err != nil {
			return nil, err
		}
		rep.Variants = append(rep.Variants, IsolationStudyVariant{Isolation: iso, Report: fr})
		rep.CachedCells += fr.CachedCells
	}
	return rep, nil
}

// FormatIsolationStudy writes the trade-off matrix: one row per placement
// policy, one violation column per isolation variant, and the per-policy
// isolation gain over the baseline variant.
func FormatIsolationStudy(w io.Writer, r *IsolationStudyReport) {
	if len(r.Variants) == 0 {
		return
	}
	fmt.Fprintf(w, "fleet isolation × placement: p99.9 SLO violations per (policy, isolation)\n")
	fmt.Fprintf(w, "%-16s", "policy")
	for _, v := range r.Variants {
		fmt.Fprintf(w, " %12s", v.Isolation.Policy)
	}
	fmt.Fprintf(w, " %8s\n", "gain")
	for _, pr := range r.Variants[0].Report.Policies {
		fmt.Fprintf(w, "%-16s", pr.Policy)
		for vi := range r.Variants {
			fmt.Fprintf(w, " %12d", r.Violations(vi, pr.Policy))
		}
		fmt.Fprintf(w, " %8d\n", r.IsolationGain(len(r.Variants)-1, pr.Policy))
	}
}
