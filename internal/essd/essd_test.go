package essd

import (
	"fmt"
	"testing"

	"essdsim/internal/blockdev"
	"essdsim/internal/cluster"
	"essdsim/internal/netsim"
	"essdsim/internal/sim"
)

// testConfig returns a small, fast ESSD for unit tests (1 GiB volume,
// constant latencies so assertions are exact).
func testConfig() Config {
	return Config{
		Name:             "test-essd",
		Provider:         "test",
		Model:            "t1",
		Capacity:         1 << 30,
		BlockSize:        4096,
		ThroughputBudget: 1e9,
		BudgetBurst:      8 << 20,
		IOPSBudget:       50000,
		IOPSBurst:        1000,
		IOPSChunkBytes:   256 << 10,
		FrontendSlots:    4,
		FrontendLatency:  sim.Const{V: 30 * sim.Microsecond},
		Net: netsim.Config{
			HopLatency: sim.Const{V: 40 * sim.Microsecond},
			UplinkBW:   2e9,
			DownlinkBW: 2e9,
		},
		Cluster: cluster.Config{
			Nodes:        8,
			ChunkBytes:   2 << 20,
			Replicas:     3,
			WriteSlots:   2,
			WriteService: sim.Const{V: 50 * sim.Microsecond},
			StreamBW:     1e9,
			ReplBW:       2.5e9,
			ReplHop:      sim.Const{V: 40 * sim.Microsecond},
			ReadSlots:    4,
			ReadService:  sim.Const{V: 200 * sim.Microsecond},
			ReadBW:       1e9,
			CleanerRate:  0.5e9,
		},
		SpareFrac:    0.5,
		ThrottleRate: 0.1e9,
	}
}

func newTest(t *testing.T) (*sim.Engine, *ESSD) {
	t.Helper()
	eng := sim.NewEngine()
	return eng, New(eng, testConfig(), sim.NewRNG(4, 4))
}

func do(eng *sim.Engine, d blockdev.Device, op blockdev.Op, off, size int64) sim.Duration {
	var lat sim.Duration = -1
	d.Submit(&blockdev.Request{
		Op: op, Offset: off, Size: size,
		OnComplete: func(r *blockdev.Request, at sim.Time) { lat = r.Latency(at) },
	})
	eng.Run()
	return lat
}

func TestDeviceInterface(t *testing.T) {
	_, e := newTest(t)
	if e.Capacity() != 1<<30 || e.BlockSize() != 4096 || e.Name() != "test-essd" {
		t.Fatal("device identity wrong")
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Capacity = 0 },
		func(c *Config) { c.Capacity = 4095 },
		func(c *Config) { c.ThroughputBudget = 0 },
		func(c *Config) { c.IOPSBudget = 0 },
		func(c *Config) { c.FrontendSlots = 0 },
		func(c *Config) { c.FrontendLatency = nil },
		func(c *Config) { c.Cluster.ChunkBytes = 4096 + 1 },
		func(c *Config) { c.Cluster.Nodes = 0 },
	}
	for i, mutate := range cases {
		cfg := testConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestWriteLatencyBreakdown(t *testing.T) {
	eng, e := newTest(t)
	lat := do(eng, e, blockdev.Write, 0, 4096)
	// fe 30 + uplink 2µs + hop 40 + replica leg (~2 + 40 + 50 + 40) + ack hop 40
	// ≈ 244µs with constant dists.
	if lat < 200*sim.Microsecond || lat > 300*sim.Microsecond {
		t.Fatalf("4K write latency = %v, want ≈244µs", lat)
	}
}

func TestReadLatencyBreakdown(t *testing.T) {
	eng, e := newTest(t)
	e.Precondition(1.0)
	lat := do(eng, e, blockdev.Read, 4096*999, 4096)
	// fe 30 + hop 40 + svc 200 + readBW 4µs + downlink 2µs + hop 40 ≈ 316µs.
	if lat < 280*sim.Microsecond || lat > 360*sim.Microsecond {
		t.Fatalf("4K read latency = %v, want ≈316µs", lat)
	}
}

func TestUnwrittenReadFastPath(t *testing.T) {
	eng, e := newTest(t)
	lat := do(eng, e, blockdev.Read, 0, 4096)
	// fe + 2 hops ≈ 110µs, no cluster involvement.
	if lat > 150*sim.Microsecond {
		t.Fatalf("unwritten read = %v, want metadata-only", lat)
	}
	if e.Counters().UnwrittenReads != 1 {
		t.Fatal("unwritten read not counted")
	}
	if e.Counters().SubReads != 0 {
		t.Fatal("unwritten read touched the cluster")
	}
}

func TestWriteMarksWritten(t *testing.T) {
	eng, e := newTest(t)
	do(eng, e, blockdev.Write, 64<<10, 8192)
	if !e.allWritten(64<<10, 8192) {
		t.Fatal("blocks not marked written")
	}
	if e.allWritten(0, 4096) {
		t.Fatal("unwritten block marked")
	}
}

func TestOverwriteAccruesDebt(t *testing.T) {
	eng, e := newTest(t)
	do(eng, e, blockdev.Write, 0, 1<<20)
	if e.Cluster().Debt() != 0 {
		t.Fatalf("first write created debt %d", e.Cluster().Debt())
	}
	// Debt is recorded synchronously at submission, before the cleaner
	// has simulated time to drain any of it.
	e.Submit(&blockdev.Request{Op: blockdev.Write, Offset: 0, Size: 1 << 20})
	if debt := e.Cluster().Debt(); debt != 1<<20 {
		t.Fatalf("overwrite debt = %d, want 1 MiB", debt)
	}
	eng.Run()
	// The cleaner drains while the write completes.
	if debt := e.Cluster().Debt(); debt >= 1<<20 {
		t.Fatalf("cleaner made no progress: debt = %d", debt)
	}
}

func TestChunkSplitting(t *testing.T) {
	eng, e := newTest(t)
	// 4 MiB write spanning two 2 MiB chunks starting mid-chunk:
	// offsets [1 MiB, 5 MiB) → chunks 0,1,2 → 3 subrequests.
	do(eng, e, blockdev.Write, 1<<20, 4<<20)
	if got := e.Counters().SubWrites; got != 3 {
		t.Fatalf("subwrites = %d, want 3", got)
	}
}

func TestSubRangeHelper(t *testing.T) {
	_, e := newTest(t)
	cases := []struct {
		off, size int64
		want      int
	}{
		{0, 4096, 1},
		{0, 2 << 20, 1},
		{1 << 20, 2 << 20, 2},
		{(2 << 20) - 4096, 8192, 2},
	}
	for _, c := range cases {
		if got := e.subCount(c.off, c.size); got != c.want {
			t.Fatalf("subCount(%d,%d) = %d, want %d", c.off, c.size, got, c.want)
		}
	}
}

func TestIOPSCost(t *testing.T) {
	_, e := newTest(t)
	if e.iopsCost(4096) != 1 {
		t.Fatal("4K should cost 1 token")
	}
	if e.iopsCost(256<<10) != 1 {
		t.Fatal("256K should cost 1 token")
	}
	if e.iopsCost((256<<10)+4096) != 2 {
		t.Fatal("257K should cost 2 tokens")
	}
}

func TestThroughputBudgetCapsWrites(t *testing.T) {
	eng, e := newTest(t)
	// Closed loop at QD32 for 300 ms: must pin near 1 GB/s.
	const ioSize = 128 << 10
	var completed int64
	stop := sim.Time(300 * sim.Millisecond)
	rng := sim.NewRNG(8, 8)
	var submit func()
	submit = func() {
		if eng.Now() >= stop {
			return
		}
		off := rng.Int64N(e.Capacity()/ioSize) * ioSize
		e.Submit(&blockdev.Request{
			Op: blockdev.Write, Offset: off, Size: ioSize,
			OnComplete: func(r *blockdev.Request, at sim.Time) {
				completed += ioSize
				submit()
			},
		})
	}
	for i := 0; i < 32; i++ {
		submit()
	}
	eng.Run()
	secs := sim.Duration(eng.Now()).Seconds()
	rate := float64(completed) / secs
	if rate < 0.9e9 || rate > 1.2e9 {
		t.Fatalf("budgeted write rate = %.2f GB/s, want ≈1.0", rate/1e9)
	}
	if e.BudgetStall() <= 0 {
		t.Fatal("budget stall not recorded under saturation")
	}
}

func TestFlowLimiterThrottlesAfterDebt(t *testing.T) {
	eng, e := newTest(t)
	// Overwrite the same 64 MiB region repeatedly: invalidation outruns
	// the 0.5 GB/s cleaner at 1 GB/s writes, so debt crosses
	// 0.5 × 1 GiB = 512 MiB and the limiter engages.
	const region = 64 << 20
	const ioSize = 1 << 20
	var submit func()
	var written int64
	submit = func() {
		if e.Throttled() || written > 8<<30 {
			return
		}
		off := written % region
		written += ioSize
		e.Submit(&blockdev.Request{
			Op: blockdev.Write, Offset: off, Size: ioSize,
			OnComplete: func(r *blockdev.Request, at sim.Time) { submit() },
		})
	}
	for i := 0; i < 16; i++ {
		submit()
	}
	eng.Run()
	if !e.Throttled() {
		t.Fatalf("flow limiter never engaged (wrote %d)", written)
	}
	if e.ThrottledAt() <= 0 {
		t.Fatal("throttle time not recorded")
	}
}

func TestTrimClearsWritten(t *testing.T) {
	eng, e := newTest(t)
	do(eng, e, blockdev.Write, 0, 1<<20)
	lat := do(eng, e, blockdev.Trim, 0, 1<<20)
	if lat < 0 {
		t.Fatal("trim never completed")
	}
	if e.allWritten(0, 4096) {
		t.Fatal("trim did not clear written bits")
	}
}

func TestFlushIsRoundTrip(t *testing.T) {
	eng, e := newTest(t)
	lat := do(eng, e, blockdev.Flush, 0, 0)
	// fe 30 + 2 hops 80 ≈ 110µs.
	if lat < 90*sim.Microsecond || lat > 140*sim.Microsecond {
		t.Fatalf("flush latency = %v", lat)
	}
}

func TestPreconditionMarksRange(t *testing.T) {
	_, e := newTest(t)
	e.Precondition(0.25)
	if !e.allWritten(0, e.Capacity()/4) {
		t.Fatal("precondition range not written")
	}
	if e.isWritten(e.Capacity() / 4 / 4096) {
		t.Fatal("precondition overshot")
	}
}

// Property: the chunk-boundary walk the dispatch paths use always
// partitions the request exactly — pieces sum to the request size, every
// piece fits in one chunk, pieces after the first start chunk-aligned —
// and the piece count matches subCount's closed-form answer.
func TestSubRangesPartitionProperty(t *testing.T) {
	_, e := newTest(t)
	chunk := e.be.cfg.Cluster.ChunkBytes
	f := func(offBlocks, sizeBlocks uint16) bool {
		off := int64(offBlocks) * 4096 % (e.Capacity() / 2)
		size := (int64(sizeBlocks)%2048 + 1) * 4096
		var sum int64
		var n int
		pos, left := off, size
		for left > 0 {
			p := chunk - pos%chunk
			if p > left {
				p = left
			}
			if p <= 0 || p > chunk {
				return false
			}
			if n > 0 && pos%chunk != 0 {
				return false
			}
			if pos/chunk != (pos+p-1)/chunk {
				return false // piece straddles a chunk boundary
			}
			pos += p
			left -= p
			sum += p
			n++
		}
		return sum == size && n == e.subCount(off, size)
	}
	if err := quickCheck(f); err != nil {
		t.Fatal(err)
	}
}

func quickCheck(f func(uint16, uint16) bool) error {
	for a := uint16(0); a < 200; a += 7 {
		for b := uint16(0); b < 200; b += 11 {
			if !f(a*131, b*17) {
				return fmt.Errorf("property failed at %d,%d", a, b)
			}
		}
	}
	return nil
}

// TestIOPSBudgetBindsSmallWrites verifies the IOPS token bucket caps 4K
// random writes below what latency alone would allow — the ESSD-1
// behaviour behind the kvdesign example and the O4-IOPS contract check.
func TestIOPSBudgetBindsSmallWrites(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testConfig()
	cfg.IOPSBudget = 5000 // deliberately tight
	cfg.IOPSBurst = 100
	e := New(eng, cfg, sim.NewRNG(6, 6))
	const n = 4000
	done := 0
	inflight := 0
	next := 0
	rng := sim.NewRNG(7, 7)
	var submit func()
	submit = func() {
		for inflight < 64 && next < n {
			next++
			inflight++
			e.Submit(&blockdev.Request{
				Op: blockdev.Write, Offset: rng.Int64N(1<<16) * 4096, Size: 4096,
				OnComplete: func(*blockdev.Request, sim.Time) {
					done++
					inflight--
					submit()
				},
			})
		}
	}
	submit()
	eng.Run()
	iops := float64(done) / sim.Duration(eng.Now()).Seconds()
	if iops > 5600 || iops < 4400 {
		t.Fatalf("achieved %.0f IOPS, want ≈5000 (budget-bound)", iops)
	}
}

func TestSequentialWindowUsesFewNodes(t *testing.T) {
	eng, e := newTest(t)
	// 64 sequential 4K writes land in one 2 MiB chunk → one primary.
	for i := int64(0); i < 64; i++ {
		do(eng, e, blockdev.Write, i*4096, 4096)
	}
	primaries, replicas := 0, 0
	for i := 0; i < e.Cluster().NumNodes(); i++ {
		st := e.Cluster().NodeStats(i)
		if st.Writes > 0 {
			primaries++
		}
		if st.ReplWrites > 0 {
			replicas++
		}
	}
	if primaries != 1 {
		t.Fatalf("sequential window used %d primaries, want 1", primaries)
	}
	if replicas != 2 {
		t.Fatalf("sequential window used %d replica nodes, want 2", replicas)
	}
}
