package kv

import (
	"encoding/json"
	"math/rand"
	"testing"

	"essdsim/internal/blockdev"
	"essdsim/internal/profiles"
	"essdsim/internal/sim"
	"essdsim/internal/workload"
)

// mixTenantOn builds one tenant with an LSM engine on a fresh device.
func mixTenantOn(t *testing.T, eng *sim.Engine, name string, spec MixSpec) MixTenant {
	t.Helper()
	dev, err := profilesDev(eng, name)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultLSMConfig()
	cfg.MemtableBytes = 64 << 10
	cfg.L0CompactTrigger = 2
	return MixTenant{Name: name, Engine: NewLSM(dev, cfg), Spec: spec}
}

func baseMixSpec(seed uint64) MixSpec {
	return MixSpec{
		Ops:        400,
		ValueSize:  1024,
		ReadFrac:   0.5,
		RatePerSec: 20000,
		KeySpace:   1 << 12,
		ZipfTheta:  0.9,
		Seed:       seed,
	}
}

func TestMixSpecValidate(t *testing.T) {
	good := baseMixSpec(1)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*MixSpec)
	}{
		{"zero ops", func(s *MixSpec) { s.Ops = 0 }},
		{"bad value size", func(s *MixSpec) { s.ValueSize = 0 }},
		{"read frac high", func(s *MixSpec) { s.ReadFrac = 1.5 }},
		{"read frac negative", func(s *MixSpec) { s.ReadFrac = -0.1 }},
		{"zero rate", func(s *MixSpec) { s.RatePerSec = 0 }},
		{"theta too big", func(s *MixSpec) { s.ZipfTheta = 1 }},
		{"theta negative", func(s *MixSpec) { s.ZipfTheta = -0.5 }},
	}
	for _, c := range cases {
		s := good
		c.mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate() accepted %+v", c.name, s)
		}
	}
}

func TestRunMixConservation(t *testing.T) {
	eng := sim.NewEngine()
	tenants := []MixTenant{
		mixTenantOn(t, eng, "a", baseMixSpec(11)),
		mixTenantOn(t, eng, "b", baseMixSpec(12)),
	}
	res := RunMix(eng, tenants)
	if len(res) != 2 {
		t.Fatalf("got %d results, want 2", len(res))
	}
	for i, r := range res {
		if r.Name != tenants[i].Name {
			t.Errorf("result %d name %q, want %q (tenant order)", i, r.Name, tenants[i].Name)
		}
		if r.Ops != 400 {
			t.Errorf("%s: %d acks, want all 400 ops", r.Name, r.Ops)
		}
		if r.Puts+r.Gets != r.Ops {
			t.Errorf("%s: puts %d + gets %d != ops %d", r.Name, r.Puts, r.Gets, r.Ops)
		}
		if r.Stats.Puts != r.Puts || r.Stats.Gets != r.Gets {
			t.Errorf("%s: engine saw %d/%d ops, driver issued %d/%d",
				r.Name, r.Stats.Puts, r.Stats.Gets, r.Puts, r.Gets)
		}
		if r.UserBytes != int64(r.Puts)*1024 || r.Stats.UserBytes != r.UserBytes {
			t.Errorf("%s: user bytes %d (engine %d), want %d",
				r.Name, r.UserBytes, r.Stats.UserBytes, int64(r.Puts)*1024)
		}
		if r.Elapsed <= 0 {
			t.Errorf("%s: elapsed %v", r.Name, r.Elapsed)
		}
		if got := r.Lat.Count(); got != r.Ops {
			t.Errorf("%s: latency histogram holds %d samples, want %d", r.Name, got, r.Ops)
		}
	}
}

func TestRunMixDeterministic(t *testing.T) {
	run := func() []byte {
		eng := sim.NewEngine()
		res := RunMix(eng, []MixTenant{
			mixTenantOn(t, eng, "a", baseMixSpec(21)),
			mixTenantOn(t, eng, "b", baseMixSpec(22)),
		})
		raw, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("two identical mixes differ:\n%s\n%s", a, b)
	}
}

func TestRunMixReadFracExtremes(t *testing.T) {
	eng := sim.NewEngine()
	pure := baseMixSpec(31)
	pure.ReadFrac = 0
	lookup := baseMixSpec(32)
	lookup.ReadFrac = 1
	res := RunMix(eng, []MixTenant{
		mixTenantOn(t, eng, "writer", pure),
		mixTenantOn(t, eng, "reader", lookup),
	})
	if res[0].Gets != 0 || res[0].Puts != 400 {
		t.Errorf("pure-ingest tenant did %d puts, %d gets", res[0].Puts, res[0].Gets)
	}
	if res[1].Puts != 0 || res[1].Gets != 400 {
		t.Errorf("pure-lookup tenant did %d puts, %d gets", res[1].Puts, res[1].Gets)
	}
}

func TestRunMixArrivals(t *testing.T) {
	for _, arr := range []workload.Arrival{workload.Uniform, workload.Poisson, workload.Bursty} {
		eng := sim.NewEngine()
		spec := baseMixSpec(41)
		spec.Arrival = arr
		res := RunMix(eng, []MixTenant{mixTenantOn(t, eng, "t", spec)})
		if res[0].Ops != spec.Ops {
			t.Errorf("%s: %d of %d ops acked", arr, res[0].Ops, spec.Ops)
		}
	}
}

func TestRunMixPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	expectPanic("no tenants", func() { RunMix(sim.NewEngine(), nil) })
	expectPanic("nil engine", func() {
		RunMix(sim.NewEngine(), []MixTenant{{Name: "x"}})
	})
	expectPanic("foreign device", func() {
		eng := sim.NewEngine()
		other := sim.NewEngine()
		tn := mixTenantOn(t, other, "x", baseMixSpec(1))
		RunMix(eng, []MixTenant{tn})
	})
	expectPanic("invalid spec", func() {
		eng := sim.NewEngine()
		tn := mixTenantOn(t, eng, "x", baseMixSpec(1))
		tn.Spec.Ops = 0
		RunMix(eng, []MixTenant{tn})
	})
}

func TestProfileOf(t *testing.T) {
	eng := sim.NewEngine()
	res := RunMix(eng, []MixTenant{mixTenantOn(t, eng, "t", baseMixSpec(51))})
	p := ProfileOf(res[0])
	if p.Name != "t" {
		t.Errorf("profile name %q", p.Name)
	}
	ios := res[0].Stats.DeviceWrites + res[0].Stats.DeviceReads
	if ios == 0 {
		t.Fatal("mix measured no device I/O")
	}
	if p.RatePerSec <= 0 {
		t.Errorf("device rate %v", p.RatePerSec)
	}
	wantSize := (res[0].Stats.DeviceWriteBytes + res[0].Stats.DeviceReadBytes) / int64(ios)
	if p.MeanSize != wantSize {
		t.Errorf("mean size %d, want %d", p.MeanSize, wantSize)
	}
	if p.WriteRatioPct < 0 || p.WriteRatioPct > 100 {
		t.Errorf("write ratio %d%%", p.WriteRatioPct)
	}
	// The zero value carries through for an unmeasured tenant.
	if z := ProfileOf(&MixResult{Name: "idle"}); z.RatePerSec != 0 || z.MeanSize != 0 {
		t.Errorf("idle tenant profile %+v, want zero shape", z)
	}
}

// TestLSMGetReadAmpAcrossLevels drives the LSM deep enough to populate
// several levels and checks the read path's accounting: a deep tree costs
// more device probes per miss than a shallow one (L0 tables + one per
// deeper non-empty level), every get is classified as a memtable/resident
// hit or a miss, and misses are what pay device reads.
func TestLSMGetReadAmpAcrossLevels(t *testing.T) {
	load := func(puts uint64) *LSM {
		eng, dev := newDev(t, "essd2")
		cfg := DefaultLSMConfig()
		cfg.MemtableBytes = 32 << 10
		cfg.L0CompactTrigger = 2
		l := NewLSM(dev, cfg)
		done := 0
		for i := uint64(0); i < puts; i++ {
			l.Put(i, 1024, func() { done++ })
		}
		eng.Run()
		drained := false
		l.Barrier(func() { drained = true })
		eng.Run()
		if !drained || done != int(puts) {
			t.Fatalf("load(%d): drained=%v acks=%d", puts, drained, done)
		}
		// Read back uniformly and drain the issued probe I/O.
		for i := uint64(0); i < 500; i++ {
			l.Get(i*7, func() {})
		}
		eng.Run()
		return l
	}
	shallow := load(64)  // one flush: only L0 populated
	deep := load(20_000) // many flushes and compactions: several levels
	for name, l := range map[string]*LSM{"shallow": shallow, "deep": deep} {
		s := l.Stats()
		if s.Gets != 500 {
			t.Fatalf("%s: %d gets recorded", name, s.Gets)
		}
		if s.CacheHits+s.CacheMisses != s.Gets {
			t.Errorf("%s: hits %d + misses %d != gets %d", name, s.CacheHits, s.CacheMisses, s.Gets)
		}
		if s.CacheMisses > 0 && s.GetReads < s.CacheMisses {
			t.Errorf("%s: %d misses but only %d get reads", name, s.CacheMisses, s.GetReads)
		}
	}
	ds, ss := deep.Stats(), shallow.Stats()
	if ds.Compactions == 0 {
		t.Fatal("deep load triggered no compactions")
	}
	if ds.ReadAmp() <= ss.ReadAmp() {
		t.Errorf("read amp did not grow with depth: shallow %.2f, deep %.2f",
			ss.ReadAmp(), ds.ReadAmp())
	}
	shallow.Release()
	deep.Release()
}

// TestPageStoreGetHitMissAccounting pins the page store's read-path
// bookkeeping: a get of a cached page completes synchronously as a cache
// hit with no device traffic; a get of an uncached page is a miss that
// pays exactly one page-sized device read.
func TestPageStoreGetHitMissAccounting(t *testing.T) {
	eng, dev := newDev(t, "essd2")
	cfg := DefaultPageStoreConfig(dev)
	cfg.CachePages = 4
	p := NewPageStore(dev, cfg)
	// Install key 1's page in the cache via a put.
	acked := false
	p.Put(1, 512, func() { acked = true })
	eng.Run()
	if !acked {
		t.Fatal("put did not ack")
	}
	base := p.Stats()

	hit := false
	p.Get(1, func() { hit = true })
	if !hit {
		t.Fatal("cached get did not complete synchronously")
	}
	s := p.Stats()
	if s.CacheHits != base.CacheHits+1 || s.CacheMisses != base.CacheMisses {
		t.Errorf("hit accounting: hits %d->%d misses %d->%d",
			base.CacheHits, s.CacheHits, base.CacheMisses, s.CacheMisses)
	}
	if s.DeviceReads != base.DeviceReads || s.GetReads != base.GetReads {
		t.Errorf("cached get paid device I/O: reads %d->%d", base.DeviceReads, s.DeviceReads)
	}

	// Find a key on a different page: its get must miss.
	miss := uint64(2)
	for p.pageOf(miss) == p.pageOf(1) {
		miss++
	}
	missAcked := false
	p.Get(miss, func() { missAcked = true })
	eng.Run()
	if !missAcked {
		t.Fatal("missing get did not ack after drain")
	}
	s2 := p.Stats()
	if s2.CacheMisses != s.CacheMisses+1 || s2.GetReads != s.GetReads+1 {
		t.Errorf("miss accounting: misses %d->%d get reads %d->%d",
			s.CacheMisses, s2.CacheMisses, s.GetReads, s2.GetReads)
	}
	if s2.DeviceReads != s.DeviceReads+1 || s2.DeviceReadBytes != s.DeviceReadBytes+cfg.PageBytes {
		t.Errorf("miss device cost: reads %d->%d bytes %d->%d (page %d)",
			s.DeviceReads, s2.DeviceReads, s.DeviceReadBytes, s2.DeviceReadBytes, cfg.PageBytes)
	}
	p.Release()
}

// TestPutGetStatsConservationProperty interleaves random puts and gets on
// both engine designs and checks the invariants that must hold for any
// interleaving: every op acks exactly once, the engine's counters match
// the issued ops, read-path classification partitions the gets, and
// amplification accounting stays self-consistent. Run under -race it also
// certifies the single-threaded engines do not share hidden state.
func TestPutGetStatsConservationProperty(t *testing.T) {
	build := func(which string, eng *sim.Engine) Engine {
		dev, err := profilesDev(eng, which)
		if err != nil {
			t.Fatal(err)
		}
		switch which {
		case "lsm":
			cfg := DefaultLSMConfig()
			cfg.MemtableBytes = 32 << 10
			cfg.L0CompactTrigger = 2
			return NewLSM(dev, cfg)
		default:
			return NewPageStore(dev, DefaultPageStoreConfig(dev))
		}
	}
	for _, which := range []string{"lsm", "pagestore"} {
		for trial := 0; trial < 8; trial++ {
			rng := rand.New(rand.NewSource(int64(trial)*7919 + 13))
			eng := sim.NewEngine()
			e := build(which, eng)
			var puts, gets, acks, userBytes int64
			ops := 200 + rng.Intn(400)
			for i := 0; i < ops; i++ {
				key := rng.Uint64() % 4096
				if rng.Intn(2) == 0 {
					size := int64(128 + rng.Intn(1024))
					puts++
					userBytes += size
					e.Put(key, size, func() { acks++ })
				} else {
					gets++
					e.Get(key, func() { acks++ })
				}
				if rng.Intn(16) == 0 {
					eng.Run() // vary how much work is in flight per batch
				}
			}
			eng.Run()
			drained := false
			e.Barrier(func() { drained = true })
			eng.Run()
			if !drained {
				t.Fatalf("%s trial %d: engine did not drain", which, trial)
			}
			s := e.Stats()
			if acks != int64(ops) {
				t.Fatalf("%s trial %d: %d acks for %d ops", which, trial, acks, ops)
			}
			if int64(s.Puts) != puts || int64(s.Gets) != gets {
				t.Fatalf("%s trial %d: engine counted %d/%d, issued %d/%d",
					which, trial, s.Puts, s.Gets, puts, gets)
			}
			if s.UserBytes != userBytes {
				t.Fatalf("%s trial %d: user bytes %d, want %d", which, trial, s.UserBytes, userBytes)
			}
			if s.CacheHits+s.CacheMisses != s.Gets {
				t.Fatalf("%s trial %d: hits %d + misses %d != gets %d",
					which, trial, s.CacheHits, s.CacheMisses, s.Gets)
			}
			if s.GetReads > s.DeviceReads {
				t.Fatalf("%s trial %d: get reads %d exceed device reads %d",
					which, trial, s.GetReads, s.DeviceReads)
			}
			if puts > 0 && s.WriteAmp() < 1 {
				t.Fatalf("%s trial %d: write amp %.3f < 1 after drain", which, trial, s.WriteAmp())
			}
			if r, ok := e.(interface{ Release() }); ok {
				r.Release()
			}
		}
	}
}

// profilesDev builds a preconditioned essd2 device on eng; the name only
// labels the caller's intent.
func profilesDev(eng *sim.Engine, _ string) (blockdev.Device, error) {
	dev, err := profiles.ByName("essd2", eng, sim.NewRNG(77, 77^0x4))
	if err != nil {
		return nil, err
	}
	preconditionForWrites(dev)
	return dev, nil
}
