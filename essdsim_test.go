package essdsim_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"essdsim"
)

// These tests exercise the public façade exactly as the examples and a
// downstream user would, without touching internal packages directly.

func TestPublicDeviceConstruction(t *testing.T) {
	eng := essdsim.NewEngine()
	e1 := essdsim.NewESSD1(eng, 1)
	if e1.Capacity() <= 0 || e1.BlockSize() != 4096 {
		t.Fatal("ESSD-1 identity")
	}
	e2 := essdsim.NewESSD2(essdsim.NewEngine(), 1)
	if !strings.Contains(e2.Name(), "PL3") {
		t.Fatalf("ESSD-2 name %q", e2.Name())
	}
	s := essdsim.NewLocalSSD(essdsim.NewEngine(), 1)
	if !strings.Contains(s.Name(), "970") {
		t.Fatalf("SSD name %q", s.Name())
	}
	for _, name := range essdsim.ProfileNames() {
		if _, err := essdsim.NewDevice(name, essdsim.NewEngine(), 1); err != nil {
			t.Fatalf("profile %q: %v", name, err)
		}
	}
	if _, err := essdsim.NewDevice("bogus", essdsim.NewEngine(), 1); err == nil {
		t.Fatal("bogus profile accepted")
	}
}

func TestPublicRunWorkload(t *testing.T) {
	eng := essdsim.NewEngine()
	dev := essdsim.NewESSD2(eng, 5)
	essdsim.Precondition(dev, true)
	res := essdsim.Run(dev, essdsim.Workload{
		Pattern:    essdsim.RandWrite,
		BlockSize:  4 << 10,
		QueueDepth: 4,
		MaxOps:     500,
		Seed:       5,
	})
	if res.Ops != 500 {
		t.Fatalf("ops = %d", res.Ops)
	}
	s := res.Lat.Summarize()
	if s.Mean <= 0 || s.P999 < s.Mean {
		t.Fatalf("summary %+v", s)
	}
	var buf bytes.Buffer
	essdsim.FormatWorkloadResult(&buf, res)
	if !strings.Contains(buf.String(), "iops") {
		t.Fatal("workload summary malformed")
	}
}

func TestPublicSubmitDirect(t *testing.T) {
	eng := essdsim.NewEngine()
	dev := essdsim.NewLocalSSD(eng, 2)
	var lat essdsim.Duration = -1
	dev.Submit(&essdsim.Request{
		Op:     essdsim.OpWrite,
		Offset: 0,
		Size:   4096,
		OnComplete: func(r *essdsim.Request, at essdsim.Time) {
			lat = r.Latency(at)
		},
	})
	eng.Run()
	if lat <= 0 || lat > 100*essdsim.Microsecond {
		t.Fatalf("buffered 4K write latency = %v", lat)
	}
}

func TestPublicFioJobs(t *testing.T) {
	jobs, err := essdsim.ParseFioJobs(strings.NewReader(`
[global]
bs=8k
iodepth=4

[probe]
rw=randread
number_ios=100
`))
	if err != nil {
		t.Fatal(err)
	}
	eng := essdsim.NewEngine()
	dev := essdsim.NewESSD1(eng, 3)
	essdsim.Precondition(dev, false)
	res := essdsim.Run(dev, jobs[0].Spec)
	if res.Ops != 100 {
		t.Fatalf("ops = %d", res.Ops)
	}
}

func TestPublicTraceRoundTrip(t *testing.T) {
	recs := []essdsim.TraceRecord{
		{At: 0, Op: essdsim.OpWrite, Offset: 0, Size: 8192},
		{At: essdsim.Duration(essdsim.Millisecond), Op: essdsim.OpRead, Offset: 0, Size: 4096},
	}
	var buf bytes.Buffer
	if err := essdsim.WriteTrace(&buf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := essdsim.ReadTrace(&buf)
	if err != nil || len(back) != 2 {
		t.Fatalf("read back: %v %d", err, len(back))
	}
	eng := essdsim.NewEngine()
	dev := essdsim.NewESSD2(eng, 4)
	essdsim.Precondition(dev, false)
	res := essdsim.ReplayTrace(dev, back)
	if res.Ops != 2 {
		t.Fatalf("replayed %d", res.Ops)
	}
}

func TestPublicObservation1EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("public integration skipped in -short")
	}
	measure := func(mk func() essdsim.Device, bs int64, qd int) essdsim.Duration {
		dev := mk()
		essdsim.Precondition(dev, true)
		res := essdsim.Run(dev, essdsim.Workload{
			Pattern: essdsim.RandWrite, BlockSize: bs, QueueDepth: qd,
			Duration: 200 * essdsim.Millisecond, Warmup: 40 * essdsim.Millisecond, Seed: 6,
		})
		return res.Lat.Summarize().Mean
	}
	essd := func() essdsim.Device { return essdsim.NewESSD1(essdsim.NewEngine(), 6) }
	ssd := func() essdsim.Device { return essdsim.NewLocalSSD(essdsim.NewEngine(), 6) }
	gapSmall := float64(measure(essd, 4<<10, 1)) / float64(measure(ssd, 4<<10, 1))
	gapBig := float64(measure(essd, 256<<10, 16)) / float64(measure(ssd, 256<<10, 16))
	if gapSmall < 10 {
		t.Errorf("small-I/O gap %.1fx, want tens of times", gapSmall)
	}
	if gapBig > gapSmall/4 {
		t.Errorf("scaling did not shrink the gap: %.1fx -> %.1fx", gapSmall, gapBig)
	}
}

// TestPublicSweepAPI declares a small grid through the public Sweep façade
// and checks parallel execution yields deterministic, correctly ordered
// results — the way examples/patternadvisor and essdbench's sweep mode
// consume it.
func TestPublicSweepAPI(t *testing.T) {
	sweep := essdsim.Sweep{
		Devices:      essdsim.ProfileDevices("essd1"),
		Patterns:     []essdsim.Pattern{essdsim.RandWrite, essdsim.SeqWrite},
		BlockSizes:   []int64{16 << 10},
		QueueDepths:  []int{1, 8},
		CellDuration: 80 * essdsim.Millisecond,
		Warmup:       15 * essdsim.Millisecond,
		Precondition: essdsim.PrecondWrites,
		Seed:         21,
	}
	serial, err := essdsim.RunSweep(context.Background(), sweep, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := essdsim.RunSweep(context.Background(), sweep, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != 4 || len(parallel) != 4 {
		t.Fatalf("cells: %d serial, %d parallel", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Cell != parallel[i].Cell ||
			serial[i].Res.Lat.Summarize() != parallel[i].Res.Lat.Summarize() {
			t.Fatalf("cell %d differs between 1 and 4 workers", i)
		}
	}
	// QD8 must outrun QD1 for the same pattern on an ESSD.
	if serial[1].Res.Throughput() <= serial[0].Res.Throughput() {
		t.Error("QD8 random write no faster than QD1")
	}
}

// TestPublicOpenLoopAndBurst exercises the open-loop façade: RunOpen on a
// single device, an open-loop sweep kind, and the burst-credit scenario.
func TestPublicOpenLoopAndBurst(t *testing.T) {
	eng := essdsim.NewEngine()
	dev, err := essdsim.NewDevice("gp2", eng, 3)
	if err != nil {
		t.Fatal(err)
	}
	essdsim.Precondition(dev, true)
	res := essdsim.RunOpen(dev, essdsim.OpenWorkload{
		Pattern:    essdsim.RandWrite,
		BlockSize:  64 << 10,
		RatePerSec: 2000,
		Arrival:    essdsim.ArrivalBursty,
		Count:      400,
		Seed:       3,
	})
	if res.Ops != 400 || res.MaxOutstanding < 2 {
		t.Fatalf("open loop: ops=%d peak=%d", res.Ops, res.MaxOutstanding)
	}

	sweep := essdsim.Sweep{
		Kind:        essdsim.SweepOpen,
		Devices:     essdsim.ProfileDevices("gp2"),
		Patterns:    []essdsim.Pattern{essdsim.RandWrite},
		BlockSizes:  []int64{64 << 10},
		Arrivals:    []essdsim.Arrival{essdsim.ArrivalUniform, essdsim.ArrivalBursty},
		RatesPerSec: []float64{2000},
		OpenOps:     300,
		Seed:        4,
	}
	cells, err := essdsim.RunSweep(context.Background(), sweep, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 || cells[0].Open == nil {
		t.Fatalf("open sweep cells: %+v", cells)
	}
	// Bursty arrivals at the same offered rate must queue deeper.
	if cells[1].Open.MaxOutstanding <= cells[0].Open.MaxOutstanding {
		t.Errorf("bursty peak %d not above uniform %d",
			cells[1].Open.MaxOutstanding, cells[0].Open.MaxOutstanding)
	}

	rep, err := essdsim.RunBurstScenario(context.Background(), essdsim.BurstSweep{
		WriteRatiosPct: []int{100},
		Arrivals:       []essdsim.Arrival{essdsim.ArrivalUniform},
		RatesPerSec:    []float64{3000},
		Ops:            300,
		Seed:           5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 2 { // both default burstable tiers
		t.Fatalf("burst cells = %d", len(rep.Cells))
	}
	var buf bytes.Buffer
	essdsim.FormatBurstReport(&buf, rep)
	if !strings.Contains(buf.String(), "gp2s") {
		t.Errorf("report missing device name:\n%s", buf.String())
	}
}
