package kv

import "testing"

// ingestSmoke runs the canonical fixed-seed smoke ingest used by the
// determinism test below: modest enough to stay fast, big enough to
// force flushes and compactions on the LSM path.
func ingestSmoke(t *testing.T, engine string) IngestResult {
	t.Helper()
	eng, dev := newDev(t, "essd2")
	var e Engine
	switch engine {
	case "lsm":
		cfg := DefaultLSMConfig()
		cfg.MemtableBytes = 64 << 10
		cfg.L0CompactTrigger = 2
		e = NewLSM(dev, cfg)
	case "pagestore":
		e = NewPageStore(dev, DefaultPageStoreConfig(dev))
	default:
		t.Fatalf("unknown engine %q", engine)
	}
	return Ingest(eng, e, 800, 1024, 8, 1<<14, 42)
}

// TestIngestDeterministicSmoke pins the bench harness itself: a
// fixed-seed ingest must populate every measurement field, repeat
// byte-identically (same virtual elapsed time, same device-byte
// accounting — the whole IngestResult), and leave both engines
// satisfying their structural invariants.
func TestIngestDeterministicSmoke(t *testing.T) {
	for _, engine := range []string{"lsm", "pagestore"} {
		t.Run(engine, func(t *testing.T) {
			res := ingestSmoke(t, engine)
			if res.Engine == "" {
				t.Fatalf("unlabeled result %+v", res)
			}
			if res.Puts != 800 || res.UserBytes != 800*1024 {
				t.Fatalf("conservation: %+v", res)
			}
			if res.Elapsed <= 0 {
				t.Fatalf("no virtual time elapsed: %v", res.Elapsed)
			}
			if res.PutsPerSec() <= 0 || res.UserMBps() <= 0 {
				t.Fatalf("rates not populated: %.1f puts/s, %.1f MB/s",
					res.PutsPerSec(), res.UserMBps())
			}
			if res.Stats.DeviceWriteBytes < res.UserBytes {
				t.Fatalf("device wrote %d bytes for %d user bytes",
					res.Stats.DeviceWriteBytes, res.UserBytes)
			}
			if wa := res.Stats.WriteAmp(); wa < 1 {
				t.Fatalf("write amplification %.2f < 1", wa)
			}
			// Same seed, same engine: the virtual run must repeat exactly.
			if again := ingestSmoke(t, engine); again != res {
				t.Fatalf("fixed-seed ingest not deterministic:\n first %+v\nsecond %+v", res, again)
			}
		})
	}
}

// TestIngestLeavesEnginesConsistent re-runs the smoke ingest with direct
// access to the engines and checks the structural invariants the
// IngestResult cannot see: the LSM's memtable fully drained with all
// data accounted to some level, and the page store's cache bounded by
// its configured capacity.
func TestIngestLeavesEnginesConsistent(t *testing.T) {
	t.Run("lsm", func(t *testing.T) {
		eng, dev := newDev(t, "essd2")
		cfg := DefaultLSMConfig()
		cfg.MemtableBytes = 64 << 10
		cfg.L0CompactTrigger = 2
		l := NewLSM(dev, cfg)
		res := Ingest(eng, l, 800, 1024, 8, 1<<14, 42)
		if l.memUsed != 0 {
			t.Fatalf("memtable holds %d bytes after barrier", l.memUsed)
		}
		var total int64
		for _, b := range l.LevelBytes() {
			if b < 0 {
				t.Fatalf("negative level bytes: %v", l.LevelBytes())
			}
			total += b
		}
		if total < res.UserBytes {
			t.Fatalf("levels hold %d bytes, ingested %d", total, res.UserBytes)
		}
		if res.Stats.Flushes == 0 || res.Stats.Compactions == 0 {
			t.Fatalf("smoke ingest exercised no background work: %+v", res.Stats)
		}
	})
	t.Run("pagestore", func(t *testing.T) {
		eng, dev := newDev(t, "essd2")
		cfg := DefaultPageStoreConfig(dev)
		cfg.CachePages = 32
		p := NewPageStore(dev, cfg)
		res := Ingest(eng, p, 800, 1024, 8, 1<<14, 42)
		if len(p.cache) > cfg.CachePages {
			t.Fatalf("cache grew to %d entries (cap %d)", len(p.cache), cfg.CachePages)
		}
		if res.Stats.DeviceWrites != res.Puts {
			t.Fatalf("page store wrote %d pages for %d puts", res.Stats.DeviceWrites, res.Puts)
		}
		if res.Stats.DeviceReads > res.Puts {
			t.Fatalf("page store read %d pages for %d puts", res.Stats.DeviceReads, res.Puts)
		}
	})
}
