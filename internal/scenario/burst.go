// Package scenario builds opinionated experiment suites on top of the
// internal/expgrid worker pool. Where internal/harness reproduces the
// paper's figures, scenario answers the operational questions the figures
// imply. The first suite targets Observation #4 / Implication #4 on
// burstable volume tiers: how long do burst credits last under a given
// write ratio, arrival shape, and offered rate — and how hard is the
// latency cliff when they run out.
package scenario

import (
	"context"
	"fmt"
	"io"

	"essdsim/internal/blockdev"
	"essdsim/internal/expgrid"
	"essdsim/internal/profiles"
	"essdsim/internal/sim"
	"essdsim/internal/stats"
	"essdsim/internal/workload"
)

// BurstSweep declares a burst-credit exhaustion suite: mixed random I/O
// across write-ratio × arrival-shape × offered-rate on each burstable
// device, run open-loop so the offered timeline (not device back-pressure)
// drives credit consumption. Zero-valued fields take defaults.
type BurstSweep struct {
	// Devices are the volume tiers under test (default BurstTierDevices).
	// Non-burstable devices are allowed; their credit columns read as
	// "not burstable".
	Devices []expgrid.NamedFactory

	WriteRatiosPct []int              // default 0, 50, 100
	Arrivals       []workload.Arrival // default Uniform, Bursty
	RatesPerSec    []float64          // offered req/s (default 1500, 3000)

	BlockSize int64  // bytes per request (default 256 KiB)
	Ops       uint64 // requests per cell (default 12000)

	Seed    uint64
	Workers int    // expgrid pool size (0 = GOMAXPROCS)
	Label   string // seed decorrelation label (default "burst")
}

func (s BurstSweep) withDefaults() BurstSweep {
	if len(s.Devices) == 0 {
		s.Devices = BurstTierDevices()
	}
	if len(s.WriteRatiosPct) == 0 {
		s.WriteRatiosPct = []int{0, 50, 100}
	}
	if len(s.Arrivals) == 0 {
		s.Arrivals = []workload.Arrival{workload.Uniform, workload.Bursty}
	}
	if len(s.RatesPerSec) == 0 {
		s.RatesPerSec = []float64{1500, 3000}
	}
	if s.BlockSize <= 0 {
		s.BlockSize = 256 << 10
	}
	if s.Ops == 0 {
		s.Ops = 12000
	}
	if s.Label == "" {
		s.Label = "burst"
	}
	return s
}

// BurstTierDevices returns the default device axis: the two calibrated
// burstable tiers (gp2 class and its smaller sibling).
func BurstTierDevices() []expgrid.NamedFactory {
	return []expgrid.NamedFactory{
		{Name: "gp2", New: profileFactory("gp2")},
		{Name: "gp2s", New: profileFactory("gp2s")},
	}
}

func profileFactory(name string) expgrid.Factory {
	return func(seed uint64) blockdev.Device {
		dev, err := profiles.ByName(name, sim.NewEngine(), sim.NewRNG(seed, seed^0x5c))
		if err != nil {
			panic(err) // expgrid recovers this into CellResult.Err
		}
		return dev
	}
}

// BurstCell is one measured point of the suite.
type BurstCell struct {
	Device        string
	WriteRatioPct int
	Arrival       workload.Arrival
	RatePerSec    float64 // offered requests/s
	OfferedBps    float64 // offered bytes/s (rate × block size)

	Ops            uint64
	Bytes          int64
	Elapsed        sim.Duration
	Lat            stats.Summary
	MaxOutstanding int

	// Credit state captured on the still-alive device after the run.
	Burstable bool
	// CreditsLeft is the balance when the cell finished draining — spends
	// are charged at enqueue time, so it includes credits re-earned while
	// the backlog completed and can sit well above the mid-run trough.
	CreditsLeft float64
	Exhaustions uint64       // times the balance hit zero
	ExhaustedAt sim.Duration // time to first exhaustion; -1 when never
	Floor       float64      // post-exhaustion sustained bytes/s; -1 if n/a
	Throttled   bool         // provider flow limiter engaged
	BudgetStall sim.Duration // cumulative throughput-budget wait

	// The latency cliff: completion-weighted mean latency and throughput
	// before and after the first exhaustion. Zero/whole-run when the cell
	// never exhausted.
	PreCliffLat  sim.Duration
	PostCliffLat sim.Duration
	PreCliffBps  float64
	PostCliffBps float64
}

// BurstReport is the full suite's measurement.
type BurstReport struct {
	BlockSize int64
	Ops       uint64
	Cells     []BurstCell
}

// creditInfo is the post-run device state the sweep's Inspect hook captures
// on the worker, while the cell's device is still alive.
type creditInfo struct {
	burstable   bool
	credits     float64
	exhaustions uint64
	exhaustedAt sim.Time
	floor       float64
	throttled   bool
	stall       sim.Duration
}

func inspectCredits(dev blockdev.Device, _ expgrid.Cell) any {
	info := creditInfo{exhaustedAt: -1, floor: -1}
	if d, ok := dev.(interface{ Burstable() bool }); ok {
		info.burstable = d.Burstable()
	}
	if d, ok := dev.(interface{ Credits() float64 }); ok && info.burstable {
		info.credits = d.Credits()
	}
	if d, ok := dev.(interface{ CreditExhaustions() uint64 }); ok {
		info.exhaustions = d.CreditExhaustions()
	}
	if d, ok := dev.(interface{ CreditExhaustedAt() sim.Time }); ok {
		info.exhaustedAt = d.CreditExhaustedAt()
	}
	if d, ok := dev.(interface{ CreditFloor() float64 }); ok {
		info.floor = d.CreditFloor()
	}
	if d, ok := dev.(interface{ Throttled() bool }); ok {
		info.throttled = d.Throttled()
	}
	if d, ok := dev.(interface{ BudgetStall() sim.Duration }); ok {
		info.stall = d.BudgetStall()
	}
	return info
}

// RunBurst executes the suite on the expgrid worker pool and folds the
// cells into a report. Results are deterministic and identical for any
// worker count. Cancel ctx to stop early.
func RunBurst(ctx context.Context, s BurstSweep) (*BurstReport, error) {
	s = s.withDefaults()
	sw := expgrid.Sweep{
		Kind:           expgrid.Open,
		Devices:        s.Devices,
		Patterns:       []workload.Pattern{workload.Mixed},
		BlockSizes:     []int64{s.BlockSize},
		WriteRatiosPct: s.WriteRatiosPct,
		Arrivals:       s.Arrivals,
		RatesPerSec:    s.RatesPerSec,
		OpenOps:        s.Ops,
		Precondition:   expgrid.PrecondFull, // reads must hit data
		Inspect:        inspectCredits,
		Seed:           s.Seed,
		Label:          s.Label,
	}
	results, err := expgrid.Runner{Workers: s.Workers}.Run(ctx, sw)
	if err != nil {
		return nil, err
	}
	rep := &BurstReport{BlockSize: s.BlockSize, Ops: s.Ops}
	for _, r := range results {
		rep.Cells = append(rep.Cells, foldBurstCell(r))
	}
	return rep, nil
}

func foldBurstCell(r expgrid.CellResult) BurstCell {
	open := r.Open
	info := r.Info.(creditInfo)
	// Prefer the short, stable axis name over the device's display name;
	// the axis name is what a caller sweeps and filters on.
	name := r.DeviceName
	if name == "" {
		name = r.Device
	}
	cell := BurstCell{
		Device:        name,
		WriteRatioPct: r.WriteRatioPct,
		Arrival:       r.Arrival,
		RatePerSec:    r.RatePerSec,
		OfferedBps:    r.RatePerSec * float64(r.BlockSize),

		Ops:            open.Ops,
		Bytes:          open.Bytes,
		Elapsed:        open.Elapsed,
		Lat:            open.Lat.Summarize(),
		MaxOutstanding: open.MaxOutstanding,

		Burstable:   info.burstable,
		CreditsLeft: info.credits,
		Exhaustions: info.exhaustions,
		ExhaustedAt: -1,
		Floor:       info.floor,
		Throttled:   info.throttled,
		BudgetStall: info.stall,
	}
	n := open.LatSeries.Len()
	if info.exhaustedAt >= 0 {
		// The cell's device starts on a fresh engine at time zero and
		// preconditioning consumes no virtual time, so the exhaustion
		// timestamp is already relative to the cell start.
		cell.ExhaustedAt = sim.Duration(info.exhaustedAt)
		split := int(int64(info.exhaustedAt) / int64(open.LatSeries.Interval()))
		if split > n {
			split = n
		}
		cell.PreCliffLat = open.LatSeries.MeanRange(0, split)
		cell.PostCliffLat = open.LatSeries.MeanRange(split, n)
		cell.PreCliffBps = open.Series.MeanRate(0, split)
		cell.PostCliffBps = open.Series.MeanRate(split, open.Series.Len())
	} else {
		cell.PreCliffLat = open.LatSeries.MeanRange(0, n)
		cell.PreCliffBps = open.Series.MeanRate(0, open.Series.Len())
	}
	return cell
}

// FormatBurst writes the report as an aligned table: one row per cell with
// its credit-exhaustion time, post-run credit state, throttle and
// budget-stall columns, and the pre/post-exhaustion latency cliff.
func FormatBurst(w io.Writer, r *BurstReport) {
	fmt.Fprintf(w, "Burst-credit scenario: %d KiB mixed random I/O, %d requests per cell (open loop)\n",
		r.BlockSize>>10, r.Ops)
	fmt.Fprintf(w, "%-6s %4s %-8s %9s %9s %9s %9s %10s %10s %10s %10s\n",
		"device", "wr%", "arrival", "offered", "exhaust@", "credits", "stall",
		"pre-lat", "post-lat", "pre-MB/s", "post-MB/s")
	for _, c := range r.Cells {
		exhaust, credits := "-", "-"
		if c.Burstable {
			credits = fmt.Sprintf("%.0fMB", c.CreditsLeft/1e6)
			if c.ExhaustedAt >= 0 {
				exhaust = fmt.Sprintf("%.2fs", c.ExhaustedAt.Seconds())
			} else {
				exhaust = "never"
			}
		}
		post := "-"
		postBW := "-"
		if c.ExhaustedAt >= 0 {
			post = fmtLat(c.PostCliffLat)
			postBW = fmt.Sprintf("%.1f", c.PostCliffBps/1e6)
		}
		name := c.Device
		if len(name) > 6 {
			name = name[:6]
		}
		// BudgetStall sums every request's wait on the throughput budget,
		// so heavy queueing makes it far exceed the wall-clock span.
		fmt.Fprintf(w, "%-6s %4d %-8s %8.1fM %9s %9s %8.0fs %10s %10s %10.1f %10s",
			name, c.WriteRatioPct, c.Arrival, c.OfferedBps/1e6, exhaust, credits,
			c.BudgetStall.Seconds(), fmtLat(c.PreCliffLat), post,
			c.PreCliffBps/1e6, postBW)
		if c.Throttled {
			fmt.Fprint(w, "  THROTTLED")
		}
		fmt.Fprintln(w)
	}
}

func fmtLat(d sim.Duration) string {
	switch {
	case d <= 0:
		return "-"
	case d < sim.Millisecond:
		return fmt.Sprintf("%.0fµs", d.Seconds()*1e6)
	case d < sim.Second:
		return fmt.Sprintf("%.2fms", d.Seconds()*1e3)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}
