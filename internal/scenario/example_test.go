package scenario_test

import (
	"context"
	"fmt"

	"essdsim/internal/scenario"
	"essdsim/internal/workload"
)

// ExampleRunBurst runs a single-cell burst-credit scenario: the small
// burstable tier offered 256 KiB writes at twice what its credits can
// sustain. The suite reports whether (and that) the bank drained and that
// the post-cliff throughput fell below the pre-cliff burst window.
func ExampleRunBurst() {
	rep, err := scenario.RunBurst(context.Background(), scenario.BurstSweep{
		Devices:        scenario.BurstTierDevices()[1:], // gp2s only
		WriteRatiosPct: []int{100},
		Arrivals:       []workload.Arrival{workload.Uniform},
		RatesPerSec:    []float64{3000},
		Ops:            6000,
		Seed:           7,
	})
	if err != nil {
		panic(err)
	}
	c := rep.Cells[0]
	fmt.Printf("%s offered %.0f MB/s: burstable=%v exhausted=%v cliff=%v\n",
		c.Device, c.OfferedBps/1e6, c.Burstable,
		c.ExhaustedAt >= 0, c.PostCliffBps < c.PreCliffBps)
	// Output:
	// gp2s offered 786 MB/s: burstable=true exhausted=true cliff=true
}
