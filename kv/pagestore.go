package kv

import (
	"fmt"
	"sync"

	"essdsim/internal/blockdev"
	"essdsim/internal/sim"
)

// PageStoreConfig parameterizes the update-in-place engine.
type PageStoreConfig struct {
	// PageBytes is the on-device page size (typically the block size).
	PageBytes int64
	// CachePages is the in-memory page cache capacity: puts that hit the
	// cache skip the read-before-write.
	CachePages int
	// Seed drives page placement.
	Seed uint64
}

// DefaultPageStoreConfig returns a B-tree-like configuration: 4 KiB pages
// with a cache covering 1/32 of the device's pages.
func DefaultPageStoreConfig(dev blockdev.Device) PageStoreConfig {
	return PageStoreConfig{
		PageBytes:  int64(dev.BlockSize()),
		CachePages: int(dev.Capacity() / int64(dev.BlockSize()) / 32),
		Seed:       1,
	}
}

// PageStore is the update-in-place design: every put reads (on a cache
// miss) and rewrites its key's page at a fixed random device location —
// the 4 KiB random-write pattern that local-SSD lore says to avoid and
// that Observation #3 rehabilitates on ESSDs.
//
// Per-operation state (the read-modify-write pair shares one pooled op
// with a bound completion method) comes from an intrusive free list, so
// the steady-state put path allocates nothing.
type PageStore struct {
	dev   blockdev.Device
	cfg   PageStoreConfig
	pages int64

	cache      map[int64]struct{}
	cacheOrder []int64 // FIFO ring: live entries are cacheOrder[cacheHead:]
	cacheHead  int

	inflight int
	barriers []func()
	stats    Stats

	freeOps *pageOp
}

// pageStorePool recycles whole engines across sweep cells, keeping the
// cache map's buckets, the FIFO array, and the op free list warm.
var pageStorePool = sync.Pool{New: func() any { return new(PageStore) }}

// NewPageStore builds the engine over the device, reusing a pooled
// engine's internal structures when one is available. It panics on
// invalid configuration (programming error).
func NewPageStore(dev blockdev.Device, cfg PageStoreConfig) *PageStore {
	bs := int64(dev.BlockSize())
	if cfg.PageBytes < bs || cfg.PageBytes%bs != 0 {
		panic(fmt.Sprintf("kv: bad page size %d", cfg.PageBytes))
	}
	if cfg.CachePages < 0 {
		panic("kv: negative cache")
	}
	p := pageStorePool.Get().(*PageStore)
	p.dev = dev
	p.cfg = cfg
	p.pages = dev.Capacity() / cfg.PageBytes
	if p.cache == nil {
		p.cache = make(map[int64]struct{})
	} else {
		clear(p.cache)
	}
	p.cacheOrder = p.cacheOrder[:0]
	p.cacheHead = 0
	p.inflight = 0
	p.barriers = p.barriers[:0]
	p.stats = Stats{}
	return p
}

// Release returns the engine to the package pool for reuse by a later
// cell. The engine must be idle and must not be used afterwards.
func (p *PageStore) Release() {
	p.dev = nil
	pageStorePool.Put(p)
}

// Name implements Engine.
func (p *PageStore) Name() string { return "pagestore" }

// Stats implements Engine.
func (p *PageStore) Stats() Stats { return p.stats }

// Device implements Engine.
func (p *PageStore) Device() blockdev.Device { return p.dev }

// pageOf maps a key to its page via a multiplicative hash.
func (p *PageStore) pageOf(key uint64) int64 {
	h := (key ^ p.cfg.Seed) * 0x9e3779b97f4a7c15
	h ^= h >> 32
	return int64(h % uint64(p.pages))
}

func (p *PageStore) cacheTouch(page int64) (hit bool) {
	if _, ok := p.cache[page]; ok {
		return true
	}
	if p.cfg.CachePages == 0 {
		return false
	}
	for len(p.cacheOrder)-p.cacheHead >= p.cfg.CachePages {
		victim := p.cacheOrder[p.cacheHead]
		p.cacheHead++
		delete(p.cache, victim)
	}
	if p.cacheHead > 0 && p.cacheHead*2 >= len(p.cacheOrder) {
		// Compact the consumed FIFO prefix so the array stays bounded.
		n := copy(p.cacheOrder, p.cacheOrder[p.cacheHead:])
		p.cacheOrder = p.cacheOrder[:n]
		p.cacheHead = 0
	}
	p.cache[page] = struct{}{}
	p.cacheOrder = append(p.cacheOrder, page)
	return false
}

// cacheLen returns the number of live cache entries, for tests.
func (p *PageStore) cacheLen() int { return len(p.cache) }

// Put implements Engine: read-modify-write of the key's page, ack on the
// page write's completion (update-in-place durability).
func (p *PageStore) Put(key uint64, valueSize int64, done func()) {
	if valueSize <= 0 {
		panic("kv: value size must be positive")
	}
	if valueSize > p.cfg.PageBytes {
		panic("kv: value larger than a page; split keys upstream")
	}
	p.stats.Puts++
	p.stats.UserBytes += valueSize
	page := p.pageOf(key)
	o := p.getOp()
	o.done = done
	o.off = page * p.cfg.PageBytes
	if p.cacheTouch(page) {
		o.write()
		return
	}
	// Cache miss: fetch the page before modifying it.
	p.stats.DeviceReads++
	p.stats.DeviceReadBytes += p.cfg.PageBytes
	p.inflight++
	o.reading = true
	o.req.Op = blockdev.Read
	o.req.Offset = o.off
	o.req.Size = p.cfg.PageBytes
	p.dev.Submit(&o.req)
}

// Get implements Engine: a cache hit answers in memory; a miss reads the
// key's page (and caches it).
func (p *PageStore) Get(key uint64, done func()) {
	p.stats.Gets++
	page := p.pageOf(key)
	if p.cacheTouch(page) {
		p.stats.CacheHits++
		done()
		return
	}
	p.stats.CacheMisses++
	p.stats.DeviceReads++
	p.stats.DeviceReadBytes += p.cfg.PageBytes
	p.stats.GetReads++
	p.inflight++
	o := p.getOp()
	o.done = done
	o.off = page * p.cfg.PageBytes
	o.reading = true
	o.get = true
	o.req.Op = blockdev.Read
	o.req.Offset = o.off
	o.req.Size = p.cfg.PageBytes
	p.dev.Submit(&o.req)
}

// BeginBatch implements Engine. Page-store puts have no deferred
// admission housekeeping, so batching is a no-op.
func (p *PageStore) BeginBatch() {}

// EndBatch implements Engine.
func (p *PageStore) EndBatch() {}

// Barrier implements Engine.
func (p *PageStore) Barrier(done func()) {
	if p.inflight == 0 {
		done()
		return
	}
	p.barriers = append(p.barriers, done)
}

func (p *PageStore) checkBarriers() {
	if p.inflight != 0 || len(p.barriers) == 0 {
		return
	}
	bs := p.barriers
	p.barriers = nil
	for _, b := range bs {
		b()
	}
	if p.barriers == nil {
		p.barriers = bs[:0] // reuse the drained backing array
	}
}

// pageOp is one pooled read-modify-write (or get) in flight, its device
// request's OnComplete bound once at construction.
type pageOp struct {
	p        *PageStore
	done     func()
	off      int64
	reading  bool
	get      bool
	req      blockdev.Request
	nextFree *pageOp
}

func (p *PageStore) getOp() *pageOp {
	o := p.freeOps
	if o != nil {
		p.freeOps = o.nextFree
		o.nextFree = nil
		return o
	}
	o = &pageOp{p: p}
	o.req.OnComplete = o.onComplete
	return o
}

// write submits the page write half of the op.
func (o *pageOp) write() {
	p := o.p
	p.stats.DeviceWrites++
	p.stats.DeviceWriteBytes += p.cfg.PageBytes
	p.inflight++
	o.req.Op = blockdev.Write
	o.req.Offset = o.off
	o.req.Size = p.cfg.PageBytes
	p.dev.Submit(&o.req)
}

func (o *pageOp) onComplete(_ *blockdev.Request, _ sim.Time) {
	p := o.p
	p.inflight--
	if o.reading && !o.get {
		o.reading = false
		o.write()
		return
	}
	done := o.done
	o.done = nil
	o.reading = false
	o.get = false
	o.nextFree = p.freeOps
	p.freeOps = o
	done()
	p.checkBarriers()
}

var _ Engine = (*PageStore)(nil)
