package sim

import "sort"

// FlowQueue is the pluggable per-flow scheduler behind Server and Pipe:
// when installed (SetQueue), work that cannot start immediately is pushed
// here keyed by flow id, and the resource pops the next item to serve
// whenever a slot (or the pipe) frees. Cost is in the resource's native
// units — service nanoseconds for a Server, payload bytes for a Pipe —
// so one implementation schedules both. Implementations must be
// deterministic: identical call sequences produce identical pop orders.
//
// The nil FlowQueue is FIFO: resources without a queue keep their
// original arrival-order behaviour on the exact code path (and event
// schedule) they had before flow scheduling existed.
type FlowQueue interface {
	// SetFlow declares or updates a flow's scheduling parameters: a
	// weighted-fair share (weight <= 0 means 1) and a reserved service
	// rate in cost units per second (0 = no reservation). Unknown flows
	// pushed without SetFlow default to weight 1, no reservation.
	SetFlow(flow int, weight, reservedPerSec float64)
	// Push enqueues one work item of the given cost for the flow.
	Push(flow int, cost int64, done func())
	// Pop removes and returns the next item to serve.
	Pop() (cost int64, done func(), ok bool)
	// Len returns the number of queued items across all flows.
	Len() int
}

// flowJob is one queued work item.
type flowJob struct {
	cost int64
	done func()
}

// flowState is one flow's queue and scheduling account inside a DRRQueue
// (and, via embedding, a ReservationQueue).
type flowState struct {
	weight   float64
	reserved float64 // reserved cost units per second (reservation policy)

	q     []flowJob // FIFO ring: live jobs are q[qhead:]
	qhead int

	deficit float64 // DRR deficit counter, in cost units
	charged bool    // quantum already granted for the current round visit
	active  bool    // present in the DRR activation ring

	tokens   float64 // reservation token balance, in cost units
	lastFill Time
}

func (f *flowState) qlen() int { return len(f.q) - f.qhead }

func (f *flowState) push(j flowJob) { f.q = append(f.q, j) }

func (f *flowState) pop() flowJob {
	j := f.q[f.qhead]
	f.q[f.qhead] = flowJob{}
	f.qhead++
	if f.qhead == len(f.q) {
		f.q = f.q[:0]
		f.qhead = 0
	}
	return j
}

// DRRQueue is a deficit-round-robin weighted-fair scheduler: each active
// flow is visited in activation order and granted quantum×weight cost
// units per round, accumulated in a deficit counter it spends on its
// queued items. Backlogged flows therefore share capacity in proportion
// to their weights regardless of item sizes, while an idle flow banks
// nothing (its deficit resets when its queue drains) — the classic
// O(1)-per-decision fair queueing discipline.
type DRRQueue struct {
	quantum float64
	flows   map[int]*flowState
	order   []*flowState // activation ring: live entries are order[ohead:]
	ohead   int
	size    int
}

// NewDRRQueue returns a weighted-fair queue with the given per-round
// quantum in cost units (minimum 1).
func NewDRRQueue(quantum int64) *DRRQueue {
	if quantum < 1 {
		quantum = 1
	}
	return &DRRQueue{quantum: float64(quantum), flows: make(map[int]*flowState)}
}

func (d *DRRQueue) flow(id int) *flowState {
	f := d.flows[id]
	if f == nil {
		f = &flowState{weight: 1}
		d.flows[id] = f
	}
	return f
}

// SetFlow implements FlowQueue.
func (d *DRRQueue) SetFlow(id int, weight, reservedPerSec float64) {
	f := d.flow(id)
	if weight <= 0 {
		weight = 1
	}
	f.weight = weight
	f.reserved = reservedPerSec
}

// Push implements FlowQueue.
func (d *DRRQueue) Push(id int, cost int64, done func()) {
	f := d.flow(id)
	f.push(flowJob{cost: cost, done: done})
	d.size++
	if !f.active {
		f.active = true
		d.order = append(d.order, f)
	}
}

// Len implements FlowQueue.
func (d *DRRQueue) Len() int { return d.size }

func (d *DRRQueue) popOrder() {
	d.order[d.ohead] = nil
	d.ohead++
	if d.ohead == len(d.order) {
		d.order = d.order[:0]
		d.ohead = 0
	}
}

// Pop implements FlowQueue: serve the head-of-ring flow while its deficit
// covers its head item, otherwise rotate it to the tail and grant the
// next flow its round quantum. Each full rotation grants every active
// flow one quantum, so the loop terminates for any finite item cost.
func (d *DRRQueue) Pop() (int64, func(), bool) {
	if d.size == 0 {
		return 0, nil, false
	}
	for {
		f := d.order[d.ohead]
		if f.qlen() == 0 {
			// Stale entry: the flow's items were served out of band (the
			// reservation fast path); drop it from the ring.
			f.active = false
			f.deficit = 0
			f.charged = false
			d.popOrder()
			continue
		}
		if !f.charged {
			f.deficit += d.quantum * f.weight
			f.charged = true
		}
		j := f.q[f.qhead]
		if float64(j.cost) <= f.deficit {
			f.deficit -= float64(j.cost)
			f.pop()
			d.size--
			if f.qlen() == 0 {
				f.active = false
				f.deficit = 0
				f.charged = false
				d.popOrder()
			}
			return j.cost, j.done, true
		}
		// Not enough deficit: keep the balance, move to the back of the
		// round, and earn another quantum on the next visit.
		f.charged = false
		d.popOrder()
		d.order = append(d.order, f)
	}
}

// FlowIDs returns every flow id the queue has seen, ascending — a
// stable iteration order for observability probes over the unordered
// flow map.
func (d *DRRQueue) FlowIDs() []int {
	ids := make([]int, 0, len(d.flows))
	for id := range d.flows {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// FlowDeficit returns a flow's current DRR deficit counter in cost
// units (0 for unknown flows). Read-only.
func (d *DRRQueue) FlowDeficit(id int) float64 {
	if f := d.flows[id]; f != nil {
		return f.deficit
	}
	return 0
}

// FlowQueued returns the number of items a flow has waiting (0 for
// unknown flows). Read-only.
func (d *DRRQueue) FlowQueued(id int) int {
	if f := d.flows[id]; f != nil {
		return f.qlen()
	}
	return 0
}

// ReservationQueue layers strict reservations over a DRR pool: a flow
// with a reserved rate earns tokens (cost units per second of virtual
// time) and its queued items are served ahead of everything else while
// its balance is positive — the balance may go negative on an oversized
// item, which self-limits the flow to its reserved rate long-run without
// starving large items. Flows past their reservation, and flows with no
// reservation, fall through to the embedded weighted-fair pool, so the
// scheduler is work-conserving: reserved capacity left unused is spilled
// to whoever is backlogged.
type ReservationQueue struct {
	DRRQueue
	eng      *Engine
	reserved []*flowState // flows with a reservation, in SetFlow order
	burst    float64      // token balance cap, in cost units
}

// NewReservationQueue returns a reservation-plus-spillover queue with the
// given DRR quantum in cost units. The engine supplies virtual time for
// token accrual.
func NewReservationQueue(eng *Engine, quantum int64) *ReservationQueue {
	q := &ReservationQueue{eng: eng}
	if quantum < 1 {
		quantum = 1
	}
	q.quantum = float64(quantum)
	q.flows = make(map[int]*flowState)
	q.burst = 8 * q.quantum
	return q
}

// SetFlow implements FlowQueue; a positive reservedPerSec enrolls the
// flow in the strict-priority reservation scan.
func (r *ReservationQueue) SetFlow(id int, weight, reservedPerSec float64) {
	f := r.flow(id)
	hadReservation := f.reserved > 0
	r.DRRQueue.SetFlow(id, weight, reservedPerSec)
	if f.reserved > 0 && !hadReservation {
		f.tokens = r.burst // start full: immediate priority up to the burst
		f.lastFill = r.eng.Now()
		r.reserved = append(r.reserved, f)
	}
}

// fill accrues reservation tokens up to now, capped at the burst depth.
func (r *ReservationQueue) fill(f *flowState) {
	now := r.eng.Now()
	dt := now.Sub(f.lastFill).Seconds()
	f.lastFill = now
	if dt <= 0 {
		return
	}
	f.tokens += dt * f.reserved
	if f.tokens > r.burst {
		f.tokens = r.burst
	}
}

// Pop implements FlowQueue: reserved flows with a positive token balance
// are served first (in SetFlow order), then the weighted-fair pool.
func (r *ReservationQueue) Pop() (int64, func(), bool) {
	if r.size == 0 {
		return 0, nil, false
	}
	for _, f := range r.reserved {
		r.fill(f)
		if f.qlen() == 0 || f.tokens <= 0 {
			continue
		}
		j := f.pop()
		r.size--
		f.tokens -= float64(j.cost)
		return j.cost, j.done, true
	}
	return r.DRRQueue.Pop()
}

// PeekTokens returns the reservation-token balance fill would produce
// now WITHOUT storing the accrual — Pop's fill() mutates tokens and
// lastFill, and extra out-of-band fills from observability probes would
// change the float rounding of the real schedule. 0 for flows with no
// reservation.
func (r *ReservationQueue) PeekTokens(id int) float64 {
	f := r.flows[id]
	if f == nil || f.reserved <= 0 {
		return 0
	}
	tokens := f.tokens
	if dt := r.eng.Now().Sub(f.lastFill).Seconds(); dt > 0 {
		tokens += dt * f.reserved
		if tokens > r.burst {
			tokens = r.burst
		}
	}
	return tokens
}

var (
	_ FlowQueue = (*DRRQueue)(nil)
	_ FlowQueue = (*ReservationQueue)(nil)
)
