package churn

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"essdsim/internal/expgrid"
	"essdsim/internal/fleet"
	"essdsim/internal/sim"
	"essdsim/internal/workload"
)

// churnSpec is a small random-process study: four tenants (one
// aggressor), two backends, three epochs of moderate churn.
func churnSpec() Spec {
	return Spec{
		Fleet: fleet.Spec{
			Demands:  fleet.SyntheticDemands(4, 1),
			Policies: []fleet.PlacementPolicy{fleet.FirstFit{}},
			Backends: 2,
			Horizon:  500 * sim.Millisecond,
			Seed:     11,
		},
		Epochs:     3,
		ChurnRate:  1.5,
		Rebalancer: Threshold{},
	}
}

// TestChurnDeterminism pins the tentpole's reproducibility contract:
// the same spec run on 1 and 8 workers produces byte-identical reports
// and CSVs, and a cache-warm re-run simulates zero new cells.
func TestChurnDeterminism(t *testing.T) {
	cache := expgrid.NewCache(0)
	s1 := churnSpec()
	s1.Fleet.Cache = cache
	s1.Fleet.Workers = 1
	r1, err := Run(context.Background(), s1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Epochs) != 3 {
		t.Fatalf("got %d epoch reports, want 3", len(r1.Epochs))
	}
	if len(r1.Events) == 0 {
		t.Fatal("churn rate 1.5 over 3 epochs produced no events")
	}

	s8 := churnSpec()
	s8.Fleet.Workers = 8
	r8, err := Run(context.Background(), s8)
	if err != nil {
		t.Fatal(err)
	}
	r8.CachedCells = r1.CachedCells
	for i := range r8.Epochs {
		r8.Epochs[i].CachedBackends = r1.Epochs[i].CachedBackends
	}
	if !reflect.DeepEqual(r1, r8) {
		t.Fatal("churn report differs between 1 and 8 workers")
	}
	var e1, e8, v1, v8 bytes.Buffer
	if err := WriteEpochsCSV(&e1, r1); err != nil {
		t.Fatal(err)
	}
	if err := WriteEpochsCSV(&e8, r8); err != nil {
		t.Fatal(err)
	}
	if err := WriteEventsCSV(&v1, r1); err != nil {
		t.Fatal(err)
	}
	if err := WriteEventsCSV(&v8, r8); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(e1.Bytes(), e8.Bytes()) || !bytes.Equal(v1.Bytes(), v8.Bytes()) {
		t.Fatal("churn CSVs differ between 1 and 8 workers")
	}

	// Cache-warm re-run: zero new cells, identical time series.
	sw := churnSpec()
	sw.Fleet.Cache = cache
	sw.Fleet.Workers = 8
	rw, err := Run(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	if rw.CachedCells != rw.Cells {
		t.Fatalf("warm re-run simulated %d of %d cells", rw.Cells-rw.CachedCells, rw.Cells)
	}
	var ew bytes.Buffer
	if err := WriteEpochsCSV(&ew, rw); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(e1.Bytes(), ew.Bytes()) {
		t.Fatal("cache-warm churn CSV differs from cold run")
	}
}

// TestChurnZeroChurnMatchesFleet pins the control plane's base case: a
// zero-churn timeline must measure exactly what the equivalent static
// fleet study measures. The churn run goes through a cache warmed by
// fleet.Run — every churn cell must be a cache hit (the cell naming and
// label scheme are shared), and every epoch's numbers must reproduce
// the fleet backend aggregates.
func TestChurnZeroChurnMatchesFleet(t *testing.T) {
	cache := expgrid.NewCache(0)
	fs := fleet.Spec{
		Demands:  fleet.SyntheticDemands(4, 1),
		Policies: []fleet.PlacementPolicy{fleet.FirstFit{}},
		Backends: 2,
		Horizon:  500 * sim.Millisecond,
		Seed:     11,
		Cache:    cache,
	}
	frep, err := fleet.Run(context.Background(), fs)
	if err != nil {
		t.Fatal(err)
	}
	pr := frep.Policy("first-fit")
	if pr == nil {
		t.Fatal("missing first-fit fleet report")
	}

	crep, err := Run(context.Background(), Spec{Fleet: fs, Epochs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if crep.CachedCells != crep.Cells {
		t.Fatalf("zero-churn run against the fleet cache simulated %d of %d cells — cell identity diverged",
			crep.Cells-crep.CachedCells, crep.Cells)
	}
	if len(crep.Events) != 0 || crep.TotalMigrations != 0 {
		t.Fatalf("zero-churn run recorded %d events, %d migrations", len(crep.Events), crep.TotalMigrations)
	}

	var wantAchieved float64
	var wantDebt int64
	var wantP99, wantP999 sim.Duration
	for _, br := range pr.Backends {
		wantAchieved += br.AchievedBps
		wantDebt += br.SharedDebt
		if br.WorstP99 > wantP99 {
			wantP99 = br.WorstP99
		}
		if br.WorstP999 > wantP999 {
			wantP999 = br.WorstP999
		}
	}
	for _, e := range crep.Epochs {
		if e.BackendsUsed != pr.BackendsUsed {
			t.Errorf("epoch %d uses %d backends, fleet used %d", e.Epoch, e.BackendsUsed, pr.BackendsUsed)
		}
		if e.P99Violations != pr.P99Violations || e.P999Violations != pr.P999Violations {
			t.Errorf("epoch %d violations %d/%d, fleet %d/%d",
				e.Epoch, e.P99Violations, e.P999Violations, pr.P99Violations, pr.P999Violations)
		}
		if e.AchievedBps != wantAchieved || e.SharedDebt != wantDebt {
			t.Errorf("epoch %d achieved %.0f debt %d, fleet %.0f %d",
				e.Epoch, e.AchievedBps, e.SharedDebt, wantAchieved, wantDebt)
		}
		if e.WorstP99 != wantP99 || e.WorstP999 != wantP999 {
			t.Errorf("epoch %d worst tail %v/%v, fleet %v/%v",
				e.Epoch, e.WorstP99, e.WorstP999, wantP99, wantP999)
		}
	}
}

// orderingSpec is the calibrated timeline behind
// TestChurnRebalancerOrdering: three medium bursty writers plus one
// victim first-fit onto backend 0 of three (util 0.93); at epoch 1 all
// three mediums expand ×2 (util 1.83 — two moves needed to clear the
// overload); at epoch 2 one expanded medium deletes. Threshold clears
// the overload the epoch it appears with two migrations; drain moves
// one volume per epoch and the delete spares it the second move;
// never-move soaks the overload for the rest of the run.
func orderingSpec(rb Rebalancer, cache *expgrid.Cache) Spec {
	med := func(name string) fleet.Demand {
		return fleet.Demand{Name: name, RatePerSec: 800, BlockSize: 256 << 10,
			WriteRatioPct: 100, Arrival: workload.Bursty}
	}
	return Spec{
		Fleet: fleet.Spec{
			Demands: []fleet.Demand{
				med("med0"), med("med1"), med("med2"),
				{Name: "ten0", RatePerSec: 300, BlockSize: 64 << 10,
					WriteRatioPct: 50, Arrival: workload.Uniform},
			},
			Policies:   []fleet.PlacementPolicy{fleet.FirstFit{}},
			Backends:   3,
			BackendBps: 700e6,
			SLOP999:    5 * sim.Millisecond,
			Horizon:    time1s,
			Seed:       7,
			Cache:      cache,
		},
		Epochs:          4,
		Rebalancer:      rb,
		MigrationBudget: 2,
		Script: []Event{
			{Epoch: 1, Kind: Expand, Tenant: "med0"},
			{Epoch: 1, Kind: Expand, Tenant: "med1"},
			{Epoch: 1, Kind: Expand, Tenant: "med2"},
			{Epoch: 2, Kind: Delete, Tenant: "med2"},
		},
	}
}

const time1s = sim.Second

// TestChurnRebalancerOrdering pins the tentpole's policy ordering on
// the calibrated script: at equal migration budget, threshold-triggered
// rebalancing has no more SLO violations than never-move, and
// background drain spends strictly less migration cost than threshold.
// The three timelines share one cache so their common cells simulate
// once.
func TestChurnRebalancerOrdering(t *testing.T) {
	cache := expgrid.NewCache(0)
	run := func(rb Rebalancer) *Report {
		t.Helper()
		rep, err := Run(context.Background(), orderingSpec(rb, cache))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	nev := run(NeverMove{})
	thr := run(Threshold{})
	drn := run(Drain{})

	if nev.TotalMigrations != 0 {
		t.Fatalf("never-move migrated %d times", nev.TotalMigrations)
	}
	if thr.TotalMigrations != 2 {
		t.Fatalf("threshold migrated %d times, want 2 (both expanded writers move the epoch the overload appears)",
			thr.TotalMigrations)
	}
	if drn.TotalMigrations != 1 {
		t.Fatalf("drain migrated %d times, want 1 (the epoch-2 delete clears the rest of the overload)",
			drn.TotalMigrations)
	}

	if thr.TotalP999Violations > nev.TotalP999Violations {
		t.Errorf("threshold has %d p99.9 violations, never-move %d: rebalancing must not lose to doing nothing",
			thr.TotalP999Violations, nev.TotalP999Violations)
	}
	// The calibrated overload (util 1.83 for three epochs) makes the
	// comparison strict, not merely ≤.
	if thr.TotalP999Violations >= nev.TotalP999Violations {
		t.Errorf("violation ordering not strict: threshold=%d never=%d",
			thr.TotalP999Violations, nev.TotalP999Violations)
	}
	if drn.TotalMoveBytes >= thr.TotalMoveBytes {
		t.Errorf("drain moved %d bytes, threshold %d: background drain must cost strictly less here",
			drn.TotalMoveBytes, thr.TotalMoveBytes)
	}
}

// TestChurnValidation pins the spec error paths: negative churn rate,
// scripted migrations, out-of-range epochs, unknown create shapes, and
// unknown rebalancer names must all produce descriptive errors.
func TestChurnValidation(t *testing.T) {
	base := func() Spec {
		s := churnSpec()
		s.Fleet.Horizon = 100 * sim.Millisecond
		return s
	}
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"negative rate", func(s *Spec) { s.ChurnRate = -1 }, "negative churn rate"},
		{"scripted migrate", func(s *Spec) {
			s.Script = []Event{{Epoch: 0, Kind: Migrate, Tenant: "aggr00"}}
		}, "decided by the rebalancer"},
		{"epoch out of range", func(s *Spec) {
			s.Script = []Event{{Epoch: 99, Kind: Delete, Tenant: "aggr00"}}
		}, "targets epoch"},
		{"unknown create", func(s *Spec) {
			s.Script = []Event{{Epoch: 0, Kind: Create, Tenant: "nope"}}
		}, "unknown catalog demand"},
		{"instance-token demand", func(s *Spec) {
			s.Fleet.Demands = append(s.Fleet.Demands, fleet.Demand{
				Name: "bad~name", RatePerSec: 1, BlockSize: 4096, Arrival: workload.Uniform})
		}, "instance-token character"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base()
			tc.mut(&s)
			_, err := Run(context.Background(), s)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v, want substring %q", err, tc.want)
			}
		})
	}
	if _, err := RebalancerByName("bogus"); err == nil || !strings.Contains(err.Error(), "unknown rebalancer") {
		t.Fatalf("RebalancerByName(bogus) = %v", err)
	}
	if r, err := RebalancerByName("drain"); err != nil || r.Name() != "drain" {
		t.Fatalf("RebalancerByName(drain) = %v, %v", r, err)
	}
}

// TestDrainPlan pins the shared drain planner's mechanics on a nominal
// view: largest-first off the hottest backend onto the coldest, budget
// respected, no move when nothing is over threshold.
func TestDrainPlan(t *testing.T) {
	v := View{
		Backends:   3,
		BackendBps: 100,
		Load:       []float64{180, 20, 0},
		Tenants: []TenantView{
			{Name: "small", Backend: 0, OfferedBps: 30},
			{Name: "big", Backend: 0, OfferedBps: 90},
			{Name: "other", Backend: 0, OfferedBps: 60},
			{Name: "cold", Backend: 1, OfferedBps: 20},
		},
		Budget: 2,
	}
	moves := drainPlan(v, 1, 2)
	if len(moves) != 1 {
		t.Fatalf("got %d moves, want 1 (moving big clears the overload): %+v", len(moves), moves)
	}
	if moves[0].Tenant != 1 || moves[0].To != 2 {
		t.Fatalf("move = %+v, want tenant 1 (big) to backend 2 (coldest)", moves[0])
	}
	if got := drainPlan(View{Backends: 2, BackendBps: 100, Load: []float64{90, 50}, Budget: 2}, 1, 2); len(got) != 0 {
		t.Fatalf("under-threshold view planned moves: %+v", got)
	}
	if got := (NeverMove{}).Plan(v); got != nil {
		t.Fatalf("never-move planned moves: %+v", got)
	}
}

// TestPoissonDeterminism pins the event process: the same seed draws
// the same counts, and the mean tracks the rate.
func TestPoissonDeterminism(t *testing.T) {
	draw := func() []int {
		rng := sim.NewRNG(5, 6)
		out := make([]int, 32)
		for i := range out {
			out[i] = poisson(rng, 1.5)
		}
		return out
	}
	a, b := draw(), draw()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("poisson draws differ for the same seed")
	}
	var total int
	for _, n := range a {
		total += n
	}
	if total == 0 {
		t.Fatal("poisson(1.5) drew zero events in 32 epochs")
	}
	if poisson(sim.NewRNG(1, 1), 0) != 0 {
		t.Fatal("poisson(0) must be 0")
	}
}
