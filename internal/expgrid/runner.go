package expgrid

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Progress reports one completed cell. Done counts completions (in
// completion order, which under concurrency need not match enumeration
// order); Total is the grid size. Cached counts the completions so far
// that were served from Sweep.Cache instead of a fresh simulation, so a
// cache-warm sweep can report how many cells it skipped. Elapsed is the
// wall time since the sweep started and ETA the estimated remaining wall
// time (0 when unknown or done); both are display-only — they never feed
// back into any measurement.
type Progress struct {
	Done    int
	Total   int
	Cached  int
	Elapsed time.Duration
	ETA     time.Duration
	Last    CellResult
}

// String renders the progress line both CLIs print under -v:
// "12/40 cells (3 cached) elapsed 1.2s eta 2.8s".
func (p Progress) String() string {
	s := fmt.Sprintf("%d/%d cells", p.Done, p.Total)
	if p.Cached > 0 {
		s += fmt.Sprintf(" (%d cached)", p.Cached)
	}
	s += fmt.Sprintf(" elapsed %s", p.Elapsed.Round(time.Millisecond))
	if p.Done < p.Total && p.ETA > 0 {
		s += fmt.Sprintf(" eta %s", p.ETA.Round(time.Millisecond))
	}
	return s
}

// Runner executes a Sweep's cells on a pool of workers. The zero value is
// ready to use and sizes the pool to GOMAXPROCS.
type Runner struct {
	// Workers is the pool size; values <= 0 mean GOMAXPROCS(0).
	Workers int
	// OnProgress, when non-nil, is invoked serially (never concurrently)
	// once per completed cell.
	OnProgress func(Progress)
}

func (r Runner) workers() int {
	if r.Workers > 0 {
		return r.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes every cell of the sweep and returns the results in
// enumeration order. It stops early — abandoning cells not yet started,
// but letting in-flight cells finish — when ctx is cancelled (returning
// ctx.Err()) or when a cell fails (returning that cell's error).
func (r Runner) Run(ctx context.Context, sw Sweep) ([]CellResult, error) {
	stream, errf := r.Stream(ctx, sw)
	var out []CellResult
	for res := range stream {
		out = append(out, res)
	}
	return out, errf()
}

// Stream launches the sweep and returns a channel yielding one CellResult
// per cell in deterministic enumeration order, regardless of the order
// workers finish in. The channel closes when the sweep completes, a cell
// fails, or ctx is cancelled; after it closes, the returned error function
// reports the first cell error or the context error (nil on full success).
// The caller must drain the channel.
func (r Runner) Stream(ctx context.Context, sw Sweep) (<-chan CellResult, func() error) {
	var firstErr error
	if err := sw.Validate(); err != nil {
		out := make(chan CellResult)
		close(out)
		return out, func() error { return err }
	}
	sw = sw.withDefaults()
	cells := sw.Cells()
	workers := r.workers()
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers < 1 {
		workers = 1
	}

	jobs := make(chan Cell)
	results := make(chan CellResult, workers)
	out := make(chan CellResult, workers)

	// Feeder: hands cells to workers until the grid is exhausted or the
	// sweep is cancelled (externally or by a failed cell).
	runCtx, cancel := context.WithCancel(ctx)
	go func() {
		defer close(jobs)
		for _, c := range cells {
			select {
			case jobs <- c:
			case <-runCtx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for c := range jobs {
				results <- sw.run(c)
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Collector: reorders completion-order results into enumeration order
	// and invokes OnProgress serially.
	completed := false
	started := time.Now()
	go func() {
		defer cancel()
		defer close(out)
		pending := make(map[int]CellResult, workers)
		next, done, cached := 0, 0, 0
		defer func() { completed = next == len(cells) }()
		for res := range results {
			done++
			if res.Cached {
				cached++
			}
			if r.OnProgress != nil {
				elapsed := time.Since(started)
				var eta time.Duration
				if done > 0 && done < len(cells) {
					eta = elapsed / time.Duration(done) * time.Duration(len(cells)-done)
				}
				r.OnProgress(Progress{
					Done: done, Total: len(cells), Cached: cached,
					Elapsed: elapsed, ETA: eta, Last: res,
				})
			}
			if res.Err != nil && firstErr == nil {
				firstErr = res.Err
				cancel() // stop feeding; drain in-flight cells below
			}
			pending[res.Index] = res
			for {
				head, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				next++
				if firstErr == nil {
					out <- head
				}
			}
		}
	}()

	return out, func() error {
		if firstErr != nil {
			return firstErr
		}
		if !completed {
			return ctx.Err()
		}
		return nil
	}
}
