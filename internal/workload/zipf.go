package workload

import (
	"math"

	"essdsim/internal/sim"
)

// Zipf draws ranks from a zipfian distribution over [0, N), mapping rank
// to position with a multiplicative scramble so hot items scatter across
// the address space. Skewed access is the standard model for database and
// KV workloads and the natural companion to Implication #5's cache and
// dedup questions.
type Zipf struct {
	n     int64
	theta float64
	// Precomputed constants of the standard YCSB/Gray zipfian generator.
	// half is 1+0.5^theta, the rank-1 threshold — hoisted out of nextRank
	// so a draw costs a single math.Pow instead of two.
	alpha, zetan, eta, half float64
}

// NewZipf builds a generator over n items with skew theta in [0, 1).
// theta=0 degenerates to uniform; theta≈0.99 is YCSB's default "hot" skew.
func NewZipf(n int64, theta float64) *Zipf {
	if n < 1 {
		n = 1
	}
	if theta < 0 {
		theta = 0
	}
	if theta >= 1 {
		theta = 0.999
	}
	z := &Zipf{n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	z.half = 1 + math.Pow(0.5, theta)
	return z
}

func zeta(n int64, theta float64) float64 {
	// Direct summation is exact and fast enough for simulator-scale n up
	// to ~10M when constructed once per run.
	sum := 0.0
	limit := n
	const cap = 1 << 22
	if limit > cap {
		// Approximate the tail with the integral; the head dominates.
		for i := int64(1); i <= cap; i++ {
			sum += 1 / math.Pow(float64(i), theta)
		}
		sum += (math.Pow(float64(n), 1-theta) - math.Pow(float64(cap), 1-theta)) / (1 - theta)
		return sum
	}
	for i := int64(1); i <= limit; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next draws an item in [0, N), scrambled so adjacent ranks are not
// adjacent positions.
func (z *Zipf) Next(rng *sim.RNG) int64 {
	rank := z.nextRank(rng)
	h := uint64(rank) * 0x9e3779b97f4a7c15
	h ^= h >> 31
	return int64(h % uint64(z.n))
}

// nextRank draws a zipfian rank in [0, N), rank 0 hottest.
func (z *Zipf) nextRank(rng *sim.RNG) int64 {
	if z.theta == 0 {
		return rng.Int64N(z.n)
	}
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < z.half {
		return 1
	}
	r := int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if r >= z.n {
		r = z.n - 1
	}
	return r
}
