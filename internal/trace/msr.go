package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"essdsim/internal/blockdev"
	"essdsim/internal/sim"
)

// msrTick is the Windows filetime unit of MSR-Cambridge timestamps: 100 ns.
const msrTick = 100

// ParseMSR converts MSR-Cambridge block-trace CSV rows into replayable
// records. The format (SNIA IOTTA "MSR Cambridge" traces) is one request
// per line:
//
//	Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//
// where Timestamp is a Windows filetime (100 ns ticks), Type is "Read" or
// "Write" (case-insensitive), and Offset/Size are bytes. Issue times are
// rebased so the earliest record starts at zero; rows are sorted by
// timestamp if the file is not already (some published traces interleave
// disks). Blank lines and '#' comments are skipped; the recorded
// ResponseTime is ignored (the simulator produces its own). Offsets are
// passed through verbatim — real traces address full-size production
// volumes, so run them through Fit before replaying onto a scaled
// simulated device.
func ParseMSR(r io.Reader) ([]Record, error) {
	// Raw filetimes are ~1.3e17 ticks: multiplying by 100 ns/tick first
	// would overflow int64. Sort and rebase in tick space, then convert
	// only the (small) deltas to nanoseconds.
	type row struct {
		ts  int64
		rec Record
	}
	var rows []row
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	sorted := true
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != 7 {
			return nil, fmt.Errorf("trace: msr line %d: want 7 comma fields, got %d", lineNo, len(fields))
		}
		ts, err := strconv.ParseInt(strings.TrimSpace(fields[0]), 10, 64)
		if err != nil || ts < 0 {
			return nil, fmt.Errorf("trace: msr line %d: bad timestamp %q", lineNo, fields[0])
		}
		var op blockdev.Op
		switch strings.ToLower(strings.TrimSpace(fields[3])) {
		case "read", "r":
			op = blockdev.Read
		case "write", "w":
			op = blockdev.Write
		default:
			return nil, fmt.Errorf("trace: msr line %d: unknown type %q", lineNo, fields[3])
		}
		off, err := strconv.ParseInt(strings.TrimSpace(fields[4]), 10, 64)
		if err != nil || off < 0 {
			return nil, fmt.Errorf("trace: msr line %d: bad offset %q", lineNo, fields[4])
		}
		size, err := strconv.ParseInt(strings.TrimSpace(fields[5]), 10, 64)
		if err != nil || size <= 0 {
			return nil, fmt.Errorf("trace: msr line %d: bad size %q", lineNo, fields[5])
		}
		if len(rows) > 0 && ts < rows[len(rows)-1].ts {
			sorted = false
		}
		rows = append(rows, row{ts: ts, rec: Record{Op: op, Offset: off, Size: size}})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sorted {
		sort.SliceStable(rows, func(i, j int) bool { return rows[i].ts < rows[j].ts })
	}
	recs := make([]Record, len(rows))
	if len(rows) > 0 {
		base := rows[0].ts
		// A tick delta beyond ~292 years cannot be expressed in int64
		// nanoseconds; such a span means corrupt or mixed-epoch rows, not
		// a replayable trace.
		if span := rows[len(rows)-1].ts - base; span > math.MaxInt64/msrTick {
			return nil, fmt.Errorf("trace: msr timestamps span %d ticks, beyond the representable range", span)
		}
		for i, rw := range rows {
			rw.rec.At = sim.Duration(rw.ts-base) * msrTick
			recs[i] = rw.rec
		}
	}
	return recs, nil
}

// ReadFormat parses a trace in the named format: "text" (the native
// format, Read) or "msr" (MSR-Cambridge CSV rows, ParseMSR). It is the
// single format dispatch shared by every CLI trace flag.
func ReadFormat(r io.Reader, format string) ([]Record, error) {
	switch format {
	case "text":
		return Read(r)
	case "msr":
		return ParseMSR(r)
	default:
		return nil, fmt.Errorf("trace: unknown format %q (want text or msr)", format)
	}
}

// Fit maps a foreign trace onto a (typically smaller, scaled) simulated
// device: offsets are aligned down to the block size and wrapped modulo
// the device capacity, and sizes are rounded up to whole blocks and
// clamped so no request runs past the end of the device. The arrival
// timeline is untouched. Use it before replaying production traces (e.g.
// MSR-Cambridge volumes, hundreds of GB) on the simulator's 64×-scaled
// devices.
func Fit(recs []Record, capacity, blockSize int64) []Record {
	if capacity <= 0 || blockSize <= 0 || capacity%blockSize != 0 {
		panic(fmt.Sprintf("trace: bad fit geometry %d/%d", capacity, blockSize))
	}
	out := make([]Record, len(recs))
	for i, r := range recs {
		off := r.Offset / blockSize * blockSize % capacity
		size := (r.Size + blockSize - 1) / blockSize * blockSize
		if size > capacity {
			size = capacity
		}
		if off+size > capacity {
			off = capacity - size
		}
		out[i] = Record{At: r.At, Op: r.Op, Offset: off, Size: size}
	}
	return out
}
