// Package trace records and replays block I/O traces in a simple text
// format, one operation per line:
//
//	<issue-ns> <op> <offset> <size>
//
// where op is r, w, t (trim) or f (flush). Traces let users replay captured
// application I/O against any simulated device — the standard methodology
// for evaluating cloud-storage suitability of an existing workload.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"essdsim/internal/blockdev"
	"essdsim/internal/sim"
	"essdsim/internal/stats"
)

// Record is one traced I/O.
type Record struct {
	At     sim.Duration // issue time relative to trace start
	Op     blockdev.Op
	Offset int64
	Size   int64
}

func opLetter(op blockdev.Op) string {
	switch op {
	case blockdev.Read:
		return "r"
	case blockdev.Write:
		return "w"
	case blockdev.Trim:
		return "t"
	case blockdev.Flush:
		return "f"
	}
	return "?"
}

func parseOp(s string) (blockdev.Op, error) {
	switch s {
	case "r", "R", "read":
		return blockdev.Read, nil
	case "w", "W", "write":
		return blockdev.Write, nil
	case "t", "T", "trim":
		return blockdev.Trim, nil
	case "f", "F", "flush":
		return blockdev.Flush, nil
	default:
		return 0, fmt.Errorf("trace: unknown op %q", s)
	}
}

// Write serializes records to w.
func Write(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	for _, r := range recs {
		if _, err := fmt.Fprintf(bw, "%d %s %d %d\n",
			int64(r.At), opLetter(r.Op), r.Offset, r.Size); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a trace. Lines starting with '#' are comments. Records must
// be sorted by issue time.
func Read(r io.Reader) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(r)
	lineNo := 0
	var last sim.Duration
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			return nil, fmt.Errorf("trace: line %d: want 4 fields, got %d", lineNo, len(fields))
		}
		at, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil || at < 0 {
			return nil, fmt.Errorf("trace: line %d: bad timestamp %q", lineNo, fields[0])
		}
		op, err := parseOp(fields[1])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", lineNo, err)
		}
		off, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil || off < 0 {
			return nil, fmt.Errorf("trace: line %d: bad offset %q", lineNo, fields[2])
		}
		size, err := strconv.ParseInt(fields[3], 10, 64)
		if err != nil || (size <= 0 && op != blockdev.Flush) {
			return nil, fmt.Errorf("trace: line %d: bad size %q", lineNo, fields[3])
		}
		if sim.Duration(at) < last {
			return nil, fmt.Errorf("trace: line %d: timestamps not sorted", lineNo)
		}
		last = sim.Duration(at)
		recs = append(recs, Record{At: sim.Duration(at), Op: op, Offset: off, Size: size})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// ReplayResult summarizes a trace replay.
type ReplayResult struct {
	Device string
	Ops    uint64
	Bytes  int64
	// Elapsed spans replay start to the last completion, so it includes the
	// drain of whatever was still in flight after the final issue.
	Elapsed sim.Duration
	// Nominal is the replay's nominal span: replay start to the last
	// record's scheduled issue time. Issues never slip (the replay is open
	// loop), so Nominal is a property of the trace alone.
	Nominal sim.Duration
	// Lag is Elapsed - Nominal: how long past the last scheduled issue the
	// replay ran. A device keeping up shows roughly one request latency;
	// a backlogged device shows the accumulated queue drain. Unlike
	// Stretch, Lag is meaningful even for instantaneous traces.
	Lag sim.Duration
	Lat *stats.Histogram
	// MaxOutstanding is the peak number of in-flight requests — the queue
	// the traced arrival schedule built up on this device.
	MaxOutstanding int
	// Stretch is Elapsed divided by Nominal: >1 means completions trailed
	// the traced issue rate. Because Elapsed includes the final drain, a
	// device that keeps up perfectly still reports slightly above 1 on
	// short traces. Stretch is 0 (undefined) when Nominal is 0 — a
	// single-record or instantaneous-burst trace — in which case use Lag.
	Stretch float64
}

// Replay issues the records against the device at their recorded times
// (open-loop) and waits for all completions.
func Replay(dev blockdev.Device, recs []Record) *ReplayResult {
	eng := dev.Engine()
	res := &ReplayResult{Device: dev.Name(), Lat: stats.NewHistogram()}
	start := eng.Now()
	outstanding := 0
	for _, rec := range recs {
		rec := rec
		eng.At(start.Add(rec.At), func() {
			outstanding++
			if outstanding > res.MaxOutstanding {
				res.MaxOutstanding = outstanding
			}
			dev.Submit(&blockdev.Request{
				Op:     rec.Op,
				Offset: rec.Offset,
				Size:   rec.Size,
				OnComplete: func(r *blockdev.Request, at sim.Time) {
					res.Lat.Record(r.Latency(at))
					res.Ops++
					res.Bytes += r.Size
					outstanding--
				},
			})
		})
	}
	eng.Run()
	res.Elapsed = eng.Now().Sub(start)
	if len(recs) > 0 {
		res.Nominal = recs[len(recs)-1].At
	}
	res.Lag = res.Elapsed - res.Nominal
	if res.Nominal > 0 {
		res.Stretch = float64(res.Elapsed) / float64(res.Nominal)
	}
	return res
}

// Recorder wraps a device and captures every submitted request, for
// building traces from synthetic workloads.
type Recorder struct {
	blockdev.Device
	start sim.Time
	Recs  []Record
}

// NewRecorder wraps dev, recording from the device engine's current time.
func NewRecorder(dev blockdev.Device) *Recorder {
	return &Recorder{Device: dev, start: dev.Engine().Now()}
}

// Submit implements blockdev.Device.
func (r *Recorder) Submit(req *blockdev.Request) {
	r.Recs = append(r.Recs, Record{
		At:     r.Device.Engine().Now().Sub(r.start),
		Op:     req.Op,
		Offset: req.Offset,
		Size:   req.Size,
	})
	r.Device.Submit(req)
}
