// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock, an event heap, queueing resources (servers and bandwidth
// pipes), and seedable latency distributions.
//
// All simulated storage devices in this repository are built on top of this
// engine. Simulated time is measured in integer nanoseconds and is entirely
// decoupled from wall-clock time, so experiments are fast and reproducible.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point in simulated time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Micros returns the duration as a floating-point number of microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// String formats the duration with an adaptive unit, e.g. "333µs" or "1.4ms".
func (d Duration) String() string {
	switch {
	case d < 0:
		return fmt.Sprintf("-%s", (-d).String())
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(Microsecond))
	case d < Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", float64(d)/float64(Second))
	}
}

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among same-time events
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = event{}
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulation engine. It is not
// safe for concurrent use; all device models run inside its event loop.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	nsteps uint64
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.nsteps }

// Pending returns the number of scheduled events not yet executed.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs fn after delay d of simulated time. A negative delay is
// treated as zero (run as soon as the loop resumes, after already-queued
// same-time events).
func (e *Engine) Schedule(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now.Add(d), fn)
}

// At runs fn at absolute simulated time t. Times in the past are clamped to
// the current time. A nil fn advances the clock without doing work.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	if fn == nil {
		fn = func() {}
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// Step executes the next pending event, advancing the clock to its time.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	e.nsteps++
	ev.fn()
	return true
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then sets the clock to t.
// Events scheduled exactly at t are executed.
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor advances the simulation by d from the current time.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }
