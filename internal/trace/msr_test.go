package trace

import (
	"sort"
	"strings"
	"testing"

	"essdsim/internal/blockdev"
	"essdsim/internal/sim"
)

func TestParseMSR(t *testing.T) {
	in := `# MSR-Cambridge excerpt
128166372003000000,src1,0,Write,8192,16384,1331

128166372003000010,src1,0,read,4096,4096,551
128166372003001000,src1,0,W,1048576,65536,2112
`
	recs, err := ParseMSR(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d, want 3", len(recs))
	}
	// Rebased to the first timestamp; ticks are 100 ns.
	if recs[0].At != 0 {
		t.Fatalf("first record at %v, want 0", recs[0].At)
	}
	if recs[1].At != 1000 { // 10 ticks × 100 ns
		t.Fatalf("second record at %v, want 1µs", recs[1].At)
	}
	if recs[2].At != 100*sim.Microsecond {
		t.Fatalf("third record at %v, want 100µs", recs[2].At)
	}
	if recs[0].Op != blockdev.Write || recs[1].Op != blockdev.Read || recs[2].Op != blockdev.Write {
		t.Fatalf("ops = %v %v %v", recs[0].Op, recs[1].Op, recs[2].Op)
	}
	if recs[1].Offset != 4096 || recs[1].Size != 4096 {
		t.Fatalf("read record = %+v", recs[1])
	}
}

func TestParseMSRSortsUnorderedRows(t *testing.T) {
	in := `200,h,0,Write,0,4096,1
100,h,0,Read,4096,4096,1
150,h,0,Write,8192,4096,1
`
	recs, err := ParseMSR(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Op != blockdev.Read || recs[0].At != 0 {
		t.Fatalf("earliest row not first after sort: %+v", recs[0])
	}
	if recs[1].At != 50*msrTick || recs[2].At != 100*msrTick {
		t.Fatalf("rebased times = %v, %v", recs[1].At, recs[2].At)
	}
	// The sorted result must satisfy the native reader's invariant.
	var buf strings.Builder
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(strings.NewReader(buf.String())); err != nil {
		t.Fatalf("sorted MSR trace not replayable as native: %v", err)
	}
}

// TestParseMSRFiletimeMagnitude checks that real Windows-filetime
// magnitudes (~1.3e17 ticks, whose ×100 ns product overflows int64) are
// rebased in tick space before the nanosecond conversion, so deltas come
// out exact and non-negative — and that a pathological mixed-epoch trace
// whose span cannot be expressed in int64 nanoseconds is rejected rather
// than silently wrapped.
func TestParseMSRFiletimeMagnitude(t *testing.T) {
	in := `128166372003061629,h,0,Read,0,4096,1
128166372003061729,h,0,Write,4096,4096,1
128166372003062729,h,0,Write,8192,4096,1
`
	recs, err := ParseMSR(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		if r.At < 0 {
			t.Fatalf("record %d has negative (overflowed) time %d", i, int64(r.At))
		}
	}
	// 100 ticks = 10 µs, 1000 ticks = 100 µs past the base.
	if recs[1].At != 10*sim.Microsecond || recs[2].At != 110*sim.Microsecond {
		t.Fatalf("filetime deltas = %v, %v; want 10µs, 110µs", recs[1].At, recs[2].At)
	}
	if !sort.SliceIsSorted(recs, func(i, j int) bool { return recs[i].At < recs[j].At }) {
		t.Fatal("records not sorted after rebase")
	}

	// A trace mixing a small (rebased) timestamp with a raw filetime spans
	// centuries: unrepresentable, must error.
	mixed := `0,h,0,Read,0,4096,1
128166372003061629,h,0,Write,4096,4096,1
`
	if _, err := ParseMSR(strings.NewReader(mixed)); err == nil {
		t.Fatal("ParseMSR accepted a mixed-epoch trace whose span overflows nanoseconds")
	}
}

func TestReadFormat(t *testing.T) {
	if _, err := ReadFormat(strings.NewReader("0 w 0 4096\n"), "text"); err != nil {
		t.Fatalf("text: %v", err)
	}
	if _, err := ReadFormat(strings.NewReader("1,h,0,Write,0,4096,1\n"), "msr"); err != nil {
		t.Fatalf("msr: %v", err)
	}
	if _, err := ReadFormat(strings.NewReader(""), "bogus"); err == nil {
		t.Fatal("ReadFormat accepted an unknown format")
	}
}

func TestParseMSRErrors(t *testing.T) {
	bad := []string{
		"1,h,0,Write,0",                // short row
		"x,h,0,Write,0,4096,1",         // bad timestamp
		"1,h,0,Trim,0,4096,1",          // unsupported type
		"1,h,0,Write,-1,4096,1",        // negative offset
		"1,h,0,Write,0,0,1",            // zero size
		"1,h,0,Write,0,4096,1,trailer", // long row
	}
	for _, in := range bad {
		if _, err := ParseMSR(strings.NewReader(in)); err == nil {
			t.Errorf("ParseMSR accepted %q", in)
		}
	}
}

func TestFit(t *testing.T) {
	const cap = 1 << 20
	const bs = 4096
	recs := []Record{
		{At: 0, Op: blockdev.Write, Offset: 3*cap + 5000, Size: 100}, // wraps, aligns, rounds up
		{At: 1, Op: blockdev.Read, Offset: cap - bs, Size: 3 * bs},   // clamped to the tail
		{At: 2, Op: blockdev.Write, Offset: 0, Size: 10 * cap},       // size capped at capacity
	}
	out := Fit(recs, cap, bs)
	if out[0].Offset != 4096 || out[0].Size != bs {
		t.Fatalf("fit[0] = %+v", out[0])
	}
	if out[1].Offset+out[1].Size > cap {
		t.Fatalf("fit[1] runs past capacity: %+v", out[1])
	}
	if out[2].Size != cap || out[2].Offset != 0 {
		t.Fatalf("fit[2] = %+v", out[2])
	}
	for i, r := range out {
		if r.At != recs[i].At || r.Op != recs[i].Op {
			t.Fatalf("fit changed timing or op at %d", i)
		}
		if r.Offset%bs != 0 || r.Size%bs != 0 {
			t.Fatalf("fit[%d] not block aligned: %+v", i, r)
		}
	}
	// Original slice untouched.
	if recs[0].Offset != 3*cap+5000 {
		t.Fatal("Fit mutated its input")
	}
}
