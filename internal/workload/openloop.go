package workload

import (
	"fmt"
	"math"

	"essdsim/internal/blockdev"
	"essdsim/internal/sim"
	"essdsim/internal/stats"
)

// Arrival shapes for open-loop workloads.
type Arrival uint8

// Supported arrival processes.
const (
	// Uniform spaces requests evenly: the smoothed timeline of
	// Implication #4.
	Uniform Arrival = iota
	// Poisson draws exponential inter-arrival gaps.
	Poisson
	// Bursty issues each second's worth of requests at the start of the
	// second: the bursty timeline Implication #4 warns about.
	Bursty
)

// String names the arrival process.
func (a Arrival) String() string {
	switch a {
	case Uniform:
		return "uniform"
	case Poisson:
		return "poisson"
	case Bursty:
		return "bursty"
	default:
		return fmt.Sprintf("arrival(%d)", uint8(a))
	}
}

// ParseArrival converts an arrival-shape name ("uniform", "poisson",
// "bursty") into an Arrival — the inverse of String, shared by every CLI
// flag that selects an arrival process.
func ParseArrival(s string) (Arrival, error) {
	switch s {
	case "uniform":
		return Uniform, nil
	case "poisson":
		return Poisson, nil
	case "bursty":
		return Bursty, nil
	default:
		return 0, fmt.Errorf("workload: unknown arrival %q", s)
	}
}

// OpenSpec describes an open-loop (arrival-driven) workload: requests are
// issued on a schedule regardless of completions, exposing queueing when
// the device cannot keep up — the regime where the provisioned budget and
// burst credits of an ESSD dominate behaviour.
type OpenSpec struct {
	Pattern    Pattern
	BlockSize  int64
	WriteRatio float64

	// RatePerSec is the offered request rate.
	RatePerSec float64
	// Arrival selects the arrival process.
	Arrival Arrival
	// Count is the total number of requests to issue.
	Count uint64

	// Region restricts I/O to the first Region bytes (0 = whole device).
	Region int64
	// Hotspot, when non-nil, skews offsets (random patterns only).
	Hotspot *Zipf

	// SampleInterval is the bucket width of the result's completion
	// timelines (default 10 ms).
	SampleInterval sim.Duration

	// WindowPercentiles keeps a full latency histogram per SampleInterval
	// bucket so LatSeries.PercentileRange can report p99/p99.9 over
	// arbitrary windows (pre- vs post-exhaustion). Costs a few KiB per
	// non-empty bucket; SLO searches turn it on, bulk sweeps need not.
	WindowPercentiles bool

	Seed uint64
}

// Validate reports a descriptive error for nonsensical specs.
func (s OpenSpec) Validate(dev blockdev.Device) error {
	bs := int64(dev.BlockSize())
	region := s.Region
	if region == 0 {
		region = dev.Capacity()
	}
	switch {
	case s.BlockSize <= 0 || s.BlockSize%bs != 0:
		return fmt.Errorf("workload: block size %d not a multiple of device block %d", s.BlockSize, bs)
	case s.RatePerSec <= 0:
		return fmt.Errorf("workload: rate must be positive")
	case s.Count == 0:
		return fmt.Errorf("workload: count must be positive")
	case s.Pattern == Mixed && (s.WriteRatio < 0 || s.WriteRatio > 1):
		return fmt.Errorf("workload: write ratio %v out of [0,1]", s.WriteRatio)
	case s.Region < 0 || s.Region > dev.Capacity():
		return fmt.Errorf("workload: region %d out of range", s.Region)
	case region < s.BlockSize:
		// A zero-slot region would panic the offset draw (Int64N(0)).
		return fmt.Errorf("workload: region %d smaller than one %d-byte I/O", region, s.BlockSize)
	}
	return nil
}

// OpenResult holds open-loop measurements. Latency here includes the time
// a request waited behind the device's queues after its scheduled arrival,
// which is exactly what a deadline-driven service experiences.
type OpenResult struct {
	Spec    OpenSpec
	Device  string
	Ops     uint64
	Bytes   int64
	Elapsed sim.Duration
	Lat     *stats.Histogram
	// MaxOutstanding is the peak number of in-flight requests — the queue
	// the arrival process built up.
	MaxOutstanding int

	// Series buckets completed bytes by completion time and LatSeries the
	// mean latency, both at Spec.SampleInterval width. Splitting them at an
	// event time (credit exhaustion, throttle engagement) exposes the
	// before/after cliff of burstable tiers.
	Series    *stats.ThroughputSeries
	LatSeries *stats.LatencySeries
}

// Throughput returns mean completed bytes/s over the elapsed span.
func (r *OpenResult) Throughput() float64 {
	secs := r.Elapsed.Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(r.Bytes) / secs
}

// RunOpen executes the open-loop workload, driving the engine until all
// requests complete. It panics on an invalid spec.
func RunOpen(dev blockdev.Device, spec OpenSpec) *OpenResult {
	finish := startOpen(dev, spec)
	dev.Engine().Run()
	return finish()
}

// startOpen validates the spec (panicking on harness programming errors)
// and schedules every arrival on the device's engine, returning a
// finalizer that closes the measurement once the caller has drained the
// engine. RunTenants uses the split to schedule several open-loop
// generators on one shared engine before a single run drains them all.
func startOpen(dev blockdev.Device, spec OpenSpec) func() *OpenResult {
	if err := spec.Validate(dev); err != nil {
		panic(err)
	}
	eng := dev.Engine()
	rng := sim.NewRNG(spec.Seed^0x09e4, spec.Seed+0x11)
	if spec.SampleInterval <= 0 {
		spec.SampleInterval = 10 * sim.Millisecond
	}
	newLatSeries := stats.NewLatencySeries
	if spec.WindowPercentiles {
		newLatSeries = stats.NewLatencySeriesHist
	}
	res := &OpenResult{
		Spec: spec, Device: dev.Name(), Lat: stats.NewHistogram(),
		Series:    stats.NewThroughputSeries(spec.SampleInterval),
		LatSeries: newLatSeries(spec.SampleInterval),
	}
	region := spec.Region
	if region == 0 {
		region = dev.Capacity()
	}
	slots := region / spec.BlockSize
	start := eng.Now()
	gap := sim.Duration(float64(sim.Second) / spec.RatePerSec)
	perSecond := int(spec.RatePerSec)
	if perSecond < 1 {
		perSecond = 1
	}

	outstanding := 0
	lastDone := start
	var seqOff int64
	var at sim.Duration
	for i := uint64(0); i < spec.Count; i++ {
		switch spec.Arrival {
		case Uniform:
			at = sim.Duration(i) * gap
		case Poisson:
			if i > 0 {
				at += sim.Duration(-math.Log(1-rng.Float64()) * float64(gap))
			}
		case Bursty:
			at = sim.Duration(i/uint64(perSecond)) * sim.Second
		}
		op := blockdev.Read
		switch spec.Pattern {
		case RandWrite, SeqWrite:
			op = blockdev.Write
		case Mixed:
			if rng.Float64() < spec.WriteRatio {
				op = blockdev.Write
			}
		}
		var off int64
		switch spec.Pattern {
		case SeqWrite, SeqRead:
			off = seqOff
			seqOff += spec.BlockSize
			if seqOff+spec.BlockSize > region {
				seqOff = 0
			}
		default:
			if spec.Hotspot != nil {
				off = spec.Hotspot.Next(rng) % slots * spec.BlockSize
			} else {
				off = rng.Int64N(slots) * spec.BlockSize
			}
		}
		issueAt := start.Add(at)
		opC, offC := op, off // per-iteration copies for the closure
		eng.At(issueAt, func() {
			outstanding++
			if outstanding > res.MaxOutstanding {
				res.MaxOutstanding = outstanding
			}
			dev.Submit(&blockdev.Request{
				Op: opC, Offset: offC, Size: spec.BlockSize,
				OnComplete: func(r *blockdev.Request, done sim.Time) {
					outstanding--
					lastDone = done
					lat := done.Sub(issueAt)
					rel := sim.Time(done.Sub(start))
					res.Lat.Record(lat)
					res.Series.Add(rel, r.Size)
					res.LatSeries.Add(rel, lat)
					res.Ops++
					res.Bytes += r.Size
				},
			})
		})
	}
	// Elapsed measures to this workload's own last completion, not the
	// engine clock: on a shared engine another tenant may keep the clock
	// running after this generator drained.
	return func() *OpenResult {
		res.Elapsed = lastDone.Sub(start)
		return res
	}
}
