package essdsim_test

import (
	"context"
	"fmt"

	"essdsim"
)

// Example runs the package's quick-start workload: random 4 KiB writes at
// queue depth 1 on the calibrated ESSD-1 volume. Measurements are in
// deterministic virtual time, so the run is instant and reproducible.
func Example() {
	eng := essdsim.NewEngine()
	dev := essdsim.NewESSD1(eng, 42)
	essdsim.Precondition(dev, true)
	res := essdsim.Run(dev, essdsim.Workload{
		Pattern:    essdsim.RandWrite,
		BlockSize:  4 << 10,
		QueueDepth: 1,
		Duration:   500 * essdsim.Millisecond,
	})
	s := res.Lat.Summarize()
	fmt.Printf("measured %v of I/O: ops>0=%v p50<p99.9=%v\n",
		res.Elapsed, res.Ops > 0, s.P50 <= s.P999)
	// Output:
	// measured 500.00ms of I/O: ops>0=true p50<p99.9=true
}

// ExampleRunTenantMix attaches two volumes to ONE shared storage backend
// and drives them concurrently inside one engine: a steady victim and a
// bursty write-heavy neighbor. The neighbor's overwrite churn lands in the
// backend's pooled cleaner debt, which the backend attributes per volume.
func ExampleRunTenantMix() {
	eng := essdsim.NewEngine()
	be := essdsim.NewBackend(eng, essdsim.NeighborBackendConfig(), 1)
	victim := essdsim.AttachVolume(be, essdsim.NeighborVolumeConfig("victim"), 2)
	noisy := essdsim.AttachVolume(be, essdsim.NeighborVolumeConfig("noisy"), 3)
	victim.Precondition(1)
	noisy.Precondition(1)
	results := essdsim.RunTenantMix(eng, []essdsim.Tenant{
		{Name: "victim", Dev: victim, Open: &essdsim.OpenWorkload{
			Pattern: essdsim.RandRead, BlockSize: 64 << 10,
			RatePerSec: 300, Arrival: essdsim.ArrivalUniform, Count: 600, Seed: 4,
		}},
		{Name: "noisy", Dev: noisy, Open: &essdsim.OpenWorkload{
			Pattern: essdsim.RandWrite, BlockSize: 256 << 10,
			RatePerSec: 1600, Arrival: essdsim.ArrivalBursty, Count: 3200, Seed: 5,
		}},
	})
	stats := be.VolumeStats()
	fmt.Printf("tenants measured: %d, victim ops=%d, neighbor ops=%d\n",
		len(results), results[0].Open.Ops, results[1].Open.Ops)
	fmt.Printf("pooled debt is the neighbor's: %v (victim added %d bytes)\n",
		stats[1].DebtAdded > 100*stats[0].DebtAdded+1, stats[0].DebtAdded)
	// Output:
	// tenants measured: 2, victim ops=600, neighbor ops=3200
	// pooled debt is the neighbor's: true (victim added 0 bytes)
}

// ExampleSearchSLO finds the highest offered write rate the small
// burstable tier can carry under a 20 ms p99, with a sweep cache so the
// probes of the two reported answers (pre-exhaustion and post-cliff) are
// shared rather than re-simulated.
func ExampleSearchSLO() {
	rep, err := essdsim.SearchSLO(context.Background(), essdsim.SLOSearch{
		Device:    essdsim.ProfileDevices("gp2s")[0],
		Pattern:   essdsim.RandWrite,
		BlockSize: 256 << 10,
		MinRate:   200,
		MaxRate:   3000,
		Tolerance: 200,
		Target:    essdsim.SLOTarget{P99: 20 * essdsim.Millisecond},
		Horizon:   3 * essdsim.Second,
		Cache:     essdsim.NewSweepCache(0),
		Seed:      7,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("burstable=%v, burst window carries more than the floor: %v\n",
		rep.Burstable, rep.PreMaxRate > rep.PostMaxRate)
	fmt.Printf("converged within bound: %v\n", rep.Bisections <= 2*rep.MaxBisections())
	// Output:
	// burstable=true, burst window carries more than the floor: true
	// converged within bound: true
}
