package expgrid

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"essdsim/internal/blockdev"
	"essdsim/internal/essd"
	"essdsim/internal/profiles"
	"essdsim/internal/sim"
	"essdsim/internal/stats"
	"essdsim/internal/trace"
	"essdsim/internal/workload"
)

func essd1Factory(seed uint64) blockdev.Device {
	d, err := profiles.ByName("essd1", sim.NewEngine(), sim.NewRNG(seed, seed^0xaa))
	if err != nil {
		panic(err)
	}
	return d
}

func ssdFactory(seed uint64) blockdev.Device {
	d, err := profiles.ByName("ssd", sim.NewEngine(), sim.NewRNG(seed, seed^0xbb))
	if err != nil {
		panic(err)
	}
	return d
}

// quickSweep is a 2-device × 2-pattern × 2-size × 2-QD grid (16 cells)
// small enough for -short runs.
func quickSweep() Sweep {
	return Sweep{
		Devices: []NamedFactory{
			{Name: "essd1", New: essd1Factory},
			{Name: "ssd", New: ssdFactory},
		},
		Patterns:     []workload.Pattern{workload.RandWrite, workload.RandRead},
		BlockSizes:   []int64{4 << 10, 64 << 10},
		QueueDepths:  []int{1, 8},
		CellDuration: 60 * sim.Millisecond,
		Warmup:       10 * sim.Millisecond,
		Seed:         7,
		Label:        "test",
	}
}

func TestEnumerationOrder(t *testing.T) {
	cells := quickSweep().Cells()
	if len(cells) != 16 {
		t.Fatalf("cells = %d, want 16", len(cells))
	}
	// Row-major: device outermost, QD innermost; indices sequential.
	for i, c := range cells {
		if c.Index != i {
			t.Fatalf("cell %d has Index %d", i, c.Index)
		}
		if c.WriteRatioPct != -1 {
			t.Fatalf("cell %d has ratio %d without a ratio axis", i, c.WriteRatioPct)
		}
	}
	if cells[0].DeviceName != "essd1" || cells[8].DeviceName != "ssd" {
		t.Fatalf("device axis not outermost: %q then %q", cells[0].DeviceName, cells[8].DeviceName)
	}
	if cells[0].QueueDepth != 1 || cells[1].QueueDepth != 8 {
		t.Fatalf("queue depth not innermost: %d then %d", cells[0].QueueDepth, cells[1].QueueDepth)
	}
	if cells[0].Pattern != workload.RandWrite || cells[4].Pattern != workload.RandRead {
		t.Fatal("pattern order wrong")
	}
}

func TestSeedStableUnderSubsetting(t *testing.T) {
	full := quickSweep()
	seeds := map[[4]int64]uint64{}
	for _, c := range full.Cells() {
		key := [4]int64{int64(c.DeviceIndex), int64(c.Pattern), c.BlockSize, int64(c.QueueDepth)}
		seeds[key] = c.Seed
	}
	// Subset and reorder every axis: surviving cells must keep their seeds.
	sub := full
	sub.Devices = []NamedFactory{{Name: "ssd", New: ssdFactory}, {Name: "essd1", New: essd1Factory}}
	sub.Patterns = []workload.Pattern{workload.RandRead}
	sub.BlockSizes = []int64{64 << 10}
	sub.QueueDepths = []int{8, 1}
	for _, c := range sub.Cells() {
		dev := int64(0) // essd1's index in the full sweep
		if c.DeviceName == "ssd" {
			dev = 1
		}
		key := [4]int64{dev, int64(c.Pattern), c.BlockSize, int64(c.QueueDepth)}
		want, ok := seeds[key]
		if !ok {
			t.Fatalf("cell %+v not present in full sweep", c)
		}
		if c.Seed != want {
			t.Errorf("cell %s/%s/bs=%d/qd=%d seed changed under subsetting: %x != %x",
				c.DeviceName, c.Pattern, c.BlockSize, c.QueueDepth, c.Seed, want)
		}
	}
	// Distinct coordinates must get distinct seeds.
	seen := map[uint64]bool{}
	for _, s := range seeds {
		if seen[s] {
			t.Fatal("seed collision across coordinates")
		}
		seen[s] = true
	}
	// Label and root seed must both decorrelate.
	relabeled := full
	relabeled.Label = "other"
	if relabeled.Cells()[0].Seed == full.Cells()[0].Seed {
		t.Error("label does not decorrelate seeds")
	}
	reseeded := full
	reseeded.Seed++
	if reseeded.Cells()[0].Seed == full.Cells()[0].Seed {
		t.Error("root seed does not decorrelate seeds")
	}
}

// projection is the comparable content of a CellResult.
type projection struct {
	Cell    Cell
	Device  string
	Summary stats.Summary
	Ops     uint64
	Bytes   int64
}

func project(results []CellResult) []projection {
	out := make([]projection, len(results))
	for i, r := range results {
		out[i] = projection{
			Cell: r.Cell, Device: r.Device,
			Summary: r.Res.Lat.Summarize(), Ops: r.Res.Ops, Bytes: r.Res.Bytes,
		}
	}
	return out
}

// TestParallelDeterminism is the contract of the whole subsystem: the same
// sweep run with 1 worker and with 8 workers yields identical results —
// same cells, same latencies, same order.
func TestParallelDeterminism(t *testing.T) {
	sw := quickSweep()
	serial, err := Runner{Workers: 1}.Run(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Runner{Workers: 8}.Run(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != 16 || len(parallel) != 16 {
		t.Fatalf("result counts: %d serial, %d parallel", len(serial), len(parallel))
	}
	ps, pp := project(serial), project(parallel)
	for i := range ps {
		if !reflect.DeepEqual(ps[i], pp[i]) {
			t.Fatalf("cell %d differs between 1 and 8 workers:\nserial:   %+v\nparallel: %+v",
				i, ps[i], pp[i])
		}
	}
}

func TestStreamOrderAndProgress(t *testing.T) {
	sw := quickSweep()
	var progress []int
	r := Runner{Workers: 4, OnProgress: func(p Progress) {
		if p.Total != 16 {
			t.Errorf("progress total = %d", p.Total)
		}
		progress = append(progress, p.Done)
	}}
	stream, errf := r.Stream(context.Background(), sw)
	next := 0
	for res := range stream {
		if res.Index != next {
			t.Fatalf("stream out of order: got cell %d, want %d", res.Index, next)
		}
		next++
	}
	if err := errf(); err != nil {
		t.Fatal(err)
	}
	if next != 16 {
		t.Fatalf("streamed %d cells", next)
	}
	if len(progress) != 16 || progress[15] != 16 {
		t.Fatalf("progress calls = %v", progress)
	}
	for i := 1; i < len(progress); i++ {
		if progress[i] != progress[i-1]+1 {
			t.Fatalf("progress not monotone: %v", progress)
		}
	}
}

func TestCancellation(t *testing.T) {
	sw := quickSweep()
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	r := Runner{Workers: 2, OnProgress: func(p Progress) {
		if p.Done == 2 {
			cancel()
		}
		n++
	}}
	results, err := r.Run(ctx, sw)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(results) >= 16 {
		t.Fatalf("cancellation did not stop the sweep: %d results", len(results))
	}
	if n >= 16 {
		t.Fatalf("cancellation did not stop the workers: %d cells ran", n)
	}
}

func TestCellErrorStopsSweep(t *testing.T) {
	sw := quickSweep()
	sw.BlockSizes = []int64{100} // not a multiple of the device block size
	results, err := Runner{Workers: 2}.Run(context.Background(), sw)
	if err == nil {
		t.Fatal("invalid spec did not error")
	}
	if !strings.Contains(err.Error(), "expgrid: cell") {
		t.Fatalf("unhelpful error: %v", err)
	}
	if len(results) != 0 {
		t.Fatalf("failed sweep emitted %d results", len(results))
	}
}

func TestValidate(t *testing.T) {
	var sw Sweep
	if err := sw.Validate(); err == nil {
		t.Fatal("empty sweep validated")
	}
	if _, err := (Runner{}).Run(context.Background(), sw); err == nil {
		t.Fatal("running an empty sweep did not error")
	}
	sw = quickSweep()
	if err := sw.Validate(); err != nil {
		t.Fatal(err)
	}
	sw.Devices[0].New = nil
	if err := sw.Validate(); err == nil {
		t.Fatal("nil factory validated")
	}
}

// TestValidateAxisValues asserts that bad axis entries fail validation
// with the axis named, instead of flowing into cell construction and
// dying mid-sweep (or silently: a negative closed-loop queue depth used
// to reach workload.Run unchecked).
func TestValidateAxisValues(t *testing.T) {
	for name, mutate := range map[string]func(*Sweep){
		"zero block size":     func(s *Sweep) { s.BlockSizes = []int64{4 << 10, 0} },
		"negative block size": func(s *Sweep) { s.BlockSizes = []int64{-4096} },
		"zero queue depth":    func(s *Sweep) { s.QueueDepths = []int{0} },
		"negative depth":      func(s *Sweep) { s.QueueDepths = []int{1, -2} },
		"ratio above 100":     func(s *Sweep) { s.WriteRatiosPct = []int{50, 101} },
		"ratio below -1":      func(s *Sweep) { s.WriteRatiosPct = []int{-2} },
	} {
		s := quickSweep()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: sweep accepted", name)
		}
		if _, err := (Runner{}).Run(context.Background(), s); err == nil {
			t.Errorf("%s: runner accepted the sweep", name)
		}
	}
	// The documented -1 sentinel stays valid.
	ok := quickSweep()
	ok.WriteRatiosPct = []int{-1, 0, 100}
	if err := ok.Validate(); err != nil {
		t.Fatalf("sentinel ratio rejected: %v", err)
	}
	// Open sweeps share the block-size check.
	open := Sweep{
		Kind:        Open,
		Devices:     Devices("essd1", essd1Factory),
		Patterns:    []workload.Pattern{workload.RandWrite},
		BlockSizes:  []int64{0},
		Arrivals:    []workload.Arrival{workload.Uniform},
		RatesPerSec: []float64{100},
	}
	if err := open.Validate(); err == nil {
		t.Error("open sweep accepted a zero block size")
	}
}

func TestWriteRatioAxisAndPrecond(t *testing.T) {
	sw := Sweep{
		Devices:        Devices("essd1", essd1Factory),
		Patterns:       []workload.Pattern{workload.Mixed},
		BlockSizes:     []int64{128 << 10},
		QueueDepths:    []int{8},
		WriteRatiosPct: []int{0, 100},
		CellDuration:   60 * sim.Millisecond,
		Warmup:         10 * sim.Millisecond,
		Precondition:   PrecondFull,
		Seed:           3,
	}
	results, err := Runner{}.Run(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].WriteRatioPct != 0 || results[1].WriteRatioPct != 100 {
		t.Fatalf("ratio axis order wrong: %d, %d",
			results[0].WriteRatioPct, results[1].WriteRatioPct)
	}
	if results[0].Res.WriteLat.Count() != 0 {
		t.Error("0% write-ratio cell recorded writes")
	}
	if results[1].Res.ReadLat.Count() != 0 {
		t.Error("100% write-ratio cell recorded reads")
	}
}

// TestRatioAxisOnlyMultipliesMixed asserts that adding a write-ratio axis
// neither duplicates nor re-seeds pure-pattern cells.
func TestRatioAxisOnlyMultipliesMixed(t *testing.T) {
	base := Sweep{
		Devices:     Devices("essd1", essd1Factory),
		Patterns:    []workload.Pattern{workload.RandRead, workload.Mixed},
		BlockSizes:  []int64{4 << 10},
		QueueDepths: []int{1},
		Seed:        5,
	}
	withAxis := base
	withAxis.WriteRatiosPct = []int{30, 70}
	cells := withAxis.Cells()
	if len(cells) != 3 {
		t.Fatalf("cells = %d, want 1 randread + 2 mixed", len(cells))
	}
	if cells[0].Pattern != workload.RandRead || cells[0].WriteRatioPct != -1 {
		t.Fatalf("pure cell got a ratio coordinate: %+v", cells[0])
	}
	if cells[1].WriteRatioPct != 30 || cells[2].WriteRatioPct != 70 {
		t.Fatalf("mixed ratios wrong: %+v %+v", cells[1], cells[2])
	}
	if noAxis := base.Cells(); noAxis[0].Seed != cells[0].Seed {
		t.Fatal("ratio axis re-seeded the pure-pattern cell")
	}
}

func TestNegativeWarmupMeansNone(t *testing.T) {
	sw := Sweep{Warmup: -1}.withDefaults()
	if sw.Warmup != 0 {
		t.Fatalf("negative warmup became %v, want 0", sw.Warmup)
	}
	if def := (Sweep{}).withDefaults(); def.Warmup != 50*sim.Millisecond {
		t.Fatalf("default warmup = %v", def.Warmup)
	}
}

// readAt submits one block-sized read at off and drains the engine.
func readAt(t *testing.T, dev blockdev.Device, off int64) {
	t.Helper()
	done := false
	dev.Submit(&blockdev.Request{
		Op: blockdev.Read, Offset: off, Size: int64(dev.BlockSize()),
		OnComplete: func(*blockdev.Request, sim.Time) { done = true },
	})
	dev.Engine().Run()
	if !done {
		t.Fatalf("read at %d never completed", off)
	}
}

// TestPreconditionHalfFillsForWrites is the regression test for the
// single-arg Precondition branch (ESSDs): write cells must get the
// documented half-filled GC-free window, not a full device.
func TestPreconditionHalfFillsForWrites(t *testing.T) {
	dev := essd1Factory(3)
	Precondition(dev, true)
	e := dev.(*essd.ESSD)
	bs := int64(dev.BlockSize())

	readAt(t, dev, 0) // first block: filled
	if got := e.Counters().UnwrittenReads; got != 0 {
		t.Fatalf("first block unwritten after write precondition (unwritten reads = %d)", got)
	}
	readAt(t, dev, dev.Capacity()-bs) // last block: must be beyond the half fill
	if got := e.Counters().UnwrittenReads; got != 1 {
		t.Fatalf("write precondition filled the whole ESSD (unwritten reads = %d, want 1)", got)
	}

	full := essd1Factory(3)
	Precondition(full, false)
	fe := full.(*essd.ESSD)
	readAt(t, full, full.Capacity()-bs)
	if got := fe.Counters().UnwrittenReads; got != 0 {
		t.Fatalf("read precondition left the ESSD partly empty (unwritten reads = %d)", got)
	}
}

// openProjection is the comparable content of an open-loop CellResult.
type openProjection struct {
	Cell           Cell
	Device         string
	Summary        stats.Summary
	Ops            uint64
	Bytes          int64
	Elapsed        sim.Duration
	MaxOutstanding int
}

func projectOpen(results []CellResult) []openProjection {
	out := make([]openProjection, len(results))
	for i, r := range results {
		out[i] = openProjection{
			Cell: r.Cell, Device: r.Device,
			Summary: r.Open.Lat.Summarize(), Ops: r.Open.Ops, Bytes: r.Open.Bytes,
			Elapsed: r.Open.Elapsed, MaxOutstanding: r.Open.MaxOutstanding,
		}
	}
	return out
}

func openSweep() Sweep {
	return Sweep{
		Kind: Open,
		Devices: []NamedFactory{
			{Name: "essd1", New: essd1Factory},
			{Name: "ssd", New: ssdFactory},
		},
		Patterns:       []workload.Pattern{workload.RandRead, workload.Mixed},
		BlockSizes:     []int64{64 << 10},
		WriteRatiosPct: []int{30, 70},
		Arrivals:       []workload.Arrival{workload.Uniform, workload.Bursty, workload.Poisson},
		RatesPerSec:    []float64{2000, 8000},
		OpenOps:        300,
		Seed:           9,
		Label:          "open-test",
	}
}

// TestOpenSweepParallelDeterminism extends the subsystem's core contract to
// open-loop cells: 1 worker and 8 workers must yield identical results.
func TestOpenSweepParallelDeterminism(t *testing.T) {
	sw := openSweep()
	cells := sw.Cells()
	// 2 devices × (randread + 2 mixed ratios) × 1 bs × 3 arrivals × 2 rates.
	if len(cells) != 36 {
		t.Fatalf("cells = %d, want 36", len(cells))
	}
	for i, c := range cells {
		if c.Index != i || c.QueueDepth != 0 || c.RatePerSec == 0 {
			t.Fatalf("bad open cell %d: %+v", i, c)
		}
	}
	serial, err := Runner{Workers: 1}.Run(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Runner{Workers: 8}.Run(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	ps, pp := projectOpen(serial), projectOpen(parallel)
	for i := range ps {
		if !reflect.DeepEqual(ps[i], pp[i]) {
			t.Fatalf("open cell %d differs between 1 and 8 workers:\nserial:   %+v\nparallel: %+v",
				i, ps[i], pp[i])
		}
	}
}

// testTrace builds a deterministic mixed trace (writes, reads, a flush
// every 64 ops) pacing count ops at the given gap.
func testTrace(count int, gap sim.Duration) []trace.Record {
	recs := make([]trace.Record, 0, count)
	for i := 0; i < count; i++ {
		rec := trace.Record{At: sim.Duration(i) * gap, Offset: int64(i%512) * 4096, Size: 4096}
		switch {
		case i%64 == 63:
			rec.Op, rec.Offset, rec.Size = blockdev.Flush, 0, 1
		case i%3 == 0:
			rec.Op = blockdev.Read
		default:
			rec.Op = blockdev.Write
		}
		recs = append(recs, rec)
	}
	return recs
}

// TestTraceSweepParallelDeterminism does the same for trace-replay cells.
func TestTraceSweepParallelDeterminism(t *testing.T) {
	sw := Sweep{
		Kind: TraceReplay,
		Devices: []NamedFactory{
			{Name: "essd1", New: essd1Factory},
			{Name: "ssd", New: ssdFactory},
		},
		Trace: testTrace(400, 50*sim.Microsecond),
		Seed:  13,
		Label: "trace-test",
	}
	if got := len(sw.Cells()); got != 2 {
		t.Fatalf("trace cells = %d, want one per device", got)
	}
	run := func(workers int) []CellResult {
		res, err := Runner{Workers: workers}.Run(context.Background(), sw)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial, parallel := run(1), run(8)
	for i := range serial {
		s, p := serial[i].Replay, parallel[i].Replay
		if s.Ops != 400 {
			t.Fatalf("cell %d replayed %d ops", i, s.Ops)
		}
		if s.Ops != p.Ops || s.Bytes != p.Bytes || s.Elapsed != p.Elapsed ||
			s.MaxOutstanding != p.MaxOutstanding ||
			!reflect.DeepEqual(s.Lat.Summarize(), p.Lat.Summarize()) {
			t.Fatalf("trace cell %d differs between 1 and 8 workers:\nserial:   %+v\nparallel: %+v",
				i, s, p)
		}
	}
	if serial[0].Replay.Elapsed == serial[1].Replay.Elapsed {
		t.Fatal("both devices replayed identically; device axis inert")
	}
}

// TestKindValidation checks the per-kind axis requirements.
func TestKindValidation(t *testing.T) {
	open := openSweep()
	if err := open.Validate(); err != nil {
		t.Fatal(err)
	}
	broken := open
	broken.Arrivals = nil
	if err := broken.Validate(); err == nil {
		t.Error("open sweep without arrivals validated")
	}
	broken = open
	broken.RatesPerSec = []float64{0}
	if err := broken.Validate(); err == nil {
		t.Error("open sweep with zero rate validated")
	}
	broken = open
	broken.QueueDepths = nil // open sweeps don't need queue depths
	if err := broken.Validate(); err != nil {
		t.Errorf("open sweep rejected for missing queue depths: %v", err)
	}
	tr := Sweep{Kind: TraceReplay, Devices: Devices("essd1", essd1Factory)}
	if err := tr.Validate(); err == nil {
		t.Error("trace sweep without records validated")
	}
	tr.Trace = testTrace(4, sim.Microsecond)
	if err := tr.Validate(); err != nil {
		t.Errorf("minimal trace sweep rejected: %v", err)
	}
}

// TestOpenSeedCoordinates asserts arrival and rate feed the seed and that
// open cells are decorrelated from closed cells at the same coordinates.
func TestOpenSeedCoordinates(t *testing.T) {
	base := OpenCellSeed(1, "l", "d", workload.RandRead, 4096, workload.Uniform, 1000, -1)
	if OpenCellSeed(1, "l", "d", workload.RandRead, 4096, workload.Bursty, 1000, -1) == base {
		t.Error("arrival does not decorrelate open seeds")
	}
	if OpenCellSeed(1, "l", "d", workload.RandRead, 4096, workload.Uniform, 2000, -1) == base {
		t.Error("rate does not decorrelate open seeds")
	}
	if CellSeed(1, "l", "d", workload.RandRead, 4096, 0, -1) == base {
		t.Error("open and closed cells share a seed")
	}
	if TraceCellSeed(1, "l", "d") == TraceCellSeed(1, "l", "e") {
		t.Error("device does not decorrelate trace seeds")
	}
}

func TestInspectHook(t *testing.T) {
	sw := Sweep{
		Devices:      Devices("essd1", essd1Factory),
		Patterns:     []workload.Pattern{workload.RandWrite},
		BlockSizes:   []int64{4 << 10},
		QueueDepths:  []int{1},
		CellDuration: 30 * sim.Millisecond,
		Warmup:       5 * sim.Millisecond,
		Seed:         11,
	}
	sw.Inspect = func(dev blockdev.Device, c Cell) any { return dev.Capacity() }
	results, err := Runner{}.Run(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	if cap, ok := results[0].Info.(int64); !ok || cap <= 0 {
		t.Fatalf("Inspect capture = %v", results[0].Info)
	}
}
