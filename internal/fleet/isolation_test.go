package fleet

import (
	"context"
	"testing"

	"essdsim/internal/expgrid"
	"essdsim/internal/qos"
)

// TestFleetIsolationPlacementTradeoff pins the study's headline: backend
// isolation and interference-aware placement are substitutes. On the
// calibrated ordering catalog, wfq removes strictly more p99.9 violations
// from first-fit (which stacks both aggressors on one backend) than from
// the interference-aware policy (which already separated them) — the
// smarter placer needs less isolation. And first-fit under wfq must be at
// least as good as interference-aware under fifo: the scheduler can buy
// back what the placement gave away.
func TestFleetIsolationPlacementTradeoff(t *testing.T) {
	rep, err := RunIsolationStudy(context.Background(), IsolationStudySpec{Spec: orderingSpec()})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Variants) != 2 ||
		rep.Variants[0].Isolation.Enabled() ||
		rep.Variants[1].Isolation.Policy != qos.IsolationWFQ {
		t.Fatalf("default variants are not fifo,wfq: %+v", rep.Variants)
	}

	gainFF := rep.IsolationGain(1, "first-fit")
	gainIA := rep.IsolationGain(1, "interference")
	if gainFF <= gainIA {
		t.Fatalf("isolation gain: first-fit %+d, interference-aware %+d — the naive packer must need isolation more",
			gainFF, gainIA)
	}
	if gainIA < 0 {
		t.Fatalf("wfq made interference-aware placement worse by %d violations", -gainIA)
	}
	if ffWFQ, iaFIFO := rep.Violations(1, "first-fit"), rep.Violations(0, "interference"); ffWFQ > iaFIFO {
		t.Fatalf("first-fit under wfq has %d violations, interference-aware under fifo %d — isolation failed to substitute for placement",
			ffWFQ, iaFIFO)
	}
	// Identical arrival streams across variants: the solo controls are
	// scheduling-invariant, so their tails must match exactly.
	fifoSolo, wfqSolo := rep.Variants[0].Report.Solo, rep.Variants[1].Report.Solo
	if len(fifoSolo) != len(wfqSolo) {
		t.Fatalf("solo control counts differ: %d vs %d", len(fifoSolo), len(wfqSolo))
	}
	for i, solo := range fifoSolo {
		if wfqSolo[i].Signature != solo.Signature || wfqSolo[i].Lat.P999 != solo.Lat.P999 {
			t.Fatalf("solo control %q differs across isolation variants", solo.Signature)
		}
	}
}

// TestFleetIsolationCacheWarm extends the cache satellite over the fleet
// isolation axis: variants cache separately, and a warm study re-run
// simulates zero new cells.
func TestFleetIsolationCacheWarm(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-variant fleet study")
	}
	cache := expgrid.NewCache(0)
	ss := IsolationStudySpec{Spec: orderingSpec()}
	ss.Cache = cache
	cold, err := RunIsolationStudy(context.Background(), ss)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CachedCells != 0 {
		t.Fatalf("cold study hit %d cached cells — fifo and wfq variants must not share entries", cold.CachedCells)
	}
	warm, err := RunIsolationStudy(context.Background(), ss)
	if err != nil {
		t.Fatal(err)
	}
	var total int
	for _, v := range warm.Variants {
		total += v.Report.Cells
	}
	if warm.CachedCells != total {
		t.Fatalf("warm study cached %d of %d cells", warm.CachedCells, total)
	}
}

// TestScreenCouplingDiscount pins the screen-side honesty bound: with a
// debt-share rate at half the cleaner rate, qos.Isolation.DebtCouplingFactor
// halves the cross-tenant penalties, so a placement that stacks both
// aggressors scores strictly lower (better) than under fifo while
// single-aggressor placements score identically.
func TestScreenCouplingDiscount(t *testing.T) {
	base := orderingSpec().withDefaults()
	iso := base
	iso.Backend.Isolation = qos.Isolation{
		Policy:        qos.IsolationWFQ,
		DebtShareRate: iso.Backend.Cluster.CleanerRate / 2,
	}

	mFIFO := base.newScreenModel()
	mISO := iso.newScreenModel()
	if mFIFO.coupling != 1 {
		t.Fatalf("fifo coupling = %g, want 1", mFIFO.coupling)
	}
	if mISO.coupling != 0.5 {
		t.Fatalf("half-rate wfq coupling = %g, want 0.5", mISO.coupling)
	}

	// first-fit stacks both aggressors (positions 0 and 4) on backend 0;
	// interference-aware separates them.
	cons := base.constraints()
	stacked := FirstFit{}.Place(cons, base.Demands)
	separated := InterferenceAware{}.Place(cons, base.Demands)

	sFIFO, _ := mFIFO.score(base.Demands, stacked, base.Backends)
	sISO, _ := mISO.score(base.Demands, stacked, base.Backends)
	if sISO >= sFIFO {
		t.Fatalf("stacked placement: isolated score %.3f not below fifo %.3f", sISO, sFIFO)
	}
	pFIFO, _ := mFIFO.score(base.Demands, separated, base.Backends)
	pISO, _ := mISO.score(base.Demands, separated, base.Backends)
	if pISO > pFIFO {
		t.Fatalf("separated placement: isolated score %.3f above fifo %.3f", pISO, pFIFO)
	}
	// The discount narrows the stacked-vs-separated spread: isolation makes
	// dense packing relatively cheaper, which is the screen-side mirror of
	// the simulated trade-off.
	if (sISO - pISO) >= (sFIFO - pFIFO) {
		t.Fatalf("penalty spread did not narrow under isolation: iso %.3f vs fifo %.3f",
			sISO-pISO, sFIFO-pFIFO)
	}
}
