// Package profiles holds the calibrated device configurations for the
// paper's Table I hardware: ESSD-1 (Amazon AWS io2), ESSD-2 (Alibaba Cloud
// PL3) and the local Samsung 970 Pro class SSD, plus extra tiers used by
// ablation benchmarks.
//
// Simulated capacities are scaled down 64× (see DESIGN.md §3) so page-level
// FTL state fits in memory and the write-3×-capacity experiment completes
// quickly; every knee the paper reports is capacity-relative, so the scaling
// preserves it. Latency constants are calibrated so the simulated devices
// land near the paper's Figure 2 annotations; the mechanisms producing the
// trends live in the essd/ssd/cluster/ftl packages, not here.
package profiles

import (
	"fmt"

	"essdsim/internal/blockdev"
	"essdsim/internal/cluster"
	"essdsim/internal/essd"
	"essdsim/internal/netsim"
	"essdsim/internal/qos"
	"essdsim/internal/sim"
	"essdsim/internal/ssd"
)

// CapacityScale is the divisor applied to the paper's device capacities.
const CapacityScale = 64

// Paper capacities (Table I).
const (
	paperESSDCapacity = 2 << 40 // 2 TB volumes
	paperSSDCapacity  = 1 << 40 // 1 TB local SSD
)

// Scaled simulated capacities.
const (
	ESSDCapacity = paperESSDCapacity / CapacityScale // 32 GiB
	SSDCapacity  = paperSSDCapacity / CapacityScale  // 16 GiB
)

// ESSD1Config returns the calibrated Amazon AWS io2 class volume
// (Table I row 1: ~3.0 GB/s, 2 TB, m6in.xlarge, Tokyo).
func ESSD1Config() essd.Config {
	return essd.Config{
		Name:             "ESSD-1 (AWS io2)",
		Provider:         "Amazon AWS",
		Model:            "io2",
		Capacity:         ESSDCapacity,
		BlockSize:        4096,
		ThroughputBudget: 3.0e9,
		BudgetBurst:      48 << 20,
		IOPSBudget:       64000, // volume ceiling; Table I lists the provisioned 25.6K
		IOPSBurst:        2000,
		IOPSChunkBytes:   256 << 10, // io2 merges up to 256 KiB per I/O credit
		FrontendSlots:    8,
		FrontendLatency:  sim.LogNormal{Median: 55 * sim.Microsecond, Sigma: 0.14},
		Net: netsim.Config{
			HopLatency: sim.Spiked{
				Base:  sim.LogNormal{Median: 40 * sim.Microsecond, Sigma: 0.12},
				P:     0.0002,
				Spike: sim.LogNormal{Median: 800 * sim.Microsecond, Sigma: 0.35},
			},
			UplinkBW:   3.3e9,
			DownlinkBW: 3.3e9,
		},
		Cluster: cluster.Config{
			Nodes:        16,
			ChunkBytes:   2 << 20,
			Replicas:     3,
			WriteSlots:   2,
			WriteService: sim.LogNormal{Median: 55 * sim.Microsecond, Sigma: 0.15},
			StreamBW:     2.0e9,
			ReplBW:       4.0e9, // 2 copies in flight; keeps the stream binding
			ReplHop: sim.Spiked{
				Base:  sim.LogNormal{Median: 40 * sim.Microsecond, Sigma: 0.12},
				P:     0.0002,
				Spike: sim.LogNormal{Median: 800 * sim.Microsecond, Sigma: 0.35},
			},
			ReadSlots:   8,
			ReadService: sim.LogNormal{Median: 330 * sim.Microsecond, Sigma: 0.16},
			ReadBW:      0.45e9,
			CleanerRate: 1.2e9,
		},
		SpareFrac:    0.66,
		ThrottleRate: 0.305e9,
	}
}

// ESSD2Config returns the calibrated Alibaba Cloud PL3 class volume
// (Table I row 2: ~1.1 GB/s, 100K IOPS, 2 TB, ecs.g5.4xlarge, Hangzhou).
// Its base latency is lower than ESSD-1's but its tail (P99.9) is heavier,
// matching Figure 2c/2d.
func ESSD2Config() essd.Config {
	tailHop := sim.Spiked{
		Base:  sim.LogNormal{Median: 12 * sim.Microsecond, Sigma: 0.20},
		P:     0.0011,
		Spike: sim.LogNormal{Median: 1100 * sim.Microsecond, Sigma: 0.45},
	}
	return essd.Config{
		Name:             "ESSD-2 (Alibaba PL3)",
		Provider:         "Alibaba Cloud",
		Model:            "PL3",
		Capacity:         ESSDCapacity,
		BlockSize:        4096,
		ThroughputBudget: 1.1e9,
		BudgetBurst:      16 << 20,
		IOPSBudget:       100000,
		IOPSBurst:        3000,
		IOPSChunkBytes:   16 << 10,
		FrontendSlots:    8,
		FrontendLatency:  sim.LogNormal{Median: 22 * sim.Microsecond, Sigma: 0.16},
		Net: netsim.Config{
			HopLatency: tailHop,
			UplinkBW:   1.6e9,
			DownlinkBW: 1.6e9,
		},
		Cluster: cluster.Config{
			Nodes:        16,
			ChunkBytes:   2 << 20,
			Replicas:     3,
			WriteSlots:   1,
			WriteService: sim.LogNormal{Median: 26 * sim.Microsecond, Sigma: 0.18},
			StreamBW:     0.4e9,
			ReplBW:       0.9e9, // 2 copies in flight; stream remains binding
			ReplHop:      tailHop,
			ReadSlots:    8,
			ReadService:  sim.LogNormal{Median: 184 * sim.Microsecond, Sigma: 0.18},
			ReadBW:       0.7e9,
			CleanerRate:  1.3e9,
		},
		SpareFrac:    0.61,
		ThrottleRate: 0.305e9, // unreached within the paper's 3× experiment
	}
}

// SSDConfig returns the scaled Samsung 970 Pro class local SSD
// (Table I row 3: 3.5/2.7 GB/s seq R/W, 500K/500K 4K QD32 IOPS, 1 TB).
func SSDConfig() ssd.Config {
	cfg := ssd.DefaultConfig(SSDCapacity)
	cfg.Name = "SSD (Samsung 970 Pro)"
	return cfg
}

// TableI returns the paper's Table I rows: the externally advertised
// envelope of each device (paper-scale capacities, not simulator-scale).
func TableI() []blockdev.Config {
	return []blockdev.Config{
		{
			Provider: "Amazon AWS", Model: "io2", Kind: "ESSD",
			MaxReadBW: 3.0e9, MaxWriteBW: 3.0e9,
			MaxIOPS: 25600, Capacity: paperESSDCapacity,
		},
		{
			Provider: "Alibaba Cloud", Model: "PL3", Kind: "ESSD",
			MaxReadBW: 1.1e9, MaxWriteBW: 1.1e9,
			MaxIOPS: 100000, Capacity: paperESSDCapacity,
		},
		{
			Provider: "Samsung", Model: "970 Pro", Kind: "SSD",
			MaxReadBW: 3.5e9, MaxWriteBW: 2.7e9,
			MaxIOPS: 500000, Capacity: paperSSDCapacity,
		},
	}
}

// GP3Config returns a general-purpose (gp3-like) ESSD tier used by ablation
// benchmarks: same architecture as io2, lower budgets.
func GP3Config() essd.Config {
	cfg := ESSD1Config()
	cfg.Name = "ESSD (AWS gp3 class)"
	cfg.Model = "gp3"
	cfg.ThroughputBudget = 1.0e9
	cfg.BudgetBurst = 16 << 20
	cfg.IOPSBudget = 16000
	cfg.SpareFrac = 0.40
	return cfg
}

// PL1Config returns a low-tier (PL1-like) ESSD used by ablation benchmarks.
func PL1Config() essd.Config {
	cfg := ESSD2Config()
	cfg.Name = "ESSD (Alibaba PL1 class)"
	cfg.Model = "PL1"
	cfg.ThroughputBudget = 0.35e9
	cfg.BudgetBurst = 8 << 20
	cfg.IOPSBudget = 50000
	cfg.Cluster.CleanerRate = 0.5e9
	return cfg
}

// GP2Config returns a burstable general-purpose (gp2-like) tier: a low
// baseline with a credit-backed burst ceiling. It exercises the
// qos.CreditBucket machinery behind the cheaper volume classes the paper's
// Table I contrasts with io2/PL3.
func GP2Config() essd.Config {
	cfg := ESSD1Config()
	cfg.Name = "ESSD (AWS gp2 class)"
	cfg.Model = "gp2"
	cfg.ThroughputBudget = 1.0e9 // burst ceiling
	cfg.BudgetBurst = 8 << 20
	cfg.IOPSBudget = 16000
	cfg.BurstBaseline = 0.25e9
	cfg.BurstCreditBytes = 4 << 30 / CapacityScale * 16 // scaled credit bank
	cfg.SpareFrac = 0.40
	return cfg
}

// GP2SmallConfig returns a small burstable (gp2-like) volume: as on real
// burstable tiers, a smaller volume earns credits more slowly and peaks
// lower, so its credits exhaust sooner under the same offered load. Paired
// with GP2Config it gives burst-credit scenario sweeps a second burstable
// device axis value.
func GP2SmallConfig() essd.Config {
	cfg := GP2Config()
	cfg.Name = "ESSD (AWS gp2 small)"
	cfg.ThroughputBudget = 0.5e9 // burst ceiling
	cfg.BudgetBurst = 4 << 20
	cfg.IOPSBudget = 8000
	cfg.BurstBaseline = 0.1e9
	cfg.BurstCreditBytes = 4 << 30 / CapacityScale * 8 // half the gp2 bank
	return cfg
}

// NeighborBackendConfig returns the shared storage backend of the
// multi-tenant noisy-neighbor studies: ESSD-1-class fabric and cluster
// serving several attached volumes, with a deliberately modest background
// cleaner so that aggressor overwrite churn accumulates in the pooled debt
// fast enough to drive cross-tenant throttling within a short simulated
// horizon (the Obs#2 coupling at fleet scale).
func NeighborBackendConfig() essd.BackendConfig {
	bcfg, _ := ESSD1Config().Split()
	bcfg.Cluster.CleanerRate = 0.15e9
	return bcfg
}

// NeighborVolumeConfig returns the per-volume half of a tenant on the
// shared neighbor backend: gp3-class budgets with a tight spare-capacity
// margin, so the pooled cleaning debt of a few bursty neighbors crosses
// the volume's throttle threshold while a solo tenant never does.
func NeighborVolumeConfig(name string) essd.VolumeConfig {
	_, vcfg := ESSD1Config().Split()
	vcfg.Name = name
	vcfg.Model = "gp3"
	vcfg.ThroughputBudget = 1.0e9
	vcfg.BudgetBurst = 16 << 20
	vcfg.IOPSBudget = 16000
	vcfg.SpareFrac = 0.04
	vcfg.ThrottleRate = 0.2e9
	return vcfg
}

// NewESSD1 builds the ESSD-1 device on the engine.
func NewESSD1(eng *sim.Engine, rng *sim.RNG) *essd.ESSD {
	return essd.New(eng, ESSD1Config(), rng)
}

// NewESSD2 builds the ESSD-2 device on the engine.
func NewESSD2(eng *sim.Engine, rng *sim.RNG) *essd.ESSD {
	return essd.New(eng, ESSD2Config(), rng)
}

// NewSSD builds the local SSD device on the engine.
func NewSSD(eng *sim.Engine, rng *sim.RNG) *ssd.SSD {
	return ssd.New(eng, SSDConfig(), rng)
}

// ByName constructs a device by profile key: "essd1", "essd2", "ssd",
// "gp3", or "pl1".
func ByName(name string, eng *sim.Engine, rng *sim.RNG) (blockdev.Device, error) {
	switch name {
	case "essd1":
		return NewESSD1(eng, rng), nil
	case "essd2":
		return NewESSD2(eng, rng), nil
	case "ssd":
		return NewSSD(eng, rng), nil
	case "gp3":
		return essd.New(eng, GP3Config(), rng), nil
	case "gp2":
		return essd.New(eng, GP2Config(), rng), nil
	case "gp2s":
		return essd.New(eng, GP2SmallConfig(), rng), nil
	case "pl1":
		return essd.New(eng, PL1Config(), rng), nil
	default:
		return nil, fmt.Errorf("profiles: unknown device %q (want essd1, essd2, ssd, gp3, gp2, gp2s, pl1)", name)
	}
}

// Names lists the valid ByName keys.
func Names() []string { return []string{"essd1", "essd2", "ssd", "gp3", "gp2", "gp2s", "pl1"} }

// ConfigByName returns the flat single-volume configuration for an
// essd-class profile key. Local-SSD profiles have no flat essd.Config and
// are rejected; use ByName for those.
func ConfigByName(name string) (essd.Config, error) {
	switch name {
	case "essd1":
		return ESSD1Config(), nil
	case "essd2":
		return ESSD2Config(), nil
	case "gp3":
		return GP3Config(), nil
	case "gp2":
		return GP2Config(), nil
	case "gp2s":
		return GP2SmallConfig(), nil
	case "pl1":
		return PL1Config(), nil
	case "ssd":
		return essd.Config{}, fmt.Errorf("profiles: %q is a local SSD with no shared backend", name)
	default:
		return essd.Config{}, fmt.Errorf("profiles: unknown device %q (want essd1, essd2, ssd, gp3, gp2, gp2s, pl1)", name)
	}
}

// ByNameQoS constructs a device like ByName but with a backend isolation
// policy and per-volume QoS share applied. With isolation disabled and no
// weight or reservation it is exactly ByName (any profile). Otherwise the
// profile must be essd-class: a local SSD has no shared backend to
// schedule, so asking to isolate one is a configuration error.
func ByNameQoS(name string, iso qos.Isolation, weight, reservedBps float64, eng *sim.Engine, rng *sim.RNG) (blockdev.Device, error) {
	if !iso.Enabled() && weight == 0 && reservedBps == 0 {
		return ByName(name, eng, rng)
	}
	cfg, err := ConfigByName(name)
	if err != nil {
		return nil, err
	}
	cfg.Isolation = iso
	cfg.Weight = weight
	cfg.ReservedRate = reservedBps
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return essd.New(eng, cfg, rng), nil
}
