package trace

import (
	"bytes"
	"strings"
	"testing"

	"essdsim/internal/blockdev"
	"essdsim/internal/sim"
)

// echoDevice completes everything after a fixed latency.
type echoDevice struct {
	eng *sim.Engine
	lat sim.Duration
}

func (e *echoDevice) Name() string        { return "echo" }
func (e *echoDevice) Capacity() int64     { return 1 << 30 }
func (e *echoDevice) BlockSize() int      { return 4096 }
func (e *echoDevice) Engine() *sim.Engine { return e.eng }
func (e *echoDevice) Submit(r *blockdev.Request) {
	r.Issued = e.eng.Now()
	e.eng.Schedule(e.lat, func() {
		if r.OnComplete != nil {
			r.OnComplete(r, e.eng.Now())
		}
	})
}

func TestRoundTrip(t *testing.T) {
	recs := []Record{
		{At: 0, Op: blockdev.Write, Offset: 0, Size: 4096},
		{At: 1000, Op: blockdev.Read, Offset: 8192, Size: 8192},
		{At: 2000, Op: blockdev.Trim, Offset: 0, Size: 4096},
		{At: 3000, Op: blockdev.Flush, Offset: 0, Size: 1},
	}
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip lost records: %d vs %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}
}

func TestReadComments(t *testing.T) {
	in := "# header\n0 w 0 4096\n\n100 r 4096 4096\n"
	recs, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"0 w 0\n",                    // field count
		"x w 0 4096\n",               // bad time
		"0 q 0 4096\n",               // bad op
		"0 w -1 4096\n",              // bad offset
		"0 w 0 0\n",                  // bad size
		"100 w 0 4096\n0 w 0 4096\n", // unsorted
	}
	for i, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted: %q", i, in)
		}
	}
}

func TestReplayTiming(t *testing.T) {
	dev := &echoDevice{eng: sim.NewEngine(), lat: 100 * sim.Microsecond}
	recs := []Record{
		{At: 0, Op: blockdev.Write, Offset: 0, Size: 4096},
		{At: sim.Duration(sim.Millisecond), Op: blockdev.Read, Offset: 0, Size: 4096},
	}
	res := Replay(dev, recs)
	if res.Ops != 2 {
		t.Fatalf("ops = %d", res.Ops)
	}
	// Last record issues at 1 ms, completes at 1.1 ms.
	want := sim.Duration(sim.Millisecond) + 100*sim.Microsecond
	if res.Elapsed != want {
		t.Fatalf("elapsed = %v, want %v", res.Elapsed, want)
	}
	if res.Lat.Mean() != 100*sim.Microsecond {
		t.Fatalf("mean latency = %v", res.Lat.Mean())
	}
	if res.Stretch < 1.0 || res.Stretch > 1.2 {
		t.Fatalf("stretch = %v", res.Stretch)
	}
}

func TestRecorderCaptures(t *testing.T) {
	dev := &echoDevice{eng: sim.NewEngine(), lat: 10 * sim.Microsecond}
	rec := NewRecorder(dev)
	rec.Submit(&blockdev.Request{Op: blockdev.Write, Offset: 4096, Size: 4096})
	dev.eng.Run()
	rec.Submit(&blockdev.Request{Op: blockdev.Read, Offset: 0, Size: 8192})
	dev.eng.Run()
	if len(rec.Recs) != 2 {
		t.Fatalf("recorded %d", len(rec.Recs))
	}
	if rec.Recs[0].Op != blockdev.Write || rec.Recs[0].Offset != 4096 {
		t.Fatalf("rec 0 = %+v", rec.Recs[0])
	}
	if rec.Recs[1].At != 10*sim.Microsecond {
		t.Fatalf("rec 1 time = %v", rec.Recs[1].At)
	}
	// Round-trip the captured trace.
	var buf bytes.Buffer
	if err := Write(&buf, rec.Recs); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil || len(back) != 2 {
		t.Fatalf("round trip: %v, %d", err, len(back))
	}
}

func TestReplayOpenLoopOverlap(t *testing.T) {
	// Two requests issued at the same instant overlap (open loop).
	dev := &echoDevice{eng: sim.NewEngine(), lat: 1 * sim.Millisecond}
	recs := []Record{
		{At: 0, Op: blockdev.Read, Offset: 0, Size: 4096},
		{At: 0, Op: blockdev.Read, Offset: 4096, Size: 4096},
	}
	res := Replay(dev, recs)
	if res.Elapsed != sim.Duration(sim.Millisecond) {
		t.Fatalf("open-loop replay serialized: elapsed %v", res.Elapsed)
	}
	if res.MaxOutstanding != 2 {
		t.Fatalf("max outstanding = %d, want 2", res.MaxOutstanding)
	}
	// An instantaneous trace has no issue span: Stretch is undefined (0)
	// and Lag carries the drain time.
	if res.Nominal != 0 || res.Stretch != 0 {
		t.Fatalf("instantaneous trace: nominal %v stretch %v", res.Nominal, res.Stretch)
	}
	if res.Lag != sim.Duration(sim.Millisecond) {
		t.Fatalf("lag = %v, want the drain time", res.Lag)
	}
}

// TestReplaySingleRecord is the regression test for Stretch's division by
// the last issue time: a single-record trace must not report a bogus ratio.
func TestReplaySingleRecord(t *testing.T) {
	dev := &echoDevice{eng: sim.NewEngine(), lat: 100 * sim.Microsecond}
	res := Replay(dev, []Record{{At: 0, Op: blockdev.Write, Offset: 0, Size: 4096}})
	if res.Ops != 1 || res.Stretch != 0 {
		t.Fatalf("ops=%d stretch=%v", res.Ops, res.Stretch)
	}
	if res.Lag != 100*sim.Microsecond {
		t.Fatalf("lag = %v, want the op's latency", res.Lag)
	}
	if res.MaxOutstanding != 1 {
		t.Fatalf("max outstanding = %d", res.MaxOutstanding)
	}
}

func TestReplayNominalAndLag(t *testing.T) {
	dev := &echoDevice{eng: sim.NewEngine(), lat: 100 * sim.Microsecond}
	recs := []Record{
		{At: 0, Op: blockdev.Write, Offset: 0, Size: 4096},
		{At: sim.Duration(2 * sim.Millisecond), Op: blockdev.Read, Offset: 0, Size: 4096},
	}
	res := Replay(dev, recs)
	if res.Nominal != sim.Duration(2*sim.Millisecond) {
		t.Fatalf("nominal = %v", res.Nominal)
	}
	if res.Lag != 100*sim.Microsecond {
		t.Fatalf("lag = %v", res.Lag)
	}
	want := float64(res.Elapsed) / float64(res.Nominal)
	if res.Stretch != want {
		t.Fatalf("stretch = %v, want %v", res.Stretch, want)
	}
}

// TestRecorderRoundTripReplay captures a synthetic workload (including a
// flush) through a Recorder, serializes the trace, reads it back, and
// replays it on a fresh device: the full write→read→replay path.
func TestRecorderRoundTripReplay(t *testing.T) {
	dev := &echoDevice{eng: sim.NewEngine(), lat: 50 * sim.Microsecond}
	rec := NewRecorder(dev)
	ops := []struct {
		op   blockdev.Op
		off  int64
		size int64
	}{
		{blockdev.Write, 0, 4096},
		{blockdev.Write, 8192, 8192},
		{blockdev.Flush, 0, 1},
		{blockdev.Read, 0, 4096},
	}
	for _, o := range ops {
		rec.Submit(&blockdev.Request{Op: o.op, Offset: o.off, Size: o.size})
		dev.eng.Run() // space issues 50µs apart (each waits the echo latency)
	}

	var buf bytes.Buffer
	if err := Write(&buf, rec.Recs); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(ops) {
		t.Fatalf("round trip lost records: %d vs %d", len(back), len(ops))
	}
	for i, r := range back {
		if r != rec.Recs[i] {
			t.Fatalf("record %d: %+v != %+v", i, r, rec.Recs[i])
		}
		if r.At != sim.Duration(i)*50*sim.Microsecond {
			t.Fatalf("record %d issue time %v", i, r.At)
		}
	}
	if back[2].Op != blockdev.Flush {
		t.Fatalf("flush not preserved: %+v", back[2])
	}

	fresh := &echoDevice{eng: sim.NewEngine(), lat: 50 * sim.Microsecond}
	res := Replay(fresh, back)
	if res.Ops != uint64(len(ops)) {
		t.Fatalf("replayed %d ops", res.Ops)
	}
	var wantBytes int64
	for _, o := range ops {
		wantBytes += o.size
	}
	if res.Bytes != wantBytes {
		t.Fatalf("replayed %d bytes, want %d", res.Bytes, wantBytes)
	}
	if res.Nominal != 3*50*sim.Microsecond {
		t.Fatalf("nominal = %v", res.Nominal)
	}
	if res.Lag != 50*sim.Microsecond {
		t.Fatalf("lag = %v", res.Lag)
	}
}
