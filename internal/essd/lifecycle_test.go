package essd

import (
	"fmt"
	"testing"

	"essdsim/internal/blockdev"
	"essdsim/internal/qos"
	"essdsim/internal/sim"
)

// randomBurst submits ops random requests on v (sizes 4k–128k, ~30%
// reads) and runs the engine to quiescence, so the caller may detach
// volumes afterwards.
func randomBurst(t *testing.T, eng *sim.Engine, v *ESSD, rng *sim.RNG, ops int) {
	t.Helper()
	done := 0
	for i := 0; i < ops; i++ {
		op := blockdev.Write
		if rng.Float64() < 0.3 {
			op = blockdev.Read
		}
		bs := int64(4096) << rng.IntN(6)
		off := rng.Int64N((v.Capacity()-bs)/4096) * 4096
		v.Submit(&blockdev.Request{
			Op: op, Offset: off, Size: bs,
			OnComplete: func(*blockdev.Request, sim.Time) { done++ },
		})
	}
	eng.Run()
	if done != ops {
		t.Fatalf("burst on %s: %d of %d requests completed", v.Name(), done, ops)
	}
}

// TestBackendAttachDetachInvariant is the lifecycle extension of
// TestBackendAccountingInvariant: under random seeded interleavings of
// attach, detach, and I/O bursts, the per-volume attribution must stay
// complete — summing VolumeStats over the currently-attached volumes
// plus the stats captured at each Detach reproduces the backend-wide
// cluster node totals and fabric byte totals exactly. Runs under both
// fifo and wfq so the isolation reclamation path in ReleaseFlow is
// exercised; the wfq variant is what the -race CI pass leans on.
func TestBackendAttachDetachInvariant(t *testing.T) {
	for _, iso := range []qos.Isolation{{}, {Policy: qos.IsolationWFQ}} {
		iso := iso
		t.Run(iso.Policy.String(), func(t *testing.T) {
			for seed := uint64(1); seed <= 4; seed++ {
				seed := seed
				t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
					checkLifecycleInvariant(t, iso, seed)
				})
			}
		})
	}
	t.Run("ghost-residue", testDetachLeavesNoResidue)
}

func checkLifecycleInvariant(t *testing.T, iso qos.Isolation, seed uint64) {
	eng := sim.NewEngine()
	bcfg, vcfg := testConfig().Split()
	bcfg.Isolation = iso
	be := NewBackend(eng, bcfg, sim.NewRNG(seed, 0xbe))
	rng := sim.NewRNG(seed, 0xface)

	var attached []*ESSD
	var departed []VolumeStats
	nextID := 0
	attach := func() {
		cfg := vcfg
		cfg.Name = fmt.Sprintf("vol-%d", nextID)
		v := be.Attach(cfg, sim.NewRNG(seed, uint64(100+nextID)))
		v.Precondition(1) // every write overwrites, so churn always adds debt
		nextID++
		attached = append(attached, v)
	}
	attach()
	attach()

	for step := 0; step < 30; step++ {
		switch r := rng.Float64(); {
		case r < 0.25 && len(attached) < 5:
			attach()
		case r < 0.45 && len(attached) > 1:
			i := rng.IntN(len(attached))
			v := attached[i]
			departed = append(departed, be.Detach(v))
			attached = append(attached[:i], attached[i+1:]...)
			if !v.detached {
				t.Fatal("Detach left the volume marked attached")
			}
			if be.Debt() < 0 {
				t.Fatalf("step %d: negative pooled debt %d after detach", step, be.Debt())
			}
		default:
			v := attached[rng.IntN(len(attached))]
			randomBurst(t, eng, v, rng, 20+rng.IntN(60))
		}
	}
	if len(be.Volumes()) != len(attached) {
		t.Fatalf("backend reports %d volumes, test tracked %d",
			len(be.Volumes()), len(attached))
	}

	var sum VolumeStats
	var debtAdded int64
	tally := func(vs VolumeStats) {
		sum.Writes += vs.Writes
		sum.Reads += vs.Reads
		sum.WriteBytes += vs.WriteBytes
		sum.ReadBytes += vs.ReadBytes
		sum.FabricUp += vs.FabricUp
		sum.FabricDown += vs.FabricDown
		debtAdded += vs.DebtAdded
	}
	for _, vs := range be.VolumeStats() {
		tally(vs)
	}
	for _, vs := range departed {
		tally(vs)
	}

	cl := be.Cluster()
	var nodeWrites, nodeReads uint64
	var nodeWriteBytes, nodeReadBytes int64
	for i := 0; i < cl.NumNodes(); i++ {
		ns := cl.NodeStats(i)
		nodeWrites += ns.Writes
		nodeReads += ns.Reads
		nodeWriteBytes += ns.WriteBytes
		nodeReadBytes += ns.ReadBytes
	}
	if sum.Writes != nodeWrites || sum.Reads != nodeReads {
		t.Errorf("cluster ops: flows %d/%d writes/reads, nodes %d/%d",
			sum.Writes, sum.Reads, nodeWrites, nodeReads)
	}
	if sum.WriteBytes != nodeWriteBytes || sum.ReadBytes != nodeReadBytes {
		t.Errorf("cluster bytes: flows %d/%d, nodes %d/%d",
			sum.WriteBytes, sum.ReadBytes, nodeWriteBytes, nodeReadBytes)
	}
	net := be.Network()
	if sum.FabricUp != net.MovedUp() || sum.FabricDown != net.MovedDown() {
		t.Errorf("fabric bytes: flows %d/%d up/down, network %d/%d",
			sum.FabricUp, sum.FabricDown, net.MovedUp(), net.MovedDown())
	}
	if debtAdded <= 0 {
		t.Error("lifecycle churn attributed no cleaning debt")
	}
	if be.Debt() > debtAdded {
		t.Errorf("pooled debt %d exceeds the %d attributed by flows", be.Debt(), debtAdded)
	}
}

// testDetachLeavesNoResidue pins that detach reclaims per-flow state
// completely: a backend that hosted a ghost tenant — attach, write
// churn, idle until the pooled debt fully drains, detach — then gains a
// late volume must serve the survivors draw-for-draw identically to a
// fresh backend that never saw the ghost. Any residue the ghost leaves
// in the pooled debt, the admission accounts, or the per-node
// scheduling shares shows up here as a shifted latency.
func testDetachLeavesNoResidue(t *testing.T) {
	run := func(withGhost bool) []sim.Duration {
		eng := sim.NewEngine()
		bcfg, vcfg := testConfig().Split()
		bcfg.Isolation = qos.Isolation{Policy: qos.IsolationWFQ}
		be := NewBackend(eng, bcfg, sim.NewRNG(7, 8))
		a := vcfg
		a.Name = "survivor"
		va := be.Attach(a, sim.NewRNG(21, 22))
		if withGhost {
			g := vcfg
			g.Name = "ghost"
			vg := be.Attach(g, sim.NewRNG(31, 32))
			randomBurst(t, eng, vg, sim.NewRNG(41, 42), 200)
			// Idle long enough for the cleaner to drain the ghost's
			// pooled debt, then detach: nothing of the ghost may remain.
			eng.Schedule(30*sim.Second, func() {})
			eng.Run()
			be.Detach(vg)
			if be.Debt() != 0 {
				t.Fatalf("pooled debt %d after idle drain + detach, want 0", be.Debt())
			}
		}
		b := vcfg
		b.Name = "late"
		vb := be.Attach(b, sim.NewRNG(51, 52))

		// Identical interleaved workload on the survivor and the late
		// volume; record every completion latency in event order.
		var lats []sim.Duration
		wrng := sim.NewRNG(61, 62)
		for i := 0; i < 150; i++ {
			for _, v := range []*ESSD{va, vb} {
				op := blockdev.Write
				if wrng.Float64() < 0.3 {
					op = blockdev.Read
				}
				bs := int64(4096) << wrng.IntN(6)
				off := wrng.Int64N((v.Capacity()-bs)/4096) * 4096
				v.Submit(&blockdev.Request{
					Op: op, Offset: off, Size: bs,
					OnComplete: func(r *blockdev.Request, at sim.Time) {
						lats = append(lats, r.Latency(at))
					},
				})
			}
			if i%10 == 9 {
				eng.Run()
			}
		}
		eng.Run()
		return lats
	}

	ghost := run(true)
	fresh := run(false)
	if len(ghost) != len(fresh) {
		t.Fatalf("completion counts differ: ghost run %d, fresh run %d", len(ghost), len(fresh))
	}
	for i := range ghost {
		if ghost[i] != fresh[i] {
			t.Fatalf("latency %d diverged: ghost run %v, fresh run %v — detach left residue",
				i, ghost[i], fresh[i])
		}
	}
}

// TestDetachErrors pins the misuse guards: detaching a volume twice (or
// one never attached) panics, and so does submitting I/O to a detached
// volume.
func TestDetachErrors(t *testing.T) {
	eng, be, va, _ := attachTwo(t)
	be.Detach(va)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("double detach", func() { be.Detach(va) })
	mustPanic("submit after detach", func() {
		va.Submit(&blockdev.Request{Op: blockdev.Write, Offset: 0, Size: 4096})
	})
	_ = eng
}
