// budgetplanner demonstrates Implication #4: because ESSD bandwidth is a
// deterministic provisioned budget (Observation #4), bursty I/O above the
// budget only buys queueing delay. Smoothing the same volume of I/O evenly
// across the timeline meets the same deadline on a smaller (cheaper)
// budget tier.
//
// The workload: 80 MiB of writes arriving each second. Bursty mode issues
// it all at the start of each second; smooth mode spreads it evenly.
package main

import (
	"fmt"

	"essdsim"
)

const (
	ioSize    = 1 << 20 // 1 MiB writes
	iosPerSec = 80      // 80 MiB/s offered load
	seconds   = 5
	totalIOs  = iosPerSec * seconds
)

// run issues totalIOs writes on the device, either bursty (all of a
// second's I/O at its start) or smoothed (evenly paced), and reports the
// p99 completion latency relative to each I/O's intended issue time.
func run(deviceName string, smooth bool) (p99 essdsim.Duration, makespan essdsim.Duration) {
	eng := essdsim.NewEngine()
	dev, err := essdsim.NewDevice(deviceName, eng, 9)
	if err != nil {
		panic(err)
	}
	essdsim.Precondition(dev, true)
	recs := make([]essdsim.TraceRecord, 0, totalIOs)
	for i := 0; i < totalIOs; i++ {
		sec := i / iosPerSec
		var at essdsim.Duration
		if smooth {
			at = essdsim.Duration(i) * essdsim.Second / essdsim.Duration(iosPerSec)
		} else {
			at = essdsim.Duration(sec) * essdsim.Second
		}
		recs = append(recs, essdsim.TraceRecord{
			At:     at,
			Op:     essdsim.OpWrite,
			Offset: int64(i%1024) * (4 << 20),
			Size:   ioSize,
		})
	}
	res := essdsim.ReplayTrace(dev, recs)
	return res.Lat.Percentile(99), res.Elapsed
}

func main() {
	fmt.Println("Implication #4: smooth I/O below the provisioned budget.")
	fmt.Printf("Offered load: %d MiB/s of 1 MiB writes for %d seconds.\n\n", iosPerSec, seconds)
	fmt.Printf("%-28s %-12s %-14s %-12s\n", "volume / arrival shape", "budget", "p99 latency", "makespan")
	for _, tier := range []struct {
		name   string
		budget string
	}{
		{"essd1", "3.0 GB/s"}, // over-provisioned for this load
		{"gp3", "1.0 GB/s"},   // cheaper tier, still 12x the offered load
		{"pl1", "0.35 GB/s"},  // cheapest tier: 4.4x the offered load
	} {
		for _, smooth := range []bool{false, true} {
			shape := "bursty"
			if smooth {
				shape = "smooth"
			}
			p99, makespan := run(tier.name, smooth)
			fmt.Printf("%-28s %-12s %-14v %-12v\n",
				fmt.Sprintf("%s / %s", tier.name, shape), tier.budget, p99, makespan)
		}
	}
	fmt.Println()
	fmt.Println("Reading the table: on the big budget both shapes are fine. On the small")
	fmt.Println("budget the bursty shape queues behind the token bucket (p99 explodes),")
	fmt.Println("while the smoothed shape fits the same work under the same cheap budget.")
}
