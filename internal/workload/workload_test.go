package workload

import (
	"testing"
	"testing/quick"

	"essdsim/internal/blockdev"
	"essdsim/internal/sim"
)

// fakeDevice is a deterministic constant-latency device for generator tests.
type fakeDevice struct {
	eng      *sim.Engine
	lat      sim.Duration
	capacity int64

	reads, writes int
	offsets       []int64
	maxInflight   int
	inflight      int
}

func newFake(lat sim.Duration) *fakeDevice {
	return &fakeDevice{eng: sim.NewEngine(), lat: lat, capacity: 1 << 30}
}

func (f *fakeDevice) Name() string        { return "fake" }
func (f *fakeDevice) Capacity() int64     { return f.capacity }
func (f *fakeDevice) BlockSize() int      { return 4096 }
func (f *fakeDevice) Engine() *sim.Engine { return f.eng }
func (f *fakeDevice) Submit(r *blockdev.Request) {
	blockdev.Validate(f, r)
	r.Issued = f.eng.Now()
	if r.Op == blockdev.Read {
		f.reads++
	} else {
		f.writes++
	}
	f.offsets = append(f.offsets, r.Offset)
	f.inflight++
	if f.inflight > f.maxInflight {
		f.maxInflight = f.inflight
	}
	f.eng.Schedule(f.lat, func() {
		f.inflight--
		if r.OnComplete != nil {
			r.OnComplete(r, f.eng.Now())
		}
	})
}

func TestSpecValidate(t *testing.T) {
	d := newFake(100)
	bad := []Spec{
		{BlockSize: 0, QueueDepth: 1, MaxOps: 1},
		{BlockSize: 1000, QueueDepth: 1, MaxOps: 1}, // misaligned
		{BlockSize: 4096, QueueDepth: 0, MaxOps: 1}, // no QD
		{BlockSize: 4096, QueueDepth: 1},            // no stop condition
		{BlockSize: 4096, QueueDepth: 1, MaxOps: 1, Region: 1 << 40},
		{Pattern: Mixed, BlockSize: 4096, QueueDepth: 1, MaxOps: 1, WriteRatio: 1.5},
	}
	for i, s := range bad {
		if err := s.Validate(d); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
	good := Spec{Pattern: RandRead, BlockSize: 4096, QueueDepth: 4, MaxOps: 10}
	if err := good.Validate(d); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestParsePattern(t *testing.T) {
	for s, want := range map[string]Pattern{
		"randwrite": RandWrite, "write": SeqWrite, "randread": RandRead,
		"read": SeqRead, "randrw": Mixed, "rw": Mixed,
	} {
		got, err := ParsePattern(s)
		if err != nil || got != want {
			t.Errorf("ParsePattern(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePattern("bogus"); err == nil {
		t.Error("bogus pattern accepted")
	}
}

func TestPatternString(t *testing.T) {
	if RandWrite.String() != "randwrite" || SeqRead.String() != "read" {
		t.Fatal("pattern names wrong")
	}
	if !RandWrite.IsWrite() || RandRead.IsWrite() {
		t.Fatal("IsWrite wrong")
	}
}

func TestMaxOpsStops(t *testing.T) {
	d := newFake(100 * sim.Microsecond)
	res := Run(d, Spec{Pattern: RandRead, BlockSize: 4096, QueueDepth: 4, MaxOps: 100})
	if res.Ops != 100 {
		t.Fatalf("ops = %d, want 100", res.Ops)
	}
	if d.reads != 100 || d.writes != 0 {
		t.Fatalf("device saw %d reads %d writes", d.reads, d.writes)
	}
}

func TestTotalBytesStops(t *testing.T) {
	d := newFake(100 * sim.Microsecond)
	res := Run(d, Spec{Pattern: SeqWrite, BlockSize: 8192, QueueDepth: 2, TotalBytes: 80 << 10})
	if res.Bytes != 80<<10 {
		t.Fatalf("bytes = %d, want 80K", res.Bytes)
	}
}

func TestQueueDepthRespected(t *testing.T) {
	d := newFake(1 * sim.Millisecond)
	Run(d, Spec{Pattern: RandRead, BlockSize: 4096, QueueDepth: 7, MaxOps: 100})
	if d.maxInflight != 7 {
		t.Fatalf("max inflight = %d, want 7", d.maxInflight)
	}
}

func TestDurationStops(t *testing.T) {
	d := newFake(1 * sim.Millisecond)
	res := Run(d, Spec{Pattern: RandRead, BlockSize: 4096, QueueDepth: 1,
		Duration: 100 * sim.Millisecond})
	// ~100 ops of 1 ms each.
	if res.Ops < 95 || res.Ops > 105 {
		t.Fatalf("ops = %d, want ≈100", res.Ops)
	}
	if res.Elapsed != 100*sim.Millisecond {
		t.Fatalf("elapsed = %v", res.Elapsed)
	}
}

func TestSequentialOffsetsWrapInRegion(t *testing.T) {
	d := newFake(10 * sim.Microsecond)
	Run(d, Spec{Pattern: SeqRead, BlockSize: 4096, QueueDepth: 1, MaxOps: 600,
		Region: 1 << 20}) // 256 blocks
	for i, off := range d.offsets {
		want := int64(i%256) * 4096
		if off != want {
			t.Fatalf("op %d offset %d, want %d", i, off, want)
		}
	}
}

func TestRandomOffsetsStayInRegion(t *testing.T) {
	d := newFake(10 * sim.Microsecond)
	Run(d, Spec{Pattern: RandWrite, BlockSize: 4096, QueueDepth: 4, MaxOps: 500,
		Region: 1 << 20, Seed: 3})
	distinct := map[int64]bool{}
	for _, off := range d.offsets {
		if off < 0 || off+4096 > 1<<20 {
			t.Fatalf("offset %d outside region", off)
		}
		if off%4096 != 0 {
			t.Fatalf("offset %d misaligned", off)
		}
		distinct[off] = true
	}
	if len(distinct) < 100 {
		t.Fatalf("only %d distinct offsets in 500 random ops", len(distinct))
	}
}

func TestMixedRatio(t *testing.T) {
	d := newFake(10 * sim.Microsecond)
	Run(d, Spec{Pattern: Mixed, WriteRatio: 0.3, BlockSize: 4096, QueueDepth: 8,
		MaxOps: 2000, Seed: 11})
	frac := float64(d.writes) / float64(d.reads+d.writes)
	if frac < 0.25 || frac > 0.35 {
		t.Fatalf("write fraction %.3f, want ≈0.30", frac)
	}
}

func TestWarmupExcluded(t *testing.T) {
	d := newFake(1 * sim.Millisecond)
	res := Run(d, Spec{Pattern: RandRead, BlockSize: 4096, QueueDepth: 1,
		Duration: 100 * sim.Millisecond, Warmup: 50 * sim.Millisecond})
	if res.Ops < 45 || res.Ops > 55 {
		t.Fatalf("recorded ops = %d, want ≈50 after warmup", res.Ops)
	}
	// Throughput uses the recorded window.
	iops := res.IOPS()
	if iops < 900 || iops > 1100 {
		t.Fatalf("IOPS = %.0f, want ≈1000", iops)
	}
}

func TestLatencyRecorded(t *testing.T) {
	d := newFake(500 * sim.Microsecond)
	res := Run(d, Spec{Pattern: RandRead, BlockSize: 4096, QueueDepth: 1, MaxOps: 50})
	s := res.Lat.Summarize()
	if s.Mean != 500*sim.Microsecond {
		t.Fatalf("mean latency %v, want exactly 500µs", s.Mean)
	}
	if res.ReadLat.Count() != 50 || res.WriteLat.Count() != 0 {
		t.Fatal("per-op histograms wrong")
	}
}

func TestSeriesAccumulates(t *testing.T) {
	d := newFake(1 * sim.Millisecond)
	res := Run(d, Spec{Pattern: SeqWrite, BlockSize: 4096, QueueDepth: 1,
		Duration: 2100 * sim.Millisecond})
	if res.Series.Len() < 2 {
		t.Fatalf("series has %d buckets", res.Series.Len())
	}
	if res.WriteSeries.Total() != res.Series.Total() {
		t.Fatal("write series mismatch for write-only workload")
	}
}

func TestDeterminism(t *testing.T) {
	spec := Spec{Pattern: Mixed, WriteRatio: 0.5, BlockSize: 4096, QueueDepth: 8,
		MaxOps: 500, Seed: 42}
	a := Run(newFake(100*sim.Microsecond), spec)
	b := Run(newFake(100*sim.Microsecond), spec)
	if a.Ops != b.Ops || a.Bytes != b.Bytes {
		t.Fatal("same seed produced different results")
	}
	if a.Lat.Summarize() != b.Lat.Summarize() {
		t.Fatal("same seed produced different latency summaries")
	}
}

// Property: for any spec, completed ops equal submitted ops (nothing lost)
// and offsets are always aligned and in range.
func TestOffsetsAlwaysValidProperty(t *testing.T) {
	f := func(qd, bsMul uint8, seed uint64, seq bool) bool {
		d := newFake(50 * sim.Microsecond)
		pattern := RandWrite
		if seq {
			pattern = SeqWrite
		}
		spec := Spec{
			Pattern:    pattern,
			BlockSize:  int64(bsMul%16+1) * 4096,
			QueueDepth: int(qd%16) + 1,
			MaxOps:     200,
			Seed:       seed,
		}
		res := Run(d, spec)
		if res.Ops != 200 {
			return false
		}
		for _, off := range d.offsets {
			if off%spec.BlockSize != 0 || off+spec.BlockSize > d.capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
