package stats

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"essdsim/internal/sim"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(50) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := NewHistogram()
	h.Record(333 * sim.Microsecond)
	if h.Count() != 1 {
		t.Fatal("count")
	}
	if h.Min() != 333*sim.Microsecond || h.Max() != 333*sim.Microsecond {
		t.Fatal("min/max")
	}
	for _, p := range []float64{0, 50, 99, 99.9, 100} {
		got := h.Percentile(p)
		if got != 333*sim.Microsecond {
			t.Fatalf("p%v = %v", p, got)
		}
	}
}

func TestHistogramExactSmallValues(t *testing.T) {
	// Values < subBuckets are stored exactly.
	h := NewHistogram()
	for i := 0; i < 10; i++ {
		h.Record(sim.Duration(i))
	}
	if h.Percentile(50) != 4 && h.Percentile(50) != 5 {
		t.Fatalf("p50 = %v", h.Percentile(50))
	}
}

func TestHistogramPercentileAccuracy(t *testing.T) {
	h := NewHistogram()
	r := rand.New(rand.NewPCG(42, 42))
	n := 100000
	vals := make([]float64, n)
	for i := range vals {
		// Lognormal-ish latencies from 10µs to ~10ms.
		v := 10e3 * (1 + 100*r.Float64()*r.Float64())
		vals[i] = v
		h.Record(sim.Duration(v))
	}
	sort.Float64s(vals)
	for _, p := range []float64{50, 90, 99, 99.9} {
		want := vals[int(p/100*float64(n))-1]
		got := float64(h.Percentile(p))
		rel := (got - want) / want
		if rel < -0.05 || rel > 0.05 {
			t.Errorf("p%v = %.0f, want %.0f (rel err %.3f)", p, got, want, rel)
		}
	}
	gotMean := float64(h.Mean())
	var sum float64
	for _, v := range vals {
		sum += v
	}
	wantMean := sum / float64(n)
	if gotMean < wantMean*0.999 || gotMean > wantMean*1.001 {
		t.Errorf("mean %.0f, want %.0f", gotMean, wantMean)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 1; i <= 100; i++ {
		a.Record(sim.Duration(i * 1000))
	}
	for i := 101; i <= 200; i++ {
		b.Record(sim.Duration(i * 1000))
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("count = %d", a.Count())
	}
	if a.Min() != 1000 || a.Max() != 200000 {
		t.Fatalf("min=%v max=%v", a.Min(), a.Max())
	}
	p50 := float64(a.Percentile(50))
	if p50 < 95000 || p50 > 106000 {
		t.Fatalf("p50 = %v", p50)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Record(500)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset did not clear")
	}
	h.Record(100)
	if h.Min() != 100 {
		t.Fatalf("min after reset = %v", h.Min())
	}
}

func TestBucketIndexMonotonic(t *testing.T) {
	prev := -1
	for v := int64(0); v < 1<<22; v += 97 {
		i := bucketIndex(v)
		if i < prev {
			t.Fatalf("bucketIndex not monotonic at %d: %d < %d", v, i, prev)
		}
		prev = i
	}
}

// Property: for any value, the bucket midpoint is within ~6% of the value
// (twice the bucket resolution), so percentile error is bounded.
func TestBucketMidClose(t *testing.T) {
	f := func(raw uint32) bool {
		v := int64(raw)
		mid := bucketMid(bucketIndex(v))
		if v < subBuckets {
			return mid == v
		}
		diff := float64(mid-v) / float64(v)
		return diff > -0.07 && diff < 0.07
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: percentile is monotonic in p and bounded by [min, max].
func TestPercentileMonotonic(t *testing.T) {
	f := func(vals []uint32) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range vals {
			h.Record(sim.Duration(v))
		}
		last := sim.Duration(-1)
		for _, p := range []float64{0, 10, 25, 50, 75, 90, 99, 99.9, 100} {
			q := h.Percentile(p)
			if q < last || q < h.Min() || q > h.Max() {
				return false
			}
			last = q
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryString(t *testing.T) {
	h := NewHistogram()
	h.Record(100 * sim.Microsecond)
	s := h.Summarize()
	if s.Count != 1 {
		t.Fatal("summary count")
	}
	if s.String() == "" {
		t.Fatal("summary string empty")
	}
}

func TestThroughputSeriesBasic(t *testing.T) {
	ts := NewThroughputSeries(sim.Second)
	ts.Add(0, 1000)
	ts.Add(sim.Time(sim.Second/2), 1000)
	ts.Add(sim.Time(3*sim.Second/2), 500)
	if ts.Len() != 2 {
		t.Fatalf("len = %d", ts.Len())
	}
	if ts.Rate(0) != 2000 {
		t.Fatalf("rate0 = %v", ts.Rate(0))
	}
	if ts.Rate(1) != 500 {
		t.Fatalf("rate1 = %v", ts.Rate(1))
	}
	if ts.Total() != 2500 {
		t.Fatalf("total = %d", ts.Total())
	}
	if ts.Rate(99) != 0 || ts.Bytes(-1) != 0 {
		t.Fatal("out-of-range buckets must be zero")
	}
}

func TestThroughputSeriesMeanRate(t *testing.T) {
	ts := NewThroughputSeries(sim.Second)
	for i := 0; i < 10; i++ {
		ts.Add(sim.Time(i)*sim.Time(sim.Second), 100)
	}
	if got := ts.MeanRate(0, 10); got != 100 {
		t.Fatalf("mean rate = %v", got)
	}
	if got := ts.MeanRate(-5, 100); got != 100 {
		t.Fatalf("clamped mean rate = %v", got)
	}
	if got := ts.MeanRate(5, 5); got != 0 {
		t.Fatalf("empty range = %v", got)
	}
}

func TestKneeIndex(t *testing.T) {
	ts := NewThroughputSeries(sim.Second)
	// 20 buckets at 1000 B/s, then 20 at 100 B/s.
	for i := 0; i < 40; i++ {
		rate := int64(1000)
		if i >= 20 {
			rate = 100
		}
		ts.Add(sim.Time(i)*sim.Time(sim.Second), rate)
	}
	knee := ts.KneeIndex(0.5, 3)
	if knee < 17 || knee > 21 {
		t.Fatalf("knee = %d, want ~20", knee)
	}
	// No knee in a flat series.
	flat := NewThroughputSeries(sim.Second)
	for i := 0; i < 40; i++ {
		flat.Add(sim.Time(i)*sim.Time(sim.Second), 1000)
	}
	if k := flat.KneeIndex(0.5, 3); k != -1 {
		t.Fatalf("flat knee = %d, want -1", k)
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatal("n")
	}
	if w.Mean() != 5 {
		t.Fatalf("mean = %v", w.Mean())
	}
	if v := w.Var(); v < 4.5 || v > 4.7 {
		t.Fatalf("var = %v", v) // sample variance = 32/7 ≈ 4.571
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Add(100)
	c.Add(200)
	if c.Ops != 2 || c.Bytes != 300 {
		t.Fatalf("counter = %+v", c)
	}
}
