package netsim

import (
	"testing"

	"essdsim/internal/sim"
)

func testNet(eng *sim.Engine) *Network {
	return New(eng, Config{
		HopLatency: sim.Const{V: 50 * sim.Microsecond},
		UplinkBW:   1e9,
		DownlinkBW: 2e9,
	}, sim.NewRNG(1, 1))
}

func TestSendUpTiming(t *testing.T) {
	eng := sim.NewEngine()
	n := testNet(eng)
	var at sim.Time
	n.SendUp(1e6, func() { at = eng.Now() }) // 1 MB at 1 GB/s = 1 ms, + 50µs hop
	eng.Run()
	want := sim.Time(sim.Millisecond + 50*sim.Microsecond)
	if at != want {
		t.Fatalf("SendUp done at %v, want %v", sim.Duration(at), sim.Duration(want))
	}
	if n.MovedUp() != 1e6 {
		t.Fatalf("moved up = %d", n.MovedUp())
	}
}

func TestSendDownUsesDownlink(t *testing.T) {
	eng := sim.NewEngine()
	n := testNet(eng)
	var at sim.Time
	n.SendDown(1e6, func() { at = eng.Now() }) // 1 MB at 2 GB/s = 0.5 ms + hop
	eng.Run()
	want := sim.Time(sim.Millisecond/2 + 50*sim.Microsecond)
	if at != want {
		t.Fatalf("SendDown done at %v, want %v", sim.Duration(at), sim.Duration(want))
	}
}

func TestDirectionsIndependent(t *testing.T) {
	eng := sim.NewEngine()
	n := testNet(eng)
	var up, down sim.Time
	n.SendUp(1e6, func() { up = eng.Now() })
	n.SendDown(1e6, func() { down = eng.Now() })
	eng.Run()
	// Full duplex: downlink traffic does not queue behind uplink.
	if down > up {
		t.Fatalf("downlink serialized behind uplink: up=%v down=%v",
			sim.Duration(up), sim.Duration(down))
	}
}

func TestUplinkSerializes(t *testing.T) {
	eng := sim.NewEngine()
	n := testNet(eng)
	var second sim.Time
	n.SendUp(1e6, nil)
	n.SendUp(1e6, func() { second = eng.Now() })
	eng.Run()
	if second < sim.Time(2*sim.Millisecond) {
		t.Fatalf("second transfer at %v, want >= 2ms", sim.Duration(second))
	}
}

func TestHop(t *testing.T) {
	eng := sim.NewEngine()
	n := testNet(eng)
	var at sim.Time
	n.Hop(func() { at = eng.Now() })
	eng.Run()
	if at != sim.Time(50*sim.Microsecond) {
		t.Fatalf("hop at %v", sim.Duration(at))
	}
	if d := n.HopSample(); d != 50*sim.Microsecond {
		t.Fatalf("hop sample %v", d)
	}
}

func TestBacklogs(t *testing.T) {
	eng := sim.NewEngine()
	n := testNet(eng)
	n.SendUp(1e6, nil)
	if n.UplinkBacklog() <= 0 {
		t.Fatal("uplink backlog not visible")
	}
	if n.DownlinkBacklog() != 0 {
		t.Fatal("downlink backlog should be zero")
	}
	eng.Run()
}

func TestJitteredHops(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, Config{
		HopLatency: sim.LogNormal{Median: 50 * sim.Microsecond, Sigma: 0.3},
		UplinkBW:   1e9,
		DownlinkBW: 1e9,
	}, sim.NewRNG(2, 2))
	seen := map[sim.Duration]bool{}
	for i := 0; i < 20; i++ {
		seen[n.HopSample()] = true
	}
	if len(seen) < 10 {
		t.Fatalf("hop latency not jittered: %d distinct values", len(seen))
	}
}
