// fleetstudy runs the fleet tenant-packing study: the provider-side
// question the unwritten contract raises at cloud scale. A catalog of
// tenant volumes — most steady mixed-I/O victims, a few bursty all-write
// aggressors — must be placed onto a limited pool of shared storage
// backends, and the placement decides who shares a cluster, a fabric, and
// a cleaner with whom.
//
// Four policies place the identical catalog:
//
//   - first-fit packs by nominal rate into the fewest backends (densest),
//   - spread round-robins across every backend (widest at equal count),
//   - best-fit packs write churn tightly by residual write budget,
//   - interference-aware balances write load and refuses to co-locate
//     aggressors with each other.
//
// Every materialized backend simulates independently (in parallel), and
// the study compares the policies on SLO violations, utilization, and the
// worst victim's tail inflation versus running alone — the noisy-neighbor
// tax, now as a fleet-wide placement decision.
package main

import (
	"context"
	"fmt"
	"os"

	"essdsim"
)

func main() {
	spec := essdsim.FleetSpec{
		// Twelve tenants, three of them aggressors, on up to three
		// backends: dense enough that careless placement stacks
		// aggressors, wide enough that a careful one need not.
		Demands:  essdsim.SyntheticFleetDemands(12, 3),
		Backends: 3,
		SLOP999:  5 * essdsim.Millisecond,
		Seed:     7,
	}
	rep, err := essdsim.RunFleet(context.Background(), spec)
	if err != nil {
		panic(err)
	}
	essdsim.FormatFleetReport(os.Stdout, rep)

	fmt.Println()
	fmt.Println("What the placement decision costs, policy by policy:")
	for _, pr := range rep.Policies {
		// Worst *victim* inflation: the fleet-wide worst can be an
		// aggressor's own tail, which is nobody's noisy-neighbor story.
		worst, worstX := "", 0.0
		for _, t := range pr.Tenants {
			if t.WriteRatioPct < 100 && t.P999Inflation > worstX {
				worst, worstX = t.Name, t.P999Inflation
			}
		}
		switch {
		case pr.ThrottledTenants > 0:
			fmt.Printf("  %-13s %d tenants violate p99.9, %d throttled by pooled debt that is mostly not theirs\n",
				pr.Policy, pr.P999Violations, pr.ThrottledTenants)
		case worst != "":
			fmt.Printf("  %-13s %d tenants violate p99.9; worst victim %s runs %.1fx its solo tail\n",
				pr.Policy, pr.P999Violations, worst, worstX)
		default:
			fmt.Printf("  %-13s %d tenants violate p99.9; no victim measurably inflated\n",
				pr.Policy, pr.P999Violations)
		}
	}

	fmt.Println()
	ff, ia := rep.Policy("first-fit"), rep.Policy("interference")
	fmt.Printf("Same tenants, same hardware, same density: first-fit produces %d p99.9 violations,\n", ff.P999Violations)
	fmt.Printf("interference-aware placement %d. The gap is pure placement policy.\n", ia.P999Violations)
}
