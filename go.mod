module essdsim

go 1.22
