package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("wrong order: %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %d, want 30", e.Now())
	}
}

func TestEngineFIFOAmongSameTime(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits []Time
	e.Schedule(10, func() {
		hits = append(hits, e.Now())
		e.Schedule(5, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 10 || hits[1] != 15 {
		t.Fatalf("nested schedule times: %v", hits)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(Duration(i)*10, func() { count++ })
	}
	e.RunUntil(50)
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if e.Now() != 50 {
		t.Fatalf("now = %d, want 50", e.Now())
	}
	e.RunFor(50)
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
}

func TestEnginePastEventClamped(t *testing.T) {
	e := NewEngine()
	e.Schedule(100, func() {
		// Scheduling in the past must execute at current time, not rewind.
		e.At(10, func() {
			if e.Now() != 100 {
				t.Errorf("past event ran at %d, want clamped to 100", e.Now())
			}
		})
	})
	e.Run()
}

func TestEngineNegativeDelay(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(-5, func() { ran = true })
	e.Run()
	if !ran || e.Now() != 0 {
		t.Fatalf("negative delay: ran=%v now=%d", ran, e.Now())
	}
}

func TestServerSingleSlotQueueing(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "s", 1)
	var done []Time
	for i := 0; i < 3; i++ {
		s.Visit(10, func() { done = append(done, e.Now()) })
	}
	e.Run()
	want := []Time{10, 20, 30}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completions %v, want %v", done, want)
		}
	}
	if s.Served() != 3 {
		t.Fatalf("served = %d", s.Served())
	}
	if s.BusyTime() != 30 {
		t.Fatalf("busyTime = %d", s.BusyTime())
	}
}

func TestServerParallelSlots(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "s", 2)
	var done []Time
	for i := 0; i < 4; i++ {
		s.Visit(10, func() { done = append(done, e.Now()) })
	}
	e.Run()
	// Two in parallel finish at 10, next two at 20.
	want := []Time{10, 10, 20, 20}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completions %v, want %v", done, want)
		}
	}
}

func TestServerZeroService(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "s", 1)
	n := 0
	s.Visit(0, func() { n++ })
	s.Visit(-5, func() { n++ })
	e.Run()
	if n != 2 {
		t.Fatalf("n = %d", n)
	}
}

func TestPipeSerializesTransfers(t *testing.T) {
	e := NewEngine()
	p := NewPipe(e, "p", 1000) // 1000 B/s => 1 byte per ms
	var done []Time
	p.Transfer(1000, func() { done = append(done, e.Now()) }) // 1s
	p.Transfer(500, func() { done = append(done, e.Now()) })  // +0.5s
	e.Run()
	if done[0] != Time(Second) {
		t.Fatalf("first transfer at %v", done[0])
	}
	if done[1] != Time(Second+Second/2) {
		t.Fatalf("second transfer at %v", done[1])
	}
	if p.Moved() != 1500 {
		t.Fatalf("moved = %d", p.Moved())
	}
}

func TestPipeIdleGap(t *testing.T) {
	e := NewEngine()
	p := NewPipe(e, "p", 1000)
	var second Time
	p.Transfer(100, nil) // done at 0.1s
	e.Schedule(Duration(Second), func() {
		// Pipe idle since 0.1s; a new transfer starts now.
		p.Transfer(100, func() { second = e.Now() })
	})
	e.Run()
	if second != Time(Second+Second/10) {
		t.Fatalf("second done at %v, want 1.1s", second)
	}
}

func TestPipeBacklog(t *testing.T) {
	e := NewEngine()
	p := NewPipe(e, "p", 1000)
	if p.Backlog() != 0 {
		t.Fatal("idle pipe has backlog")
	}
	p.Transfer(1000, nil)
	if got := p.Backlog(); got != Duration(Second) {
		t.Fatalf("backlog = %v, want 1s", got)
	}
	e.Run()
	if p.Backlog() != 0 {
		t.Fatal("drained pipe has backlog")
	}
}

func TestPipeZeroBytes(t *testing.T) {
	e := NewEngine()
	p := NewPipe(e, "p", 1000)
	fired := false
	p.Transfer(0, func() { fired = true })
	e.Run()
	if !fired || e.Now() != 0 {
		t.Fatalf("zero transfer: fired=%v now=%d", fired, e.Now())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(1, 2)
	b := NewRNG(1, 2)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	da := NewRNG(1, 2).Derive("net")
	db := NewRNG(1, 2).Derive("net")
	for i := 0; i < 100; i++ {
		if da.Uint64() != db.Uint64() {
			t.Fatal("derived RNGs diverged")
		}
	}
	dc := NewRNG(1, 2).Derive("flash")
	same := true
	for i := 0; i < 10; i++ {
		if da.Uint64() != dc.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different labels produced identical streams")
	}
}

func TestLogNormalMoments(t *testing.T) {
	r := NewRNG(7, 7)
	d := LogNormal{Median: 100 * Microsecond, Sigma: 0.25}
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		sum += float64(d.Sample(r))
	}
	got := sum / float64(n)
	want := float64(d.Mean())
	if got < want*0.95 || got > want*1.05 {
		t.Fatalf("empirical mean %.0f, analytic %.0f", got, want)
	}
}

func TestSpikedTail(t *testing.T) {
	r := NewRNG(9, 9)
	d := Spiked{Base: Const{100}, P: 0.01, Spike: Const{10000}}
	spikes := 0
	n := 50000
	for i := 0; i < n; i++ {
		if d.Sample(r) > 1000 {
			spikes++
		}
	}
	frac := float64(spikes) / float64(n)
	if frac < 0.005 || frac > 0.02 {
		t.Fatalf("spike fraction %.4f, want ~0.01", frac)
	}
	if d.Mean() != 200 {
		t.Fatalf("mean = %v, want 200", d.Mean())
	}
}

func TestShifted(t *testing.T) {
	r := NewRNG(1, 1)
	d := Shifted{Offset: 500, Base: Const{100}}
	if d.Sample(r) != 600 || d.Mean() != 600 {
		t.Fatal("shifted distribution wrong")
	}
}

// Property: pipe completion times are non-decreasing and total busy time
// equals bytes/bandwidth regardless of the submission pattern.
func TestPipeCompletionMonotonic(t *testing.T) {
	f := func(sizes []uint16) bool {
		e := NewEngine()
		p := NewPipe(e, "p", 1e6)
		var last Time = -1
		ok := true
		for _, s := range sizes {
			n := int64(s)
			p.Transfer(n, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a k-slot server never has more than k jobs in service and
// serves every submitted job exactly once.
func TestServerConservation(t *testing.T) {
	f := func(services []uint8, slots uint8) bool {
		k := int(slots%4) + 1
		e := NewEngine()
		s := NewServer(e, "s", k)
		completed := 0
		for _, sv := range services {
			s.Visit(Duration(sv), func() { completed++ })
			if s.Busy() > k {
				return false
			}
		}
		e.Run()
		return completed == len(services) && s.Served() == uint64(len(services))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ns"},
		{333 * Microsecond, "333.0µs"},
		{1400 * Microsecond, "1.40ms"},
		{2 * Second, "2.000s"},
		{-333 * Microsecond, "-333.0µs"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestEngineDaemonEvents(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	var tick func()
	tick = func() {
		ticks = append(ticks, e.Now())
		if e.Live() > 0 {
			e.ScheduleDaemon(10, tick)
		}
	}
	e.ScheduleDaemon(10, tick)
	var last Time
	e.Schedule(35, func() { last = e.Now() })
	e.Run()
	// The daemon fires at 10, 20, 30 while the workload event is pending;
	// the tick scheduled for 40 is abandoned, and the clock stops at the
	// last live event.
	if want := []Time{10, 20, 30}; len(ticks) != len(want) {
		t.Fatalf("daemon ticks at %v, want %v", ticks, want)
	} else {
		for i, w := range want {
			if ticks[i] != w {
				t.Fatalf("daemon ticks at %v, want %v", ticks, want)
			}
		}
	}
	if last != 35 || e.Now() != 35 {
		t.Fatalf("run ended at %d (workload at %d), want 35", e.Now(), last)
	}
	if e.Pending() != 0 {
		// The abandoned daemon at t=40 is dropped by Run's live check but
		// remains pending until Reset.
		if e.Pending() != 1 || e.Live() != 0 {
			t.Fatalf("pending %d live %d after run, want 1 daemon leftover", e.Pending(), e.Live())
		}
	}
}

func TestEngineDaemonOnlyRunReturns(t *testing.T) {
	e := NewEngine()
	fired := false
	e.ScheduleDaemon(5, func() { fired = true })
	e.Run() // no live work: must return immediately without executing daemons
	if fired {
		t.Fatal("daemon executed with no live work")
	}
	if e.Now() != 0 {
		t.Fatalf("clock advanced to %d with no live work", e.Now())
	}
	e.Reset()
	if e.Pending() != 0 || e.Live() != 0 {
		t.Fatalf("reset left pending=%d live=%d", e.Pending(), e.Live())
	}
}
