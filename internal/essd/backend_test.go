package essd

import (
	"testing"

	"essdsim/internal/blockdev"
	"essdsim/internal/sim"
	"essdsim/internal/workload"
)

// attachTwo builds one shared backend with two attached volumes.
func attachTwo(t *testing.T) (*sim.Engine, *Backend, *ESSD, *ESSD) {
	t.Helper()
	eng := sim.NewEngine()
	bcfg, vcfg := testConfig().Split()
	be := NewBackend(eng, bcfg, sim.NewRNG(1, 2))
	a := vcfg
	a.Name = "vol-a"
	b := vcfg
	b.Name = "vol-b"
	va := be.Attach(a, sim.NewRNG(3, 4))
	vb := be.Attach(b, sim.NewRNG(5, 6))
	return eng, be, va, vb
}

func write(t *testing.T, eng *sim.Engine, dev blockdev.Device, off, size int64) {
	t.Helper()
	done := false
	dev.Submit(&blockdev.Request{
		Op: blockdev.Write, Offset: off, Size: size,
		OnComplete: func(*blockdev.Request, sim.Time) { done = true },
	})
	eng.Run()
	if !done {
		t.Fatal("write did not complete")
	}
}

// TestBackendSharedInstances checks that attached volumes really share the
// one cluster and network, while the single-volume constructor still gets
// a private pair.
func TestBackendSharedInstances(t *testing.T) {
	_, be, va, vb := attachTwo(t)
	if va.Cluster() != vb.Cluster() || va.Cluster() != be.Cluster() {
		t.Fatal("attached volumes do not share the backend cluster")
	}
	if va.Backend() != vb.Backend() || va.Backend() != be {
		t.Fatal("attached volumes do not share the backend")
	}
	if len(be.Volumes()) != 2 {
		t.Fatalf("backend has %d volumes, want 2", len(be.Volumes()))
	}

	e1 := New(sim.NewEngine(), testConfig(), sim.NewRNG(1, 1))
	e2 := New(sim.NewEngine(), testConfig(), sim.NewRNG(1, 1))
	if e1.Cluster() == e2.Cluster() {
		t.Fatal("single-volume constructor shared a cluster")
	}
	if len(e1.Backend().Volumes()) != 1 {
		t.Fatal("single-volume backend should hold exactly its own volume")
	}
}

// TestBackendDebtPools checks the Obs#2 coupling: overwrite debt from both
// volumes lands in one pooled cleaner backlog that each volume's flow
// limiter observes, while per-volume accounting attributes the
// contributions.
func TestBackendDebtPools(t *testing.T) {
	eng, be, va, vb := attachTwo(t)
	va.Precondition(1)
	vb.Precondition(1)
	const n = 1 << 20
	write(t, eng, va, 0, n) // overwrite: n bytes of debt from vol-a
	write(t, eng, vb, 0, n) // n more from vol-b
	write(t, eng, vb, n, n) // and another n from vol-b
	debt := be.Debt()
	if debt <= 0 || debt > 3*n {
		t.Fatalf("pooled debt = %d, want in (0, %d]", debt, 3*n)
	}
	stats := be.VolumeStats()
	if stats[0].Name != "vol-a" || stats[1].Name != "vol-b" {
		t.Fatalf("volume stats order: %q, %q", stats[0].Name, stats[1].Name)
	}
	if stats[0].DebtAdded != n {
		t.Fatalf("vol-a debt = %d, want %d", stats[0].DebtAdded, n)
	}
	if stats[1].DebtAdded != 2*n {
		t.Fatalf("vol-b debt = %d, want %d", stats[1].DebtAdded, 2*n)
	}
	if got := va.BackendUse().DebtAdded; got != n {
		t.Fatalf("vol-a BackendUse debt = %d, want %d", got, n)
	}
}

// TestBackendPerVolumeAccounting checks that cluster operations and fabric
// bytes are attributed to the issuing volume only.
func TestBackendPerVolumeAccounting(t *testing.T) {
	eng, be, va, vb := attachTwo(t)
	va.Precondition(1)
	vb.Precondition(1)
	const n = 256 << 10
	write(t, eng, va, 0, n)
	stats := be.VolumeStats()
	if stats[0].WriteBytes != n || stats[0].Writes == 0 {
		t.Fatalf("vol-a cluster accounting = %+v", stats[0])
	}
	if stats[1].WriteBytes != 0 || stats[1].Writes != 0 {
		t.Fatalf("idle vol-b charged with cluster writes: %+v", stats[1])
	}
	if stats[0].FabricUp != n {
		t.Fatalf("vol-a fabric up = %d, want %d", stats[0].FabricUp, n)
	}
	if stats[1].FabricUp != 0 {
		t.Fatalf("idle vol-b charged with fabric bytes: %d", stats[1].FabricUp)
	}
	// The shared network moved exactly the sum of the flows.
	if be.Network().MovedUp() != stats[0].FabricUp+stats[1].FabricUp {
		t.Fatalf("network total %d != flow sum", be.Network().MovedUp())
	}
	_ = vb
}

// TestCrossTenantThrottle checks that one volume's churn alone can push a
// quiet volume over its flow-limiter threshold: the cross-tenant face of
// Observation #2. The quiet volume provisions a tighter spare margin, so
// the neighbor's pooled debt crosses its threshold first.
func TestCrossTenantThrottle(t *testing.T) {
	eng := sim.NewEngine()
	bcfg, vcfg := testConfig().Split()
	be := NewBackend(eng, bcfg, sim.NewRNG(1, 2))
	a := vcfg
	a.Name = "vol-a"
	b := vcfg
	b.Name = "vol-b"
	b.SpareFrac = 0.05 // ≈54 MB of pooled debt engages vol-b's limiter
	va := be.Attach(a, sim.NewRNG(3, 4))
	vb := be.Attach(b, sim.NewRNG(5, 6))
	va.Precondition(1)
	vb.Precondition(1)
	// vol-a floods overwrites; the cleaner (0.5 GB/s) drains some between
	// writes but the accumulated pool still dwarfs vol-b's margin while
	// staying under vol-a's own 512 MiB threshold.
	const chunk = 1 << 20
	for off := int64(0); off < 400<<20; off += chunk {
		write(t, eng, va, off%(1<<30), chunk)
	}
	if va.Throttled() {
		t.Fatal("aggressor throttled below its own threshold")
	}
	if vb.Throttled() {
		t.Fatal("quiet volume throttled before observing any write")
	}
	// One small write makes vol-b's limiter observe the pooled debt.
	write(t, eng, vb, 0, 4096)
	if !vb.Throttled() {
		t.Fatalf("quiet volume not throttled by neighbor debt (pooled %d)", va.Backend().Debt())
	}
	if vb.BackendUse().DebtAdded != 4096 {
		t.Fatalf("vol-b contributed %d, want 4096", vb.BackendUse().DebtAdded)
	}
}

// TestAttachValidates checks Attach rejects volumes whose block geometry
// does not fit the backend's placement chunk.
func TestAttachValidates(t *testing.T) {
	eng := sim.NewEngine()
	bcfg, vcfg := testConfig().Split()
	be := NewBackend(eng, bcfg, nil)
	vcfg.BlockSize = 3000 // not a divisor of the chunk
	defer func() {
		if recover() == nil {
			t.Fatal("Attach accepted a volume whose block size does not divide the chunk")
		}
	}()
	be.Attach(vcfg, nil)
}

// TestBackendAccountingInvariant drives a three-tenant mix through one
// shared backend and asserts that the per-volume attribution is complete:
// summing VolumeStats over every attached volume reproduces the
// backend-wide cluster totals (primary operations and payload bytes per
// node) and the fabric totals (bytes moved per direction). Nothing a
// tenant does may escape its flow accounting — the fleet suite's
// per-backend reports are built on exactly this bookkeeping.
func TestBackendAccountingInvariant(t *testing.T) {
	eng := sim.NewEngine()
	bcfg, vcfg := testConfig().Split()
	be := NewBackend(eng, bcfg, sim.NewRNG(11, 12))
	var tenants []workload.Tenant
	for i, shape := range []struct {
		name  string
		ratio float64
		rate  float64
		bs    int64
	}{
		{"steady", 0.5, 400, 16 << 10},
		{"reader", 0, 300, 64 << 10},
		{"churner", 1, 600, 128 << 10},
	} {
		cfg := vcfg
		cfg.Name = shape.name
		vol := be.Attach(cfg, sim.NewRNG(uint64(20+i), uint64(30+i)))
		vol.Precondition(1)
		tenants = append(tenants, workload.Tenant{
			Name: shape.name,
			Dev:  vol,
			Open: &workload.OpenSpec{
				Pattern:    workload.Mixed,
				BlockSize:  shape.bs,
				WriteRatio: shape.ratio,
				RatePerSec: shape.rate,
				Arrival:    workload.Poisson,
				Count:      400,
				Seed:       uint64(100 + i),
			},
		})
	}
	results := workload.RunTenants(eng, tenants)
	for _, r := range results {
		if r.Open.Ops == 0 {
			t.Fatalf("tenant %s completed nothing", r.Name)
		}
	}

	var flow VolumeStats
	var debtAdded int64
	for _, vs := range be.VolumeStats() {
		flow.Writes += vs.Writes
		flow.Reads += vs.Reads
		flow.WriteBytes += vs.WriteBytes
		flow.ReadBytes += vs.ReadBytes
		flow.FabricUp += vs.FabricUp
		flow.FabricDown += vs.FabricDown
		debtAdded += vs.DebtAdded
	}

	cl := be.Cluster()
	var nodeWrites, nodeReads uint64
	var nodeWriteBytes, nodeReadBytes int64
	for i := 0; i < cl.NumNodes(); i++ {
		ns := cl.NodeStats(i)
		nodeWrites += ns.Writes
		nodeReads += ns.Reads
		nodeWriteBytes += ns.WriteBytes
		nodeReadBytes += ns.ReadBytes
	}
	if flow.Writes != nodeWrites || flow.Reads != nodeReads {
		t.Errorf("cluster ops: flows %d/%d writes/reads, nodes %d/%d",
			flow.Writes, flow.Reads, nodeWrites, nodeReads)
	}
	if flow.WriteBytes != nodeWriteBytes || flow.ReadBytes != nodeReadBytes {
		t.Errorf("cluster bytes: flows %d/%d, nodes %d/%d",
			flow.WriteBytes, flow.ReadBytes, nodeWriteBytes, nodeReadBytes)
	}

	net := be.Network()
	if flow.FabricUp != net.MovedUp() || flow.FabricDown != net.MovedDown() {
		t.Errorf("fabric bytes: flows %d/%d up/down, network %d/%d",
			flow.FabricUp, flow.FabricDown, net.MovedUp(), net.MovedDown())
	}

	// The pooled debt is the flows' contributions minus what the cleaner
	// drained — never more than was attributed.
	if debtAdded <= 0 {
		t.Error("write churn attributed no cleaning debt")
	}
	if got := be.Debt(); got > debtAdded {
		t.Errorf("pooled debt %d exceeds attributed contributions %d", got, debtAdded)
	}
}
