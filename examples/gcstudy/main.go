// gcstudy reproduces Observation #2 at reduced scale: sustained random
// writes collapse the local SSD's throughput once GC engages near one full
// device write, while the ESSD sustains its budget far longer (ESSD-1) or
// indefinitely (ESSD-2) because the cloud backend cleans in the background.
package main

import (
	"fmt"

	"essdsim"
)

func study(name string, capMultiple float64) {
	eng := essdsim.NewEngine()
	dev, err := essdsim.NewDevice(name, eng, 7)
	if err != nil {
		panic(err)
	}
	res := essdsim.Run(dev, essdsim.Workload{
		Pattern:    essdsim.RandWrite,
		BlockSize:  128 << 10,
		QueueDepth: 32,
		TotalBytes: int64(capMultiple * float64(dev.Capacity())),
		Seed:       7,
	})
	fmt.Printf("\n%s — wrote %.1f GiB (%.1fx capacity) in %v\n",
		dev.Name(), float64(res.Bytes)/(1<<30),
		float64(res.Bytes)/float64(dev.Capacity()), res.Elapsed)
	// Print the per-second throughput timeline, decimated.
	rates := res.Series.Rates()
	fmt.Print("  GB/s: ")
	step := len(rates)/16 + 1
	for i := 0; i < len(rates); i += step {
		fmt.Printf("%.1f ", rates[i]/1e9)
	}
	fmt.Println()
	knee := res.Series.KneeIndex(0.55, 3)
	if knee < 0 {
		fmt.Println("  no throughput cliff: GC impact disappears (Observation #2)")
		return
	}
	var written int64
	for i := 0; i <= knee; i++ {
		written += res.Series.Bytes(i)
	}
	fmt.Printf("  throughput cliff after writing %.2fx capacity\n",
		float64(written)/float64(dev.Capacity()))
	if t, ok := dev.(interface{ Throttled() bool }); ok && t.Throttled() {
		fmt.Println("  cause: provider flow limiter engaged (cleaning debt exceeded spare capacity)")
	}
}

func main() {
	fmt.Println("Observation #2: the performance impact of GC appears much later or disappears.")
	fmt.Println("Writing 2x each device's capacity with random 128K writes at QD32...")
	study("ssd", 2)   // knee near 1x capacity
	study("essd1", 2) // no knee yet at 2x (paper: 2.55x)
	study("essd2", 2) // never
	fmt.Println("\nImplication #2: GC-mitigation machinery built for local SSDs (tail-tolerant")
	fmt.Println("redundancy, GC-aware scheduling) buys little on ESSDs — and its costs remain.")
}
