package ssd

import (
	"testing"

	"essdsim/internal/blockdev"
	"essdsim/internal/sim"
)

// runLoop drives a closed loop of count I/Os at the given depth and
// returns mean latency and elapsed time.
func runLoop(eng *sim.Engine, d blockdev.Device, op blockdev.Op,
	qd int, count int, size int64, offsets func(i int) int64) (mean sim.Duration, elapsed sim.Duration) {
	start := eng.Now()
	var total sim.Duration
	done, next, inflight := 0, 0, 0
	var submit func()
	submit = func() {
		for inflight < qd && next < count {
			i := next
			next++
			inflight++
			d.Submit(&blockdev.Request{
				Op: op, Offset: offsets(i), Size: size,
				OnComplete: func(r *blockdev.Request, at sim.Time) {
					total += r.Latency(at)
					done++
					inflight--
					submit()
				},
			})
		}
	}
	submit()
	eng.Run()
	return total / sim.Duration(done), eng.Now().Sub(start)
}

// TestPureReadRateCapsAtHostLink verifies the Figure 5 pure-read endpoint:
// random large reads saturate near the 3.5 GB/s host link, not the (higher)
// aggregate die bandwidth.
func TestPureReadRateCapsAtHostLink(t *testing.T) {
	eng, s := newSmall(t)
	s.Precondition(1.0, false)
	const count = 3000
	const size = 128 << 10
	rng := sim.NewRNG(3, 3)
	_, elapsed := runLoop(eng, s, blockdev.Read, 32, count, size, func(i int) int64 {
		return rng.Int64N(s.Capacity()/size) * size
	})
	pureRead := float64(count*size) / elapsed.Seconds()
	if pureRead < 3.0e9 || pureRead > 3.8e9 {
		t.Fatalf("pure read rate %.2f GB/s, want ≈3.5 (host-link bound)", pureRead/1e9)
	}
}

// TestGCInflatesTailLatency verifies that on a full, churned device the
// write tail (p99.9) stretches far beyond the buffered-write average — the
// unpredictability the paper's Obs#2 contrasts the ESSD against.
func TestGCInflatesTailLatency(t *testing.T) {
	eng, s := newSmall(t)
	s.Precondition(1.0, true)
	const size = 32 << 10
	rng := sim.NewRNG(5, 5)
	var lats []sim.Duration
	count := int(3 * s.Capacity() / 2 / size)
	done, next, inflight := 0, 0, 0
	var submit func()
	submit = func() {
		for inflight < 16 && next < count {
			next++
			inflight++
			off := rng.Int64N(s.Capacity()/size) * size
			s.Submit(&blockdev.Request{
				Op: blockdev.Write, Offset: off, Size: size,
				OnComplete: func(r *blockdev.Request, at sim.Time) {
					lats = append(lats, r.Latency(at))
					done++
					inflight--
					submit()
				},
			})
		}
	}
	submit()
	eng.Run()
	if s.FTLWriteAmp() <= 1.0 {
		t.Fatal("churn did not trigger GC")
	}
	var sum sim.Duration
	max := sim.Duration(0)
	for _, l := range lats {
		sum += l
		if l > max {
			max = l
		}
	}
	mean := sum / sim.Duration(len(lats))
	if max < 20*mean {
		t.Fatalf("GC tail max %v only %vx the mean %v; expected large spikes",
			max, max/mean, mean)
	}
}

// TestWriteAmpGrowsWithUtilization: fuller devices pay more GC.
func TestWriteAmpGrowsWithUtilization(t *testing.T) {
	churn := func(fill float64) float64 {
		eng := sim.NewEngine()
		cfg := DefaultConfig(256 << 20)
		s := New(eng, cfg, sim.NewRNG(7, 7))
		s.Precondition(fill, true)
		rng := sim.NewRNG(8, 8)
		const size = 32 << 10
		region := int64(float64(s.Capacity()) * fill / float64(size))
		if region < 16 {
			region = 16
		}
		count := int(s.Capacity() / size)
		next, inflight := 0, 0
		var submit func()
		submit = func() {
			for inflight < 16 && next < count {
				next++
				inflight++
				s.Submit(&blockdev.Request{
					Op: blockdev.Write, Offset: rng.Int64N(region) * size, Size: size,
					OnComplete: func(r *blockdev.Request, at sim.Time) {
						inflight--
						submit()
					},
				})
			}
		}
		submit()
		eng.Run()
		return s.FTLWriteAmp()
	}
	low := churn(0.4)
	high := churn(1.0)
	if high <= low {
		t.Fatalf("WA did not grow with utilization: %.2f (40%%) vs %.2f (100%%)", low, high)
	}
	if high < 1.3 {
		t.Fatalf("full-device WA %.2f suspiciously low", high)
	}
}

// TestTrimRestoresWritePerformance: trimming returns a churned device to
// buffer-speed writes by freeing GC from relocating dead data.
func TestTrimRestoresWritePerformance(t *testing.T) {
	eng, s := newSmall(t)
	s.Precondition(1.0, true)
	// Trim everything.
	const chunk = 1 << 20
	for off := int64(0); off < s.Capacity(); off += chunk {
		s.Submit(&blockdev.Request{Op: blockdev.Trim, Offset: off, Size: chunk})
	}
	eng.Run()
	lat := do(eng, s, blockdev.Write, 0, 4096)
	if lat > 50*sim.Microsecond {
		t.Fatalf("post-trim write latency %v, want buffered speed", lat)
	}
	f := s.FTL()
	if f.Utilization() > 0.01 {
		t.Fatalf("utilization after full trim: %v", f.Utilization())
	}
}

// TestSequentialWritePlacementStripes confirms the frontier stripes
// sequential data across dies, which is what parallelizes later reads.
func TestSequentialWritePlacementStripes(t *testing.T) {
	eng, s := newSmall(t)
	// Write 8 units' worth sequentially and flush.
	do(eng, s, blockdev.Write, 0, 256<<10)
	do(eng, s, blockdev.Flush, 0, 0)
	// A 256K read of that range must touch many dies: with 16 dies and
	// 32K units it spans 8 dies => latency near a single page read, not
	// 16 serialized reads.
	lat := do(eng, s, blockdev.Read, 0, 256<<10)
	if lat > 400*sim.Microsecond {
		t.Fatalf("sequential-write readback latency %v: placement not striped", lat)
	}
}
