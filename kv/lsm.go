package kv

import (
	"fmt"

	"essdsim"
)

// LSMConfig parameterizes the log-structured merge engine.
type LSMConfig struct {
	// MemtableBytes is the in-memory buffer flushed as one L0 table.
	MemtableBytes int64
	// SegmentIOBytes is the I/O size used for flush/compaction streams
	// (the large sequential writes LSMs are built around).
	SegmentIOBytes int64
	// LevelFanout is the size ratio between adjacent levels.
	LevelFanout int
	// L0CompactTrigger is the number of L0 tables that triggers a
	// compaction into L1.
	L0CompactTrigger int
	// OverlapFrac is the fraction of an input table's size that must be
	// read from (and rewritten to) the next level during compaction —
	// the source of the design's write amplification.
	OverlapFrac float64
	// MaxLevels bounds the tree depth.
	MaxLevels int
	// QueueDepth limits concurrent device I/O from flush/compaction.
	QueueDepth int
}

// DefaultLSMConfig returns leveled-compaction parameters in RocksDB's
// ballpark, scaled to simulator-sized devices.
func DefaultLSMConfig() LSMConfig {
	return LSMConfig{
		MemtableBytes:    8 << 20,
		SegmentIOBytes:   256 << 10,
		LevelFanout:      10,
		L0CompactTrigger: 4,
		OverlapFrac:      1.0,
		MaxLevels:        4,
		QueueDepth:       16,
	}
}

type level struct {
	tables int
	bytes  int64
}

// LSM is a simplified leveled LSM write path: puts buffer in a memtable,
// memtables flush to L0 as sequential segment writes, and level overflow
// triggers compactions that read and rewrite sequential streams. All
// device traffic is sequential and large — the conversion of random
// writes into sequential writes that Implication #3 re-evaluates.
type LSM struct {
	dev    essdsim.Device
	cfg    LSMConfig
	ring   *ringAllocator
	levels []level

	memUsed    int64
	flushBusy  bool
	compBusy   bool
	inflight   int
	waiters    []func() // puts blocked on a full memtable chain
	barriers   []func()
	stats      Stats
	pendingOps []pendingIO
}

type pendingIO struct {
	write bool
	off   int64
	size  int64
}

// NewLSM builds the engine over the device. It panics on invalid
// configuration (programming error).
func NewLSM(dev essdsim.Device, cfg LSMConfig) *LSM {
	bs := int64(dev.BlockSize())
	if cfg.MemtableBytes <= 0 || cfg.SegmentIOBytes <= 0 ||
		cfg.SegmentIOBytes%bs != 0 || cfg.LevelFanout < 2 ||
		cfg.L0CompactTrigger < 1 || cfg.MaxLevels < 1 || cfg.QueueDepth < 1 {
		panic(fmt.Sprintf("kv: bad LSM config %+v", cfg))
	}
	return &LSM{
		dev:    dev,
		cfg:    cfg,
		ring:   newRing(0, dev.Capacity(), bs),
		levels: make([]level, cfg.MaxLevels),
	}
}

// Name implements Engine.
func (l *LSM) Name() string { return "lsm" }

// Stats implements Engine.
func (l *LSM) Stats() Stats { return l.stats }

// LevelBytes returns the accumulated bytes of each level, for tests.
func (l *LSM) LevelBytes() []int64 {
	out := make([]int64, len(l.levels))
	for i, lv := range l.levels {
		out[i] = lv.bytes
	}
	return out
}

// Put implements Engine: the put acknowledges on memtable admission
// (writes are durable in the real design via a group-committed WAL that
// shares the log's sequential pattern; we fold it into the flush traffic).
func (l *LSM) Put(key uint64, valueSize int64, done func()) {
	if valueSize <= 0 {
		panic("kv: value size must be positive")
	}
	_ = key // placement is size-driven; keys are opaque
	l.stats.Puts++
	l.stats.UserBytes += valueSize
	admit := func() {
		l.memUsed += valueSize
		done()
		if l.memUsed >= l.cfg.MemtableBytes {
			l.maybeFlush()
		}
	}
	if l.memUsed >= 2*l.cfg.MemtableBytes {
		// Memtable and its immutable predecessor are both full: stall the
		// put until flushing catches up (write stalls, as in RocksDB).
		l.stats.Stalls++
		l.waiters = append(l.waiters, admit)
		l.maybeFlush()
		return
	}
	admit()
}

// Barrier implements Engine.
func (l *LSM) Barrier(done func()) {
	if l.memUsed > 0 {
		l.maybeFlush()
	}
	if l.idle() {
		done()
		return
	}
	l.barriers = append(l.barriers, done)
}

func (l *LSM) idle() bool {
	return !l.flushBusy && !l.compBusy && l.inflight == 0 &&
		len(l.pendingOps) == 0 && l.memUsed == 0
}

func (l *LSM) checkBarriers() {
	if !l.idle() {
		return
	}
	bs := l.barriers
	l.barriers = nil
	for _, b := range bs {
		b()
	}
}

// maybeFlush starts flushing the memtable to L0 as sequential writes.
func (l *LSM) maybeFlush() {
	if l.flushBusy || l.memUsed == 0 {
		return
	}
	l.flushBusy = true
	l.stats.Flushes++
	bytes := l.memUsed
	if bytes > l.cfg.MemtableBytes {
		bytes = l.cfg.MemtableBytes
	}
	l.memUsed -= bytes
	table := align(bytes, int64(l.dev.BlockSize()))
	l.enqueueStream(true, table, func() {
		l.flushBusy = false
		l.levels[0].tables++
		l.levels[0].bytes += table
		l.admitWaiters()
		l.maybeCompact()
		if l.memUsed >= l.cfg.MemtableBytes || (l.memUsed > 0 && len(l.barriers) > 0) {
			l.maybeFlush()
		}
		l.checkBarriers()
	})
}

func (l *LSM) admitWaiters() {
	for len(l.waiters) > 0 && l.memUsed < 2*l.cfg.MemtableBytes {
		w := l.waiters[0]
		copy(l.waiters, l.waiters[1:])
		l.waiters = l.waiters[:len(l.waiters)-1]
		w()
	}
}

// targetBytes returns the capacity of level i before it overflows.
func (l *LSM) targetBytes(i int) int64 {
	t := l.cfg.MemtableBytes * int64(l.cfg.L0CompactTrigger)
	for j := 0; j < i; j++ {
		t *= int64(l.cfg.LevelFanout)
	}
	return t
}

// maybeCompact merges one overflowing level into the next: read the input
// table plus the overlapping fraction of the next level, write the merged
// run — all as sequential streams.
func (l *LSM) maybeCompact() {
	if l.compBusy {
		return
	}
	src := -1
	for i := 0; i < len(l.levels)-1; i++ {
		if (i == 0 && l.levels[0].tables >= l.cfg.L0CompactTrigger) ||
			(i > 0 && l.levels[i].bytes > l.targetBytes(i)) {
			src = i
			break
		}
	}
	if src < 0 {
		return
	}
	l.compBusy = true
	l.stats.Compactions++
	moved := l.levels[src].bytes
	if src == 0 {
		// Compact all L0 tables together (they overlap each other).
		l.levels[0].tables = 0
	} else {
		moved = l.levels[src].bytes / 2 // move roughly half the level
		if moved <= 0 {
			moved = l.levels[src].bytes
		}
	}
	bs := int64(l.dev.BlockSize())
	moved = align(moved, bs)
	overlap := align(int64(l.cfg.OverlapFrac*float64(moved)), bs)
	l.levels[src].bytes -= moved
	readBytes := moved + overlap
	writeBytes := moved + overlap
	l.enqueueStream(false, readBytes, func() {
		l.enqueueStream(true, writeBytes, func() {
			l.compBusy = false
			dst := src + 1
			l.levels[dst].bytes += moved
			l.levels[dst].tables++
			l.maybeCompact()
			l.checkBarriers()
		})
	})
}

// enqueueStream issues a sequential run of segment-sized I/Os through the
// ring allocator at the engine's queue depth, calling done when the run
// completes.
func (l *LSM) enqueueStream(write bool, total int64, done func()) {
	if total <= 0 {
		done()
		return
	}
	seg := l.cfg.SegmentIOBytes
	var offs []int64
	var sizes []int64
	for total > 0 {
		n := seg
		if n > total {
			n = align(total, int64(l.dev.BlockSize()))
		}
		offs = append(offs, l.ring.alloc(n))
		sizes = append(sizes, n)
		total -= n
	}
	next := 0
	inflight := 0
	finished := false
	var pump func()
	pump = func() {
		for inflight < l.cfg.QueueDepth && next < len(offs) {
			i := next
			next++
			inflight++
			op := essdsim.OpWrite
			if !write {
				op = essdsim.OpRead
			}
			if write {
				l.stats.DeviceWrites++
				l.stats.DeviceWriteBytes += sizes[i]
			} else {
				l.stats.DeviceReads++
				l.stats.DeviceReadBytes += sizes[i]
			}
			l.inflight++
			l.dev.Submit(&essdsim.Request{
				Op: op, Offset: offs[i], Size: sizes[i],
				OnComplete: func(r *essdsim.Request, at essdsim.Time) {
					inflight--
					l.inflight--
					if next < len(offs) {
						pump()
						return
					}
					if inflight == 0 && !finished {
						finished = true
						done()
					}
				},
			})
		}
	}
	pump()
}

var _ Engine = (*LSM)(nil)
