package stats

import (
	"testing"

	"essdsim/internal/sim"
)

func TestLatencySeriesBuckets(t *testing.T) {
	l := NewLatencySeries(10 * sim.Millisecond)
	l.Add(sim.Time(1*sim.Millisecond), 100*sim.Microsecond)
	l.Add(sim.Time(9*sim.Millisecond), 300*sim.Microsecond)
	l.Add(sim.Time(25*sim.Millisecond), 1*sim.Millisecond)
	if l.Len() != 3 {
		t.Fatalf("len = %d", l.Len())
	}
	if got := l.Count(0); got != 2 {
		t.Fatalf("bucket 0 count = %d", got)
	}
	if got := l.Mean(0); got != 200*sim.Microsecond {
		t.Fatalf("bucket 0 mean = %v", got)
	}
	if got := l.Mean(1); got != 0 {
		t.Fatalf("empty bucket mean = %v", got)
	}
	if got := l.Mean(2); got != sim.Millisecond {
		t.Fatalf("bucket 2 mean = %v", got)
	}
}

func TestLatencySeriesMeanRange(t *testing.T) {
	l := NewLatencySeries(sim.Millisecond)
	for i := 0; i < 10; i++ {
		l.Add(sim.Time(i)*sim.Time(sim.Millisecond), sim.Duration(i+1)*sim.Microsecond)
	}
	// Completion-weighted mean over the whole span: (1+..+10)/10 = 5.5 µs,
	// truncated to 5µs500ns by integer division — compute it exactly.
	want := sim.Duration(55) * sim.Microsecond / 10
	if got := l.MeanRange(0, l.Len()); got != want {
		t.Fatalf("mean range = %v, want %v", got, want)
	}
	// Split ranges: first half vs second half.
	if first, second := l.MeanRange(0, 5), l.MeanRange(5, 10); first >= second {
		t.Fatalf("range split wrong: %v vs %v", first, second)
	}
	// Out-of-range queries clamp; empty ranges are 0.
	if got := l.MeanRange(-5, 100); got != want {
		t.Fatalf("clamped range = %v", got)
	}
	if got := l.MeanRange(20, 30); got != 0 {
		t.Fatalf("empty range = %v", got)
	}
}
