// Package slo answers the capacity-planning question behind the paper's
// contract cliff: what is the highest offered rate a device sustains while
// still meeting a tail-latency SLO? A burstable tier (Observation #4) has
// two distinct answers — one while burst credits last, and a much lower
// one after they drain — so a Search reports both: the pre-exhaustion
// SLO-max rate and the post-cliff (credit-floor) SLO-max rate.
//
// # Search model
//
// Each probe runs one open-loop expgrid cell (workload.RunOpen) at a
// candidate rate for a fixed virtual-time horizon, with per-window latency
// histograms (stats.LatencySeries percentile windows). The probe's
// completion timeline is split at the device's credit-exhaustion time
// (qos.CreditBucket.ExhaustedAt, surfaced through scenario.InspectCredits):
// the window before the split yields the pre-exhaustion p99/p99.9, the
// window after it the post-cliff tail. A probe whose credits never drain
// within the horizon has no post window; it counts as sustaining, which
// makes both pass/fail predicates monotone in rate, and the engine binary
// searches each to its highest passing rate within Tolerance.
//
// Probes repeat coordinates across the two searches and across re-runs, so
// attach an expgrid.Cache: endpoint probes are shared between the pre and
// post searches, and a cache-warm repeat of a whole search executes zero
// new cells while reproducing identical measurements and CSV output
// (Probe.Cached and Report.CellsRun record what was served from cache).
//
// # Model assumptions
//
// The post-cliff answer is horizon-bounded: a rate whose drain time
// exceeds the probe horizon passes even though an infinite workload would
// eventually exhaust it. Against qos.CreditBucket math, the post-cliff
// SLO-max offered rate therefore lands between the analytic sustainable
// rate baseline*burst/(burst-baseline) and the rate whose bank-drain time
// equals the horizon — both computable from CreditInfo, and asserted in
// this package's tests.
package slo

import (
	"context"
	"fmt"
	"io"
	"math"

	"essdsim/internal/expgrid"
	"essdsim/internal/scenario"
	"essdsim/internal/sim"
	"essdsim/internal/workload"
)

// Target is the tail-latency SLO a probe must meet. Zero fields are
// unconstrained; at least one must be set.
type Target struct {
	P99  sim.Duration
	P999 sim.Duration
}

// met reports whether measured tails satisfy the target.
func (t Target) met(p99, p999 sim.Duration) bool {
	if t.P99 > 0 && p99 > t.P99 {
		return false
	}
	if t.P999 > 0 && p999 > t.P999 {
		return false
	}
	return true
}

func (t Target) String() string {
	switch {
	case t.P99 > 0 && t.P999 > 0:
		return fmt.Sprintf("p99<=%v p99.9<=%v", t.P99, t.P999)
	case t.P999 > 0:
		return fmt.Sprintf("p99.9<=%v", t.P999)
	default:
		return fmt.Sprintf("p99<=%v", t.P99)
	}
}

// Search declares one SLO-max search: a device profile × workload spec, a
// rate range to bisect, and the latency target. Zero-valued fields take
// defaults.
type Search struct {
	// Device is the device axis value probes run on (required).
	Device expgrid.NamedFactory

	Pattern   workload.Pattern // default RandWrite
	BlockSize int64            // bytes per request (default 256 KiB)
	// WriteRatioPct is the write percentage of Mixed-pattern probes; other
	// patterns ignore it. Zero is honored (a pure-read mixed workload).
	WriteRatioPct int
	Arrival       workload.Arrival // default Uniform

	// MinRate and MaxRate bound the searched offered rate in requests/s
	// (defaults 100 and 4000). Tolerance is the convergence width
	// (default (MaxRate-MinRate)/64); the search stops when the passing
	// bracket is narrower.
	MinRate, MaxRate float64
	Tolerance        float64

	// Target is the tail-latency SLO (required: at least one field).
	Target Target

	// Horizon is each probe's offered timeline span in virtual time
	// (default 6 s): a probe at rate r issues about r×Horizon requests,
	// clamped to [MinOps, MaxOps] (defaults 1000 and 60000).
	Horizon        sim.Duration
	MinOps, MaxOps uint64

	// Window is the latency-percentile window width (default 100 ms).
	Window sim.Duration

	// Cache, when non-nil, memoizes probe cells; repeated coordinates
	// (endpoints shared by the pre/post searches, warm re-runs) skip the
	// simulation.
	Cache *expgrid.Cache

	Precondition expgrid.Precond // default PrecondFull
	Seed         uint64
	Label        string // seed decorrelation label (default "slo")

	// Variant feeds each probe cell's cache variant (expgrid.Sweep.Variant):
	// device configurations that must not share cache entries but must keep
	// identical probe seeds — backend QoS isolation, chiefly — set it.
	Variant string
}

func (s Search) withDefaults() Search {
	if s.BlockSize <= 0 {
		s.BlockSize = 256 << 10
	}
	if s.MinRate <= 0 {
		s.MinRate = 100
	}
	if s.MaxRate <= 0 {
		s.MaxRate = 4000
	}
	if s.Tolerance <= 0 {
		s.Tolerance = (s.MaxRate - s.MinRate) / 64
	}
	if s.Horizon <= 0 {
		s.Horizon = 6 * sim.Second
	}
	if s.MinOps == 0 {
		s.MinOps = 1000
	}
	if s.MaxOps == 0 {
		s.MaxOps = 60000
	}
	if s.Window <= 0 {
		s.Window = 100 * sim.Millisecond
	}
	if s.Label == "" {
		s.Label = "slo"
	}
	return s
}

// Validate reports a descriptive error for nonsensical searches.
func (s Search) Validate() error {
	switch {
	case s.Device.New == nil:
		return fmt.Errorf("slo: search has no device factory")
	case s.Target.P99 <= 0 && s.Target.P999 <= 0:
		return fmt.Errorf("slo: search has no latency target")
	case s.MinRate >= s.MaxRate:
		return fmt.Errorf("slo: rate range [%v, %v] is empty", s.MinRate, s.MaxRate)
	case s.Pattern == workload.Mixed && (s.WriteRatioPct < 0 || s.WriteRatioPct > 100):
		return fmt.Errorf("slo: write ratio %d%% out of [0, 100]", s.WriteRatioPct)
	}
	return nil
}

// Probe is one evaluated rate.
type Probe struct {
	RatePerSec float64
	OfferedBps float64
	Ops        uint64

	Exhausted   bool
	ExhaustedAt sim.Duration // -1 when credits never drained

	// Tail latency of the pre-exhaustion window (the whole run when the
	// probe never exhausted) and of the post-cliff window (zero when
	// there is none).
	PreP99, PreP999   sim.Duration
	PostP99, PostP999 sim.Duration

	Elapsed        sim.Duration
	MaxOutstanding int

	PrePass  bool // pre-exhaustion window meets the target
	PostPass bool // post-cliff window meets it (vacuously when no cliff)
	Cached   bool // served from the sweep cache, not simulated
}

// Report is a completed search.
type Report struct {
	Device    string
	Pattern   workload.Pattern
	BlockSize int64
	Arrival   workload.Arrival
	Target    Target

	MinRate, MaxRate, Tolerance float64
	Horizon                     sim.Duration

	// Credit model of the probed device (the -1 sentinels when it is not
	// a burstable tier).
	Burstable                       bool
	BaselineBps, BurstBps, FloorBps float64
	InitialCredits                  float64
	PreMaxRate, PostMaxRate         float64 // highest passing rates (0: even MinRate fails)
	PreRangeCapped, PostRangeCapped bool    // MaxRate itself passed: the true max lies above the range
	PreBelowRange, PostBelowRange   bool    // MinRate itself failed: the true max lies below the range

	Probes     []Probe // distinct rates, in first-evaluation order
	Bisections int     // midpoint evaluations across both searches
	CellsRun   int     // probes actually simulated (cache misses)
}

// MaxBisections returns the convergence bound ⌈log2(range/tolerance)⌉ for
// one binary search over the report's rate range.
func (r *Report) MaxBisections() int {
	return maxBisections(r.MinRate, r.MaxRate, r.Tolerance)
}

func maxBisections(lo, hi, tol float64) int {
	if tol <= 0 || hi <= lo {
		return 0
	}
	return int(math.Ceil(math.Log2((hi - lo) / tol)))
}

// Run executes the search: evaluate the range endpoints, then bisect the
// pre-exhaustion and post-cliff predicates to their highest passing rates.
// Probes are shared between the two predicates (one cell measures both
// windows) and memoized through s.Cache when set, so a search performs at
// most 2 + 2×⌈log2(range/Tolerance)⌉ distinct probes and a cache-warm
// repeat simulates none at all.
func Run(ctx context.Context, s Search) (*Report, error) {
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rep := &Report{
		Pattern:   s.Pattern,
		BlockSize: s.BlockSize,
		Arrival:   s.Arrival,
		Target:    s.Target,
		MinRate:   s.MinRate,
		MaxRate:   s.MaxRate,
		Tolerance: s.Tolerance,
		Horizon:   s.Horizon,
	}

	probes := make(map[float64]*Probe)
	eval := func(rate float64) (*Probe, error) {
		if p, ok := probes[rate]; ok {
			return p, nil
		}
		p, dev, info, err := s.probe(ctx, rate)
		if err != nil {
			return nil, err
		}
		if rep.Device == "" {
			rep.Device = dev
			rep.Burstable = info.Burstable
			rep.BaselineBps = info.Baseline
			rep.BurstBps = info.Burst
			rep.FloorBps = info.Floor
		}
		probes[rate] = p
		rep.Probes = append(rep.Probes, *p)
		if !p.Cached {
			rep.CellsRun++
		}
		return p, nil
	}

	// bisect finds the highest rate in [MinRate, MaxRate] passing pred,
	// assuming pred is monotonically non-increasing in rate. Returns
	// (rate, capped, below): capped when MaxRate itself passes, below
	// when even MinRate fails (rate is then 0).
	bisect := func(pred func(*Probe) bool) (float64, bool, bool, error) {
		top, err := eval(s.MaxRate)
		if err != nil {
			return 0, false, false, err
		}
		if pred(top) {
			return s.MaxRate, true, false, nil
		}
		bottom, err := eval(s.MinRate)
		if err != nil {
			return 0, false, false, err
		}
		if !pred(bottom) {
			return 0, false, true, nil
		}
		lo, hi := s.MinRate, s.MaxRate
		for hi-lo > s.Tolerance {
			mid := (lo + hi) / 2
			p, err := eval(mid)
			if err != nil {
				return 0, false, false, err
			}
			rep.Bisections++
			if pred(p) {
				lo = mid
			} else {
				hi = mid
			}
		}
		return lo, false, false, nil
	}

	var err error
	if rep.PreMaxRate, rep.PreRangeCapped, rep.PreBelowRange, err = bisect(func(p *Probe) bool { return p.PrePass }); err != nil {
		return nil, err
	}
	if rep.PostMaxRate, rep.PostRangeCapped, rep.PostBelowRange, err = bisect(func(p *Probe) bool { return p.PostPass }); err != nil {
		return nil, err
	}
	// Capture the fresh-device credit bank for analytic cross-checks.
	if rep.Burstable {
		if d, ok := s.Device.New(s.Seed).(interface{ Credits() float64 }); ok {
			rep.InitialCredits = d.Credits()
		}
	}
	return rep, nil
}

// probe runs one open-loop cell at the rate and folds it into a Probe.
func (s Search) probe(ctx context.Context, rate float64) (*Probe, string, scenario.CreditInfo, error) {
	ops := uint64(rate * s.Horizon.Seconds())
	if ops < s.MinOps {
		ops = s.MinOps
	}
	if ops > s.MaxOps {
		ops = s.MaxOps
	}
	sw := expgrid.Sweep{
		Kind:                  expgrid.Open,
		Devices:               []expgrid.NamedFactory{s.Device},
		Patterns:              []workload.Pattern{s.Pattern},
		BlockSizes:            []int64{s.BlockSize},
		Arrivals:              []workload.Arrival{s.Arrival},
		RatesPerSec:           []float64{rate},
		OpenOps:               ops,
		OpenSampleInterval:    s.Window,
		OpenWindowPercentiles: true,
		Precondition:          s.Precondition,
		Inspect:               scenario.InspectCredits,
		Cache:                 s.Cache,
		DecodeInfo:            scenario.DecodeCreditInfo,
		Seed:                  s.Seed,
		Label:                 s.Label,
		Variant:               s.Variant,
	}
	if s.Pattern == workload.Mixed {
		sw.WriteRatiosPct = []int{s.WriteRatioPct}
	}
	res, err := expgrid.Runner{Workers: 1}.Run(ctx, sw)
	if err != nil {
		return nil, "", scenario.CreditInfo{}, err
	}
	r := res[0]
	open := r.Open
	info := r.Info.(scenario.CreditInfo)
	p := &Probe{
		RatePerSec:     rate,
		OfferedBps:     rate * float64(s.BlockSize),
		Ops:            open.Ops,
		ExhaustedAt:    -1,
		Elapsed:        open.Elapsed,
		MaxOutstanding: open.MaxOutstanding,
		Cached:         r.Cached,
	}
	n := open.LatSeries.Len()
	split := n
	if info.ExhaustedAt >= 0 {
		p.Exhausted = true
		p.ExhaustedAt = sim.Duration(info.ExhaustedAt)
		split = int(int64(info.ExhaustedAt) / int64(open.LatSeries.Interval()))
		if split > n {
			split = n
		}
	}
	p.PreP99 = open.LatSeries.PercentileRange(0, split, 99)
	p.PreP999 = open.LatSeries.PercentileRange(0, split, 99.9)
	p.PrePass = s.Target.met(p.PreP99, p.PreP999)
	if p.Exhausted && split < n {
		p.PostP99 = open.LatSeries.PercentileRange(split, n, 99)
		p.PostP999 = open.LatSeries.PercentileRange(split, n, 99.9)
		p.PostPass = s.Target.met(p.PostP99, p.PostP999)
	} else {
		// No post-cliff window within the horizon: the rate sustains for
		// as long as the probe can see.
		p.PostPass = p.PrePass
	}
	name := r.DeviceName
	if name == "" {
		name = r.Device
	}
	return p, name, info, nil
}

// Format writes a human-readable report: the two SLO-max rates, the credit
// model, and one row per probe.
func Format(w io.Writer, r *Report) {
	fmt.Fprintf(w, "SLO search: %s %s bs=%d %s, target %s, rates [%.0f, %.0f]/s ±%.0f, horizon %v\n",
		r.Device, r.Pattern, r.BlockSize, r.Arrival, r.Target, r.MinRate, r.MaxRate, r.Tolerance, r.Horizon)
	if r.Burstable {
		fmt.Fprintf(w, "  burstable: baseline %.0f MB/s, burst %.0f MB/s, floor %.0f MB/s, bank %.0f MB\n",
			r.BaselineBps/1e6, r.BurstBps/1e6, r.FloorBps/1e6, r.InitialCredits/1e6)
	}
	describe := func(rate float64, capped, below bool) string {
		switch {
		case below:
			return fmt.Sprintf("< %.0f/s (even the range minimum misses the target)", r.MinRate)
		case capped:
			return fmt.Sprintf(">= %.0f/s (the whole range passes)", r.MaxRate)
		default:
			return fmt.Sprintf("%.0f/s (%.1f MB/s offered)", rate, rate*float64(r.BlockSize)/1e6)
		}
	}
	fmt.Fprintf(w, "  pre-exhaustion SLO-max:  %s\n", describe(r.PreMaxRate, r.PreRangeCapped, r.PreBelowRange))
	fmt.Fprintf(w, "  post-cliff SLO-max:      %s\n", describe(r.PostMaxRate, r.PostRangeCapped, r.PostBelowRange))
	fmt.Fprintf(w, "  probes: %d distinct (%d simulated, %d cache-served), %d bisections (bound %d per search)\n",
		len(r.Probes), r.CellsRun, len(r.Probes)-r.CellsRun, r.Bisections, r.MaxBisections())
	fmt.Fprintf(w, "  %9s %9s %9s %10s %10s %10s %5s %5s\n",
		"rate/s", "offered", "exhaust@", "pre-p99", "post-p99", "peak-q", "pre", "post")
	for _, p := range r.Probes {
		exhaust := "never"
		if p.Exhausted {
			exhaust = fmt.Sprintf("%.2fs", p.ExhaustedAt.Seconds())
		}
		post := "-"
		if p.PostP99 > 0 {
			post = fmtLat(p.PostP99)
		}
		mark := func(b bool) string {
			if b {
				return "pass"
			}
			return "FAIL"
		}
		cached := ""
		if p.Cached {
			cached = "  (cached)"
		}
		fmt.Fprintf(w, "  %9.0f %8.1fM %9s %10s %10s %10d %5s %5s%s\n",
			p.RatePerSec, p.OfferedBps/1e6, exhaust, fmtLat(p.PreP99), post,
			p.MaxOutstanding, mark(p.PrePass), mark(p.PostPass), cached)
	}
}

func fmtLat(d sim.Duration) string {
	switch {
	case d <= 0:
		return "-"
	case d < sim.Millisecond:
		return fmt.Sprintf("%.0fµs", d.Seconds()*1e6)
	case d < sim.Second:
		return fmt.Sprintf("%.2fms", d.Seconds()*1e3)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}
