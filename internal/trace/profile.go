package trace

import (
	"math"

	"essdsim/internal/blockdev"
	"essdsim/internal/sim"
)

// Profile summarizes the offered load of a trace: how many requests it
// issues, how fast, how write-heavy, and at what mean request size. It is
// the bridge from a replayable record stream to the synthetic-generator
// parameters (rate, write ratio) the tenant-mix and fleet suites take —
// fitting a real MSR-Cambridge trace into a noisy-neighbor aggressor slot,
// for example, goes ParseMSR → Fit → ProfileOf.
type Profile struct {
	Ops    uint64
	Reads  uint64
	Writes uint64
	Bytes  int64

	// Span is the nominal issue span: first to last scheduled issue time.
	// Zero for empty, single-record, or instantaneous-burst traces.
	Span sim.Duration

	// RatePerSec is the mean offered request rate over Span, derived from
	// the Ops-1 inter-arrival gaps. Zero when Span is zero — such a trace
	// has no defined rate, and callers mapping a profile onto an open-loop
	// generator must reject it.
	RatePerSec float64

	// WriteRatioPct is the percentage of requests that are writes (by
	// request count, matching workload.OpenSpec.WriteRatio semantics;
	// trims and flushes count toward neither side).
	WriteRatioPct int

	// MeanSize is the mean request payload in bytes (0 for empty traces).
	MeanSize int64
}

// ProfileOf derives the offered-load profile of a record stream. Records
// are assumed sorted by issue time (the invariant Read, ParseMSR, and Fit
// all maintain).
func ProfileOf(recs []Record) Profile {
	var p Profile
	if len(recs) == 0 {
		return p
	}
	for _, r := range recs {
		p.Ops++
		p.Bytes += r.Size
		switch r.Op {
		case blockdev.Read:
			p.Reads++
		case blockdev.Write:
			p.Writes++
		}
	}
	p.Span = recs[len(recs)-1].At - recs[0].At
	if p.Span > 0 && p.Ops > 1 {
		p.RatePerSec = float64(p.Ops-1) / p.Span.Seconds()
	}
	if rw := p.Reads + p.Writes; rw > 0 {
		p.WriteRatioPct = int(math.Round(float64(p.Writes) * 100 / float64(rw)))
	}
	p.MeanSize = p.Bytes / int64(p.Ops)
	return p
}
