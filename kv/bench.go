package kv

import (
	"essdsim"
)

// IngestResult summarizes a bulk ingest run.
type IngestResult struct {
	Engine    string
	Device    string
	Puts      uint64
	UserBytes int64
	Elapsed   essdsim.Duration
	Stats     Stats
}

// PutsPerSec returns the ingest rate in operations per (virtual) second.
func (r IngestResult) PutsPerSec() float64 {
	secs := r.Elapsed.Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(r.Puts) / secs
}

// UserMBps returns the effective user-data rate in MB/s.
func (r IngestResult) UserMBps() float64 {
	secs := r.Elapsed.Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(r.UserBytes) / secs / 1e6
}

// Ingest drives `puts` fixed-size puts through the engine at the given
// client concurrency, waits for the engine to go idle (Barrier), and
// returns the measurements. Keys are drawn uniformly from keySpace.
func Ingest(eng *essdsim.Engine, e Engine, puts uint64, valueSize int64,
	concurrency int, keySpace uint64, seed uint64) IngestResult {
	if concurrency < 1 {
		concurrency = 1
	}
	if keySpace == 0 {
		keySpace = 1 << 20
	}
	start := eng.Now()
	var issued, completed uint64
	state := seed*0x9e3779b97f4a7c15 + 0x243f6a8885a308d3
	nextKey := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state % keySpace
	}
	var pump func()
	inflight := 0
	pump = func() {
		for inflight < concurrency && issued < puts {
			issued++
			inflight++
			e.Put(nextKey(), valueSize, func() {
				completed++
				inflight--
				pump()
			})
		}
	}
	pump()
	eng.Run()
	// Drain background work (flushes/compactions) before reading stats.
	finished := false
	e.Barrier(func() { finished = true })
	eng.Run()
	if !finished || completed != puts {
		panic("kv: ingest did not drain")
	}
	return IngestResult{
		Engine:    e.Name(),
		Puts:      completed,
		UserBytes: int64(completed) * valueSize,
		Elapsed:   eng.Now().Sub(start),
		Stats:     e.Stats(),
	}
}
