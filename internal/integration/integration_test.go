// Package integration holds cross-module tests: invariants that only hold
// when the device stacks, workload engine, and measurement layer agree end
// to end.
package integration

import (
	"testing"

	"essdsim/internal/blockdev"
	"essdsim/internal/essd"
	"essdsim/internal/profiles"
	"essdsim/internal/sim"
	"essdsim/internal/ssd"
	"essdsim/internal/workload"
)

func newESSD(t *testing.T, seed uint64) *essd.ESSD {
	t.Helper()
	return profiles.NewESSD1(sim.NewEngine(), sim.NewRNG(seed, seed))
}

func newSSD(t *testing.T, seed uint64) *ssd.SSD {
	t.Helper()
	return profiles.NewSSD(sim.NewEngine(), sim.NewRNG(seed, seed))
}

// TestESSDWriteByteConservation checks that every host write byte reaches
// the cluster exactly once as a primary write and Replicas-1 times as
// replica copies.
func TestESSDWriteByteConservation(t *testing.T) {
	e := newESSD(t, 1)
	res := workload.Run(e, workload.Spec{
		Pattern: workload.RandWrite, BlockSize: 64 << 10,
		QueueDepth: 8, MaxOps: 500, Seed: 2,
	})
	var primaryBytes int64
	var primaryOps, replOps uint64
	for i := 0; i < e.Cluster().NumNodes(); i++ {
		st := e.Cluster().NodeStats(i)
		primaryBytes += st.WriteBytes
		primaryOps += st.Writes
		replOps += st.ReplWrites
	}
	if primaryBytes != res.Bytes {
		t.Fatalf("cluster primary bytes %d != host bytes %d", primaryBytes, res.Bytes)
	}
	if primaryOps != uint64(e.Counters().SubWrites) {
		t.Fatalf("primary ops %d != subwrites %d", primaryOps, e.Counters().SubWrites)
	}
	if replOps != 2*primaryOps {
		t.Fatalf("replica copies %d != 2x primaries %d", replOps, primaryOps)
	}
}

// TestESSDBudgetNeverExceeded checks Observation #4's invariant from the
// outside: over any measured window, completed bytes never exceed budget ×
// window + burst.
func TestESSDBudgetNeverExceeded(t *testing.T) {
	e := newESSD(t, 3)
	e.Precondition(1.0)
	res := workload.Run(e, workload.Spec{
		Pattern: workload.Mixed, WriteRatio: 0.5, BlockSize: 128 << 10,
		QueueDepth: 64, Duration: 2 * sim.Second, Seed: 3,
	})
	cfg := profiles.ESSD1Config()
	for i := 0; i < res.Series.Len(); i++ {
		limit := cfg.ThroughputBudget*res.Series.Interval().Seconds() + cfg.BudgetBurst
		if got := float64(res.Series.Bytes(i)); got > limit*1.01 {
			t.Fatalf("bucket %d moved %.0f bytes, budget window allows %.0f", i, got, limit)
		}
	}
}

// TestSSDDataPathIntegrity drives mixed traffic through the SSD and
// verifies the FTL never loses track of written data (reads of written
// LBAs resolve, GC preserved mappings).
func TestSSDDataPathIntegrity(t *testing.T) {
	if testing.Short() {
		t.Skip("full-device GC churn skipped in -short")
	}
	s := newSSD(t, 4)
	s.Precondition(1.0, true)
	// Churn: enough overwrites to trigger GC on the full device.
	res := workload.Run(s, workload.Spec{
		Pattern: workload.RandWrite, BlockSize: 32 << 10,
		QueueDepth: 16, TotalBytes: s.Capacity() / 4, Seed: 4,
	})
	if res.Bytes != s.Capacity()/4 {
		t.Fatalf("wrote %d", res.Bytes)
	}
	if s.FTLWriteAmp() <= 1 {
		t.Fatal("expected GC activity on a full device")
	}
	// Every LPN must still be mapped (full precondition + overwrites).
	f := s.FTL()
	for lpn := int64(0); lpn < f.UserLPNs(); lpn += 997 {
		if !f.Mapped(lpn) && !f.InBuffer(lpn) {
			t.Fatalf("LPN %d lost after GC churn", lpn)
		}
	}
}

// TestSSDvsESSDLatencyOrdering is the paper's core comparison as an
// invariant: at small/shallow I/O the ESSD is at least 10x slower; at
// large/deep writes the two converge within 3x.
func TestSSDvsESSDLatencyOrdering(t *testing.T) {
	measure := func(dev blockdev.Device, bs int64, qd int) sim.Duration {
		res := workload.Run(dev, workload.Spec{
			Pattern: workload.RandWrite, BlockSize: bs, QueueDepth: qd,
			Duration: 150 * sim.Millisecond, Warmup: 30 * sim.Millisecond, Seed: 6,
		})
		return res.Lat.Summarize().Mean
	}
	small := float64(measure(newESSD(t, 6), 4<<10, 1)) / float64(measure(newSSD(t, 6), 4<<10, 1))
	big := float64(measure(newESSD(t, 7), 256<<10, 16)) / float64(measure(newSSD(t, 7), 256<<10, 16))
	if small < 10 {
		t.Errorf("small-I/O gap %.1f, want >= 10", small)
	}
	if big > 3 {
		t.Errorf("scaled-I/O gap %.1f, want <= 3", big)
	}
}

// TestTrimReducesESSDDebt verifies TRIM integrates with the cleaning-debt
// model: trimmed blocks do not count as overwrites later.
func TestTrimReducesESSDDebt(t *testing.T) {
	e := newESSD(t, 8)
	eng := e.Engine()
	write := func() {
		done := false
		e.Submit(&blockdev.Request{Op: blockdev.Write, Offset: 0, Size: 1 << 20,
			OnComplete: func(*blockdev.Request, sim.Time) { done = true }})
		eng.Run()
		if !done {
			t.Fatal("write lost")
		}
	}
	write()
	e.Submit(&blockdev.Request{Op: blockdev.Trim, Offset: 0, Size: 1 << 20})
	eng.Run()
	debtBefore := e.Cluster().Debt()
	write() // rewrite of trimmed space: no overwrite debt
	if got := e.Cluster().Debt(); got > debtBefore {
		t.Fatalf("trimmed rewrite accrued debt: %d -> %d", debtBefore, got)
	}
}

// TestDeviceContractCompliance runs every profile through a common
// behavioural checklist: all request types complete, completions arrive in
// virtual-time order, and latencies are positive.
func TestDeviceContractCompliance(t *testing.T) {
	for _, name := range profiles.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			eng := sim.NewEngine()
			dev, err := profiles.ByName(name, eng, sim.NewRNG(9, 9))
			if err != nil {
				t.Fatal(err)
			}
			var completions int
			var lastAt sim.Time
			submit := func(op blockdev.Op, off, size int64) {
				dev.Submit(&blockdev.Request{Op: op, Offset: off, Size: size,
					OnComplete: func(r *blockdev.Request, at sim.Time) {
						completions++
						if at < lastAt {
							t.Errorf("completion time went backwards")
						}
						lastAt = at
						if r.Latency(at) <= 0 {
							t.Errorf("non-positive latency for %v", r.Op)
						}
					}})
			}
			submit(blockdev.Write, 0, 8192)
			submit(blockdev.Read, 0, 4096)
			submit(blockdev.Trim, 8192, 4096)
			submit(blockdev.Flush, 0, 0)
			eng.Run()
			if completions != 4 {
				t.Fatalf("%d of 4 requests completed", completions)
			}
		})
	}
}
