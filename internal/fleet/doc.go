// Package fleet runs tenant-packing studies over many shared storage
// backends: the provider-side question the unwritten contract raises at
// cloud scale. A single shared backend (essd.Backend) tells a tenant what
// interference feels like; a fleet study tells the provider which
// placement decisions create that interference, by materializing the same
// tenant catalog under several placement policies and simulating every
// resulting backend independently.
//
// A Spec pairs a catalog of tenant Demands (synthetic shapes via
// SyntheticDemands, or profiles fitted from real MSR-Cambridge traces via
// DemandFromTrace) with a backend/volume template and a set of
// PlacementPolicy implementations. Four policies are built in:
//
//   - FirstFit packs by nominal offered rate into the fewest backends —
//     maximum density, maximum co-location.
//   - Spread round-robins across every available backend — the widest
//     placement at a given backend count (Constraints.Backends is the
//     density knob).
//   - BestFit packs by residual write-absorption budget — write churn
//     lands tightly together, sparing the other backends.
//   - InterferenceAware balances effective write load (capped by the
//     volume class's qos.CreditBucket sustained-floor analytics) and
//     penalizes co-locating write-heavy aggressors with each other, the
//     shared-cleaner coupling the noisy-neighbor suite quantifies.
//
// Run materializes each placement as independent essd.Backend simulations
// — one expgrid tenant-mix cell per distinct backend population, plus one
// solo control per distinct demand shape — and executes all cells of all
// policies in parallel on one expgrid worker pool. Cell identity is the
// membership alone: two policies that co-locate the same tenants share
// one cell, so physically identical placements measure identically
// rather than diverging on seed noise. Seeds derive from that membership
// (coordinate-hashed device names), so results are deterministic and
// byte-identical for any worker count, and a Spec.Cache warm re-run
// simulates zero new cells.
//
// The Report compares policies on the axes the paper's contract implies:
// backends used and their utilization (packing density), fleet-wide
// p99/p99.9 SLO violation counts against a configurable target, worst
// victim tail inflation versus the solo control, and per-backend pooled
// debt and throttle counts. Format renders the policy-vs-policy table;
// WriteBackendsCSV and WriteTenantsCSV export the schemas documented in
// docs/formats.md.
//
// RunIsolationStudy crosses a fleet spec with backend QoS isolation
// configurations (qos.Isolation): the same catalog and placements run
// once per configuration on identical arrival streams, reporting how many
// SLO violations each placement policy sheds when the backend scheduler
// isolates tenants — the isolation × placement substitution the screen's
// DebtCouplingFactor discount mirrors analytically.
package fleet
