// Package profiling wires the standard pprof collectors into the CLI
// front ends: a -cpuprofile flag streams CPU samples for the whole run,
// and a -memprofile flag snapshots the heap at exit. The profiles are the
// inputs to the perf workflow in docs/performance.md (go tool pprof).
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins the requested profiles. Either path may be empty to skip
// that profile. The returned stop function finishes both profiles and must
// run before process exit (defer it in main); it is safe to call when no
// profile was requested. Callers that exit through os.Exit on error paths
// simply lose the profile, which is fine — profiles of failed runs are
// not actionable.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mem profile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the snapshot shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "mem profile: %v\n", err)
			}
		}
	}, nil
}
