// Package essd assembles the simulated elastic solid-state drive: the
// virtualized block device the paper characterizes (§II-C). It stitches
// together the compute-side frontend, the datacenter network (package
// netsim), the provisioned QoS budgets (package qos) and the storage
// cluster (package cluster) into a blockdev.Device.
//
// The stack is storage-compute disaggregated, exactly as in the paper's
// Fig 1: a Backend is the shared storage side — one cluster plus one
// network fabric — and any number of volumes Attach to it, each with its
// own per-volume QoS budgets, burst credits, frontend, and flow limiter.
// Attached volumes contend on the backend's node streams, fabric pipes,
// and background cleaner, and the backend attributes debt, stream
// operations, and fabric bytes per volume (VolumeStats). The single-volume
// convenience constructor New builds a private Backend, reproducing the
// classic one-volume-per-cluster shape bit for bit.
//
// The unwritten contract's observations map onto this assembly as follows:
//
//   - Obs#1: every I/O pays frontend + network + cluster service time, so
//     small/low-QD I/Os see tens-of-times local-SSD latency while large
//     batched I/Os amortize it.
//   - Obs#2: writes acknowledge from replicated node journals; cleaning
//     debt only surfaces when the flow limiter engages, far beyond the
//     local SSD's ~90%-of-capacity GC cliff. On a shared backend the debt
//     pool is cluster-wide, so one tenant's overwrite churn advances every
//     tenant's throttle onset.
//   - Obs#3: sequential windows serialize on few placement groups while
//     random writes fan out — random-write throughput wins. Shared-backend
//     tenants contend for the same placement-group streams.
//   - Obs#4: a combined bytes/s token bucket at the provisioned budget
//     makes peak bandwidth deterministic regardless of access pattern.
package essd

import (
	"fmt"
	"math/bits"
	"strings"
	"sync"

	"essdsim/internal/blockdev"
	"essdsim/internal/cluster"
	"essdsim/internal/netsim"
	"essdsim/internal/obs"
	"essdsim/internal/qos"
	"essdsim/internal/sim"
)

// bitmapPool recycles written-bitmaps across experiment cells: a fleet
// sweep attaches (volumes × cells) bitmaps of several hundred KiB each, and
// reusing them keeps the allocator and GC out of the per-cell setup path.
var bitmapPool sync.Pool

// acquireBitmap returns a zeroed bitmap of n words, reusing pooled storage
// when it is large enough.
func acquireBitmap(n int64) []uint64 {
	if v := bitmapPool.Get(); v != nil {
		s := *v.(*[]uint64)
		if int64(cap(s)) >= n {
			s = s[:n]
			clear(s)
			return s
		}
	}
	return make([]uint64, n)
}

// releaseBitmap returns a bitmap to the pool.
func releaseBitmap(s []uint64) {
	if cap(s) == 0 {
		return
	}
	bitmapPool.Put(&s)
}

// VolumeConfig parameterizes one ESSD volume: everything the provider
// provisions per volume — identity, capacity, QoS budgets, burst credits,
// the compute-side frontend, and the flow-limiter policy. The shared
// storage side lives in BackendConfig.
type VolumeConfig struct {
	Name      string
	Provider  string
	Model     string
	Capacity  int64
	BlockSize int64

	// Provisioned budgets (paper Table I).
	ThroughputBudget float64 // bytes/s, reads+writes combined
	BudgetBurst      float64 // token bucket burst, bytes
	IOPSBudget       float64 // I/O operations per second
	IOPSBurst        float64 // IOPS bucket burst
	IOPSChunkBytes   int64   // bytes covered by one IOPS token (e.g. 256 KiB on io2)

	// Frontend (virtio + EBS client) processing.
	FrontendSlots   int
	FrontendLatency sim.Dist

	// Flow limiter (Observation #2): when cleaning debt exceeds
	// SpareFrac×Capacity, the write path is clamped to ThrottleRate.
	// SpareFrac <= 0 disables throttling (ESSD-2 behaviour within the
	// paper's 3× experiment). On a shared backend the observed debt is the
	// cluster-wide pool, so other tenants' churn counts against this
	// volume's threshold.
	SpareFrac    float64
	ThrottleRate float64

	// Burst credits (optional): burstable volume classes (AWS gp2-style)
	// sustain BurstBaseline bytes/s, may spend banked credits up to the
	// ThroughputBudget ceiling, and bank at most BurstCreditBytes. When
	// BurstBaseline > 0 the throughput budget behaves like the burst
	// ceiling of such a tier.
	BurstBaseline    float64
	BurstCreditBytes float64

	// Per-tenant isolation parameters, inert under the backend's default
	// FIFO policy: Weight is this volume's share at every backend
	// contention point under wfq/reservation (default 1), ReservedRate
	// the bytes/s served strictly first at each contention point under
	// reservation. New fields stay at the end of the struct: Signature
	// depends on the field order.
	Weight       float64
	ReservedRate float64
}

// Validate reports a descriptive error for inconsistent volume
// configuration against the backend's placement chunk size.
func (c VolumeConfig) Validate(chunkBytes int64) error {
	switch {
	case c.Capacity <= 0 || c.BlockSize <= 0 || c.Capacity%c.BlockSize != 0:
		return fmt.Errorf("essd: bad capacity/block size %d/%d", c.Capacity, c.BlockSize)
	case c.ThroughputBudget <= 0:
		return fmt.Errorf("essd: throughput budget must be positive")
	case c.IOPSBudget <= 0 || c.IOPSChunkBytes <= 0:
		return fmt.Errorf("essd: IOPS budget/chunk must be positive")
	case c.FrontendSlots < 1 || c.FrontendLatency == nil:
		return fmt.Errorf("essd: frontend misconfigured")
	case chunkBytes%c.BlockSize != 0:
		return fmt.Errorf("essd: cluster chunk not a multiple of block size")
	case c.Weight < 0 || c.ReservedRate < 0:
		return fmt.Errorf("essd: negative isolation weight/reservation")
	}
	return nil
}

// Signature renders the volume configuration exactly as %#v rendered the
// pre-isolation struct, with the isolation fields stripped — existing
// cache labels built from it stay byte-identical — and re-appends them
// only when set, so isolation variants get distinct labels.
func (c VolumeConfig) Signature() string {
	s := fmt.Sprintf("%#v", c)
	s = strings.TrimSuffix(s, fmt.Sprintf(", Weight:%#v, ReservedRate:%#v}", c.Weight, c.ReservedRate)) + "}"
	if c.Weight != 0 || c.ReservedRate != 0 {
		s += fmt.Sprintf("+qos{w:%g,r:%g}", c.Weight, c.ReservedRate)
	}
	return s
}

// BackendConfig parameterizes the shared storage side of the stack: the
// datacenter fabric and the storage cluster that every attached volume's
// I/O traverses.
type BackendConfig struct {
	Net     netsim.Config
	Cluster cluster.Config

	// Isolation selects the per-tenant QoS policy installed at every
	// backend contention point (fabric pipes, node streams and servers,
	// cleaner-debt admission). The zero value is plain FIFO — the exact
	// pre-isolation behaviour, byte for byte. New fields stay at the end
	// of the struct: Signature depends on the field order.
	Isolation qos.Isolation
}

// Validate reports a descriptive error for inconsistent backend
// configuration.
func (c BackendConfig) Validate() error { return c.Cluster.Validate() }

// Signature renders the backend configuration exactly as %#v rendered the
// pre-isolation struct, with the Isolation field stripped — existing
// cache labels built from it stay byte-identical — and re-appends it only
// when the policy departs from FIFO.
func (c BackendConfig) Signature() string {
	s := fmt.Sprintf("%#v", c)
	s = strings.TrimSuffix(s, fmt.Sprintf(", Isolation:%#v}", c.Isolation)) + "}"
	if c.Isolation.Enabled() {
		s += "+iso{" + c.Isolation.Signature() + "}"
	}
	return s
}

// Config is the classic flat single-volume configuration: one volume's
// settings plus the backend it (alone) runs on. Split separates the two
// halves for shared-backend construction.
type Config struct {
	Name      string
	Provider  string
	Model     string
	Capacity  int64
	BlockSize int64

	// Provisioned budgets (paper Table I).
	ThroughputBudget float64 // bytes/s, reads+writes combined
	BudgetBurst      float64 // token bucket burst, bytes
	IOPSBudget       float64 // I/O operations per second
	IOPSBurst        float64 // IOPS bucket burst
	IOPSChunkBytes   int64   // bytes covered by one IOPS token (e.g. 256 KiB on io2)

	// Frontend (virtio + EBS client) processing.
	FrontendSlots   int
	FrontendLatency sim.Dist

	Net     netsim.Config
	Cluster cluster.Config

	// Flow limiter (Observation #2): when cleaning debt exceeds
	// SpareFrac×Capacity, the write path is clamped to ThrottleRate.
	// SpareFrac <= 0 disables throttling (ESSD-2 behaviour within the
	// paper's 3× experiment).
	SpareFrac    float64
	ThrottleRate float64

	// Burst credits (optional): burstable volume classes (AWS gp2-style)
	// sustain BurstBaseline bytes/s, may spend banked credits up to the
	// ThroughputBudget ceiling, and bank at most BurstCreditBytes. When
	// BurstBaseline > 0 the throughput budget behaves like the burst
	// ceiling of such a tier.
	BurstBaseline    float64
	BurstCreditBytes float64

	// Isolation and the volume's scheduling parameters (see BackendConfig
	// and VolumeConfig); all inert at their zero values. New fields stay
	// at the end of the struct for cache-label stability.
	Isolation    qos.Isolation
	Weight       float64
	ReservedRate float64
}

// Split divides the flat config into its shared-backend and per-volume
// halves.
func (c Config) Split() (BackendConfig, VolumeConfig) {
	return BackendConfig{Net: c.Net, Cluster: c.Cluster, Isolation: c.Isolation}, VolumeConfig{
		Name:             c.Name,
		Provider:         c.Provider,
		Model:            c.Model,
		Capacity:         c.Capacity,
		BlockSize:        c.BlockSize,
		ThroughputBudget: c.ThroughputBudget,
		BudgetBurst:      c.BudgetBurst,
		IOPSBudget:       c.IOPSBudget,
		IOPSBurst:        c.IOPSBurst,
		IOPSChunkBytes:   c.IOPSChunkBytes,
		FrontendSlots:    c.FrontendSlots,
		FrontendLatency:  c.FrontendLatency,
		SpareFrac:        c.SpareFrac,
		ThrottleRate:     c.ThrottleRate,
		BurstBaseline:    c.BurstBaseline,
		BurstCreditBytes: c.BurstCreditBytes,
		Weight:           c.Weight,
		ReservedRate:     c.ReservedRate,
	}
}

// Validate reports a descriptive error for inconsistent configuration.
func (c Config) Validate() error {
	if err := c.Cluster.Validate(); err != nil {
		return err
	}
	_, vcfg := c.Split()
	return vcfg.Validate(c.Cluster.ChunkBytes)
}

// Backend is the shared storage side of the ESSD stack: one cluster and
// one network fabric serving every attached volume. Volumes contend on the
// backend's resources (node streams, fabric pipes, the background cleaner)
// and the backend attributes usage per volume.
type Backend struct {
	eng  *sim.Engine
	cfg  BackendConfig
	net  *netsim.Network
	cl   *cluster.Cluster
	vols []*ESSD
}

// NewBackend builds a shared storage backend on the engine. It panics on
// invalid configuration.
func NewBackend(eng *sim.Engine, cfg BackendConfig, rng *sim.RNG) *Backend {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if rng == nil {
		rng = sim.NewRNG(0xbacc, 0x3d)
	}
	return newBackend(eng, cfg, rng)
}

// newBackend derives the net and cluster RNG streams from rng in the fixed
// order the single-volume constructor has always used, so New remains
// draw-for-draw identical to the pre-backend stack.
func newBackend(eng *sim.Engine, cfg BackendConfig, rng *sim.RNG) *Backend {
	b := &Backend{eng: eng, cfg: cfg}
	b.net = netsim.New(eng, cfg.Net, rng.Derive("net"))
	b.cl = cluster.New(eng, cfg.Cluster, rng.Derive("cluster"))
	// Both installs are no-ops under the default FIFO policy — not
	// installing a scheduler is what keeps the default byte-identical.
	b.net.SetIsolation(cfg.Isolation)
	b.cl.SetIsolation(cfg.Isolation)
	return b
}

// Engine returns the simulation engine the backend runs on.
func (b *Backend) Engine() *sim.Engine { return b.eng }

// Config returns the backend configuration.
func (b *Backend) Config() BackendConfig { return b.cfg }

// Cluster exposes the shared storage cluster (debt, node balance).
func (b *Backend) Cluster() *cluster.Cluster { return b.cl }

// Network exposes the shared fabric (backlogs, per-direction bytes).
func (b *Backend) Network() *netsim.Network { return b.net }

// Debt returns the cluster-wide pooled cleaning debt in bytes — the value
// every attached volume's flow limiter observes.
func (b *Backend) Debt() int64 { return b.cl.Debt() }

// Volumes returns the attached volumes in attach order.
func (b *Backend) Volumes() []*ESSD { return b.vols }

// ReleaseResources returns every attached volume's pooled buffers for reuse
// by later experiment cells. The backend and its volumes must not be used
// afterwards.
func (b *Backend) ReleaseResources() {
	for _, v := range b.vols {
		v.ReleaseResources()
	}
}

// Detach removes an attached volume from the backend and reclaims its
// shared-infrastructure state: the flow's residual share of the pooled
// cleaning debt is credited back to the cluster, its admission accounts
// and per-node scheduling shares reset, and its fabric shares released,
// so the survivors immediately see the capacity the departed tenant
// held. Cumulative counters (cluster flow stats, fabric bytes) are kept
// for attribution; the final per-volume accounting is returned. The
// volume must be quiescent (no in-flight requests) and must not be used
// afterwards — further Submit calls panic. Detach panics if v is not
// attached to this backend.
func (b *Backend) Detach(v *ESSD) VolumeStats {
	idx := -1
	for i, w := range b.vols {
		if w == v {
			idx = i
			break
		}
	}
	if idx < 0 {
		panic("essd: detach of a volume not attached to this backend")
	}
	st := b.statsFor(v)
	b.cl.ReleaseFlow(v.flow)
	b.net.ReleaseFlow(v.nf)
	b.vols = append(b.vols[:idx], b.vols[idx+1:]...)
	v.ReleaseResources()
	v.detached = true
	return st
}

// VolumeStats tallies one attached volume's use of the shared backend.
type VolumeStats struct {
	Name                  string
	Writes, Reads         uint64 // chunk-level cluster operations
	WriteBytes, ReadBytes int64  // cluster payload bytes
	DebtAdded             int64  // cleaning debt contributed to the pool
	FabricUp, FabricDown  int64  // fabric payload bytes per direction
}

// VolumeStats returns per-volume accounting for every attached volume, in
// attach order.
func (b *Backend) VolumeStats() []VolumeStats {
	out := make([]VolumeStats, len(b.vols))
	for i, v := range b.vols {
		out[i] = b.statsFor(v)
	}
	return out
}

// statsFor assembles one volume's VolumeStats from the cluster flow and
// fabric flow counters.
func (b *Backend) statsFor(v *ESSD) VolumeStats {
	fs := b.cl.FlowStats(v.flow)
	return VolumeStats{
		Name:       v.cfg.Name,
		Writes:     fs.Writes,
		Reads:      fs.Reads,
		WriteBytes: fs.WriteBytes,
		ReadBytes:  fs.ReadBytes,
		DebtAdded:  fs.DebtAdded,
		FabricUp:   v.nf.MovedUp(),
		FabricDown: v.nf.MovedDown(),
	}
}

// Attach builds a volume on the shared backend. It panics on invalid
// configuration. The volume's RNG stream is derived from rng and the
// volume name. Note that deriving consumes one draw from rng, so when
// several Attach calls share one parent RNG their order is part of the
// deterministic construction sequence — reordering them re-seeds the
// later volumes. Pass an independent RNG per volume (as the root
// AttachVolume helper does) for attach-order independence.
func (b *Backend) Attach(cfg VolumeConfig, rng *sim.RNG) *ESSD {
	if err := cfg.Validate(b.cfg.Cluster.ChunkBytes); err != nil {
		panic(err)
	}
	if rng == nil {
		rng = sim.NewRNG(0xe55d, 0x10)
	}
	return b.attach(cfg, rng.Derive("essd:"+cfg.Name))
}

// attach wires a validated volume onto the backend using rng as the
// volume's own stream (already derived by the caller).
func (b *Backend) attach(cfg VolumeConfig, rng *sim.RNG) *ESSD {
	e := &ESSD{eng: b.eng, cfg: cfg, rng: rng, be: b}
	e.fe = sim.NewServer(b.eng, "frontend", cfg.FrontendSlots)
	weight := cfg.Weight
	if weight <= 0 {
		weight = 1
	}
	e.nf = b.net.NewFlowQoS(cfg.Name, weight, cfg.ReservedRate)
	e.flow = b.cl.RegisterFlow(cfg.Name)
	b.cl.SetFlowQoS(e.flow, weight, cfg.ReservedRate)
	burst := cfg.BudgetBurst
	if burst <= 0 {
		burst = cfg.ThroughputBudget / 100 // 10 ms of budget by default
	}
	e.bytesTb = qos.NewTokenBucket(b.eng, cfg.ThroughputBudget, burst)
	iopsBurst := cfg.IOPSBurst
	if iopsBurst <= 0 {
		iopsBurst = cfg.IOPSBudget / 100
	}
	e.iopsTb = qos.NewTokenBucket(b.eng, cfg.IOPSBudget, iopsBurst)
	e.limiter = &qos.FlowLimiter{
		DebtThreshold: int64(cfg.SpareFrac * float64(cfg.Capacity)),
		ThrottledRate: cfg.ThrottleRate,
	}
	if cfg.BurstBaseline > 0 {
		e.credits = qos.NewCreditBucket(b.eng, cfg.BurstBaseline,
			cfg.ThroughputBudget, cfg.BurstCreditBytes)
	}
	nblocks := cfg.Capacity / cfg.BlockSize
	e.written = acquireBitmap((nblocks + 63) / 64)
	b.vols = append(b.vols, e)
	return e
}

// Counters tallies host-visible ESSD activity.
type Counters struct {
	Reads, Writes, Trims, Flushes uint64
	ReadBytes, WriteBytes         int64
	SubWrites, SubReads           uint64 // chunk-level operations after splitting
	UnwrittenReads                uint64 // reads served from the zero map
}

// ESSD is the assembled elastic SSD volume. It implements blockdev.Device.
type ESSD struct {
	eng *sim.Engine
	cfg VolumeConfig
	rng *sim.RNG

	be   *Backend
	nf   *netsim.Flow // this volume's tagged traffic on the shared fabric
	flow int          // this volume's accounting flow in the shared cluster

	fe      *sim.Server
	bytesTb *qos.TokenBucket
	iopsTb  *qos.TokenBucket
	limiter *qos.FlowLimiter
	wClamp  *qos.TokenBucket  // engaged write clamp; nil until throttled
	credits *qos.CreditBucket // burstable tiers only; nil otherwise

	written []uint64 // bitmap: block ever written (for debt + zero reads)

	detached bool // removed from its backend; further I/O panics

	counters Counters

	// Request tracing (SetTracer): nil by default, costing the hot path
	// one branch per Submit. trcSeq is the per-volume request sequence
	// the tracer samples on.
	trc    *obs.Tracer
	trcSeq uint64

	// Intrusive free lists of pooled per-request ops (see ioOp): the
	// steady-state Submit path allocates nothing.
	freeOps  *ioOp
	freeSubs *subOp
}

// New builds a single-volume ESSD on a private backend. It panics on
// invalid configuration. The result is draw-for-draw identical to the
// pre-shared-backend stack: the same RNG derivation chain feeds the
// frontend, network, and cluster.
func New(eng *sim.Engine, cfg Config, rng *sim.RNG) *ESSD {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if rng == nil {
		rng = sim.NewRNG(0xe55d, 0x10)
	}
	rng = rng.Derive("essd:" + cfg.Name)
	bcfg, vcfg := cfg.Split()
	return newBackend(eng, bcfg, rng).attach(vcfg, rng)
}

// Credits returns the banked burst credits in bytes, or -1 when the
// volume is not a burstable tier.
func (e *ESSD) Credits() float64 {
	if e.credits == nil {
		return -1
	}
	return e.credits.Credits()
}

// Burstable reports whether the volume is a credit-backed burstable tier.
func (e *ESSD) Burstable() bool { return e.credits != nil }

// CreditExhaustions counts the times the burst-credit balance hit zero
// (always 0 on non-burstable tiers).
func (e *ESSD) CreditExhaustions() uint64 {
	if e.credits == nil {
		return 0
	}
	return e.credits.Exhaustions()
}

// CreditExhaustedAt returns the virtual time the burst-credit balance first
// hit zero, or -1 when it never has (or the tier is not burstable).
func (e *ESSD) CreditExhaustedAt() sim.Time {
	if e.credits == nil {
		return -1
	}
	return e.credits.ExhaustedAt()
}

// CreditFloor returns the post-exhaustion sustained rate in bytes/s, or -1
// when the tier is not burstable.
func (e *ESSD) CreditFloor() float64 {
	if e.credits == nil {
		return -1
	}
	return e.credits.SustainedFloor()
}

// CreditBaseline returns the continuous credit-earn rate in bytes/s, or -1
// when the tier is not burstable. Together with CreditBurst it lets SLO
// searches bound the sustainable offered rate analytically.
func (e *ESSD) CreditBaseline() float64 {
	if e.credits == nil {
		return -1
	}
	return e.credits.Baseline()
}

// CreditBurst returns the credit-backed burst ceiling in bytes/s, or -1
// when the tier is not burstable.
func (e *ESSD) CreditBurst() float64 {
	if e.credits == nil {
		return -1
	}
	return e.credits.Burst()
}

// spendCredits serializes n bytes through the burst-credit rate before
// done, when the volume is a burstable tier.
func (e *ESSD) spendCredits(n int64, done func()) {
	if e.credits == nil {
		done()
		return
	}
	e.credits.Acquire(n, done)
}

// Name implements blockdev.Device.
func (e *ESSD) Name() string { return e.cfg.Name }

// Capacity implements blockdev.Device.
func (e *ESSD) Capacity() int64 { return e.cfg.Capacity }

// BlockSize implements blockdev.Device.
func (e *ESSD) BlockSize() int { return int(e.cfg.BlockSize) }

// Engine implements blockdev.Device.
func (e *ESSD) Engine() *sim.Engine { return e.eng }

// Counters returns host-visible activity counters.
func (e *ESSD) Counters() Counters { return e.counters }

// Backend returns the (possibly shared) storage backend the volume is
// attached to.
func (e *ESSD) Backend() *Backend { return e.be }

// Cluster exposes the backend cluster for harness inspection (debt, node
// balance). On a shared backend the cluster is shared by every attached
// volume.
func (e *ESSD) Cluster() *cluster.Cluster { return e.be.cl }

// BackendUse returns this volume's per-volume accounting on the shared
// backend: cluster operations, payload bytes, contributed debt, and fabric
// bytes.
func (e *ESSD) BackendUse() VolumeStats { return e.be.statsFor(e) }

// Throttled reports whether the provider flow limiter has engaged.
func (e *ESSD) Throttled() bool { return e.limiter.Engaged() }

// ThrottledAt returns the virtual time the flow limiter engaged.
func (e *ESSD) ThrottledAt() sim.Time { return e.limiter.EngagedAt() }

// BudgetStall returns cumulative time spent waiting on the throughput budget.
func (e *ESSD) BudgetStall() sim.Duration { return e.bytesTb.StallTime() }

// ReleaseResources returns the volume's pooled buffers (the written bitmap)
// for reuse by later experiment cells. The volume must not serve I/O
// afterwards; call only once the cell's measurement and inspection are done.
func (e *ESSD) ReleaseResources() {
	releaseBitmap(e.written)
	e.written = nil
}

// Precondition marks the first fillFrac of the volume as written, as if it
// had been filled once (no simulated time, no cleaning debt).
func (e *ESSD) Precondition(fillFrac float64) {
	if fillFrac <= 0 {
		return
	}
	if fillFrac > 1 {
		fillFrac = 1
	}
	nblocks := e.cfg.Capacity / e.cfg.BlockSize
	limit := int64(fillFrac * float64(nblocks))
	// Fill whole 64-block words, then the partial tail — bit-identical to
	// setting each block's bit, at 1/64 the iterations (preconditioning a
	// fleet-sized volume block-by-block dominated whole-sweep profiles).
	words := limit >> 6
	for w := int64(0); w < words; w++ {
		e.written[w] = ^uint64(0)
	}
	for b := words << 6; b < limit; b++ {
		e.written[b>>6] |= 1 << uint(b&63)
	}
}

func (e *ESSD) isWritten(block int64) bool {
	return e.written[block>>6]&(1<<uint(block&63)) != 0
}

// markWritten sets the written bits for the request range and returns the
// number of bytes that were overwrites (i.e. new cleaning debt). Interior
// 64-block words are counted and set with one popcount/store each, so a
// 256 KiB request touches a handful of words instead of 64 bits.
func (e *ESSD) markWritten(off, size int64) int64 {
	var overwritten int64
	b := off / e.cfg.BlockSize
	end := (off + size) / e.cfg.BlockSize
	for ; b < end && b&63 != 0; b++ {
		if e.isWritten(b) {
			overwritten++
		} else {
			e.written[b>>6] |= 1 << uint(b&63)
		}
	}
	for ; b+64 <= end; b += 64 {
		w := e.written[b>>6]
		overwritten += int64(bits.OnesCount64(w))
		e.written[b>>6] = ^uint64(0)
	}
	for ; b < end; b++ {
		if e.isWritten(b) {
			overwritten++
		} else {
			e.written[b>>6] |= 1 << uint(b&63)
		}
	}
	return overwritten * e.cfg.BlockSize
}

// allWritten reports whether every block in the range has been written.
func (e *ESSD) allWritten(off, size int64) bool {
	b := off / e.cfg.BlockSize
	end := (off + size) / e.cfg.BlockSize
	for ; b < end && b&63 != 0; b++ {
		if !e.isWritten(b) {
			return false
		}
	}
	for ; b+64 <= end; b += 64 {
		if e.written[b>>6] != ^uint64(0) {
			return false
		}
	}
	for ; b < end; b++ {
		if !e.isWritten(b) {
			return false
		}
	}
	return true
}

// iopsCost returns the IOPS tokens one request consumes.
func (e *ESSD) iopsCost(size int64) float64 {
	n := (size + e.cfg.IOPSChunkBytes - 1) / e.cfg.IOPSChunkBytes
	if n < 1 {
		n = 1
	}
	return float64(n)
}

// subCount returns how many chunk-boundary subranges [off, off+size)
// splits into — the number of distinct chunks the range touches. The
// dispatch paths use it to know the fan-in count up front and then walk the
// boundaries arithmetically, with no per-request slice.
func (e *ESSD) subCount(off, size int64) int {
	chunk := e.be.cfg.Cluster.ChunkBytes
	return int((off+size-1)/chunk - off/chunk + 1)
}

// Submit implements blockdev.Device. Every request rides one pooled ioOp
// through the frontend → QoS → dispatch stage chain; the accounting that
// the old closure chain did at submission time (counters, debt, limiter
// observation) still happens here, synchronously.
func (e *ESSD) Submit(r *blockdev.Request) {
	if e.detached {
		panic(fmt.Sprintf("essd: Submit on detached volume %q", e.cfg.Name))
	}
	blockdev.Validate(e, r)
	r.Issued = e.eng.Now()
	switch r.Op {
	case blockdev.Write:
		e.counters.Writes++
		e.counters.WriteBytes += r.Size
		debt := e.markWritten(r.Offset, r.Size)
		if debt > 0 {
			e.be.cl.AddDebtFor(e.flow, debt)
		}
		// Under isolation each volume observes the shared (admitted) pool
		// plus only its own private excess — a neighbour's churn beyond the
		// admission rate cannot advance this volume's throttle onset. Under
		// fifo this is exactly the pooled Debt() it always was.
		e.limiter.Observe(e.eng.Now(), e.be.cl.DebtObservedBy(e.flow), e.writeClamp())
	case blockdev.Read:
		e.counters.Reads++
		e.counters.ReadBytes += r.Size
	case blockdev.Trim:
		e.counters.Trims++
	case blockdev.Flush:
		e.counters.Flushes++
	default:
		panic(fmt.Sprintf("essd: unknown op %v", r.Op))
	}
	o := e.getOp(r)
	if e.trc != nil {
		o.trc = e.trc.Start(e.cfg.Name, e.flow, r.Op.String(), e.trcSeq)
		e.trcSeq++
	}
	svc := e.cfg.FrontendLatency.Sample(e.rng)
	if o.trc != nil {
		o.t0 = r.Issued
		o.tsvc = svc
	}
	e.fe.Visit(svc, o.onFE)
}

func (e *ESSD) complete(r *blockdev.Request) {
	if r.OnComplete != nil {
		r.OnComplete(r, e.eng.Now())
	}
}

// writeClamp lazily creates the throttle bucket so the limiter has
// something to clamp; before engagement writes bypass it entirely.
func (e *ESSD) writeClamp() *qos.TokenBucket {
	if e.wClamp == nil {
		e.wClamp = qos.NewTokenBucket(e.eng, e.cfg.ThroughputBudget, e.cfg.ThroughputBudget/50)
	}
	return e.wClamp
}

// ioOp carries one request through the device's stage chain with every
// continuation bound once at construction, so a steady-state Submit
// allocates nothing. The stages run in exactly the order (and with exactly
// the RNG draws) of the closure chain they replace:
//
//	write: frontend → IOPS bucket → bytes bucket [→ write clamp when the
//	       limiter engaged] → burst credits → per-chunk fan-out
//	read:  frontend → IOPS → bytes → credits → fan-out (written ranges),
//	       or two control hops (never-written ranges)
//	trim/flush: frontend → two control hops
type ioOp struct {
	e   *ESSD
	r   *blockdev.Request
	rem int // outstanding chunk subrequests

	// Trace context, set only for sampled requests under SetTracer; nil
	// keeps every stage on the untouched pooled hot path. t0/tsvc track
	// the current stage's start and the frontend service sample; clmp
	// marks a pending throttle-clamp gate span.
	trc  *obs.Req
	t0   sim.Time
	tsvc sim.Duration
	clmp bool

	onFE      func()
	onIOPS    func()
	onBytes   func()
	onTokens  func()
	onCredits func()
	onSub     func()
	onHop     func()
	onFinish  func()

	nextFree *ioOp
}

func (e *ESSD) getOp(r *blockdev.Request) *ioOp {
	o := e.freeOps
	if o != nil {
		e.freeOps = o.nextFree
		o.nextFree = nil
	} else {
		o = &ioOp{e: e}
		o.onFE = o.feDone
		o.onIOPS = o.iopsDone
		o.onBytes = o.bytesDone
		o.onTokens = o.tokensDone
		o.onCredits = o.creditsDone
		o.onSub = o.subDone
		o.onHop = o.hopDone
		o.onFinish = o.finish
	}
	o.r = r
	return o
}

// release returns the op to the free list and fires the request's
// completion last, so a completion that submits new I/O reuses this op.
func (o *ioOp) release() {
	e, r := o.e, o.r
	if o.trc != nil {
		now := e.eng.Now()
		o.trc.Span("req", "request", r.Issued, now, 0, "",
			fmt.Sprintf("%s %d B", r.Op, r.Size))
		o.trc = nil
		o.clmp = false
	}
	o.r = nil
	o.nextFree = e.freeOps
	e.freeOps = o
	e.complete(r)
}

func (o *ioOp) feDone() {
	e, r := o.e, o.r
	if o.trc != nil {
		now := e.eng.Now()
		o.trc.Span("vol", "frontend", o.t0, now, now.Sub(o.t0)-o.tsvc, "", e.fe.Name())
		o.t0 = now
	}
	switch r.Op {
	case blockdev.Write:
		e.iopsTb.Take(e.iopsCost(r.Size), o.onIOPS)
	case blockdev.Read:
		// Reads of never-written ranges are served from volume metadata
		// without touching the cluster data path.
		if e.allWritten(r.Offset, r.Size) {
			e.iopsTb.Take(e.iopsCost(r.Size), o.onIOPS)
			return
		}
		e.counters.UnwrittenReads++
		e.nf.Hop(o.onHop)
	case blockdev.Trim:
		for b := r.Offset / e.cfg.BlockSize; b < (r.Offset+r.Size)/e.cfg.BlockSize; b++ {
			e.written[b>>6] &^= 1 << uint(b&63)
		}
		e.nf.Hop(o.onHop)
	case blockdev.Flush:
		// Journal-acknowledged writes are already durable; a flush is one
		// round trip.
		e.nf.Hop(o.onHop)
	}
}

func (o *ioOp) iopsDone() {
	if o.trc != nil {
		now := o.e.eng.Now()
		o.trc.Span("vol", "iops-gate", o.t0, now, now.Sub(o.t0), "", "")
		o.t0 = now
	}
	o.e.bytesTb.Take(float64(o.r.Size), o.onBytes)
}

// bytesDone charges the engaged write clamp after the combined budget —
// the second half of the old takeWriteTokens; reads and unengaged writes
// fall straight through.
func (o *ioOp) bytesDone() {
	e := o.e
	if o.trc != nil {
		now := e.eng.Now()
		o.trc.Span("vol", "bw-gate", o.t0, now, now.Sub(o.t0), "", "")
		o.t0 = now
	}
	if o.r.Op == blockdev.Write && e.limiter.Engaged() {
		if o.trc != nil {
			o.clmp = true
		}
		e.writeClamp().Take(float64(o.r.Size), o.onTokens)
		return
	}
	o.tokensDone()
}

func (o *ioOp) tokensDone() {
	if o.trc != nil {
		now := o.e.eng.Now()
		if o.clmp {
			o.trc.Span("vol", "throttle", o.t0, now, now.Sub(o.t0), "", "cleaner-debt clamp")
			o.clmp = false
		}
		o.t0 = now
	}
	o.e.spendCredits(o.r.Size, o.onCredits)
}

// creditsDone fans the request out into chunk-boundary subrequests, each
// carried by a pooled subOp. Payload writes cross the network once per
// subrequest, then the cluster replicates them; reads send a command hop
// up and stream the payload down.
func (o *ioOp) creditsDone() {
	e, r := o.e, o.r
	var now sim.Time
	if o.trc != nil {
		now = e.eng.Now()
		if e.credits != nil {
			o.trc.Span("vol", "credits", o.t0, now, now.Sub(o.t0), "", "burst-credit drain")
		}
	}
	chunkBytes := e.be.cfg.Cluster.ChunkBytes
	o.rem = e.subCount(r.Offset, r.Size)
	off, left := r.Offset, r.Size
	write := r.Op == blockdev.Write
	idx := 0
	for left > 0 {
		sz := chunkBytes - off%chunkBytes
		if sz > left {
			sz = left
		}
		s := e.getSub(o, off/chunkBytes, sz)
		if o.trc != nil {
			s.trc = o.trc
			s.lane = fmt.Sprintf("c%d", idx)
			s.t0 = now
		}
		if write {
			e.counters.SubWrites++
			e.nf.SendUp(sz, s.onNet)
		} else {
			e.counters.SubReads++
			e.nf.Hop(s.onNet)
		}
		off += sz
		left -= sz
		idx++
	}
}

func (o *ioOp) subDone() {
	o.rem--
	if o.rem == 0 {
		o.release()
	}
}

// hopDone/finish are the two control hops of the no-payload completions
// (unwritten reads, trims, flushes).
func (o *ioOp) hopDone() { o.e.nf.Hop(o.onFinish) }

func (o *ioOp) finish() { o.release() }

// subOp is one chunk subrequest of an ioOp: network leg, cluster
// operation, and the return leg, after which the fan-in counter on the
// parent op decides completion.
type subOp struct {
	o        *ioOp
	chunk    int64
	sz       int64
	onNet    func()
	onCl     func()
	nextFree *subOp

	// Trace context (sampled requests only): the chunk's lane and the
	// start of its fabric uplink leg.
	trc  *obs.Req
	lane string
	t0   sim.Time
}

func (e *ESSD) getSub(o *ioOp, chunk, sz int64) *subOp {
	s := e.freeSubs
	if s != nil {
		e.freeSubs = s.nextFree
		s.nextFree = nil
	} else {
		s = &subOp{}
		s.onNet = s.netDone
		s.onCl = s.clDone
	}
	s.o = o
	s.chunk = chunk
	s.sz = sz
	return s
}

func (s *subOp) netDone() {
	o := s.o
	e := o.e
	if o.r.Op == blockdev.Write {
		if s.trc != nil {
			now := e.eng.Now()
			s.trc.Span(s.lane, "net-up", s.t0, now,
				now.Sub(s.t0)-e.be.net.UpTransferTime(s.sz), e.polLabel(), "fabric uplink")
			e.be.cl.WriteForTraced(e.flow, s.chunk, s.sz, s.onCl, s.trc, s.lane)
			return
		}
		e.be.cl.WriteFor(e.flow, s.chunk, s.sz, s.onCl)
		return
	}
	if s.trc != nil {
		e.be.cl.ReadForTraced(e.flow, s.chunk, s.sz, s.onCl, s.trc, s.lane)
		return
	}
	e.be.cl.ReadFor(e.flow, s.chunk, s.sz, s.onCl)
}

// clDone releases the subOp before issuing the return leg — the remaining
// state (the fan-in) lives on the parent op.
func (s *subOp) clDone() {
	o := s.o
	e := o.e
	sz := s.sz
	trc, lane := s.trc, s.lane
	s.o = nil
	s.trc = nil
	s.lane = ""
	s.nextFree = e.freeSubs
	e.freeSubs = s
	if o.r.Op == blockdev.Write {
		e.nf.Hop(o.onSub)
		return
	}
	if trc != nil {
		start := e.eng.Now()
		e.nf.SendDown(sz, func() {
			end := e.eng.Now()
			trc.Span(lane, "net-down", start, end,
				end.Sub(start)-e.be.net.DownTransferTime(sz), e.polLabel(), "fabric downlink")
			o.onSub()
		})
		return
	}
	e.nf.SendDown(sz, o.onSub)
}

var _ blockdev.Device = (*ESSD)(nil)
