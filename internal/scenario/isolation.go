package scenario

import (
	"context"
	"fmt"
	"io"

	"essdsim/internal/qos"
	"essdsim/internal/sim"
)

// IsolationComparison runs one noisy-neighbor sweep under several backend
// isolation policies and compares the victim's tail inflation per policy.
// Every variant reuses the base sweep's seed and label, so cell seeds —
// and hence every tenant's arrival draws — are identical across policies:
// the comparison isolates pure scheduling effects. The base sweep's
// Isolation.Policy is overridden per variant; its other isolation knobs
// (quantum, debt-share shaping, victim weight/reservation) carry over.
type IsolationComparison struct {
	Sweep    NeighborSweep
	Policies []qos.IsolationPolicy // default fifo, wfq, reservation
}

func (c IsolationComparison) withDefaults() IsolationComparison {
	if len(c.Policies) == 0 {
		c.Policies = []qos.IsolationPolicy{
			qos.IsolationFIFO, qos.IsolationWFQ, qos.IsolationReservation,
		}
	}
	return c
}

// IsolationVariant is one policy's complete neighbor suite outcome plus
// the worst-case victim inflation across its interference cells.
type IsolationVariant struct {
	Policy qos.IsolationPolicy
	Report *NeighborReport

	// Worst victim tail inflation over the solo control, across every
	// cell with aggressors (0 when the sweep has no control cells).
	MaxP99Inflation  float64
	MaxP999Inflation float64
	// Worst absolute victim tails across interference cells.
	MaxVictimP99  sim.Duration
	MaxVictimP999 sim.Duration
	// ThrottledCells counts interference cells whose victim limiter
	// engaged — under isolation the neighbors' excess churn stays out of
	// the victim's observed debt, so this should not exceed fifo's count.
	ThrottledCells int
}

// IsolationReport is the cross-policy comparison.
type IsolationReport struct {
	Variants    []IsolationVariant
	CachedCells int // across all variants
}

// RunIsolationComparison executes the base neighbor sweep once per policy
// on the expgrid worker pool and folds the per-policy worst cases.
// Results are deterministic and identical for any worker count.
func RunIsolationComparison(ctx context.Context, c IsolationComparison) (*IsolationReport, error) {
	c = c.withDefaults()
	rep := &IsolationReport{}
	for _, p := range c.Policies {
		s := c.Sweep
		s.Isolation.Policy = p
		nr, err := RunNeighbor(ctx, s)
		if err != nil {
			return nil, err
		}
		v := IsolationVariant{Policy: p, Report: nr}
		for _, cell := range nr.Cells {
			if cell.Aggressors == 0 {
				continue
			}
			if cell.P99Inflation > v.MaxP99Inflation {
				v.MaxP99Inflation = cell.P99Inflation
			}
			if cell.P999Inflation > v.MaxP999Inflation {
				v.MaxP999Inflation = cell.P999Inflation
			}
			if cell.VictimLat.P99 > v.MaxVictimP99 {
				v.MaxVictimP99 = cell.VictimLat.P99
			}
			if cell.VictimLat.P999 > v.MaxVictimP999 {
				v.MaxVictimP999 = cell.VictimLat.P999
			}
			if cell.Throttled {
				v.ThrottledCells++
			}
		}
		rep.Variants = append(rep.Variants, v)
		rep.CachedCells += nr.CachedCells
	}
	return rep, nil
}

// FormatIsolation writes the comparison as an aligned table: one row per
// policy with the worst-case victim tails and inflations across the
// interference cells.
func FormatIsolation(w io.Writer, r *IsolationReport) {
	fmt.Fprintf(w, "Isolation comparison: identical arrival streams per cell, backend scheduling policy swept\n")
	fmt.Fprintf(w, "%-12s %10s %10s %8s %8s %10s\n",
		"policy", "max-p99", "max-p99.9", "p99-x", "p999-x", "throttled")
	for _, v := range r.Variants {
		fmt.Fprintf(w, "%-12s %10s %10s %8.2f %8.2f %10d\n",
			v.Policy, fmtLat(v.MaxVictimP99), fmtLat(v.MaxVictimP999),
			v.MaxP99Inflation, v.MaxP999Inflation, v.ThrottledCells)
	}
}
