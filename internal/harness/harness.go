// Package harness runs the paper's experiments (§III, Figures 2-5 and
// Table I) against simulated devices and formats the results as the paper
// reports them. Each Run function is a thin, paper-shaped view over an
// internal/expgrid Sweep: it declares the figure's axes, hands the grid to
// the expgrid worker pool (which runs one freshly constructed,
// appropriately preconditioned device per cell, in parallel), and folds
// the deterministically ordered CellResults into the figure's result type.
// Cell seeds are pure hashes of the cell coordinates, so a cell measures
// identical numbers whether the grid around it grows, shrinks, or runs on
// one worker or many. Options.Workers sizes the pool (default GOMAXPROCS).
package harness

import (
	"context"

	"essdsim/internal/blockdev"
	"essdsim/internal/expgrid"
	"essdsim/internal/sim"
	"essdsim/internal/workload"
)

// Factory constructs a fresh device (with its own engine) for one
// experiment cell. seed decorrelates repeated constructions.
type Factory = expgrid.Factory

// Options tune experiment durations; zero values take defaults.
type Options struct {
	CellDuration sim.Duration // per-cell measurement window (default 500 ms)
	// Warmup is excluded from statistics (default 50 ms). Negative values
	// mean explicitly no warmup, matching the expgrid convention.
	Warmup  sim.Duration
	Seed    uint64
	Workers int // worker-pool size for the grid (default GOMAXPROCS)
}

func (o Options) withDefaults() Options {
	if o.CellDuration <= 0 {
		o.CellDuration = 500 * sim.Millisecond
	}
	if o.Warmup == 0 {
		// Negative warmup passes through: expgrid turns it into "no
		// warmup at all" rather than the 50 ms default.
		o.Warmup = 50 * sim.Millisecond
	}
	return o
}

// sweep builds the expgrid base of one experiment from the options: the
// single-device axis, timing, and the experiment's seed label.
func (o Options) sweep(factory Factory, label string) expgrid.Sweep {
	return expgrid.Sweep{
		Devices:      expgrid.Devices("", factory),
		CellDuration: o.CellDuration,
		Warmup:       o.Warmup,
		Seed:         o.Seed,
		Label:        label,
	}
}

// runGrid executes a sweep with the options' worker pool. The harness API
// predates errors-as-values here: a failed cell means an invalid spec or a
// device bug, so it panics exactly as workload.Run did when the loops were
// serial.
func (o Options) runGrid(sw expgrid.Sweep) []expgrid.CellResult {
	results, err := expgrid.Runner{Workers: o.Workers}.Run(context.Background(), sw)
	if err != nil {
		panic(err)
	}
	return results
}

// Fig2Sizes are the paper's Figure 2 I/O sizes.
var Fig2Sizes = []int64{4 << 10, 16 << 10, 64 << 10, 256 << 10}

// Fig2QDs are the paper's Figure 2 queue depths.
var Fig2QDs = []int{1, 2, 4, 8, 16}

// Fig2Patterns are the paper's four access patterns, in figure order.
var Fig2Patterns = []workload.Pattern{
	workload.RandWrite, workload.SeqWrite, workload.RandRead, workload.SeqRead,
}

// Fig4Sizes are the paper's Figure 4 I/O sizes.
var Fig4Sizes = []int64{4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10}

// Fig4QDs are the paper's Figure 4 queue depths.
var Fig4QDs = []int{1, 2, 4, 8, 16, 32}

// Fig5Ratios are the paper's Figure 5 write ratios, in percent.
var Fig5Ratios = []int{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}

// Precondition prepares a device for a measurement cell. Write cells get a
// half-filled device (a GC-free window, as on a freshly provisioned or
// trimmed drive); read cells get a fully, sequentially written device (the
// layout after a fio fill pass).
func Precondition(dev blockdev.Device, forWrites bool) {
	expgrid.Precondition(dev, forWrites)
}

// LatencyCell is one pixel of Figure 2.
type LatencyCell struct {
	Pattern    workload.Pattern
	BlockSize  int64
	QueueDepth int
	Avg        sim.Duration
	P999       sim.Duration
	Ops        uint64
}

// LatencyGrid is one device's Figure 2 measurement.
type LatencyGrid struct {
	Device string
	Cells  []LatencyCell
}

// Cell returns the cell for (pattern, size, qd), or nil.
func (g *LatencyGrid) Cell(p workload.Pattern, bs int64, qd int) *LatencyCell {
	for i := range g.Cells {
		c := &g.Cells[i]
		if c.Pattern == p && c.BlockSize == bs && c.QueueDepth == qd {
			return c
		}
	}
	return nil
}

// RunLatencyGrid measures the Figure 2 grid on fresh devices from factory.
func RunLatencyGrid(factory Factory, opts Options) *LatencyGrid {
	return RunLatencyGridWith(factory, Fig2Patterns, Fig2Sizes, Fig2QDs, opts)
}

// RunLatencyGridWith measures a custom grid.
func RunLatencyGridWith(factory Factory, patterns []workload.Pattern, sizes []int64, qds []int, opts Options) *LatencyGrid {
	opts = opts.withDefaults()
	sw := opts.sweep(factory, "fig2")
	sw.Patterns = patterns
	sw.BlockSizes = sizes
	sw.QueueDepths = qds
	grid := &LatencyGrid{}
	for _, r := range opts.runGrid(sw) {
		grid.Device = r.Device
		s := r.Res.Lat.Summarize()
		grid.Cells = append(grid.Cells, LatencyCell{
			Pattern: r.Pattern, BlockSize: r.BlockSize, QueueDepth: r.QueueDepth,
			Avg: s.Mean, P999: s.P999, Ops: s.Count,
		})
	}
	return grid
}

// SustainedResult is one device's Figure 3 trace.
type SustainedResult struct {
	Device   string
	Capacity int64

	Interval sim.Duration // bucket width of Rates
	Rates    []float64    // write throughput per bucket, bytes/s

	TotalWritten int64
	Elapsed      sim.Duration

	// KneeCapFrac is the multiple of device capacity written when the
	// sustained throughput first dropped below 55% of its running peak;
	// -1 when no knee occurred.
	KneeCapFrac float64
	// TailRate is the mean throughput over the final five buckets.
	TailRate float64
	// PeakRate is the best smoothed throughput observed.
	PeakRate float64
	// Throttled reports whether an ESSD flow limiter engaged.
	Throttled bool
	// WriteAmp is the local SSD's final write amplification (1 for ESSDs).
	WriteAmp float64
}

// sustainedInfo is the post-run device state a sustained-write cell
// captures via the sweep's Inspect hook, while its device is still alive
// on the worker.
type sustainedInfo struct {
	capacity  int64
	throttled bool
	writeAmp  float64
}

// sustainedSweep is the Figure 3 cell shape: 128 KiB random writes at
// QD 32 until capMultiple × capacity has been written, on a pristine
// (not preconditioned) device.
func sustainedSweep(opts Options, capMultiple float64) expgrid.Sweep {
	sw := opts.sweep(nil, "fig3")
	sw.Patterns = []workload.Pattern{workload.RandWrite}
	sw.BlockSizes = []int64{128 << 10}
	sw.QueueDepths = []int{32}
	sw.CapMultiple = capMultiple
	sw.Precondition = expgrid.PrecondNone
	sw.Inspect = func(dev blockdev.Device, _ expgrid.Cell) any {
		info := sustainedInfo{capacity: dev.Capacity(), writeAmp: 1}
		if e, ok := dev.(interface{ Throttled() bool }); ok {
			info.throttled = e.Throttled()
		}
		if s, ok := dev.(interface{ FTLWriteAmp() float64 }); ok {
			info.writeAmp = s.FTLWriteAmp()
		}
		return info
	}
	return sw
}

// foldSustained computes the Figure 3 knee/tail/peak statistics of one
// sustained-write cell.
func foldSustained(r expgrid.CellResult) *SustainedResult {
	res := r.Res
	info := r.Info.(sustainedInfo)
	out := &SustainedResult{
		Device:       r.Device,
		Capacity:     info.capacity,
		Interval:     res.Series.Interval(),
		Rates:        res.Series.Rates(),
		TotalWritten: res.Bytes,
		Elapsed:      res.Elapsed,
		KneeCapFrac:  -1,
		Throttled:    info.throttled,
		WriteAmp:     info.writeAmp,
	}
	n := res.Series.Len()
	out.TailRate = res.Series.MeanRate(n-5, n)
	for i := 0; i+3 <= n; i++ {
		if m := res.Series.MeanRate(i, i+3); m > out.PeakRate {
			out.PeakRate = m
		}
	}
	if knee := res.Series.KneeIndex(0.55, 3); knee >= 0 {
		var written int64
		for i := 0; i <= knee; i++ {
			written += res.Series.Bytes(i)
		}
		out.KneeCapFrac = float64(written) / float64(out.Capacity)
	}
	return out
}

// RunSustainedWrite performs the Figure 3 experiment: random writes of
// capMultiple × capacity onto a fresh device, tracking the throughput
// timeline, the knee position, and the tail rate.
func RunSustainedWrite(factory Factory, capMultiple float64, opts Options) *SustainedResult {
	return RunSustainedWrites(expgrid.Devices("", factory), capMultiple, opts)[0]
}

// RunSustainedWrites performs the Figure 3 experiment for several devices
// concurrently — one expgrid cell per device — returning results in the
// devices' order.
func RunSustainedWrites(devices []expgrid.NamedFactory, capMultiple float64, opts Options) []*SustainedResult {
	opts = opts.withDefaults()
	sw := sustainedSweep(opts, capMultiple)
	sw.Devices = devices
	outs := make([]*SustainedResult, 0, len(devices))
	for _, r := range opts.runGrid(sw) {
		outs = append(outs, foldSustained(r))
	}
	return outs
}

// RandSeqCell is one point of Figure 4.
type RandSeqCell struct {
	BlockSize  int64
	QueueDepth int
	RandBW     float64 // bytes/s
	SeqBW      float64 // bytes/s
}

// Gain returns random/sequential throughput — the paper's blue lines.
func (c RandSeqCell) Gain() float64 {
	if c.SeqBW <= 0 {
		return 0
	}
	return c.RandBW / c.SeqBW
}

// RandSeqResult is one device's Figure 4 sweep.
type RandSeqResult struct {
	Device string
	Cells  []RandSeqCell
}

// Cell returns the cell for (size, qd), or nil.
func (r *RandSeqResult) Cell(bs int64, qd int) *RandSeqCell {
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.BlockSize == bs && c.QueueDepth == qd {
			return c
		}
	}
	return nil
}

// MaxGain returns the largest random/sequential gain in the sweep — the
// paper's headline 1.52× / 2.79× numbers.
func (r *RandSeqResult) MaxGain() (gain float64, at RandSeqCell) {
	for _, c := range r.Cells {
		if g := c.Gain(); g > gain {
			gain, at = g, c
		}
	}
	return gain, at
}

// RunRandSeqSweep performs the Figure 4 experiment on fresh devices.
func RunRandSeqSweep(factory Factory, opts Options) *RandSeqResult {
	return RunRandSeqSweepWith(factory, Fig4Sizes, Fig4QDs, opts)
}

// RunRandSeqSweepWith sweeps custom sizes and queue depths.
func RunRandSeqSweepWith(factory Factory, sizes []int64, qds []int, opts Options) *RandSeqResult {
	opts = opts.withDefaults()
	sw := opts.sweep(factory, "fig4")
	sw.Patterns = []workload.Pattern{workload.RandWrite, workload.SeqWrite}
	sw.BlockSizes = sizes
	sw.QueueDepths = qds
	sw.Precondition = expgrid.PrecondWrites
	results := opts.runGrid(sw)
	// Enumeration order is pattern-major: the first half of the results is
	// the random sweep, the second half the sequential sweep, each in
	// (size, qd) row-major order.
	out := &RandSeqResult{}
	half := len(results) / 2
	for i := 0; i < half; i++ {
		rnd, seq := results[i], results[i+half]
		out.Device = rnd.Device
		out.Cells = append(out.Cells, RandSeqCell{
			BlockSize:  rnd.BlockSize,
			QueueDepth: rnd.QueueDepth,
			RandBW:     rnd.Res.Throughput(),
			SeqBW:      seq.Res.Throughput(),
		})
	}
	return out
}

// MixedPoint is one write-ratio point of Figure 5.
type MixedPoint struct {
	WriteRatioPct int
	TotalBW       float64 // bytes/s, reads+writes
	WriteBW       float64 // bytes/s, writes only
}

// MixedResult is one device's Figure 5 sweep.
type MixedResult struct {
	Device string
	Points []MixedPoint
}

// Spread returns (max-min)/max of total throughput across ratios — near
// zero for a budget-bound ESSD (Observation #4), large for the local SSD.
func (r *MixedResult) Spread() float64 {
	if len(r.Points) == 0 {
		return 0
	}
	min, max := r.MinMax()
	if max <= 0 {
		return 0
	}
	return (max - min) / max
}

// MinMax returns the extreme total throughputs of the sweep.
func (r *MixedResult) MinMax() (min, max float64) {
	if len(r.Points) == 0 {
		return 0, 0
	}
	min, max = r.Points[0].TotalBW, r.Points[0].TotalBW
	for _, p := range r.Points[1:] {
		if p.TotalBW < min {
			min = p.TotalBW
		}
		if p.TotalBW > max {
			max = p.TotalBW
		}
	}
	return min, max
}

// IOPSPoint is one size point of the Observation #4 footnote experiment.
type IOPSPoint struct {
	BlockSize int64
	IOPS      float64
	Bytes     float64 // bytes/s at that size
}

// IOPSResult holds the IOPS-vs-size sweep. The paper notes that while the
// ESSD's byte throughput is deterministic, its IOPS ceiling is not — it is
// tightly coupled to I/O size. Spread over this sweep quantifies that.
type IOPSResult struct {
	Device string
	Points []IOPSPoint
}

// IOPSSpread returns (max-min)/max of achieved IOPS across sizes.
func (r *IOPSResult) IOPSSpread() float64 {
	if len(r.Points) == 0 {
		return 0
	}
	min, max := r.Points[0].IOPS, r.Points[0].IOPS
	for _, p := range r.Points[1:] {
		if p.IOPS < min {
			min = p.IOPS
		}
		if p.IOPS > max {
			max = p.IOPS
		}
	}
	if max <= 0 {
		return 0
	}
	return (max - min) / max
}

// RunIOPSSweep measures saturated random-write IOPS across I/O sizes —
// the paper's note that Observation #4 "holds only for throughput and not
// for IOPS".
func RunIOPSSweep(factory Factory, sizes []int64, opts Options) *IOPSResult {
	opts = opts.withDefaults()
	sw := opts.sweep(factory, "o4-iops")
	sw.Patterns = []workload.Pattern{workload.RandWrite}
	sw.BlockSizes = sizes
	sw.QueueDepths = []int{32}
	sw.Precondition = expgrid.PrecondWrites
	out := &IOPSResult{}
	for _, r := range opts.runGrid(sw) {
		out.Device = r.Device
		out.Points = append(out.Points, IOPSPoint{
			BlockSize: r.BlockSize,
			IOPS:      r.Res.IOPS(),
			Bytes:     r.Res.Throughput(),
		})
	}
	return out
}

// RunMixedSweep performs the Figure 5 experiment: 128 KiB random I/O at
// QD 32 with the write ratio swept 0..100%.
func RunMixedSweep(factory Factory, opts Options) *MixedResult {
	return RunMixedSweepWith(factory, Fig5Ratios, opts)
}

// RunMixedSweepWith sweeps custom write ratios (percent).
func RunMixedSweepWith(factory Factory, ratios []int, opts Options) *MixedResult {
	opts = opts.withDefaults()
	// Keep the SSD's cell short enough that random overwrites on a full
	// device do not push it into GC mid-cell (Figure 5 measures the
	// pattern sensitivity of peak bandwidth, not GC).
	if opts.CellDuration > 200*sim.Millisecond {
		opts.CellDuration = 200 * sim.Millisecond
	}
	if opts.Warmup >= opts.CellDuration {
		opts.Warmup = opts.CellDuration / 4
	}
	sw := opts.sweep(factory, "fig5")
	sw.Patterns = []workload.Pattern{workload.Mixed}
	sw.BlockSizes = []int64{128 << 10}
	sw.QueueDepths = []int{32}
	sw.WriteRatiosPct = ratios
	sw.Precondition = expgrid.PrecondFull // full device so reads hit data
	out := &MixedResult{}
	for _, r := range opts.runGrid(sw) {
		out.Device = r.Device
		// Use the warmup the cell actually ran with (negative Options
		// warmup reaches the spec as zero).
		window := (r.Res.Elapsed - r.Res.Spec.Warmup).Seconds()
		var writeBW float64
		if window > 0 {
			writeBW = float64(int64(r.Res.WriteLat.Count())*(128<<10)) / window
		}
		out.Points = append(out.Points, MixedPoint{
			WriteRatioPct: r.WriteRatioPct,
			TotalBW:       r.Res.Throughput(),
			WriteBW:       writeBW,
		})
	}
	return out
}
