package cluster

// Observability over the shared cluster: read-only debt peeks (the real
// Debt/DebtObservedBy settle — i.e. mutate — the float drain state, so
// probes sampling mid-run must not call them), state-probe installation,
// and the traced variants of WriteFor/ReadFor. Tracing allocates a few
// closures per SAMPLED request; the untraced paths are untouched.

import (
	"fmt"

	"essdsim/internal/obs"
	"essdsim/internal/sim"
)

// peekSettled computes the pooled debt settleDebt would report now, plus
// the spare cleaner capacity beyond it, without mutating the drain
// state (debtUpdate, cleaned, live, private).
func (c *Cluster) peekSettled() (debt int64, spare float64) {
	debt = c.debt
	dt := c.eng.Now().Sub(c.debtUpdate).Seconds()
	if dt <= 0 || c.cfg.CleanerRate <= 0 {
		return debt, 0
	}
	if debt > 0 {
		if whole := int64(c.cleaned + dt*c.cfg.CleanerRate); whole > 0 {
			debt -= whole
			if debt < 0 {
				spare = float64(-debt)
				debt = 0
			}
		}
	} else {
		spare = dt * c.cfg.CleanerRate
	}
	return debt, spare
}

// PeekDebt is the read-only form of Debt, for observability probes.
func (c *Cluster) PeekDebt() int64 {
	d, _ := c.peekSettled()
	return d
}

// PeekDebtFor is the read-only form of DebtObservedBy, for
// observability probes: the shared pool plus the flow's private
// (unadmitted) debt under isolation.
func (c *Cluster) PeekDebtFor(flow int) int64 {
	debt, spare := c.peekSettled()
	if !c.isoOn || flow < 0 || flow >= len(c.fiso) {
		return debt
	}
	private := c.fiso[flow].private
	if spare > 0 && private > 0 {
		var total float64
		for i := range c.fiso {
			total += c.fiso[i].private
		}
		if total <= spare {
			private = 0
		} else {
			private *= 1 - spare/total
		}
	}
	return debt + int64(private)
}

// policyLabel names the scheduling policy spans and probes report.
func (c *Cluster) policyLabel() string { return c.iso.Policy.String() }

// InstallProbes registers the cluster's state gauges: pooled and
// per-flow cleaner debt, each node's server queue depths/busy slots and
// pipe backlogs, and — under isolation — node 0's DRR deficits and
// reservation tokens per flow (one node is representative; every node
// runs the same scheduler). Call after the flows are registered.
func (c *Cluster) InstallProbes(p *obs.Prober) {
	p.Add("cluster/debt_bytes", func() float64 { return float64(c.PeekDebt()) })
	for i := range c.flows {
		i := i
		p.Add(fmt.Sprintf("cluster/debt/%s", c.flows[i].Name), func() float64 {
			return float64(c.PeekDebtFor(i))
		})
	}
	for i, n := range c.nodes {
		n := n
		pre := fmt.Sprintf("cluster/n%d", i)
		p.Add(pre+"/write/qlen", func() float64 { return float64(n.write.QueueLen()) })
		p.Add(pre+"/write/busy", func() float64 { return float64(n.write.Busy()) })
		p.Add(pre+"/read/qlen", func() float64 { return float64(n.read.QueueLen()) })
		p.Add(pre+"/stream/backlog_s", func() float64 { return n.stream.Backlog().Seconds() })
		p.Add(pre+"/repl/backlog_s", func() float64 { return n.repl.Backlog().Seconds() })
		p.Add(pre+"/readbw/backlog_s", func() float64 { return n.readBW.Backlog().Seconds() })
	}
	if !c.isoOn || len(c.nodes) == 0 {
		return
	}
	switch q := c.nodes[0].write.Scheduler().(type) {
	case *sim.ReservationQueue:
		for i := range c.flows {
			i := i
			name := c.flows[i].Name
			p.Add(fmt.Sprintf("cluster/n0/write/deficit/%s", name), func() float64 { return q.FlowDeficit(i) })
			p.Add(fmt.Sprintf("cluster/n0/write/tokens/%s", name), func() float64 { return q.PeekTokens(i) })
		}
	case *sim.DRRQueue:
		for i := range c.flows {
			i := i
			p.Add(fmt.Sprintf("cluster/n0/write/deficit/%s", c.flows[i].Name), func() float64 { return q.FlowDeficit(i) })
		}
	}
}

// WriteForTraced is WriteFor with the stages of this chunk recorded on
// the sampled request's trace: the primary stream transfer and journal
// write service on lane, each replica's transfer and remote service on
// lane/r<i>. Service times are sampled in the same order as the
// untraced path, so tracing never shifts the RNG stream.
func (c *Cluster) WriteForTraced(flow int, chunk int64, bytes int64, done func(), trc *obs.Req, lane string) {
	if trc == nil {
		c.WriteFor(flow, chunk, bytes, done)
		return
	}
	if flow >= 0 {
		c.flows[flow].Writes++
		c.flows[flow].WriteBytes += bytes
	}
	p := c.NodeOfChunk(chunk)
	pn := c.nodes[p]
	pn.stats.Writes++
	pn.stats.WriteBytes += bytes
	now := c.eng.Now()
	j := c.getWriteJob()
	j.flow = flow
	j.done = done
	j.pn = pn
	j.rem = 1 + (c.cfg.Replicas - 1)
	j.trc = trc
	j.lane = lane
	j.t0 = now
	j.tb = bytes
	pn.stream.TransferFlow(flow, bytes, j.onStream)
	for i := 0; i < c.cfg.Replicas-1; i++ {
		r := (p + 1 + i) % len(c.nodes)
		rn := c.nodes[r]
		rn.stats.ReplWrites++
		rj := c.getReplJob()
		rj.j = j
		rj.rn = rn
		rj.trc = trc
		rj.lane = fmt.Sprintf("%s/r%d", lane, i+1)
		rj.t0 = now
		rj.pp = pn.repl
		rj.tb = bytes
		pn.repl.TransferFlow(flow, bytes, rj.onRepl)
	}
}

// ReadForTraced is ReadFor with the chunk's read service and read-
// bandwidth stages recorded on the sampled request's trace.
func (c *Cluster) ReadForTraced(flow int, chunk int64, bytes int64, done func(), trc *obs.Req, lane string) {
	if trc == nil {
		c.ReadFor(flow, chunk, bytes, done)
		return
	}
	if flow >= 0 {
		c.flows[flow].Reads++
		c.flows[flow].ReadBytes += bytes
	}
	p := c.NodeOfChunk(chunk)
	n := c.nodes[p]
	n.stats.Reads++
	n.stats.ReadBytes += bytes
	j := c.getReadJob()
	j.n = n
	j.flow = flow
	j.bytes = bytes
	j.done = done
	j.trc = trc
	j.lane = lane
	j.t0 = c.eng.Now()
	svc := c.cfg.ReadService.Sample(c.rng)
	j.tsvc = svc
	n.read.VisitFlow(flow, svc, j.onSvc)
}
