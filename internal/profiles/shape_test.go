package profiles

import (
	"testing"

	"essdsim/internal/blockdev"
	"essdsim/internal/sim"
	"essdsim/internal/workload"
)

func runOn(t *testing.T, name string, fill float64, spec workload.Spec) (*workload.Result, blockdev.Device) {
	t.Helper()
	eng := sim.NewEngine()
	d, err := ByName(name, eng, sim.NewRNG(17, 17))
	if err != nil {
		t.Fatal(err)
	}
	switch dd := d.(type) {
	case interface{ Precondition(float64) }:
		dd.Precondition(fill)
	case interface{ Precondition(float64, bool) }:
		dd.Precondition(fill, false)
	}
	return workload.Run(d, spec), d
}

// TestShapeFig4Gains verifies the Observation #3 shape: random writes beat
// sequential writes on both ESSDs (strongly on ESSD-2), while the local SSD
// shows no meaningful difference before GC.
func TestShapeFig4Gains(t *testing.T) {
	if testing.Short() {
		t.Skip("shape probe skipped in -short")
	}
	gain := func(name string, bs int64, qd int) float64 {
		rnd, _ := runOn(t, name, 0.5, workload.Spec{
			Pattern: workload.RandWrite, BlockSize: bs, QueueDepth: qd,
			Duration: 300 * sim.Millisecond, Warmup: 50 * sim.Millisecond, Seed: 5,
		})
		seq, _ := runOn(t, name, 0.5, workload.Spec{
			Pattern: workload.SeqWrite, BlockSize: bs, QueueDepth: qd,
			Duration: 300 * sim.Millisecond, Warmup: 50 * sim.Millisecond, Seed: 5,
		})
		g := rnd.Throughput() / seq.Throughput()
		t.Logf("%s bs=%dK qd=%d: rand=%.2f GB/s seq=%.2f GB/s gain=%.2fx",
			name, bs>>10, qd, rnd.Throughput()/1e9, seq.Throughput()/1e9, g)
		return g
	}
	// ESSD-1: modest gain at high QD, small-to-medium sizes (paper ≤1.52×).
	g1 := gain("essd1", 16<<10, 32)
	if g1 < 1.15 || g1 > 1.9 {
		t.Errorf("ESSD-1 16K/QD32 gain = %.2f, want ~1.2-1.5", g1)
	}
	// ESSD-2: strong gain (paper up to 2.79×).
	g2 := gain("essd2", 16<<10, 32)
	if g2 < 2.0 || g2 > 3.5 {
		t.Errorf("ESSD-2 16K/QD32 gain = %.2f, want ~2.3-2.8", g2)
	}
	g2b := gain("essd2", 256<<10, 8)
	t.Logf("ESSD-2 256K/QD8 gain = %.2f", g2b)
	// SSD: no meaningful gain pre-GC.
	gs := gain("ssd", 16<<10, 32)
	if gs < 0.85 || gs > 1.15 {
		t.Errorf("SSD 16K/QD32 gain = %.2f, want ~1.0", gs)
	}
	// QD1 gain should be ~1 everywhere (same path).
	gq1 := gain("essd2", 16<<10, 1)
	if gq1 < 0.9 || gq1 > 1.2 {
		t.Errorf("ESSD-2 16K/QD1 gain = %.2f, want ~1.0", gq1)
	}
}

// TestShapeFig5Deterministic verifies Observation #4: ESSD total throughput
// pins to the provisioned budget across write ratios; the SSD varies.
func TestShapeFig5Deterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("shape probe skipped in -short")
	}
	sweep := func(name string) (min, max float64) {
		min, max = 1e18, 0
		for _, wr := range []float64{0, 0.3, 0.5, 0.7, 1.0} {
			res, _ := runOn(t, name, 1.0, workload.Spec{
				Pattern: workload.Mixed, WriteRatio: wr,
				BlockSize: 128 << 10, QueueDepth: 32,
				Duration: 400 * sim.Millisecond, Warmup: 100 * sim.Millisecond, Seed: 5,
			})
			tp := res.Throughput()
			t.Logf("%s wr=%.0f%%: %.2f GB/s", name, wr*100, tp/1e9)
			if tp < min {
				min = tp
			}
			if tp > max {
				max = tp
			}
		}
		return min, max
	}
	min1, max1 := sweep("essd1")
	if spread := (max1 - min1) / max1; spread > 0.10 {
		t.Errorf("ESSD-1 mixed throughput spread %.1f%%, want <10%%", spread*100)
	}
	if max1 < 2.6e9 || max1 > 3.3e9 {
		t.Errorf("ESSD-1 budget throughput = %.2f GB/s, want ≈3.0", max1/1e9)
	}
	min2, max2 := sweep("essd2")
	if spread := (max2 - min2) / max2; spread > 0.10 {
		t.Errorf("ESSD-2 mixed throughput spread %.1f%%, want <10%%", spread*100)
	}
	if max2 < 0.95e9 || max2 > 1.25e9 {
		t.Errorf("ESSD-2 budget throughput = %.2f GB/s, want ≈1.1", max2/1e9)
	}
	minS, maxS := sweep("ssd")
	if spread := (maxS - minS) / maxS; spread < 0.20 {
		t.Errorf("SSD mixed throughput spread %.1f%%, want >20%% (pattern-sensitive)", spread*100)
	}
	if maxS < 3.4e9 || maxS > 5.0e9 {
		t.Errorf("SSD peak mixed throughput = %.2f GB/s, want ≈4.3", maxS/1e9)
	}
}

// TestShapeFig3Knees verifies Observation #2: sustained random writes of 3×
// capacity collapse at ~0.9× capacity on the SSD, at ~2.55× on ESSD-1, and
// never on ESSD-2.
func TestShapeFig3Knees(t *testing.T) {
	if testing.Short() {
		t.Skip("shape probe skipped in -short")
	}
	run := func(name string) (kneeFrac float64, tail float64, res *workload.Result, dev blockdev.Device) {
		eng := sim.NewEngine()
		d, err := ByName(name, eng, sim.NewRNG(23, 23))
		if err != nil {
			t.Fatal(err)
		}
		res = workload.Run(d, workload.Spec{
			Pattern: workload.RandWrite, BlockSize: 128 << 10, QueueDepth: 32,
			TotalBytes: 3 * d.Capacity(), Seed: 5,
		})
		knee := res.Series.KneeIndex(0.55, 3)
		if knee < 0 {
			return -1, res.Series.MeanRate(res.Series.Len()-5, res.Series.Len()), res, d
		}
		// Convert knee bucket to capacity fraction written by then.
		var written int64
		for i := 0; i <= knee; i++ {
			written += res.Series.Bytes(i)
		}
		return float64(written) / float64(d.Capacity()),
			res.Series.MeanRate(res.Series.Len()-5, res.Series.Len()), res, d
	}
	fracS, tailS, _, _ := run("ssd")
	t.Logf("SSD knee at %.2fx capacity, tail %.0f MB/s", fracS, tailS/1e6)
	if fracS < 0.6 || fracS > 1.3 {
		t.Errorf("SSD knee at %.2fx capacity, want ≈0.9x", fracS)
	}
	if tailS > 1.0e9 {
		t.Errorf("SSD tail %.0f MB/s, want deep collapse", tailS/1e6)
	}
	frac1, tail1, _, d1 := run("essd1")
	t.Logf("ESSD-1 knee at %.2fx capacity, tail %.0f MB/s", frac1, tail1/1e6)
	if frac1 < 2.0 || frac1 > 2.9 {
		t.Errorf("ESSD-1 knee at %.2fx capacity, want ≈2.55x", frac1)
	}
	if e, ok := d1.(interface{ Throttled() bool }); ok && !e.Throttled() {
		t.Error("ESSD-1 flow limiter never engaged")
	}
	frac2, tail2, _, _ := run("essd2")
	t.Logf("ESSD-2 knee at %.2fx capacity, tail %.0f MB/s", frac2, tail2/1e6)
	if frac2 >= 0 {
		t.Errorf("ESSD-2 shows a knee at %.2fx capacity, want none within 3x", frac2)
	}
	if tail2 < 0.9e9 {
		t.Errorf("ESSD-2 tail %.0f MB/s, want sustained ≈1.1 GB/s", tail2/1e6)
	}
}
