package slo

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"

	"essdsim/internal/blockdev"
	"essdsim/internal/expgrid"
	"essdsim/internal/profiles"
	"essdsim/internal/sim"
	"essdsim/internal/workload"
)

func gp2sFactory() expgrid.NamedFactory {
	return expgrid.NamedFactory{Name: "gp2s", New: func(seed uint64) blockdev.Device {
		dev, err := profiles.ByName("gp2s", sim.NewEngine(), sim.NewRNG(seed, seed^0x5c))
		if err != nil {
			panic(err)
		}
		return dev
	}}
}

func testSearch(cache *expgrid.Cache) Search {
	return Search{
		Device:    gp2sFactory(),
		Pattern:   workload.RandWrite,
		BlockSize: 256 << 10,
		Arrival:   workload.Uniform,
		MinRate:   200,
		MaxRate:   3000,
		Tolerance: 50,
		Target:    Target{P99: 20 * sim.Millisecond},
		Horizon:   4 * sim.Second,
		Cache:     cache,
		Seed:      7,
	}
}

// TestSearchConvergence asserts the acceptance criterion: each binary
// search converges within ⌈log2(range/tolerance)⌉ midpoint probes, and the
// two SLO-max rates are consistent with the CreditBucket analytic bounds.
func TestSearchConvergence(t *testing.T) {
	s := testSearch(expgrid.NewCache(0))
	rep, err := Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	bound := rep.MaxBisections()
	if rep.Bisections > 2*bound {
		t.Fatalf("search used %d bisections across two predicates, bound is 2x%d", rep.Bisections, bound)
	}
	// 2 endpoints + at most `bound` midpoints per predicate, shared probes
	// deduplicated.
	if got, max := len(rep.Probes), 2+2*bound; got > max {
		t.Fatalf("search evaluated %d distinct rates, want <= %d", got, max)
	}

	if !rep.Burstable {
		t.Fatal("gp2s should report as burstable")
	}
	if rep.PreBelowRange || rep.PostBelowRange {
		t.Fatalf("20ms p99 should be attainable above the range minimum: %+v", rep)
	}
	if rep.PreRangeCapped {
		t.Fatalf("pre-exhaustion SLO-max should lie inside [%v, %v]", s.MinRate, s.MaxRate)
	}
	if rep.PostMaxRate > rep.PreMaxRate+s.Tolerance {
		t.Fatalf("post-cliff SLO-max %.0f/s exceeds pre-exhaustion %.0f/s", rep.PostMaxRate, rep.PreMaxRate)
	}

	// Analytic cross-checks against the credit-bucket parameters the probe
	// inspected: b = baseline, B = burst ceiling, C = initial bank.
	b, B, C := rep.BaselineBps, rep.BurstBps, rep.InitialCredits
	if b <= 0 || B <= b || C <= 0 {
		t.Fatalf("implausible credit model: baseline=%v burst=%v bank=%v", b, B, C)
	}
	bs := float64(rep.BlockSize)

	// Pre-exhaustion: while credits last the volume serves at the burst
	// ceiling, so the SLO-max offered rate cannot meaningfully exceed it.
	preOffered := rep.PreMaxRate * bs
	if preOffered > 1.25*B {
		t.Fatalf("pre-exhaustion SLO-max offers %.0f B/s, above burst ceiling %.0f B/s", preOffered, B)
	}

	// Post-cliff: an offered rate is sustainable forever iff its credit
	// drain rate offered*(1-b/B) stays within the earn rate b, i.e.
	// offered <= b*B/(B-b). Rates above that exhaust, but only within the
	// probe horizon when the drain outpaces C/horizon; the measured
	// SLO-max must land between the two.
	sustainable := b * B / (B - b)
	horizonBound := (C/rep.Horizon.Seconds() + b) / (1 - b/B)
	postOffered := rep.PostMaxRate * bs
	if postOffered < 0.75*sustainable {
		t.Fatalf("post-cliff SLO-max offers %.0f B/s, below the analytic sustainable rate %.0f B/s", postOffered, sustainable)
	}
	if postOffered > 1.5*horizonBound {
		t.Fatalf("post-cliff SLO-max offers %.0f B/s, above the horizon drain bound %.0f B/s", postOffered, horizonBound)
	}
}

// TestSearchWarmRunByteIdentical asserts that a cache-warm repeat of a
// search executes zero new cells and serializes to byte-identical CSV.
func TestSearchWarmRunByteIdentical(t *testing.T) {
	cache := expgrid.NewCache(0)
	cold, err := Run(context.Background(), testSearch(cache))
	if err != nil {
		t.Fatal(err)
	}
	if cold.CellsRun != len(cold.Probes) {
		t.Fatalf("cold run: %d of %d probes simulated", cold.CellsRun, len(cold.Probes))
	}
	warm, err := Run(context.Background(), testSearch(cache))
	if err != nil {
		t.Fatal(err)
	}
	if warm.CellsRun != 0 {
		t.Fatalf("warm run simulated %d cells, want 0", warm.CellsRun)
	}
	for _, p := range warm.Probes {
		if !p.Cached {
			t.Fatalf("warm probe at %.0f/s not marked cached", p.RatePerSec)
		}
	}
	assertSameCSV(t, cold, warm)
}

// TestSearchCachePersistence asserts the cache survives a process restart:
// a search against a cache loaded from the JSON file written by the cold
// run simulates nothing and reproduces the CSV byte for byte.
func TestSearchCachePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweepcache.json")
	cache := expgrid.NewCache(0)
	cold, err := Run(context.Background(), testSearch(cache))
	if err != nil {
		t.Fatal(err)
	}
	if err := cache.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	reloaded := expgrid.NewCache(0)
	if err := reloaded.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if reloaded.Len() != cache.Len() {
		t.Fatalf("reloaded cache has %d entries, want %d", reloaded.Len(), cache.Len())
	}
	warm, err := Run(context.Background(), testSearch(reloaded))
	if err != nil {
		t.Fatal(err)
	}
	if warm.CellsRun != 0 {
		t.Fatalf("restart-warm run simulated %d cells, want 0", warm.CellsRun)
	}
	assertSameCSV(t, cold, warm)

	// Saving the reloaded cache reproduces the file byte for byte.
	var a, b bytes.Buffer
	if err := cache.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := reloaded.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("cache file not byte-identical after a load/save round trip")
	}
}

func assertSameCSV(t *testing.T, a, b *Report) {
	t.Helper()
	var ca, cb bytes.Buffer
	if err := WriteProbesCSV(&ca, a); err != nil {
		t.Fatal(err)
	}
	if err := WriteProbesCSV(&cb, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca.Bytes(), cb.Bytes()) {
		t.Fatalf("probe CSV differs between runs:\n--- a ---\n%s\n--- b ---\n%s", ca.String(), cb.String())
	}
}

// TestSearchValidate covers the declarative error paths.
func TestSearchValidate(t *testing.T) {
	if _, err := Run(context.Background(), Search{}); err == nil {
		t.Fatal("want error for missing device factory")
	}
	s := Search{Device: gp2sFactory()}
	if _, err := Run(context.Background(), s); err == nil {
		t.Fatal("want error for missing target")
	}
	s.Target = Target{P99: sim.Millisecond}
	s.MinRate, s.MaxRate = 100, 100
	if _, err := Run(context.Background(), s); err == nil {
		t.Fatal("want error for empty rate range")
	}
}
