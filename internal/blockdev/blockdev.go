// Package blockdev defines the block-device abstraction shared by the local
// SSD and ESSD simulators: a logical-block address space accessed with
// asynchronous read/write/trim requests, exactly the interface the paper's
// devices expose to the host (§II-A).
package blockdev

import (
	"fmt"

	"essdsim/internal/sim"
)

// Op is the type of a block I/O operation.
type Op uint8

// Supported operation types.
const (
	Read Op = iota
	Write
	Trim
	Flush
)

// String returns the fio-style name of the operation.
func (o Op) String() string {
	switch o {
	case Read:
		return "read"
	case Write:
		return "write"
	case Trim:
		return "trim"
	case Flush:
		return "flush"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Request is one asynchronous block I/O. Submit schedules it inside the
// device's simulation engine; OnComplete fires in virtual time when the
// device acknowledges the I/O.
type Request struct {
	Op     Op
	Offset int64 // byte offset, must be block-aligned
	Size   int64 // byte length, must be a multiple of the block size

	Issued sim.Time // set by the device at submission

	// OnComplete is invoked exactly once when the request finishes.
	// It may be nil.
	OnComplete func(r *Request, at sim.Time)

	// Hint marks requests generated internally (GC, prefetch, replication)
	// so accounting can separate them from host I/O.
	Hint string
}

// Latency returns the completion latency given the completion time.
func (r *Request) Latency(at sim.Time) sim.Duration { return at.Sub(r.Issued) }

// Device is a simulated block storage device. Submit is asynchronous and
// non-blocking: completions are delivered through Request.OnComplete in
// virtual time. Devices are single-threaded within their engine.
type Device interface {
	// Name identifies the device (e.g. "ESSD-1 (io2)").
	Name() string
	// Capacity returns the usable capacity in bytes.
	Capacity() int64
	// BlockSize returns the logical block size in bytes (typically 4096).
	BlockSize() int
	// Engine returns the simulation engine the device runs on.
	Engine() *sim.Engine
	// Submit enqueues the request. It panics on misaligned or out-of-range
	// requests, which indicate harness bugs rather than device conditions.
	Submit(r *Request)
}

// Validate panics if the request is not aligned and in range for the device.
// Devices call this at the top of Submit.
func Validate(d Device, r *Request) {
	bs := int64(d.BlockSize())
	if r.Op == Flush {
		return
	}
	if r.Size <= 0 || r.Size%bs != 0 {
		panic(fmt.Sprintf("%s: bad request size %d (block %d)", d.Name(), r.Size, bs))
	}
	if r.Offset < 0 || r.Offset%bs != 0 {
		panic(fmt.Sprintf("%s: misaligned offset %d", d.Name(), r.Offset))
	}
	if r.Offset+r.Size > d.Capacity() {
		panic(fmt.Sprintf("%s: request [%d,%d) beyond capacity %d",
			d.Name(), r.Offset, r.Offset+r.Size, d.Capacity()))
	}
}

// Config captures the externally visible envelope of a device, mirroring the
// rows of the paper's Table I.
type Config struct {
	Provider   string  // e.g. "Amazon AWS"
	Model      string  // e.g. "io2"
	MaxReadBW  float64 // bytes/s
	MaxWriteBW float64 // bytes/s
	MaxIOPS    float64
	Capacity   int64  // bytes
	Kind       string // "ESSD" or "SSD"
}

// GBps formats a byte rate as GB/s (decimal, as in the paper).
func GBps(bytesPerSec float64) float64 { return bytesPerSec / 1e9 }
