package expgrid

import (
	"fmt"
	"math"

	"essdsim/internal/blockdev"
	"essdsim/internal/sim"
	"essdsim/internal/trace"
	"essdsim/internal/workload"
	"essdsim/kv"
)

// Factory constructs a fresh device (with its own engine) for one
// experiment cell. seed decorrelates repeated constructions.
type Factory func(seed uint64) blockdev.Device

// NamedFactory is one value of a sweep's device axis. The name feeds the
// cell seed derivation, so it should be stable across runs (a profile name
// like "essd1", not a pointer-ish string).
type NamedFactory struct {
	Name string
	New  Factory
}

// Devices is a convenience constructor for a single-device axis.
func Devices(name string, f Factory) []NamedFactory {
	return []NamedFactory{{Name: name, New: f}}
}

// Precond selects how a cell's device is prepared before measurement.
type Precond uint8

// Preconditioning modes.
const (
	// PrecondAuto half-fills the device for pure-write patterns (a GC-free
	// window) and fully fills it otherwise (so reads hit data).
	PrecondAuto Precond = iota
	// PrecondWrites always uses the write-cell preparation (half fill).
	PrecondWrites
	// PrecondFull always fully, sequentially fills the device.
	PrecondFull
	// PrecondNone runs on the pristine device (e.g. sustained-write
	// experiments that measure the fill itself).
	PrecondNone
)

// Precondition prepares a device for a measurement cell. Write cells get a
// half-filled device (a GC-free window, as on a freshly provisioned or
// trimmed drive); read cells get a fully, sequentially written device (the
// layout after a fio fill pass).
func Precondition(dev blockdev.Device, forWrites bool) {
	fill := 1.0
	if forWrites {
		fill = 0.5
	}
	switch d := dev.(type) {
	case interface{ Precondition(float64) }:
		d.Precondition(fill)
	case interface{ Precondition(float64, bool) }:
		d.Precondition(fill, false)
	}
}

// Kind selects the per-cell workload family of a sweep.
type Kind uint8

// Sweep kinds.
const (
	// Closed runs workload.Run: a fixed queue depth of outstanding I/Os,
	// the paper's fio-style microbenchmark shape.
	Closed Kind = iota
	// Open runs workload.RunOpen: requests issued on an arrival schedule
	// regardless of completions, the regime where provisioned budgets and
	// burst credits dominate (Observation/Implication #4). The grid gains
	// Arrivals and RatesPerSec axes; QueueDepths is unused.
	Open
	// TraceReplay runs trace.Replay of Sweep.Trace once per device cell.
	// All axes other than Devices are unused.
	TraceReplay
	// TenantMix runs workload.RunTenants: several generators against
	// distinct volumes inside one engine, the shared-backend multi-tenant
	// regime. The grid gains an AggressorCounts axis and reuses
	// RatesPerSec (per-aggressor offered rate) and WriteRatiosPct
	// (aggressor write ratio); the Tenants hook builds each cell's engine
	// and tenant mix from those coordinates. Devices names backend
	// variants (factories may be nil — the hook constructs everything).
	TenantMix
	// KVMix runs kv.RunMix: several key-value tenants (LSM or page-store
	// engines on volumes of one shared backend) driven by open-loop
	// zipfian point reads and writes inside one engine. The grid gains
	// KVEngines, KVSkews, and KVValueSizes axes; the KV hook builds each
	// cell's engine and tenant set from those coordinates. Devices names
	// backend tiers (factories may be nil — the hook constructs
	// everything).
	KVMix
)

// String names the sweep kind.
func (k Kind) String() string {
	switch k {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case TraceReplay:
		return "trace"
	case TenantMix:
		return "tenants"
	case KVMix:
		return "kv"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Sweep declares an experiment grid: the cross product of its axes, plus
// the per-cell workload shape shared by every cell. Kind selects the
// workload family each cell runs; axes that a kind does not use are
// ignored by enumeration and validation.
type Sweep struct {
	// Kind selects the cell workload family (default Closed).
	Kind Kind

	// Axes. Devices is always required. Closed sweeps need Patterns,
	// BlockSizes, and QueueDepths; Open sweeps need Patterns, BlockSizes,
	// Arrivals, and RatesPerSec; TraceReplay sweeps need only Devices and
	// Trace. WriteRatiosPct is optional and multiplies only Mixed cells;
	// cells of every other pattern carry a write-ratio coordinate of -1
	// (so adding a ratio axis never re-seeds or duplicates them).
	Devices        []NamedFactory
	Patterns       []workload.Pattern
	BlockSizes     []int64
	QueueDepths    []int
	WriteRatiosPct []int

	// Open-loop axes (Kind == Open): every combination of arrival shape
	// and offered rate becomes a cell issuing OpenOps requests on that
	// schedule (default 2000).
	Arrivals    []workload.Arrival
	RatesPerSec []float64
	OpenOps     uint64

	// OpenSampleInterval overrides the completion-timeline bucket width of
	// open cells (default 10 ms). OpenWindowPercentiles additionally keeps
	// a latency histogram per bucket so windowed p99/p99.9 can be read
	// from the result (see workload.OpenSpec.WindowPercentiles).
	OpenSampleInterval    sim.Duration
	OpenWindowPercentiles bool

	// Trace holds the records a TraceReplay sweep replays, identically,
	// on each device cell. FitTrace additionally passes the records
	// through trace.Fit against each cell's own device geometry first —
	// the standard preparation for foreign (e.g. MSR-Cambridge) traces
	// that address volumes far larger than the scaled simulated devices.
	Trace    []trace.Record
	FitTrace bool

	// Tenant-mix axis (Kind == TenantMix): each cell carries an aggressor
	// count alongside its per-aggressor rate (RatesPerSec) and write
	// ratio (WriteRatiosPct, applied unconditionally for this kind).
	// Include 0 for solo-victim control cells.
	AggressorCounts []int

	// Tenants builds a TenantMix cell's engine and tenant mix from the
	// cell coordinates. Like a device Factory, the hook's semantics are
	// outside the cache key: it must be a pure function of the cell (seed
	// included), and callers changing what it builds should change the
	// sweep Label with it.
	Tenants func(c Cell) (*sim.Engine, []workload.Tenant)

	// InspectMix is Inspect's TenantMix counterpart: it runs on the
	// worker after the cell's mix drains, with every tenant's device
	// still alive, and its return value is stored in CellResult.Info.
	InspectMix func(tenants []workload.Tenant, c Cell) any

	// KV-mix axes (Kind == KVMix): every engine design × key skew ×
	// value size (× device tier) becomes a cell of concurrent KV tenants.
	// Engine names are opaque to the grid — the KV hook interprets them —
	// but skews must lie in [0, 1) and value sizes must be positive.
	KVEngines    []string
	KVSkews      []float64
	KVValueSizes []int64

	// KV builds a KVMix cell's engine and tenant set from the cell
	// coordinates. Like the Tenants hook, its semantics are outside the
	// cache key: it must be a pure function of the cell (seed included),
	// and callers changing what it builds should change the sweep Label
	// with it.
	KV func(c Cell) (*sim.Engine, []kv.MixTenant)

	// InspectKV is Inspect's KVMix counterpart: it runs on the worker
	// after the cell's tenants drain, with every engine and device still
	// alive, and its return value is stored in CellResult.Info.
	InspectKV func(tenants []kv.MixTenant, c Cell) any

	// CellDuration bounds each closed-loop cell's measurement window
	// (default 500 ms); Warmup is excluded from statistics (default 50 ms;
	// negative values mean no warmup at all). When CapMultiple is > 0 the
	// cell instead stops after CapMultiple × device capacity bytes, with
	// no warmup — the sustained-write shape. Open and TraceReplay cells
	// run to their request count / trace end and ignore all three.
	CellDuration sim.Duration
	Warmup       sim.Duration
	CapMultiple  float64

	Precondition Precond

	// Inspect, when non-nil, runs on the worker after the cell's workload
	// completes, while the measured device is still alive; its return
	// value is stored in CellResult.Info. Use it to capture post-run
	// device state (throttle flags, write amplification, GC counters)
	// that the workload Result alone cannot show. It must not touch
	// anything shared between cells.
	Inspect func(dev blockdev.Device, c Cell) any

	// Cache, when non-nil, memoizes successful cell results keyed by the
	// cell seed plus a fingerprint of the sweep's result-shaping settings:
	// a cell whose coordinates and settings match a cached entry returns
	// the stored measurement without constructing a device. Results served
	// from the cache are shared pointers — treat them as read-only.
	Cache *Cache

	// ForceRun bypasses cache reads (cells always simulate) while still
	// storing fresh results. Observability runs set it: a cache-warm cell
	// would return its stored measurement without producing any trace or
	// probe samples. The cache fingerprint is unchanged, so forced runs
	// refresh the same entries ordinary runs read.
	ForceRun bool

	// DecodeInfo rehydrates an Inspect capture loaded from a persisted
	// cache file (raw JSON in, the same concrete type Inspect returns
	// out). Sweeps that use both Cache persistence and Inspect must set
	// it; without it, disk-loaded entries miss and the cell re-runs.
	DecodeInfo func(raw []byte) (any, error)

	// Seed is the root seed; Label further decorrelates sweeps that share
	// a root seed and coordinates (e.g. two experiments on one CLI seed).
	// Both feed CellSeed.
	Seed  uint64
	Label string

	// Variant distinguishes sweeps that must NOT share cache entries but
	// must measure identical arrival streams: it feeds the cache
	// fingerprint (when non-empty; "" keeps the pre-Variant fingerprint)
	// and not the cell seeds. The isolation axis uses it — every policy
	// variant of a scenario sees the same per-cell workload draws, so
	// differences are pure scheduling effects, while each variant caches
	// separately.
	Variant string

	// fingerprint memoizes the cache fingerprint; set by withDefaults.
	fingerprint uint64
}

func (s Sweep) withDefaults() Sweep {
	if s.CellDuration <= 0 {
		s.CellDuration = 500 * sim.Millisecond
	}
	if s.Warmup == 0 {
		s.Warmup = 50 * sim.Millisecond
	} else if s.Warmup < 0 {
		s.Warmup = 0
	}
	if s.Kind == Open && s.OpenOps == 0 {
		s.OpenOps = 2000
	}
	s.fingerprint = s.fp()
	return s
}

// Fingerprint hashes every sweep setting that shapes a cell's measurement
// but is not part of the cell's coordinates (and hence its seed): the
// kind, time bounds, preconditioning, open-loop knobs, and the trace
// content. A Cache entry is shared between two sweeps only when their
// fingerprints and the cell seeds both match. Zero-valued fields are
// normalized to their runtime defaults first, so the returned value is
// exactly what the runner keys the cache with.
func (s Sweep) Fingerprint() uint64 {
	if s.fingerprint == 0 {
		s = s.withDefaults()
	}
	return s.fingerprint
}

// fp computes the fingerprint of the (already defaulted) sweep settings.
func (s Sweep) fp() uint64 {
	h := newCoordHash()
	h.str("essdsim-cache-v1")
	h.word(uint64(s.Kind))
	h.word(uint64(s.CellDuration))
	h.word(uint64(int64(s.Warmup) + 1))
	h.word(math.Float64bits(s.CapMultiple))
	h.word(uint64(s.Precondition))
	h.word(s.OpenOps)
	h.word(uint64(s.OpenSampleInterval))
	if s.OpenWindowPercentiles {
		h.str("winpct")
	}
	if s.FitTrace {
		h.str("fittrace")
	}
	if s.Variant != "" {
		h.str("variant")
		h.str(s.Variant)
	}
	for _, r := range s.Trace {
		h.word(uint64(r.At))
		h.word(uint64(r.Op))
		h.word(uint64(r.Offset))
		h.word(uint64(r.Size))
	}
	return h.finish()
}

// Validate reports a descriptive error for empty or nonsensical axes of
// the sweep's kind. Axis values are checked here rather than left to flow
// into cell construction: a bad entry fails the sweep before any cell
// simulates, with the axis named, instead of as a mid-sweep cell panic.
func (s Sweep) Validate() error {
	if len(s.Devices) == 0 {
		return fmt.Errorf("expgrid: sweep has no device axis")
	}
	// The write-ratio axis admits the documented -1 sentinel (pure-read
	// Mixed cells; "hook's choice" for tenant mixes) but nothing else
	// outside a percentage.
	for _, wr := range s.WriteRatiosPct {
		if wr < -1 || wr > 100 {
			return fmt.Errorf("expgrid: write ratio %d%% out of [-1, 100]", wr)
		}
	}
	for _, d := range s.Devices {
		// TenantMix and KVMix cells are built entirely by their hooks;
		// their device axis only names backend variants/tiers.
		if d.New == nil && s.Kind != TenantMix && s.Kind != KVMix {
			return fmt.Errorf("expgrid: device %q has a nil factory", d.Name)
		}
	}
	switch s.Kind {
	case Open:
		switch {
		case len(s.Patterns) == 0:
			return fmt.Errorf("expgrid: open sweep has no pattern axis")
		case len(s.BlockSizes) == 0:
			return fmt.Errorf("expgrid: open sweep has no block-size axis")
		case len(s.Arrivals) == 0:
			return fmt.Errorf("expgrid: open sweep has no arrival axis")
		case len(s.RatesPerSec) == 0:
			return fmt.Errorf("expgrid: open sweep has no rate axis")
		}
		for _, r := range s.RatesPerSec {
			if r <= 0 {
				return fmt.Errorf("expgrid: open sweep rate %v not positive", r)
			}
		}
		for _, bs := range s.BlockSizes {
			if bs <= 0 {
				return fmt.Errorf("expgrid: open sweep block size %d not positive", bs)
			}
		}
	case TraceReplay:
		if len(s.Trace) == 0 {
			return fmt.Errorf("expgrid: trace sweep has no records")
		}
	case TenantMix:
		switch {
		case s.Tenants == nil:
			return fmt.Errorf("expgrid: tenant sweep has no Tenants hook")
		case len(s.AggressorCounts) == 0:
			return fmt.Errorf("expgrid: tenant sweep has no aggressor-count axis")
		case len(s.RatesPerSec) == 0:
			return fmt.Errorf("expgrid: tenant sweep has no rate axis")
		}
		for _, n := range s.AggressorCounts {
			if n < 0 {
				return fmt.Errorf("expgrid: tenant sweep aggressor count %d negative", n)
			}
		}
		for _, r := range s.RatesPerSec {
			if r <= 0 {
				return fmt.Errorf("expgrid: tenant sweep rate %v not positive", r)
			}
		}
	case KVMix:
		switch {
		case s.KV == nil:
			return fmt.Errorf("expgrid: kv sweep has no KV hook")
		case len(s.KVEngines) == 0:
			return fmt.Errorf("expgrid: kv sweep has no engine axis")
		case len(s.KVSkews) == 0:
			return fmt.Errorf("expgrid: kv sweep has no skew axis")
		case len(s.KVValueSizes) == 0:
			return fmt.Errorf("expgrid: kv sweep has no value-size axis")
		}
		for _, e := range s.KVEngines {
			if e == "" {
				return fmt.Errorf("expgrid: kv sweep has an empty engine name")
			}
		}
		for _, th := range s.KVSkews {
			if th < 0 || th >= 1 {
				return fmt.Errorf("expgrid: kv sweep skew %v outside [0, 1)", th)
			}
		}
		for _, vs := range s.KVValueSizes {
			if vs <= 0 {
				return fmt.Errorf("expgrid: kv sweep value size %d not positive", vs)
			}
		}
	default:
		switch {
		case len(s.Patterns) == 0:
			return fmt.Errorf("expgrid: sweep has no pattern axis")
		case len(s.BlockSizes) == 0:
			return fmt.Errorf("expgrid: sweep has no block-size axis")
		case len(s.QueueDepths) == 0:
			return fmt.Errorf("expgrid: sweep has no queue-depth axis")
		}
		for _, bs := range s.BlockSizes {
			if bs <= 0 {
				return fmt.Errorf("expgrid: block size %d not positive", bs)
			}
		}
		for _, qd := range s.QueueDepths {
			if qd <= 0 {
				return fmt.Errorf("expgrid: queue depth %d not positive", qd)
			}
		}
	}
	return nil
}

// Cell is one point of the grid: its coordinates, its position in the
// deterministic enumeration order, and its derived seed.
type Cell struct {
	Index       int    // position in enumeration order
	DeviceIndex int    // index into Sweep.Devices
	DeviceName  string // Sweep.Devices[DeviceIndex].Name

	Pattern       workload.Pattern
	BlockSize     int64
	QueueDepth    int // 0 for Open and TraceReplay cells
	WriteRatioPct int // -1 when the sweep has no write-ratio axis

	// Open-loop coordinates; zero for Closed and TraceReplay cells.
	Arrival    workload.Arrival
	RatePerSec float64

	// Aggressors is the TenantMix aggressor count (0 elsewhere, and for
	// solo-victim control cells).
	Aggressors int

	// KVMix coordinates; zero for every other kind.
	KVEngine  string  // storage-engine design ("lsm", "pagestore")
	KVSkew    float64 // zipfian key skew theta in [0, 1)
	ValueSize int64   // put value size in bytes

	Seed uint64 // derived from the coordinates, independent of Index

	tenantMix bool // distinguishes TenantMix cells in describe/run
	kvMix     bool // distinguishes KVMix cells in describe/run
}

// describe renders the cell's coordinates for error messages.
func (c Cell) describe() string {
	switch {
	case c.kvMix:
		return fmt.Sprintf("%s kv %s skew=%g val=%d", c.DeviceName, c.KVEngine, c.KVSkew, c.ValueSize)
	case c.tenantMix:
		return fmt.Sprintf("%s tenants aggr=%d @%.0f/s wr=%d", c.DeviceName, c.Aggressors, c.RatePerSec, c.WriteRatioPct)
	case c.RatePerSec > 0:
		return fmt.Sprintf("%s %s bs=%d %s@%.0f/s", c.DeviceName, c.Pattern, c.BlockSize, c.Arrival, c.RatePerSec)
	case c.BlockSize == 0:
		return fmt.Sprintf("%s trace", c.DeviceName)
	default:
		return fmt.Sprintf("%s %s bs=%d qd=%d", c.DeviceName, c.Pattern, c.BlockSize, c.QueueDepth)
	}
}

// CellResult pairs a cell with its measurement: Res for Closed cells, Open
// for Open cells, Replay for TraceReplay cells, Mix for TenantMix cells;
// the others are nil. Err is set when the cell failed (e.g. an invalid
// workload spec), and every measurement field is nil in that case.
type CellResult struct {
	Cell
	Device string // constructed device's display name
	Res    *workload.Result
	Open   *workload.OpenResult
	Replay *trace.ReplayResult
	Mix    []*workload.TenantResult // TenantMix cells: per-tenant results
	KV     []*kv.MixResult          // KVMix cells: per-tenant results
	Info   any                      // Sweep.Inspect's capture of post-run device state, or nil
	Cached bool                     // served from Sweep.Cache instead of a fresh simulation
	Err    error
}

// Cells enumerates the grid of the sweep's kind in deterministic row-major
// order. Closed: devices, patterns, block sizes, queue depths, write
// ratios. Open: devices, patterns, block sizes, arrivals, rates, write
// ratios. TraceReplay: devices. The write-ratio axis multiplies only Mixed
// cells; other patterns get the single sentinel coordinate -1, so their
// count and seeds are unaffected by the axis.
func (s Sweep) Cells() []Cell {
	switch s.Kind {
	case Open:
		return s.openCells()
	case TraceReplay:
		return s.traceCells()
	case TenantMix:
		return s.tenantCells()
	case KVMix:
		return s.kvCells()
	default:
		return s.closedCells()
	}
}

func (s Sweep) mixedRatios(p workload.Pattern) []int {
	if p == workload.Mixed && len(s.WriteRatiosPct) > 0 {
		return s.WriteRatiosPct
	}
	return []int{-1}
}

func (s Sweep) closedCells() []Cell {
	cells := make([]Cell, 0, len(s.Devices)*len(s.Patterns)*len(s.BlockSizes)*len(s.QueueDepths))
	for di, d := range s.Devices {
		for _, p := range s.Patterns {
			for _, bs := range s.BlockSizes {
				for _, qd := range s.QueueDepths {
					for _, wr := range s.mixedRatios(p) {
						cells = append(cells, Cell{
							Index:         len(cells),
							DeviceIndex:   di,
							DeviceName:    d.Name,
							Pattern:       p,
							BlockSize:     bs,
							QueueDepth:    qd,
							WriteRatioPct: wr,
							Seed:          CellSeed(s.Seed, s.Label, d.Name, p, bs, qd, wr),
						})
					}
				}
			}
		}
	}
	return cells
}

func (s Sweep) openCells() []Cell {
	cells := make([]Cell, 0, len(s.Devices)*len(s.Patterns)*len(s.BlockSizes)*len(s.Arrivals)*len(s.RatesPerSec))
	for di, d := range s.Devices {
		for _, p := range s.Patterns {
			for _, bs := range s.BlockSizes {
				for _, a := range s.Arrivals {
					for _, rate := range s.RatesPerSec {
						for _, wr := range s.mixedRatios(p) {
							cells = append(cells, Cell{
								Index:         len(cells),
								DeviceIndex:   di,
								DeviceName:    d.Name,
								Pattern:       p,
								BlockSize:     bs,
								WriteRatioPct: wr,
								Arrival:       a,
								RatePerSec:    rate,
								Seed:          OpenCellSeed(s.Seed, s.Label, d.Name, p, bs, a, rate, wr),
							})
						}
					}
				}
			}
		}
	}
	return cells
}

// tenantCells enumerates devices × aggressor counts × per-aggressor rates
// × aggressor write ratios. Unlike closed/open grids the write-ratio axis
// applies to every tenant cell (the aggressor pattern is the hook's
// choice, not a coordinate); an empty axis yields the single sentinel -1.
func (s Sweep) tenantCells() []Cell {
	ratios := s.WriteRatiosPct
	if len(ratios) == 0 {
		ratios = []int{-1}
	}
	cells := make([]Cell, 0, len(s.Devices)*len(s.AggressorCounts)*len(s.RatesPerSec)*len(ratios))
	for di, d := range s.Devices {
		for _, n := range s.AggressorCounts {
			for _, rate := range s.RatesPerSec {
				for _, wr := range ratios {
					cells = append(cells, Cell{
						Index:         len(cells),
						DeviceIndex:   di,
						DeviceName:    d.Name,
						WriteRatioPct: wr,
						RatePerSec:    rate,
						Aggressors:    n,
						Seed:          MixCellSeed(s.Seed, s.Label, d.Name, n, rate, wr),
						tenantMix:     true,
					})
				}
			}
		}
	}
	return cells
}

// kvCells enumerates devices (backend tiers) × engine designs × key skews
// × value sizes. Per-tenant shape (tenant count, rate, ops, read
// fraction) is the KV hook's choice, not a coordinate — fold it into the
// sweep Label, the same contract as the Tenants hook.
func (s Sweep) kvCells() []Cell {
	cells := make([]Cell, 0, len(s.Devices)*len(s.KVEngines)*len(s.KVSkews)*len(s.KVValueSizes))
	for di, d := range s.Devices {
		for _, e := range s.KVEngines {
			for _, th := range s.KVSkews {
				for _, vs := range s.KVValueSizes {
					cells = append(cells, Cell{
						Index:         len(cells),
						DeviceIndex:   di,
						DeviceName:    d.Name,
						WriteRatioPct: -1,
						KVEngine:      e,
						KVSkew:        th,
						ValueSize:     vs,
						Seed:          KVCellSeed(s.Seed, s.Label, d.Name, e, th, vs),
						kvMix:         true,
					})
				}
			}
		}
	}
	return cells
}

func (s Sweep) traceCells() []Cell {
	cells := make([]Cell, 0, len(s.Devices))
	for di, d := range s.Devices {
		cells = append(cells, Cell{
			Index:         di,
			DeviceIndex:   di,
			DeviceName:    d.Name,
			WriteRatioPct: -1,
			Seed:          TraceCellSeed(s.Seed, s.Label, d.Name),
		})
	}
	return cells
}

// coordHash is the FNV-1a accumulator behind the seed derivations; finish
// applies a splitmix64 finalizer so adjacent coordinates land far apart in
// seed space.
type coordHash uint64

const (
	coordOffset = 0xcbf29ce484222325
	coordPrime  = 0x100000001b3
)

func newCoordHash() coordHash { return coordOffset }

func (h *coordHash) word(v uint64) {
	x := uint64(*h)
	for i := 0; i < 8; i++ {
		x = (x ^ (v & 0xff)) * coordPrime
		v >>= 8
	}
	*h = coordHash(x)
}

func (h *coordHash) str(s string) {
	x := uint64(*h)
	for i := 0; i < len(s); i++ {
		x = (x ^ uint64(s[i])) * coordPrime
	}
	x = (x ^ 0xff) * coordPrime // terminator so "ab","c" != "a","bc"
	*h = coordHash(x)
}

func (h coordHash) finish() uint64 {
	x := uint64(h)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// CellSeed derives a closed-loop cell's RNG seed as a pure hash of the
// root seed, the sweep label, and the cell coordinates. It is deliberately
// independent of the cell's enumeration index: subsetting or reordering
// axes never changes the seed (and hence the measurement) of a surviving
// cell. Open and TraceReplay cells use OpenCellSeed / TraceCellSeed, which
// extend the same hash with their own coordinates.
func CellSeed(root uint64, label, device string, p workload.Pattern, bs int64, qd, ratioPct int) uint64 {
	h := newCoordHash()
	h.word(root)
	h.str(label)
	h.str(device)
	h.word(uint64(p) + 1)
	h.word(uint64(bs))
	h.word(uint64(qd))
	h.word(uint64(int64(ratioPct) + 2))
	return h.finish()
}

// OpenCellSeed derives an open-loop cell's seed from its coordinates,
// including the arrival shape and offered rate. A distinguishing tag keeps
// open cells decorrelated from closed cells that share the remaining
// coordinates.
func OpenCellSeed(root uint64, label, device string, p workload.Pattern, bs int64, a workload.Arrival, ratePerSec float64, ratioPct int) uint64 {
	h := newCoordHash()
	h.word(root)
	h.str(label)
	h.str(device)
	h.str("open")
	h.word(uint64(p) + 1)
	h.word(uint64(bs))
	h.word(uint64(a) + 1)
	h.word(math.Float64bits(ratePerSec))
	h.word(uint64(int64(ratioPct) + 2))
	return h.finish()
}

// MixCellSeed derives a tenant-mix cell's seed from its coordinates: the
// backend variant name, aggressor count, per-aggressor offered rate, and
// aggressor write ratio. A distinguishing tag keeps tenant cells
// decorrelated from open cells sharing rate coordinates.
func MixCellSeed(root uint64, label, device string, aggressors int, ratePerSec float64, ratioPct int) uint64 {
	h := newCoordHash()
	h.word(root)
	h.str(label)
	h.str(device)
	h.str("tenants")
	h.word(uint64(aggressors) + 1)
	h.word(math.Float64bits(ratePerSec))
	h.word(uint64(int64(ratioPct) + 2))
	return h.finish()
}

// KVCellSeed derives a KV-mix cell's seed from its coordinates: the
// backend tier name, engine design, key skew, and value size. A
// distinguishing tag keeps KV cells decorrelated from the other kinds'
// cells sharing a device name.
func KVCellSeed(root uint64, label, device, engine string, skew float64, valueSize int64) uint64 {
	h := newCoordHash()
	h.word(root)
	h.str(label)
	h.str(device)
	h.str("kv")
	h.str(engine)
	h.word(math.Float64bits(skew))
	h.word(uint64(valueSize))
	return h.finish()
}

// TraceCellSeed derives a trace-replay cell's seed. The trace itself is
// deterministic, so only the device identity needs decorrelating.
func TraceCellSeed(root uint64, label, device string) uint64 {
	h := newCoordHash()
	h.word(root)
	h.str(label)
	h.str(device)
	h.str("trace")
	return h.finish()
}

// run executes one cell: fresh device, precondition, one workload of the
// sweep's kind. Panics from invalid specs (or device bugs) are captured
// into CellResult.Err so one bad cell fails the sweep cleanly instead of
// killing the worker pool.
func (s Sweep) run(c Cell) (out CellResult) {
	needInfo := s.Inspect != nil || s.InspectMix != nil || s.InspectKV != nil
	if s.Cache != nil && !s.ForceRun {
		if res, ok := s.Cache.lookup(s.fingerprint, c, needInfo, s.DecodeInfo); ok {
			return res
		}
	}
	out = CellResult{Cell: c}
	defer func() {
		if p := recover(); p != nil {
			out.Err = fmt.Errorf("expgrid: cell %d (%s): %v", c.Index, c.describe(), p)
			out.Res, out.Open, out.Replay, out.Mix, out.KV = nil, nil, nil, nil, nil
		}
		if s.Cache != nil && out.Err == nil {
			s.Cache.store(s.fingerprint, out)
		}
	}()
	if s.Kind == KVMix {
		// KV cells own their whole setup: the hook builds the engine,
		// backend, volumes, storage engines, and preconditioning from the
		// coordinates.
		eng, tenants := s.KV(c)
		out.Device = c.DeviceName
		out.KV = kv.RunMix(eng, tenants)
		if s.InspectKV != nil {
			out.Info = s.InspectKV(tenants, c)
		}
		// Hand pooled structures back for the next cell: each storage
		// engine first (it still references its device), then the device,
		// then the shared simulation engine. Deliberately skipped on the
		// panic path so a half-built cell can never poison the pools.
		for _, t := range tenants {
			dev := t.Engine.Device()
			if r, ok := t.Engine.(interface{ Release() }); ok {
				r.Release()
			}
			releaseDevice(dev)
		}
		sim.ReleaseEngine(eng)
		return out
	}
	if s.Kind == TenantMix {
		// Tenant cells own their whole setup: the hook builds the engine,
		// backend(s), volumes, and preconditioning from the coordinates.
		eng, tenants := s.Tenants(c)
		out.Device = c.DeviceName
		out.Mix = workload.RunTenants(eng, tenants)
		if s.InspectMix != nil {
			out.Info = s.InspectMix(tenants, c)
		}
		// The cell is measured and inspected: hand pooled buffers and the
		// engine back for the next cell. Deliberately skipped on the panic
		// path (the deferred recover returns before reaching here), so a
		// half-built cell can never poison the pools.
		for _, t := range tenants {
			releaseDevice(t.Dev)
		}
		sim.ReleaseEngine(eng)
		return out
	}
	dev := s.Devices[c.DeviceIndex].New(c.Seed)
	out.Device = dev.Name()
	switch s.Precondition {
	case PrecondAuto:
		// Trace cells mix reads and writes, so the auto mode gives them a
		// fully written device (reads must hit data).
		Precondition(dev, s.Kind != TraceReplay && c.Pattern.IsWrite())
	case PrecondWrites:
		Precondition(dev, true)
	case PrecondFull:
		Precondition(dev, false)
	}
	switch s.Kind {
	case Open:
		spec := workload.OpenSpec{
			Pattern:           c.Pattern,
			BlockSize:         c.BlockSize,
			RatePerSec:        c.RatePerSec,
			Arrival:           c.Arrival,
			Count:             s.OpenOps,
			SampleInterval:    s.OpenSampleInterval,
			WindowPercentiles: s.OpenWindowPercentiles,
			Seed:              c.Seed,
		}
		if c.WriteRatioPct >= 0 {
			spec.WriteRatio = float64(c.WriteRatioPct) / 100
		}
		out.Open = workload.RunOpen(dev, spec)
	case TraceReplay:
		recs := s.Trace
		if s.FitTrace {
			recs = trace.Fit(recs, dev.Capacity(), int64(dev.BlockSize()))
		}
		out.Replay = trace.Replay(dev, recs)
	default:
		spec := workload.Spec{
			Pattern:    c.Pattern,
			BlockSize:  c.BlockSize,
			QueueDepth: c.QueueDepth,
			Duration:   s.CellDuration,
			Warmup:     s.Warmup,
			Seed:       c.Seed,
		}
		if c.WriteRatioPct >= 0 {
			spec.WriteRatio = float64(c.WriteRatioPct) / 100
		}
		if s.CapMultiple > 0 {
			spec.TotalBytes = int64(s.CapMultiple * float64(dev.Capacity()))
			spec.Duration = 0
			spec.Warmup = 0
		}
		out.Res = workload.Run(dev, spec)
	}
	if s.Inspect != nil {
		out.Info = s.Inspect(dev, c)
	}
	releaseDevice(dev)
	sim.ReleaseEngine(dev.Engine())
	return out
}

// releaseDevice hands a device's pooled buffers back once its cell is fully
// measured and inspected. Devices without pooled state are left alone.
// Inspect hooks must therefore capture values, not live device internals —
// which the Inspect contract (no cross-cell sharing) already implies.
func releaseDevice(dev blockdev.Device) {
	if r, ok := dev.(interface{ ReleaseResources() }); ok {
		r.ReleaseResources()
	}
}
