package scenario

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"essdsim/internal/expgrid"
)

func smallKVSweep() KVMixSweep {
	return KVMixSweep{
		Engines:      []string{"lsm", "pagestore"},
		Skews:        []float64{0, 0.9},
		ValueSizes:   []int64{1024},
		Tiers:        []string{"essd1"},
		Tenants:      2,
		OpsPerTenant: 200,
		RatePerSec:   8000,
		Seed:         7,
	}
}

// TestRunKVMixSmall checks the suite end to end on a tiny grid: every
// cell measures all tenants' ops, coordinates land in the right cells,
// and the shared-backend inspection decodes.
func TestRunKVMixSmall(t *testing.T) {
	rep, err := RunKVMix(context.Background(), smallKVSweep())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 4 {
		t.Fatalf("cells = %d, want 4 (2 engines x 2 skews)", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if c.Tier != "essd1" {
			t.Errorf("cell tier %q", c.Tier)
		}
		if c.Engine != "lsm" && c.Engine != "pagestore" {
			t.Errorf("cell engine %q", c.Engine)
		}
		if want := uint64(2 * 200); c.Ops != want {
			t.Errorf("%s skew=%g: %d ops, want %d", c.Engine, c.Skew, c.Ops, want)
		}
		if c.Puts+c.Gets != c.Ops {
			t.Errorf("%s skew=%g: puts %d + gets %d != ops %d", c.Engine, c.Skew, c.Puts, c.Gets, c.Ops)
		}
		if c.OpsPerSec <= 0 || c.Elapsed <= 0 {
			t.Errorf("%s skew=%g: rate %.0f elapsed %v", c.Engine, c.Skew, c.OpsPerSec, c.Elapsed)
		}
		if c.Engine == "lsm" && c.WriteAmp < 1 {
			t.Errorf("lsm skew=%g: write amp %.2f < 1", c.Skew, c.WriteAmp)
		}
		if c.Throttled < 0 || c.Throttled > 2 {
			t.Errorf("%s skew=%g: %d throttled tenants of 2", c.Engine, c.Skew, c.Throttled)
		}
	}
}

// TestRunKVMixWorkerDeterminism checks the suite is byte-identical
// between a serial and a parallel run.
func TestRunKVMixWorkerDeterminism(t *testing.T) {
	s1 := smallKVSweep()
	s1.Workers = 1
	r1, err := RunKVMix(context.Background(), s1)
	if err != nil {
		t.Fatal(err)
	}
	s8 := smallKVSweep()
	s8.Workers = 8
	r8, err := RunKVMix(context.Background(), s8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r8) {
		t.Fatal("kv suite differs between 1 and 8 workers")
	}
}

// TestRunKVMixCacheWarm checks a warm re-run serves every cell from the
// cache and reproduces the cold measurements and CSV bytes.
func TestRunKVMixCacheWarm(t *testing.T) {
	cache := expgrid.NewCache(0)
	s := smallKVSweep()
	s.Cache = cache
	cold, err := RunKVMix(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CachedCells != 0 {
		t.Fatalf("cold run reported %d cached cells", cold.CachedCells)
	}
	warm, err := RunKVMix(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if warm.CachedCells != len(warm.Cells) {
		t.Fatalf("warm run cached %d of %d cells", warm.CachedCells, len(warm.Cells))
	}
	var coldCSV, warmCSV bytes.Buffer
	if err := WriteKVCSV(&coldCSV, cold); err != nil {
		t.Fatal(err)
	}
	if err := WriteKVCSV(&warmCSV, warm); err != nil {
		t.Fatal(err)
	}
	// The cached column is bookkeeping; measurements must match byte for
	// byte once it is normalized.
	c := strings.ReplaceAll(coldCSV.String(), ",false\n", ",-\n")
	w := strings.ReplaceAll(warmCSV.String(), ",true\n", ",-\n")
	if c != w {
		t.Fatalf("cache-warm CSV differs:\n%s\n%s", coldCSV.String(), warmCSV.String())
	}
}

// TestRunKVMixValidation checks bad axes are rejected before simulation.
func TestRunKVMixValidation(t *testing.T) {
	for name, mutate := range map[string]func(*KVMixSweep){
		"unknown engine": func(s *KVMixSweep) { s.Engines = []string{"rocksdb"} },
		"local-ssd tier": func(s *KVMixSweep) { s.Tiers = []string{"ssd"} },
		"unknown tier":   func(s *KVMixSweep) { s.Tiers = []string{"nvme9"} },
		"read frac":      func(s *KVMixSweep) { s.ReadFracPct = 150 },
		"bad skew":       func(s *KVMixSweep) { s.Skews = []float64{1.5} },
	} {
		s := smallKVSweep()
		mutate(&s)
		if _, err := RunKVMix(context.Background(), s); err == nil {
			t.Errorf("%s: sweep accepted", name)
		}
	}
}

// TestKVMixInfoRoundTrip checks the shared-backend inspection survives
// the persisted-cache JSON cycle.
func TestKVMixInfoRoundTrip(t *testing.T) {
	want := KVMixInfo{SharedDebt: 123456, Throttled: 2}
	got, err := DecodeKVMixInfo([]byte(`{"shared_debt":123456,"throttled":2}`))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("decoded %+v, want %+v", got, want)
	}
	if _, err := DecodeKVMixInfo([]byte("{")); err == nil {
		t.Fatal("malformed info accepted")
	}
}

// TestFormatKVMix smoke-checks the table renderer.
func TestFormatKVMix(t *testing.T) {
	rep, err := RunKVMix(context.Background(), smallKVSweep())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	FormatKVMix(&buf, rep)
	out := buf.String()
	for _, want := range []string{"KV tenant mix", "lsm", "pagestore", "essd1"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "\n"); got != 2+len(rep.Cells) {
		t.Errorf("report has %d lines, want %d", got, 2+len(rep.Cells))
	}
}

// TestKVCellsTableSchema pins the kv_cells.csv header documented in
// docs/formats.md.
func TestKVCellsTableSchema(t *testing.T) {
	rep, err := RunKVMix(context.Background(), smallKVSweep())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteKVCSV(&buf, rep); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(rep.Cells) {
		t.Fatalf("CSV has %d lines, want header + %d cells", len(lines), len(rep.Cells))
	}
	wantHeader := "tier,engine,skew,value_size,tenants,ops_per_tenant,rate_per_s,read_frac_pct," +
		"ops,puts,gets,elapsed_s,ops_per_sec," +
		"lat_mean_ms,lat_p50_ms,lat_p99_ms,lat_p999_ms,lat_max_ms,max_outstanding," +
		"read_amp,write_amp,cache_hit_pct,stalls,flushes,compactions," +
		"shared_debt_bytes,throttled_tenants,cached"
	if lines[0] != wantHeader {
		t.Fatalf("header\n %s\nwant\n %s", lines[0], wantHeader)
	}
}
