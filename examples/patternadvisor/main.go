// patternadvisor sweeps a write workload's I/O size and queue depth on an
// ESSD and reports where random writes beat sequential writes
// (Observation #3), advising whether log-structuring is still worth it
// (Implication #3).
package main

import (
	"flag"
	"fmt"

	"essdsim"
)

func throughput(device string, pattern essdsim.Pattern, bs int64, qd int) float64 {
	eng := essdsim.NewEngine()
	dev, err := essdsim.NewDevice(device, eng, 3)
	if err != nil {
		panic(err)
	}
	essdsim.Precondition(dev, true)
	res := essdsim.Run(dev, essdsim.Workload{
		Pattern:    pattern,
		BlockSize:  bs,
		QueueDepth: qd,
		Duration:   300 * essdsim.Millisecond,
		Warmup:     50 * essdsim.Millisecond,
		Seed:       3,
	})
	return res.Throughput()
}

func main() {
	device := flag.String("device", "essd2", "device profile to advise on")
	flag.Parse()

	fmt.Printf("Random-vs-sequential write advisor for %q\n", *device)
	fmt.Println("(gain > 1: random writes are FASTER than sequential — Observation #3)")
	fmt.Println()
	sizes := []int64{4 << 10, 16 << 10, 64 << 10, 256 << 10}
	qds := []int{1, 8, 32}
	fmt.Printf("%-8s", "bs\\QD")
	for _, qd := range qds {
		fmt.Printf("%10d", qd)
	}
	fmt.Println()
	best, bestBS, bestQD := 0.0, int64(0), 0
	for _, bs := range sizes {
		fmt.Printf("%-8s", fmt.Sprintf("%dK", bs>>10))
		for _, qd := range qds {
			rnd := throughput(*device, essdsim.RandWrite, bs, qd)
			seq := throughput(*device, essdsim.SeqWrite, bs, qd)
			gain := rnd / seq
			if gain > best {
				best, bestBS, bestQD = gain, bs, qd
			}
			fmt.Printf("%9.2fx", gain)
		}
		fmt.Println()
	}
	fmt.Println()
	switch {
	case best >= 1.5:
		fmt.Printf("Max gain %.2fx at %dK/QD%d: converting random writes to sequential\n",
			best, bestBS>>10, bestQD)
		fmt.Println("(log-structuring, copy-on-write) actively HURTS on this volume.")
		fmt.Println("Consider spreading writes across the LBA space instead (Implication #3).")
	case best >= 1.1:
		fmt.Printf("Max gain %.2fx at %dK/QD%d: sequentializing buys nothing here;\n",
			best, bestBS>>10, bestQD)
		fmt.Println("keep update-in-place layouts as they are (Implication #3).")
	default:
		fmt.Printf("Max gain %.2fx: this device is pattern-neutral for writes.\n", best)
	}
}
