// Package scenario builds opinionated experiment suites on top of the
// internal/expgrid worker pool. Where internal/harness reproduces the
// paper's figures, scenario answers the operational questions the figures
// imply.
//
// The burst-credit suite (BurstSweep, RunBurst) targets Observation #4 /
// Implication #4 on burstable volume tiers: mixed random I/O swept across
// write ratio × arrival shape × offered rate, run open-loop so the offered
// timeline — not device back-pressure — drives credit consumption. Each
// cell reports when the tier's burst credits ran out, the post-run credit
// and throttle state (captured by InspectCredits while the cell's device
// is still alive), and the latency cliff: completion-weighted latency and
// throughput before and after the first exhaustion, from the open-loop
// result's per-interval timelines.
//
// # Model assumptions
//
// Every cell runs on a fresh, fully written device (reads must hit data)
// whose engine starts at virtual time zero; preconditioning consumes no
// virtual time, so credit-exhaustion timestamps are directly comparable
// across cells. Results are deterministic and identical for any worker
// count. Attaching an expgrid.Cache (BurstSweep.Cache) makes warm re-runs
// skip simulation entirely while producing byte-identical reports;
// CreditInfo is JSON-round-trippable (DecodeCreditInfo) so cached cells
// survive persistence.
//
// Reports render as aligned tables (FormatBurst) or as CSV for plotting
// (WriteBurstCSV per cell, WriteBurstTimelineCSV per sample interval); the
// CSV schemas are documented in docs/formats.md.
package scenario
