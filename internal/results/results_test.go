package results

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"essdsim/internal/sim"
)

func TestTableCSVAndJSON(t *testing.T) {
	tab := NewTable("t", "a", "b")
	tab.AddRow("1", "x,y") // comma forces CSV quoting
	tab.AddRow(Float(0.1), Seconds(-sim.Second))

	var csvBuf bytes.Buffer
	if err := tab.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"x,y\"\n0.1,-1\n"
	if csvBuf.String() != want {
		t.Fatalf("CSV = %q, want %q", csvBuf.String(), want)
	}

	var jsonBuf bytes.Buffer
	if err := tab.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var rows []map[string]string
	if err := json.Unmarshal(jsonBuf.Bytes(), &rows); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v\n%s", err, jsonBuf.String())
	}
	if len(rows) != 2 || rows[0]["b"] != "x,y" || rows[1]["a"] != "0.1" {
		t.Fatalf("JSON rows = %+v", rows)
	}
	// Keys appear in column order, not alphabetical-by-marshal.
	if !strings.Contains(jsonBuf.String(), `"a":"1","b":"x,y"`) {
		t.Fatalf("JSON keys not in column order:\n%s", jsonBuf.String())
	}
}

func TestAddRowArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for wrong cell count")
		}
	}()
	NewTable("t", "a", "b").AddRow("only-one")
}

func TestFormattersDeterministic(t *testing.T) {
	cases := map[string]string{
		Float(1.0 / 3):                 "0.3333333333333333",
		Int(-5):                        "-5",
		Uint(7):                        "7",
		Bool(true):                     "true",
		Seconds(1500 * sim.Second):     "1500",
		Millis(sim.Millisecond):        "1",
		Millis(-sim.Second):            "-1",
		Seconds(-sim.Second):           "-1",
		Seconds(250 * sim.Millisecond): "0.25",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("formatted %q, want %q", got, want)
		}
	}
}
