package harness

import (
	"fmt"
	"io"

	"essdsim/internal/blockdev"
	"essdsim/internal/sim"
	"essdsim/internal/workload"
)

// Metric selects which Figure 2 statistic to print.
type Metric int

// Figure 2 metrics.
const (
	MetricAvg Metric = iota
	MetricP999
)

// String returns the metric's figure caption name.
func (m Metric) String() string {
	if m == MetricP999 {
		return "P99.9 Latency"
	}
	return "Average Latency"
}

func sizeLabel(bs int64) string {
	switch {
	case bs >= 1<<20:
		return fmt.Sprintf("%dM", bs>>20)
	default:
		return fmt.Sprintf("%dK", bs>>10)
	}
}

// FormatTableI writes the paper's Table I from the given device envelopes.
func FormatTableI(w io.Writer, rows []blockdev.Config) {
	fmt.Fprintf(w, "TABLE I: THE CONFIGURATIONS OF TWO ESSDS AND SSD\n")
	fmt.Fprintf(w, "%-10s %-15s %-8s %-18s %-10s %-9s\n",
		"", "Provider", "Model", "Max. BW (GB/s)", "Max. IOPS", "Cap. (TB)")
	names := []string{"ESSD-1", "ESSD-2", "SSD"}
	for i, r := range rows {
		name := ""
		if i < len(names) {
			name = names[i]
		}
		bw := fmt.Sprintf("~%.1f", blockdev.GBps(r.MaxReadBW))
		if r.MaxReadBW != r.MaxWriteBW {
			bw = fmt.Sprintf("R %.1f / W %.1f", blockdev.GBps(r.MaxReadBW), blockdev.GBps(r.MaxWriteBW))
		}
		iops := fmt.Sprintf("%.1fK", r.MaxIOPS/1000)
		fmt.Fprintf(w, "%-10s %-15s %-8s %-18s %-10s %-9.0f\n",
			name, r.Provider, r.Model, bw, iops, float64(r.Capacity)/1e12)
	}
}

// FormatFig2 writes one Figure 2 panel: the ESSD/SSD latency-gap grid with
// the ESSD's absolute latency beneath each gap, exactly like the paper's
// pixels ("31.9x (333u)").
func FormatFig2(w io.Writer, essd, ssd *LatencyGrid, m Metric) {
	fmt.Fprintf(w, "Figure 2 — %s of %s (gap vs %s; cell = gap (ESSD latency))\n",
		m, essd.Device, ssd.Device)
	for _, p := range Fig2Patterns {
		fmt.Fprintf(w, "\n  %s\n  %8s", p, "")
		for _, bs := range Fig2Sizes {
			fmt.Fprintf(w, " %16s", "I/O "+sizeLabel(bs))
		}
		fmt.Fprintln(w)
		for _, qd := range Fig2QDs {
			fmt.Fprintf(w, "  QD %-5d", qd)
			for _, bs := range Fig2Sizes {
				ec := essd.Cell(p, bs, qd)
				sc := ssd.Cell(p, bs, qd)
				if ec == nil || sc == nil {
					fmt.Fprintf(w, " %16s", "-")
					continue
				}
				var e, s sim.Duration
				if m == MetricP999 {
					e, s = ec.P999, sc.P999
				} else {
					e, s = ec.Avg, sc.Avg
				}
				gap := 0.0
				if s > 0 {
					gap = float64(e) / float64(s)
				}
				fmt.Fprintf(w, " %7.1fx (%5s)", gap, compactDur(e))
			}
			fmt.Fprintln(w)
		}
	}
}

// compactDur renders a duration like the paper's pixel annotations
// ("333u", "1.4m").
func compactDur(d sim.Duration) string {
	switch {
	case d < sim.Millisecond:
		return fmt.Sprintf("%du", int64(d)/int64(sim.Microsecond))
	case d < 10*sim.Millisecond:
		return fmt.Sprintf("%.1fm", float64(d)/float64(sim.Millisecond))
	default:
		return fmt.Sprintf("%dm", int64(d)/int64(sim.Millisecond))
	}
}

// FormatFig3 writes the Figure 3 sustained-write summary and a coarse
// throughput timeline for each device.
func FormatFig3(w io.Writer, results []*SustainedResult) {
	fmt.Fprintln(w, "Figure 3 — Runtime throughput, random write of 3x capacity")
	for _, r := range results {
		knee := "none"
		if r.KneeCapFrac >= 0 {
			knee = fmt.Sprintf("%.2fx capacity", r.KneeCapFrac)
		}
		extra := ""
		if r.Throttled {
			extra = " [flow limiter engaged]"
		}
		if r.WriteAmp > 1.001 {
			extra += fmt.Sprintf(" [final WA %.1f]", r.WriteAmp)
		}
		fmt.Fprintf(w, "\n  %s (cap %.0f GiB scaled): peak %.2f GB/s, knee at %s, tail %.0f MB/s%s\n",
			r.Device, float64(r.Capacity)/(1<<30), r.PeakRate/1e9, knee, r.TailRate/1e6, extra)
		fmt.Fprintf(w, "  timeline (GB/s per %v):", r.Interval)
		step := len(r.Rates)/24 + 1
		for i := 0; i < len(r.Rates); i += step {
			fmt.Fprintf(w, " %.1f", r.Rates[i]/1e9)
		}
		fmt.Fprintln(w)
	}
}

// FormatFig4 writes the Figure 4 random-write throughput and
// random/sequential gain table.
func FormatFig4(w io.Writer, results []*RandSeqResult) {
	fmt.Fprintln(w, "Figure 4 — Random-write throughput and rand/seq gain")
	for _, r := range results {
		maxGain, at := r.MaxGain()
		fmt.Fprintf(w, "\n  %s (max gain %.2fx at %s QD%d)\n",
			r.Device, maxGain, sizeLabel(at.BlockSize), at.QueueDepth)
		fmt.Fprintf(w, "  %8s", "")
		qds := fig4QDsOf(r)
		for _, qd := range qds {
			fmt.Fprintf(w, " %14s", fmt.Sprintf("QD %d", qd))
		}
		fmt.Fprintln(w)
		for _, bs := range fig4SizesOf(r) {
			fmt.Fprintf(w, "  %-8s", sizeLabel(bs))
			for _, qd := range qds {
				c := r.Cell(bs, qd)
				if c == nil {
					fmt.Fprintf(w, " %14s", "-")
					continue
				}
				fmt.Fprintf(w, " %5.2fGB(%4.2fx)", c.RandBW/1e9, c.Gain())
			}
			fmt.Fprintln(w)
		}
	}
}

func fig4SizesOf(r *RandSeqResult) []int64 {
	var sizes []int64
	seen := map[int64]bool{}
	for _, c := range r.Cells {
		if !seen[c.BlockSize] {
			seen[c.BlockSize] = true
			sizes = append(sizes, c.BlockSize)
		}
	}
	return sizes
}

func fig4QDsOf(r *RandSeqResult) []int {
	var qds []int
	seen := map[int]bool{}
	for _, c := range r.Cells {
		if !seen[c.QueueDepth] {
			seen[c.QueueDepth] = true
			qds = append(qds, c.QueueDepth)
		}
	}
	return qds
}

// FormatFig5 writes the Figure 5 mixed read/write throughput table.
func FormatFig5(w io.Writer, results []*MixedResult) {
	fmt.Fprintln(w, "Figure 5 — Throughput under mixed read/write workloads")
	for _, r := range results {
		min, max := r.MinMax()
		fmt.Fprintf(w, "\n  %s (total %.2f-%.2f GB/s, spread %.1f%%)\n",
			r.Device, min/1e9, max/1e9, r.Spread()*100)
		fmt.Fprintf(w, "  %-12s %-14s %-14s\n", "write ratio", "total GB/s", "write GB/s")
		for _, p := range r.Points {
			fmt.Fprintf(w, "  %-12d %-14.2f %-14.2f\n",
				p.WriteRatioPct, p.TotalBW/1e9, p.WriteBW/1e9)
		}
	}
}

// FormatWorkloadResult prints a fio-like summary of a single run.
func FormatWorkloadResult(w io.Writer, r *workload.Result) {
	s := r.Lat.Summarize()
	fmt.Fprintf(w, "%s: %s bs=%s qd=%d\n", r.Device, r.Spec.Pattern,
		sizeLabel(r.Spec.BlockSize), r.Spec.QueueDepth)
	fmt.Fprintf(w, "  ops=%d bytes=%d elapsed=%v\n", r.Ops, r.Bytes, r.Elapsed)
	fmt.Fprintf(w, "  throughput=%.2f MB/s iops=%.0f\n", r.Throughput()/1e6, r.IOPS())
	fmt.Fprintf(w, "  lat avg=%v p50=%v p99=%v p99.9=%v max=%v\n",
		s.Mean, s.P50, s.P99, s.P999, s.Max)
	if r.ReadLat.Count() > 0 && r.WriteLat.Count() > 0 {
		rs, ws := r.ReadLat.Summarize(), r.WriteLat.Summarize()
		fmt.Fprintf(w, "  read  avg=%v p99.9=%v (n=%d)\n", rs.Mean, rs.P999, rs.Count)
		fmt.Fprintf(w, "  write avg=%v p99.9=%v (n=%d)\n", ws.Mean, ws.P999, ws.Count)
	}
}
