// patternadvisor sweeps a write workload's I/O size and queue depth on an
// ESSD and reports where random writes beat sequential writes
// (Observation #3), advising whether log-structuring is still worth it
// (Implication #3).
//
// The whole size × depth × {random, sequential} grid is declared as one
// essdsim.Sweep and measured in parallel on -workers cells.
package main

import (
	"context"
	"flag"
	"fmt"

	"essdsim"
)

func main() {
	device := flag.String("device", "essd2", "device profile to advise on")
	workers := flag.Int("workers", 0, "parallel sweep cells (0 = GOMAXPROCS)")
	flag.Parse()

	sizes := []int64{4 << 10, 16 << 10, 64 << 10, 256 << 10}
	qds := []int{1, 8, 32}
	sw := essdsim.Sweep{
		Devices:      essdsim.ProfileDevices(*device),
		Patterns:     []essdsim.Pattern{essdsim.RandWrite, essdsim.SeqWrite},
		BlockSizes:   sizes,
		QueueDepths:  qds,
		CellDuration: 300 * essdsim.Millisecond,
		Warmup:       50 * essdsim.Millisecond,
		Precondition: essdsim.PrecondWrites,
		Seed:         3,
		Label:        "patternadvisor",
	}
	results, err := essdsim.RunSweep(context.Background(), sw, *workers)
	if err != nil {
		panic(err)
	}
	// Pattern is the outermost axis after the (single) device: the first
	// half of the results is the random sweep, the second the sequential
	// sweep, both in (size, qd) row-major order.
	half := len(results) / 2

	fmt.Printf("Random-vs-sequential write advisor for %q\n", *device)
	fmt.Println("(gain > 1: random writes are FASTER than sequential — Observation #3)")
	fmt.Println()
	fmt.Printf("%-8s", "bs\\QD")
	for _, qd := range qds {
		fmt.Printf("%10d", qd)
	}
	fmt.Println()
	best, bestBS, bestQD := 0.0, int64(0), 0
	for i, rnd := range results[:half] {
		seq := results[i+half]
		if i%len(qds) == 0 {
			fmt.Printf("%-8s", fmt.Sprintf("%dK", rnd.BlockSize>>10))
		}
		gain := rnd.Res.Throughput() / seq.Res.Throughput()
		if gain > best {
			best, bestBS, bestQD = gain, rnd.BlockSize, rnd.QueueDepth
		}
		fmt.Printf("%9.2fx", gain)
		if i%len(qds) == len(qds)-1 {
			fmt.Println()
		}
	}
	fmt.Println()
	switch {
	case best >= 1.5:
		fmt.Printf("Max gain %.2fx at %dK/QD%d: converting random writes to sequential\n",
			best, bestBS>>10, bestQD)
		fmt.Println("(log-structuring, copy-on-write) actively HURTS on this volume.")
		fmt.Println("Consider spreading writes across the LBA space instead (Implication #3).")
	case best >= 1.1:
		fmt.Printf("Max gain %.2fx at %dK/QD%d: sequentializing buys nothing here;\n",
			best, bestBS>>10, bestQD)
		fmt.Println("keep update-in-place layouts as they are (Implication #3).")
	default:
		fmt.Printf("Max gain %.2fx: this device is pattern-neutral for writes.\n", best)
	}
}
