package fleet

import (
	"bytes"
	"context"
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"

	"essdsim/internal/profiles"
	"essdsim/internal/qos"
	"essdsim/internal/sim"
)

// TestScreenRankingAgreesWithSimulation is the screen's reason to exist:
// the analytic score must rank the built-in policies' placements in the
// same order as the full simulation ranks their SLO violations on the
// calibrated ordering catalog. If the cheap model disagrees with the
// expensive truth on the study the suite pins hardest, the screen is
// selecting the wrong placements to simulate.
func TestScreenRankingAgreesWithSimulation(t *testing.T) {
	spec := orderingSpec().withDefaults()
	model := spec.newScreenModel()
	cons := spec.constraints()

	names := []string{"first-fit", "spread", "interference"}
	scores := make(map[string]float64, len(names))
	for _, name := range names {
		p, err := PolicyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		score, _ := model.score(spec.Demands, p.Place(cons, spec.Demands), spec.Backends)
		scores[name] = score
	}

	rep, err := Run(context.Background(), orderingSpec())
	if err != nil {
		t.Fatal(err)
	}
	viols := make(map[string]int, len(names))
	for _, name := range names {
		pr := rep.Policy(name)
		if pr == nil {
			t.Fatalf("missing %s in simulated report", name)
		}
		viols[name] = pr.P999Violations
	}

	// Rank both ways and compare the orderings, not the magnitudes: the
	// score is a pressure proxy, not a violation-count predictor.
	byScore := append([]string(nil), names...)
	sort.SliceStable(byScore, func(a, b int) bool { return scores[byScore[a]] < scores[byScore[b]] })
	byViol := append([]string(nil), names...)
	sort.SliceStable(byViol, func(a, b int) bool { return viols[byViol[a]] < viols[byViol[b]] })
	if !reflect.DeepEqual(byScore, byViol) {
		t.Fatalf("analytic ranking %v disagrees with simulated ranking %v (scores=%v violations=%v)",
			byScore, byViol, scores, viols)
	}
	// The calibrated catalog keeps both chains strict; a tie would make the
	// agreement above vacuous.
	if !(scores["interference"] < scores["spread"] && scores["spread"] < scores["first-fit"]) {
		t.Errorf("analytic chain not strict: %v", scores)
	}
}

// TestScreenCreditBoundsMatchEmpirical pins the screen's closed-form
// exhaustion prediction to the behavioral qos.CreditBucket: an open-loop
// spender at a rate above the sustainable floor must empty the bank within
// tolerance of model.exhaustionSecs, and a rate at or under the floor must
// never empty it. The model constants come from a real burstable volume
// profile so the agreement covers the same tier the fleet screen sees.
func TestScreenCreditBoundsMatchEmpirical(t *testing.T) {
	_, vcfg := profiles.GP2SmallConfig().Split()
	spec := Spec{
		Demands:  SyntheticDemands(2, 1),
		Backends: 1,
		Volume:   vcfg,
	}.withDefaults()
	model := spec.newScreenModel()
	if model.cb == nil || model.cb.Burst() <= model.cb.Baseline() {
		t.Fatalf("gp2-small model is not burstable: %+v", model)
	}
	baseline, burst := model.cb.Baseline(), model.cb.Burst()

	empirical := func(rate float64) (exhausted sim.Time) {
		eng := sim.NewEngine()
		cb := qos.NewCreditBucket(eng, vcfg.BurstBaseline, vcfg.ThroughputBudget, vcfg.BurstCreditBytes)
		const tick = 10 * sim.Millisecond
		perTick := int64(rate * tick.Seconds())
		horizon := eng.Now().Add(sim.Duration(10 * vcfg.BurstCreditBytes / baseline * float64(sim.Second)))
		for eng.Now() < horizon && cb.ExhaustedAt() < 0 {
			cb.Spend(perTick)
			eng.RunUntil(eng.Now().Add(tick))
		}
		return cb.ExhaustedAt()
	}

	// A demand riding the burst tier above the earn rate: predicted and
	// measured exhaustion must agree within one part in ten.
	drainRate := (baseline + burst) / 2
	d := Demand{Name: "drain", RatePerSec: 1, BlockSize: int64(drainRate)}
	want := model.exhaustionSecs(d)
	if math.IsInf(want, 1) {
		t.Fatalf("rate %.0f predicted to never exhaust", drainRate)
	}
	got := empirical(drainRate).Sub(0).Seconds()
	if diff := math.Abs(got-want) / want; diff > 0.10 {
		t.Errorf("exhaustion at rate %.0f: predicted %.2fs, measured %.2fs (%.1f%% off)",
			drainRate, want, got, 100*diff)
	}

	// A demand at the earn rate never drains; prediction and measurement
	// must both say "never".
	idle := Demand{Name: "idle", RatePerSec: 1, BlockSize: int64(baseline)}
	if secs := model.exhaustionSecs(idle); !math.IsInf(secs, 1) {
		t.Errorf("rate at baseline predicted to exhaust in %.2fs", secs)
	}
	if at := empirical(baseline); at >= 0 {
		t.Errorf("rate at baseline measured to exhaust at t=%dns", int64(at))
	}
}

// TestScreenFrontierAndVolume runs the two-fidelity screen end to end on
// the ordering catalog: the candidate volume must dwarf the simulation
// count (the whole point of screening), the frontier must be a proper
// Pareto set, every simulated frontier cell must exist in the report, and
// the run must be bit-for-bit deterministic.
func TestScreenFrontierAndVolume(t *testing.T) {
	ss := ScreenSpec{Spec: orderingSpec(), Candidates: 256}
	rep, err := Screen(context.Background(), ss)
	if err != nil {
		t.Fatal(err)
	}

	if rep.Candidates < 10*simCount(rep) {
		t.Errorf("screen scored %d candidates for %d simulations; want >=10x more candidates than simulations",
			rep.Candidates, simCount(rep))
	}
	if rep.Generated < rep.Candidates {
		t.Errorf("generated %d < distinct %d", rep.Generated, rep.Candidates)
	}
	if len(rep.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
	for i := 1; i < len(rep.Frontier); i++ {
		prev, cur := rep.Frontier[i-1], rep.Frontier[i]
		if cur.BackendsUsed <= prev.BackendsUsed {
			t.Errorf("frontier densities not strictly increasing: %d then %d", prev.BackendsUsed, cur.BackendsUsed)
		}
		if cur.Score >= prev.Score {
			t.Errorf("frontier scores not strictly improving: %.3f then %.3f", prev.Score, cur.Score)
		}
	}
	if rep.Simulated == nil {
		t.Fatal("no frontier simulations")
	}
	for i, pr := range rep.Simulated.Policies {
		if pr.BackendsUsed != rep.Frontier[i].BackendsUsed {
			t.Errorf("simulated %s used %d backends; screen predicted %d",
				pr.Policy, pr.BackendsUsed, rep.Frontier[i].BackendsUsed)
		}
	}

	// Determinism: a second identical screen must reproduce the report and
	// its rendering byte for byte.
	rep2, err := Screen(context.Background(), ss)
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	FormatScreen(&b1, rep)
	FormatScreen(&b2, rep2)
	if b1.String() != b2.String() {
		t.Error("screen output not deterministic across identical runs")
	}
	if !reflect.DeepEqual(rep.Frontier, rep2.Frontier) {
		t.Error("frontier not deterministic across identical runs")
	}
	if !strings.Contains(b1.String(), "candidates scored") {
		t.Errorf("missing screen summary line in output:\n%s", b1.String())
	}
}
