// isolationstudy compares the pluggable per-tenant QoS isolation policies
// on the noisy-neighbor scenario: the same victim + aggressor tenants run
// on one shared backend under fifo (the default, no isolation), weighted
// fair queueing, and reservation scheduling. Every policy variant measures
// identical arrival streams — same seeds, same request sequences — so the
// victim-tail differences are pure scheduling effects.
//
// The study answers the provisioning question the unwritten contract
// leaves open: when the provider cannot reveal your neighbors, how much of
// the noisy-neighbor tax can the backend scheduler refund? fifo shows the
// full tax; wfq caps each tenant's share of every contention point
// (cluster streams, cleaner debt pool, fabric links); reservation
// additionally guarantees the victim a minimum backend rate.
package main

import (
	"context"
	"fmt"
	"os"

	"essdsim"
)

func main() {
	cmp := essdsim.IsolationComparison{
		Sweep: essdsim.NeighborSweep{
			// Trimmed so the example runs in a few seconds: one aggressor
			// rate, three aggressor counts (0 = the solo control the
			// inflation columns divide by).
			AggressorCounts:      []int{0, 2, 4},
			AggressorRatesPerSec: []float64{1600},
			VictimOps:            900,
			Seed:                 7,
		},
		// Default policy set: fifo, wfq, reservation.
	}
	rep, err := essdsim.RunIsolationComparison(context.Background(), cmp)
	if err != nil {
		panic(err)
	}
	essdsim.FormatIsolationReport(os.Stdout, rep)

	fmt.Println()
	fmt.Println("What each policy refunds of the noisy-neighbor tax:")
	base := rep.Variants[0]
	for _, v := range rep.Variants {
		if v.Policy == essdsim.IsolationFIFO {
			fmt.Printf("  %-12v victim p99.9 inflates %.1fx at the busiest cell, %d cell(s) throttled — the full tax\n",
				v.Policy, v.MaxP999Inflation, v.ThrottledCells)
			continue
		}
		fmt.Printf("  %-12v victim p99.9 inflates %.1fx (vs %.1fx under fifo), %d cell(s) throttled\n",
			v.Policy, v.MaxP999Inflation, base.MaxP999Inflation, v.ThrottledCells)
	}
	fmt.Println()
	fmt.Println("Same arrivals, same seeds: the gap between the rows is scheduling, not load.")
}
