package fleet

import (
	"testing"

	"essdsim/internal/workload"
	"essdsim/kv"
)

// TestDemandFromKV checks the KV-profile bridge: the engine's
// device-level shape becomes the placeable demand, sizes round up to
// whole blocks, and a tenant with no measured device I/O is rejected.
func TestDemandFromKV(t *testing.T) {
	p := kv.MixProfile{Name: "kv0", RatePerSec: 850, MeanSize: 5000, WriteRatioPct: 73}
	d, err := DemandFromKV("kv0", p, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "kv0" || d.RatePerSec != 850 || d.WriteRatioPct != 73 {
		t.Fatalf("demand %+v does not carry the profile shape", d)
	}
	if d.BlockSize != 8192 {
		t.Fatalf("mean size 5000 rounded to %d, want 8192 (two 4096 blocks)", d.BlockSize)
	}
	if d.Arrival != workload.Poisson {
		t.Fatalf("arrival %v, want Poisson", d.Arrival)
	}

	// A zero mean size still yields one whole block.
	d, err = DemandFromKV("tiny", kv.MixProfile{RatePerSec: 10}, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if d.BlockSize != 4096 {
		t.Fatalf("zero mean size became block size %d", d.BlockSize)
	}

	// No device I/O means no placeable rate.
	if _, err := DemandFromKV("idle", kv.MixProfile{}, 4096); err == nil {
		t.Fatal("idle profile accepted")
	}
}

// TestDemandFromKVPlaces checks a KV-derived demand flows through a
// placement policy like any synthetic demand.
func TestDemandFromKVPlaces(t *testing.T) {
	d, err := DemandFromKV("kv0", kv.MixProfile{RatePerSec: 500, MeanSize: 64 << 10, WriteRatioPct: 80}, 4096)
	if err != nil {
		t.Fatal(err)
	}
	pl := FirstFit{}.Place(Constraints{Backends: 2, BackendBps: 1e9}, []Demand{d})
	if len(pl) != 1 || pl[0] < 0 || pl[0] >= 2 {
		t.Fatalf("kv demand placement %v", pl)
	}
}
