package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"essdsim/internal/essd"
	"essdsim/internal/expgrid"
	"essdsim/internal/profiles"
	"essdsim/internal/qos"
	"essdsim/internal/sim"
	"essdsim/internal/stats"
	"essdsim/internal/workload"
)

// Spec declares a fleet packing study: a catalog of tenant demands, a
// backend/volume template every placement instantiates, the packing
// budgets, the placement policies to compare, and the fleet-wide SLO the
// violation columns are counted against. Zero-valued fields take defaults.
type Spec struct {
	// Demands is the tenant catalog (see SyntheticDemands, DemandFromTrace).
	Demands []Demand

	// Backend and Volume are the templates every materialized backend and
	// tenant volume is built from (volume names come from the demands).
	// Zero values take the noisy-neighbor profiles: an ESSD-1-class
	// cluster with a modest cleaner, gp3-class volumes with a tight spare
	// margin.
	Backend essd.BackendConfig
	Volume  essd.VolumeConfig

	// Policies are compared in order (default DefaultPolicies: first-fit,
	// spread, best-fit, interference-aware).
	Policies []PlacementPolicy

	// Backends is the packing-density knob: how many backends every
	// policy may use. 0 derives the smallest count that fits the
	// catalog's nominal offered load within BackendBps per backend.
	Backends int
	// BackendBps is one backend's nominal offered-bytes/s budget
	// (default 900 MB/s, just under the neighbor volume class's 1 GB/s
	// throughput budget).
	BackendBps float64
	// WriteBps is one backend's write-absorption budget in bytes/s, the
	// "credit budget" best-fit packs against (default BackendBps/2).
	WriteBps float64

	// SLOP99 and SLOP999 are the fleet-wide tail-latency targets a
	// tenant's whole-run p99/p99.9 is checked against (defaults 20 ms and
	// 80 ms; set negative to disable a target).
	SLOP99  sim.Duration
	SLOP999 sim.Duration

	// Horizon bounds tenants whose demand leaves Ops zero: each issues
	// RatePerSec × Horizon requests (default 2 s).
	Horizon sim.Duration

	// Cache, when non-nil, serves already-computed backend cells from the
	// sweep-level result cache; Report.CachedCells counts the skips.
	Cache *expgrid.Cache

	Seed    uint64
	Workers int    // expgrid pool size (0 = GOMAXPROCS)
	Label   string // seed decorrelation label (default "fleet")
}

// Normalize returns the spec with every zero-valued field resolved to
// its documented default — the exact spec Run executes. Callers that
// build on the fleet machinery (the churn control plane, the analytic
// screen) normalize first so their own planning sees the same budgets,
// templates, and horizon the simulation will use.
func (s Spec) Normalize() Spec { return s.withDefaults() }

func (s Spec) withDefaults() Spec {
	if s.Backend.Cluster.Nodes == 0 {
		// Preserve an isolation-only override: a spec may select a policy
		// while leaving the cluster/net template to the profile default.
		iso := s.Backend.Isolation
		s.Backend = profiles.NeighborBackendConfig()
		s.Backend.Isolation = iso
	}
	if s.Volume.Capacity == 0 {
		s.Volume = profiles.NeighborVolumeConfig("tenant")
	}
	if len(s.Policies) == 0 {
		s.Policies = DefaultPolicies()
	}
	if s.BackendBps <= 0 {
		s.BackendBps = 0.9e9
	}
	if s.WriteBps <= 0 {
		s.WriteBps = s.BackendBps / 2
	}
	if s.SLOP99 == 0 {
		s.SLOP99 = 20 * sim.Millisecond
	}
	if s.SLOP999 == 0 {
		s.SLOP999 = 80 * sim.Millisecond
	}
	if s.Horizon <= 0 {
		s.Horizon = 2 * sim.Second
	}
	if s.Backends <= 0 {
		var total float64
		for _, d := range s.Demands {
			total += d.OfferedBps()
		}
		s.Backends = int(math.Ceil(total / s.BackendBps))
		if s.Backends < 1 {
			s.Backends = 1
		}
	}
	if s.Label == "" {
		s.Label = "fleet"
	}
	return s
}

// Validate reports a descriptive error for a nonsensical spec.
func (s Spec) Validate() error {
	if len(s.Demands) == 0 {
		return fmt.Errorf("fleet: spec has no tenant demands")
	}
	seen := make(map[string]bool, len(s.Demands))
	for _, d := range s.Demands {
		if err := d.Validate(); err != nil {
			return err
		}
		if strings.ContainsAny(d.Name, "[]+|") {
			return fmt.Errorf("fleet: demand name %q contains a cell-naming character", d.Name)
		}
		if seen[d.Name] {
			return fmt.Errorf("fleet: duplicate demand name %q", d.Name)
		}
		seen[d.Name] = true
	}
	return nil
}

// PackingConstraints derives the packing budgets handed to every
// placement policy from the (normalized) spec — exported for callers
// that invoke PlacementPolicy.Place outside Run, such as the churn
// control plane's online placement decisions.
func (s Spec) PackingConstraints() Constraints { return s.constraints() }

// constraints derives the packing budgets handed to every policy,
// including the per-volume sustainable-rate cap from the volume class's
// credit analytics: a burstable tier's long-run rate is its
// qos.CreditBucket sustained floor, every other tier's is its throughput
// budget.
func (s Spec) constraints() Constraints {
	eff := s.Volume.ThroughputBudget
	if s.Volume.BurstBaseline > 0 {
		// A scratch bucket on a scratch engine: the analytics are pure
		// functions of the tier parameters.
		eff = qos.NewCreditBucket(sim.NewEngine(), s.Volume.BurstBaseline,
			s.Volume.ThroughputBudget, s.Volume.BurstCreditBytes).SustainedFloor()
	}
	return Constraints{
		Backends:     s.Backends,
		BackendBps:   s.BackendBps,
		WriteBps:     s.WriteBps,
		EffectiveBps: eff,
	}
}

// cellDef is one simulation cell of the materialized study: a shared
// backend hosting members (demand indices), or a solo control (solo true)
// hosting one demand alone. Cells are identified by their population
// only — NOT by which policy or backend index produced them — so two
// policies that co-locate the same tenants share one cell: physically
// identical placements measure identically (no seed noise masquerading
// as a policy difference), simulate once, and share cache entries.
type cellDef struct {
	name    string
	solo    bool
	members []int
}

// backendRef ties one policy's materialized backend to its shared cell.
type backendRef struct {
	backend int // backend index within the policy's placement
	cell    int // index into the cellDef slice
}

// cells enumerates the study deterministically: one cell per distinct
// backend population across all policies (in first-appearance order),
// then one solo-control cell per distinct demand signature. refs maps
// each policy's non-empty backends, in index order, to their cells.
func (s Spec) cells(assignments [][]int) (defs []cellDef, refs [][]backendRef) {
	byName := make(map[string]int)
	refs = make([][]backendRef, len(assignments))
	for pi, assign := range assignments {
		byBackend := make([][]int, s.Backends)
		for di, b := range assign {
			byBackend[b] = append(byBackend[b], di)
		}
		for b, members := range byBackend {
			if len(members) == 0 {
				continue
			}
			names := make([]string, len(members))
			for i, di := range members {
				names[i] = s.Demands[di].Name
			}
			name := "mix[" + strings.Join(names, "+") + "]"
			ci, ok := byName[name]
			if !ok {
				ci = len(defs)
				byName[name] = ci
				defs = append(defs, cellDef{name: name, members: members})
			}
			refs[pi] = append(refs[pi], backendRef{backend: b, cell: ci})
		}
	}
	seen := make(map[string]bool)
	for di, d := range s.Demands {
		sig := d.signature()
		if seen[sig] {
			continue
		}
		seen[sig] = true
		defs = append(defs, cellDef{
			name:    "solo[" + sig + "]",
			solo:    true,
			members: []int{di},
		})
	}
	return defs, refs
}

// MixCell is one simulation cell of a fleet-machinery study: a shared
// backend hosting the member demands together (or one demand alone when
// Solo). Name must uniquely encode the membership — cell seeds and cache
// entries are keyed on (label, name), so two cells may share a name only
// when their members are identical. Run derives its cells from the
// catalog; the churn control plane synthesizes cells whose members are
// scaled copies of catalog entries, encoding the scale in the name.
type MixCell struct {
	Name    string
	Solo    bool
	Members []Demand
}

// buildMix is the expgrid Tenants hook over explicit MixCells: it
// constructs one cell's shared backend and attaches the member demands'
// volumes, every tenant preconditioned and seeded from the cell seed.
func (s Spec) buildMix(cells []MixCell) func(c expgrid.Cell) (*sim.Engine, []workload.Tenant) {
	return func(c expgrid.Cell) (*sim.Engine, []workload.Tenant) {
		cell := cells[c.DeviceIndex]
		eng := sim.AcquireEngine() // released by expgrid after the cell drains
		rng := sim.NewRNG(c.Seed, c.Seed^0xf1ee)
		be := essd.NewBackend(eng, s.Backend, rng.Derive("backend"))
		tenants := make([]workload.Tenant, 0, len(cell.Members))
		for i, d := range cell.Members {
			vcfg := s.Volume
			vcfg.Name = d.Name
			vol := be.Attach(vcfg, rng)
			vol.Precondition(1)
			tenants = append(tenants, workload.Tenant{
				Name: d.Name,
				Dev:  vol,
				Open: &workload.OpenSpec{
					Pattern:    workload.Mixed,
					BlockSize:  d.BlockSize,
					WriteRatio: d.writeFrac(),
					RatePerSec: d.RatePerSec,
					Arrival:    d.Arrival,
					Count:      horizonOps(d, s.Horizon),
					Seed:       c.Seed ^ uint64(0x5eed+i*0x9e37),
				},
			})
		}
		return eng, tenants
	}
}

// TenantInfo is one tenant's post-run backend-coupling capture.
type TenantInfo struct {
	Name        string       `json:"name"`
	Throttled   bool         `json:"throttled"`
	ThrottledAt sim.Time     `json:"throttled_at"` // -1 when never engaged
	Stall       sim.Duration `json:"stall"`
	DebtAdded   int64        `json:"debt_added"`
	FabricUp    int64        `json:"fabric_up"`
}

// CellInfo is the InspectMix capture of one backend cell: the pooled debt
// plus per-tenant throttle state and attribution. JSON-round-trippable so
// cached cells survive persistence (see decodeCellInfo). Exported so
// callers driving MixSweep directly (the churn control plane) can type-
// assert each CellResult's Info.
type CellInfo struct {
	SharedDebt int64        `json:"shared_debt"`
	Tenants    []TenantInfo `json:"tenants"`
}

// inspectCell captures every tenant's throttle/debt state while the
// cell's volumes are still alive.
func inspectCell(tenants []workload.Tenant, _ expgrid.Cell) any {
	info := CellInfo{}
	for _, t := range tenants {
		ti := TenantInfo{Name: t.Name, ThrottledAt: -1}
		if vol, ok := t.Dev.(*essd.ESSD); ok {
			ti.Throttled = vol.Throttled()
			if ti.Throttled {
				ti.ThrottledAt = vol.ThrottledAt()
			}
			ti.Stall = vol.BudgetStall()
			use := vol.BackendUse()
			ti.DebtAdded = use.DebtAdded
			ti.FabricUp = use.FabricUp
			info.SharedDebt = vol.Backend().Debt()
		}
		info.Tenants = append(info.Tenants, ti)
	}
	return info
}

// decodeCellInfo rehydrates a persisted cellInfo (the expgrid DecodeInfo
// hook matching inspectCell).
func decodeCellInfo(raw []byte) (any, error) {
	var info CellInfo
	if err := json.Unmarshal(raw, &info); err != nil {
		return nil, err
	}
	return info, nil
}

// TenantReport is one placed tenant's measurement under one policy.
type TenantReport struct {
	Name    string
	Backend int // backend index the policy placed the tenant on

	// Demand echo.
	RatePerSec    float64
	BlockSize     int64
	WriteRatioPct int
	Arrival       workload.Arrival

	// Measurements over the tenant's own submission-to-last-completion
	// window.
	Ops           uint64
	Bytes         int64
	Elapsed       sim.Duration
	Lat           stats.Summary
	ThroughputBps float64

	// SLO verdicts against the spec targets.
	P99Violation  bool
	P999Violation bool

	// Inflation vs the tenant's solo control (same demand shape, alone on
	// a private backend); 0 when the control's tail is zero.
	P99Inflation  float64
	P999Inflation float64

	// Shared-backend coupling.
	Throttled     bool
	ThrottleOnset sim.Duration // -1 when the limiter never engaged
	BudgetStall   sim.Duration
	DebtAdded     int64
}

// BackendReport is one materialized backend's aggregate under one policy.
type BackendReport struct {
	Index   int
	Tenants []string

	OfferedBps  float64 // sum of member nominal offered rates
	WriteBps    float64 // sum of member nominal write rates
	Utilization float64 // OfferedBps / Spec.BackendBps

	AchievedBps float64 // completed bytes over the longest member window
	SharedDebt  int64   // pooled cleaner debt at end of run
	Throttled   int     // members whose flow limiter engaged
	WorstP99    sim.Duration
	WorstP999   sim.Duration

	Cached bool // served from the sweep cache
}

// PolicyReport is one placement policy's complete outcome.
type PolicyReport struct {
	Policy     string
	Assignment []int // backend index per demand, in catalog order

	BackendsUsed int
	Backends     []BackendReport
	Tenants      []TenantReport // catalog order

	// Fleet-wide aggregates.
	P99Violations      int
	P999Violations     int
	ThrottledTenants   int
	WorstP99Inflation  float64
	WorstP999Inflation float64
	// MeanUtilization averages offered/budget over the backends the
	// policy actually used.
	MeanUtilization float64
}

// SoloControl is one distinct demand shape's solo baseline: the tenant
// alone on a private backend built from the same templates.
type SoloControl struct {
	Signature string
	Lat       stats.Summary
	Cached    bool
}

// Report is the full study outcome: one PolicyReport per compared policy
// over the identical tenant catalog, plus the shared solo controls.
type Report struct {
	Tenants    int
	Backends   int // density knob: backends available to every policy
	BackendBps float64
	WriteBps   float64
	SLOP99     sim.Duration
	SLOP999    sim.Duration

	Policies []PolicyReport
	Solo     []SoloControl

	// Cells and CachedCells count the expgrid simulations behind the
	// report and how many were served from the sweep cache.
	Cells       int
	CachedCells int
}

// Policy returns the named policy's report, or nil.
func (r *Report) Policy(name string) *PolicyReport {
	for i := range r.Policies {
		if r.Policies[i].Policy == name {
			return &r.Policies[i]
		}
	}
	return nil
}

// Run executes the fleet packing study: every policy places the identical
// demand catalog, each placement materializes as independent shared-
// backend simulations (one expgrid tenant-mix cell per distinct backend
// population — shared when two policies co-locate the same tenants —
// plus one solo-control cell per distinct demand shape), and all cells of
// all policies run in parallel on one expgrid worker pool. Results are
// deterministic and identical for any worker count; with Spec.Cache a
// warm re-run simulates zero new cells. Cancel ctx to stop early.
func Run(ctx context.Context, s Spec) (*Report, error) {
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	cons := s.constraints()
	assignments := make([][]int, len(s.Policies))
	for i, p := range s.Policies {
		assignments[i] = p.Place(cons, s.Demands)
		if len(assignments[i]) != len(s.Demands) {
			return nil, fmt.Errorf("fleet: policy %s placed %d of %d demands",
				p.Name(), len(assignments[i]), len(s.Demands))
		}
		for _, b := range assignments[i] {
			if b < 0 || b >= s.Backends {
				return nil, fmt.Errorf("fleet: policy %s placed a demand on backend %d of %d",
					p.Name(), b, s.Backends)
			}
		}
	}
	defs, refs := s.cells(assignments)
	cells := make([]MixCell, len(defs))
	for i, def := range defs {
		members := make([]Demand, len(def.members))
		for j, di := range def.members {
			members[j] = s.Demands[di]
		}
		cells[i] = MixCell{Name: def.name, Solo: def.solo, Members: members}
	}
	results, err := expgrid.Runner{Workers: s.Workers}.Run(ctx, s.MixSweep(cells))
	if err != nil {
		return nil, err
	}
	return s.fold(defs, refs, assignments, results), nil
}

// MixSweep assembles the expgrid sweep that simulates the given cells
// under the (normalized) spec's templates: one TenantMix cell per
// MixCell, built by buildMix, inspected into CellInfo. The spec's full
// identity — budgets, horizon, templates, and the demand catalog — is
// folded into the sweep label, so two specs share cache entries (and
// cell seeds) exactly when their cells would build identical tenant
// mixes; the catalog hook's other inputs are invisible to the expgrid
// fingerprint, which only hashes Sweep fields, and membership lives in
// the cell device names. The Backend and Volume templates go in via
// their Signature methods — deterministic pointer-free renderings that
// change with any template field while keeping the label (and thus every
// cell seed) byte-identical to the pre-isolation %#v rendering for
// default configs. Callers synthesizing cells beyond the catalog (the
// churn control plane) must keep the (label, cell-name) → members
// mapping injective: a scaled member carries its scale in both its Name
// and the cell name.
func (s Spec) MixSweep(cells []MixCell) expgrid.Sweep {
	var cat strings.Builder
	for _, d := range s.Demands {
		fmt.Fprintf(&cat, "%s=%s;", d.Name, d.signature())
	}
	// The isolation axis goes in the sweep Variant, not the label: the
	// label (stripped of isolation) keeps the cell seeds — and hence every
	// tenant's arrival draws — identical across policies, so a fleet
	// isolation study compares pure scheduling effects, while each variant
	// caches separately.
	beLabel, volLabel := s.Backend, s.Volume
	beLabel.Isolation = qos.Isolation{}
	volLabel.Weight, volLabel.ReservedRate = 0, 0
	label := fmt.Sprintf("%s|bud%g|hz%v|be%s|vol%s|%s",
		s.Label, s.BackendBps, s.Horizon, beLabel.Signature(), volLabel.Signature(), cat.String())
	var variant string
	if s.Backend.Isolation.Enabled() || s.Volume.Weight != 0 || s.Volume.ReservedRate != 0 {
		variant = fmt.Sprintf("iso:%s|w%g|r%g",
			s.Backend.Isolation.Signature(), s.Volume.Weight, s.Volume.ReservedRate)
	}

	sw := expgrid.Sweep{
		Kind: expgrid.TenantMix,
		// One cell per backend (and per solo control): the device axis
		// names carry each cell's full membership.
		AggressorCounts: []int{0},
		RatesPerSec:     []float64{1},
		Tenants:         s.buildMix(cells),
		InspectMix:      inspectCell,
		Cache:           s.Cache,
		DecodeInfo:      decodeCellInfo,
		Seed:            s.Seed,
		Label:           label,
		Variant:         variant,
	}
	for _, cell := range cells {
		sw.Devices = append(sw.Devices, expgrid.NamedFactory{Name: cell.Name})
	}
	return sw
}

// fold assembles the report from the raw cell results.
func (s Spec) fold(defs []cellDef, refs [][]backendRef, assignments [][]int, results []expgrid.CellResult) *Report {
	rep := &Report{
		Tenants:    len(s.Demands),
		Backends:   s.Backends,
		BackendBps: s.BackendBps,
		WriteBps:   s.WriteBps,
		SLOP99:     s.SLOP99,
		SLOP999:    s.SLOP999,
		Cells:      len(results),
	}

	// Solo controls first: the per-tenant inflation columns divide by them.
	solo := make(map[string]stats.Summary)
	for i, r := range results {
		if r.Cached {
			rep.CachedCells++
		}
		def := defs[i]
		if !def.solo {
			continue
		}
		sum := r.Mix[0].Open.Lat.Summarize()
		sig := s.Demands[def.members[0]].signature()
		solo[sig] = sum
		rep.Solo = append(rep.Solo, SoloControl{Signature: sig, Lat: sum, Cached: r.Cached})
	}

	for pi, pol := range s.Policies {
		pr := PolicyReport{
			Policy:     pol.Name(),
			Assignment: assignments[pi],
			Tenants:    make([]TenantReport, len(s.Demands)),
		}
		for _, ref := range refs[pi] {
			def := defs[ref.cell]
			r := results[ref.cell]
			info := r.Info.(CellInfo)
			br := BackendReport{
				Index:      ref.backend,
				SharedDebt: info.SharedDebt,
				Cached:     r.Cached,
			}
			var achievedBytes int64
			var longest sim.Duration
			for mi, di := range def.members {
				d := s.Demands[di]
				tr := r.Mix[mi]
				ti := info.Tenants[mi]
				t := TenantReport{
					Name:          d.Name,
					Backend:       ref.backend,
					RatePerSec:    d.RatePerSec,
					BlockSize:     d.BlockSize,
					WriteRatioPct: d.WriteRatioPct,
					Arrival:       d.Arrival,
					Ops:           tr.Open.Ops,
					Bytes:         tr.Open.Bytes,
					Elapsed:       tr.Open.Elapsed,
					Lat:           tr.Open.Lat.Summarize(),
					ThroughputBps: tr.Open.Throughput(),
					Throttled:     ti.Throttled,
					ThrottleOnset: -1,
					BudgetStall:   ti.Stall,
					DebtAdded:     ti.DebtAdded,
				}
				if ti.Throttled && ti.ThrottledAt >= 0 {
					t.ThrottleOnset = sim.Duration(ti.ThrottledAt)
				}
				t.P99Violation = s.SLOP99 > 0 && t.Lat.P99 > s.SLOP99
				t.P999Violation = s.SLOP999 > 0 && t.Lat.P999 > s.SLOP999
				if ctrl, ok := solo[d.signature()]; ok {
					if ctrl.P99 > 0 {
						t.P99Inflation = float64(t.Lat.P99) / float64(ctrl.P99)
					}
					if ctrl.P999 > 0 {
						t.P999Inflation = float64(t.Lat.P999) / float64(ctrl.P999)
					}
				}
				pr.Tenants[di] = t

				br.Tenants = append(br.Tenants, d.Name)
				br.OfferedBps += d.OfferedBps()
				br.WriteBps += d.WriteBps()
				achievedBytes += t.Bytes
				if t.Elapsed > longest {
					longest = t.Elapsed
				}
				if t.Throttled {
					br.Throttled++
				}
				if t.Lat.P99 > br.WorstP99 {
					br.WorstP99 = t.Lat.P99
				}
				if t.Lat.P999 > br.WorstP999 {
					br.WorstP999 = t.Lat.P999
				}
			}
			br.Utilization = br.OfferedBps / s.BackendBps
			if longest > 0 {
				br.AchievedBps = float64(achievedBytes) / longest.Seconds()
			}
			pr.Backends = append(pr.Backends, br)
		}
		pr.BackendsUsed = len(pr.Backends)
		var offered float64
		for _, br := range pr.Backends {
			offered += br.OfferedBps
		}
		if pr.BackendsUsed > 0 {
			pr.MeanUtilization = offered / (s.BackendBps * float64(pr.BackendsUsed))
		}
		for _, t := range pr.Tenants {
			if t.P99Violation {
				pr.P99Violations++
			}
			if t.P999Violation {
				pr.P999Violations++
			}
			if t.Throttled {
				pr.ThrottledTenants++
			}
			if t.P99Inflation > pr.WorstP99Inflation {
				pr.WorstP99Inflation = t.P99Inflation
			}
			if t.P999Inflation > pr.WorstP999Inflation {
				pr.WorstP999Inflation = t.P999Inflation
			}
		}
		rep.Policies = append(rep.Policies, pr)
	}
	return rep
}
