// ioreduction re-evaluates compression on cloud storage (Implication #5):
// on a local SSD, spending CPU to shrink small writes loses on latency
// because the medium is faster than the compressor; behind an ESSD's
// network latency and throughput budget, the same compressor is latency-
// neutral and halves the bytes charged against the provisioned budget —
// cutting both the makespan of budget-bound work and the bill.
//
// Model: 16 KiB logical blocks, compressor ratio 2.0, 40 µs CPU per block
// on the critical path (zstd-class figures).
package main

import (
	"fmt"

	"essdsim"
)

const (
	logicalBlock  = 16 << 10
	compressRatio = 2.0
	compressCPU   = 40 * essdsim.Microsecond
)

// run ingests `blocks` logical blocks at the given queue depth, optionally
// compressed, and returns mean per-block latency (measured from before
// compression starts) and the makespan.
func run(deviceName string, compressed bool, blocks, qd int) (avg, makespan essdsim.Duration) {
	eng := essdsim.NewEngine()
	dev, err := essdsim.NewDevice(deviceName, eng, 13)
	if err != nil {
		panic(err)
	}
	essdsim.Precondition(dev, true)
	ioSize := int64(logicalBlock)
	if compressed {
		bs := int64(dev.BlockSize())
		ioSize = (int64(float64(logicalBlock)/compressRatio) + bs - 1) / bs * bs
	}
	var total essdsim.Duration
	done, inflight, next := 0, 0, 0
	var submit func()
	submit = func() {
		for inflight < qd && next < blocks {
			next++
			inflight++
			issue := eng.Now()
			off := int64(next%1024) * (4 << 20)
			start := func() {
				dev.Submit(&essdsim.Request{
					Op:     essdsim.OpWrite,
					Offset: off,
					Size:   ioSize,
					OnComplete: func(r *essdsim.Request, at essdsim.Time) {
						total += at.Sub(issue)
						done++
						inflight--
						submit()
					},
				})
			}
			if compressed {
				eng.Schedule(compressCPU, start) // CPU on the critical path
			} else {
				start()
			}
		}
	}
	submit()
	eng.Run()
	return total / essdsim.Duration(done), eng.Now().Sub(0)
}

func main() {
	fmt.Println("Implication #5: re-evaluate I/O reduction (compression) for ESSDs.")
	fmt.Printf("%dK blocks, ratio %.1fx, %v CPU per block on the critical path.\n",
		logicalBlock>>10, compressRatio, compressCPU)

	fmt.Println("\n(1) Latency-bound: single outstanding write (QD1).")
	fmt.Printf("%-10s %-14s %-14s %s\n", "device", "raw avg", "compressed avg", "latency verdict")
	for _, name := range []string{"ssd", "essd2"} {
		raw, _ := run(name, false, 512, 1)
		comp, _ := run(name, true, 512, 1)
		verdict := "compression is ~free"
		if comp > raw*3/2 {
			verdict = "compression HURTS"
		} else if comp < raw {
			verdict = "compression wins"
		}
		fmt.Printf("%-10s %-14v %-14v %s\n", name, raw, comp, verdict)
	}

	fmt.Println("\n(2) Budget-bound: bulk ingest of 256 MiB at QD16.")
	fmt.Printf("%-10s %-14s %-14s %s\n", "device", "raw makespan", "compressed", "bytes billed")
	blocks := (256 << 20) / logicalBlock
	for _, name := range []string{"ssd", "essd2"} {
		_, raw := run(name, false, blocks, 16)
		_, comp := run(name, true, blocks, 16)
		fmt.Printf("%-10s %-14v %-14v halved\n", name, raw, comp)
	}

	fmt.Println()
	fmt.Println("At QD1 the local SSD exposes the compressor (40µs CPU vs ~10µs write);")
	fmt.Println("the ESSD's network latency hides it. Under bulk load the ESSD's token-")
	fmt.Println("bucket budget is the ceiling (Observation #4), so halving bytes cuts")
	fmt.Println("the makespan (until the IOPS budget binds) and halves the bytes the")
	fmt.Println("throughput budget — and the bill — must be sized for.")
}
