package contract

import (
	"fmt"
	"io"
)

// Implication is one of the paper's five actionable implications, tied to
// the observation(s) that justify it.
type Implication struct {
	ID     string
	From   []string // observation check IDs that motivate it
	Advice string
}

// Implications returns the paper's five implications (§III), annotated
// with whether the motivating observations held on the evaluated device.
func Implications() []Implication {
	return []Implication{
		{
			ID:   "I1",
			From: []string{"O1"},
			Advice: "Scale the I/O sizes and I/O queue depths up as much as " +
				"possible: small or shallow I/O pays tens-to-hundred× the " +
				"local-SSD latency.",
		},
		{
			ID:   "I2",
			From: []string{"O2"},
			Advice: "Reconsider if and how GC-mitigation techniques designed " +
				"for local SSDs (tail-tolerant redundancy, GC-aware " +
				"scheduling) should be adapted: device-side GC impact " +
				"appears far later or not at all.",
		},
		{
			ID:   "I3",
			From: []string{"O2", "O3"},
			Advice: "Rethink converting random writes into sequential writes " +
				"(log-structuring, copy-on-write): random writes are not " +
				"penalized and can be substantially faster; consider even " +
				"proactively randomizing sequential writes.",
		},
		{
			ID:   "I4",
			From: []string{"O4"},
			Advice: "Smooth read/write I/O evenly across the timeline and " +
				"below the guaranteed throughput budget: the budget, not " +
				"the medium, is the ceiling, and bursts only buy queueing.",
		},
		{
			ID:   "I5",
			From: []string{"O1", "O4"},
			Advice: "Re-evaluate I/O-reduction techniques (compression, " +
				"deduplication) previously dismissed for CPU overhead: " +
				"against cloud latency/budget they cut cost and can " +
				"improve performance.",
		},
	}
}

// FormatAdvice writes the implications that the report's passing
// observations support.
func FormatAdvice(w io.Writer, r *Report) {
	passed := map[string]bool{}
	for _, c := range r.Checks {
		passed[c.ID] = c.Passed
	}
	fmt.Fprintf(w, "Implications for software deployed on %s:\n", r.ESSD)
	for _, imp := range Implications() {
		ok := true
		for _, dep := range imp.From {
			if !passed[dep] {
				ok = false
			}
		}
		marker := "applies"
		if !ok {
			marker = "verify manually (motivating observation failed)"
		}
		fmt.Fprintf(w, "\n[%s] (%s) %s\n", imp.ID, marker, imp.Advice)
	}
}
