// Command uccontract runs the unwritten-contract checker against an ESSD
// profile, using the local SSD as the comparison baseline, and prints the
// verdict on all four observations plus the five implications.
//
// Examples:
//
//	uccontract -device essd1
//	uccontract -device essd2 -quick -json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"essdsim"
	"essdsim/internal/blockdev"
	"essdsim/internal/contract"
	"essdsim/internal/harness"
	"essdsim/internal/profiles"
	"essdsim/internal/sim"
)

func main() {
	var (
		device  = flag.String("device", "essd1", "ESSD profile to check: "+strings.Join(essdsim.ProfileNames(), ", "))
		quick   = flag.Bool("quick", false, "reduced grids for a fast pass")
		seed    = flag.Uint64("seed", 11, "deterministic seed")
		jsonOut = flag.Bool("json", false, "emit the report as JSON")
		mult    = flag.Float64("capmult", 3, "sustained-write volume in capacity multiples")
	)
	flag.Parse()

	mk := func(name string) harness.Factory {
		return func(s uint64) blockdev.Device {
			d, err := profiles.ByName(name, sim.NewEngine(), sim.NewRNG(*seed^s, s+1))
			if err != nil {
				fmt.Fprintln(os.Stderr, "uccontract:", err)
				os.Exit(1)
			}
			return d
		}
	}
	opts := contract.EvalOptions{Quick: *quick, CapMultiple: *mult}
	if *quick {
		opts.Harness = harness.Options{
			CellDuration: 150 * sim.Millisecond,
			Warmup:       30 * sim.Millisecond,
			Seed:         *seed,
		}
		if *mult == 3 {
			opts.CapMultiple = 1.6
		}
	} else {
		opts.Harness = harness.Options{Seed: *seed}
	}

	report := contract.Evaluate(mk(*device), mk("ssd"), opts)
	if *jsonOut {
		js, err := report.MarshalIndent()
		if err != nil {
			fmt.Fprintln(os.Stderr, "uccontract:", err)
			os.Exit(1)
		}
		fmt.Println(string(js))
	} else {
		contract.Format(os.Stdout, report)
		fmt.Println()
		contract.FormatAdvice(os.Stdout, report)
	}
	if !report.Passed() {
		os.Exit(2)
	}
}
