package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"essdsim/internal/essd"
	"essdsim/internal/expgrid"
	"essdsim/internal/profiles"
	"essdsim/internal/sim"
	"essdsim/internal/stats"
	"essdsim/internal/workload"
	"essdsim/kv"
)

// KVMixSweep declares the KV tenant-mix suite: several key-value tenants
// — each an LSM or page-store engine (Implication #3's two write-path
// designs) on its own elastic volume of one shared backend — driven by
// open-loop zipfian point reads and writes inside one engine. The grid
// sweeps engine design × key skew × value size × backend tier through the
// expgrid KVMix kind; LSM flush/compaction bursts and page-store
// read-before-write misses are the natural aggressors, so the report
// shows how an engine's background work inflates its neighbors' operation
// tails on a shared fabric. Zero-valued fields take defaults.
type KVMixSweep struct {
	// Axes.
	Engines    []string  // engine designs: "lsm", "pagestore" (default both)
	Skews      []float64 // zipfian key skews in [0, 1) (default 0, 0.99)
	ValueSizes []int64   // put value sizes in bytes (default 1024)
	Tiers      []string  // backend tier profile names (default essd1)

	// Per-tenant shape, identical for every tenant of a cell.
	Tenants      int              // tenants sharing each cell's backend (default 3)
	OpsPerTenant uint64           // operations per tenant (default 1500)
	RatePerSec   float64          // per-tenant offered op rate (default 4000)
	ReadFracPct  int              // percentage of ops that are Gets (default 50)
	Arrival      workload.Arrival // default Uniform; Poisson/Bursty selectable
	KeySpace     uint64           // distinct keys per tenant (default 1<<18)

	// MemtableBytes scales the LSM memtable so flush/compaction pressure
	// shows inside a cell's short horizon (default 256 KiB — a few dozen
	// flushes per tenant at the default ops). Page-store tenants ignore it.
	MemtableBytes int64

	// Cache, when non-nil, serves already-computed cells from the
	// sweep-level result cache; KVMixReport.CachedCells counts the
	// skipped simulations.
	Cache *expgrid.Cache

	Seed    uint64
	Workers int    // expgrid pool size (0 = GOMAXPROCS)
	Label   string // seed decorrelation label (default "kvmix")

	// OnProgress, when non-nil, receives one expgrid.Progress per
	// completed cell (elapsed/ETA and cached count included). Invoked
	// serially, display-only.
	OnProgress func(expgrid.Progress)
}

func (s KVMixSweep) withDefaults() KVMixSweep {
	if len(s.Engines) == 0 {
		s.Engines = []string{"lsm", "pagestore"}
	}
	if len(s.Skews) == 0 {
		s.Skews = []float64{0, 0.99}
	}
	if len(s.ValueSizes) == 0 {
		s.ValueSizes = []int64{1024}
	}
	if len(s.Tiers) == 0 {
		s.Tiers = []string{"essd1"}
	}
	if s.Tenants <= 0 {
		s.Tenants = 3
	}
	if s.OpsPerTenant == 0 {
		s.OpsPerTenant = 1500
	}
	if s.RatePerSec <= 0 {
		s.RatePerSec = 4000
	}
	if s.ReadFracPct == 0 {
		s.ReadFracPct = 50
	} else if s.ReadFracPct < 0 { // -1 sentinel: pure ingest
		s.ReadFracPct = 0
	}
	if s.KeySpace == 0 {
		s.KeySpace = 1 << 18
	}
	if s.MemtableBytes <= 0 {
		s.MemtableBytes = 256 << 10
	}
	if s.Label == "" {
		s.Label = "kvmix"
	}
	return s
}

// validate rejects coordinates the BuildKV hook cannot construct — an
// unknown engine design or a tier without a shared backend — before any
// cell simulates, with the axis named.
func (s KVMixSweep) validate() error {
	for _, e := range s.Engines {
		if e != "lsm" && e != "pagestore" {
			return fmt.Errorf("scenario: unknown kv engine %q (want lsm or pagestore)", e)
		}
	}
	for _, tier := range s.Tiers {
		if _, err := profiles.ConfigByName(tier); err != nil {
			return fmt.Errorf("scenario: kv tier %q: %w", tier, err)
		}
	}
	if s.ReadFracPct > 100 {
		return fmt.Errorf("scenario: kv read fraction %d%% out of [-1, 100]", s.ReadFracPct)
	}
	return nil
}

// BuildKV constructs one cell's shared backend and KV tenants on a fresh
// engine: s.Tenants fully preconditioned volumes attached to one backend
// of the cell's tier, each carrying a storage engine of the cell's design
// and an identical open-loop spec (per-tenant seeds decorrelate the
// draws). It is the sweep's expgrid KV hook, exported so tests and
// studies can reproduce a single cell exactly.
func (s KVMixSweep) BuildKV(c expgrid.Cell) (*sim.Engine, []kv.MixTenant) {
	s = s.withDefaults()
	eng := sim.AcquireEngine() // released by expgrid after the cell drains
	rng := sim.NewRNG(c.Seed, c.Seed^0x3d)
	cfg, err := profiles.ConfigByName(c.DeviceName)
	if err != nil {
		panic(err) // expgrid recovers this into CellResult.Err
	}
	bcfg, vcfg := cfg.Split()
	be := essd.NewBackend(eng, bcfg, rng.Derive("backend"))
	tenants := make([]kv.MixTenant, 0, s.Tenants)
	for i := 0; i < s.Tenants; i++ {
		vc := vcfg
		vc.Name = fmt.Sprintf("kv%d", i)
		vol := be.Attach(vc, rng)
		// Full fill: gets and compaction reads must hit written data.
		expgrid.Precondition(vol, false)
		var e kv.Engine
		switch c.KVEngine {
		case "lsm":
			lcfg := kv.DefaultLSMConfig()
			lcfg.MemtableBytes = s.MemtableBytes
			lcfg.L0CompactTrigger = 2
			e = kv.NewLSM(vol, lcfg)
		case "pagestore":
			e = kv.NewPageStore(vol, kv.DefaultPageStoreConfig(vol))
		default:
			panic(fmt.Sprintf("scenario: unknown kv engine %q", c.KVEngine))
		}
		tenants = append(tenants, kv.MixTenant{
			Name:   vc.Name,
			Engine: e,
			Spec: kv.MixSpec{
				Ops:        s.OpsPerTenant,
				ValueSize:  c.ValueSize,
				ReadFrac:   float64(s.ReadFracPct) / 100,
				RatePerSec: s.RatePerSec,
				Arrival:    s.Arrival,
				KeySpace:   s.KeySpace,
				ZipfTheta:  c.KVSkew,
				Seed:       c.Seed ^ uint64(0x6f00+i),
			},
		})
	}
	return eng, tenants
}

// KVMixInfo is the post-run capture of InspectKVMix: the shared backend's
// pooled cleaning debt and how many tenants' flow limiters engaged — the
// Obs#2 coupling driven by KV background work instead of raw writes. It
// is JSON-round-trippable so cached cells survive persistence.
type KVMixInfo struct {
	SharedDebt int64 `json:"shared_debt"` // pooled debt at end of run
	Throttled  int   `json:"throttled"`   // tenants whose limiter engaged
}

// InspectKVMix is the expgrid InspectKV hook of the KV suite: it captures
// the shared backend's debt pool and per-tenant throttle engagement while
// the cell's volumes are still alive.
func InspectKVMix(tenants []kv.MixTenant, _ expgrid.Cell) any {
	info := KVMixInfo{}
	for i, t := range tenants {
		vol, ok := t.Engine.Device().(*essd.ESSD)
		if !ok {
			continue
		}
		if i == 0 {
			info.SharedDebt = vol.Backend().Debt()
		}
		if vol.Throttled() {
			info.Throttled++
		}
	}
	return info
}

// DecodeKVMixInfo is the expgrid DecodeInfo hook matching InspectKVMix:
// it rehydrates a persisted KVMixInfo from its JSON form.
func DecodeKVMixInfo(raw []byte) (any, error) {
	var info KVMixInfo
	if err := json.Unmarshal(raw, &info); err != nil {
		return nil, err
	}
	return info, nil
}

// KVMixCell is one measured point of the suite, aggregated over the
// cell's tenants (they run identical specs on decorrelated seeds, so the
// aggregate is the cell's steady-state per-tenant behaviour).
type KVMixCell struct {
	Tier      string
	Engine    string
	Skew      float64
	ValueSize int64

	// Aggregate completions across all tenants.
	Ops     uint64
	Puts    uint64
	Gets    uint64
	Elapsed sim.Duration // longest tenant window
	// OpsPerSec sums every tenant's completed rate over its own window.
	OpsPerSec      float64
	Lat            stats.Summary // merged operation-latency histogram
	MaxOutstanding int           // worst tenant

	// Engine-level accounting summed across tenants.
	ReadAmp     float64 // device reads per get
	WriteAmp    float64 // device write bytes per user byte
	CacheHitPct float64 // read-path hits / (hits + misses)
	Stalls      uint64  // puts that waited on backpressure
	Flushes     uint64
	Compactions uint64

	// Shared-debt coupling.
	SharedDebt int64
	Throttled  int // tenants whose flow limiter engaged

	Cached bool // served from the sweep cache
}

// KVMixReport is the full suite's measurement.
type KVMixReport struct {
	Tenants      int
	OpsPerTenant uint64
	RatePerSec   float64
	ReadFracPct  int
	Cells        []KVMixCell
	// CachedCells counts cells served from the sweep cache instead of a
	// fresh simulation.
	CachedCells int
}

// RunKVMix executes the KV tenant-mix suite on the expgrid worker pool
// and folds the cells into a report. Results are deterministic and
// identical for any worker count. Cancel ctx to stop early.
func RunKVMix(ctx context.Context, s KVMixSweep) (*KVMixReport, error) {
	s = s.withDefaults()
	if err := s.validate(); err != nil {
		return nil, err
	}
	devices := make([]expgrid.NamedFactory, 0, len(s.Tiers))
	for _, tier := range s.Tiers {
		devices = append(devices, expgrid.NamedFactory{Name: tier})
	}
	sw := expgrid.Sweep{
		Kind:         expgrid.KVMix,
		Devices:      devices,
		KVEngines:    s.Engines,
		KVSkews:      s.Skews,
		KVValueSizes: s.ValueSizes,
		KV:           s.BuildKV,
		InspectKV:    InspectKVMix,
		Cache:        s.Cache,
		DecodeInfo:   DecodeKVMixInfo,
		Seed:         s.Seed,
	}
	// The KV hook's inputs (tenant count, per-tenant shape, memtable
	// scale) are invisible to the expgrid fingerprint, which only hashes
	// Sweep fields. Fold them into the label so two KVMixSweeps share
	// cache entries (and cell seeds) exactly when they would build
	// identical tenant sets — the same contract the neighbor suite gives
	// its Tenants hook.
	sw.Label = fmt.Sprintf("%s|t%d@%g/%dops/rf%d/%s/ks%d/mb%d", s.Label,
		s.Tenants, s.RatePerSec, s.OpsPerTenant, s.ReadFracPct,
		s.Arrival, s.KeySpace, s.MemtableBytes)
	results, err := expgrid.Runner{Workers: s.Workers, OnProgress: s.OnProgress}.Run(ctx, sw)
	if err != nil {
		return nil, err
	}
	rep := &KVMixReport{
		Tenants:      s.Tenants,
		OpsPerTenant: s.OpsPerTenant,
		RatePerSec:   s.RatePerSec,
		ReadFracPct:  s.ReadFracPct,
	}
	for _, r := range results {
		rep.Cells = append(rep.Cells, foldKVMixCell(r))
		if r.Cached {
			rep.CachedCells++
		}
	}
	return rep, nil
}

func foldKVMixCell(r expgrid.CellResult) KVMixCell {
	info := r.Info.(KVMixInfo)
	cell := KVMixCell{
		Tier:      r.DeviceName,
		Engine:    r.KVEngine,
		Skew:      r.KVSkew,
		ValueSize: r.ValueSize,

		SharedDebt: info.SharedDebt,
		Throttled:  info.Throttled,
		Cached:     r.Cached,
	}
	lat := stats.AcquireHistogram()
	defer stats.ReleaseHistogram(lat)
	var agg kv.Stats
	for _, t := range r.KV {
		cell.Ops += t.Ops
		cell.Puts += t.Puts
		cell.Gets += t.Gets
		cell.OpsPerSec += t.OpsPerSec()
		if t.Elapsed > cell.Elapsed {
			cell.Elapsed = t.Elapsed
		}
		if t.MaxOutstanding > cell.MaxOutstanding {
			cell.MaxOutstanding = t.MaxOutstanding
		}
		lat.Merge(t.Lat)
		agg.Gets += t.Stats.Gets
		agg.GetReads += t.Stats.GetReads
		agg.UserBytes += t.Stats.UserBytes
		agg.DeviceWriteBytes += t.Stats.DeviceWriteBytes
		agg.CacheHits += t.Stats.CacheHits
		agg.CacheMisses += t.Stats.CacheMisses
		cell.Stalls += t.Stats.Stalls
		cell.Flushes += t.Stats.Flushes
		cell.Compactions += t.Stats.Compactions
	}
	cell.Lat = lat.Summarize()
	cell.ReadAmp = agg.ReadAmp()
	cell.WriteAmp = agg.WriteAmp()
	if lookups := agg.CacheHits + agg.CacheMisses; lookups > 0 {
		cell.CacheHitPct = 100 * float64(agg.CacheHits) / float64(lookups)
	}
	return cell
}

// FormatKVMix writes the report as an aligned table: one row per cell
// with the aggregate op rate, operation-latency tail, and the engine's
// amplification and cache columns.
func FormatKVMix(w io.Writer, r *KVMixReport) {
	fmt.Fprintf(w, "KV tenant mix: %d tenants x %d ops @ %.0f op/s each, %d%% gets, on one shared backend per cell\n",
		r.Tenants, r.OpsPerTenant, r.RatePerSec, r.ReadFracPct)
	fmt.Fprintf(w, "%6s %10s %5s %6s %9s %9s %9s %9s %6s %6s %5s %7s %6s %8s\n",
		"tier", "engine", "skew", "val", "ops/s", "p50", "p99", "p99.9",
		"rdamp", "wramp", "hit%", "stalls", "comps", "debt")
	for _, c := range r.Cells {
		fmt.Fprintf(w, "%6s %10s %5g %6d %9.0f %9s %9s %9s %6.2f %6.2f %5.1f %7d %6d %7dM\n",
			c.Tier, c.Engine, c.Skew, c.ValueSize, c.OpsPerSec,
			fmtLat(c.Lat.P50), fmtLat(c.Lat.P99), fmtLat(c.Lat.P999),
			c.ReadAmp, c.WriteAmp, c.CacheHitPct, c.Stalls, c.Compactions,
			c.SharedDebt/1e6)
	}
}
