// neighborstudy runs the noisy-neighbor scenario suite: a steady victim
// tenant and a swept number of bursty aggressor tenants, every volume
// attached to ONE shared storage backend (cluster + fabric + background
// cleaner), the disaggregated multi-tenant shape of the paper's Fig 1.
//
// The study reads its own results back to answer the two questions the
// unwritten contract raises for a tenant who cannot see their neighbors:
//
//   - how much does my tail latency inflate when the backend gets busy
//     (fabric and placement-group contention, Obs#1/#3)?
//   - how much sooner does the provider throttle my writes because the
//     shared cleaner is drowning in someone else's debt (Obs#2)?
//
// It then demonstrates the same tenants on private backends — identical
// workloads, no sharing — as the control that isolates the interference.
package main

import (
	"context"
	"fmt"
	"os"

	"essdsim"
)

func main() {
	sweep := essdsim.NeighborSweep{
		// Defaults trimmed so the example runs in a few seconds: one
		// aggressor rate, three aggressor counts (0 = the solo control
		// the inflation columns divide by).
		AggressorCounts:      []int{0, 2, 4},
		AggressorRatesPerSec: []float64{1600},
		VictimOps:            1500,
		Seed:                 7,
	}
	rep, err := essdsim.RunNeighborScenario(context.Background(), sweep)
	if err != nil {
		panic(err)
	}
	essdsim.FormatNeighborReport(os.Stdout, rep)

	fmt.Println()
	fmt.Println("What the victim experiences as the backend fills up:")
	for _, c := range rep.Cells {
		if c.Aggressors == 0 {
			fmt.Printf("  alone:        p99.9 %8v, never throttled — the single-tenant contract\n",
				c.VictimLat.P999)
			continue
		}
		onset := "never"
		if c.ThrottleOnset >= 0 {
			onset = fmt.Sprintf("at %.2fs", c.ThrottleOnset.Seconds())
		}
		fmt.Printf("  %d neighbors:  p99.9 %8v (%.1fx), throttled %s — %.1f GB of the pooled debt is theirs\n",
			c.Aggressors, c.VictimLat.P999, c.P999Inflation, onset, float64(c.AggrDebt)/1e9)
	}

	// The control: identical tenants, private backends on one engine. No
	// shared cluster, no shared fabric, no shared cleaner — interference
	// gone, same seeds.
	eng := essdsim.NewEngine()
	var tenants []essdsim.Tenant
	for i, name := range []string{"victim", "aggr0", "aggr1"} {
		be := essdsim.NewBackend(eng, essdsim.NeighborBackendConfig(), uint64(100+i))
		vol := essdsim.AttachVolume(be, essdsim.NeighborVolumeConfig(name), uint64(200+i))
		vol.Precondition(1)
		spec := essdsim.OpenWorkload{
			Pattern: essdsim.Mixed, BlockSize: 64 << 10, WriteRatio: 0.5,
			RatePerSec: 300, Arrival: essdsim.ArrivalUniform, Count: 1500,
			Seed: uint64(300 + i),
		}
		if i > 0 { // aggressors: bursty write floods
			spec.BlockSize = 256 << 10
			spec.WriteRatio = 1
			spec.RatePerSec = 1600
			spec.Arrival = essdsim.ArrivalBursty
			spec.Count = 8000
		}
		tenants = append(tenants, essdsim.Tenant{Name: name, Dev: vol, Open: &spec})
	}
	results := essdsim.RunTenantMix(eng, tenants)
	fmt.Println()
	s := results[0].Open.Lat.Summarize()
	fmt.Printf("Control (same tenants, PRIVATE backends): victim p99.9 %v, throttled=%v\n",
		s.P999, tenants[0].Dev.(*essdsim.Volume).Throttled())
	fmt.Println("The gap between that line and the shared-backend rows above is the noisy-neighbor tax.")
}
