package workload

import (
	"fmt"

	"essdsim/internal/blockdev"
	"essdsim/internal/sim"
	"essdsim/internal/stats"
)

// Pattern is a FIO-style access pattern.
type Pattern uint8

// Supported patterns.
const (
	RandWrite Pattern = iota
	SeqWrite
	RandRead
	SeqRead
	Mixed // random offsets, WriteRatio of ops are writes
)

// String returns the fio job name of the pattern.
func (p Pattern) String() string {
	switch p {
	case RandWrite:
		return "randwrite"
	case SeqWrite:
		return "write"
	case RandRead:
		return "randread"
	case SeqRead:
		return "read"
	case Mixed:
		return "randrw"
	default:
		return fmt.Sprintf("pattern(%d)", uint8(p))
	}
}

// ParsePattern converts a fio rw= value into a Pattern.
func ParsePattern(s string) (Pattern, error) {
	switch s {
	case "randwrite":
		return RandWrite, nil
	case "write", "seqwrite":
		return SeqWrite, nil
	case "randread":
		return RandRead, nil
	case "read", "seqread":
		return SeqRead, nil
	case "randrw", "rw", "mixed":
		return Mixed, nil
	default:
		return 0, fmt.Errorf("workload: unknown pattern %q", s)
	}
}

// IsWrite reports whether the pattern issues only writes.
func (p Pattern) IsWrite() bool { return p == RandWrite || p == SeqWrite }

// Spec describes one workload run.
type Spec struct {
	Pattern    Pattern
	BlockSize  int64   // bytes per I/O
	QueueDepth int     // outstanding I/Os
	WriteRatio float64 // Mixed only: fraction of writes in [0,1]

	// Stop conditions; the first reached wins. Zero disables a condition,
	// but at least one of Duration/TotalBytes/MaxOps must be set.
	Duration   sim.Duration // simulated run time (excluding drain)
	TotalBytes int64        // bytes submitted
	MaxOps     uint64       // I/Os submitted

	// Warmup excludes completions before this much simulated time from the
	// recorded statistics (the timeline still covers the full run).
	Warmup sim.Duration

	// Region restricts I/O to the first Region bytes of the device
	// (0 = whole device).
	Region int64

	Seed uint64
}

// Validate reports a descriptive error for nonsensical specs.
func (s Spec) Validate(dev blockdev.Device) error {
	bs := int64(dev.BlockSize())
	switch {
	case s.BlockSize <= 0 || s.BlockSize%bs != 0:
		return fmt.Errorf("workload: block size %d not a multiple of device block %d", s.BlockSize, bs)
	case s.QueueDepth < 1:
		return fmt.Errorf("workload: queue depth %d < 1", s.QueueDepth)
	case s.Duration <= 0 && s.TotalBytes <= 0 && s.MaxOps == 0:
		return fmt.Errorf("workload: no stop condition set")
	case s.Pattern == Mixed && (s.WriteRatio < 0 || s.WriteRatio > 1):
		return fmt.Errorf("workload: write ratio %v out of [0,1]", s.WriteRatio)
	case s.Region < 0 || s.Region > dev.Capacity():
		return fmt.Errorf("workload: region %d out of range", s.Region)
	case s.Region > 0 && s.Region < s.BlockSize:
		return fmt.Errorf("workload: region smaller than one I/O")
	case s.Region == 0 && s.BlockSize > dev.Capacity():
		// A zero-slot region would panic the offset draw (Int64N(0)).
		return fmt.Errorf("workload: block size %d exceeds device capacity %d", s.BlockSize, dev.Capacity())
	}
	return nil
}

// Result holds the measurements of one run.
type Result struct {
	Spec    Spec
	Device  string
	Started sim.Time
	Elapsed sim.Duration // submission window (excludes drain of the tail)

	Lat      *stats.Histogram // all I/Os
	ReadLat  *stats.Histogram
	WriteLat *stats.Histogram

	Series      *stats.ThroughputSeries // completed bytes per interval
	WriteSeries *stats.ThroughputSeries

	Ops   uint64
	Bytes int64 // completed bytes (recorded window)
}

// recordedWindow returns the span over which statistics were recorded
// (the submission window minus warmup).
func (r *Result) recordedWindow() float64 {
	return (r.Elapsed - r.Spec.Warmup).Seconds()
}

// Throughput returns mean completed bytes/s over the recorded window.
func (r *Result) Throughput() float64 {
	secs := r.recordedWindow()
	if secs <= 0 {
		return 0
	}
	return float64(r.Bytes) / secs
}

// IOPS returns mean completed I/Os per second over the recorded window.
func (r *Result) IOPS() float64 {
	secs := r.recordedWindow()
	if secs <= 0 {
		return 0
	}
	return float64(r.Ops) / secs
}

// Run executes the workload on the device, driving the device's engine
// until every outstanding I/O drains. It panics on an invalid spec (harness
// programming error).
func Run(dev blockdev.Device, spec Spec) *Result {
	finish := start(dev, spec)
	dev.Engine().Run()
	return finish()
}

// start validates the spec (panicking on harness programming errors),
// seeds the generator, and submits the initial queue-depth window; further
// submissions are driven by completions. It returns a finalizer that
// closes the measurement once the caller has drained the engine. Splitting
// the two phases is what lets RunTenants start several generators on one
// shared engine before a single engine run drains them all.
func start(dev blockdev.Device, spec Spec) func() *Result {
	if err := spec.Validate(dev); err != nil {
		panic(err)
	}
	eng := dev.Engine()
	rng := sim.NewRNG(spec.Seed^0x9a2c, spec.Seed+0x7b)
	res := &Result{
		Spec:        spec,
		Device:      dev.Name(),
		Started:     eng.Now(),
		Lat:         stats.NewHistogram(),
		ReadLat:     stats.NewHistogram(),
		WriteLat:    stats.NewHistogram(),
		Series:      stats.NewThroughputSeries(sim.Second),
		WriteSeries: stats.NewThroughputSeries(sim.Second),
	}
	region := spec.Region
	if region == 0 {
		region = dev.Capacity()
	}
	slots := region / spec.BlockSize
	began := eng.Now()
	lastDone := began
	var submittedBytes int64
	var submittedOps uint64
	var seqOff int64
	stopped := false

	shouldStop := func() bool {
		if stopped {
			return true
		}
		switch {
		case spec.Duration > 0 && eng.Now().Sub(began) >= spec.Duration:
			stopped = true
		case spec.TotalBytes > 0 && submittedBytes >= spec.TotalBytes:
			stopped = true
		case spec.MaxOps > 0 && submittedOps >= spec.MaxOps:
			stopped = true
		}
		return stopped
	}

	nextOp := func() (blockdev.Op, int64) {
		var op blockdev.Op
		seq := false
		switch spec.Pattern {
		case RandWrite:
			op = blockdev.Write
		case SeqWrite:
			op, seq = blockdev.Write, true
		case RandRead:
			op = blockdev.Read
		case SeqRead:
			op, seq = blockdev.Read, true
		case Mixed:
			if rng.Float64() < spec.WriteRatio {
				op = blockdev.Write
			} else {
				op = blockdev.Read
			}
		}
		var off int64
		if seq {
			off = seqOff
			seqOff += spec.BlockSize
			if seqOff+spec.BlockSize > region {
				seqOff = 0
			}
		} else {
			off = rng.Int64N(slots) * spec.BlockSize
		}
		return op, off
	}

	var submit func()
	onComplete := func(r *blockdev.Request, at sim.Time) {
		lastDone = at
		lat := r.Latency(at)
		rel := at.Sub(res.Started)
		if rel >= spec.Warmup {
			res.Lat.Record(lat)
			if r.Op == blockdev.Read {
				res.ReadLat.Record(lat)
			} else {
				res.WriteLat.Record(lat)
			}
			res.Ops++
			res.Bytes += r.Size
		}
		res.Series.Add(sim.Time(rel), r.Size)
		if r.Op == blockdev.Write {
			res.WriteSeries.Add(sim.Time(rel), r.Size)
		}
		submit()
	}
	submit = func() {
		if shouldStop() {
			return
		}
		op, off := nextOp()
		submittedBytes += spec.BlockSize
		submittedOps++
		dev.Submit(&blockdev.Request{
			Op:         op,
			Offset:     off,
			Size:       spec.BlockSize,
			OnComplete: onComplete,
		})
	}
	for i := 0; i < spec.QueueDepth && !shouldStop(); i++ {
		submit()
	}
	// For duration-bounded runs the stop condition is only observed at
	// completions (it will panic via validation rather than hang in
	// practice). The finalizer measures to the workload's own last
	// completion, not the engine clock: on a shared engine another
	// tenant's generator may keep the clock running long after this one
	// drained.
	return func() *Result {
		res.Elapsed = lastDone.Sub(began)
		if spec.Duration > 0 && res.Elapsed > spec.Duration {
			// Exclude the drain tail from the mean-throughput window: the
			// submission window closed at spec.Duration.
			res.Elapsed = spec.Duration
		}
		return res
	}
}
