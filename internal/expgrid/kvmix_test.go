package expgrid

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"essdsim/internal/essd"
	"essdsim/internal/profiles"
	"essdsim/internal/sim"
	"essdsim/kv"
)

// kvHook builds a tiny two-tenant shared-backend KV mix from the cell
// coordinates: each tenant an engine of the cell's design on its own
// volume, driven by a short zipfian read/write stream.
func kvHook(c Cell) (*sim.Engine, []kv.MixTenant) {
	eng := sim.AcquireEngine()
	rng := sim.NewRNG(c.Seed, c.Seed^0x91)
	bcfg, vcfg := profiles.ESSD1Config().Split()
	be := essd.NewBackend(eng, bcfg, rng.Derive("backend"))
	var tenants []kv.MixTenant
	for i := 0; i < 2; i++ {
		cfg := vcfg
		cfg.Name = "kv"
		vol := be.Attach(cfg, rng)
		vol.Precondition(1)
		var e kv.Engine
		if c.KVEngine == "lsm" {
			lcfg := kv.DefaultLSMConfig()
			lcfg.MemtableBytes = 64 << 10
			lcfg.L0CompactTrigger = 2
			e = kv.NewLSM(vol, lcfg)
		} else {
			e = kv.NewPageStore(vol, kv.DefaultPageStoreConfig(vol))
		}
		tenants = append(tenants, kv.MixTenant{Name: cfg.Name, Engine: e, Spec: kv.MixSpec{
			Ops: 150, ValueSize: c.ValueSize, ReadFrac: 0.5, RatePerSec: 10000,
			KeySpace: 1 << 10, ZipfTheta: c.KVSkew, Seed: c.Seed ^ uint64(i),
		}})
	}
	return eng, tenants
}

func kvSweep() Sweep {
	return Sweep{
		Kind:         KVMix,
		Devices:      []NamedFactory{{Name: "essd1"}},
		KVEngines:    []string{"lsm", "pagestore"},
		KVSkews:      []float64{0, 0.99},
		KVValueSizes: []int64{1024},
		KV:           kvHook,
		Seed:         5,
		Label:        "kv-test",
	}
}

// TestKVMixEnumeration checks the KV grid's shape, order, and seed
// coordinates.
func TestKVMixEnumeration(t *testing.T) {
	cells := kvSweep().Cells()
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(cells))
	}
	for i, c := range cells {
		if c.Index != i {
			t.Fatalf("cell %d has index %d", i, c.Index)
		}
		want := KVCellSeed(5, "kv-test", "essd1", c.KVEngine, c.KVSkew, c.ValueSize)
		if c.Seed != want {
			t.Fatalf("cell %d seed not coordinate-derived", i)
		}
		if c.ValueSize != 1024 {
			t.Fatalf("cell %d value size %d", i, c.ValueSize)
		}
	}
	if cells[0].KVEngine != "lsm" || cells[2].KVEngine != "pagestore" {
		t.Fatal("engine axis not outer of skews")
	}
	if cells[0].KVSkew != 0 || cells[1].KVSkew != 0.99 {
		t.Fatal("skew axis not inner")
	}
}

// TestKVCellSeedDecorrelated checks each coordinate contributes to the
// cell seed and that seeds are stable across calls.
func TestKVCellSeedDecorrelated(t *testing.T) {
	base := KVCellSeed(5, "l", "essd1", "lsm", 0.5, 1024)
	if base != KVCellSeed(5, "l", "essd1", "lsm", 0.5, 1024) {
		t.Fatal("seed not stable")
	}
	variants := []uint64{
		KVCellSeed(6, "l", "essd1", "lsm", 0.5, 1024),
		KVCellSeed(5, "m", "essd1", "lsm", 0.5, 1024),
		KVCellSeed(5, "l", "essd2", "lsm", 0.5, 1024),
		KVCellSeed(5, "l", "essd1", "pagestore", 0.5, 1024),
		KVCellSeed(5, "l", "essd1", "lsm", 0.99, 1024),
		KVCellSeed(5, "l", "essd1", "lsm", 0.5, 4096),
	}
	seen := map[uint64]bool{base: true}
	for i, v := range variants {
		if seen[v] {
			t.Errorf("variant %d collides", i)
		}
		seen[v] = true
	}
}

// TestKVMixParallelDeterminism checks KV cells are byte-identical at any
// worker count and return per-tenant results in tenant order.
func TestKVMixParallelDeterminism(t *testing.T) {
	r1, err := Runner{Workers: 1}.Run(context.Background(), kvSweep())
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Runner{Workers: 8}.Run(context.Background(), kvSweep())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r8) {
		t.Fatal("kv sweep differs between 1 and 8 workers")
	}
	for _, r := range r1 {
		if r.Err != nil {
			t.Fatalf("cell %d: %v", r.Index, r.Err)
		}
		if len(r.KV) != 2 {
			t.Fatalf("cell %d has %d tenant results, want 2", r.Index, len(r.KV))
		}
		if r.KV[0].Ops != 150 || r.KV[1].Ops != 150 {
			t.Fatalf("cell %d tenants acked %d/%d ops", r.Index, r.KV[0].Ops, r.KV[1].Ops)
		}
		if r.KV[0].Engine != r.KVEngine {
			t.Fatalf("cell %d result engine %q, cell coordinate %q", r.Index, r.KV[0].Engine, r.KVEngine)
		}
		if r.Res != nil || r.Open != nil || r.Replay != nil || r.Mix != nil {
			t.Fatalf("cell %d carries non-kv measurements", r.Index)
		}
	}
}

// TestKVMixValidation checks the KV-kind validation rules.
func TestKVMixValidation(t *testing.T) {
	ok := kvSweep()
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid kv sweep rejected: %v", err)
	}
	for name, mutate := range map[string]func(*Sweep){
		"no hook":        func(s *Sweep) { s.KV = nil },
		"no engines":     func(s *Sweep) { s.KVEngines = nil },
		"empty engine":   func(s *Sweep) { s.KVEngines = []string{""} },
		"no skews":       func(s *Sweep) { s.KVSkews = nil },
		"skew too big":   func(s *Sweep) { s.KVSkews = []float64{1} },
		"skew negative":  func(s *Sweep) { s.KVSkews = []float64{-0.1} },
		"no value sizes": func(s *Sweep) { s.KVValueSizes = nil },
		"bad value size": func(s *Sweep) { s.KVValueSizes = []int64{0} },
	} {
		s := kvSweep()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: kv sweep accepted", name)
		}
	}
}

// TestKVMixCacheRoundTrip checks KV results survive the persistent cache:
// a warm re-run skips every cell, and a save/load cycle reproduces the
// measurements from disk.
func TestKVMixCacheRoundTrip(t *testing.T) {
	cache := NewCache(0)
	sw := kvSweep()
	sw.Cache = cache
	cold, err := Runner{Workers: 2}.Run(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Runner{Workers: 2}.Run(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	for i := range warm {
		if !warm[i].Cached {
			t.Fatalf("cell %d not served from cache", i)
		}
		warm[i].Cached = false
		if !reflect.DeepEqual(cold[i], warm[i]) {
			t.Fatalf("cell %d cached result differs", i)
		}
	}
	var buf bytes.Buffer
	if err := cache.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded := NewCache(0)
	if err := loaded.Load(&buf); err != nil {
		t.Fatal(err)
	}
	sw.Cache = loaded
	disk, err := Runner{Workers: 2}.Run(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	for i := range disk {
		if !disk[i].Cached {
			t.Fatalf("cell %d not served from loaded cache", i)
		}
		disk[i].Cached = false
		if !reflect.DeepEqual(cold[i], disk[i]) {
			t.Fatalf("cell %d disk-cached result differs", i)
		}
	}
}
