package expgrid

import (
	"fmt"

	"essdsim/internal/blockdev"
	"essdsim/internal/sim"
	"essdsim/internal/workload"
)

// Factory constructs a fresh device (with its own engine) for one
// experiment cell. seed decorrelates repeated constructions.
type Factory func(seed uint64) blockdev.Device

// NamedFactory is one value of a sweep's device axis. The name feeds the
// cell seed derivation, so it should be stable across runs (a profile name
// like "essd1", not a pointer-ish string).
type NamedFactory struct {
	Name string
	New  Factory
}

// Devices is a convenience constructor for a single-device axis.
func Devices(name string, f Factory) []NamedFactory {
	return []NamedFactory{{Name: name, New: f}}
}

// Precond selects how a cell's device is prepared before measurement.
type Precond uint8

// Preconditioning modes.
const (
	// PrecondAuto half-fills the device for pure-write patterns (a GC-free
	// window) and fully fills it otherwise (so reads hit data).
	PrecondAuto Precond = iota
	// PrecondWrites always uses the write-cell preparation (half fill).
	PrecondWrites
	// PrecondFull always fully, sequentially fills the device.
	PrecondFull
	// PrecondNone runs on the pristine device (e.g. sustained-write
	// experiments that measure the fill itself).
	PrecondNone
)

// Precondition prepares a device for a measurement cell. Write cells get a
// half-filled device (a GC-free window, as on a freshly provisioned or
// trimmed drive); read cells get a fully, sequentially written device (the
// layout after a fio fill pass).
func Precondition(dev blockdev.Device, forWrites bool) {
	switch d := dev.(type) {
	case interface{ Precondition(float64) }:
		d.Precondition(1.0)
	case interface{ Precondition(float64, bool) }:
		if forWrites {
			d.Precondition(0.5, false)
		} else {
			d.Precondition(1.0, false)
		}
	}
}

// Sweep declares an experiment grid: the cross product of its axes, plus
// the per-cell workload shape shared by every cell.
type Sweep struct {
	// Axes. Devices, Patterns, BlockSizes, and QueueDepths must be
	// non-empty. WriteRatiosPct is optional and multiplies only Mixed
	// cells; cells of every other pattern carry a write-ratio coordinate
	// of -1 (so adding a ratio axis never re-seeds or duplicates them).
	Devices        []NamedFactory
	Patterns       []workload.Pattern
	BlockSizes     []int64
	QueueDepths    []int
	WriteRatiosPct []int

	// CellDuration bounds each cell's measurement window (default 500 ms);
	// Warmup is excluded from statistics (default 50 ms; negative values
	// mean no warmup at all). When CapMultiple is > 0 the cell instead
	// stops after CapMultiple × device capacity bytes, with no warmup —
	// the sustained-write shape.
	CellDuration sim.Duration
	Warmup       sim.Duration
	CapMultiple  float64

	Precondition Precond

	// Inspect, when non-nil, runs on the worker after the cell's workload
	// completes, while the measured device is still alive; its return
	// value is stored in CellResult.Info. Use it to capture post-run
	// device state (throttle flags, write amplification, GC counters)
	// that the workload Result alone cannot show. It must not touch
	// anything shared between cells.
	Inspect func(dev blockdev.Device, c Cell) any

	// Seed is the root seed; Label further decorrelates sweeps that share
	// a root seed and coordinates (e.g. two experiments on one CLI seed).
	// Both feed CellSeed.
	Seed  uint64
	Label string
}

func (s Sweep) withDefaults() Sweep {
	if s.CellDuration <= 0 {
		s.CellDuration = 500 * sim.Millisecond
	}
	if s.Warmup == 0 {
		s.Warmup = 50 * sim.Millisecond
	} else if s.Warmup < 0 {
		s.Warmup = 0
	}
	return s
}

// Validate reports a descriptive error for empty axes.
func (s Sweep) Validate() error {
	switch {
	case len(s.Devices) == 0:
		return fmt.Errorf("expgrid: sweep has no device axis")
	case len(s.Patterns) == 0:
		return fmt.Errorf("expgrid: sweep has no pattern axis")
	case len(s.BlockSizes) == 0:
		return fmt.Errorf("expgrid: sweep has no block-size axis")
	case len(s.QueueDepths) == 0:
		return fmt.Errorf("expgrid: sweep has no queue-depth axis")
	}
	for _, d := range s.Devices {
		if d.New == nil {
			return fmt.Errorf("expgrid: device %q has a nil factory", d.Name)
		}
	}
	return nil
}

// Cell is one point of the grid: its coordinates, its position in the
// deterministic enumeration order, and its derived seed.
type Cell struct {
	Index       int    // position in enumeration order
	DeviceIndex int    // index into Sweep.Devices
	DeviceName  string // Sweep.Devices[DeviceIndex].Name

	Pattern       workload.Pattern
	BlockSize     int64
	QueueDepth    int
	WriteRatioPct int // -1 when the sweep has no write-ratio axis

	Seed uint64 // derived via CellSeed, independent of Index
}

// CellResult pairs a cell with its measurement. Err is set when the cell
// failed (e.g. an invalid workload spec); Res is nil in that case.
type CellResult struct {
	Cell
	Device string // constructed device's display name
	Res    *workload.Result
	Info   any // Sweep.Inspect's capture of post-run device state, or nil
	Err    error
}

// Cells enumerates the grid in deterministic row-major order: devices,
// patterns, block sizes, queue depths, write ratios. The write-ratio axis
// multiplies only Mixed cells; other patterns get the single sentinel
// coordinate -1, so their count and seeds are unaffected by the axis.
func (s Sweep) Cells() []Cell {
	mixedRatios := s.WriteRatiosPct
	if len(mixedRatios) == 0 {
		mixedRatios = []int{-1}
	}
	cells := make([]Cell, 0, len(s.Devices)*len(s.Patterns)*len(s.BlockSizes)*len(s.QueueDepths)*len(mixedRatios))
	for di, d := range s.Devices {
		for _, p := range s.Patterns {
			ratios := mixedRatios
			if p != workload.Mixed {
				ratios = []int{-1}
			}
			for _, bs := range s.BlockSizes {
				for _, qd := range s.QueueDepths {
					for _, wr := range ratios {
						cells = append(cells, Cell{
							Index:         len(cells),
							DeviceIndex:   di,
							DeviceName:    d.Name,
							Pattern:       p,
							BlockSize:     bs,
							QueueDepth:    qd,
							WriteRatioPct: wr,
							Seed:          s.cellSeed(d.Name, p, bs, qd, wr),
						})
					}
				}
			}
		}
	}
	return cells
}

func (s Sweep) cellSeed(device string, p workload.Pattern, bs int64, qd, ratioPct int) uint64 {
	return CellSeed(s.Seed, s.Label, device, p, bs, qd, ratioPct)
}

// CellSeed derives a cell's RNG seed as a pure hash of the root seed, the
// sweep label, and the cell coordinates. It is deliberately independent of
// the cell's enumeration index: subsetting or reordering axes never
// changes the seed (and hence the measurement) of a surviving cell.
func CellSeed(root uint64, label, device string, p workload.Pattern, bs int64, qd, ratioPct int) uint64 {
	// FNV-1a over the coordinate words, then a splitmix64 finalizer so
	// adjacent coordinates land far apart in seed space.
	const (
		offset = 0xcbf29ce484222325
		prime  = 0x100000001b3
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h = (h ^ (v & 0xff)) * prime
			v >>= 8
		}
	}
	str := func(s string) {
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * prime
		}
		h = (h ^ 0xff) * prime // terminator so "ab","c" != "a","bc"
	}
	mix(root)
	str(label)
	str(device)
	mix(uint64(p) + 1)
	mix(uint64(bs))
	mix(uint64(qd))
	mix(uint64(int64(ratioPct) + 2))
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// run executes one cell: fresh device, precondition, one workload. Panics
// from invalid specs (or device bugs) are captured into CellResult.Err so
// one bad cell fails the sweep cleanly instead of killing the worker pool.
func (s Sweep) run(c Cell) (out CellResult) {
	out = CellResult{Cell: c}
	defer func() {
		if p := recover(); p != nil {
			out.Err = fmt.Errorf("expgrid: cell %d (%s %s bs=%d qd=%d): %v",
				c.Index, c.DeviceName, c.Pattern, c.BlockSize, c.QueueDepth, p)
			out.Res = nil
		}
	}()
	dev := s.Devices[c.DeviceIndex].New(c.Seed)
	out.Device = dev.Name()
	switch s.Precondition {
	case PrecondAuto:
		Precondition(dev, c.Pattern.IsWrite())
	case PrecondWrites:
		Precondition(dev, true)
	case PrecondFull:
		Precondition(dev, false)
	}
	spec := workload.Spec{
		Pattern:    c.Pattern,
		BlockSize:  c.BlockSize,
		QueueDepth: c.QueueDepth,
		Duration:   s.CellDuration,
		Warmup:     s.Warmup,
		Seed:       c.Seed,
	}
	if c.WriteRatioPct >= 0 {
		spec.WriteRatio = float64(c.WriteRatioPct) / 100
	}
	if s.CapMultiple > 0 {
		spec.TotalBytes = int64(s.CapMultiple * float64(dev.Capacity()))
		spec.Duration = 0
		spec.Warmup = 0
	}
	out.Res = workload.Run(dev, spec)
	if s.Inspect != nil {
		out.Info = s.Inspect(dev, c)
	}
	return out
}
