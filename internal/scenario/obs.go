package scenario

// Observability wiring for the neighbor suite: per-cell capture
// instrumentation and the cliff-attribution bridge from measured cells to
// obs.Explain.

import (
	"fmt"

	"essdsim/internal/essd"
	"essdsim/internal/expgrid"
	"essdsim/internal/obs"
	"essdsim/internal/sim"
	"essdsim/internal/workload"
)

// neighborCellLabel names a cell's capture after its grid coordinates, so
// trace and probe rows are self-identifying across a sweep.
func neighborCellLabel(c expgrid.Cell) string {
	return fmt.Sprintf("a%d-r%g-w%d", c.Aggressors, c.RatePerSec, c.WriteRatioPct)
}

// instrumentTenants attaches one observability capture to a freshly built
// cell: a tracer on every elastic volume and, when cfg.ProbeInterval is
// positive, a prober over the shared backend's state gauges. It must run
// before the first request is issued — tracer sampling counts requests per
// volume from zero, and the prober's first sample lands at t=interval.
func instrumentTenants(eng *sim.Engine, tenants []workload.Tenant, label string, cfg obs.Config) *obs.Capture {
	cap := &obs.Capture{
		Label:  label,
		Tracer: obs.NewTracer(cfg.SampleEvery),
	}
	var be *essd.Backend
	for _, t := range tenants {
		if dev, ok := t.Dev.(*essd.ESSD); ok {
			dev.SetTracer(cap.Tracer)
			if be == nil {
				be = dev.Backend()
			}
		}
	}
	if cfg.ProbeInterval > 0 {
		cap.Prober = obs.NewProber(cfg.ProbeInterval)
		if be != nil {
			be.InstallProbes(cap.Prober)
		}
		cap.Prober.Attach(eng)
	}
	return cap
}

// neighborExplain builds one cell's attribution input from its capture and
// measured result: the victim's windowed tail timeline, the throttle onset
// InspectNeighbors recorded, the pooled-debt threshold the limiter engages
// at, and the probe series naming conventions of essd/cluster probes.
func neighborExplain(cap *obs.Capture, r expgrid.CellResult, debtThreshold float64) *obs.Explanation {
	in := obs.ExplainInput{
		Cell:              cap.Label,
		Victim:            "victim",
		ThrottleOnset:     -1,
		CreditExhaustedAt: -1,
		DebtThreshold:     debtThreshold,
		Probes:            cap.Prober,
		PooledDebtSeries:  "cluster/debt_bytes",
		VictimBytesSeries: "victim/net-up-bytes",
	}
	if info, ok := r.Info.(NeighborInfo); ok && info.Throttled {
		in.ThrottleOnset = info.ThrottledAt
	}
	for i := 0; i < r.Aggressors; i++ {
		in.AggrBytesSeries = append(in.AggrBytesSeries,
			fmt.Sprintf("aggr%d/net-up-bytes", i))
	}
	if ls := r.Mix[0].Open.LatSeries; ls != nil {
		iv := ls.Interval()
		for i := 0; i < ls.Len(); i++ {
			if ls.Count(i) == 0 {
				continue
			}
			in.Tail = append(in.Tail, obs.TailPoint{
				T:   sim.Time(int64(i) * int64(iv)),
				Lat: ls.Mean(i),
			})
		}
	}
	return obs.Explain(in)
}
