package ssd

import (
	"testing"

	"essdsim/internal/blockdev"
	"essdsim/internal/sim"
)

// newSmall builds a 256 MiB SSD for fast tests.
func newSmall(t *testing.T) (*sim.Engine, *SSD) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := DefaultConfig(256 << 20)
	return eng, New(eng, cfg, sim.NewRNG(42, 42))
}

// do submits a request and returns its completion latency after running the
// engine to idle.
func do(eng *sim.Engine, d blockdev.Device, op blockdev.Op, off, size int64) sim.Duration {
	var lat sim.Duration = -1
	d.Submit(&blockdev.Request{
		Op: op, Offset: off, Size: size,
		OnComplete: func(r *blockdev.Request, at sim.Time) { lat = r.Latency(at) },
	})
	eng.Run()
	return lat
}

func TestDeviceInterface(t *testing.T) {
	_, s := newSmall(t)
	if s.Capacity() != 256<<20 {
		t.Fatalf("capacity = %d", s.Capacity())
	}
	if s.BlockSize() != 4096 {
		t.Fatalf("block size = %d", s.BlockSize())
	}
	if s.Name() == "" {
		t.Fatal("empty name")
	}
	if s.Engine() == nil {
		t.Fatal("nil engine")
	}
}

func TestSmallWriteIsBufferFast(t *testing.T) {
	eng, s := newSmall(t)
	lat := do(eng, s, blockdev.Write, 0, 4096)
	// Buffered ack: firmware + host DMA, should be ~5-20 µs, far below the
	// flash program time (~190 µs).
	if lat <= 0 || lat > 50*sim.Microsecond {
		t.Fatalf("4K write latency = %v, want ~10µs", lat)
	}
}

func TestLargeWriteLatencyScalesWithTransfer(t *testing.T) {
	eng, s := newSmall(t)
	small := do(eng, s, blockdev.Write, 0, 4096)
	large := do(eng, s, blockdev.Write, 1<<20, 256<<10)
	// 256 KiB over 3.5 GB/s ≈ 73 µs of DMA.
	if large < small+50*sim.Microsecond {
		t.Fatalf("256K write %v not dominated by transfer (4K: %v)", large, small)
	}
	if large > 300*sim.Microsecond {
		t.Fatalf("256K write too slow: %v", large)
	}
}

func TestRandomReadPaysFlashLatency(t *testing.T) {
	eng, s := newSmall(t)
	s.Precondition(1.0, true)
	lat := do(eng, s, blockdev.Read, 4096*12345, 4096)
	// tR 40µs + transfer: expect ~50-80 µs.
	if lat < 40*sim.Microsecond || lat > 120*sim.Microsecond {
		t.Fatalf("4K random read latency = %v, want ~60µs", lat)
	}
}

func TestSequentialReadsHitPrefetch(t *testing.T) {
	eng, s := newSmall(t)
	s.Precondition(1.0, false)
	// Issue a sequential run; after the detector warms up, reads become
	// cache hits at ~DMA latency.
	var last sim.Duration
	for i := int64(0); i < 64; i++ {
		last = do(eng, s, blockdev.Read, i*4096, 4096)
	}
	if last > 30*sim.Microsecond {
		t.Fatalf("steady sequential read latency = %v, want cache-hit speed", last)
	}
	c := s.Counters()
	if c.CacheHits == 0 || c.Prefetches == 0 {
		t.Fatalf("prefetcher inactive: %+v", c)
	}
}

func TestReadUnwrittenIsFast(t *testing.T) {
	eng, s := newSmall(t)
	lat := do(eng, s, blockdev.Read, 0, 4096)
	if lat > 30*sim.Microsecond {
		t.Fatalf("unmapped read latency = %v", lat)
	}
}

func TestWriteInvalidatesReadCache(t *testing.T) {
	eng, s := newSmall(t)
	s.Precondition(1.0, false)
	for i := int64(0); i < 16; i++ {
		do(eng, s, blockdev.Read, i*4096, 4096) // warm the prefetcher
	}
	hitsBefore := s.Counters().CacheHits
	if hitsBefore == 0 {
		t.Fatal("prefetch cache never warmed")
	}
	// Overwrite a prefetched LPN; rereading it must not be served stale
	// from cache bookkeeping (we only check it is dropped, i.e. it becomes
	// a buffer hit through the FTL instead).
	do(eng, s, blockdev.Write, 20*4096, 4096)
	if _, ok := s.cache[20]; ok {
		t.Fatal("written LPN still in read cache")
	}
}

func TestTrimCompletes(t *testing.T) {
	eng, s := newSmall(t)
	do(eng, s, blockdev.Write, 0, 32<<10)
	lat := do(eng, s, blockdev.Trim, 0, 32<<10)
	if lat < 0 {
		t.Fatal("trim never completed")
	}
	if s.Counters().Trims != 1 {
		t.Fatal("trim counter")
	}
}

func TestFlushCompletes(t *testing.T) {
	eng, s := newSmall(t)
	do(eng, s, blockdev.Write, 0, 4096)
	lat := do(eng, s, blockdev.Flush, 0, 0)
	if lat < 0 {
		t.Fatal("flush never completed")
	}
}

func TestSustainedWriteThroughputNearProgramBandwidth(t *testing.T) {
	eng, s := newSmall(t)
	// Pump 128 MiB of sequential 128 KiB writes at QD 8 and measure.
	const ioSize = 128 << 10
	const total = 128 << 20
	var completed int64
	var offset int64
	var submit func()
	inflight := 0
	submit = func() {
		for inflight < 8 && offset < total {
			inflight++
			off := offset
			offset += ioSize
			s.Submit(&blockdev.Request{
				Op: blockdev.Write, Offset: off % s.Capacity(), Size: ioSize,
				OnComplete: func(r *blockdev.Request, at sim.Time) {
					completed += ioSize
					inflight--
					submit()
				},
			})
		}
	}
	submit()
	eng.Run()
	if completed != total {
		t.Fatalf("completed %d of %d", completed, total)
	}
	secs := sim.Duration(eng.Now()).Seconds()
	gbps := float64(completed) / secs / 1e9
	// Die-limited program bandwidth is ≈2.76 GB/s.
	if gbps < 2.0 || gbps > 3.6 {
		t.Fatalf("sustained write throughput = %.2f GB/s, want ≈2.7", gbps)
	}
}

func TestSustainedReadThroughputNearHostLink(t *testing.T) {
	eng, s := newSmall(t)
	s.Precondition(1.0, false)
	const ioSize = 128 << 10
	const total = 128 << 20
	var completed, offset int64
	inflight := 0
	var submit func()
	submit = func() {
		for inflight < 16 && offset < total {
			inflight++
			off := offset % s.Capacity()
			offset += ioSize
			s.Submit(&blockdev.Request{
				Op: blockdev.Read, Offset: off, Size: ioSize,
				OnComplete: func(r *blockdev.Request, at sim.Time) {
					completed += ioSize
					inflight--
					submit()
				},
			})
		}
	}
	submit()
	eng.Run()
	secs := sim.Duration(eng.Now()).Seconds()
	gbps := float64(completed) / secs / 1e9
	// Sequential reads should approach the 3.5 GB/s host link.
	if gbps < 2.8 || gbps > 3.8 {
		t.Fatalf("sequential read throughput = %.2f GB/s, want ≈3.5", gbps)
	}
}

func TestMisalignedRequestPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("misaligned request accepted")
		}
	}()
	eng, s := newSmall(t)
	_ = eng
	s.Submit(&blockdev.Request{Op: blockdev.Read, Offset: 123, Size: 4096})
}

func TestOutOfRangeRequestPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range request accepted")
		}
	}()
	eng, s := newSmall(t)
	_ = eng
	s.Submit(&blockdev.Request{Op: blockdev.Read, Offset: s.Capacity(), Size: 4096})
}

func TestCounters(t *testing.T) {
	eng, s := newSmall(t)
	do(eng, s, blockdev.Write, 0, 8192)
	do(eng, s, blockdev.Read, 0, 4096)
	c := s.Counters()
	if c.Writes != 1 || c.WriteBytes != 8192 {
		t.Fatalf("write counters: %+v", c)
	}
	if c.Reads != 1 || c.ReadBytes != 4096 {
		t.Fatalf("read counters: %+v", c)
	}
}
