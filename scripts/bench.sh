#!/bin/sh
# Repeatable perf-trajectory bench run: executes the simulator-throughput
# benchmarks and writes BENCH_PR10.json (ns/op, cells/sec, allocs/op, and
# every custom metric per benchmark) via cmd/benchreport.
#
# Usage:
#   scripts/bench.sh                 # write BENCH_PR10.json
#   BENCH_GATE=1 scripts/bench.sh    # also gate FleetPack cells/sec and the
#                                    # KV ingest hot path against
#                                    # BENCH_BASELINE.json (fail on >20% drop)
#
# The benchmark selection is the perf-critical core: the fleet/neighbor
# sweep throughput the PR 6 optimization targets, the per-policy QoS
# isolation cost and signal added in PR 7, the churn control plane's
# epoch throughput added in PR 8, the allocation-free KV hot path and the
# KV tenant-mix suite added in PR 9, the observability-plane overhead
# (tracing off vs on, probe sampling) added in PR 10, the raw engine and
# device-op costs underneath them, the cache-overhead proof, and the
# two-fidelity screen. BENCHTIME defaults to 5x — enough to average the
# shared-VM noise without taking minutes.
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-5x}"
OUT="${BENCH_OUT:-BENCH_PR10.json}"
PATTERN='^(BenchmarkFleetPack|BenchmarkChurnEpochs|BenchmarkNeighborSweep|BenchmarkNeighborIsolation|BenchmarkFleetScreen|BenchmarkSweepCacheOverhead|BenchmarkEngineThroughput|BenchmarkDeviceIO|BenchmarkKVIngest|BenchmarkKVMix|BenchmarkTraceOverhead|BenchmarkProbeSampling)$'

GATE_ARGS=""
if [ "${BENCH_GATE:-0}" = "1" ]; then
    GATE_ARGS="-baseline BENCH_BASELINE.json -gate FleetPack:cells/sec:0.20 -gate KVIngest/lsm:puts/sec:0.20 -gate KVMix:ops/sec:0.20"
fi

# shellcheck disable=SC2086 # GATE_ARGS is deliberately word-split
go test -bench "$PATTERN" -benchtime "$BENCHTIME" -run '^$' . \
    | go run ./cmd/benchreport -o "$OUT" $GATE_ARGS
echo "wrote $OUT"
