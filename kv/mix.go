package kv

import (
	"fmt"
	"math"

	"essdsim/internal/sim"
	"essdsim/internal/stats"
	"essdsim/internal/workload"
)

// MixSpec describes one tenant's open-loop key-value traffic: point reads
// and writes issued on an arrival schedule regardless of completions, with
// zipfian-skewed keys. It is the KV analogue of workload.OpenSpec — the
// regime where a storage engine's background work (flushes, compactions,
// read-before-write misses) competes with foreground latency.
type MixSpec struct {
	// Ops is the total number of operations to issue.
	Ops uint64
	// ValueSize is the value size of every put.
	ValueSize int64
	// ReadFrac is the fraction of operations that are Gets (0 = pure
	// ingest, 1 = pure lookup).
	ReadFrac float64
	// RatePerSec is the offered operation rate.
	RatePerSec float64
	// Arrival selects the arrival process (workload.Uniform, Poisson,
	// Bursty).
	Arrival workload.Arrival
	// KeySpace is the number of distinct keys (default 1<<20).
	KeySpace uint64
	// ZipfTheta is the key skew in [0, 1): 0 draws uniform keys, 0.99 is
	// YCSB's default "hot" skew.
	ZipfTheta float64
	// Seed fixes the tenant's key, op, and arrival draws.
	Seed uint64
}

// Validate reports a descriptive error for nonsensical specs.
func (s MixSpec) Validate() error {
	switch {
	case s.Ops == 0:
		return fmt.Errorf("kv: mix ops must be positive")
	case s.ValueSize <= 0:
		return fmt.Errorf("kv: mix value size %d not positive", s.ValueSize)
	case s.ReadFrac < 0 || s.ReadFrac > 1:
		return fmt.Errorf("kv: mix read fraction %v out of [0, 1]", s.ReadFrac)
	case s.RatePerSec <= 0:
		return fmt.Errorf("kv: mix rate must be positive")
	case s.ZipfTheta < 0 || s.ZipfTheta >= 1:
		return fmt.Errorf("kv: mix zipf theta %v outside [0, 1)", s.ZipfTheta)
	}
	return nil
}

// MixTenant pairs one engine with the traffic that drives it inside a
// multi-tenant KV run. Every tenant's engine must run on devices of the
// same simulation engine — attach their volumes to one shared
// essd.Backend (or build private backends on one engine for a
// no-interference control).
type MixTenant struct {
	// Name labels the tenant in results ("kv0", "kv1", ...).
	Name string
	// Engine is the tenant's storage engine (LSM or PageStore).
	Engine Engine
	Spec   MixSpec
}

// MixResult holds one tenant's measurements from a RunMix call. It is
// JSON-round-trippable so cached sweep cells survive persistence.
type MixResult struct {
	Name   string `json:"name"`
	Engine string `json:"engine"`
	Device string `json:"device"`

	Ops       uint64 `json:"ops"`
	Puts      uint64 `json:"puts"`
	Gets      uint64 `json:"gets"`
	UserBytes int64  `json:"user_bytes"`

	// Elapsed spans submission to this tenant's last completion; on a
	// shared engine another tenant may keep the clock running longer.
	Elapsed sim.Duration `json:"elapsed"`
	// Lat is the operation latency histogram: the time from an op's
	// scheduled arrival to its acknowledgement, queueing included.
	Lat *stats.Histogram `json:"lat"`
	// MaxOutstanding is the peak number of in-flight operations.
	MaxOutstanding int `json:"max_outstanding"`

	// Stats is the engine's activity snapshot after the tenant drained
	// (device I/O, amplification, cache hits, stalls).
	Stats Stats `json:"stats"`
}

// OpsPerSec returns the completed operation rate over the tenant's own
// measurement window.
func (r *MixResult) OpsPerSec() float64 {
	secs := r.Elapsed.Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(r.Ops) / secs
}

// mixState drives one tenant's arrival schedule. All randomness is drawn
// at schedule time (before the engine runs), so a tenant's op sequence is
// a pure function of its spec — independent of how other tenants' events
// interleave on the shared engine.
type mixState struct {
	res         *MixResult
	start       sim.Time
	lastDone    sim.Time
	outstanding int
}

// startMix validates the spec (panicking on harness programming errors)
// and schedules every arrival on the engine, returning a finalizer that
// closes the measurement once the caller has drained the engine.
func startMix(eng *sim.Engine, t MixTenant) func() *MixResult {
	spec := t.Spec
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	if spec.KeySpace == 0 {
		spec.KeySpace = 1 << 20
	}
	rng := sim.NewRNG(spec.Seed^0x6b1d, spec.Seed+0x29)
	zipf := workload.NewZipf(int64(spec.KeySpace), spec.ZipfTheta)
	st := &mixState{
		res: &MixResult{
			Name:   t.Name,
			Engine: t.Engine.Name(),
			Device: t.Engine.Device().Name(),
			Lat:    stats.NewHistogram(),
		},
		start: eng.Now(),
	}
	st.lastDone = st.start
	gap := sim.Duration(float64(sim.Second) / spec.RatePerSec)
	perSecond := int(spec.RatePerSec)
	if perSecond < 1 {
		perSecond = 1
	}
	var at sim.Duration
	for i := uint64(0); i < spec.Ops; i++ {
		switch spec.Arrival {
		case workload.Uniform:
			at = sim.Duration(i) * gap
		case workload.Poisson:
			if i > 0 {
				at += sim.Duration(-math.Log(1-rng.Float64()) * float64(gap))
			}
		case workload.Bursty:
			at = sim.Duration(i/uint64(perSecond)) * sim.Second
		}
		key := uint64(zipf.Next(rng))
		isGet := rng.Float64() < spec.ReadFrac
		issueAt := st.start.Add(at)
		eng.At(issueAt, func() {
			st.outstanding++
			if st.outstanding > st.res.MaxOutstanding {
				st.res.MaxOutstanding = st.outstanding
			}
			done := func() {
				st.outstanding--
				now := eng.Now()
				st.lastDone = now
				st.res.Lat.Record(now.Sub(issueAt))
				st.res.Ops++
			}
			if isGet {
				st.res.Gets++
				t.Engine.Get(key, done)
			} else {
				st.res.Puts++
				st.res.UserBytes += spec.ValueSize
				t.Engine.Put(key, spec.ValueSize, done)
			}
		})
	}
	return func() *MixResult {
		st.res.Elapsed = st.lastDone.Sub(st.start)
		st.res.Stats = t.Engine.Stats()
		return st.res
	}
}

// RunMix drives several KV tenants' arrival schedules concurrently inside
// one simulation engine: every tenant's timetable is scheduled, then a
// single engine run drains all of them (plus a per-engine Barrier for
// background flushes and compactions), so tenant I/O interleaves
// event-for-event the way concurrent guests on a shared backend would.
// Results are returned in tenant order.
//
// It panics on invalid input (no tenants, a tenant without an engine, a
// device on a different simulation engine, or an invalid spec) — the same
// harness-programming-error contract as workload.RunTenants. One engine
// means one event order, so a mix is exactly reproducible from its specs
// and seeds regardless of host parallelism.
func RunMix(eng *sim.Engine, tenants []MixTenant) []*MixResult {
	if len(tenants) == 0 {
		panic(fmt.Errorf("kv: no tenants"))
	}
	for i, t := range tenants {
		switch {
		case t.Engine == nil:
			panic(fmt.Errorf("kv: tenant %d (%s) has no engine", i, t.Name))
		case t.Engine.Device().Engine() != eng:
			panic(fmt.Errorf("kv: tenant %d (%s) device %q is not on the shared engine", i, t.Name, t.Engine.Device().Name()))
		}
	}
	finishers := make([]func() *MixResult, len(tenants))
	for i, t := range tenants {
		finishers[i] = startMix(eng, t)
	}
	eng.Run()
	// Drain background work (flushes/compactions) before reading stats:
	// foreground acks do not imply the engines went idle.
	drained := 0
	for _, t := range tenants {
		t.Engine.Barrier(func() { drained++ })
	}
	eng.Run()
	if drained != len(tenants) {
		panic(fmt.Errorf("kv: mix did not drain (%d of %d barriers)", drained, len(tenants)))
	}
	out := make([]*MixResult, len(tenants))
	for i, fin := range finishers {
		out[i] = fin()
	}
	return out
}

// MixProfile is the provider-visible demand shape of a measured KV
// tenant: the device-level load its engine actually offered, suitable for
// feeding a fleet placement study (fleet.DemandFromKV). Engines translate
// user ops into very different device traffic — an LSM turns small puts
// into large sequential flush/compaction streams, a page store into
// page-sized read-modify-writes — and placement must pack the translated
// load, not the user-level rate.
type MixProfile struct {
	Name string
	// RatePerSec is the device request rate (reads + writes per second).
	RatePerSec float64
	// MeanSize is the mean device request size in bytes.
	MeanSize int64
	// WriteRatioPct is the device write percentage (0-100).
	WriteRatioPct int
}

// ProfileOf summarizes a mix result as a device-level demand shape. The
// zero profile is returned when the tenant measured no device I/O or no
// elapsed time.
func ProfileOf(r *MixResult) MixProfile {
	p := MixProfile{Name: r.Name}
	ios := r.Stats.DeviceWrites + r.Stats.DeviceReads
	secs := r.Elapsed.Seconds()
	if ios == 0 || secs <= 0 {
		return p
	}
	p.RatePerSec = float64(ios) / secs
	p.MeanSize = (r.Stats.DeviceWriteBytes + r.Stats.DeviceReadBytes) / int64(ios)
	p.WriteRatioPct = int(math.Round(100 * float64(r.Stats.DeviceWrites) / float64(ios)))
	return p
}
