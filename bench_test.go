// Benchmarks regenerating every table and figure of the paper's evaluation
// (§III), one benchmark per artifact, plus ablation benches for the design
// choices DESIGN.md calls out. Custom metrics report the paper-facing
// quantities (latency gaps, knees, gains, spreads); ns/op measures the
// simulator's wall-clock cost of regenerating the artifact.
//
// Every benchmark reports the same two perf-trajectory metrics on top of
// its paper-facing ones: cells/sec (simulation cells — grid points, sweep
// runs, device ops — completed per wall-clock second; see reportCells) and
// allocs/op (via b.ReportAllocs). scripts/bench.sh collects them into
// BENCH_PR6.json, which CI diffs against the committed baseline.
//
// Run: go test -bench=. -benchmem
package essdsim_test

import (
	"context"
	"io"
	"reflect"
	"testing"
	"time"

	"essdsim"
	"essdsim/internal/blockdev"
	"essdsim/internal/contract"
	"essdsim/internal/essd"
	"essdsim/internal/harness"
	"essdsim/internal/profiles"
	"essdsim/internal/sim"
	"essdsim/internal/ssd"
	"essdsim/internal/workload"
	"essdsim/kv"
)

func factory(name string) harness.Factory {
	return func(seed uint64) blockdev.Device {
		d, err := profiles.ByName(name, sim.NewEngine(), sim.NewRNG(seed, seed^0xbe))
		if err != nil {
			panic(err)
		}
		return d
	}
}

// benchOpts keeps per-iteration simulated time modest so -bench runs in
// minutes; the shapes are the same as the full cmd/ucexperiments pass.
var benchOpts = harness.Options{
	CellDuration: 150 * sim.Millisecond,
	Warmup:       30 * sim.Millisecond,
	Seed:         7,
}

// reportCells reports the uniform throughput metric: simulation cells
// completed per wall-clock second, where a cell is the benchmark's natural
// unit of simulated work (a latency-grid point, a sustained-write run, a
// packing-study cell, a device op). cellsPerIter is the count per
// benchmark iteration.
func reportCells(b *testing.B, cellsPerIter int) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(cellsPerIter)*float64(b.N)/s, "cells/sec")
	}
}

// BenchmarkTableI regenerates Table I (device envelopes).
func BenchmarkTableI(b *testing.B) {
	b.ReportAllocs()
	rows := 0
	for i := 0; i < b.N; i++ {
		t := profiles.TableI()
		if len(t) != 3 {
			b.Fatal("Table I must have three rows")
		}
		rows = len(t)
		harness.FormatTableI(io.Discard, t)
	}
	reportCells(b, rows)
}

// benchFig2 measures one ESSD's Figure 2 panel against the SSD baseline
// and reports the paper's headline cells as metrics.
func benchFig2(b *testing.B, essdName string) {
	b.ReportAllocs()
	sizes := []int64{4 << 10, 64 << 10, 256 << 10}
	qds := []int{1, 4, 16}
	var gapSmall, gapBig float64
	cells := 0
	for i := 0; i < b.N; i++ {
		e := harness.RunLatencyGridWith(factory(essdName), harness.Fig2Patterns, sizes, qds, benchOpts)
		s := harness.RunLatencyGridWith(factory("ssd"), harness.Fig2Patterns, sizes, qds, benchOpts)
		cells = len(e.Cells) + len(s.Cells)
		ec := e.Cell(workload.RandWrite, 4<<10, 1)
		sc := s.Cell(workload.RandWrite, 4<<10, 1)
		gapSmall = float64(ec.Avg) / float64(sc.Avg)
		ec = e.Cell(workload.RandWrite, 256<<10, 16)
		sc = s.Cell(workload.RandWrite, 256<<10, 16)
		gapBig = float64(ec.Avg) / float64(sc.Avg)
	}
	reportCells(b, cells)
	b.ReportMetric(gapSmall, "gap@4K/QD1")
	b.ReportMetric(gapBig, "gap@256K/QD16")
}

// BenchmarkFig2_ESSD1 regenerates Figure 2a/2b (AWS io2 vs local SSD).
func BenchmarkFig2_ESSD1(b *testing.B) { benchFig2(b, "essd1") }

// BenchmarkFig2_ESSD2 regenerates Figure 2c/2d (Alibaba PL3 vs local SSD).
func BenchmarkFig2_ESSD2(b *testing.B) { benchFig2(b, "essd2") }

// BenchmarkFig3 regenerates Figure 3 (sustained random write, GC knees).
// A reduced 1.5x-capacity volume keeps iterations affordable while still
// exposing the SSD knee; the full 3x run lives in cmd/ucexperiments.
func BenchmarkFig3(b *testing.B) {
	b.ReportAllocs()
	var ssdKnee, essd2Knee float64
	for i := 0; i < b.N; i++ {
		s := harness.RunSustainedWrite(factory("ssd"), 1.5, benchOpts)
		e := harness.RunSustainedWrite(factory("essd2"), 1.5, benchOpts)
		ssdKnee = s.KneeCapFrac
		essd2Knee = e.KneeCapFrac
	}
	reportCells(b, 2)
	b.ReportMetric(ssdKnee, "ssd-knee-x")
	b.ReportMetric(essd2Knee, "essd2-knee-x")
}

// BenchmarkFig3Full regenerates the paper's full 3x-capacity Figure 3 for
// all three devices. Expensive; run with -bench=Fig3Full -benchtime=1x.
func BenchmarkFig3Full(b *testing.B) {
	b.ReportAllocs()
	var knees [3]float64
	for i := 0; i < b.N; i++ {
		for j, name := range []string{"essd1", "essd2", "ssd"} {
			knees[j] = harness.RunSustainedWrite(factory(name), 3, benchOpts).KneeCapFrac
		}
	}
	reportCells(b, 3)
	b.ReportMetric(knees[0], "essd1-knee-x")
	b.ReportMetric(knees[1], "essd2-knee-x")
	b.ReportMetric(knees[2], "ssd-knee-x")
}

// BenchmarkFig4 regenerates Figure 4 (random vs sequential writes).
func BenchmarkFig4(b *testing.B) {
	b.ReportAllocs()
	sizes := []int64{4 << 10, 16 << 10, 64 << 10, 256 << 10}
	qds := []int{1, 8, 32}
	var g1, g2, gs float64
	cells := 0
	for i := 0; i < b.N; i++ {
		r1 := harness.RunRandSeqSweepWith(factory("essd1"), sizes, qds, benchOpts)
		r2 := harness.RunRandSeqSweepWith(factory("essd2"), sizes, qds, benchOpts)
		rs := harness.RunRandSeqSweepWith(factory("ssd"), sizes, qds, benchOpts)
		cells = len(r1.Cells) + len(r2.Cells) + len(rs.Cells)
		g1, _ = r1.MaxGain()
		g2, _ = r2.MaxGain()
		gs, _ = rs.MaxGain()
	}
	reportCells(b, cells)
	b.ReportMetric(g1, "essd1-max-gain")
	b.ReportMetric(g2, "essd2-max-gain")
	b.ReportMetric(gs, "ssd-max-gain")
}

// BenchmarkFig5 regenerates Figure 5 (mixed read/write determinism).
func BenchmarkFig5(b *testing.B) {
	b.ReportAllocs()
	ratios := []int{0, 30, 50, 70, 100}
	var e1Spread, e2Spread, sSpread float64
	for i := 0; i < b.N; i++ {
		e1Spread = harness.RunMixedSweepWith(factory("essd1"), ratios, benchOpts).Spread()
		e2Spread = harness.RunMixedSweepWith(factory("essd2"), ratios, benchOpts).Spread()
		sSpread = harness.RunMixedSweepWith(factory("ssd"), ratios, benchOpts).Spread()
	}
	reportCells(b, 3*len(ratios))
	b.ReportMetric(e1Spread*100, "essd1-spread-%")
	b.ReportMetric(e2Spread*100, "essd2-spread-%")
	b.ReportMetric(sSpread*100, "ssd-spread-%")
}

// BenchmarkContract runs the full four-observation contract checker
// (quick grids) on ESSD-2.
func BenchmarkContract(b *testing.B) {
	b.ReportAllocs()
	pass := 0.0
	checks := 0
	for i := 0; i < b.N; i++ {
		rep := contract.Evaluate(factory("essd2"), factory("ssd"), contract.EvalOptions{
			Harness:     benchOpts,
			CapMultiple: 1.6,
			Quick:       true,
		})
		checks = len(rep.Checks)
		if rep.Passed() {
			pass = 1
		}
	}
	reportCells(b, checks)
	b.ReportMetric(pass, "passed")
}

// --- Ablation benches (DESIGN.md §6) ---

// BenchmarkAblationChunkSize varies the placement chunk size, the
// Observation #3 lever: larger chunks keep a sequential window on one
// placement group longer and widen the rand/seq gain.
func BenchmarkAblationChunkSize(b *testing.B) {
	for _, chunkMB := range []int64{1, 2, 8} {
		b.Run(fmtMB(chunkMB), func(b *testing.B) {
			f := func(seed uint64) blockdev.Device {
				cfg := profiles.ESSD2Config()
				cfg.Cluster.ChunkBytes = chunkMB << 20
				return essd.New(sim.NewEngine(), cfg, sim.NewRNG(seed, 1))
			}
			b.ReportAllocs()
			var gain float64
			cells := 0
			for i := 0; i < b.N; i++ {
				r := harness.RunRandSeqSweepWith(f, []int64{64 << 10}, []int{32}, benchOpts)
				cells = len(r.Cells)
				gain, _ = r.MaxGain()
			}
			reportCells(b, cells)
			b.ReportMetric(gain, "gain@64K/QD32")
		})
	}
}

// BenchmarkAblationReplication varies the replication factor: wider
// fan-out costs write latency but not sequential bandwidth (the stream
// stays the bottleneck).
func BenchmarkAblationReplication(b *testing.B) {
	for _, replicas := range []int{1, 2, 3} {
		b.Run(fmtN("r", replicas), func(b *testing.B) {
			f := func(seed uint64) blockdev.Device {
				cfg := profiles.ESSD1Config()
				cfg.Cluster.Replicas = replicas
				return essd.New(sim.NewEngine(), cfg, sim.NewRNG(seed, 1))
			}
			b.ReportAllocs()
			var avg float64
			for i := 0; i < b.N; i++ {
				g := harness.RunLatencyGridWith(f, []workload.Pattern{workload.RandWrite},
					[]int64{4 << 10}, []int{1}, benchOpts)
				avg = g.Cells[0].Avg.Micros()
			}
			reportCells(b, 1)
			b.ReportMetric(avg, "write-avg-µs")
		})
	}
}

// BenchmarkAblationCleanerRate varies the backend cleaner rate, the
// Observation #2 lever: slower cleaners accumulate debt and engage the
// flow limiter earlier.
func BenchmarkAblationCleanerRate(b *testing.B) {
	for _, frac := range []float64{0.4, 0.8, 1.2} {
		b.Run(fmtPct(frac), func(b *testing.B) {
			f := func(seed uint64) blockdev.Device {
				cfg := profiles.ESSD1Config()
				cfg.Cluster.CleanerRate = frac * cfg.ThroughputBudget
				cfg.SpareFrac = 0.25
				return essd.New(sim.NewEngine(), cfg, sim.NewRNG(seed, 1))
			}
			b.ReportAllocs()
			var knee float64
			for i := 0; i < b.N; i++ {
				knee = harness.RunSustainedWrite(f, 2, benchOpts).KneeCapFrac
			}
			reportCells(b, 1)
			b.ReportMetric(knee, "knee-x")
		})
	}
}

// BenchmarkAblationWriteBuffer varies the local SSD's DRAM write buffer,
// the small-write latency lever.
func BenchmarkAblationWriteBuffer(b *testing.B) {
	for _, mb := range []int64{4, 64} {
		b.Run(fmtMB(mb), func(b *testing.B) {
			f := func(seed uint64) blockdev.Device {
				cfg := profiles.SSDConfig()
				cfg.FTL.WriteBufferBytes = mb << 20
				return ssd.New(sim.NewEngine(), cfg, sim.NewRNG(seed, 1))
			}
			b.ReportAllocs()
			var p999 float64
			for i := 0; i < b.N; i++ {
				g := harness.RunLatencyGridWith(f, []workload.Pattern{workload.RandWrite},
					[]int64{256 << 10}, []int{16}, benchOpts)
				p999 = g.Cells[0].P999.Micros()
			}
			reportCells(b, 1)
			b.ReportMetric(p999, "write-p999-µs")
		})
	}
}

// BenchmarkAblationPrefetchDepth varies the SSD prefetcher, the lever
// behind the paper's huge ESSD sequential-read gap.
func BenchmarkAblationPrefetchDepth(b *testing.B) {
	for _, depth := range []int{0, 16, 64} {
		b.Run(fmtN("d", depth), func(b *testing.B) {
			f := func(seed uint64) blockdev.Device {
				cfg := profiles.SSDConfig()
				cfg.PrefetchDepth = depth
				return ssd.New(sim.NewEngine(), cfg, sim.NewRNG(seed, 1))
			}
			b.ReportAllocs()
			var avg float64
			for i := 0; i < b.N; i++ {
				g := harness.RunLatencyGridWith(f, []workload.Pattern{workload.SeqRead},
					[]int64{4 << 10}, []int{1}, benchOpts)
				avg = g.Cells[0].Avg.Micros()
			}
			reportCells(b, 1)
			b.ReportMetric(avg, "seqread-avg-µs")
		})
	}
}

// BenchmarkAblationBurst varies the ESSD token-bucket burst, the
// Implication #4 lever trading burst absorption against queueing.
func BenchmarkAblationBurst(b *testing.B) {
	for _, mb := range []int64{4, 48, 256} {
		b.Run(fmtMB(mb), func(b *testing.B) {
			f := func(seed uint64) blockdev.Device {
				cfg := profiles.ESSD1Config()
				cfg.BudgetBurst = float64(mb << 20)
				return essd.New(sim.NewEngine(), cfg, sim.NewRNG(seed, 1))
			}
			b.ReportAllocs()
			var p999 float64
			for i := 0; i < b.N; i++ {
				g := harness.RunLatencyGridWith(f, []workload.Pattern{workload.RandWrite},
					[]int64{256 << 10}, []int{16}, benchOpts)
				p999 = g.Cells[0].P999.Micros()
			}
			reportCells(b, 1)
			b.ReportMetric(p999, "write-p999-µs")
		})
	}
}

// BenchmarkKVDesign runs the future-work case study: LSM vs update-in-place
// ingest on ESSD-2, reporting effective put rates.
func BenchmarkKVDesign(b *testing.B) {
	b.ReportAllocs()
	var lsmRate, ipRate float64
	for i := 0; i < b.N; i++ {
		eng := essdsim.NewEngine()
		dev, err := essdsim.NewDevice("essd2", eng, 3)
		if err != nil {
			b.Fatal(err)
		}
		essdsim.Precondition(dev, true)
		lsm := kv.Ingest(eng, kv.NewLSM(dev, kv.DefaultLSMConfig()), 20000, 1024, 32, 50000, 3)
		lsmRate = lsm.PutsPerSec()

		eng2 := essdsim.NewEngine()
		dev2, err := essdsim.NewDevice("essd2", eng2, 3)
		if err != nil {
			b.Fatal(err)
		}
		essdsim.Precondition(dev2, true)
		ip := kv.Ingest(eng2, kv.NewPageStore(dev2, kv.DefaultPageStoreConfig(dev2)), 20000, 1024, 32, 50000, 3)
		ipRate = ip.PutsPerSec()
	}
	reportCells(b, 2)
	b.ReportMetric(lsmRate/1e3, "lsm-Kops/s")
	b.ReportMetric(ipRate/1e3, "inplace-Kops/s")
}

// BenchmarkKVIngest measures the raw KV hot path: wall-clock puts/sec
// through the allocation-free LSM ingest pump (the number the PR 9 bench
// gate holds), with the page-store read-modify-write path as a secondary
// sub-benchmark. puts/sec here is wall-clock throughput of the simulator,
// not virtual-time throughput of the engine.
func BenchmarkKVIngest(b *testing.B) {
	run := func(b *testing.B, mk func(dev essdsim.Device) kv.Engine) {
		b.ReportAllocs()
		const puts = 200_000
		for i := 0; i < b.N; i++ {
			eng := essdsim.NewEngine()
			dev, err := essdsim.NewDevice("essd2", eng, 3)
			if err != nil {
				b.Fatal(err)
			}
			essdsim.Precondition(dev, true)
			e := mk(dev)
			res := kv.Ingest(eng, e, puts, 1024, 32, 100_000, 3)
			if res.Puts != puts {
				b.Fatalf("ingest dropped puts: %+v", res)
			}
		}
		b.ReportMetric(float64(puts)*float64(b.N)/b.Elapsed().Seconds(), "puts/sec")
	}
	b.Run("lsm", func(b *testing.B) {
		run(b, func(dev essdsim.Device) kv.Engine {
			return kv.NewLSM(dev, kv.DefaultLSMConfig())
		})
	})
	b.Run("pagestore", func(b *testing.B) {
		run(b, func(dev essdsim.Device) kv.Engine {
			return kv.NewPageStore(dev, kv.DefaultPageStoreConfig(dev))
		})
	})
}

// BenchmarkKVMix measures the KV tenant-mix suite end to end: the
// engine × skew grid of multi-tenant shared-backend cells through the
// expgrid pool, the regime `-exp kv` runs. ops/sec is wall-clock user
// operations simulated per second across all cells.
func BenchmarkKVMix(b *testing.B) {
	sweep := essdsim.KVMixSweep{
		Engines:      []string{"lsm", "pagestore"},
		Skews:        []float64{0, 0.99},
		Tenants:      3,
		OpsPerTenant: 1500,
		Seed:         7,
	}
	b.ReportAllocs()
	var ops uint64
	for i := 0; i < b.N; i++ {
		rep, err := essdsim.RunKVMix(context.Background(), sweep)
		if err != nil {
			b.Fatal(err)
		}
		ops = 0
		for _, c := range rep.Cells {
			if c.Ops == 0 {
				b.Fatalf("cell %s/%g measured no ops", c.Engine, c.Skew)
			}
			ops += c.Ops
		}
	}
	b.ReportMetric(float64(ops)*float64(b.N)/b.Elapsed().Seconds(), "ops/sec")
}

// BenchmarkTraceOverhead measures what the observability planes cost the
// neighbor sweep. "off" is the stock untraced path — the nil-fast branch
// every unobserved simulation pays, the number the FleetPack/KVIngest/
// KVMix gates protect. "on" traces every 64th request and probes every
// millisecond; its ratio to "off" is the enabled-tracing cost
// docs/observability.md quotes. Observed runs bypass cache reads, so the
// two variants simulate identical work.
func BenchmarkTraceOverhead(b *testing.B) {
	modes := []struct {
		name string
		obs  *essdsim.ObsConfig
	}{
		{"off", nil},
		{"on", &essdsim.ObsConfig{SampleEvery: 64, ProbeInterval: sim.Millisecond}},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			sweep := essdsim.NeighborSweep{
				AggressorCounts:      []int{0, 2},
				AggressorRatesPerSec: []float64{1600},
				VictimOps:            600,
				Seed:                 7,
				Obs:                  mode.obs,
			}
			b.ReportAllocs()
			cells, spans := 0, 0
			for i := 0; i < b.N; i++ {
				rep, err := essdsim.RunNeighborScenario(context.Background(), sweep)
				if err != nil {
					b.Fatal(err)
				}
				cells = len(rep.Cells)
				if mode.obs != nil {
					spans = 0
					for _, cap := range rep.Captures {
						spans += len(cap.Tracer.Spans())
					}
					if spans == 0 {
						b.Fatal("traced run recorded no spans")
					}
				}
			}
			reportCells(b, cells)
			b.ReportMetric(float64(spans), "spans")
		})
	}
}

// BenchmarkProbeSampling measures the state-probe plane alone: one
// elastic volume driven open-loop with every backend gauge sampled each
// 100 µs of simulated time. samples/sec is probe ticks executed per
// wall-clock second — the cost of the read-only Peek* samplers plus the
// probe events threaded through the engine.
func BenchmarkProbeSampling(b *testing.B) {
	b.ReportAllocs()
	rows := 0
	for i := 0; i < b.N; i++ {
		eng := essdsim.NewEngine()
		dev, err := essdsim.NewDevice("essd1", eng, 3)
		if err != nil {
			b.Fatal(err)
		}
		cap, err := essdsim.InstrumentDevice(dev, "bench", &essdsim.ObsConfig{
			SampleEvery:   64,
			ProbeInterval: 100 * sim.Microsecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		essdsim.Precondition(dev, true)
		res := essdsim.RunOpen(dev, essdsim.OpenWorkload{
			Pattern:    essdsim.RandWrite,
			BlockSize:  64 << 10,
			RatePerSec: 4000,
			Count:      2000,
			Seed:       3,
		})
		if res.Ops != 2000 {
			b.Fatalf("short run: %d ops", res.Ops)
		}
		rows = cap.Prober.Samples()
		if rows == 0 {
			b.Fatal("no probe samples collected")
		}
	}
	reportCells(b, 1)
	b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "samples/sec")
}

// BenchmarkAblationBurstCredits contrasts the burstable gp2-class tier's
// two regimes: a short burst-backed sprint vs a drained-credit slog.
func BenchmarkAblationBurstCredits(b *testing.B) {
	b.ReportAllocs()
	var burstRate, baseRate float64
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		dev, err := profiles.ByName("gp2", eng, sim.NewRNG(5, 5))
		if err != nil {
			b.Fatal(err)
		}
		res := workload.Run(dev, workload.Spec{
			Pattern: workload.RandWrite, BlockSize: 256 << 10,
			QueueDepth: 32, TotalBytes: 4 << 30, Seed: 5,
		})
		burstRate = res.Series.Rate(0)
		baseRate = res.Series.MeanRate(res.Series.Len()-3, res.Series.Len())
	}
	reportCells(b, 1)
	b.ReportMetric(burstRate/1e9, "burst-GB/s")
	b.ReportMetric(baseRate/1e9, "drained-GB/s")
}

// BenchmarkFig2Workers measures worker-pool scaling of the full Figure 2
// latency grid (80 cells): the identical sweep at 1, 2, 4, and 8 workers.
// On a machine with ≥4 cores the 4-worker run completes the grid in less
// than half the 1-worker wall clock (cells are embarrassingly parallel);
// the results are byte-identical at every worker count, which the
// "identical" metric asserts against the 1-worker grid.
//
// Run: go test -bench=Fig2Workers -benchtime=1x
func BenchmarkFig2Workers(b *testing.B) {
	baseline := harness.RunLatencyGridWith(factory("essd1"),
		harness.Fig2Patterns, harness.Fig2Sizes, harness.Fig2QDs, benchOpts)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmtN("workers", w), func(b *testing.B) {
			b.ReportAllocs()
			opts := benchOpts
			opts.Workers = w
			identical := 1.0
			for i := 0; i < b.N; i++ {
				g := harness.RunLatencyGridWith(factory("essd1"),
					harness.Fig2Patterns, harness.Fig2Sizes, harness.Fig2QDs, opts)
				if !reflect.DeepEqual(g, baseline) {
					identical = 0
				}
			}
			reportCells(b, len(baseline.Cells))
			b.ReportMetric(identical, "identical")
		})
	}
}

// BenchmarkNeighborSweep measures multi-tenant sweep throughput: a 3-cell
// noisy-neighbor grid (0/2/4 aggressors on one shared backend per cell).
// cells/sec is the perf-trajectory metric for shared-backend simulation;
// the p99.9 inflation metric pins that the interference signal stays
// present as the simulator evolves.
//
// Run: go test -bench=NeighborSweep -benchtime=1x
func BenchmarkNeighborSweep(b *testing.B) {
	sweep := essdsim.NeighborSweep{
		AggressorCounts:      []int{0, 2, 4},
		AggressorRatesPerSec: []float64{1600},
		VictimOps:            900,
		Seed:                 7,
	}
	b.ReportAllocs()
	var inflation float64
	cells := 0
	for i := 0; i < b.N; i++ {
		rep, err := essdsim.RunNeighborScenario(context.Background(), sweep)
		if err != nil {
			b.Fatal(err)
		}
		cells = len(rep.Cells)
		inflation = rep.Cells[cells-1].P999Inflation
	}
	reportCells(b, cells)
	b.ReportMetric(inflation, "victim-p999-x")
}

// BenchmarkNeighborIsolation measures the throughput cost and the tail
// effect of each per-tenant QoS isolation policy on the 3-cell
// noisy-neighbor grid. cells/sec per policy is the perf-trajectory metric
// for the scheduled (non-FIFO) queueing paths; victim-p999-x pins the
// isolation signal itself — wfq and reservation must keep the victim's
// worst p99.9 inflation far below fifo's as the simulator evolves.
//
// Run: go test -bench=NeighborIsolation -benchtime=1x
func BenchmarkNeighborIsolation(b *testing.B) {
	policies := []essdsim.IsolationPolicy{
		essdsim.IsolationFIFO, essdsim.IsolationWFQ, essdsim.IsolationReservation,
	}
	for _, policy := range policies {
		b.Run(policy.String(), func(b *testing.B) {
			sweep := essdsim.NeighborSweep{
				AggressorCounts:      []int{0, 2, 4},
				AggressorRatesPerSec: []float64{1600},
				VictimOps:            900,
				Seed:                 7,
				Isolation:            essdsim.Isolation{Policy: policy},
			}
			b.ReportAllocs()
			var inflation float64
			cells := 0
			for i := 0; i < b.N; i++ {
				rep, err := essdsim.RunNeighborScenario(context.Background(), sweep)
				if err != nil {
					b.Fatal(err)
				}
				cells = len(rep.Cells)
				inflation = 0
				for _, c := range rep.Cells {
					if c.P999Inflation > inflation {
						inflation = c.P999Inflation
					}
				}
			}
			reportCells(b, cells)
			b.ReportMetric(inflation, "victim-p999-x")
		})
	}
}

// BenchmarkFleetPack measures fleet packing-study throughput: eight
// tenants placed by all four policies onto two backends (ten
// simulation cells including the two solo controls). cells/sec is the
// perf-trajectory metric for many-backend simulation; the violation-gap
// metric pins that first-fit's dense placement keeps costing more p99.9
// violations than interference-aware placement at equal density — the
// placement signal the suite exists to measure.
//
// Run: go test -bench=FleetPack -benchtime=1x
func BenchmarkFleetPack(b *testing.B) {
	spec := essdsim.FleetSpec{
		Demands:  essdsim.SyntheticFleetDemands(8, 2),
		Backends: 2,
		SLOP999:  5 * essdsim.Millisecond,
		Seed:     7,
	}
	b.ReportAllocs()
	cells, gap := 0, 0
	for i := 0; i < b.N; i++ {
		rep, err := essdsim.RunFleet(context.Background(), spec)
		if err != nil {
			b.Fatal(err)
		}
		cells = rep.Cells
		gap = rep.Policy("first-fit").P999Violations - rep.Policy("interference").P999Violations
	}
	reportCells(b, cells)
	b.ReportMetric(float64(gap), "violation-gap")
}

// BenchmarkChurnEpochs measures churn control-plane throughput: a
// six-tenant catalog through three control epochs of seeded lifecycle
// events with threshold rebalancing, every epoch's backend populations
// simulated through one deduplicated sweep. cells/sec is the
// perf-trajectory metric (comparable to FleetPack — the churn plane
// rides the same cell machinery); cells/epoch tracks how well the
// timeline dedups.
//
// Run: go test -bench=ChurnEpochs -benchtime=1x
func BenchmarkChurnEpochs(b *testing.B) {
	spec := essdsim.ChurnSpec{
		Fleet: essdsim.FleetSpec{
			Demands:  essdsim.SyntheticFleetDemands(6, 1),
			Backends: 2,
			SLOP999:  5 * essdsim.Millisecond,
			Horizon:  500 * essdsim.Millisecond,
			Seed:     11,
		},
		Epochs:     3,
		ChurnRate:  1.5,
		Rebalancer: essdsim.ThresholdRebalance{},
	}
	b.ReportAllocs()
	cells, epochs := 0, 0
	for i := 0; i < b.N; i++ {
		rep, err := essdsim.RunChurn(context.Background(), spec)
		if err != nil {
			b.Fatal(err)
		}
		cells, epochs = rep.Cells, len(rep.Epochs)
	}
	reportCells(b, cells)
	if epochs > 0 {
		b.ReportMetric(float64(cells)/float64(epochs), "cells/epoch")
	}
}

// BenchmarkSweepCacheOverhead measures what attaching a cold SweepCache
// costs a sweep that gets no hits from it: each iteration runs the
// identical fleet study with no cache and with a fresh cache (every cell
// stored, the whole cache persisted once), and the overhead-% metric is
// the relative wall-clock difference. With the store path free of
// serialization and persistence deferred to one Save per sweep, the
// overhead stays in the low single digits (<5%).
//
// Run: go test -bench=SweepCacheOverhead -benchtime=3x
func BenchmarkSweepCacheOverhead(b *testing.B) {
	b.ReportAllocs()
	spec := essdsim.FleetSpec{
		Demands:  essdsim.SyntheticFleetDemands(8, 2),
		Backends: 2,
		SLOP999:  5 * essdsim.Millisecond,
		Seed:     7,
	}
	runBare := func() int {
		rep, err := essdsim.RunFleet(context.Background(), spec)
		if err != nil {
			b.Fatal(err)
		}
		return rep.Cells
	}
	runCached := func() {
		cold := spec
		cold.Cache = essdsim.NewSweepCache(0)
		if _, err := essdsim.RunFleet(context.Background(), cold); err != nil {
			b.Fatal(err)
		}
		if err := cold.Cache.Save(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	cells := runBare() // warm code paths before timing
	runCached()
	b.ResetTimer()

	var bare, cached time.Duration
	for i := 0; i < b.N; i++ {
		// Alternate which variant runs first so slow machine-level drift
		// (a shared VM's throughput wandering) cancels out of the delta.
		for pass := 0; pass < 2; pass++ {
			t0 := time.Now()
			if (pass == 0) == (i%2 == 0) {
				runBare()
				bare += time.Since(t0)
			} else {
				runCached()
				cached += time.Since(t0)
			}
		}
	}
	reportCells(b, 2*cells)
	b.ReportMetric(100*(cached.Seconds()-bare.Seconds())/bare.Seconds(), "overhead-%")
}

// BenchmarkEngineThroughput measures raw simulator event throughput.
func BenchmarkEngineThroughput(b *testing.B) {
	eng := sim.NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng.Schedule(sim.Duration(i%1000), func() {})
		if i%1024 == 0 {
			eng.Run()
		}
	}
	eng.Run()
	reportCells(b, 1)
}

// BenchmarkDeviceIO measures simulated I/O cost per operation for each
// device profile (simulator performance, not device performance).
func BenchmarkDeviceIO(b *testing.B) {
	for _, name := range []string{"ssd", "essd1", "essd2"} {
		b.Run(name, func(b *testing.B) {
			eng := essdsim.NewEngine()
			dev, err := essdsim.NewDevice(name, eng, 1)
			if err != nil {
				b.Fatal(err)
			}
			essdsim.Precondition(dev, true)
			b.ReportAllocs()
			b.ResetTimer()
			inflight := 0
			for i := 0; i < b.N; i++ {
				inflight++
				dev.Submit(&essdsim.Request{
					Op:     essdsim.OpWrite,
					Offset: int64(i%1024) * 4096,
					Size:   4096,
					OnComplete: func(r *essdsim.Request, at essdsim.Time) {
						inflight--
					},
				})
				if inflight >= 64 {
					eng.Run()
				}
			}
			eng.Run()
			reportCells(b, 1)
		})
	}
}

// BenchmarkFleetScreen measures the two-fidelity screen: thousands of
// analytically scored placements funneled into a handful of frontier
// simulations. cells/sec counts the simulated frontier cells; the
// screened-per-sim metric is the screen's leverage — how many candidate
// placements each expensive simulation stands in for.
//
// Run: go test -bench=FleetScreen -benchtime=1x
func BenchmarkFleetScreen(b *testing.B) {
	b.ReportAllocs()
	spec := essdsim.FleetScreenSpec{
		Spec: essdsim.FleetSpec{
			Demands:  essdsim.SyntheticFleetDemands(8, 2),
			Backends: 2,
			SLOP999:  5 * essdsim.Millisecond,
			Seed:     7,
		},
		Candidates: 1024,
	}
	cells, leverage := 0, 0.0
	for i := 0; i < b.N; i++ {
		rep, err := essdsim.RunFleetScreen(context.Background(), spec)
		if err != nil {
			b.Fatal(err)
		}
		cells = rep.Simulated.Cells
		leverage = float64(rep.Candidates) / float64(len(rep.Simulated.Policies))
	}
	reportCells(b, cells)
	b.ReportMetric(leverage, "screened-per-sim")
}

func fmtMB(n int64) string { return fmtN("", int(n)) + "MB" }

func fmtPct(frac float64) string { return fmtN("cleaner", int(frac*100)) + "pct" }

func fmtN(prefix string, n int) string {
	digits := ""
	if n == 0 {
		digits = "0"
	}
	for v := n; v > 0; v /= 10 {
		digits = string(rune('0'+v%10)) + digits
	}
	return prefix + digits
}
