package qos

import (
	"testing"
	"testing/quick"

	"essdsim/internal/sim"
)

func TestBucketImmediateGrant(t *testing.T) {
	eng := sim.NewEngine()
	b := NewTokenBucket(eng, 1000, 500)
	granted := false
	b.Take(500, func() { granted = true })
	if !granted {
		t.Fatal("burst-covered take not granted immediately")
	}
	if b.Granted() != 500 {
		t.Fatalf("granted = %v", b.Granted())
	}
}

func TestBucketQueuesWhenEmpty(t *testing.T) {
	eng := sim.NewEngine()
	b := NewTokenBucket(eng, 1000, 500) // 1000 tokens/s
	b.Take(500, nil)                    // drain the burst
	var at sim.Time
	b.Take(250, func() { at = eng.Now() })
	eng.Run()
	// 250 tokens at 1000/s = 250 ms.
	want := sim.Time(250 * sim.Millisecond)
	if at < want-sim.Time(sim.Millisecond) || at > want+sim.Time(2*sim.Millisecond) {
		t.Fatalf("grant at %v, want ≈250ms", sim.Duration(at))
	}
	if b.StallTime() <= 0 {
		t.Fatal("stall time not recorded")
	}
}

func TestBucketFIFO(t *testing.T) {
	eng := sim.NewEngine()
	b := NewTokenBucket(eng, 1000, 100)
	b.Take(100, nil)
	var order []int
	b.Take(50, func() { order = append(order, 1) })
	b.Take(10, func() { order = append(order, 2) }) // small but must wait its turn
	b.Take(40, func() { order = append(order, 3) })
	eng.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("grant order %v, want FIFO", order)
	}
}

func TestBucketLongRunRate(t *testing.T) {
	eng := sim.NewEngine()
	rate := 1e6 // 1 MB/s
	b := NewTokenBucket(eng, rate, 64e3)
	var completed float64
	var last sim.Time
	var pump func()
	n := 0
	pump = func() {
		if n >= 200 {
			return
		}
		n++
		b.Take(32e3, func() {
			completed += 32e3
			last = eng.Now()
			pump()
		})
	}
	pump()
	eng.Run()
	secs := sim.Duration(last).Seconds()
	got := completed / secs
	if got < rate*0.95 || got > rate*1.15 {
		t.Fatalf("long-run rate %.0f, want ≈%.0f", got, rate)
	}
}

func TestBucketOversizedRequest(t *testing.T) {
	eng := sim.NewEngine()
	b := NewTokenBucket(eng, 1000, 100) // request bigger than burst
	var at1, at2 sim.Time = -1, -1
	b.Take(1000, func() { at1 = eng.Now() })
	b.Take(100, func() { at2 = eng.Now() })
	eng.Run()
	if at1 < 0 || at2 < 0 {
		t.Fatal("oversized request starved the bucket")
	}
	// The oversized take is granted against a negative balance almost
	// immediately (the bucket started full)...
	if at1 > sim.Time(5*sim.Millisecond) {
		t.Fatalf("oversized granted at %v, want ≈0", sim.Duration(at1))
	}
	// ...and the deficit delays the next request by ≈(900+100)/1000 s.
	if at2 < sim.Time(950*sim.Millisecond) || at2 > sim.Time(1100*sim.Millisecond) {
		t.Fatalf("post-deficit grant at %v, want ≈1s", sim.Duration(at2))
	}
}

func TestBucketZeroTake(t *testing.T) {
	eng := sim.NewEngine()
	b := NewTokenBucket(eng, 1000, 100)
	ok := false
	b.Take(0, func() { ok = true })
	if !ok {
		t.Fatal("zero take must complete synchronously")
	}
}

func TestSetRateThrottles(t *testing.T) {
	eng := sim.NewEngine()
	b := NewTokenBucket(eng, 1e6, 1000)
	b.Take(1000, nil) // drain burst
	b.SetRate(1e3)
	var at sim.Time
	b.Take(1000, func() { at = eng.Now() })
	eng.Run()
	// 1000 tokens at 1e3/s = 1 s.
	if at < sim.Time(900*sim.Millisecond) {
		t.Fatalf("throttled grant at %v, want ≈1s", sim.Duration(at))
	}
	if b.Rate() != 1e3 {
		t.Fatalf("rate = %v", b.Rate())
	}
}

// Property: tokens granted never exceed burst + rate×elapsed (conservation).
func TestBucketConservation(t *testing.T) {
	f := func(takes []uint16) bool {
		eng := sim.NewEngine()
		rate, burst := 1e5, 5e3
		b := NewTokenBucket(eng, rate, burst)
		var lastGrant sim.Time
		for _, tk := range takes {
			n := float64(tk%2000) + 1
			b.Take(n, func() { lastGrant = eng.Now() })
		}
		eng.Run()
		elapsed := sim.Duration(lastGrant).Seconds()
		return b.Granted() <= burst+rate*elapsed+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFlowLimiterEngagesOnce(t *testing.T) {
	eng := sim.NewEngine()
	b := NewTokenBucket(eng, 3e9, 1e6)
	l := &FlowLimiter{DebtThreshold: 1000, ThrottledRate: 1e6}
	l.Observe(eng.Now(), 500, b)
	if l.Engaged() {
		t.Fatal("engaged below threshold")
	}
	l.Observe(eng.Now(), 1500, b)
	if !l.Engaged() {
		t.Fatal("did not engage above threshold")
	}
	if b.Rate() != 1e6 {
		t.Fatalf("bucket rate %v, want throttled 1e6", b.Rate())
	}
	// Sticky: lower debt does not disengage, rate is not restored.
	b.SetRate(5e5)
	l.Observe(eng.Now(), 0, b)
	if b.Rate() != 5e5 {
		t.Fatal("limiter re-clamped after engagement")
	}
}

func TestFlowLimiterDisabled(t *testing.T) {
	eng := sim.NewEngine()
	b := NewTokenBucket(eng, 3e9, 1e6)
	l := &FlowLimiter{DebtThreshold: 0, ThrottledRate: 1e6}
	l.Observe(eng.Now(), 1<<40, b)
	if l.Engaged() {
		t.Fatal("disabled limiter engaged")
	}
}
