package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"essdsim/internal/essd"
	"essdsim/internal/expgrid"
	"essdsim/internal/obs"
	"essdsim/internal/profiles"
	"essdsim/internal/qos"
	"essdsim/internal/sim"
	"essdsim/internal/stats"
	"essdsim/internal/workload"
)

// NeighborSweep declares a noisy-neighbor suite: one steady open-loop
// victim tenant shares a storage backend with a swept number of bursty
// aggressor tenants, each volume attached to the same cluster, fabric, and
// background cleaner (essd.Backend). The grid sweeps aggressor count ×
// per-aggressor offered rate × aggressor write ratio through the expgrid
// tenant-mix kind, and the report measures the two cross-tenant couplings
// of the unwritten contract: victim tail-latency inflation (fabric and
// placement-group contention, Obs#1/#3) and shared-debt throttle onset
// (the pooled cleaner, Obs#2). Include 0 in AggressorCounts to get the
// solo-victim control cells the inflation columns are computed against.
// Zero-valued fields take defaults.
type NeighborSweep struct {
	// Axes.
	AggressorCounts         []int     // default 0, 1, 2, 4 (0 = control)
	AggressorRatesPerSec    []float64 // per-aggressor req/s (default 800, 1600)
	AggressorWriteRatiosPct []int     // default 100

	// Victim tenant: steady open-loop mixed I/O.
	VictimRatePerSec    float64          // default 300 req/s
	VictimOps           uint64           // default 3000 (a 10 s horizon at the default rate)
	VictimBlockSize     int64            // default 64 KiB
	VictimWriteRatioPct int              // default 50; pass -1 for a pure-read victim
	VictimArrival       workload.Arrival // default Uniform

	// Aggressor tenants: bursty mixed I/O, write-heavy by default. Each
	// aggressor issues enough requests to cover the victim's nominal
	// horizon at its own offered rate. The zero-valued arrival selects
	// Bursty — uniform aggressors are indistinguishable from a higher
	// victim rate, so they are not part of this suite's axes.
	AggressorBlockSize int64            // default 256 KiB
	AggressorArrival   workload.Arrival // default Bursty; Poisson selectable

	// Cache, when non-nil, serves already-computed cells from the
	// sweep-level result cache; NeighborReport.CachedCells counts the
	// skipped simulations.
	Cache *expgrid.Cache

	Seed    uint64
	Workers int    // expgrid pool size (0 = GOMAXPROCS)
	Label   string // seed decorrelation label (default "neighbor")

	// Isolation selects the backend's per-tenant QoS policy for every
	// cell (default fifo — the exact pre-isolation suite). The policy
	// changes only the backend's scheduling: cell seeds and hence every
	// tenant's arrival draws are identical across policies, so victim
	// tails compare scheduling effects and nothing else.
	Isolation qos.Isolation
	// VictimWeight is the victim volume's share under wfq/reservation
	// (default 1; aggressors always weigh 1). VictimReservedRate is the
	// victim's strictly-reserved bytes/s under reservation (default 2×
	// the victim's offered bytes/s, enough to cover its load with slack).
	VictimWeight       float64
	VictimReservedRate float64

	// Obs enables the observability planes for every cell: request
	// tracing at Obs.SampleEvery per volume and, when Obs.ProbeInterval
	// is positive, state probes on that simulated-time cadence.
	// Observability runs bypass cache reads (a cache-warm cell would
	// return its stored measurement without producing any capture) while
	// still refreshing the cache; measured results stay byte-identical to
	// unobserved runs. Nil (the default) is fully off.
	Obs *obs.Config

	// OnProgress, when non-nil, receives one expgrid.Progress per
	// completed cell (elapsed/ETA and cached count included). Invoked
	// serially, display-only.
	OnProgress func(expgrid.Progress)
}

func (s NeighborSweep) withDefaults() NeighborSweep {
	if len(s.AggressorCounts) == 0 {
		s.AggressorCounts = []int{0, 1, 2, 4}
	}
	if len(s.AggressorRatesPerSec) == 0 {
		s.AggressorRatesPerSec = []float64{800, 1600}
	}
	if len(s.AggressorWriteRatiosPct) == 0 {
		s.AggressorWriteRatiosPct = []int{100}
	}
	if s.VictimRatePerSec <= 0 {
		s.VictimRatePerSec = 300
	}
	if s.VictimOps == 0 {
		s.VictimOps = 3000
	}
	if s.VictimBlockSize <= 0 {
		s.VictimBlockSize = 64 << 10
	}
	if s.VictimWriteRatioPct == 0 {
		s.VictimWriteRatioPct = 50
	}
	if s.AggressorBlockSize <= 0 {
		s.AggressorBlockSize = 256 << 10
	}
	if s.AggressorArrival == workload.Uniform {
		s.AggressorArrival = workload.Bursty
	}
	if s.Label == "" {
		s.Label = "neighbor"
	}
	if s.Isolation.Policy == qos.IsolationReservation && s.VictimReservedRate <= 0 {
		s.VictimReservedRate = 2 * s.VictimRatePerSec * float64(s.VictimBlockSize)
	}
	return s
}

// BuildTenants constructs one cell's shared backend and tenant mix on a
// fresh engine: a preconditioned victim volume plus c.Aggressors
// preconditioned aggressor volumes, all attached to one
// profiles.NeighborBackendConfig backend. It is the sweep's expgrid
// Tenants hook, exported so tests and studies can reproduce a single cell
// exactly.
func (s NeighborSweep) BuildTenants(c expgrid.Cell) (*sim.Engine, []workload.Tenant) {
	s = s.withDefaults()
	eng := sim.AcquireEngine() // released by expgrid after the cell drains
	rng := sim.NewRNG(c.Seed, c.Seed^0x5c)
	bcfg := profiles.NeighborBackendConfig()
	bcfg.Isolation = s.Isolation
	be := essd.NewBackend(eng, bcfg, rng.Derive("backend"))
	return eng, s.AttachTenants(be, rng, c)
}

// AttachTenants attaches the cell's victim and aggressor volumes to the
// given backend and returns the tenant mix. Splitting it from
// BuildTenants lets the interference tests attach the identical tenants
// to private backends instead, as a no-sharing control.
func (s NeighborSweep) AttachTenants(be *essd.Backend, rng *sim.RNG, c expgrid.Cell) []workload.Tenant {
	s = s.withDefaults()
	vcfg := profiles.NeighborVolumeConfig("victim")
	vcfg.Weight = s.VictimWeight
	vcfg.ReservedRate = s.VictimReservedRate
	victim := be.Attach(vcfg, rng)
	victim.Precondition(1)
	victimRatio := float64(s.VictimWriteRatioPct) / 100
	if s.VictimWriteRatioPct < 0 { // -1 sentinel: pure-read victim
		victimRatio = 0
	}
	tenants := []workload.Tenant{{
		Name: "victim",
		Dev:  victim,
		Open: &workload.OpenSpec{
			Pattern:           workload.Mixed,
			BlockSize:         s.VictimBlockSize,
			WriteRatio:        victimRatio,
			RatePerSec:        s.VictimRatePerSec,
			Arrival:           s.VictimArrival,
			Count:             s.VictimOps,
			WindowPercentiles: true,
			Seed:              c.Seed ^ 0x11c7,
		},
	}}
	horizon := float64(s.VictimOps) / s.VictimRatePerSec
	aggrOps := uint64(horizon * c.RatePerSec)
	if aggrOps == 0 {
		aggrOps = 1
	}
	ratio := float64(c.WriteRatioPct) / 100
	if c.WriteRatioPct < 0 {
		ratio = 1
	}
	for i := 0; i < c.Aggressors; i++ {
		name := fmt.Sprintf("aggr%d", i)
		aggr := be.Attach(profiles.NeighborVolumeConfig(name), rng)
		aggr.Precondition(1)
		tenants = append(tenants, workload.Tenant{
			Name: name,
			Dev:  aggr,
			Open: &workload.OpenSpec{
				Pattern:    workload.Mixed,
				BlockSize:  s.AggressorBlockSize,
				WriteRatio: ratio,
				RatePerSec: c.RatePerSec,
				Arrival:    s.AggressorArrival,
				Count:      aggrOps,
				Seed:       c.Seed ^ uint64(0x1660+i),
			},
		})
	}
	return tenants
}

// NeighborInfo is the post-run capture of InspectNeighbors: the victim's
// throttle state and the shared backend's pooled debt, attributed per
// tenant. It is JSON-round-trippable so cached cells survive persistence
// (see DecodeNeighborInfo).
type NeighborInfo struct {
	Throttled    bool         `json:"throttled"`
	ThrottledAt  sim.Time     `json:"throttled_at"` // -1 when never engaged
	SharedDebt   int64        `json:"shared_debt"`  // pooled debt at end of run
	VictimDebt   int64        `json:"victim_debt"`  // debt the victim contributed
	AggrDebt     int64        `json:"aggr_debt"`    // debt the aggressors contributed
	AggrFabricUp int64        `json:"aggr_fabric_up"`
	BudgetStall  sim.Duration `json:"stall"` // victim throughput-budget wait
}

// InspectNeighbors is the expgrid InspectMix hook of the neighbor suite:
// it captures the victim's (tenants[0]) flow-limiter state and the shared
// backend's per-volume debt and fabric attribution while the cell's
// devices are still alive.
func InspectNeighbors(tenants []workload.Tenant, _ expgrid.Cell) any {
	info := NeighborInfo{ThrottledAt: -1}
	victim, ok := tenants[0].Dev.(*essd.ESSD)
	if !ok {
		return info
	}
	info.Throttled = victim.Throttled()
	if info.Throttled {
		info.ThrottledAt = victim.ThrottledAt()
	}
	info.BudgetStall = victim.BudgetStall()
	be := victim.Backend()
	info.SharedDebt = be.Debt()
	for _, vs := range be.VolumeStats() {
		if vs.Name == "victim" {
			info.VictimDebt += vs.DebtAdded
		} else {
			info.AggrDebt += vs.DebtAdded
			info.AggrFabricUp += vs.FabricUp
		}
	}
	return info
}

// DecodeNeighborInfo is the expgrid DecodeInfo hook matching
// InspectNeighbors: it rehydrates a persisted NeighborInfo from its JSON
// form.
func DecodeNeighborInfo(raw []byte) (any, error) {
	var info NeighborInfo
	if err := json.Unmarshal(raw, &info); err != nil {
		return nil, err
	}
	return info, nil
}

// NeighborCell is one measured point of the suite.
type NeighborCell struct {
	Aggressors        int
	AggrRatePerSec    float64 // per-aggressor offered requests/s
	AggrWriteRatioPct int
	AggrOfferedBps    float64 // aggregate aggressor offered bytes/s

	// Victim measurements over the victim's own run window.
	VictimOps            uint64
	VictimBytes          int64
	VictimElapsed        sim.Duration
	VictimLat            stats.Summary
	VictimThroughputBps  float64
	VictimMaxOutstanding int

	// Inflation of the victim tail vs the aggressors==0 control cell at
	// the same (rate, write ratio) coordinates; 0 when the sweep has no
	// control cells.
	P99Inflation  float64
	P999Inflation float64

	// Shared-debt coupling: the victim's flow-limiter engagement and the
	// pooled cleaner debt, attributed per tenant group.
	Throttled     bool
	ThrottleOnset sim.Duration // -1 when the limiter never engaged
	SharedDebt    int64
	VictimDebt    int64
	AggrDebt      int64
	BudgetStall   sim.Duration

	// Aggregate aggressor completions (all aggressor tenants).
	AggrOps   uint64
	AggrBytes int64

	Cached bool // served from the sweep cache
}

// NeighborReport is the full suite's measurement.
type NeighborReport struct {
	VictimRatePerSec float64
	VictimBlockSize  int64
	VictimOps        uint64
	Cells            []NeighborCell
	// CachedCells counts cells served from the sweep cache instead of a
	// fresh simulation.
	CachedCells int
	// Isolation is the backend QoS policy every cell ran under (zero
	// value: the default fifo).
	Isolation qos.Isolation
	// Captures holds each cell's observability capture in enumeration
	// order, and Explanations the matching obs.Explain attribution
	// reports. Both are nil unless the sweep ran with Obs set.
	Captures     []*obs.Capture
	Explanations []*obs.Explanation
}

// RunNeighbor executes the noisy-neighbor suite on the expgrid worker pool
// and folds the cells into a report. Results are deterministic and
// identical for any worker count. Cancel ctx to stop early.
func RunNeighbor(ctx context.Context, s NeighborSweep) (*NeighborReport, error) {
	s = s.withDefaults()
	sw := expgrid.Sweep{
		Kind:            expgrid.TenantMix,
		Devices:         []expgrid.NamedFactory{{Name: "shared"}},
		AggressorCounts: s.AggressorCounts,
		RatesPerSec:     s.AggressorRatesPerSec,
		WriteRatiosPct:  s.AggressorWriteRatiosPct,
		Tenants:         s.BuildTenants,
		InspectMix:      InspectNeighbors,
		Cache:           s.Cache,
		DecodeInfo:      DecodeNeighborInfo,
		Seed:            s.Seed,
		Label:           s.Label,
	}
	// The Tenants hook's inputs (victim shape, aggressor shape) are
	// invisible to the expgrid fingerprint, which only hashes Sweep
	// fields. Fold them into the label so two NeighborSweeps share cache
	// entries (and cell seeds) exactly when they would build identical
	// tenant mixes — the same contract BurstSweep gets from fingerprinted
	// OpenOps/BlockSizes fields.
	sw.Label = fmt.Sprintf("%s|v%d@%g/%dwr%d/%s|a%d/%s", s.Label,
		s.VictimOps, s.VictimRatePerSec, s.VictimBlockSize,
		s.VictimWriteRatioPct, s.VictimArrival,
		s.AggressorBlockSize, s.AggressorArrival)
	// The isolation axis goes in the sweep Variant, not the label: each
	// policy caches separately (the backend schedules differently) while
	// the cell seeds — and hence every tenant's arrival draws — stay
	// identical across policies.
	if s.Isolation.Enabled() || s.VictimWeight != 0 || s.VictimReservedRate != 0 {
		sw.Variant = fmt.Sprintf("iso:%s|vw%g|vr%g",
			s.Isolation.Signature(), s.VictimWeight, s.VictimReservedRate)
	}
	// Observability: wrap the Tenants hook so each cell gets its own
	// tracer/prober capture (one writer per Cell.Index — race-free under
	// any worker count), and force fresh simulations so every cell
	// actually produces one.
	var caps []*obs.Capture
	if s.Obs.Enabled() {
		if err := s.Obs.Validate(); err != nil {
			return nil, err
		}
		sw.ForceRun = true
		caps = make([]*obs.Capture, len(sw.Cells()))
		inner := sw.Tenants
		cfg := *s.Obs
		sw.Tenants = func(c expgrid.Cell) (*sim.Engine, []workload.Tenant) {
			eng, tenants := inner(c)
			caps[c.Index] = instrumentTenants(eng, tenants, neighborCellLabel(c), cfg)
			return eng, tenants
		}
	}
	results, err := expgrid.Runner{Workers: s.Workers, OnProgress: s.OnProgress}.Run(ctx, sw)
	if err != nil {
		return nil, err
	}
	rep := &NeighborReport{
		VictimRatePerSec: s.VictimRatePerSec,
		VictimBlockSize:  s.VictimBlockSize,
		VictimOps:        s.VictimOps,
		Isolation:        s.Isolation,
	}
	for _, r := range results {
		rep.Cells = append(rep.Cells, foldNeighborCell(r, s))
		if r.Cached {
			rep.CachedCells++
		}
	}
	if caps != nil {
		rep.Captures = caps
		vcfg := profiles.NeighborVolumeConfig("victim")
		thr := vcfg.SpareFrac * float64(vcfg.Capacity)
		for i, r := range results {
			rep.Explanations = append(rep.Explanations, neighborExplain(caps[i], r, thr))
		}
	}
	// Inflation columns compare each cell's victim tail against the
	// solo-victim control sharing its (rate, ratio) coordinates.
	type key struct {
		rate  float64
		ratio int
	}
	controls := map[key]stats.Summary{}
	for _, c := range rep.Cells {
		if c.Aggressors == 0 {
			controls[key{c.AggrRatePerSec, c.AggrWriteRatioPct}] = c.VictimLat
		}
	}
	for i := range rep.Cells {
		c := &rep.Cells[i]
		ctrl, ok := controls[key{c.AggrRatePerSec, c.AggrWriteRatioPct}]
		if !ok || c.Aggressors == 0 {
			continue
		}
		if ctrl.P99 > 0 {
			c.P99Inflation = float64(c.VictimLat.P99) / float64(ctrl.P99)
		}
		if ctrl.P999 > 0 {
			c.P999Inflation = float64(c.VictimLat.P999) / float64(ctrl.P999)
		}
	}
	return rep, nil
}

func foldNeighborCell(r expgrid.CellResult, s NeighborSweep) NeighborCell {
	victim := r.Mix[0]
	info := r.Info.(NeighborInfo)
	cell := NeighborCell{
		Aggressors:        r.Aggressors,
		AggrRatePerSec:    r.RatePerSec,
		AggrWriteRatioPct: r.WriteRatioPct,
		AggrOfferedBps:    float64(r.Aggressors) * r.RatePerSec * float64(s.AggressorBlockSize),

		VictimOps:            victim.Open.Ops,
		VictimBytes:          victim.Open.Bytes,
		VictimElapsed:        victim.Open.Elapsed,
		VictimLat:            victim.Open.Lat.Summarize(),
		VictimThroughputBps:  victim.Open.Throughput(),
		VictimMaxOutstanding: victim.Open.MaxOutstanding,

		Throttled:     info.Throttled,
		ThrottleOnset: -1,
		SharedDebt:    info.SharedDebt,
		VictimDebt:    info.VictimDebt,
		AggrDebt:      info.AggrDebt,
		BudgetStall:   info.BudgetStall,

		Cached: r.Cached,
	}
	if info.Throttled && info.ThrottledAt >= 0 {
		// Cell engines start at time zero and preconditioning consumes no
		// virtual time, so the engagement timestamp is already relative to
		// the cell start.
		cell.ThrottleOnset = sim.Duration(info.ThrottledAt)
	}
	for _, t := range r.Mix[1:] {
		cell.AggrOps += t.Open.Ops
		cell.AggrBytes += t.Open.Bytes
	}
	return cell
}

// FormatNeighbor writes the report as an aligned table: one row per cell
// with the victim's tail latency, its inflation over the solo-victim
// control, and the shared-debt throttle columns.
func FormatNeighbor(w io.Writer, r *NeighborReport) {
	fmt.Fprintf(w, "Noisy-neighbor scenario: victim %d KiB mixed @ %.0f req/s (%d requests) vs bursty aggressors on one shared backend\n",
		r.VictimBlockSize>>10, r.VictimRatePerSec, r.VictimOps)
	if r.Isolation.Enabled() {
		fmt.Fprintf(w, "isolation: %s\n", r.Isolation.Signature())
	}
	fmt.Fprintf(w, "%5s %9s %4s %9s %9s %9s %9s %7s %7s %10s %9s %9s\n",
		"aggrs", "rate/s", "wr%", "offered", "vic-p50", "vic-p99", "vic-p99.9",
		"p99-x", "p999-x", "throttle@", "debt", "aggrMB/s")
	for _, c := range r.Cells {
		onset := "-"
		if c.ThrottleOnset >= 0 {
			onset = fmt.Sprintf("%.2fs", c.ThrottleOnset.Seconds())
		}
		infl99, infl999 := "-", "-"
		if c.P99Inflation > 0 {
			infl99 = fmt.Sprintf("%.2f", c.P99Inflation)
		}
		if c.P999Inflation > 0 {
			infl999 = fmt.Sprintf("%.2f", c.P999Inflation)
		}
		aggrBW := "-"
		if c.Aggressors > 0 && c.VictimElapsed > 0 {
			aggrBW = fmt.Sprintf("%.1f", float64(c.AggrBytes)/c.VictimElapsed.Seconds()/1e6)
		}
		fmt.Fprintf(w, "%5d %9.0f %4d %8.1fM %9s %9s %9s %7s %7s %10s %8dM %9s\n",
			c.Aggressors, c.AggrRatePerSec, c.AggrWriteRatioPct, c.AggrOfferedBps/1e6,
			fmtLat(c.VictimLat.P50), fmtLat(c.VictimLat.P99), fmtLat(c.VictimLat.P999),
			infl99, infl999, onset, c.SharedDebt/1e6, aggrBW)
	}
}
