package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"essdsim/internal/sim"
)

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(4)
	sampled := 0
	for seq := uint64(0); seq < 16; seq++ {
		r := tr.Start("vol", 0, "write", seq)
		if (seq%4 == 0) != (r != nil) {
			t.Fatalf("seq %d: sampled=%v with SampleEvery=4", seq, r != nil)
		}
		if r != nil {
			sampled++
			r.Span("vol", "stage", 0, 10, 3, "fifo", "")
		}
	}
	if sampled != 4 {
		t.Fatalf("sampled %d of 16 requests, want 4", sampled)
	}
	if got := len(tr.Spans()); got != 4 {
		t.Fatalf("recorded %d spans, want 4", got)
	}
	// Request IDs are dense in sampling order.
	for i, s := range tr.Spans() {
		if s.Req != i {
			t.Fatalf("span %d has req id %d", i, s.Req)
		}
	}
}

func TestTracerNilSafety(t *testing.T) {
	var tr *Tracer
	if r := tr.Start("vol", 0, "read", 0); r != nil {
		t.Fatal("nil tracer sampled a request")
	}
	if tr.Spans() != nil {
		t.Fatal("nil tracer has spans")
	}
	var r *Req
	r.Span("vol", "stage", 0, 1, 0, "", "") // must not panic
	var p *Prober
	p.Add("g", func() float64 { return 0 })
	p.Attach(sim.NewEngine())
	if p.Samples() != 0 || p.Series("g") != nil || p.Names() != nil || p.Interval() != 0 {
		t.Fatal("nil prober is not inert")
	}
	var c *Config
	if c.Enabled() {
		t.Fatal("nil config enabled")
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("nil config invalid: %v", err)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (&Config{SampleEvery: 0}).Validate(); err == nil {
		t.Fatal("SampleEvery 0 accepted")
	}
	if err := (&Config{SampleEvery: 1}).Validate(); err != nil {
		t.Fatalf("SampleEvery 1 rejected: %v", err)
	}
}

func TestSpanWaitClamping(t *testing.T) {
	tr := NewTracer(1)
	r := tr.Start("v", 0, "w", 0)
	r.Span("v", "neg", 100, 200, -5, "", "")
	r.Span("v", "over", 100, 200, 500, "", "")
	spans := tr.Spans()
	if spans[0].Wait != 0 {
		t.Fatalf("negative wait not clamped to 0: %v", spans[0].Wait)
	}
	if spans[1].Wait != 100 {
		t.Fatalf("wait not clamped to span length: %v", spans[1].Wait)
	}
}

func TestTraceCSVDeterministicSortAndQuoting(t *testing.T) {
	tr := NewTracer(1)
	// Emit out of (req, start) order to exercise the export sort.
	r1 := tr.Start("vol,a", 0, "write", 0)
	r2 := tr.Start("vol,a", 0, "write", 1)
	r2.Span("lane", "late", 50, 60, 0, "wfq", `detail "quoted"`)
	r1.Span("lane", "b-stage", 10, 20, 2, "fifo", "")
	r1.Span("lane", "a-stage", 10, 20, 0, "fifo", "")
	var buf bytes.Buffer
	cap := &Capture{Label: "cell,1", Tracer: tr}
	if err := WriteTraceCSV(&buf, []*Capture{cap, nil}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want header + 3 spans:\n%s", len(lines), buf.String())
	}
	if lines[0] != "cell,req,volume,flow,op,lane,stage,start_s,end_s,wait_s,policy,detail" {
		t.Fatalf("bad header: %s", lines[0])
	}
	// req 0's same-start spans sort by stage name; req 1 follows.
	if !strings.Contains(lines[1], "a-stage") || !strings.Contains(lines[2], "b-stage") || !strings.Contains(lines[3], "late") {
		t.Fatalf("spans not in (req, start, lane, stage) order:\n%s", buf.String())
	}
	// Comma-bearing labels and quote-bearing details are CSV-quoted.
	if !strings.HasPrefix(lines[1], `"cell,1",0,"vol,a"`) {
		t.Fatalf("label/volume not quoted: %s", lines[1])
	}
	if !strings.Contains(lines[3], `"detail \"quoted\""`) {
		t.Fatalf("detail not quoted: %s", lines[3])
	}
}

func TestTraceEventsJSON(t *testing.T) {
	tr := NewTracer(1)
	r := tr.Start("vol", 0, "write", 0)
	r.Span("vol", "fe-admit", 0, 1000, 200, "fifo", "")
	r.Span("c0", "svc", 1000, 3000, 0, "wfq", "n0")
	var buf bytes.Buffer
	if err := WriteTraceEvents(&buf, []*Capture{{Label: "cell", Tracer: tr}}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace-event output is not valid JSON: %v", err)
	}
	var meta, durs int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			durs++
			if ev.Dur <= 0 {
				t.Fatalf("duration event %s has dur %v", ev.Name, ev.Dur)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if durs != 2 {
		t.Fatalf("got %d duration events, want 2", durs)
	}
	if meta != 3 { // one process_name + two thread_names (two lanes)
		t.Fatalf("got %d metadata events, want 3", meta)
	}
}

func TestProberSampling(t *testing.T) {
	eng := sim.NewEngine()
	p := NewProber(10 * sim.Microsecond)
	v := 0.0
	p.Add("gauge", func() float64 { return v })
	p.Attach(eng)
	eng.Schedule(35*sim.Microsecond, func() { v = 7 })
	eng.Run()
	// Ticks at 10, 20, 30 µs fire before the workload event; the tick due
	// at 40 µs is a daemon and is abandoned when the workload drains.
	s := p.Series("gauge")
	if len(s) != 3 || p.Samples() != 3 {
		t.Fatalf("got %d samples, want 3: %v", p.Samples(), s)
	}
	if eng.Now() != sim.Time(35*sim.Microsecond) {
		t.Fatalf("probe tick extended the run to %v", sim.Duration(eng.Now()))
	}
	for i, pt := range s {
		if want := sim.Time(10*(i+1)) * sim.Time(sim.Microsecond); pt.T != want {
			t.Fatalf("sample %d at %v, want %v", i, pt.T, want)
		}
		if pt.V != 0 {
			t.Fatalf("sample %d saw post-workload value %v", i, pt.V)
		}
	}
	if p.Series("missing") != nil {
		t.Fatal("unknown series not nil")
	}
}

func TestProbeCSVAndJSON(t *testing.T) {
	eng := sim.NewEngine()
	p := NewProber(10 * sim.Microsecond)
	p.Add("a", func() float64 { return 1.5 })
	p.Add("b", func() float64 { return float64(eng.Now()) })
	p.Attach(eng)
	eng.Schedule(25*sim.Microsecond, func() {})
	eng.Run()
	cap := &Capture{Label: "cell", Prober: p}
	var csv bytes.Buffer
	if err := WriteProbesCSV(&csv, []*Capture{cap}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 5 { // header + 2 ticks x 2 gauges
		t.Fatalf("got %d CSV lines, want 5:\n%s", len(lines), csv.String())
	}
	if lines[0] != "cell,t_s,probe,value" {
		t.Fatalf("bad header: %s", lines[0])
	}
	if !strings.Contains(lines[1], ",a,1.5") {
		t.Fatalf("first row should be gauge a at tick 1: %s", lines[1])
	}
	var js bytes.Buffer
	if err := WriteProbesJSON(&js, []*Capture{cap}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Cells []struct {
			Cell      string  `json:"cell"`
			IntervalS float64 `json:"interval_s"`
			Probes    []struct {
				Name   string       `json:"name"`
				Points [][2]float64 `json:"points"`
			} `json:"probes"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(js.Bytes(), &doc); err != nil {
		t.Fatalf("probe JSON invalid: %v", err)
	}
	if len(doc.Cells) != 1 || len(doc.Cells[0].Probes) != 2 || len(doc.Cells[0].Probes[0].Points) != 2 {
		t.Fatalf("bad probe JSON shape: %+v", doc)
	}
}

func TestExplainFindings(t *testing.T) {
	eng := sim.NewEngine()
	p := NewProber(sim.Millisecond)
	debt := 0.0
	p.Add("debt", func() float64 { return debt })
	p.Add("vic", func() float64 { return 100 })
	p.Add("agg", func() float64 { return 300 })
	p.Attach(eng)
	eng.Schedule(4500*sim.Microsecond, func() {})
	eng.Schedule(1500*sim.Microsecond, func() { debt = 50 })
	eng.Run()

	in := ExplainInput{
		Cell: "c", Victim: "vic",
		Tail: []TailPoint{
			{T: 0, Lat: sim.Millisecond},
			{T: sim.Time(sim.Millisecond), Lat: sim.Millisecond},
			{T: sim.Time(2 * sim.Millisecond), Lat: sim.Millisecond},
			{T: sim.Time(3 * sim.Millisecond), Lat: 10 * sim.Millisecond},
		},
		ThrottleOnset:     sim.Time(2500 * sim.Microsecond),
		CreditExhaustedAt: -1,
		DebtThreshold:     40,
		Probes:            p,
		PooledDebtSeries:  "debt",
		VictimBytesSeries: "vic",
		AggrBytesSeries:   []string{"agg"},
	}
	e := Explain(in)
	if e.Inflection != sim.Time(3*sim.Millisecond) {
		t.Fatalf("inflection at %v, want 3ms", e.Inflection)
	}
	if len(e.Findings) != 4 {
		t.Fatalf("got %d findings, want 4: %+v", len(e.Findings), e.Findings)
	}
	// Timed findings first, in time order; untimed traffic share last.
	if e.Findings[0].T != sim.Time(2*sim.Millisecond) || !strings.Contains(e.Findings[0].What, "debt crossed") {
		t.Fatalf("finding 0: %+v", e.Findings[0])
	}
	if !strings.Contains(e.Findings[1].What, "limiter engaged") {
		t.Fatalf("finding 1: %+v", e.Findings[1])
	}
	if !strings.Contains(e.Findings[2].What, "tail inflection") {
		t.Fatalf("finding 2: %+v", e.Findings[2])
	}
	if e.Findings[3].T != -1 || !strings.Contains(e.Findings[3].What, "75% of fabric uplink") {
		t.Fatalf("finding 3: %+v", e.Findings[3])
	}

	quiet := Explain(ExplainInput{Cell: "q", Victim: "v", ThrottleOnset: -1, CreditExhaustedAt: -1})
	if quiet.Inflection != -1 || len(quiet.Findings) != 1 ||
		!strings.Contains(quiet.Findings[0].What, "no cliff signals") {
		t.Fatalf("quiet cell: %+v", quiet)
	}

	var buf bytes.Buffer
	FormatExplanations(&buf, []*Explanation{e, nil, quiet})
	out := buf.String()
	if !strings.HasPrefix(out, "--- Cliff attribution (obs.Explain) ---\n") {
		t.Fatalf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "cell c (victim vic):") || !strings.Contains(out, "cell q (victim v):") {
		t.Fatalf("missing cell paragraphs:\n%s", out)
	}
	if strings.Count(out, "  - ") != 5 {
		t.Fatalf("want 5 finding lines:\n%s", out)
	}
}
