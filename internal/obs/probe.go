package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"essdsim/internal/sim"
)

// Prober samples a registry of read-only gauges on a simulated-time
// cadence. Samplers must not mutate simulator state or draw from any
// RNG — they read, so an instrumented run's measurements stay
// byte-identical to an uninstrumented run's. The probe tick is a daemon
// event (sim.Engine.ScheduleDaemon): it interleaves with workload events
// without reordering them (the engine's (time, seq) order preserves the
// workload's relative schedule) and it never keeps the engine alive, so
// an instrumented run ends at exactly the same virtual time as an
// uninstrumented one — end-of-run snapshots of time-settled state (the
// cleaner's debt drain) stay byte-identical. The nil Prober is inert.
type Prober struct {
	interval sim.Duration
	eng      *sim.Engine
	names    []string
	fns      []func() float64
	times    []sim.Time
	rows     [][]float64
	tickFn   func()
}

// NewProber returns a prober with the given sampling cadence
// (minimum 1 µs — a zero or negative interval would livelock the
// engine's same-timestamp ring).
func NewProber(interval sim.Duration) *Prober {
	if interval < sim.Microsecond {
		interval = sim.Microsecond
	}
	return &Prober{interval: interval}
}

// Interval returns the sampling cadence.
func (p *Prober) Interval() sim.Duration {
	if p == nil {
		return 0
	}
	return p.interval
}

// Add registers a named gauge. Registration order fixes the sample and
// export order. Nil-receiver no-op, so subsystems install their probes
// unconditionally.
func (p *Prober) Add(name string, fn func() float64) {
	if p == nil || fn == nil {
		return
	}
	p.names = append(p.names, name)
	p.fns = append(p.fns, fn)
}

// Attach schedules the sampling tick on the engine as a daemon event.
// Call after the gauges are registered and before (or while) the
// workload is scheduled; the tick keeps rescheduling itself while live
// work remains and is abandoned when the workload drains, so it never
// extends the run.
func (p *Prober) Attach(eng *sim.Engine) {
	if p == nil || len(p.fns) == 0 {
		return
	}
	p.eng = eng
	if p.tickFn == nil {
		p.tickFn = p.tick
	}
	eng.ScheduleDaemon(p.interval, p.tickFn)
}

func (p *Prober) tick() {
	p.times = append(p.times, p.eng.Now())
	row := make([]float64, len(p.fns))
	for i, fn := range p.fns {
		row[i] = fn()
	}
	p.rows = append(p.rows, row)
	if p.eng.Live() > 0 {
		p.eng.ScheduleDaemon(p.interval, p.tickFn)
	}
}

// Names returns the registered gauge names in registration order.
func (p *Prober) Names() []string {
	if p == nil {
		return nil
	}
	return p.names
}

// Samples returns the number of recorded ticks.
func (p *Prober) Samples() int {
	if p == nil {
		return 0
	}
	return len(p.times)
}

// Point is one (time, value) sample of a probe series.
type Point struct {
	T sim.Time
	V float64
}

// Series extracts one gauge's full time series (nil when the name is
// unknown or the prober is nil).
func (p *Prober) Series(name string) []Point {
	if p == nil {
		return nil
	}
	for i, n := range p.names {
		if n != name {
			continue
		}
		out := make([]Point, len(p.times))
		for j, t := range p.times {
			out[j] = Point{T: t, V: p.rows[j][i]}
		}
		return out
	}
	return nil
}

func fmtFloat(v float64) string {
	b, _ := json.Marshal(v) // shortest round-trip, same rule as results
	return string(b)
}

// WriteProbesCSV writes every capture's probe series as one long-format
// deterministic CSV: one row per (cell, tick, gauge), ticks in time
// order, gauges in registration order (docs/formats.md, "State probes").
func WriteProbesCSV(w io.Writer, caps []*Capture) error {
	if _, err := io.WriteString(w, "cell,t_s,probe,value\n"); err != nil {
		return err
	}
	for _, c := range caps {
		if c == nil || c.Prober == nil {
			continue
		}
		p := c.Prober
		for j, t := range p.times {
			for i, name := range p.names {
				_, err := fmt.Fprintf(w, "%s,%s,%s,%s\n",
					csvField(c.Label), fmtSeconds(t), csvField(name), fmtFloat(p.rows[j][i]))
				if err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// probeSeriesJSON is the JSON layout of one gauge's series.
type probeSeriesJSON struct {
	Name   string       `json:"name"`
	Points [][2]float64 `json:"points"` // [t_s, value]
}

type probeCellJSON struct {
	Cell      string            `json:"cell"`
	IntervalS float64           `json:"interval_s"`
	Probes    []probeSeriesJSON `json:"probes"`
}

// WriteProbesJSON writes every capture's probe series as deterministic
// JSON, one object per cell.
func WriteProbesJSON(w io.Writer, caps []*Capture) error {
	var cells []probeCellJSON
	for _, c := range caps {
		if c == nil || c.Prober == nil {
			continue
		}
		p := c.Prober
		cell := probeCellJSON{Cell: c.Label, IntervalS: p.interval.Seconds()}
		for i, name := range p.names {
			s := probeSeriesJSON{Name: name, Points: make([][2]float64, len(p.times))}
			for j, t := range p.times {
				s.Points[j] = [2]float64{sim.Duration(t).Seconds(), p.rows[j][i]}
			}
			cell.Probes = append(cell.Probes, s)
		}
		cells = append(cells, cell)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		Cells []probeCellJSON `json:"cells"`
	}{Cells: cells})
}
