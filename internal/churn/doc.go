// Package churn is the fleet's discrete-event control plane: it drives
// volume lifecycle events — create, expand, shrink, delete, and
// snapshot/clone (modeled as a one-epoch write burst) — over a demand
// catalog, makes online placement decisions through the fleet package's
// PlacementPolicy interface, applies a pluggable rebalancing policy
// under a per-epoch migration budget with an explicit migration-cost
// model, and measures the resulting fleet epoch by epoch.
//
// Time advances in control epochs of one fleet horizon each. Within an
// epoch the tenant population is fixed; between epochs the control
// plane applies lifecycle events (from a seeded random process or an
// explicit Spec.Script) and the rebalancer's moves. Every epoch's
// backends are then simulated through the same expgrid tenant-mix
// machinery fleet.Run uses — cells are identified by their population
// only, so a backend whose membership is unchanged across epochs
// simulates once, identical populations share cache entries with
// static fleet studies, and the whole multi-epoch plan runs as one
// parallel sweep that stays byte-identical for any worker count.
//
// The report is a time series: per-epoch SLO violations, utilization,
// stranded capacity, migrations and their cost, and tail latency, with
// every applied event in an audit trail. See docs/churn.md for the
// event model, epoch semantics, and CSV schemas.
package churn
