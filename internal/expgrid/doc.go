// Package expgrid runs declarative experiment grids — the cross product of
// device factories, access patterns, I/O sizes, queue depths, and write
// ratios — on a pool of parallel workers.
//
// # Cell workload kinds
//
// A sweep's Kind selects what each cell runs: Closed (the default) drives a
// fixed queue depth through workload.Run; Open issues requests on an
// arrival schedule through workload.RunOpen, adding arrival-shape and
// offered-rate axes — the regime where provisioned budgets and burst
// credits dominate; TraceReplay replays one recorded trace per device cell
// through trace.Replay (optionally fitted to each device via FitTrace);
// TenantMix runs several generators against distinct volumes inside one
// engine through workload.RunTenants, adding an aggressor-count axis — the
// multi-tenant regime where volumes sharing a backend interfere. All four
// share the same isolation, seeding, and determinism guarantees below.
//
// # Cell-isolation model
//
// A Sweep enumerates its axes into a flat list of Cells in a fixed
// row-major order (devices, then patterns, then block sizes, then queue
// depths, then write ratios). Every cell is an independent experiment: the
// worker that executes it constructs a fresh device from the cell's
// factory, preconditions it, and runs one workload on the device's own
// sim.Engine. No simulation state is shared between cells, which is what
// makes the grid embarrassingly parallel — exactly like running each fio
// job on its own re-initialized volume. The Runner therefore executes
// cells concurrently with a configurable number of workers and still
// yields results in the deterministic enumeration order.
//
// # Seed derivation
//
// Each cell's RNG seed is a pure hash of the sweep's root seed, its label,
// and the cell's own coordinates (device name, pattern, block size, queue
// depth, write ratio) — see CellSeed. The hash is independent of the
// cell's position in the enumeration, so adding, removing, or reordering
// axis values never changes the RNG stream of any other cell: a cell
// measures the same numbers whether it runs in a 1-cell sweep or a
// 1000-cell sweep, with 1 worker or with N. This replaces the old
// harness scheme of incrementing a shared counter per cell, under which
// any change to the grid silently re-seeded every cell after it.
//
// # Result caching
//
// A Sweep with a Cache attached memoizes successful cell results across
// sweeps: a cell is keyed by its coordinate-hash seed plus a fingerprint
// of every result-shaping sweep setting (Sweep.Fingerprint), so two sweeps
// share an entry exactly when the cell would measure byte-identical
// results. Probing workloads that revisit coordinates — a latency-SLO
// binary search, a re-run of a whole suite — skip the simulation and
// return the stored measurement, marked CellResult.Cached. The cache is a
// bounded LRU, safe for concurrent workers, and persists to JSON
// (Cache.SaveFile/LoadFile) with deterministic bytes; sweeps that combine
// persistence with an Inspect hook must also set DecodeInfo so loaded
// captures can be rehydrated. Two identities live outside the key and must
// be kept stable by the caller: the factory behind a device name, and the
// semantics of Inspect — change either together with the sweep Label.
package expgrid
